// Tests for the .hds columnar result store (src/store/): exact round trips
// over every value type (including NaN, the infinities, control characters,
// and embedded NULs), schema evolution mid-file, a seeded randomized
// round-trip property test, and the hard corruption guarantee — a truncated
// or bit-flipped file must fail with an error, never crash or return wrong
// rows. The whole suite also runs under the ASan/UBSan and TSan lanes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "runner/result_sink.h"
#include "runner/schema.h"
#include "store/extent_reader.h"
#include "store/extent_writer.h"
#include "util/binary_io.h"

namespace hetpipe::store {
namespace {

using runner::ResultRow;
using runner::RowToJson;
using runner::ValueType;

// Unique path per test; the fixture removes it (and its .tmp twin).
class StoreTest : public ::testing::Test {
 protected:
  std::string Path() {
    const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return std::string("store_test_") + info->test_suite_name() + "_" + info->name() + ".hds";
  }
  void TearDown() override {
    std::remove(Path().c_str());
    std::remove((Path() + ".tmp").c_str());
  }
};

void WriteRows(const std::string& path, const std::vector<ResultRow>& rows,
               WriterOptions options = {}) {
  std::string error;
  std::unique_ptr<ExtentWriter> writer = ExtentWriter::Open(path, &error, options);
  ASSERT_NE(writer, nullptr) << error;
  for (const ResultRow& row : rows) {
    writer->Append(row);
  }
  ASSERT_TRUE(writer->Finalize(&error)) << error;
}

// Typed field-for-field equality (RowToJson would collapse NaN and the
// infinities to null, hiding a lossy round trip).
void ExpectRowsEqual(const ResultRow& actual, const ResultRow& expected) {
  ASSERT_EQ(actual.fields().size(), expected.fields().size())
      << RowToJson(actual) << " vs " << RowToJson(expected);
  for (size_t i = 0; i < actual.fields().size(); ++i) {
    const auto& [key_a, value_a] = actual.fields()[i];
    const auto& [key_e, value_e] = expected.fields()[i];
    EXPECT_EQ(key_a, key_e);
    ASSERT_EQ(value_a.index(), value_e.index()) << "field " << key_e;
    if (const auto* d = std::get_if<double>(&value_e)) {
      const double got = std::get<double>(value_a);
      if (std::isnan(*d)) {
        EXPECT_TRUE(std::isnan(got)) << "field " << key_e;
      } else {
        EXPECT_EQ(got, *d) << "field " << key_e;  // bit-exact, covers ±inf
      }
    } else {
      EXPECT_TRUE(value_a == value_e) << "field " << key_e;
    }
  }
}

TEST_F(StoreTest, RoundTripsEveryValueType) {
  std::vector<ResultRow> rows;
  ResultRow row;
  row.Set("b_true", true)
      .Set("b_false", false)
      .Set("i_zero", static_cast<int64_t>(0))
      .Set("i_neg", static_cast<int64_t>(-12345))
      .Set("i_min", std::numeric_limits<int64_t>::min())
      .Set("i_max", std::numeric_limits<int64_t>::max())
      .Set("d_pi", 3.14159265358979)
      .Set("d_nan", std::numeric_limits<double>::quiet_NaN())
      .Set("d_inf", std::numeric_limits<double>::infinity())
      .Set("d_ninf", -std::numeric_limits<double>::infinity())
      .Set("d_denorm", std::numeric_limits<double>::denorm_min())
      .Set("s_plain", "hello")
      .Set("s_empty", "")
      .Set("s_ctrl", std::string("a\tb\nc\x01"))
      .Set("s_nul", std::string("x\0y", 3))
      .Set("s_quote", "she said \"hi\\there\"");
  rows.push_back(row);
  rows.push_back(row);  // repeated strings exercise the dictionary encoding

  WriteRows(Path(), rows);
  std::vector<ResultRow> read_back;
  std::string error;
  ASSERT_TRUE(ReadAllRows(Path(), &read_back, &error)) << error;
  ASSERT_EQ(read_back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ExpectRowsEqual(read_back[i], rows[i]);
  }
}

TEST_F(StoreTest, SchemaEvolvesMidFileAcrossExtents) {
  // Tiny extents force the schema change to land in a later extent than the
  // first rows: early rows must read back without the late fields, late rows
  // with them, across the extent boundary.
  WriterOptions options;
  options.extent_target_bytes = 64;
  std::vector<ResultRow> rows;
  for (int i = 0; i < 50; ++i) {
    ResultRow row;
    row.Set("name", "r" + std::to_string(i)).Set("x", i);
    if (i >= 25) {
      row.Set("late_metric", i * 0.5).Set("late_flag", i % 2 == 0);
    }
    rows.push_back(std::move(row));
  }
  WriteRows(Path(), rows, options);

  std::string error;
  std::unique_ptr<ExtentReader> reader = ExtentReader::Open(Path(), &error);
  ASSERT_NE(reader, nullptr) << error;
  std::vector<ResultRow> read_back;
  Extent extent;
  int extents = 0;
  while (true) {
    const ExtentReader::Next next = reader->Read(&extent, &error);
    ASSERT_NE(next, ExtentReader::Next::kError) << error;
    if (next == ExtentReader::Next::kEnd) {
      break;
    }
    ++extents;
    for (size_t r = 0; r < extent.num_rows(); ++r) {
      read_back.push_back(extent.Row(r));
    }
  }
  EXPECT_GT(extents, 1);  // the tiny target actually split the file
  EXPECT_EQ(reader->total_rows(), 50);
  EXPECT_EQ(reader->total_extents(), extents);
  ASSERT_EQ(read_back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ExpectRowsEqual(read_back[i], rows[i]);
  }
}

TEST_F(StoreTest, SeededRandomRowsRoundTripExactly) {
  // Property test: random rows over a pool of typed columns, random subsets
  // present per row, extreme values mixed in, many small extents. Types stay
  // consistent per column so every value is representable in typed storage.
  std::mt19937_64 rng(20260807);
  const int kNumRows = 2000;
  static const char* kStringPool[] = {"alpha", "beta", "", "va\"l,ue", "line\nbreak", "zz"};
  std::vector<ResultRow> rows;
  rows.reserve(kNumRows);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> pick(0, 5);
  std::uniform_int_distribution<int64_t> any_int(std::numeric_limits<int64_t>::min(),
                                                 std::numeric_limits<int64_t>::max());
  std::uniform_real_distribution<double> any_double(-1e12, 1e12);
  for (int i = 0; i < kNumRows; ++i) {
    ResultRow row;
    row.Set("id", static_cast<int64_t>(i));  // always present, always first
    if (coin(rng) != 0) {
      row.Set("flag", coin(rng) != 0);
    }
    if (coin(rng) != 0) {
      row.Set("small_int", static_cast<int64_t>(pick(rng)));
    }
    if (coin(rng) != 0) {
      row.Set("wild_int", any_int(rng));
    }
    if (coin(rng) != 0) {
      const int special = pick(rng);
      const double value = special == 0   ? std::numeric_limits<double>::quiet_NaN()
                           : special == 1 ? std::numeric_limits<double>::infinity()
                                          : any_double(rng);
      row.Set("metric", value);
    }
    if (coin(rng) != 0) {
      row.Set("label", kStringPool[pick(rng)]);
    }
    if (coin(rng) != 0) {
      row.Set("unique_tag", "tag-" + std::to_string(any_int(rng)));
    }
    rows.push_back(std::move(row));
  }

  WriterOptions options;
  options.extent_target_bytes = 900;
  WriteRows(Path(), rows, options);
  std::vector<ResultRow> read_back;
  std::string error;
  ASSERT_TRUE(ReadAllRows(Path(), &read_back, &error)) << error;
  ASSERT_EQ(read_back.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    ExpectRowsEqual(read_back[i], rows[i]);
  }
}

TEST_F(StoreTest, StoreSinkMatchesJsonlSinkThroughResultSinkInterface) {
  std::ostringstream jsonl;
  runner::JsonlSink jsonl_sink(jsonl);
  std::string error;
  std::unique_ptr<StoreSink> store_sink = StoreSink::Open(Path(), &error);
  ASSERT_NE(store_sink, nullptr) << error;
  runner::MultiSink multi;
  multi.AddSink(&jsonl_sink);
  multi.AddSink(store_sink.get());
  for (int i = 0; i < 10; ++i) {
    ResultRow row;
    row.Set("name", "r" + std::to_string(i)).Set("v", i * 1.5).Set("ok", i % 2 == 0);
    multi.Write(row);
  }
  multi.Flush();
  ASSERT_TRUE(store_sink->Close(&error)) << error;

  std::vector<ResultRow> read_back;
  ASSERT_TRUE(ReadAllRows(Path(), &read_back, &error)) << error;
  std::string rendered;
  for (const ResultRow& row : read_back) {
    rendered += RowToJson(row) + "\n";
  }
  EXPECT_EQ(rendered, jsonl.str());
}

TEST_F(StoreTest, TypeConflictedValueReadsBackAsNull) {
  // Column "v" establishes kString; the int64 that follows is a schema
  // conflict — typed storage nulls it (the JSONL sinks would still render
  // it, which is the documented asymmetry).
  std::vector<ResultRow> rows;
  ResultRow a;
  a.Set("name", "r0").Set("v", "text");
  ResultRow b;
  b.Set("name", "r1").Set("v", 7);
  rows.push_back(a);
  rows.push_back(b);
  WriteRows(Path(), rows);

  std::vector<ResultRow> read_back;
  std::string error;
  ASSERT_TRUE(ReadAllRows(Path(), &read_back, &error)) << error;
  ASSERT_EQ(read_back.size(), 2u);
  EXPECT_EQ(read_back[0].Find("v"), "text");
  EXPECT_EQ(read_back[1].Find("v"), std::nullopt);
  EXPECT_EQ(read_back[1].Find("name"), "r1");
}

TEST_F(StoreTest, EmptyFileRoundTrips) {
  WriteRows(Path(), {});
  std::vector<ResultRow> read_back;
  std::string error;
  ASSERT_TRUE(ReadAllRows(Path(), &read_back, &error)) << error;
  EXPECT_TRUE(read_back.empty());
}

TEST_F(StoreTest, UnfinalizedTempFileIsNotReadable) {
  std::string error;
  std::unique_ptr<ExtentWriter> writer = ExtentWriter::Open(Path(), &error);
  ASSERT_NE(writer, nullptr) << error;
  ResultRow row;
  row.Set("x", 1);
  writer->Append(row);
  ASSERT_TRUE(writer->Flush(&error)) << error;

  // Before Finalize, nothing exists at the final path (crash safety)...
  std::vector<ResultRow> rows;
  EXPECT_FALSE(ReadAllRows(Path(), &rows, &error));
  // ...and the temp file, even when readable, has no trailer.
  rows.clear();
  EXPECT_FALSE(ReadAllRows(Path() + ".tmp", &rows, &error));
  EXPECT_NE(error.find("trailer"), std::string::npos) << error;

  ASSERT_TRUE(writer->Finalize(&error)) << error;
  rows.clear();
  ASSERT_TRUE(ReadAllRows(Path(), &rows, &error)) << error;
  EXPECT_EQ(rows.size(), 1u);
}

TEST_F(StoreTest, AppendAfterFinalizeIsAStickyError) {
  std::string error;
  std::unique_ptr<ExtentWriter> writer = ExtentWriter::Open(Path(), &error);
  ASSERT_NE(writer, nullptr) << error;
  ResultRow row;
  row.Set("x", 1);
  writer->Append(row);
  ASSERT_TRUE(writer->Finalize(&error)) << error;
  writer->Append(row);
  EXPECT_FALSE(writer->Finalize(&error));
  EXPECT_NE(error.find("Append after Finalize"), std::string::npos) << error;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::vector<ResultRow> CorruptionSampleRows() {
  std::vector<ResultRow> rows;
  for (int i = 0; i < 40; ++i) {
    ResultRow row;
    row.Set("name", "row" + std::to_string(i % 5))
        .Set("step", static_cast<int64_t>(i))
        .Set("ok", i % 3 == 0)
        .Set("v", i * 0.25);
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST_F(StoreTest, EveryTruncationFailsCleanly) {
  WriterOptions options;
  options.extent_target_bytes = 256;  // several extents
  WriteRows(Path(), CorruptionSampleRows(), options);
  const std::string bytes = ReadFileBytes(Path());
  ASSERT_GT(bytes.size(), 100u);

  for (size_t length = 0; length < bytes.size(); ++length) {
    WriteFileBytes(Path(), bytes.substr(0, length));
    std::vector<ResultRow> rows;
    std::string error;
    EXPECT_FALSE(ReadAllRows(Path(), &rows, &error)) << "length " << length;
    EXPECT_FALSE(error.empty()) << "length " << length;
  }
}

TEST_F(StoreTest, EveryBitFlipFailsCleanlyOrNotAtAll) {
  WriteRows(Path(), CorruptionSampleRows());
  const std::string bytes = ReadFileBytes(Path());

  // Flipping any single bit anywhere in the file must never crash, and —
  // because every payload and the trailer are checksummed and the header
  // fields are validated — must always be detected.
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 7) {  // low and high bit of every byte
      std::string corrupted = bytes;
      corrupted[i] = static_cast<char>(corrupted[i] ^ (1 << bit));
      WriteFileBytes(Path(), corrupted);
      std::vector<ResultRow> rows;
      std::string error;
      EXPECT_FALSE(ReadAllRows(Path(), &rows, &error)) << "byte " << i << " bit " << bit;
      EXPECT_FALSE(error.empty()) << "byte " << i << " bit " << bit;
    }
  }
}

TEST_F(StoreTest, GarbageAndWrongVersionAreRejectedAtOpen) {
  std::vector<ResultRow> rows;
  std::string error;
  EXPECT_FALSE(ReadAllRows("store_test_no_such_file.hds", &rows, &error));

  WriteFileBytes(Path(), "this is not a store file at all");
  EXPECT_FALSE(ReadAllRows(Path(), &rows, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  std::string header;
  util::PutU32(header, kStoreMagic);
  util::PutU32(header, kStoreVersion + 1);
  util::PutU32(header, 0);
  WriteFileBytes(Path(), header);
  EXPECT_FALSE(ReadAllRows(Path(), &rows, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

}  // namespace
}  // namespace hetpipe::store
