// Tests for the parallel sweep runner subsystem: thread pool, partition
// cache, result sinks, and the determinism guarantee — a multi-threaded
// sweep must be element-wise identical to the serial run, and cache hits
// must return exactly what a cold solve returns.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/experiment.h"
#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "runner/cli.h"
#include "runner/partition_cache.h"
#include "runner/result_sink.h"
#include "runner/sweep_runner.h"
#include "runner/thread_pool.h"

namespace hetpipe::runner {
namespace {

// ---- ThreadPool ----

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> counts(257);
  pool.ParallelFor(257, [&](int64_t i) { counts[static_cast<size_t>(i)].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  pool.ParallelFor(16, [&](int64_t) {
    // From inside a worker this must degrade to a serial inline loop instead
    // of deadlocking on the queue.
    pool.ParallelFor(16, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16 * 16);
}

TEST(ThreadPoolTest, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](int64_t i) {
                         if (i == 13) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  int64_t sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(100, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, WorkStealingKeepsSkewedResultsInputOrderedAndSerialIdentical) {
  // Heavily skewed per-index costs: the first few indices dominate. The
  // work-stealing chunking must still run every index exactly once and
  // produce results element-wise identical to the serial loop.
  constexpr int64_t kN = 96;
  const auto task = [](int64_t i) {
    // Index 0..7 are ~1000x the work of the rest.
    const int64_t iterations = i < 8 ? 400000 : 400;
    double acc = static_cast<double>(i);
    for (int64_t t = 0; t < iterations; ++t) {
      acc = acc * 1.0000001 + 0.5;
    }
    return acc;
  };

  std::vector<double> serial(kN);
  for (int64_t i = 0; i < kN; ++i) {
    serial[static_cast<size_t>(i)] = task(i);
  }

  ThreadPool pool(8);
  std::vector<double> stolen(kN);
  std::vector<std::atomic<int>> runs(kN);
  pool.ParallelFor(kN, [&](int64_t i) {
    runs[static_cast<size_t>(i)].fetch_add(1);
    stolen[static_cast<size_t>(i)] = task(i);
  });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(runs[static_cast<size_t>(i)].load(), 1) << i;
    EXPECT_EQ(stolen[static_cast<size_t>(i)], serial[static_cast<size_t>(i)]) << i;
  }
}

// ---- PartitionCache ----

void ExpectSamePartition(const partition::Partition& a, const partition::Partition& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  ASSERT_EQ(a.num_stages(), b.num_stages());
  EXPECT_EQ(a.bottleneck_time, b.bottleneck_time);
  EXPECT_EQ(a.sum_time, b.sum_time);
  for (int q = 0; q < a.num_stages(); ++q) {
    const auto& sa = a.stages[static_cast<size_t>(q)];
    const auto& sb = b.stages[static_cast<size_t>(q)];
    EXPECT_EQ(sa.first_layer, sb.first_layer);
    EXPECT_EQ(sa.last_layer, sb.last_layer);
    EXPECT_EQ(sa.gpu_id, sb.gpu_id);
    EXPECT_EQ(sa.gpu_type, sb.gpu_type);
    EXPECT_EQ(sa.node, sb.node);
    EXPECT_EQ(sa.fwd_compute_s, sb.fwd_compute_s);
    EXPECT_EQ(sa.bwd_compute_s, sb.bwd_compute_s);
    EXPECT_EQ(sa.fwd_comm_in_s, sb.fwd_comm_in_s);
    EXPECT_EQ(sa.bwd_comm_in_s, sb.bwd_comm_in_s);
    EXPECT_EQ(sa.param_bytes, sb.param_bytes);
    EXPECT_EQ(sa.memory_bytes, sb.memory_bytes);
    EXPECT_EQ(sa.memory_cap, sb.memory_cap);
  }
}

TEST(PartitionCacheTest, HitReturnsColdSolveExactly) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  PartitionCache cache;

  for (int nm : {1, 2, 4}) {
    partition::PartitionOptions options;
    options.nm = nm;
    const partition::Partition cold = partitioner.Solve({0, 4, 8, 12}, options);
    const partition::Partition miss = cache.Solve(partitioner, {0, 4, 8, 12}, options);
    const partition::Partition hit = cache.Solve(partitioner, {0, 4, 8, 12}, options);
    ExpectSamePartition(cold, miss);
    ExpectSamePartition(cold, hit);
  }
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.hits(), 3);
  EXPECT_EQ(cache.size(), 3);
}

TEST(PartitionCacheTest, RemapsSameShapeDifferentGpuIds) {
  // The four ED virtual workers of the paper cluster all have shape
  // {V@0, R@1, G@2, Q@3} with different GPU ids; one solve must serve all.
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  PartitionCache cache;

  partition::PartitionOptions options;
  options.nm = 3;
  cache.Solve(partitioner, {0, 4, 8, 12}, options);
  EXPECT_EQ(cache.misses(), 1);
  for (const std::vector<int>& vw : {std::vector<int>{1, 5, 9, 13},
                                     std::vector<int>{2, 6, 10, 14},
                                     std::vector<int>{3, 7, 11, 15}}) {
    const partition::Partition direct = partitioner.Solve(vw, options);
    const partition::Partition cached = cache.Solve(partitioner, vw, options);
    ExpectSamePartition(direct, cached);  // includes the remapped gpu ids
  }
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_EQ(cache.hits(), 3);
}

TEST(PartitionCacheTest, FixedOrderSolvesKeyOnTheOrder) {
  // With the order search off, gpu_ids order IS the stage order: two orders
  // of the same multiset are different problems and must not share an entry.
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  PartitionCache cache;

  partition::PartitionOptions options;
  options.nm = 1;
  options.search_gpu_orders = false;
  const std::vector<int> vr = {0, 4};  // V stage 0, R stage 1
  const std::vector<int> rv = {4, 0};  // R stage 0, V stage 1
  ExpectSamePartition(partitioner.Solve(vr, options), cache.Solve(partitioner, vr, options));
  ExpectSamePartition(partitioner.Solve(rv, options), cache.Solve(partitioner, rv, options));
  EXPECT_EQ(cache.misses(), 2);
  ExpectSamePartition(partitioner.Solve(rv, options), cache.Solve(partitioner, rv, options));
  EXPECT_EQ(cache.hits(), 1);
}

TEST(PartitionCacheTest, NonExactStrategiesGetTheirOwnKeys) {
  // A forced beam (or hierarchical) search may return a different partition
  // than the exact search on the same virtual worker, so a non-exact
  // RESOLVED strategy must never alias an exact entry — while the exact
  // path's keys stay byte-identical to the pre-scalable-tier keys (kAuto on
  // paper-scale inputs resolves to exact and shares them).
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  PartitionCache cache;

  partition::PartitionOptions options;
  options.nm = 2;
  partition::PartitionOptions beam_options = options;
  beam_options.strategy = partition::SearchStrategy::kBeam;

  const partition::Partition exact = cache.Solve(partitioner, {0, 4, 8, 12}, options);
  const partition::Partition beam = cache.Solve(partitioner, {0, 4, 8, 12}, beam_options);
  EXPECT_EQ(cache.misses(), 2);  // distinct keys: no aliasing either way
  EXPECT_EQ(cache.size(), 2);
  ExpectSamePartition(exact, partitioner.Solve({0, 4, 8, 12}, options));
  ExpectSamePartition(beam, partitioner.SolveBeam({0, 4, 8, 12}, beam_options));

  // Both entries hit on repeat, and each hit returns its own strategy's
  // result.
  ExpectSamePartition(cache.Solve(partitioner, {0, 4, 8, 12}, options), exact);
  ExpectSamePartition(cache.Solve(partitioner, {0, 4, 8, 12}, beam_options), beam);
  EXPECT_EQ(cache.hits(), 2);

  // The knobs that shape a non-exact search are part of its key.
  beam_options.beam_width = 3;
  (void)cache.Solve(partitioner, {0, 4, 8, 12}, beam_options);
  EXPECT_EQ(cache.misses(), 3);

  // An explicit kExact rides the same key as the kAuto-resolved exact entry.
  partition::PartitionOptions explicit_exact = options;
  explicit_exact.strategy = partition::SearchStrategy::kExact;
  ExpectSamePartition(cache.Solve(partitioner, {0, 4, 8, 12}, explicit_exact), exact);
  EXPECT_EQ(cache.hits(), 3);
}

TEST(PartitionCacheTest, DistinguishesLinkParametersBeyondBandwidth) {
  // Latency / intercept shape TransferTime (and thus the optimal split) even
  // at identical peak bandwidth, so they must be part of the cache key.
  const std::vector<hw::NodeGpus> nodes = {{hw::GpuType::kTitanV, 4},
                                           {hw::GpuType::kQuadroP4000, 4}};
  const hw::Cluster fast_links(nodes, hw::PcieLink(), hw::InfinibandLink());
  const hw::Cluster slow_links(
      nodes, hw::PcieLink(hw::PcieLink::kDefaultPeakGBps, hw::PcieLink::kDefaultScaling, 5e-3),
      hw::InfinibandLink(hw::InfinibandLink::kDefaultRawGbits,
                         hw::InfinibandLink::kDefaultEfficiency, 20e-3));
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  PartitionCache cache;
  partition::PartitionOptions options;
  options.nm = 1;
  cache.Solve(partition::Partitioner(profile, fast_links), {0, 1, 4, 5}, options);
  cache.Solve(partition::Partitioner(profile, slow_links), {0, 1, 4, 5}, options);
  EXPECT_EQ(cache.misses(), 2);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(PartitionCacheTest, SpecLatencyKnobChangesTheKey) {
  // The ISSUE's acceptance scenario: two specs identical except for a link
  // latency/intercept knob must never share a cache entry — a warmed
  // --cache-file from one latency point would otherwise serve stale
  // partitions at another.
  const char* kBase = "gpu LatCard tflops=8 mem=32; node 2xLatCard; node 2xLatCard";
  const hw::Cluster fast = hw::ClusterSpec::Parse(kBase).Build();
  const hw::Cluster slow_inter =
      hw::ClusterSpec::Parse(std::string(kBase) + "; inter_intercept_s 0.005").Build();
  const hw::Cluster slow_intra =
      hw::ClusterSpec::Parse(std::string(kBase) + "; intra_latency_s 0.002").Build();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  PartitionCache cache;
  partition::PartitionOptions options;
  options.nm = 1;
  cache.Solve(partition::Partitioner(profile, fast), {0, 1, 2, 3}, options);
  cache.Solve(partition::Partitioner(profile, slow_inter), {0, 1, 2, 3}, options);
  cache.Solve(partition::Partitioner(profile, slow_intra), {0, 1, 2, 3}, options);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.hits(), 0);
  // Identical knobs still hit, of course.
  cache.Solve(partition::Partitioner(profile, slow_inter), {0, 1, 2, 3}, options);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(PartitionCacheTest, TopologyOnlyChangesAlterTheKey) {
  // The ISSUE's acceptance scenario: two specs identical except for rack
  // topology / a per-pair link override must never share a cache entry,
  // while racks that change no link (no cross-rack knob) keep sharing —
  // the solve really is identical there.
  const char* kBase = "gpu TopoCard tflops=8 mem=32; node 1xTopoCard; node 1xTopoCard; "
                      "node 1xTopoCard";
  const hw::Cluster plain = hw::ClusterSpec::Parse(kBase).Build();
  const hw::Cluster degraded =
      hw::ClusterSpec::Parse(std::string(kBase) + "; link node0<->node2 gbits 2").Build();
  const hw::Cluster racked_slow =
      hw::ClusterSpec::Parse(std::string(kBase) +
                             "; rack r0 { node0 node1 }; rack r1 { node2 };"
                             "cross_rack_gbits 5")
          .Build();
  const hw::Cluster racked_noop =
      hw::ClusterSpec::Parse(std::string(kBase) + "; rack r0 { node0 node1 }; rack r1 { node2 }")
          .Build();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  PartitionCache cache;
  partition::PartitionOptions options;
  options.nm = 1;
  cache.Solve(partition::Partitioner(profile, plain), {0, 1, 2}, options);
  cache.Solve(partition::Partitioner(profile, degraded), {0, 1, 2}, options);
  cache.Solve(partition::Partitioner(profile, racked_slow), {0, 1, 2}, options);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.hits(), 0);
  // Racks that leave every link untouched resolve to the plain fabric: hit.
  const partition::Partition hit =
      cache.Solve(partition::Partitioner(profile, racked_noop), {0, 1, 2}, options);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.hits(), 1);
  ExpectSamePartition(partition::Partitioner(profile, racked_noop).Solve({0, 1, 2}, options),
                      hit);
}

TEST(ThreadPoolTest, SubmitRunsEveryTaskBeforeDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // The destructor drains the queue before joining, so nothing submitted
    // is ever silently dropped.
  }
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SubmitOnSingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  int ran = 0;  // no atomics: a 1-thread pool has no dedicated workers
  pool.Submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(PartitionCacheTest, CapacityBoundEvictsLeastRecentlyUsed) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  PartitionCache cache;
  cache.SetCapacity(2);
  EXPECT_EQ(cache.capacity(), 2);

  const auto solve_nm = [&](int nm) {
    partition::PartitionOptions options;
    options.nm = nm;
    cache.Solve(partitioner, {0, 4, 8, 12}, options);
  };
  solve_nm(1);  // miss
  solve_nm(2);  // miss
  solve_nm(1);  // hit — refreshes nm=1's stamp, so nm=2 is now the LRU entry
  solve_nm(3);  // miss; inserting over the bound evicts nm=2
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.evictions(), 1);
  solve_nm(1);  // still cached: a hit
  solve_nm(2);  // evicted: a miss again
  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 4);
}

TEST(PartitionCacheTest, ShrinkingCapacityEvictsImmediately) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  PartitionCache cache;
  for (int nm : {1, 2, 3}) {
    partition::PartitionOptions options;
    options.nm = nm;
    cache.Solve(partitioner, {0, 4, 8, 12}, options);
  }
  ASSERT_EQ(cache.size(), 3);
  cache.SetCapacity(1);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.evictions(), 2);
  cache.SetCapacity(0);  // unbounded again; nothing further is evicted
  partition::PartitionOptions options;
  options.nm = 4;
  cache.Solve(partitioner, {0, 4, 8, 12}, options);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.evictions(), 2);
}

TEST(PartitionCacheTest, LoadedEntriesEvictBeforeMaterializedOnes) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::string path = testing::TempDir() + "hetpipe_pcache_evict_pending.bin";

  PartitionCache warm;
  for (int nm : {1, 2}) {
    partition::PartitionOptions options;
    options.nm = nm;
    warm.Solve(partitioner, {0, 4, 8, 12}, options);
  }
  ASSERT_TRUE(warm.Save(path));

  PartitionCache cache;
  partition::PartitionOptions options;
  options.nm = 3;
  cache.Solve(partitioner, {0, 4, 8, 12}, options);  // materialized entry
  ASSERT_TRUE(cache.Load(path));                     // + two never-requested entries
  ASSERT_EQ(cache.size(), 3);

  // Shrinking to one entry must drop the loaded-but-never-requested entries
  // first: they rank older than anything a request ever touched.
  cache.SetCapacity(1);
  EXPECT_EQ(cache.size(), 1);
  EXPECT_EQ(cache.evictions(), 2);
  bool was_hit = false;
  cache.Solve(partitioner, {0, 4, 8, 12}, options, &was_hit);
  EXPECT_TRUE(was_hit);
  std::remove(path.c_str());
}

TEST(PartitionCacheTest, ConcurrentReadersWritersAndSavesStayExact) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::string path = testing::TempDir() + "hetpipe_pcache_concurrent.bin";

  // The oracle: cold solves of the four keys the threads will hammer.
  partition::Partition expected[4];
  for (int nm = 1; nm <= 4; ++nm) {
    partition::PartitionOptions options;
    options.nm = nm;
    expected[nm - 1] = partitioner.Solve({0, 4, 8, 12}, options);
  }

  PartitionCache cache;
  std::atomic<int> mismatches{0};
  ThreadPool pool(8);
  pool.ParallelFor(200, [&](int64_t i) {
    partition::PartitionOptions options;
    options.nm = 1 + static_cast<int>(i % 4);
    const partition::Partition got = cache.Solve(partitioner, {0, 4, 8, 12}, options);
    const partition::Partition& want = expected[options.nm - 1];
    if (got.bottleneck_time != want.bottleneck_time || got.sum_time != want.sum_time ||
        got.num_stages() != want.num_stages()) {
      mismatches.fetch_add(1);
    }
    // Interleave saves with the solves: Save holds only the shared lock.
    if (i % 17 == 0) {
      cache.Save(path);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), 4);
  // Concurrent first-misses on one key may each count a miss (both threads
  // solved before either inserted), but every request is accounted exactly
  // once and at least one miss per key happened.
  EXPECT_EQ(cache.hits() + cache.misses(), 200);
  EXPECT_GE(cache.misses(), 4);

  // A snapshot taken mid-run is a valid file.
  PartitionCache reloaded;
  std::string error;
  ASSERT_TRUE(reloaded.Load(path, &error)) << error;
  EXPECT_GE(reloaded.size(), 1);
  std::remove(path.c_str());
}

TEST(PartitionCacheTest, DistinguishesNmAndMemParams) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  PartitionCache cache;

  partition::PartitionOptions a;
  a.nm = 1;
  partition::PartitionOptions b = a;
  b.nm = 2;
  partition::PartitionOptions c = a;
  c.mem_params.stash_weights = false;
  cache.Solve(partitioner, {0, 4, 8, 12}, a);
  cache.Solve(partitioner, {0, 4, 8, 12}, b);
  cache.Solve(partitioner, {0, 4, 8, 12}, c);
  EXPECT_EQ(cache.misses(), 3);
  EXPECT_EQ(cache.hits(), 0);
}

// ---- PartitionCache disk persistence ----

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(PartitionCacheFileTest, SaveLoadSolveRoundTripIsHitIdentical) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::string path = testing::TempDir() + "hetpipe_pcache_roundtrip.bin";

  PartitionCache warm;
  partition::PartitionOptions options;
  for (int nm : {1, 2, 3}) {
    options.nm = nm;
    warm.Solve(partitioner, {0, 4, 8, 12}, options);
    warm.Solve(partitioner, {0, 1, 12, 13}, options);
  }
  ASSERT_EQ(warm.size(), 6);
  std::string error;
  ASSERT_TRUE(warm.Save(path, &error)) << error;

  // A fresh process-equivalent: every Solve must be a hit and must return
  // exactly what a cold solve returns.
  PartitionCache loaded;
  ASSERT_TRUE(loaded.Load(path, &error)) << error;
  EXPECT_EQ(loaded.size(), 6);
  for (int nm : {1, 2, 3}) {
    options.nm = nm;
    for (const std::vector<int>& vw :
         {std::vector<int>{0, 4, 8, 12}, std::vector<int>{0, 1, 12, 13}}) {
      const partition::Partition cold = partitioner.Solve(vw, options);
      const partition::Partition hit = loaded.Solve(partitioner, vw, options);
      ExpectSamePartition(cold, hit);
    }
  }
  EXPECT_EQ(loaded.hits(), 6);
  EXPECT_EQ(loaded.misses(), 0);

  // Remapping onto different GPU ids of the same shape works from disk too.
  options.nm = 2;
  const partition::Partition remapped = loaded.Solve(partitioner, {1, 5, 9, 13}, options);
  ExpectSamePartition(partitioner.Solve({1, 5, 9, 13}, options), remapped);
  EXPECT_EQ(loaded.misses(), 0);
  std::remove(path.c_str());
}

TEST(PartitionCacheFileTest, RejectsTruncatedCorruptedAndMismatchedFiles) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::string path = testing::TempDir() + "hetpipe_pcache_broken.bin";

  PartitionCache warm;
  partition::PartitionOptions options;
  options.nm = 1;
  warm.Solve(partitioner, {0, 4, 8, 12}, options);
  ASSERT_TRUE(warm.Save(path));
  const std::string good = ReadFileBytes(path);
  ASSERT_GT(good.size(), 64u);

  std::string error;
  PartitionCache cache;

  // Missing file.
  EXPECT_FALSE(cache.Load(path + ".does-not-exist", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

  // Truncated at several points, including mid-header and mid-records.
  for (const size_t keep : {size_t{3}, size_t{10}, good.size() / 2, good.size() - 1}) {
    WriteFileBytes(path, good.substr(0, keep));
    EXPECT_FALSE(cache.Load(path, &error)) << "kept " << keep << " bytes";
    EXPECT_EQ(cache.size(), 0) << "a rejected file must leave the cache unchanged";
  }

  // A flipped byte in the records region fails the checksum.
  std::string corrupted = good;
  corrupted[corrupted.size() / 2] = static_cast<char>(corrupted[corrupted.size() / 2] ^ 0x5a);
  WriteFileBytes(path, corrupted);
  EXPECT_FALSE(cache.Load(path, &error));
  EXPECT_NE(error.find("corrupted"), std::string::npos) << error;

  // Wrong magic.
  std::string bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0xff);
  WriteFileBytes(path, bad_magic);
  EXPECT_FALSE(cache.Load(path, &error));
  EXPECT_NE(error.find("not a partition cache"), std::string::npos) << error;

  // Future version.
  std::string bad_version = good;
  bad_version[4] = static_cast<char>(bad_version[4] + 1);
  WriteFileBytes(path, bad_version);
  EXPECT_FALSE(cache.Load(path, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  // Trailing garbage after the entries is rejected too.
  WriteFileBytes(path, good + "garbage");
  EXPECT_FALSE(cache.Load(path, &error));

  EXPECT_EQ(cache.size(), 0);
  EXPECT_EQ(cache.hits(), 0);

  // The pristine bytes still load after all that.
  WriteFileBytes(path, good);
  EXPECT_TRUE(cache.Load(path, &error)) << error;
  EXPECT_EQ(cache.size(), 1);
  std::remove(path.c_str());
}

TEST(PartitionCacheFileTest, SaveIsAtomicWriteThenRename) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::string path = testing::TempDir() + "hetpipe_pcache_atomic.bin";

  PartitionCache warm;
  partition::PartitionOptions options;
  options.nm = 1;
  warm.Solve(partitioner, {0, 4, 8, 12}, options);
  ASSERT_TRUE(warm.Save(path));
  // The temp file was renamed over the target, not left behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  const std::string first = ReadFileBytes(path);
  ASSERT_FALSE(first.empty());

  // Saving over an existing file replaces it completely (no append, no
  // partial mix of old and new bytes).
  options.nm = 2;
  warm.Solve(partitioner, {0, 4, 8, 12}, options);
  ASSERT_TRUE(warm.Save(path));
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  PartitionCache reloaded;
  ASSERT_TRUE(reloaded.Load(path));
  EXPECT_EQ(reloaded.size(), 2);

  // An unwritable destination fails without touching the target: the temp
  // file cannot even be created, so the existing bytes survive.
  const std::string untouched = ReadFileBytes(path);
  std::string error;
  EXPECT_FALSE(warm.Save("/nonexistent-dir-hetpipe/cache.bin", &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
  EXPECT_EQ(ReadFileBytes(path), untouched);
  std::remove(path.c_str());
}

TEST(PartitionCacheFileTest, RejectsVersion2Files) {
  // PR 5 bumped the cache format to v3 (per-node-pair link probes in the
  // key); a v2-era file must be rejected by version, never half-read. This
  // pins the bump itself, not just "some other version fails".
  const std::string path = testing::TempDir() + "hetpipe_pcache_v2.bin";
  std::string v2;
  const uint32_t magic = 0x31435048;  // "HPC1"
  const uint32_t version = 2;
  const uint64_t count = 0;
  const uint64_t empty_checksum = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  v2.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  v2.append(reinterpret_cast<const char*>(&version), sizeof(version));
  v2.append(reinterpret_cast<const char*>(&count), sizeof(count));
  v2.append(reinterpret_cast<const char*>(&empty_checksum), sizeof(empty_checksum));
  WriteFileBytes(path, v2);

  PartitionCache cache;
  std::string error;
  EXPECT_FALSE(cache.Load(path, &error));
  EXPECT_NE(error.find("version 2"), std::string::npos) << error;
  EXPECT_NE(error.find("expected 3"), std::string::npos) << error;
  EXPECT_EQ(cache.size(), 0);
  std::remove(path.c_str());
}

TEST(PartitionCacheFileTest, LoadMergesWithoutOverwritingExistingEntries) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::string path = testing::TempDir() + "hetpipe_pcache_merge.bin";

  PartitionCache first;
  partition::PartitionOptions options;
  options.nm = 1;
  first.Solve(partitioner, {0, 4, 8, 12}, options);
  ASSERT_TRUE(first.Save(path));

  PartitionCache second;
  options.nm = 2;
  second.Solve(partitioner, {0, 4, 8, 12}, options);
  ASSERT_TRUE(second.Load(path));
  EXPECT_EQ(second.size(), 2);  // nm=2 solved here + nm=1 from disk

  // Saving the merged cache keeps both entries (materialized and pending).
  ASSERT_TRUE(second.Save(path));
  PartitionCache third;
  ASSERT_TRUE(third.Load(path));
  EXPECT_EQ(third.size(), 2);
  options.nm = 1;
  ExpectSamePartition(partitioner.Solve({0, 4, 8, 12}, options),
                      third.Solve(partitioner, {0, 4, 8, 12}, options));
  options.nm = 2;
  ExpectSamePartition(partitioner.Solve({0, 4, 8, 12}, options),
                      third.Solve(partitioner, {0, 4, 8, 12}, options));
  EXPECT_EQ(third.hits(), 2);
  EXPECT_EQ(third.misses(), 0);
  std::remove(path.c_str());
}

// ---- BenchArgs: the --cache-file guard and strict flag parsing ----

BenchArgs ParseArgs(std::vector<std::string> argv_strings) {
  argv_strings.insert(argv_strings.begin(), "bench");
  std::vector<char*> argv;
  argv.reserve(argv_strings.size());
  for (std::string& arg : argv_strings) {
    argv.push_back(arg.data());
  }
  return BenchArgs::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgsTest, DoesNotClobberUnloadableCacheFileWithAnEmptyCache) {
  const std::string path = testing::TempDir() + "hetpipe_cli_corrupt.cache";
  const std::string garbage = "not a cache file at all";
  WriteFileBytes(path, garbage);

  {
    // Load fails (present but unusable), no entries are added: the
    // destructor must leave the file untouched instead of truncating it to
    // an empty cache.
    BenchArgs args = ParseArgs({"--cache-file=" + path});
    ASSERT_NE(args.cache(), nullptr);
    EXPECT_EQ(args.cache()->size(), 0);
  }
  EXPECT_EQ(ReadFileBytes(path), garbage);

  {
    // Once the run produced entries, saving over the unusable file is the
    // right trade: fresh valuable state replaces bytes nothing can load.
    BenchArgs args = ParseArgs({"--cache-file=" + path});
    const hw::Cluster cluster = hw::Cluster::Paper();
    const model::ModelGraph graph = model::BuildResNet152();
    const model::ModelProfile profile(graph, 32);
    const partition::Partitioner partitioner(profile, cluster);
    partition::PartitionOptions options;
    options.nm = 1;
    args.cache()->Solve(partitioner, {0, 4, 8, 12}, options);
  }
  PartitionCache reloaded;
  std::string error;
  EXPECT_TRUE(reloaded.Load(path, &error)) << error;
  EXPECT_EQ(reloaded.size(), 1);
  std::remove(path.c_str());
}

TEST(BenchArgsTest, ParseIntFlagIsStrict) {
  int value = 0;
  EXPECT_TRUE(ParseIntFlag("12", &value));
  EXPECT_EQ(value, 12);
  EXPECT_TRUE(ParseIntFlag("-3", &value));
  EXPECT_EQ(value, -3);
  // std::atoi would silently turn all of these into 0 or truncate "3x".
  EXPECT_FALSE(ParseIntFlag("", &value));
  EXPECT_FALSE(ParseIntFlag("abc", &value));
  EXPECT_FALSE(ParseIntFlag("3x", &value));
  EXPECT_FALSE(ParseIntFlag(" 4", &value));
  EXPECT_FALSE(ParseIntFlag("99999999999999999999", &value));
}

// ---- Partitioner: pruning and parallel order search never change results ----

TEST(PartitionerSearchTest, PruningAndParallelSearchAreExact) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  ThreadPool pool(8);
  for (const bool vgg : {false, true}) {
    const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();
    const model::ModelProfile profile(graph, 32);
    const partition::Partitioner partitioner(profile, cluster);
    for (const char* codes : {"VRGQ", "VVQQ", "RRGG"}) {
      for (int nm : {1, 3, 5}) {
        const std::vector<int> gpus = core::PickGpusByCode(cluster, codes);
        partition::PartitionOptions unpruned;
        unpruned.nm = nm;
        unpruned.prune = false;
        partition::PartitionOptions pruned = unpruned;
        pruned.prune = true;
        partition::PartitionOptions parallel = pruned;
        parallel.pool = &pool;

        const partition::Partition base = partitioner.Solve(gpus, unpruned);
        ExpectSamePartition(base, partitioner.Solve(gpus, pruned));
        ExpectSamePartition(base, partitioner.Solve(gpus, parallel));
      }
    }
  }
}

// ---- ResultSink ----

TEST(ResultSinkTest, JsonlEscapesAndTypes) {
  std::ostringstream out;
  JsonlSink sink(out);
  ResultRow row;
  row.Set("name", "a \"quoted\" label").Set("n", 3).Set("x", 1.5).Set("ok", true);
  sink.Write(row);
  EXPECT_EQ(out.str(), "{\"name\":\"a \\\"quoted\\\" label\",\"n\":3,\"x\":1.5,\"ok\":true}\n");
}

TEST(ResultSinkTest, CsvUnionsColumnsAcrossRows) {
  std::ostringstream out;
  {
    CsvSink sink(out);
    ResultRow a;
    a.Set("name", "first").Set("x", 1.0);
    ResultRow b;
    b.Set("name", "with,comma").Set("y", 2);
    sink.Write(a);
    sink.Write(b);
    sink.Flush();
  }
  EXPECT_EQ(out.str(),
            "name,x,y\n"
            "first,1,\n"
            "\"with,comma\",,2\n");
}

TEST(ResultSinkTest, CsvKeepsWritingAcrossFlushes) {
  // Benches flush after every sweep batch; rows written after the first
  // Flush must still reach the output (header only once).
  std::ostringstream out;
  CsvSink sink(out);
  ResultRow a;
  a.Set("name", "r1").Set("x", 1);
  sink.Write(a);
  sink.Flush();
  ResultRow b;
  b.Set("name", "r2").Set("x", 2);
  sink.Write(b);
  sink.Flush();
  sink.Flush();  // idempotent with nothing buffered
  EXPECT_EQ(out.str(),
            "name,x\n"
            "r1,1\n"
            "r2,2\n");
}

TEST(ResultSinkTest, JsonlEscapesControlCharacters) {
  // \r and other sub-0x20 bytes passed through raw make the line invalid
  // JSON; every parser rejects it. Short escapes where JSON has them,
  // \u00XX for the rest.
  std::ostringstream out;
  JsonlSink sink(out);
  ResultRow row;
  // Adjacent literals keep the hex escapes from greedily eating the next
  // character ("\x01c" would parse as \x1c).
  row.Set("s", std::string("a\rb\x01" "c\x1f" "d\be\ff"));
  sink.Write(row);
  EXPECT_EQ(out.str(), "{\"s\":\"a\\rb\\u0001c\\u001Fd\\be\\ff\"}\n");
}

TEST(ResultSinkTest, JsonlRendersNonFiniteDoublesAsNull) {
  // JSON has no literal for NaN or the infinities; "inf" is unparseable.
  const double inf = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  JsonlSink sink(out);
  ResultRow row;
  row.Set("nan", std::nan("")).Set("pinf", inf).Set("ninf", -inf).Set("x", 2.0);
  sink.Write(row);
  EXPECT_EQ(out.str(), "{\"nan\":null,\"pinf\":null,\"ninf\":null,\"x\":2}\n");
}

TEST(ResultSinkTest, CsvRendersNonFiniteDoublesAsEmpty) {
  // CSV has no null literal; an empty cell is the conventional "missing"
  // spelling that numeric column parsers accept.
  const double inf = std::numeric_limits<double>::infinity();
  std::ostringstream out;
  {
    CsvSink sink(out);
    ResultRow row;
    row.Set("nan", std::nan("")).Set("pinf", inf).Set("ninf", -inf).Set("x", 2.0);
    sink.Write(row);
  }
  EXPECT_EQ(out.str(),
            "nan,pinf,ninf,x\n"
            ",,,2\n");
}

TEST(ResultSinkTest, CsvReportsColumnsFirstSeenAfterTheHeader) {
  // The header freezes at the first flush; a key appearing only in later
  // rows cannot get a column anymore, but it must be reported (stderr +
  // dropped_columns()), never lost silently.
  std::ostringstream out;
  CsvSink sink(out);
  ResultRow a;
  a.Set("name", "r1").Set("x", 1);
  sink.Write(a);
  sink.Flush();
  EXPECT_TRUE(sink.dropped_columns().empty());

  ResultRow b;
  b.Set("name", "r2").Set("x", 2).Set("late", 7);
  sink.Write(b);
  sink.Write(b);  // the same late key must be reported once, not per row
  sink.Flush();
  ASSERT_EQ(sink.dropped_columns().size(), 1u);
  EXPECT_EQ(sink.dropped_columns()[0], "late");

  // Known columns still render; the output stays rectangular.
  EXPECT_EQ(out.str(),
            "name,x\n"
            "r1,1\n"
            "r2,2\n"
            "r2,2\n");

  // Keys buffered before the first flush all make the header — evolution
  // inside one buffered batch loses nothing.
  std::ostringstream out2;
  CsvSink sink2(out2);
  ResultRow c;
  c.Set("name", "r1");
  ResultRow d;
  d.Set("name", "r2").Set("extra", true);
  sink2.Write(c);
  sink2.Write(d);
  sink2.Flush();
  EXPECT_TRUE(sink2.dropped_columns().empty());
  EXPECT_EQ(out2.str(),
            "name,extra\n"
            "r1,\n"
            "r2,true\n");
}

TEST(ResultSinkTest, RowGetRendersValues) {
  ResultRow row;
  row.Set("a", 2.5).Set("b", "text").Set("c", false);
  EXPECT_EQ(row.Get("a"), "2.5");
  EXPECT_EQ(row.Get("b"), "text");
  EXPECT_EQ(row.Get("c"), "false");
  EXPECT_EQ(row.Get("missing"), "");
}

TEST(ResultSinkTest, FindDistinguishesAbsentFromEmpty) {
  ResultRow row;
  row.Set("empty", "").Set("x", 1);
  EXPECT_EQ(row.Find("empty"), "");          // present but empty
  EXPECT_EQ(row.Find("missing"), std::nullopt);  // absent
  EXPECT_EQ(row.Get("empty"), row.Get("missing"));  // Get collapses the two

  ASSERT_NE(row.FindValue("x"), nullptr);
  EXPECT_EQ(std::get<int64_t>(*row.FindValue("x")), 1);
  EXPECT_EQ(row.FindValue("missing"), nullptr);
}

TEST(SchemaTest, ObserveAppendsColumnsInFirstSeenOrder) {
  Schema schema;
  ResultRow a;
  a.Set("name", "r1").Set("x", 1);
  ResultRow b;
  b.Set("x", 2).Set("name", "r2").Set("extra", true);
  schema.Observe(a);
  schema.Observe(b);
  ASSERT_EQ(schema.size(), 3u);
  EXPECT_EQ(schema.columns()[0].name, "name");
  EXPECT_EQ(schema.columns()[0].type, ValueType::kString);
  EXPECT_EQ(schema.columns()[1].name, "x");
  EXPECT_EQ(schema.columns()[1].type, ValueType::kInt64);
  EXPECT_EQ(schema.columns()[2].name, "extra");
  EXPECT_EQ(schema.columns()[2].type, ValueType::kBool);
  EXPECT_EQ(schema.IndexOf("x"), 1);
  EXPECT_EQ(schema.IndexOf("nope"), -1);
  EXPECT_EQ(schema.conflicts(), 0);
}

TEST(SchemaTest, Int64AndDoublePromoteWithoutConflict) {
  Schema schema;
  ResultRow a;
  a.Set("v", 1);
  ResultRow b;
  b.Set("v", 2.5);
  schema.Observe(a);
  EXPECT_EQ(schema.columns()[0].type, ValueType::kInt64);
  schema.Observe(b);
  EXPECT_EQ(schema.columns()[0].type, ValueType::kDouble);
  schema.Observe(a);  // int64 on a kDouble column is absorbed, not a conflict
  EXPECT_EQ(schema.columns()[0].type, ValueType::kDouble);
  EXPECT_EQ(schema.conflicts(), 0);
}

TEST(SchemaTest, OtherTypeMixesCountAsConflicts) {
  Schema schema;
  ResultRow a;
  a.Set("v", "text");
  ResultRow b;
  b.Set("v", 3);
  schema.Observe(a);
  schema.Observe(b);
  EXPECT_EQ(schema.columns()[0].type, ValueType::kString);  // established type wins
  EXPECT_EQ(schema.conflicts(), 1);
}

TEST(SchemaTest, FreezeRecordsLateColumns) {
  Schema schema;
  ResultRow a;
  a.Set("name", "r1");
  schema.Observe(a);
  schema.Freeze();
  EXPECT_TRUE(schema.frozen());
  EXPECT_EQ(schema.frozen_size(), 1u);
  ResultRow b;
  b.Set("name", "r2").Set("late", 1);
  schema.Observe(b);
  EXPECT_EQ(schema.size(), 2u);       // still recorded...
  EXPECT_EQ(schema.frozen_size(), 1u);  // ...but past the frozen prefix
  ASSERT_EQ(schema.late_columns().size(), 1u);
  EXPECT_EQ(schema.late_columns()[0], "late");
}

TEST(SchemaTest, ProjectAlignsRowValuesToColumns) {
  Schema schema;
  ResultRow a;
  a.Set("name", "r1").Set("x", 1);
  schema.Observe(a);
  ResultRow b;
  b.Set("x", 7);  // no "name"
  const std::vector<const Value*> values = schema.Project(b);
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], nullptr);
  ASSERT_NE(values[1], nullptr);
  EXPECT_EQ(std::get<int64_t>(*values[1]), 7);
}

TEST(ResultSinkTest, SinkAccumulatesSchemaAcrossWrites) {
  std::ostringstream out;
  JsonlSink sink(out);
  ResultRow a;
  a.Set("name", "r1").Set("x", 1);
  ResultRow b;
  b.Set("name", "r2").Set("y", 2.5);
  sink.Write(a);
  sink.Write(b);
  ASSERT_EQ(sink.schema().size(), 3u);
  EXPECT_EQ(sink.schema().columns()[0].name, "name");
  EXPECT_EQ(sink.schema().columns()[1].name, "x");
  EXPECT_EQ(sink.schema().columns()[2].name, "y");
}

// ---- SweepRunner determinism: the ISSUE's acceptance test ----

std::vector<core::Experiment> BuildDeterminismSweep() {
  // 2 models x 7 VW shapes x 5 Nm = 70 >= 64 configurations.
  const char* kCodes[] = {"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ", "RRGG"};
  std::vector<core::Experiment> experiments;
  for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
    for (const char* codes : kCodes) {
      for (int nm = 1; nm <= 5; ++nm) {
        core::Experiment e;
        e.kind = core::ExperimentKind::kSingleVirtualWorker;
        e.model = model;
        e.vw_codes = codes;
        e.config.nm = nm;
        e.config.jitter_cv = 0.05;  // exercise the seeded RNG path too
        e.config.waves = 12;
        e.config.warmup_waves = 2;
        experiments.push_back(std::move(e));
      }
    }
  }
  return experiments;
}

void ExpectSameResults(const std::vector<core::ExperimentResult>& a,
                       const std::vector<core::ExperimentResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name) << i;
    EXPECT_EQ(a[i].feasible, b[i].feasible) << i;
    EXPECT_EQ(a[i].throughput_img_s, b[i].throughput_img_s) << i;  // bit-identical
    ExpectSamePartition(a[i].partition, b[i].partition);
  }
}

TEST(SweepRunnerTest, EightThreadSweepMatchesSerialElementwise) {
  const std::vector<core::Experiment> experiments = BuildDeterminismSweep();
  ASSERT_GE(experiments.size(), 64u);

  // Ground truth: direct serial execution with no cache and no pool.
  std::vector<core::ExperimentResult> direct;
  direct.reserve(experiments.size());
  for (const core::Experiment& e : experiments) {
    direct.push_back(core::RunExperiment(e));
  }

  SweepOptions serial_options;
  serial_options.threads = 1;
  SweepRunner serial(serial_options);
  ExpectSameResults(direct, serial.Run(experiments));

  SweepOptions parallel_options;
  parallel_options.threads = 8;
  SweepRunner parallel(parallel_options);
  ExpectSameResults(direct, parallel.Run(experiments));
  EXPECT_GT(parallel.cache().hits() + parallel.cache().misses(), 0);

  // Re-running on the warm cache must change nothing either.
  ExpectSameResults(direct, parallel.Run(experiments));
}

TEST(SweepRunnerTest, RunWritesRowsInExperimentOrder) {
  std::vector<core::Experiment> experiments;
  for (int nm : {1, 2, 3}) {
    core::Experiment e;
    e.name = "nm" + std::to_string(nm);
    e.kind = core::ExperimentKind::kSingleVirtualWorker;
    e.model = core::ModelKind::kVgg19;
    e.vw_codes = "VRGQ";
    e.config.nm = nm;
    e.config.waves = 8;
    e.config.warmup_waves = 2;
    experiments.push_back(std::move(e));
  }

  std::ostringstream out;
  JsonlSink sink(out);
  SweepOptions options;
  options.threads = 8;
  options.sink = &sink;
  SweepRunner sweep(options);
  sweep.Run(experiments);

  std::istringstream lines(out.str());
  std::string line;
  for (int nm : {1, 2, 3}) {
    ASSERT_TRUE(static_cast<bool>(std::getline(lines, line)));
    EXPECT_NE(line.find("\"name\":\"nm" + std::to_string(nm) + "\""), std::string::npos)
        << line;
  }
}

TEST(SweepRunnerTest, NestedSweepsOnASharedPoolMatchSerial) {
  // Outer SweepRunner::Map tasks each construct an inner SweepRunner that
  // shares the outer pool (SweepOptions::pool) and cache. The nested
  // ParallelFor degrades to inline execution on the worker, so this neither
  // deadlocks nor spins up one thread set per inner runner — and every row
  // is identical to the plain serial run.
  const std::vector<core::Experiment> experiments = BuildDeterminismSweep();
  std::vector<core::ExperimentResult> direct;
  direct.reserve(experiments.size());
  for (const core::Experiment& e : experiments) {
    direct.push_back(core::RunExperiment(e));
  }

  SweepOptions outer_options;
  outer_options.threads = 8;
  SweepRunner outer(outer_options);
  constexpr int64_t kGroups = 5;
  const auto nested = outer.Map<std::vector<core::ExperimentResult>>(
      kGroups, [&](int64_t group) {
        std::vector<core::Experiment> slice;
        for (size_t i = static_cast<size_t>(group); i < experiments.size();
             i += static_cast<size_t>(kGroups)) {
          slice.push_back(experiments[i]);
        }
        SweepOptions inner_options;
        inner_options.pool = &outer.pool();
        inner_options.cache = &outer.cache();
        SweepRunner inner(inner_options);
        // The inner runner really shares the outer pool, not a new one.
        EXPECT_EQ(&inner.pool(), &outer.pool());
        return inner.Run(slice);
      });

  std::vector<core::ExperimentResult> flattened(experiments.size());
  for (int64_t group = 0; group < kGroups; ++group) {
    const auto& slice = nested[static_cast<size_t>(group)];
    for (size_t s = 0; s < slice.size(); ++s) {
      flattened[static_cast<size_t>(group) + s * static_cast<size_t>(kGroups)] = slice[s];
    }
  }
  ExpectSameResults(direct, flattened);
}

TEST(SweepRunnerTest, MapIsDeterministicAndOrdered) {
  SweepOptions options;
  options.threads = 8;
  SweepRunner sweep(options);
  const std::vector<int64_t> squares =
      sweep.Map<int64_t>(100, [](int64_t i) { return i * i; });
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
  }
}

TEST(SweepRunnerTest, FullClusterExperimentsMatchDirectHetPipeRun) {
  // The cached, pooled full-cluster path must agree with a direct
  // HetPipe::Run using no cache at all.
  core::Experiment e;
  e.kind = core::ExperimentKind::kFullCluster;
  e.model = core::ModelKind::kVgg19;
  e.config = core::EdLocalConfig(/*d=*/4, /*jitter_cv=*/0.1);
  e.config.waves = 12;
  e.config.warmup_waves = 2;

  SweepOptions options;
  options.threads = 8;
  SweepRunner sweep(options);
  const auto results = sweep.Run({e, e, e});

  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  core::HetPipeConfig config = e.config;
  config.partition_cache = nullptr;
  config.pool = nullptr;
  const core::HetPipeReport direct = core::HetPipe(cluster, graph, config).Run();

  for (const auto& r : results) {
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.throughput_img_s, direct.throughput_img_s);
    EXPECT_EQ(r.report.nm, direct.nm);
    EXPECT_EQ(r.report.avg_clock_distance, direct.avg_clock_distance);
  }
}

}  // namespace
}  // namespace hetpipe::runner
