// Tests for the spec-driven sweep library (runner/spec_sweep.h): the
// generated grids are deterministic, carry the cluster as canonical spec
// text, reflect the swept knob in their specs, and run end-to-end through
// SweepRunner.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster_spec.h"
#include "runner/spec_sweep.h"
#include "runner/sweep_runner.h"

namespace hetpipe::runner {
namespace {

hw::ClusterSpec SweepFixtureSpec() {
  hw::ClusterSpec spec;
  spec.Named("sweep-fix");
  spec.AddGpuClass("SwBig", 8.0, 32.0)
      .AddGpuClass("SwTiny", 1.5, 12.0)
      .AddMixedNode({{"SwBig", 1}, {"SwTiny", 1}})
      .AddNode("SwTiny", 2)
      .AddNode("V", 2)
      .InterGbits(25.0);
  return spec;
}

TEST(SpecSweepTest, SingleVwSweepEnumeratesDistinctEdShapes) {
  const hw::ClusterSpec spec = SweepFixtureSpec();
  const std::vector<core::Experiment> experiments = SingleVwSweep(spec, /*nm_max=*/3);
  // ED on a (2, 2, 2)-GPU cluster yields two VWs: {SwBig@0, SwTiny@1, V@2}
  // and {SwTiny@0, SwTiny@1, V@2} — distinct shapes, so 2 x 3 experiments.
  ASSERT_EQ(experiments.size(), 6u);
  std::set<std::string> selectors;
  for (const core::Experiment& e : experiments) {
    EXPECT_EQ(e.kind, core::ExperimentKind::kSingleVirtualWorker);
    EXPECT_EQ(e.cluster_spec, spec.ToString());
    EXPECT_EQ(e.config.jitter_cv, 0.0);
    EXPECT_GE(e.config.nm, 1);
    EXPECT_LE(e.config.nm, 3);
    selectors.insert(e.vw_codes);
  }
  // Selectors are sorted "Class@node" terms by registered class name (the
  // paper V class's registry name is "TITAN V").
  EXPECT_EQ(selectors, (std::set<std::string>{"SwBig@0,SwTiny@1,TITAN V@2",
                                              "SwTiny@0,SwTiny@1,TITAN V@2"}));

  // Identical calls generate identical lists (the grids are deterministic).
  const std::vector<core::Experiment> again = SingleVwSweep(spec, 3);
  ASSERT_EQ(again.size(), experiments.size());
  for (size_t i = 0; i < experiments.size(); ++i) {
    EXPECT_EQ(again[i].vw_codes, experiments[i].vw_codes);
    EXPECT_EQ(again[i].config.nm, experiments[i].config.nm);
  }

  // The uniform paper testbed has one distinct ED shape: 1 x nm_max rows.
  EXPECT_EQ(SingleVwSweep(hw::ClusterSpec::PaperTestbed(), 4).size(), 4u);
}

TEST(SpecSweepTest, ScalingSweepTakesNodePrefixes) {
  const hw::ClusterSpec spec = SweepFixtureSpec();
  const std::vector<core::Experiment> experiments = ScalingSweep(spec);
  ASSERT_EQ(experiments.size(), 6u);  // (Horovod + HetPipe) x 3 prefixes
  for (size_t prefix = 1; prefix <= 3; ++prefix) {
    const core::Experiment& horovod = experiments[2 * (prefix - 1)];
    const core::Experiment& hetpipe = experiments[2 * (prefix - 1) + 1];
    EXPECT_EQ(horovod.kind, core::ExperimentKind::kHorovod);
    EXPECT_EQ(hetpipe.kind, core::ExperimentKind::kFullCluster);
    const hw::ClusterSpec subset = hw::ClusterSpec::Parse(hetpipe.cluster_spec);
    EXPECT_EQ(subset.nodes.size(), prefix);
    EXPECT_EQ(subset.nodes.front(), spec.nodes.front());
    // One node: the paper's V4 case runs NP; beyond that ED.
    EXPECT_EQ(hetpipe.config.allocation,
              prefix == 1 ? cluster::AllocationPolicy::kNodePartition
                          : cluster::AllocationPolicy::kEqualDistribution);
  }
}

TEST(SpecSweepTest, GridSweepsReflectTheKnobInTheSpecText) {
  const hw::ClusterSpec spec = SweepFixtureSpec();

  const std::vector<core::Experiment> bandwidth = BandwidthSweep(spec, {10.0, 56.0});
  ASSERT_EQ(bandwidth.size(), 2u);
  EXPECT_EQ(hw::ClusterSpec::Parse(bandwidth[0].cluster_spec).inter_gbits, 10.0);
  EXPECT_EQ(hw::ClusterSpec::Parse(bandwidth[1].cluster_spec).inter_gbits, 56.0);

  const std::vector<core::Experiment> latency = LatencySweep(spec, {1e-4, 5e-3}, {1e-5});
  ASSERT_EQ(latency.size(), 2u);
  const hw::ClusterSpec slow = hw::ClusterSpec::Parse(latency[1].cluster_spec);
  EXPECT_EQ(slow.inter_intercept_s, 5e-3);
  EXPECT_EQ(slow.intra_latency_s, 1e-5);
  EXPECT_NE(latency[0].name, latency[1].name);

  const std::vector<core::Experiment> straggler = StragglerSweep(spec, {0.0, 0.1}, {0, 4});
  ASSERT_EQ(straggler.size(), 4u);
  EXPECT_EQ(straggler[0].config.jitter_cv, 0.0);
  EXPECT_EQ(straggler[3].config.jitter_cv, 0.1);
  EXPECT_EQ(straggler[3].config.sync.d, 4);
}

TEST(SpecSweepTest, ScalingSweepTrimsTopologyToTheNodePrefix) {
  // A spec carrying racks and an override must still produce valid prefix
  // subsets: racks lose their out-of-prefix members, overrides needing
  // truncated nodes vanish, and cross-rack knobs follow the racks.
  hw::ClusterSpec spec = SweepFixtureSpec();
  spec.AddRack("r0", {0, 1}).AddRack("r1", {2}).CrossRackGbits(5.0).OverrideLink(0, 2, 2.0);

  const std::vector<core::Experiment> experiments = ScalingSweep(spec);
  ASSERT_EQ(experiments.size(), 6u);
  for (const core::Experiment& e : experiments) {
    // Every emitted spec parses and builds (Validate passes).
    EXPECT_NO_THROW(hw::ClusterSpec::Parse(e.cluster_spec).Build()) << e.cluster_spec;
  }
  const hw::ClusterSpec one_node = hw::ClusterSpec::Parse(experiments[1].cluster_spec);
  ASSERT_EQ(one_node.racks.size(), 1u);  // r1 lost its only node, r0 kept {0}
  EXPECT_EQ(one_node.racks[0].nodes, (std::vector<int>{0}));
  EXPECT_TRUE(one_node.link_overrides.empty());  // node2 is gone
  const hw::ClusterSpec full = hw::ClusterSpec::Parse(experiments[5].cluster_spec);
  EXPECT_EQ(full.racks.size(), 2u);
  EXPECT_EQ(full.link_overrides.size(), 1u);
  EXPECT_EQ(full.cross_rack_gbits, std::optional<double>(5.0));
}

TEST(SpecSweepTest, TopologySweepBuildsRackAndDegradedPairScenarios) {
  const hw::ClusterSpec spec = SweepFixtureSpec();  // 3 nodes
  const std::vector<core::Experiment> experiments =
      TopologySweep(spec, /*rack_sizes=*/{1, 2, 3}, /*cross_rack_gbits=*/{10.0, 2.0},
                    /*degraded_pair_gbits=*/{1.0});
  // rack size 3 spans everything (no cross-rack pair) and is skipped:
  // 2 rack sizes x 2 rates + 1 degraded pair.
  ASSERT_EQ(experiments.size(), 5u);

  const hw::ClusterSpec racks_of_1 = hw::ClusterSpec::Parse(experiments[0].cluster_spec);
  ASSERT_EQ(racks_of_1.racks.size(), 3u);
  EXPECT_EQ(racks_of_1.racks[0].nodes, (std::vector<int>{0}));
  EXPECT_EQ(racks_of_1.cross_rack_gbits, std::optional<double>(10.0));
  EXPECT_TRUE(racks_of_1.link_overrides.empty());

  const hw::ClusterSpec racks_of_2 = hw::ClusterSpec::Parse(experiments[2].cluster_spec);
  ASSERT_EQ(racks_of_2.racks.size(), 2u);  // {0,1} and the partial {2}
  EXPECT_EQ(racks_of_2.racks[0].nodes, (std::vector<int>{0, 1}));
  EXPECT_EQ(racks_of_2.racks[1].nodes, (std::vector<int>{2}));

  const hw::ClusterSpec degraded = hw::ClusterSpec::Parse(experiments[4].cluster_spec);
  EXPECT_TRUE(degraded.racks.empty());
  ASSERT_EQ(degraded.link_overrides.size(), 1u);
  EXPECT_EQ(degraded.link_overrides[0].node_a, 0);
  EXPECT_EQ(degraded.link_overrides[0].node_b, 2);
  EXPECT_EQ(degraded.link_overrides[0].gbits, std::optional<double>(1.0));

  // Scenario names are distinct, and identical calls produce identical lists.
  std::set<std::string> names;
  for (const core::Experiment& e : experiments) {
    names.insert(e.name);
  }
  EXPECT_EQ(names.size(), experiments.size());
  const std::vector<core::Experiment> again =
      TopologySweep(spec, {1, 2, 3}, {10.0, 2.0}, {1.0});
  ASSERT_EQ(again.size(), experiments.size());
  for (size_t i = 0; i < experiments.size(); ++i) {
    EXPECT_EQ(again[i].name, experiments[i].name);
    EXPECT_EQ(again[i].cluster_spec, experiments[i].cluster_spec);
  }

  // A base spec that already carries topology is refused (the sweep would
  // silently overwrite it).
  hw::ClusterSpec pre_racked = spec;
  pre_racked.AddRack("r0", {0});
  EXPECT_THROW(TopologySweep(pre_racked, {1}, {10.0}, {}), std::invalid_argument);
}

TEST(SpecSweepTest, TopologySweepRunsEndToEndAndSlowerCrossRackIsNoFaster) {
  const hw::ClusterSpec spec = SweepFixtureSpec();
  SpecSweepOptions options;
  options.waves = 8;
  options.warmup_waves = 2;
  options.jitter_cv = 0.0;  // deterministic, so the monotonicity check is exact
  const std::vector<core::Experiment> experiments =
      TopologySweep(spec, /*rack_sizes=*/{1}, /*cross_rack_gbits=*/{25.0, 1.0},
                    /*degraded_pair_gbits=*/{2.0}, options);
  ASSERT_EQ(experiments.size(), 3u);

  SweepOptions sweep_options;
  sweep_options.threads = 4;
  SweepRunner sweep(sweep_options);
  const std::vector<core::ExperimentResult> results = sweep.Run(experiments);
  for (const core::ExperimentResult& r : results) {
    EXPECT_TRUE(r.feasible) << r.name;
    EXPECT_GT(r.throughput_img_s, 0.0) << r.name;
  }
  // Racks of 1 make every inter-node link cross-rack: dropping those links
  // from 25 to 1 Gbit/s cannot speed the cluster up.
  EXPECT_LT(results[1].throughput_img_s, results[0].throughput_img_s);
  // Distinct topologies never share partition-cache entries.
  EXPECT_GE(sweep.cache().misses(), 2);
}

TEST(SpecSweepTest, GeneratedGridsRunEndToEnd) {
  const hw::ClusterSpec spec = SweepFixtureSpec();
  SpecSweepOptions options;
  options.waves = 8;
  options.warmup_waves = 2;

  std::vector<core::Experiment> experiments = SingleVwSweep(spec, /*nm_max=*/2, options);
  for (core::Experiment& e : LatencySweep(spec, {1e-4, 5e-3}, {1e-5}, options)) {
    experiments.push_back(std::move(e));
  }

  SweepOptions sweep_options;
  sweep_options.threads = 4;
  SweepRunner sweep(sweep_options);
  const std::vector<core::ExperimentResult> results = sweep.Run(experiments);
  ASSERT_EQ(results.size(), experiments.size());
  for (const core::ExperimentResult& r : results) {
    EXPECT_TRUE(r.feasible) << r.name;
    EXPECT_GT(r.throughput_img_s, 0.0) << r.name;
  }
  // The two latency points must not have shared a partition-cache entry:
  // each is a distinct key (plus the single-VW shapes solved once each).
  EXPECT_GE(sweep.cache().misses(), 2);
}

}  // namespace
}  // namespace hetpipe::runner
