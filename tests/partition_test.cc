#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/memory_model.h"
#include "partition/partitioner.h"

namespace hetpipe::partition {
namespace {

using hw::Cluster;
using hw::GpuType;
using model::BuildResNet152;
using model::BuildVgg19;
using model::ModelProfile;

TEST(InFlightTest, MatchesFig1) {
  // Fig. 1: k=4, Nm=4 — GPU1 holds all 4 minibatches, GPU4 exactly 1.
  EXPECT_EQ(InFlightAtStage(0, 4, 4), 4);
  EXPECT_EQ(InFlightAtStage(1, 4, 4), 4);  // window 5, clipped by Nm
  EXPECT_EQ(InFlightAtStage(2, 4, 4), 3);
  EXPECT_EQ(InFlightAtStage(3, 4, 4), 1);
}

TEST(InFlightTest, LastStageAlwaysOne) {
  for (int k = 1; k <= 8; ++k) {
    for (int nm = 1; nm <= 8; ++nm) {
      EXPECT_EQ(InFlightAtStage(k - 1, k, nm), 1);
    }
  }
}

TEST(InFlightTest, BoundedByNmAndWindow) {
  for (int k = 2; k <= 6; ++k) {
    for (int nm = 1; nm <= 10; ++nm) {
      for (int q = 0; q < k; ++q) {
        const int f = InFlightAtStage(q, k, nm);
        EXPECT_GE(f, 1);
        EXPECT_LE(f, nm);
        EXPECT_LE(f, 2 * (k - 1 - q) + 1);
      }
    }
  }
}

TEST(MemoryModelTest, MonotonicInNm) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  uint64_t prev = 0;
  for (int nm = 1; nm <= 7; ++nm) {
    const uint64_t bytes = StageMemoryBytes(profile, 0, 10, 0, 4, nm);
    EXPECT_GE(bytes, prev);
    prev = bytes;
  }
}

TEST(MemoryModelTest, WeightStashingCosts) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  StageMemoryParams with;
  StageMemoryParams without;
  without.stash_weights = false;
  EXPECT_GT(StageMemoryBytes(profile, 0, 20, 0, 4, 4, with),
            StageMemoryBytes(profile, 0, 20, 0, 4, 4, without));
}

TEST(MemoryModelTest, ResNetDoesNotFitRtx2060) {
  // §8.3: "ResNet-152 ... is too big to be loaded into a single GPU with G
  // type, and thus Horovod uses only 12 GPUs."
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  EXPECT_FALSE(FitsOnSingleGpu(profile, GpuType::kRtx2060));
  EXPECT_TRUE(FitsOnSingleGpu(profile, GpuType::kQuadroP4000));
  EXPECT_TRUE(FitsOnSingleGpu(profile, GpuType::kTitanV));
  EXPECT_TRUE(FitsOnSingleGpu(profile, GpuType::kTitanRtx));
}

TEST(MemoryModelTest, VggFitsEveryGpu) {
  // VGG-19 fits everywhere (Horovod uses all 16 GPUs in Fig. 4b).
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  for (const auto& spec : hw::AllGpuSpecs()) {
    EXPECT_TRUE(FitsOnSingleGpu(profile, spec.type)) << spec.name;
  }
}

class PartitionerTest : public ::testing::Test {
 protected:
  Cluster cluster_ = Cluster::Paper();
};

TEST_F(PartitionerTest, CoversAllLayersContiguously) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  const Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  ASSERT_TRUE(partition.feasible);
  ASSERT_EQ(partition.num_stages(), 4);
  int expected_first = 0;
  for (const StageAssignment& stage : partition.stages) {
    EXPECT_EQ(stage.first_layer, expected_first);
    EXPECT_LE(stage.first_layer, stage.last_layer);
    expected_first = stage.last_layer + 1;
  }
  EXPECT_EQ(expected_first, graph.num_layers());
}

TEST_F(PartitionerTest, RespectsMemoryCaps) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 2;
  // The G node (6 GiB) is the tight one.
  const Partition partition = partitioner.Solve({8, 9, 10, 11}, options);
  ASSERT_TRUE(partition.feasible);
  for (const StageAssignment& stage : partition.stages) {
    EXPECT_LE(stage.memory_bytes, stage.memory_cap);
  }
}

TEST_F(PartitionerTest, BottleneckIsMaxStageTime) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  const Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  double max_time = 0.0;
  double sum_time = 0.0;
  for (const StageAssignment& stage : partition.stages) {
    max_time = std::max(max_time, stage.TotalTime());
    sum_time += stage.TotalTime();
  }
  EXPECT_DOUBLE_EQ(partition.bottleneck_time, max_time);
  EXPECT_NEAR(partition.sum_time, sum_time, 1e-12);
}

TEST_F(PartitionerTest, BalancedOnHomogeneousGpus) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  const Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  ASSERT_TRUE(partition.feasible);
  // On four identical GPUs the min-max split should be near 1/4 of total.
  const double ideal = partition.sum_time / 4.0;
  EXPECT_LT(partition.bottleneck_time, ideal * 1.5);
}

TEST_F(PartitionerTest, OrderSearchNotWorseThanFixedOrder) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions searched;
  searched.nm = 2;
  searched.search_gpu_orders = true;
  PartitionOptions fixed = searched;
  fixed.search_gpu_orders = false;
  const std::vector<int> vrgq = {0, 4, 8, 12};
  const Partition best = partitioner.Solve(vrgq, searched);
  const Partition plain = partitioner.Solve(vrgq, fixed);
  ASSERT_TRUE(best.feasible);
  if (plain.feasible) {
    EXPECT_LE(best.bottleneck_time, plain.bottleneck_time + 1e-12);
  }
}

TEST_F(PartitionerTest, FewerStagesThanGpusOfOne) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  // k=1: the whole model on one R (24 GiB) GPU.
  const Partition partition = partitioner.Solve({4}, options);
  ASSERT_TRUE(partition.feasible);
  EXPECT_EQ(partition.num_stages(), 1);
  EXPECT_EQ(partition.stages[0].first_layer, 0);
  EXPECT_EQ(partition.stages[0].last_layer, graph.num_layers() - 1);
}

TEST_F(PartitionerTest, FindMaxNmMonotoneFeasibility) {
  // At batch 64 the 6 GiB RTX 2060s genuinely bound the number of concurrent
  // minibatches a GGGG virtual worker can hold.
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 64);
  const Partitioner partitioner(profile, cluster_);
  const std::vector<int> gpus = {8, 9, 10, 11};  // GGGG, 6 GiB each
  const int max_nm = partitioner.FindMaxNm(gpus, 7);
  ASSERT_GT(max_nm, 0);
  ASSERT_LT(max_nm, 7);  // whimpy GPUs cannot hold 7 concurrent minibatches
  PartitionOptions options;
  for (int nm = 1; nm <= 7; ++nm) {
    options.nm = nm;
    EXPECT_EQ(partitioner.Solve(gpus, options).feasible, nm <= max_nm) << nm;
  }
}

TEST_F(PartitionerTest, BiggerMemoryAllowsMoreConcurrency) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 64);
  const Partitioner partitioner(profile, cluster_);
  const int g_nm = partitioner.FindMaxNm({8, 9, 10, 11}, 7);   // GGGG
  const int r_nm = partitioner.FindMaxNm({4, 5, 6, 7}, 7);     // RRRR
  EXPECT_GT(r_nm, g_nm);
}

TEST_F(PartitionerTest, ParamBytesCoverModel) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  const Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  ASSERT_TRUE(partition.feasible);
  uint64_t total = 0;
  for (const StageAssignment& stage : partition.stages) {
    total += stage.param_bytes;
  }
  EXPECT_EQ(total, graph.total_param_bytes());
}

TEST_F(PartitionerTest, InfeasibleWhenTooManyStages) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  // More stages than layers cannot work.
  std::vector<int> gpus;
  for (int i = 0; i < graph.num_layers() + 1 && i < 16; ++i) {
    gpus.push_back(i % 16);
  }
  // 16 < num_layers, so instead test empty gpu list.
  const Partition partition = partitioner.Solve({}, options);
  EXPECT_FALSE(partition.feasible);
}

}  // namespace
}  // namespace hetpipe::partition
