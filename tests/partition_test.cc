#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/transformer.h"
#include "model/vgg.h"
#include "partition/memory_model.h"
#include "partition/partitioner.h"
#include "runner/thread_pool.h"

namespace hetpipe::partition {
namespace {

using hw::Cluster;
using hw::GpuType;
using model::BuildResNet152;
using model::BuildVgg19;
using model::ModelProfile;

TEST(InFlightTest, MatchesFig1) {
  // Fig. 1: k=4, Nm=4 — GPU1 holds all 4 minibatches, GPU4 exactly 1.
  EXPECT_EQ(InFlightAtStage(0, 4, 4), 4);
  EXPECT_EQ(InFlightAtStage(1, 4, 4), 4);  // window 5, clipped by Nm
  EXPECT_EQ(InFlightAtStage(2, 4, 4), 3);
  EXPECT_EQ(InFlightAtStage(3, 4, 4), 1);
}

TEST(InFlightTest, LastStageAlwaysOne) {
  for (int k = 1; k <= 8; ++k) {
    for (int nm = 1; nm <= 8; ++nm) {
      EXPECT_EQ(InFlightAtStage(k - 1, k, nm), 1);
    }
  }
}

TEST(InFlightTest, BoundedByNmAndWindow) {
  for (int k = 2; k <= 6; ++k) {
    for (int nm = 1; nm <= 10; ++nm) {
      for (int q = 0; q < k; ++q) {
        const int f = InFlightAtStage(q, k, nm);
        EXPECT_GE(f, 1);
        EXPECT_LE(f, nm);
        EXPECT_LE(f, 2 * (k - 1 - q) + 1);
      }
    }
  }
}

TEST(MemoryModelTest, MonotonicInNm) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  uint64_t prev = 0;
  for (int nm = 1; nm <= 7; ++nm) {
    const uint64_t bytes = StageMemoryBytes(profile, 0, 10, 0, 4, nm);
    EXPECT_GE(bytes, prev);
    prev = bytes;
  }
}

TEST(MemoryModelTest, WeightStashingCosts) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  StageMemoryParams with;
  StageMemoryParams without;
  without.stash_weights = false;
  EXPECT_GT(StageMemoryBytes(profile, 0, 20, 0, 4, 4, with),
            StageMemoryBytes(profile, 0, 20, 0, 4, 4, without));
}

TEST(MemoryModelTest, ResNetDoesNotFitRtx2060) {
  // §8.3: "ResNet-152 ... is too big to be loaded into a single GPU with G
  // type, and thus Horovod uses only 12 GPUs."
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  EXPECT_FALSE(FitsOnSingleGpu(profile, GpuType::kRtx2060));
  EXPECT_TRUE(FitsOnSingleGpu(profile, GpuType::kQuadroP4000));
  EXPECT_TRUE(FitsOnSingleGpu(profile, GpuType::kTitanV));
  EXPECT_TRUE(FitsOnSingleGpu(profile, GpuType::kTitanRtx));
}

TEST(MemoryModelTest, VggFitsEveryGpu) {
  // VGG-19 fits everywhere (Horovod uses all 16 GPUs in Fig. 4b).
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  for (const auto& spec : hw::AllGpuSpecs()) {
    EXPECT_TRUE(FitsOnSingleGpu(profile, spec.type)) << spec.name;
  }
}

class PartitionerTest : public ::testing::Test {
 protected:
  Cluster cluster_ = Cluster::Paper();
};

TEST_F(PartitionerTest, CoversAllLayersContiguously) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  const Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  ASSERT_TRUE(partition.feasible);
  ASSERT_EQ(partition.num_stages(), 4);
  int expected_first = 0;
  for (const StageAssignment& stage : partition.stages) {
    EXPECT_EQ(stage.first_layer, expected_first);
    EXPECT_LE(stage.first_layer, stage.last_layer);
    expected_first = stage.last_layer + 1;
  }
  EXPECT_EQ(expected_first, graph.num_layers());
}

TEST_F(PartitionerTest, RespectsMemoryCaps) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 2;
  // The G node (6 GiB) is the tight one.
  const Partition partition = partitioner.Solve({8, 9, 10, 11}, options);
  ASSERT_TRUE(partition.feasible);
  for (const StageAssignment& stage : partition.stages) {
    EXPECT_LE(stage.memory_bytes, stage.memory_cap);
  }
}

TEST_F(PartitionerTest, BottleneckIsMaxStageTime) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  const Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  double max_time = 0.0;
  double sum_time = 0.0;
  for (const StageAssignment& stage : partition.stages) {
    max_time = std::max(max_time, stage.TotalTime());
    sum_time += stage.TotalTime();
  }
  EXPECT_DOUBLE_EQ(partition.bottleneck_time, max_time);
  EXPECT_NEAR(partition.sum_time, sum_time, 1e-12);
}

TEST_F(PartitionerTest, BalancedOnHomogeneousGpus) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  const Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  ASSERT_TRUE(partition.feasible);
  // On four identical GPUs the min-max split should be near 1/4 of total.
  const double ideal = partition.sum_time / 4.0;
  EXPECT_LT(partition.bottleneck_time, ideal * 1.5);
}

TEST_F(PartitionerTest, OrderSearchNotWorseThanFixedOrder) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions searched;
  searched.nm = 2;
  searched.search_gpu_orders = true;
  PartitionOptions fixed = searched;
  fixed.search_gpu_orders = false;
  const std::vector<int> vrgq = {0, 4, 8, 12};
  const Partition best = partitioner.Solve(vrgq, searched);
  const Partition plain = partitioner.Solve(vrgq, fixed);
  ASSERT_TRUE(best.feasible);
  if (plain.feasible) {
    EXPECT_LE(best.bottleneck_time, plain.bottleneck_time + 1e-12);
  }
}

TEST_F(PartitionerTest, FewerStagesThanGpusOfOne) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  // k=1: the whole model on one R (24 GiB) GPU.
  const Partition partition = partitioner.Solve({4}, options);
  ASSERT_TRUE(partition.feasible);
  EXPECT_EQ(partition.num_stages(), 1);
  EXPECT_EQ(partition.stages[0].first_layer, 0);
  EXPECT_EQ(partition.stages[0].last_layer, graph.num_layers() - 1);
}

TEST_F(PartitionerTest, FindMaxNmMonotoneFeasibility) {
  // At batch 64 the 6 GiB RTX 2060s genuinely bound the number of concurrent
  // minibatches a GGGG virtual worker can hold.
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 64);
  const Partitioner partitioner(profile, cluster_);
  const std::vector<int> gpus = {8, 9, 10, 11};  // GGGG, 6 GiB each
  const int max_nm = partitioner.FindMaxNm(gpus, 7);
  ASSERT_GT(max_nm, 0);
  ASSERT_LT(max_nm, 7);  // whimpy GPUs cannot hold 7 concurrent minibatches
  PartitionOptions options;
  for (int nm = 1; nm <= 7; ++nm) {
    options.nm = nm;
    EXPECT_EQ(partitioner.Solve(gpus, options).feasible, nm <= max_nm) << nm;
  }
}

TEST_F(PartitionerTest, BiggerMemoryAllowsMoreConcurrency) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 64);
  const Partitioner partitioner(profile, cluster_);
  const int g_nm = partitioner.FindMaxNm({8, 9, 10, 11}, 7);   // GGGG
  const int r_nm = partitioner.FindMaxNm({4, 5, 6, 7}, 7);     // RRRR
  EXPECT_GT(r_nm, g_nm);
}

TEST_F(PartitionerTest, ParamBytesCoverModel) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  const Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  ASSERT_TRUE(partition.feasible);
  uint64_t total = 0;
  for (const StageAssignment& stage : partition.stages) {
    total += stage.param_bytes;
  }
  EXPECT_EQ(total, graph.total_param_bytes());
}

TEST_F(PartitionerTest, InfeasibleWhenTooManyStages) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 1;
  // More stages than layers cannot work.
  std::vector<int> gpus;
  for (int i = 0; i < graph.num_layers() + 1 && i < 16; ++i) {
    gpus.push_back(i % 16);
  }
  // 16 < num_layers, so instead test empty gpu list.
  const Partition partition = partitioner.Solve({}, options);
  EXPECT_FALSE(partition.feasible);
}

// ---- Prefix-sum / cumulative-table equivalence (the tentpole invariant:
// ---- the O(1) queries are bit-identical to the retained naive loops). ----

model::ModelGraph RandomGraph(std::mt19937& rng) {
  std::uniform_int_distribution<int> num_layers(1, 40);
  std::uniform_int_distribution<int> shape(1, 64);
  std::vector<model::Layer> layers;
  const int n = num_layers(rng);
  for (int i = 0; i < n; ++i) {
    model::Layer layer;
    layer.name = "l" + std::to_string(i);
    // Irregular magnitudes: catastrophic-cancellation bait for a
    // prefix-difference implementation, which must still match the loops.
    layer.fwd_flops = static_cast<double>(shape(rng)) * shape(rng) * shape(rng) * 1e4;
    layer.param_bytes = static_cast<uint64_t>(shape(rng)) * shape(rng) * 4096;
    layer.out_bytes = static_cast<uint64_t>(shape(rng)) * 2048;
    layer.stash_bytes = layer.out_bytes + static_cast<uint64_t>(shape(rng)) * 1024;
    layers.push_back(std::move(layer));
  }
  return model::ModelGraph("random", model::ModelFamily::kGeneric, std::move(layers));
}

TEST(PrefixEquivalenceTest, RandomGraphsMatchNaiveLoopsExactly) {
  std::mt19937 rng(20260729);
  for (int round = 0; round < 25; ++round) {
    const model::ModelGraph graph = RandomGraph(rng);
    const ModelProfile profile(graph, 1 + round % 64);
    const int n = graph.num_layers();
    for (int first = 0; first < n; ++first) {
      for (int last = first; last < n; ++last) {
        EXPECT_EQ(graph.ParamBytesInRange(first, last),
                  graph.ParamBytesInRangeNaive(first, last));
        EXPECT_EQ(graph.StashBytesInRange(first, last),
                  graph.StashBytesInRangeNaive(first, last));
        for (int t = 0; t < hw::kNumGpuTypes; ++t) {
          const auto gpu = static_cast<GpuType>(t);
          // EXPECT_EQ on doubles is exact equality: bit-identical, not close.
          EXPECT_EQ(profile.StageFwdTime(first, last, gpu),
                    profile.StageFwdTimeNaive(first, last, gpu));
          EXPECT_EQ(profile.StageBwdTime(first, last, gpu),
                    profile.StageBwdTimeNaive(first, last, gpu));
          EXPECT_EQ(profile.StageTotalTime(first, last, gpu),
                    profile.StageTotalTimeNaive(first, last, gpu));
        }
      }
    }
  }
}

TEST(PrefixEquivalenceTest, PaperModelsMatchNaiveLoopsExactly) {
  for (const model::ModelGraph& graph :
       {model::BuildResNet152(), model::BuildVgg19(), model::BuildBertLarge()}) {
    const ModelProfile profile(graph, 32);
    const int n = graph.num_layers();
    for (int first = 0; first < n; first += 3) {
      for (int last = first; last < n; last += 2) {
        EXPECT_EQ(profile.StageTotalTime(first, last, GpuType::kTitanV),
                  profile.StageTotalTimeNaive(first, last, GpuType::kTitanV));
        EXPECT_EQ(graph.ParamBytesInRange(first, last),
                  graph.ParamBytesInRangeNaive(first, last));
      }
    }
  }
}

TEST(PrefixEquivalenceTest, EmptyRangeIsZero) {
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  EXPECT_EQ(profile.StageFwdTime(5, 4, GpuType::kTitanV), 0.0);
  EXPECT_EQ(graph.ParamBytesInRange(5, 4), 0u);
}

// ---- Solve vs the retained pre-optimization SolveReference: the flat DP,
// ---- hoisted transfers, and direct multiset order enumeration must return
// ---- bit-identical partitions, including on mixed-node clusters and on
// ---- nodes whose classes interleave in GPU-id order. ----

void ExpectSamePartition(const Partition& a, const Partition& b) {
  ASSERT_EQ(a.feasible, b.feasible);
  if (!a.feasible) {
    return;
  }
  EXPECT_EQ(a.bottleneck_time, b.bottleneck_time);  // exact, not approximate
  EXPECT_EQ(a.sum_time, b.sum_time);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t q = 0; q < a.stages.size(); ++q) {
    EXPECT_EQ(a.stages[q].first_layer, b.stages[q].first_layer);
    EXPECT_EQ(a.stages[q].last_layer, b.stages[q].last_layer);
    EXPECT_EQ(a.stages[q].gpu_id, b.stages[q].gpu_id);
    EXPECT_EQ(a.stages[q].gpu_type, b.stages[q].gpu_type);
    EXPECT_EQ(a.stages[q].node, b.stages[q].node);
    EXPECT_EQ(a.stages[q].fwd_compute_s, b.stages[q].fwd_compute_s);
    EXPECT_EQ(a.stages[q].bwd_compute_s, b.stages[q].bwd_compute_s);
    EXPECT_EQ(a.stages[q].fwd_comm_in_s, b.stages[q].fwd_comm_in_s);
    EXPECT_EQ(a.stages[q].bwd_comm_in_s, b.stages[q].bwd_comm_in_s);
    EXPECT_EQ(a.stages[q].param_bytes, b.stages[q].param_bytes);
    EXPECT_EQ(a.stages[q].memory_bytes, b.stages[q].memory_bytes);
    EXPECT_EQ(a.stages[q].memory_cap, b.stages[q].memory_cap);
  }
}

TEST_F(PartitionerTest, SolveMatchesReferenceOnPaperShapes) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  for (const std::vector<int>& gpus :
       {std::vector<int>{0, 1, 2, 3}, std::vector<int>{0, 4, 8, 12},
        std::vector<int>{0, 1, 12, 13}, std::vector<int>{8, 9, 10, 11},
        std::vector<int>{4}, std::vector<int>{0, 4}}) {
    for (int nm : {1, 2, 4}) {
      PartitionOptions options;
      options.nm = nm;
      ExpectSamePartition(partitioner.Solve(gpus, options),
                          partitioner.SolveReference(gpus, options));
      options.prune = false;
      ExpectSamePartition(partitioner.Solve(gpus, options),
                          partitioner.SolveReference(gpus, options));
      options.search_gpu_orders = false;
      ExpectSamePartition(partitioner.Solve(gpus, options),
                          partitioner.SolveReference(gpus, options));
    }
  }
}

TEST(PartitionerMixedTest, SolveMatchesReferenceOnMixedNodeSpec) {
  hw::ClusterSpec spec;
  spec.Named("mixed-test");
  spec.AddGpuClass("BigCard", 9.2, 40.0, 'a').AddGpuClass("SmallCard", 2.6, 16.0, 't');
  spec.AddMixedNode({{"BigCard", 2}, {"SmallCard", 2}}).AddNode("SmallCard", 4).AddNode("V", 4);
  const Cluster cluster = spec.Build();
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster);
  for (const std::vector<int>& gpus :
       {std::vector<int>{0, 1, 2, 3}, std::vector<int>{0, 2, 4, 8},
        std::vector<int>{1, 3, 5, 9}, std::vector<int>{0, 1, 4, 5, 8, 9}}) {
    for (int nm : {1, 3}) {
      PartitionOptions options;
      options.nm = nm;
      ExpectSamePartition(partitioner.Solve(gpus, options),
                          partitioner.SolveReference(gpus, options));
    }
  }
}

TEST(PartitionerMixedTest, SolveMatchesReferenceWhenClassesInterleaveInIdOrder) {
  // A node laid out V, Q, V, Q: each (type, node) class's GPU ids are
  // non-contiguous, the layout that breaks naive "classes are id-ranges"
  // enumeration shortcuts. The direct multiset enumeration must still visit
  // the same distinct orders in the same sequence as the reference scan.
  const std::vector<std::vector<hw::GpuType>> node_gpus = {
      {GpuType::kTitanV, GpuType::kQuadroP4000, GpuType::kTitanV, GpuType::kQuadroP4000},
      {GpuType::kTitanRtx, GpuType::kRtx2060, GpuType::kTitanRtx, GpuType::kRtx2060},
  };
  const Cluster cluster(node_gpus, hw::PcieLink(), hw::InfinibandLink(), "interleaved");
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster);
  std::mt19937 rng(7);
  std::vector<int> all_ids = {0, 1, 2, 3, 4, 5, 6, 7};
  for (int round = 0; round < 12; ++round) {
    std::shuffle(all_ids.begin(), all_ids.end(), rng);
    const int k = 2 + round % 4;
    const std::vector<int> gpus(all_ids.begin(), all_ids.begin() + k);
    PartitionOptions options;
    options.nm = 1 + round % 3;
    ExpectSamePartition(partitioner.Solve(gpus, options),
                        partitioner.SolveReference(gpus, options));
  }
}

// ---- FindMaxNm: the binary search must agree with the pre-optimization
// ---- downward linear scan everywhere (feasibility is monotone in nm). ----

TEST_F(PartitionerTest, FindMaxNmMatchesLinearScan) {
  for (int batch : {32, 64}) {
    const auto graph = BuildResNet152();
    const ModelProfile profile(graph, batch);
    const Partitioner partitioner(profile, cluster_);
    for (const std::vector<int>& gpus :
         {std::vector<int>{0, 1, 2, 3}, std::vector<int>{4, 5, 6, 7},
          std::vector<int>{8, 9, 10, 11}, std::vector<int>{12, 13, 14, 15},
          std::vector<int>{0, 4, 8, 12}}) {
      for (int nm_cap : {1, 4, 7, 12}) {
        // The linear scan FindMaxNmWith replaced: nm_cap down to 1, first
        // feasible wins.
        int linear = 0;
        PartitionOptions options;
        for (int nm = nm_cap; nm >= 1; --nm) {
          options.nm = nm;
          if (partitioner.Solve(gpus, options).feasible) {
            linear = nm;
            break;
          }
        }
        EXPECT_EQ(partitioner.FindMaxNm(gpus, nm_cap), linear)
            << "batch " << batch << " cap " << nm_cap;
      }
    }
  }
}

TEST(FindMaxNmWithTest, BinarySearchProbesMonotoneFeasibility) {
  // Synthetic monotone feasibility with every threshold in [0, cap]: the
  // binary search must land exactly on the threshold, including the
  // all-infeasible (0) and all-feasible (cap) edges.
  constexpr int kCap = 23;
  for (int threshold = 0; threshold <= kCap; ++threshold) {
    const auto solve = [threshold](const PartitionOptions& options) {
      Partition p;
      p.feasible = options.nm <= threshold;
      return p;
    };
    EXPECT_EQ(FindMaxNmWith(solve, kCap, PartitionOptions{}), threshold);
  }
  EXPECT_EQ(FindMaxNmWith([](const PartitionOptions&) { return Partition{}; }, 0,
                          PartitionOptions{}),
            0);
}

// ---- The thread-local DP scratch must stop allocating once warm. ----

TEST_F(PartitionerTest, RepeatedSolvesDoNotGrowScratch) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  PartitionOptions options;
  options.nm = 2;
  const std::vector<int> gpus = {0, 4, 8, 12};
  (void)partitioner.Solve(gpus, options);  // warm this thread's scratch
  const int64_t before = DpScratchGrowCount();
  for (int r = 0; r < 20; ++r) {
    (void)partitioner.Solve(gpus, options);
    (void)partitioner.Solve({0, 1, 2, 3}, options);  // smaller shape: also no growth
  }
  EXPECT_EQ(DpScratchGrowCount(), before);
}

// ---- The scalable search tier (SolveScalable / beam / hierarchical): the
// ---- selector must keep every tractable input on the exact path
// ---- bit-identically, and the approximate paths must stay within a fixed
// ---- bound of the exact optimum on randomized small instances, where the
// ---- exact enumeration is a usable oracle. ----

TEST(SearchStrategyTest, EstimateOrderCountMatchesEnumerator) {
  const Cluster cluster = Cluster::Paper();
  for (const std::vector<int>& gpus :
       {std::vector<int>{0, 1, 2, 3}, std::vector<int>{0, 4, 8, 12},
        std::vector<int>{0, 1, 12, 13}, std::vector<int>{0, 1, 4, 5, 8, 9},
        std::vector<int>{4}, std::vector<int>{0, 4, 5, 8, 9, 12}}) {
    EXPECT_EQ(EstimateOrderCount(cluster, gpus, uint64_t{1} << 62),
              DistinctClassOrders(cluster, gpus).size());
  }
  // Saturation: the count is capped, never overflowed.
  EXPECT_EQ(EstimateOrderCount(cluster, {0, 4, 8, 12}, 5), 5u);
  EXPECT_EQ(EstimateOrderCount(cluster, {0, 1, 2, 3}, 1), 1u);
}

TEST(SearchStrategyTest, SelectorKeepsTractableInputsExact) {
  const Cluster cluster = Cluster::Paper();
  PartitionOptions options;
  // Every paper-scale virtual worker is far under the exact limit.
  EXPECT_EQ(ResolveSearchStrategy(cluster, {0, 4, 8, 12}, options), SearchStrategy::kExact);
  EXPECT_EQ(ResolveSearchStrategy(cluster, {0, 1, 2, 3}, options), SearchStrategy::kExact);
  // An explicit strategy wins while there is an order search to run...
  options.strategy = SearchStrategy::kBeam;
  EXPECT_EQ(ResolveSearchStrategy(cluster, {0, 4, 8, 12}, options), SearchStrategy::kBeam);
  // ...but a fixed order has nothing to search, whatever the strategy says.
  options.search_gpu_orders = false;
  EXPECT_EQ(ResolveSearchStrategy(cluster, {0, 4, 8, 12}, options), SearchStrategy::kExact);
  options = PartitionOptions{};
  // Shrinking the exact limit pushes even a paper VW off the exact path; the
  // rack-less paper cluster resolves to the beam.
  options.exact_order_limit = 1;
  EXPECT_EQ(ResolveSearchStrategy(cluster, {0, 4, 8, 12}, options), SearchStrategy::kBeam);
}

// A small racked heterogeneous cluster: 6 single-GPU nodes over 2 racks.
Cluster RackedTestCluster() {
  hw::ClusterSpec spec;
  spec.Named("racked-6");
  spec.AddNode("V", 1).AddNode("R", 1).AddNode("G", 1);
  spec.AddNode("Q", 1).AddNode("V", 1).AddNode("R", 1);
  spec.AddRack("left", {0, 1, 2}).AddRack("right", {3, 4, 5});
  spec.CrossRackGbits(10.0);
  return spec.Build();
}

TEST(SearchStrategyTest, SelectorPicksHierarchicalAcrossRacks) {
  const Cluster cluster = RackedTestCluster();
  PartitionOptions options;
  options.exact_order_limit = 1;  // force the VW off the exact path
  // Six distinct (type, node) classes spanning both racks.
  EXPECT_EQ(ResolveSearchStrategy(cluster, {0, 1, 2, 3, 4, 5}, options),
            SearchStrategy::kHierarchical);
  // Inside one rack there is nothing to coarsen: the beam handles it.
  EXPECT_EQ(ResolveSearchStrategy(cluster, {0, 1, 2}, options), SearchStrategy::kBeam);
}

TEST_F(PartitionerTest, SolveScalableAutoIsBitIdenticalToSolve) {
  const auto graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster_);
  for (const std::vector<int>& gpus :
       {std::vector<int>{0, 1, 2, 3}, std::vector<int>{0, 4, 8, 12},
        std::vector<int>{0, 1, 12, 13}, std::vector<int>{4}}) {
    for (int nm : {1, 2, 4}) {
      PartitionOptions options;
      options.nm = nm;
      // kAuto resolves to the exact path here, so SolveScalable IS Solve.
      ASSERT_EQ(ResolveSearchStrategy(cluster_, gpus, options), SearchStrategy::kExact);
      ExpectSamePartition(partitioner.SolveScalable(gpus, options),
                          partitioner.Solve(gpus, options));
    }
  }
}

TEST(SearchScalableTest, BeamAndHierarchicalInvariantUnderIdPermutation) {
  // The partition cache remaps hits onto any gpu-id set with the same
  // (type, node) multiset, which is only sound if the scalable searches are
  // id-permutation invariant. The racked cluster's two V nodes and two R
  // nodes make the multiset nontrivial.
  const Cluster cluster = RackedTestCluster();
  const auto graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const Partitioner partitioner(profile, cluster);
  for (SearchStrategy strategy : {SearchStrategy::kBeam, SearchStrategy::kHierarchical}) {
    PartitionOptions options;
    options.strategy = strategy;
    const std::vector<int> ids = {0, 1, 2, 3, 4, 5};
    std::vector<int> shuffled = {5, 2, 0, 4, 1, 3};
    ExpectSamePartition(partitioner.SolveScalable(shuffled, options),
                        partitioner.SolveScalable(ids, options));
  }
}

TEST(SearchOracleTest, RandomSmallInstancesStayWithinBoundOfExact) {
  // Property test against the exact oracle: on seeded random clusters and
  // models small enough for exact enumeration (k <= 6), the approximate
  // searches must (a) never claim feasibility the exact search refutes,
  // (b) never report a bottleneck below the optimum, and (c) stay within
  // kBound of it. The run is fully deterministic (fixed seed, deterministic
  // searches), so these bounds are pinned, not flaky.
  constexpr double kBound = 1.25;
  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> node_count(3, 6);
  std::uniform_int_distribution<int> gpus_per_node(1, 2);
  std::uniform_int_distribution<int> type_pick(0, 3);
  const char* kTypes[4] = {"V", "R", "G", "Q"};
  int solved_rounds = 0;
  double worst_ratio = 1.0;
  for (int round = 0; round < 40; ++round) {
    hw::ClusterSpec spec;
    spec.Named("oracle-" + std::to_string(round));
    const int nodes = node_count(rng);
    for (int node = 0; node < nodes; ++node) {
      spec.AddNode(kTypes[type_pick(rng)], gpus_per_node(rng));
    }
    const int split = 1 + static_cast<int>(rng() % static_cast<unsigned>(nodes - 1));
    std::vector<int> left, right;
    for (int node = 0; node < nodes; ++node) {
      (node < split ? left : right).push_back(node);
    }
    spec.AddRack("left", left).AddRack("right", right).CrossRackGbits(7.0);
    const Cluster cluster = spec.Build();

    const model::ModelGraph graph = RandomGraph(rng);
    const ModelProfile profile(graph, 1 + round % 32);
    const Partitioner partitioner(profile, cluster);

    std::vector<int> ids(static_cast<size_t>(cluster.num_gpus()));
    std::iota(ids.begin(), ids.end(), 0);
    std::shuffle(ids.begin(), ids.end(), rng);
    const int k = 2 + round % 5;  // 2..6
    if (graph.num_layers() < k || cluster.num_gpus() < k) {
      continue;
    }
    ids.resize(static_cast<size_t>(k));

    PartitionOptions options;
    options.nm = 1 + round % 3;
    const Partition exact = partitioner.Solve(ids, options);
    for (SearchStrategy strategy : {SearchStrategy::kBeam, SearchStrategy::kHierarchical}) {
      PartitionOptions approx_options = options;
      approx_options.strategy = strategy;
      const Partition approx = partitioner.SolveScalable(ids, approx_options);
      if (!exact.feasible) {
        // The approximate searches evaluate a subset of the orders the exact
        // search proves infeasible, so they can never do "better".
        EXPECT_FALSE(approx.feasible) << "round " << round;
        continue;
      }
      ASSERT_TRUE(approx.feasible)
          << "round " << round << ": " << SearchStrategyName(strategy)
          << " missed a feasible instance the exact search solves";
      EXPECT_GE(approx.bottleneck_time, exact.bottleneck_time - 1e-12) << "round " << round;
      EXPECT_LE(approx.bottleneck_time, exact.bottleneck_time * kBound)
          << "round " << round << ": " << SearchStrategyName(strategy);
      worst_ratio = std::max(worst_ratio, approx.bottleneck_time / exact.bottleneck_time);
      ++solved_rounds;
    }
  }
  // The grid must actually exercise the oracle (guards against silently
  // skipping every round).
  EXPECT_GE(solved_rounds, 30);
  RecordProperty("worst_ratio", std::to_string(worst_ratio));
}

// ---- Parallel search determinism. The searches reduce candidates in input
// ---- index order and bound pruning with strict comparisons, so a solve on a
// ---- thread pool of any size must return the same bytes as the serial one.

TEST(SearchStrategyTest, ResolutionIsPoolIndependent) {
  // The partition cache derives its keys from the RESOLVED strategy, so
  // resolution must never read options.pool — otherwise the same query could
  // map to different cache entries depending on who carries a pool.
  const Cluster cluster = RackedTestCluster();
  runner::ThreadPool pool(2);
  for (const std::vector<int>& ids :
       {std::vector<int>{0, 1, 2, 3, 4, 5}, std::vector<int>{0, 1, 2}, std::vector<int>{0}}) {
    for (int64_t limit : {int64_t{1}, int64_t{10000}}) {
      for (SearchStrategy strategy : {SearchStrategy::kAuto, SearchStrategy::kBeam}) {
        PartitionOptions serial;
        serial.exact_order_limit = limit;
        serial.strategy = strategy;
        PartitionOptions pooled = serial;
        pooled.pool = &pool;
        EXPECT_EQ(ResolveSearchStrategy(cluster, ids, serial),
                  ResolveSearchStrategy(cluster, ids, pooled));
      }
    }
  }
}

TEST(SearchParallelTest, SolvesAreByteIdenticalAcrossThreadCounts) {
  // Seeded random racked clusters: every strategy solved serially and on
  // pools of 1, 2, and 8 threads must agree field-for-field AND byte-for-byte
  // in the rendered partition — bit-identity, not tolerance.
  std::mt19937 rng(20260808);
  std::uniform_int_distribution<int> node_count(3, 6);
  std::uniform_int_distribution<int> type_pick(0, 3);
  const char* kTypes[4] = {"V", "R", "G", "Q"};
  runner::ThreadPool pool1(1), pool2(2), pool8(8);
  runner::ThreadPool* pools[] = {&pool1, &pool2, &pool8};
  int solved_rounds = 0;
  for (int round = 0; round < 8; ++round) {
    hw::ClusterSpec spec;
    spec.Named("parallel-" + std::to_string(round));
    const int nodes = node_count(rng);
    for (int node = 0; node < nodes; ++node) {
      spec.AddNode(kTypes[type_pick(rng)], 1 + static_cast<int>(rng() % 2u));
    }
    const int split = 1 + static_cast<int>(rng() % static_cast<unsigned>(nodes - 1));
    std::vector<int> left, right;
    for (int node = 0; node < nodes; ++node) {
      (node < split ? left : right).push_back(node);
    }
    spec.AddRack("left", left).AddRack("right", right).CrossRackGbits(7.0);
    const Cluster cluster = spec.Build();

    const model::ModelGraph graph = RandomGraph(rng);
    const ModelProfile profile(graph, 1 + round % 32);
    const Partitioner partitioner(profile, cluster);

    std::vector<int> ids(static_cast<size_t>(cluster.num_gpus()));
    std::iota(ids.begin(), ids.end(), 0);
    std::shuffle(ids.begin(), ids.end(), rng);
    const int k = 3 + round % 4;  // 3..6
    if (graph.num_layers() < k || cluster.num_gpus() < k) {
      continue;
    }
    ids.resize(static_cast<size_t>(k));

    for (SearchStrategy strategy :
         {SearchStrategy::kExact, SearchStrategy::kBeam, SearchStrategy::kHierarchical}) {
      PartitionOptions options;
      options.nm = 1 + round % 3;
      options.strategy = strategy;
      const Partition serial = partitioner.SolveScalable(ids, options);
      const std::string serial_bytes =
          serial.feasible ? serial.ToString(profile) : "infeasible";
      for (runner::ThreadPool* pool : pools) {
        PartitionOptions pooled = options;
        pooled.pool = pool;
        const Partition parallel = partitioner.SolveScalable(ids, pooled);
        ExpectSamePartition(parallel, serial);
        EXPECT_EQ(parallel.feasible ? parallel.ToString(profile) : "infeasible",
                  serial_bytes)
            << "round " << round << ": " << SearchStrategyName(strategy) << " on "
            << pool->num_threads() << " threads";
      }
      ++solved_rounds;
    }
  }
  EXPECT_GE(solved_rounds, 15);  // the grid must actually run
}

}  // namespace
}  // namespace hetpipe::partition
