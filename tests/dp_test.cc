#include <gtest/gtest.h>

#include "dp/allreduce.h"
#include "dp/decentralized.h"
#include "dp/horovod.h"
#include "dp/placement.h"
#include "dp/ps_baselines.h"
#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"

namespace hetpipe::dp {
namespace {

TEST(AllReduceTest, ZeroForTrivialCases) {
  RingAllReduceParams p;
  p.num_workers = 1;
  p.bytes = 1000;
  p.bottleneck_bps = 1e9;
  EXPECT_DOUBLE_EQ(RingAllReduceTime(p), 0.0);
  p.num_workers = 4;
  p.bytes = 0;
  EXPECT_DOUBLE_EQ(RingAllReduceTime(p), 0.0);
}

TEST(AllReduceTest, BandwidthOptimalVolume) {
  RingAllReduceParams p;
  p.num_workers = 4;
  p.bytes = 4ULL << 20;
  p.bottleneck_bps = 1e9;
  p.per_step_latency_s = 0.0;
  // 2*(N-1)/N * bytes / bw.
  const double expected = 2.0 * 3.0 / 4.0 * static_cast<double>(4ULL << 20) / 1e9;
  EXPECT_NEAR(RingAllReduceTime(p), expected, 1e-12);
}

TEST(AllReduceTest, LatencyScalesWithSteps) {
  RingAllReduceParams p;
  p.num_workers = 8;
  p.bytes = 1;
  p.bottleneck_bps = 1e12;
  p.per_step_latency_s = 1e-3;
  EXPECT_NEAR(RingAllReduceTime(p), 14e-3, 1e-6);
}

TEST(AllReduceTest, MoreWorkersMoreVolume) {
  RingAllReduceParams p;
  p.bytes = 100ULL << 20;
  p.bottleneck_bps = 5e9;
  p.num_workers = 2;
  const double t2 = RingAllReduceTime(p);
  p.num_workers = 16;
  const double t16 = RingAllReduceTime(p);
  EXPECT_GT(t16, t2);
}

TEST(SharedFabricTest, DividesBandwidth) {
  EXPECT_DOUBLE_EQ(SharedFabricBandwidth(10e9, 4, 1.0), 2.5e9);
  EXPECT_DOUBLE_EQ(SharedFabricBandwidth(10e9, 0, 0.5), 5e9);  // clamps to 1
}

TEST(HorovodTest, ResNetExcludesWhimpyGpus) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const HorovodResult result = SimulateHorovod(cluster, profile);
  ASSERT_TRUE(result.feasible);
  // §8.3: "For ResNet-152 ... Horovod uses only 12 GPUs" — the four 6 GiB
  // RTX 2060s cannot hold the model.
  EXPECT_EQ(result.worker_gpus.size(), 12u);
  EXPECT_EQ(result.num_excluded, 4);
  for (int id : result.worker_gpus) {
    EXPECT_NE(cluster.gpu(id).type, hw::GpuType::kRtx2060);
  }
}

TEST(HorovodTest, VggUsesAllGpus) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const HorovodResult result = SimulateHorovod(cluster, profile);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.worker_gpus.size(), 16u);
  EXPECT_EQ(result.num_excluded, 0);
}

TEST(HorovodTest, BspWaitsForSlowestWorker) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const HorovodResult result = SimulateHorovod(cluster, profile);
  // The slowest participating GPU is the Quadro P4000.
  EXPECT_NEAR(result.compute_s, profile.FullModelTime(hw::GpuType::kQuadroP4000), 1e-12);
}

TEST(HorovodTest, ThroughputMatchesPaperTable4Shape) {
  // Table 4, Horovod row for VGG-19: 164 (4 GPUs), 205 (8), 265 (12), 339 (16).
  // The calibrated model must land near those values (±20%).
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const struct {
    const char* nodes;
    double expected;
  } cases[] = {{"V", 164.0}, {"VR", 205.0}, {"VRQ", 265.0}, {"VRQG", 339.0}};
  double prev = 0.0;
  for (const auto& c : cases) {
    const hw::Cluster cluster = hw::Cluster::PaperSubset(c.nodes);
    const HorovodResult result = SimulateHorovod(cluster, profile);
    EXPECT_NEAR(result.throughput_img_s, c.expected, c.expected * 0.2) << c.nodes;
    EXPECT_GT(result.throughput_img_s, prev);  // more GPUs helps
    prev = result.throughput_img_s;
  }
}

TEST(HorovodTest, ResNetThroughputShape) {
  // Table 4, Horovod row for ResNet-152: 233 (4), 353 (8), 415 (12).
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const struct {
    const char* nodes;
    double expected;
  } cases[] = {{"V", 233.0}, {"VR", 353.0}, {"VRQ", 415.0}};
  for (const auto& c : cases) {
    const hw::Cluster cluster = hw::Cluster::PaperSubset(c.nodes);
    const HorovodResult result = SimulateHorovod(cluster, profile);
    EXPECT_NEAR(result.throughput_img_s, c.expected, c.expected * 0.2) << c.nodes;
  }
}

TEST(PlacementTest, HorovodCrossNodeBytesMatchesPaperAccounting) {
  // §8.3: VGG-19 over 16 workers moves ~515 MB across nodes per iteration.
  const model::ModelGraph graph = model::BuildVgg19();
  const uint64_t bytes = HorovodCrossNodeBytes(graph.total_param_bytes(), 16);
  EXPECT_NEAR(static_cast<double>(bytes) / (1 << 20), 515.0, 15.0);
  EXPECT_EQ(HorovodCrossNodeBytes(1000, 1), 0u);
}

TEST(PlacementTest, EdLocalParameterTrafficIsZero) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 1;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  EXPECT_EQ(PsCrossNodeBytesPerMinibatch(partition, 4, /*local=*/true, 1), 0u);
  EXPECT_GT(PsCrossNodeBytesPerMinibatch(partition, 4, /*local=*/false, 1), 0u);
}

TEST(PlacementTest, EdVwStillMovesActivationsAcrossNodes) {
  // §8.3: even ED-local ResNet moves ~298 MB across nodes (activations).
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 1;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  const uint64_t bytes = ActivationCrossNodeBytes(partition, profile);
  EXPECT_GT(bytes, 0u);
  // All three boundaries cross nodes in an ED virtual worker.
  EXPECT_GT(bytes, 50ULL << 20);
}

TEST(PlacementTest, ActivationTrafficByTierSplitsByRack) {
  // Three 2-GPU V nodes, nodes 0+1 in one rack, node 2 alone; a fixed-order
  // VW spanning (node0, node0, node1, node2) exercises every tier.
  const hw::Cluster cluster =
      hw::ClusterSpec::Parse(
          "node 2xV; node 2xV; node 2xV;"
          "rack r0 { node0 node1 }; rack r1 { node2 }; cross_rack_gbits 5")
          .Build();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 1;
  options.search_gpu_orders = false;  // keep the node sequence 0,0,1,2
  const partition::Partition partition = partitioner.Solve({0, 1, 2, 4}, options);
  ASSERT_TRUE(partition.feasible);

  const ActivationTraffic traffic = ActivationTrafficByTier(partition, profile, cluster);
  EXPECT_GT(traffic.intra_node_bytes, 0u);   // boundary inside node 0
  EXPECT_GT(traffic.same_rack_bytes, 0u);    // node0 -> node1
  EXPECT_GT(traffic.cross_rack_bytes, 0u);   // node1 -> node2
  // The cross-node tiers partition exactly the flat cross-node accounting.
  EXPECT_EQ(traffic.same_rack_bytes + traffic.cross_rack_bytes,
            ActivationCrossNodeBytes(partition, profile));

  // Without rack structure, every cross-node byte is same-rack.
  const hw::Cluster flat = hw::Cluster::Paper();
  const partition::Partitioner flat_partitioner(profile, flat);
  partition::PartitionOptions ed;
  ed.nm = 1;
  const partition::Partition ed_partition = flat_partitioner.Solve({0, 4, 8, 12}, ed);
  ASSERT_TRUE(ed_partition.feasible);
  const ActivationTraffic flat_traffic = ActivationTrafficByTier(ed_partition, profile, flat);
  EXPECT_EQ(flat_traffic.cross_rack_bytes, 0u);
  EXPECT_EQ(flat_traffic.same_rack_bytes, ActivationCrossNodeBytes(ed_partition, profile));
}

// ---- Per-node-pair links in the dp baselines ----
// The ps and AD-PSGD models price traffic over the actual resolved pair
// links on non-uniform fabrics, and keep the literal historical aggregate
// formula on uniform ones (so every pre-topology result is bit-identical).

TEST(PairLinkTest, PsDegradedPairSlowsAffectedWorkers) {
  const char* base_spec = "node 2xV; node 2xV; node 2xV";
  const hw::Cluster uniform = hw::ClusterSpec::Parse(base_spec).Build();
  const hw::Cluster degraded =
      hw::ClusterSpec::Parse(std::string(base_spec) + "; link node0<->node2 gbits 1").Build();
  ASSERT_TRUE(uniform.UniformFabric());
  ASSERT_FALSE(degraded.UniformFabric());

  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const PsDpResult fast = SimulatePsDataParallel(uniform, profile);
  const PsDpResult slow = SimulatePsDataParallel(degraded, profile);
  ASSERT_TRUE(fast.feasible);
  ASSERT_TRUE(slow.feasible);
  // Workers on nodes 0 and 2 now push their node-2 / node-0 shard over a
  // 1 Gbit link; the bottleneck comm (and hence throughput) must move.
  EXPECT_GT(slow.comm_s, fast.comm_s);
  EXPECT_LT(slow.throughput_img_s, fast.throughput_img_s);
}

TEST(PairLinkTest, PsPerDestinationRefinesTheFunnelBound) {
  // With one degraded pair out of two, only that destination's shard pays
  // the slow link; the old funnel bound charged *all* remote bytes at the
  // worst link. The refined comm must therefore sit strictly between the
  // uniform comm and the all-worst bound.
  const char* base_spec = "node 2xV; node 2xV; node 2xV";
  const hw::Cluster degraded =
      hw::ClusterSpec::Parse(std::string(base_spec) + "; link node0<->node2 gbits 1").Build();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);

  const uint64_t params = profile.graph().total_param_bytes();
  const uint64_t local = 2 * params / 3;
  const uint64_t remote = 2 * params - local;
  // Worker on node 0, which shares its NIC with one other worker.
  const double funnel = degraded.pcie().TransferTime(local) +
                        degraded.WorstInterTransferTimeFrom(0, remote) * 2;
  const PsDpResult result = SimulatePsDataParallel(degraded, profile);
  ASSERT_TRUE(result.feasible);
  EXPECT_LT(result.comm_s, funnel);
}

TEST(PairLinkTest, AdPsgdDegradedPairBetweenWorkersSlowsGossip) {
  const char* base_spec = "node 2xV; node 2xV; node 2xV";
  const hw::Cluster uniform = hw::ClusterSpec::Parse(base_spec).Build();
  const hw::Cluster degraded =
      hw::ClusterSpec::Parse(std::string(base_spec) + "; link node0<->node1 gbits 1").Build();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const DecentralizedResult fast = SimulateAdPsgd(uniform, profile);
  const DecentralizedResult slow = SimulateAdPsgd(degraded, profile);
  ASSERT_TRUE(fast.feasible);
  ASSERT_TRUE(slow.feasible);
  EXPECT_GT(slow.avg_pairwise_comm_s, fast.avg_pairwise_comm_s);
  EXPECT_LT(slow.throughput_img_s, fast.throughput_img_s);
}

TEST(PairLinkTest, AdPsgdIgnoresDegradedPairTouchingNoWorkers) {
  // ResNet-152 does not fit a G GPU, so node 2 hosts no eligible workers.
  // Degrading a link into node 2 flips the cluster to a non-uniform fabric —
  // exercising the per-pair path — but gossip peers live only on nodes 0 and
  // 1, so the result must be exactly the uniform-fabric one.
  const char* base_spec = "node 2xV; node 2xV; node 2xG";
  const hw::Cluster uniform = hw::ClusterSpec::Parse(base_spec).Build();
  const hw::Cluster degraded =
      hw::ClusterSpec::Parse(std::string(base_spec) + "; link node1<->node2 gbits 1").Build();
  ASSERT_FALSE(degraded.UniformFabric());
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const DecentralizedResult expected = SimulateAdPsgd(uniform, profile);
  const DecentralizedResult actual = SimulateAdPsgd(degraded, profile);
  ASSERT_TRUE(expected.feasible);
  EXPECT_EQ(expected.num_workers, actual.num_workers);
  EXPECT_EQ(expected.num_excluded, actual.num_excluded);
  EXPECT_EQ(expected.throughput_img_s, actual.throughput_img_s);
  EXPECT_EQ(expected.avg_pairwise_comm_s, actual.avg_pairwise_comm_s);
}

TEST(PairLinkTest, UniformSpecMatchesPaperClusterExactly) {
  // A spec-built uniform fabric and the hand-built paper testbed must price
  // both baselines identically: the uniform branch is the literal historical
  // formula.
  const hw::Cluster paper = hw::Cluster::Paper();
  const hw::Cluster spec = hw::ClusterSpec::PaperTestbed().Build();
  ASSERT_TRUE(spec.UniformFabric());
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const PsDpResult ps_a = SimulatePsDataParallel(paper, profile);
  const PsDpResult ps_b = SimulatePsDataParallel(spec, profile);
  EXPECT_EQ(ps_a.comm_s, ps_b.comm_s);
  EXPECT_EQ(ps_a.throughput_img_s, ps_b.throughput_img_s);
  const DecentralizedResult ad_a = SimulateAdPsgd(paper, profile);
  const DecentralizedResult ad_b = SimulateAdPsgd(spec, profile);
  EXPECT_EQ(ad_a.throughput_img_s, ad_b.throughput_img_s);
  EXPECT_EQ(ad_a.avg_pairwise_comm_s, ad_b.avg_pairwise_comm_s);
}

TEST(PlacementTest, WaveAmortizationDividesByNm) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 4;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  const uint64_t per1 = PsCrossNodeBytesPerMinibatch(partition, 4, false, 1);
  const uint64_t per4 = PsCrossNodeBytesPerMinibatch(partition, 4, false, 4);
  EXPECT_EQ(per4, per1 / 4);
}

}  // namespace
}  // namespace hetpipe::dp
