#include <gtest/gtest.h>

#include "dp/allreduce.h"
#include "dp/horovod.h"
#include "dp/placement.h"
#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"

namespace hetpipe::dp {
namespace {

TEST(AllReduceTest, ZeroForTrivialCases) {
  RingAllReduceParams p;
  p.num_workers = 1;
  p.bytes = 1000;
  p.bottleneck_bps = 1e9;
  EXPECT_DOUBLE_EQ(RingAllReduceTime(p), 0.0);
  p.num_workers = 4;
  p.bytes = 0;
  EXPECT_DOUBLE_EQ(RingAllReduceTime(p), 0.0);
}

TEST(AllReduceTest, BandwidthOptimalVolume) {
  RingAllReduceParams p;
  p.num_workers = 4;
  p.bytes = 4ULL << 20;
  p.bottleneck_bps = 1e9;
  p.per_step_latency_s = 0.0;
  // 2*(N-1)/N * bytes / bw.
  const double expected = 2.0 * 3.0 / 4.0 * static_cast<double>(4ULL << 20) / 1e9;
  EXPECT_NEAR(RingAllReduceTime(p), expected, 1e-12);
}

TEST(AllReduceTest, LatencyScalesWithSteps) {
  RingAllReduceParams p;
  p.num_workers = 8;
  p.bytes = 1;
  p.bottleneck_bps = 1e12;
  p.per_step_latency_s = 1e-3;
  EXPECT_NEAR(RingAllReduceTime(p), 14e-3, 1e-6);
}

TEST(AllReduceTest, MoreWorkersMoreVolume) {
  RingAllReduceParams p;
  p.bytes = 100ULL << 20;
  p.bottleneck_bps = 5e9;
  p.num_workers = 2;
  const double t2 = RingAllReduceTime(p);
  p.num_workers = 16;
  const double t16 = RingAllReduceTime(p);
  EXPECT_GT(t16, t2);
}

TEST(SharedFabricTest, DividesBandwidth) {
  EXPECT_DOUBLE_EQ(SharedFabricBandwidth(10e9, 4, 1.0), 2.5e9);
  EXPECT_DOUBLE_EQ(SharedFabricBandwidth(10e9, 0, 0.5), 5e9);  // clamps to 1
}

TEST(HorovodTest, ResNetExcludesWhimpyGpus) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const HorovodResult result = SimulateHorovod(cluster, profile);
  ASSERT_TRUE(result.feasible);
  // §8.3: "For ResNet-152 ... Horovod uses only 12 GPUs" — the four 6 GiB
  // RTX 2060s cannot hold the model.
  EXPECT_EQ(result.worker_gpus.size(), 12u);
  EXPECT_EQ(result.num_excluded, 4);
  for (int id : result.worker_gpus) {
    EXPECT_NE(cluster.gpu(id).type, hw::GpuType::kRtx2060);
  }
}

TEST(HorovodTest, VggUsesAllGpus) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const HorovodResult result = SimulateHorovod(cluster, profile);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.worker_gpus.size(), 16u);
  EXPECT_EQ(result.num_excluded, 0);
}

TEST(HorovodTest, BspWaitsForSlowestWorker) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const HorovodResult result = SimulateHorovod(cluster, profile);
  // The slowest participating GPU is the Quadro P4000.
  EXPECT_NEAR(result.compute_s, profile.FullModelTime(hw::GpuType::kQuadroP4000), 1e-12);
}

TEST(HorovodTest, ThroughputMatchesPaperTable4Shape) {
  // Table 4, Horovod row for VGG-19: 164 (4 GPUs), 205 (8), 265 (12), 339 (16).
  // The calibrated model must land near those values (±20%).
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const struct {
    const char* nodes;
    double expected;
  } cases[] = {{"V", 164.0}, {"VR", 205.0}, {"VRQ", 265.0}, {"VRQG", 339.0}};
  double prev = 0.0;
  for (const auto& c : cases) {
    const hw::Cluster cluster = hw::Cluster::PaperSubset(c.nodes);
    const HorovodResult result = SimulateHorovod(cluster, profile);
    EXPECT_NEAR(result.throughput_img_s, c.expected, c.expected * 0.2) << c.nodes;
    EXPECT_GT(result.throughput_img_s, prev);  // more GPUs helps
    prev = result.throughput_img_s;
  }
}

TEST(HorovodTest, ResNetThroughputShape) {
  // Table 4, Horovod row for ResNet-152: 233 (4), 353 (8), 415 (12).
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const struct {
    const char* nodes;
    double expected;
  } cases[] = {{"V", 233.0}, {"VR", 353.0}, {"VRQ", 415.0}};
  for (const auto& c : cases) {
    const hw::Cluster cluster = hw::Cluster::PaperSubset(c.nodes);
    const HorovodResult result = SimulateHorovod(cluster, profile);
    EXPECT_NEAR(result.throughput_img_s, c.expected, c.expected * 0.2) << c.nodes;
  }
}

TEST(PlacementTest, HorovodCrossNodeBytesMatchesPaperAccounting) {
  // §8.3: VGG-19 over 16 workers moves ~515 MB across nodes per iteration.
  const model::ModelGraph graph = model::BuildVgg19();
  const uint64_t bytes = HorovodCrossNodeBytes(graph.total_param_bytes(), 16);
  EXPECT_NEAR(static_cast<double>(bytes) / (1 << 20), 515.0, 15.0);
  EXPECT_EQ(HorovodCrossNodeBytes(1000, 1), 0u);
}

TEST(PlacementTest, EdLocalParameterTrafficIsZero) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 1;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  EXPECT_EQ(PsCrossNodeBytesPerMinibatch(partition, 4, /*local=*/true, 1), 0u);
  EXPECT_GT(PsCrossNodeBytesPerMinibatch(partition, 4, /*local=*/false, 1), 0u);
}

TEST(PlacementTest, EdVwStillMovesActivationsAcrossNodes) {
  // §8.3: even ED-local ResNet moves ~298 MB across nodes (activations).
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 1;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  const uint64_t bytes = ActivationCrossNodeBytes(partition, profile);
  EXPECT_GT(bytes, 0u);
  // All three boundaries cross nodes in an ED virtual worker.
  EXPECT_GT(bytes, 50ULL << 20);
}

TEST(PlacementTest, ActivationTrafficByTierSplitsByRack) {
  // Three 2-GPU V nodes, nodes 0+1 in one rack, node 2 alone; a fixed-order
  // VW spanning (node0, node0, node1, node2) exercises every tier.
  const hw::Cluster cluster =
      hw::ClusterSpec::Parse(
          "node 2xV; node 2xV; node 2xV;"
          "rack r0 { node0 node1 }; rack r1 { node2 }; cross_rack_gbits 5")
          .Build();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 1;
  options.search_gpu_orders = false;  // keep the node sequence 0,0,1,2
  const partition::Partition partition = partitioner.Solve({0, 1, 2, 4}, options);
  ASSERT_TRUE(partition.feasible);

  const ActivationTraffic traffic = ActivationTrafficByTier(partition, profile, cluster);
  EXPECT_GT(traffic.intra_node_bytes, 0u);   // boundary inside node 0
  EXPECT_GT(traffic.same_rack_bytes, 0u);    // node0 -> node1
  EXPECT_GT(traffic.cross_rack_bytes, 0u);   // node1 -> node2
  // The cross-node tiers partition exactly the flat cross-node accounting.
  EXPECT_EQ(traffic.same_rack_bytes + traffic.cross_rack_bytes,
            ActivationCrossNodeBytes(partition, profile));

  // Without rack structure, every cross-node byte is same-rack.
  const hw::Cluster flat = hw::Cluster::Paper();
  const partition::Partitioner flat_partitioner(profile, flat);
  partition::PartitionOptions ed;
  ed.nm = 1;
  const partition::Partition ed_partition = flat_partitioner.Solve({0, 4, 8, 12}, ed);
  ASSERT_TRUE(ed_partition.feasible);
  const ActivationTraffic flat_traffic = ActivationTrafficByTier(ed_partition, profile, flat);
  EXPECT_EQ(flat_traffic.cross_rack_bytes, 0u);
  EXPECT_EQ(flat_traffic.same_rack_bytes, ActivationCrossNodeBytes(ed_partition, profile));
}

TEST(PlacementTest, WaveAmortizationDividesByNm) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 4;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  const uint64_t per1 = PsCrossNodeBytesPerMinibatch(partition, 4, false, 1);
  const uint64_t per4 = PsCrossNodeBytesPerMinibatch(partition, 4, false, 4);
  EXPECT_EQ(per4, per1 / 4);
}

}  // namespace
}  // namespace hetpipe::dp
