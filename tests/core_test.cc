#include <gtest/gtest.h>

#include <cmath>

#include "core/convergence.h"
#include "core/experiment.h"
#include "core/hetpipe.h"
#include "model/resnet.h"
#include "model/vgg.h"

namespace hetpipe::core {
namespace {

HetPipeConfig FastConfig() {
  HetPipeConfig config;
  config.waves = 20;
  config.warmup_waves = 3;
  return config;
}

TEST(HetPipeTest, EdLocalResNetRuns) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  HetPipeConfig config = FastConfig();
  config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  config.placement = wsp::PlacementPolicy::kLocal;
  const HetPipeReport report = HetPipe(cluster, graph, config).Run();
  ASSERT_TRUE(report.feasible) << report.infeasible_reason;
  EXPECT_EQ(report.vws.size(), 4u);
  EXPECT_GT(report.throughput_img_s, 0.0);
  EXPECT_GE(report.nm, 1);
  EXPECT_EQ(report.s_local, report.nm - 1);
}

TEST(HetPipeTest, NmOverrideCapsNm) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  HetPipeConfig config = FastConfig();
  config.nm = 2;
  const HetPipeReport report = HetPipe(cluster, graph, config).Run();
  ASSERT_TRUE(report.feasible);
  EXPECT_EQ(report.nm, 2);
}

TEST(HetPipeTest, NpBoundByWhimpyVirtualWorker) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  // Batch 64 makes the GGGG virtual worker's 6 GiB GPUs the binding
  // constraint, as in the paper's observation.
  HetPipeConfig np = FastConfig();
  np.batch_size = 64;
  np.allocation = cluster::AllocationPolicy::kNodePartition;
  HetPipeConfig ed = np;
  ed.allocation = cluster::AllocationPolicy::kEqualDistribution;
  const HetPipeReport np_report = HetPipe(cluster, graph, np).Run();
  const HetPipeReport ed_report = HetPipe(cluster, graph, ed).Run();
  ASSERT_TRUE(np_report.feasible);
  ASSERT_TRUE(ed_report.feasible);
  // §8.3: "With NP, training performance ... is low as Nm is bounded by the
  // virtual worker with the smallest GPU memory" (the GGGG one): the ED
  // allocation can run at least as many concurrent minibatches and is faster.
  EXPECT_LE(np_report.nm, ed_report.nm);
  EXPECT_LT(np_report.throughput_img_s, ed_report.throughput_img_s);
}

TEST(HetPipeTest, AllVwsRunAllWaves) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  HetPipeConfig config = FastConfig();
  config.placement = wsp::PlacementPolicy::kLocal;
  const HetPipeReport report = HetPipe(cluster, graph, config).Run();
  ASSERT_TRUE(report.feasible);
  for (const VwReport& vw : report.vws) {
    EXPECT_GT(vw.throughput_img_s, 0.0);
    EXPECT_GT(vw.max_stage_utilization, 0.0);
    EXPECT_LE(vw.max_stage_utilization, 1.0);
  }
}

TEST(HetPipeTest, DeterministicWithoutJitter) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  HetPipeConfig config = FastConfig();
  const double a = HetPipe(cluster, graph, config).Run().throughput_img_s;
  const double b = HetPipe(cluster, graph, config).Run().throughput_img_s;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(HetPipeTest, SingleVirtualWorkerInfeasibleNmReported) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  HetPipeConfig config = FastConfig();
  config.batch_size = 64;
  // GGGG at Nm=7, batch 64 exceeds the 6 GiB RTX 2060s.
  const HetPipeReport report =
      HetPipe::RunSingleVirtualWorker(cluster, graph, {8, 9, 10, 11}, 7, config);
  EXPECT_FALSE(report.feasible);
  EXPECT_FALSE(report.infeasible_reason.empty());
}

TEST(ExperimentTest, PickGpusByCode) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const auto vvqq = PickGpusByCode(cluster, "VVQQ");
  ASSERT_EQ(vvqq.size(), 4u);
  EXPECT_EQ(cluster.gpu(vvqq[0]).type, hw::GpuType::kTitanV);
  EXPECT_EQ(cluster.gpu(vvqq[1]).type, hw::GpuType::kTitanV);
  EXPECT_NE(vvqq[0], vvqq[1]);
  EXPECT_EQ(cluster.gpu(vvqq[2]).type, hw::GpuType::kQuadroP4000);
  EXPECT_THROW(PickGpusByCode(cluster, "VVVVV"), std::invalid_argument);
}

TEST(ExperimentTest, Fig3NormalizedStartsAtOne) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const auto points = RunFig3Config(cluster, graph, "RRRR", 3);
  ASSERT_GE(points.size(), 1u);
  ASSERT_TRUE(points[0].feasible);
  EXPECT_DOUBLE_EQ(points[0].normalized, 1.0);
  if (points[1].feasible) {
    EXPECT_GT(points[1].normalized, 1.0);
  }
}

TEST(AccuracyCurveTest, InverseConsistency) {
  const AccuracyCurve curve = AccuracyCurve::ResNet152();
  const double epochs = curve.EpochsToAccuracy(0.74);
  EXPECT_NEAR(curve.Accuracy(epochs), 0.74, 1e-9);
  EXPECT_TRUE(std::isinf(curve.EpochsToAccuracy(0.99)));
  EXPECT_DOUBLE_EQ(curve.Accuracy(0.0), 0.0);
}

TEST(ConvergenceTest, EfficiencyDecreasesWithStaleness) {
  EXPECT_DOUBLE_EQ(StatisticalEfficiency(0.05, 0.0), 1.0);
  EXPECT_LT(StatisticalEfficiency(0.05, 10.0), 1.0);
  EXPECT_LT(StatisticalEfficiency(0.05, 20.0), StatisticalEfficiency(0.05, 10.0));
}

TEST(ConvergenceTest, VggMoreSensitiveThanResNet) {
  EXPECT_GT(StalenessSensitivity(model::ModelFamily::kVgg19),
            StalenessSensitivity(model::ModelFamily::kResNet152));
}

TEST(ConvergenceTest, HigherThroughputConvergesFaster) {
  const ConvergenceModel model = ConvergenceModel::For(model::ModelFamily::kResNet152);
  ConvergenceInput slow;
  slow.throughput_img_s = 300.0;
  ConvergenceInput fast = slow;
  fast.throughput_img_s = 600.0;
  const double t_slow = model.HoursToAccuracy(slow, 0.74);
  const double t_fast = model.HoursToAccuracy(fast, 0.74);
  EXPECT_NEAR(t_slow / t_fast, 2.0, 1e-9);
}

TEST(ConvergenceTest, StalenessSlowsConvergence) {
  const ConvergenceModel model = ConvergenceModel::For(model::ModelFamily::kVgg19);
  ConvergenceInput clean;
  clean.throughput_img_s = 600.0;
  ConvergenceInput stale = clean;
  stale.avg_missing_updates = 10.0;
  EXPECT_GT(model.HoursToAccuracy(stale, 0.67), model.HoursToAccuracy(clean, 0.67));
}

TEST(ConvergenceTest, CurveIsMonotone) {
  const ConvergenceModel model = ConvergenceModel::For(model::ModelFamily::kVgg19);
  ConvergenceInput input;
  input.throughput_img_s = 500.0;
  const sim::TimeSeries curve = model.Curve(input, 100.0, 1.0);
  ASSERT_GT(curve.size(), 10u);
  for (size_t i = 1; i < curve.points().size(); ++i) {
    EXPECT_GE(curve.points()[i].second, curve.points()[i - 1].second);
  }
}

TEST(ConfigTest, ToStringIncludesPolicy) {
  HetPipeConfig config;
  config.allocation = cluster::AllocationPolicy::kNodePartition;
  EXPECT_NE(config.ToString().find("NP"), std::string::npos);
}

}  // namespace
}  // namespace hetpipe::core
