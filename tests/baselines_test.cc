#include <gtest/gtest.h>

#include <cmath>

#include "dp/decentralized.h"
#include "dp/horovod.h"
#include "dp/ps_baselines.h"
#include "hw/cluster.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/transformer.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "train/data.h"
#include "train/model_zoo.h"
#include "train/wsp_trainer.h"

namespace hetpipe {
namespace {

double MiB(uint64_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

// ---- Transformer builders. ----

TEST(TransformerTest, BertLargeParameterCount) {
  const model::ModelGraph graph = model::BuildBertLarge();
  // BERT-Large is ~340M params => ~1.3 GiB fp32.
  EXPECT_NEAR(MiB(graph.total_param_bytes()) / 1024.0, 1.27, 0.15);
  EXPECT_EQ(graph.num_layers(), 26);  // embed + 24 blocks + head
}

TEST(TransformerTest, BertBaseSmaller) {
  const model::ModelGraph base = model::BuildBertBase();
  const model::ModelGraph large = model::BuildBertLarge();
  EXPECT_LT(base.total_param_bytes(), large.total_param_bytes());
  EXPECT_LT(base.total_fwd_flops(), large.total_fwd_flops());
  // BERT-Base ~110M params.
  EXPECT_NEAR(MiB(base.total_param_bytes()), 110.0 * 4, 60.0);
}

TEST(TransformerTest, FlopsScaleWithSequenceLength) {
  const model::ModelGraph s128 = model::BuildBertLarge(128);
  const model::ModelGraph s512 = model::BuildBertLarge(512);
  EXPECT_GT(s512.total_fwd_flops(), 3.0 * s128.total_fwd_flops());
  EXPECT_EQ(s512.total_param_bytes(), s128.total_param_bytes());  // params are seq-free
}

TEST(TransformerTest, PartitionsAcrossHeterogeneousVw) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildBertLarge(256);
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 4;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  EXPECT_EQ(partition.num_stages(), 4);
}

// ---- PS-based BSP/SSP/ASP baselines. ----

TEST(PsBaselinesTest, FeasibilityMatchesHorovod) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const dp::PsDpResult bsp = dp::SimulatePsDataParallel(cluster, profile);
  EXPECT_TRUE(bsp.feasible);
  EXPECT_EQ(bsp.num_workers, 12);  // G GPUs excluded, like Horovod
  EXPECT_EQ(bsp.num_excluded, 4);
}

TEST(PsBaselinesTest, SspFasterThanBspUnderNoise) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  dp::PsDpOptions bsp;
  bsp.mode = dp::PsSyncMode::kBsp;
  dp::PsDpOptions ssp;
  ssp.mode = dp::PsSyncMode::kSsp;
  ssp.staleness = 3;
  const auto bsp_result = dp::SimulatePsDataParallel(cluster, profile, bsp);
  const auto ssp_result = dp::SimulatePsDataParallel(cluster, profile, ssp);
  EXPECT_GT(ssp_result.throughput_img_s, bsp_result.throughput_img_s);
  EXPECT_GT(ssp_result.expected_staleness, bsp_result.expected_staleness);
}

TEST(PsBaselinesTest, AspFastestButStalest) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  dp::PsDpOptions asp;
  asp.mode = dp::PsSyncMode::kAsp;
  dp::PsDpOptions ssp;
  ssp.mode = dp::PsSyncMode::kSsp;
  ssp.staleness = 2;
  const auto asp_result = dp::SimulatePsDataParallel(cluster, profile, asp);
  const auto ssp_result = dp::SimulatePsDataParallel(cluster, profile, ssp);
  EXPECT_GT(asp_result.throughput_img_s, ssp_result.throughput_img_s * 0.9);
  EXPECT_EQ(asp_result.sync_overhead_s, 0.0);
}

TEST(PsBaselinesTest, GrpcPsSlowerThanNcclAllreduce) {
  // The PS path goes through the TF runtime (slow links); Horovod's NCCL
  // collectives are faster — consistent with the paper using Horovod as the
  // strongest DP baseline.
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const auto ps = dp::SimulatePsDataParallel(cluster, profile);
  const auto horovod = dp::SimulateHorovod(cluster, profile);
  EXPECT_LT(ps.throughput_img_s, horovod.throughput_img_s);
}

// ---- Decentralized (AD-PSGD) baseline. ----

TEST(DecentralizedTest, RunsAndNeverBlocks) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const auto result = dp::SimulateAdPsgd(cluster, profile);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.num_workers, 16);
  EXPECT_GT(result.throughput_img_s, 0.0);
  EXPECT_GT(result.expected_staleness, 0.0);
}

TEST(DecentralizedTest, ExcludesGpusThatCannotHoldModel) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const auto result = dp::SimulateAdPsgd(cluster, profile);
  EXPECT_EQ(result.num_workers, 12);
  EXPECT_EQ(result.num_excluded, 4);
}

TEST(DecentralizedTest, OverlapHidesCommunication) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  dp::DecentralizedOptions full;
  full.comm_overlap = 1.0;
  dp::DecentralizedOptions none;
  none.comm_overlap = 0.0;
  EXPECT_GT(dp::SimulateAdPsgd(cluster, profile, full).throughput_img_s,
            dp::SimulateAdPsgd(cluster, profile, none).throughput_img_s);
}

// ---- Momentum / weight decay in the real trainer. ----

TEST(MomentumTest, MomentumAcceleratesConvexTraining) {
  const train::Dataset data = train::MakeLinearRegression(400, 8, 0.05, 51);
  const train::LinearRegressionModel model(8);

  // Regression note (flake documented since PR 2): with 2 workers TrainWsp
  // runs real threads, and the order their BSP-wave updates land in is
  // scheduler-dependent — float accumulation order then shifts final_loss
  // just enough to trip a ratio comparison between two separate runs on rare
  // interleavings. One worker pins the update order, making both runs (and
  // this comparison) fully deterministic; the momentum claim is about the
  // optimizer, not about parallelism, so nothing is lost.
  train::TrainerOptions plain = train::BspOptions(1, 150);
  plain.worker.lr = 0.02;
  train::TrainerOptions heavy = plain;
  heavy.worker.momentum = 0.9;
  heavy.worker.lr = 0.01;

  const auto plain_result = train::TrainWsp(model, data, plain);
  const auto heavy_result = train::TrainWsp(model, data, heavy);
  EXPECT_LT(heavy_result.final_loss, plain_result.final_loss * 1.5);
  EXPECT_LT(heavy_result.final_loss, 0.2);
}

TEST(MomentumTest, WeightDecayShrinksWeights) {
  const train::Dataset data = train::MakeLinearRegression(300, 6, 0.05, 52);
  const train::LinearRegressionModel model(6);

  // One worker for determinism — see the regression note above.
  train::TrainerOptions no_decay = train::BspOptions(1, 200);
  no_decay.worker.lr = 0.05;
  train::TrainerOptions decay = no_decay;
  decay.worker.weight_decay = 0.2;

  const auto a = train::TrainWsp(model, data, no_decay);
  const auto b = train::TrainWsp(model, data, decay);
  EXPECT_LT(b.final_weights.Norm(), a.final_weights.Norm());
}

TEST(MomentumTest, WspWithMomentumStaysWithinStalenessBound) {
  const train::Dataset data = train::MakeLinearRegression(300, 6, 0.05, 53);
  const train::LinearRegressionModel model(6);
  train::TrainerOptions options = train::WspOptions(4, 80, 4, 1);
  options.worker.lr = 0.01;
  options.worker.momentum = 0.9;
  const auto result = train::TrainWsp(model, data, options);
  EXPECT_TRUE(result.staleness_within_bound);
  // Real threads: the loss after a fixed 80 waves depends on the realized
  // staleness, and with momentum 0.9 a heavily-loaded scheduler can leave it
  // transiently above the untrained loss (observed 6.07 vs 2.56 under an
  // 8-way CPU squeeze), so no convergence bound can be asserted here without
  // flaking — that claim belongs to the deterministic regret/convergence
  // tests. The WSP claim this test pins is the staleness gate itself, plus
  // the run not blowing up numerically.
  EXPECT_TRUE(std::isfinite(result.final_loss));
}

}  // namespace
}  // namespace hetpipe
