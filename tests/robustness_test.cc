// Edge cases, failure injection, and cross-checks between the DES and the
// analytic models.
#include <gtest/gtest.h>

#include "core/hetpipe.h"
#include "dp/horovod.h"
#include "hw/cluster.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/transformer.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "pipeline/virtual_worker.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "wsp/param_server.h"

namespace hetpipe {
namespace {

// ---- Single virtual worker degenerate shapes. ----

TEST(RobustnessTest, SingleWorkerSingleMinibatch) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 1;
  const partition::Partition partition = partitioner.Solve({4}, options);
  ASSERT_TRUE(partition.feasible);

  sim::Simulator simulator;
  pipeline::OpenGate gate;
  pipeline::VirtualWorkerOptions vopt;
  vopt.nm = 1;
  vopt.max_minibatches = 1;
  pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
  vw.Start();
  simulator.Run();
  EXPECT_EQ(vw.minibatches_completed(), 1);
  EXPECT_NEAR(vw.last_completion_time(), partition.sum_time, 1e-9);
}

TEST(RobustnessTest, TwoStagePipelineFusesSecondStage) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 2;
  const partition::Partition partition = partitioner.Solve({0, 1}, options);
  ASSERT_TRUE(partition.feasible);

  sim::Simulator simulator;
  pipeline::OpenGate gate;
  pipeline::VirtualWorkerOptions vopt;
  vopt.nm = 2;
  vopt.max_minibatches = 8;
  pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
  vw.Start();
  simulator.Run();
  EXPECT_EQ(vw.minibatches_completed(), 8);
}

// The DES can never beat the analytic steady-state bounds.
TEST(RobustnessTest, DesRespectsAnalyticThroughputBounds) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  for (int nm : {1, 2, 4, 6}) {
    partition::PartitionOptions options;
    options.nm = nm;
    const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
    ASSERT_TRUE(partition.feasible);
    sim::Simulator simulator;
    pipeline::OpenGate gate;
    pipeline::VirtualWorkerOptions vopt;
    vopt.nm = nm;
    vopt.max_minibatches = 40 * nm;
    pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
    vw.Start();
    simulator.Run();
    const auto& t = vw.completion_times();
    const size_t warm = static_cast<size_t>(5 * nm);
    const double thr =
        static_cast<double>(t.size() - 1 - warm) * 32.0 / (t.back() - t[warm]);
    const double cap =
        32.0 / std::max(partition.bottleneck_time, partition.sum_time / nm);
    EXPECT_LE(thr, cap * 1.01) << "nm=" << nm;
    EXPECT_GE(thr, cap * 0.45) << "nm=" << nm;  // and not pathologically below
  }
}

// ---- WSP coordinator corner cases. ----

TEST(RobustnessTest, CoordinatorWithSingleVwNeverBlocks) {
  sim::Simulator simulator;
  wsp::WspCoordinatorOptions options;
  options.num_vws = 1;
  options.nm = 2;
  options.policy = wsp::SyncPolicy::Wsp(0);
  std::vector<wsp::VwCommTimes> comm(1);
  comm[0].push_s = 0.1;
  comm[0].pull_s = 0.1;
  wsp::WspCoordinator coordinator(simulator, options, comm);

  // Drive 10 waves; every injection beyond the free window must eventually
  // succeed since the only VW is itself.
  int64_t wave = 0;
  int blocked = 0;
  std::function<void()> next = [&] {
    while (wave < 10) {
      const int64_t p = wave * 2 + 1;
      if (!coordinator.RequestInjection(0, p, next)) {
        ++blocked;
        return;
      }
      const int64_t w = wave++;
      simulator.Schedule(0.5, [&, w] { coordinator.OnWaveComplete(0, w); });
      return;  // one wave in flight at a time in this driver
    }
  };
  next();
  for (int i = 0; i < 100 && wave < 10; ++i) {
    simulator.Run();
    next();
  }
  EXPECT_EQ(wave, 10);
}

TEST(RobustnessTest, HugeDNeverBlocksWithinRun) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  core::HetPipeConfig config;
  config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  config.placement = wsp::PlacementPolicy::kLocal;
  config.sync = wsp::SyncPolicy::Wsp(1 << 20);
  config.waves = 15;
  const core::HetPipeReport report = core::HetPipe(cluster, graph, config).Run();
  ASSERT_TRUE(report.feasible);
  EXPECT_EQ(report.total_wait_s, 0.0);
}

TEST(RobustnessTest, AspMatchesHugeDThroughput) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  core::HetPipeConfig wsp_cfg;
  wsp_cfg.sync = wsp::SyncPolicy::Wsp(1 << 20);
  wsp_cfg.waves = 15;
  core::HetPipeConfig asp_cfg = wsp_cfg;
  asp_cfg.sync = wsp::SyncPolicy::Asp();
  const double a = core::HetPipe(cluster, graph, wsp_cfg).Run().throughput_img_s;
  const double b = core::HetPipe(cluster, graph, asp_cfg).Run().throughput_img_s;
  EXPECT_NEAR(a, b, a * 0.01);
}

TEST(RobustnessTest, ClockDistanceStaysNearDBound) {
  // With gating at threshold D, the observed clock distance can exceed D
  // only by the in-flight slack (pushes in transit), never unboundedly.
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  for (int d : {0, 2}) {
    core::HetPipeConfig config;
    config.allocation = cluster::AllocationPolicy::kEqualDistribution;
    config.placement = wsp::PlacementPolicy::kLocal;
    config.sync = wsp::SyncPolicy::Wsp(d);
    config.jitter_cv = 0.2;
    config.drift_cv = 0.3;
    config.speed_bias_cv = 0.1;
    config.waves = 30;
    const core::HetPipeReport report = core::HetPipe(cluster, graph, config).Run();
    ASSERT_TRUE(report.feasible);
    EXPECT_LE(report.avg_clock_distance, d + 2.5) << "D=" << d;
  }
}

// ---- Extreme model shapes through the whole stack. ----

TEST(RobustnessTest, TinyModelStillPartitions) {
  std::vector<model::Layer> layers;
  for (int i = 0; i < 4; ++i) {
    layers.push_back(model::MakeConv("c" + std::to_string(i), 3, 8, 8, 16, 16));
  }
  const model::ModelGraph graph("tiny", model::ModelFamily::kGeneric, std::move(layers));
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelProfile profile(graph, 4);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 2;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);
  EXPECT_EQ(partition.num_stages(), 4);  // one layer each
}

TEST(RobustnessTest, BertLargeEndToEnd) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildBertLarge(256);
  core::HetPipeConfig config;
  config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  config.placement = wsp::PlacementPolicy::kLocal;
  config.waves = 10;
  const core::HetPipeReport report = core::HetPipe(cluster, graph, config).Run();
  ASSERT_TRUE(report.feasible) << report.infeasible_reason;
  EXPECT_GT(report.throughput_img_s, 0.0);
}

TEST(RobustnessTest, HorovodInfeasibleModelReported) {
  // A model too large for even the 24 GiB TITAN RTX.
  model::TransformerConfig c;
  c.name = "30B-ish";
  c.layers = 48;
  c.hidden = 7168;
  c.ffn_hidden = 28672;
  const model::ModelGraph graph = model::BuildTransformer(c);
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelProfile profile(graph, 8);
  const dp::HorovodResult result = dp::SimulateHorovod(cluster, profile);
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.ToString().find("infeasible"), std::string::npos);
}

// ---- Determinism under heavy stochastic load. ----

TEST(RobustnessTest, FullRunDeterministicWithAllNoiseSources) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  core::HetPipeConfig config;
  config.jitter_cv = 0.3;
  config.drift_cv = 0.3;
  config.speed_bias_cv = 0.1;
  config.seed = 777;
  config.waves = 20;
  const double a = core::HetPipe(cluster, graph, config).Run().throughput_img_s;
  const double b = core::HetPipe(cluster, graph, config).Run().throughput_img_s;
  EXPECT_DOUBLE_EQ(a, b);
  config.seed = 778;
  const double c = core::HetPipe(cluster, graph, config).Run().throughput_img_s;
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace hetpipe
