// Golden-file regression suite for the experiment pipeline: the Fig. 3 /
// Fig. 4 and Table 4 experiment lists (plus a generic-cluster list) run
// through SweepRunner and their JSON rows are compared against checked-in
// goldens within tolerance, so refactors cannot silently drift the reproduced
// numbers.
//
// Regenerating after an intentional change:
//   UPDATE_GOLDEN=1 ./build/golden_test
// rewrites tests/golden/*.jsonl in the source tree; review the diff before
// committing it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster_spec.h"
#include "runner/result_sink.h"
#include "runner/spec_sweep.h"
#include "runner/sweep_runner.h"

#ifndef HETPIPE_GOLDEN_DIR
#error "golden_test needs HETPIPE_GOLDEN_DIR (set by CMakeLists.txt)"
#endif

namespace hetpipe {
namespace {

// Numeric drift tolerated before a golden mismatch is reported. The pipeline
// is deterministic, so goldens normally match to the last printed digit; the
// slack only absorbs FP differences across compilers and sanitizer builds.
constexpr double kRelTol = 1e-6;
constexpr double kAbsTol = 1e-9;

bool UpdateGolden() { return std::getenv("UPDATE_GOLDEN") != nullptr; }

std::string GoldenPath(const std::string& name) {
  return std::string(HETPIPE_GOLDEN_DIR) + "/" + name + ".jsonl";
}

// ---- A tiny parser for the flat JSON objects JsonlSink emits. ----

struct Field {
  std::string key;
  std::string value;  // raw token: quoted string, number, or true/false
};

bool ParseRow(const std::string& line, std::vector<Field>* fields, std::string* error) {
  fields->clear();
  size_t i = 0;
  const auto fail = [&](const std::string& what) {
    *error = what + " at offset " + std::to_string(i) + " in: " + line;
    return false;
  };
  if (line.empty() || line[i] != '{') {
    return fail("expected '{'");
  }
  ++i;
  const auto parse_string = [&](std::string* out) {
    ++i;  // opening quote
    out->clear();
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        out->push_back(line[i + 1]);
        i += 2;
      } else {
        out->push_back(line[i]);
        ++i;
      }
    }
    if (i >= line.size()) {
      return false;
    }
    ++i;  // closing quote
    return true;
  };
  while (i < line.size() && line[i] != '}') {
    Field field;
    if (line[i] != '"') {
      return fail("expected a key");
    }
    if (!parse_string(&field.key)) {
      return fail("unterminated key");
    }
    if (i >= line.size() || line[i] != ':') {
      return fail("expected ':'");
    }
    ++i;
    if (i < line.size() && line[i] == '"') {
      std::string value;
      const size_t start = i;
      if (!parse_string(&value)) {
        return fail("unterminated string value");
      }
      field.value = line.substr(start, i - start);
    } else {
      const size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') {
        ++i;
      }
      field.value = line.substr(start, i - start);
    }
    fields->push_back(std::move(field));
    if (i < line.size() && line[i] == ',') {
      ++i;
    }
  }
  if (i >= line.size() || line[i] != '}') {
    return fail("expected '}'");
  }
  return true;
}

bool BothNumeric(const std::string& a, const std::string& b, double* va, double* vb) {
  char* end = nullptr;
  *va = std::strtod(a.c_str(), &end);
  if (end != a.c_str() + a.size() || a.empty()) {
    return false;
  }
  *vb = std::strtod(b.c_str(), &end);
  return end == b.c_str() + b.size() && !b.empty();
}

void ExpectRowsMatch(const std::string& suite, size_t row_index, const std::string& golden,
                     const std::string& actual) {
  std::vector<Field> want;
  std::vector<Field> got;
  std::string error;
  ASSERT_TRUE(ParseRow(golden, &want, &error)) << suite << " golden: " << error;
  ASSERT_TRUE(ParseRow(actual, &got, &error)) << suite << ": " << error;
  ASSERT_EQ(want.size(), got.size()) << suite << " row " << row_index << "\n  golden: "
                                     << golden << "\n  actual: " << actual;
  for (size_t f = 0; f < want.size(); ++f) {
    EXPECT_EQ(want[f].key, got[f].key) << suite << " row " << row_index;
    double want_value = 0.0;
    double got_value = 0.0;
    if (BothNumeric(want[f].value, got[f].value, &want_value, &got_value)) {
      const double diff = std::abs(want_value - got_value);
      EXPECT_LE(diff, kAbsTol + kRelTol * std::abs(want_value))
          << suite << " row " << row_index << " field " << want[f].key << ": golden "
          << want[f].value << " vs actual " << got[f].value;
    } else {
      EXPECT_EQ(want[f].value, got[f].value)
          << suite << " row " << row_index << " field " << want[f].key;
    }
  }
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

std::string RunToJsonl(const std::vector<core::Experiment>& experiments, int threads) {
  std::ostringstream out;
  runner::JsonlSink sink(out);
  runner::SweepOptions options;
  options.threads = threads;
  options.sink = &sink;
  runner::SweepRunner sweep(options);
  sweep.Run(experiments);
  return out.str();
}

void CheckAgainstGolden(const std::string& suite,
                        const std::vector<core::Experiment>& experiments) {
  const std::string jsonl = RunToJsonl(experiments, /*threads=*/4);

  // The acceptance invariant of the sweep subsystem: the 8-thread
  // work-stealing sweep is element-wise identical to the serial one.
  EXPECT_EQ(RunToJsonl(experiments, /*threads=*/1), jsonl)
      << suite << ": serial and parallel sweeps diverged";
  EXPECT_EQ(RunToJsonl(experiments, /*threads=*/8), jsonl)
      << suite << ": 4- and 8-thread sweeps diverged";

  const std::string path = GoldenPath(suite);
  if (UpdateGolden()) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << jsonl;
    std::printf("updated %s\n", path.c_str());
    return;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << "missing golden " << path
                            << " — run UPDATE_GOLDEN=1 ./golden_test to create it";
  std::stringstream golden;
  golden << in.rdbuf();

  const std::vector<std::string> want = SplitLines(golden.str());
  const std::vector<std::string> got = SplitLines(jsonl);
  ASSERT_EQ(want.size(), got.size()) << suite << ": row count drifted";
  for (size_t i = 0; i < want.size(); ++i) {
    ExpectRowsMatch(suite, i, want[i], got[i]);
  }
}

// ---- The pinned experiment lists. Everything is fixed (seeds, waves,
// ---- jitter) so the rows are deterministic; goldens pin the numbers.

std::vector<core::Experiment> Fig3Experiments() {
  std::vector<core::Experiment> experiments;
  for (const char* codes : {"VVVV", "GGGG", "VRGQ", "VVQQ"}) {
    for (int nm = 1; nm <= 4; ++nm) {
      core::Experiment e;
      e.kind = core::ExperimentKind::kSingleVirtualWorker;
      e.model = core::ModelKind::kResNet152;
      e.vw_codes = codes;
      e.config.nm = nm;
      e.config.jitter_cv = 0.0;
      e.config.waves = 20;
      e.config.warmup_waves = 3;
      experiments.push_back(std::move(e));
    }
  }
  return experiments;
}

std::vector<core::Experiment> Fig4Experiments() {
  std::vector<core::Experiment> experiments;
  for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
    {
      core::Experiment e;
      e.name = std::string(core::ModelName(model)) + " Horovod";
      e.kind = core::ExperimentKind::kHorovod;
      e.model = model;
      experiments.push_back(std::move(e));
    }
    const struct {
      const char* label;
      cluster::AllocationPolicy allocation;
      wsp::PlacementPolicy placement;
    } kPolicies[] = {
        {"NP", cluster::AllocationPolicy::kNodePartition, wsp::PlacementPolicy::kRoundRobin},
        {"ED", cluster::AllocationPolicy::kEqualDistribution, wsp::PlacementPolicy::kRoundRobin},
        {"ED-local", cluster::AllocationPolicy::kEqualDistribution, wsp::PlacementPolicy::kLocal},
        {"HD", cluster::AllocationPolicy::kHybridDistribution, wsp::PlacementPolicy::kRoundRobin},
    };
    for (const auto& policy : kPolicies) {
      core::Experiment e;
      e.name = std::string(core::ModelName(model)) + " " + policy.label;
      e.kind = core::ExperimentKind::kFullCluster;
      e.model = model;
      e.config.allocation = policy.allocation;
      e.config.placement = policy.placement;
      e.config.sync = wsp::SyncPolicy::Wsp(0);
      e.config.jitter_cv = 0.05;
      e.config.waves = 20;
      experiments.push_back(std::move(e));
    }
  }
  return experiments;
}

std::vector<core::Experiment> Table4Experiments() {
  std::vector<core::Experiment> experiments;
  for (const char* nodes : {"V", "VR", "VRQ", "VRQG"}) {
    core::Experiment horovod;
    horovod.name = std::string("Horovod ") + nodes;
    horovod.kind = core::ExperimentKind::kHorovod;
    horovod.model = core::ModelKind::kResNet152;
    horovod.cluster_nodes = nodes;
    experiments.push_back(std::move(horovod));

    core::Experiment hetpipe;
    hetpipe.name = std::string("HetPipe ") + nodes;
    hetpipe.kind = core::ExperimentKind::kFullCluster;
    hetpipe.model = core::ModelKind::kResNet152;
    hetpipe.cluster_nodes = nodes;
    hetpipe.config.allocation = std::string(nodes).size() == 1
                                    ? cluster::AllocationPolicy::kNodePartition
                                    : cluster::AllocationPolicy::kEqualDistribution;
    hetpipe.config.placement = wsp::PlacementPolicy::kLocal;
    hetpipe.config.sync = wsp::SyncPolicy::Wsp(0);
    hetpipe.config.jitter_cv = 0.05;
    hetpipe.config.waves = 20;
    experiments.push_back(std::move(hetpipe));
  }
  return experiments;
}

std::vector<core::Experiment> GenericClusterExperiments() {
  // A non-paper cluster (mixed non-Table-1 classes, uneven node sizes, slower
  // links) pinned by golden so the ClusterSpec pipeline cannot drift either.
  const std::string spec =
      hw::ClusterSpec()
          .Named("golden-mix")
          .AddGpuClass("GoldBig", 8.5, 32.0, 'g')
          .AddGpuClass("GoldSmall", 1.4, 11.0)
          .AddNode("GoldBig", 2)
          .AddNode("GoldSmall", 3)
          .AddNode("V", 4)
          .IntraGbps(12.0)
          .InterGbits(25.0)
          .ToString();
  std::vector<core::Experiment> experiments;
  for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
    for (const int d : {0, 4}) {
      core::Experiment e;
      e.name = std::string(core::ModelName(model)) + " golden-mix D=" + std::to_string(d);
      e.kind = core::ExperimentKind::kFullCluster;
      e.model = model;
      e.cluster_spec = spec;
      e.cluster_label = "golden-mix";
      e.config = core::EdLocalConfig(d, /*jitter_cv=*/0.1);
      e.config.waves = 15;
      experiments.push_back(std::move(e));
    }
  }
  return experiments;
}

std::vector<core::Experiment> MixedNodeClusterExperiments() {
  // A cluster with a mixed-class node (golden-pinned so the new node grammar
  // and the per-class memory path cannot drift), plus one latency-knob
  // variant whose rows must differ via the knob alone.
  hw::ClusterSpec spec;
  spec.Named("golden-mixed-node")
      .AddGpuClass("GoldBig", 8.5, 32.0, 'g')
      .AddGpuClass("GoldSmall", 1.4, 11.0)
      .AddMixedNode({{"GoldBig", 2}, {"GoldSmall", 2}})
      .AddNode("GoldSmall", 4)
      .AddNode("V", 4)
      .InterGbits(25.0);
  hw::ClusterSpec slow = spec;
  slow.Named("golden-mixed-node-slow").InterInterceptS(5e-3);

  std::vector<core::Experiment> experiments;
  for (const hw::ClusterSpec& variant : {spec, slow}) {
    core::Experiment e;
    e.name = variant.name + " resnet152 D=0";
    e.kind = core::ExperimentKind::kFullCluster;
    e.model = core::ModelKind::kResNet152;
    e.cluster_spec = variant.ToString();
    e.cluster_label = variant.name;
    e.config = core::EdLocalConfig(/*d=*/0, /*jitter_cv=*/0.1);
    e.config.waves = 15;
    experiments.push_back(std::move(e));

    core::Experiment vw;
    vw.name = variant.name + " single-vw mixed-node";
    vw.kind = core::ExperimentKind::kSingleVirtualWorker;
    vw.model = core::ModelKind::kResNet152;
    vw.cluster_spec = variant.ToString();
    vw.cluster_label = variant.name;
    vw.vw_codes = "GoldBig*2@0,GoldSmall*2@0";  // the mixed node as one VW
    vw.config.nm = 3;
    vw.config.waves = 15;
    vw.config.warmup_waves = 3;
    experiments.push_back(std::move(vw));
  }
  return experiments;
}

std::vector<core::Experiment> TopologyExperiments() {
  // Rack-topology scenarios pinned by golden: the canonical mixed demo
  // cluster under rack-structured cross-rack bandwidth cliffs and one
  // degraded node pair (runner::TopologySweep), so the per-node-pair link
  // resolution cannot drift.
  runner::SpecSweepOptions options;
  options.model = core::ModelKind::kResNet152;
  options.jitter_cv = 0.1;
  options.waves = 15;
  std::vector<core::Experiment> experiments =
      runner::TopologySweep(runner::MixedDemoSpec("golden-topology"),
                            /*rack_sizes=*/{1, 2}, /*cross_rack_gbits=*/{10.0, 2.0},
                            /*degraded_pair_gbits=*/{2.0}, options);
  for (core::Experiment& e : experiments) {
    e.name = "golden-topology " + e.name;
  }
  return experiments;
}

TEST(GoldenTest, Fig3SingleVirtualWorkerRows) { CheckAgainstGolden("fig3", Fig3Experiments()); }

TEST(GoldenTest, Fig4PolicyRows) { CheckAgainstGolden("fig4", Fig4Experiments()); }

TEST(GoldenTest, Table4ScalingRows) { CheckAgainstGolden("table4", Table4Experiments()); }

TEST(GoldenTest, GenericClusterRows) {
  CheckAgainstGolden("generic_cluster", GenericClusterExperiments());
}

TEST(GoldenTest, MixedNodeClusterRows) {
  CheckAgainstGolden("mixed_cluster", MixedNodeClusterExperiments());
}

TEST(GoldenTest, TopologySweepRows) {
  CheckAgainstGolden("topology_sweep", TopologyExperiments());
}

}  // namespace
}  // namespace hetpipe
