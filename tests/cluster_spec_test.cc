// Tests for hw::ClusterSpec: the compact text parser and builder API, the
// malformed-spec error cases, equivalence of the spec-built paper testbed
// with hw::Cluster::PaperSubset, and generic (non-Table-1) clusters running
// kFullCluster experiments end-to-end through the sweep runner.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cluster/allocator.h"
#include "core/experiment.h"
#include "hw/cluster_spec.h"
#include "model/resnet.h"
#include "partition/partitioner.h"
#include "runner/result_sink.h"
#include "runner/sweep_runner.h"

namespace hetpipe::hw {
namespace {

// One definition per class name within this binary: the registry treats a
// name as an identity and rejects redefinitions with different numbers.
constexpr const char* kMixedSpecText =
    "name edge-mix\n"
    "gpu BigCard tflops=8.5 mem=32 code=b   # strong, roomy\n"
    "gpu TinyCard tflops=1.4 mem=11\n"
    "node 2xBigCard\n"
    "node 3xTinyCard\n"
    "node 4xV\n"
    "intra_gbps 12\n"
    "inter_gbits 25\n";

TEST(ClusterSpecTest, ParsesTextForm) {
  const ClusterSpec spec = ClusterSpec::Parse(kMixedSpecText);
  EXPECT_EQ(spec.name, "edge-mix");
  ASSERT_EQ(spec.gpu_classes.size(), 2u);
  EXPECT_EQ(spec.gpu_classes[0].name, "BigCard");
  EXPECT_EQ(spec.gpu_classes[0].tflops, 8.5);
  EXPECT_EQ(spec.gpu_classes[0].memory_gib, 32.0);
  EXPECT_EQ(spec.gpu_classes[0].code, 'b');
  EXPECT_EQ(spec.gpu_classes[1].code, '\0');
  ASSERT_EQ(spec.nodes.size(), 3u);
  ASSERT_EQ(spec.nodes[0].groups.size(), 1u);
  EXPECT_EQ(spec.nodes[0].groups[0].type, "BigCard");
  EXPECT_EQ(spec.nodes[0].groups[0].count, 2);
  EXPECT_FALSE(spec.nodes[0].mixed());
  EXPECT_EQ(spec.nodes[2].groups[0].type, "V");
  EXPECT_EQ(spec.nodes[2].groups[0].count, 4);
  EXPECT_EQ(spec.intra_gbps, 12.0);
  EXPECT_EQ(spec.inter_gbits, 25.0);
  // Unmentioned link knobs stay at their defaults.
  EXPECT_EQ(spec.intra_scaling, PcieLink::kDefaultScaling);
  EXPECT_EQ(spec.intra_latency_s, PcieLink::kDefaultLatency);
  EXPECT_EQ(spec.inter_efficiency, InfinibandLink::kDefaultEfficiency);
  EXPECT_EQ(spec.inter_intercept_s, InfinibandLink::kDefaultIntercept);
}

TEST(ClusterSpecTest, RoundTripsThroughToString) {
  const ClusterSpec spec = ClusterSpec::Parse(kMixedSpecText);
  const std::string canonical = spec.ToString();
  EXPECT_TRUE(ClusterSpec::Parse(canonical) == spec) << canonical;
  // Canonical form is one line (";"-separated) so experiments can carry it.
  EXPECT_EQ(canonical.find('\n'), std::string::npos);
}

TEST(ClusterSpecTest, BuilderMatchesParser) {
  ClusterSpec built;
  built.Named("edge-mix")
      .AddGpuClass("BigCard", 8.5, 32.0, 'b')
      .AddGpuClass("TinyCard", 1.4, 11.0)
      .AddNode("BigCard", 2)
      .AddNode("TinyCard", 3)
      .AddNode("V", 4)
      .IntraGbps(12.0)
      .InterGbits(25.0);
  EXPECT_TRUE(built == ClusterSpec::Parse(kMixedSpecText));
}

TEST(ClusterSpecTest, RejectsMalformedSpecs) {
  // Unknown GPU type.
  EXPECT_THROW(ClusterSpec::Parse("node 4xNoSuchCard"), std::invalid_argument);
  // Zero-GPU node.
  EXPECT_THROW(ClusterSpec::Parse("node 0xV"), std::invalid_argument);
  // Negative / non-positive bandwidths.
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; inter_gbits -3"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; intra_gbps 0"), std::invalid_argument);
  // Classes need positive numbers.
  EXPECT_THROW(ClusterSpec::Parse("gpu X2 tflops=-1 mem=4; node 1xX2"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("gpu X3 tflops=2 mem=0; node 1xX3"),
               std::invalid_argument);
  // No nodes at all.
  EXPECT_THROW(ClusterSpec::Parse("gpu X4 tflops=2 mem=4"), std::invalid_argument);
  // Unknown statements and attributes.
  EXPECT_THROW(ClusterSpec::Parse("frobnicate 12"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("gpu X5 speed=3; node 1xX5"), std::invalid_argument);
  // Duplicate class declaration.
  EXPECT_THROW(ClusterSpec::Parse("gpu D tflops=1 mem=2; gpu D tflops=3 mem=4; node 1xD"),
               std::invalid_argument);
  // Malformed node argument.
  EXPECT_THROW(ClusterSpec::Parse("node 4x"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 99999999999999999999xV"), std::invalid_argument);
  // Out-of-range link knobs.
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; intra_scaling 0"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; intra_scaling 1.5"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; intra_latency_s -1e-6"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; inter_efficiency 0"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; inter_intercept_s -0.001"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; inter_intercept_s junk"), std::invalid_argument);
  // NaN would slip past one-sided range checks (and break the ToString round
  // trip, NaN != NaN); infinities would poison every simulated number.
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; intra_scaling nan"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; inter_intercept_s inf"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("node 4xV; inter_gbits inf"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("gpu N1 tflops=nan mem=4; node 1xN1"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse("gpu N2 tflops=2 mem=inf; node 1xN2"),
               std::invalid_argument);
  // Builder-set names and codes that would not survive the text round trip.
  EXPECT_THROW(ClusterSpec().Named("my cluster").AddNode("V", 4).Validate(),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec().Named("a;b").AddNode("V", 4).Validate(), std::invalid_argument);
  EXPECT_THROW(ClusterSpec().AddGpuClass("X9", 1.0, 1.0, ';').AddNode("X9", 2).Validate(),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec().AddGpuClass("X9", 1.0, 1.0, ' ').AddNode("X9", 2).Validate(),
               std::invalid_argument);
}

// One definition per class name (see kMixedSpecText): the mixed-node fixture
// reuses the numbers of BigCard/TinyCard declared there.
constexpr const char* kMixedNodeSpecText =
    "name node-mix\n"
    "gpu BigCard tflops=8.5 mem=32 code=b\n"
    "gpu TinyCard tflops=1.4 mem=11\n"
    "node{BigCard*2,TinyCard*2}   # mixed-class node: 2 big then 2 tiny\n"
    "node 4xV\n"
    "inter_gbits 25\n";

TEST(ClusterSpecTest, ParsesMixedClassNodes) {
  const ClusterSpec spec = ClusterSpec::Parse(kMixedNodeSpecText);
  ASSERT_EQ(spec.nodes.size(), 2u);
  EXPECT_TRUE(spec.nodes[0].mixed());
  ASSERT_EQ(spec.nodes[0].groups.size(), 2u);
  EXPECT_EQ(spec.nodes[0].groups[0].type, "BigCard");
  EXPECT_EQ(spec.nodes[0].groups[0].count, 2);
  EXPECT_EQ(spec.nodes[0].groups[1].type, "TinyCard");
  EXPECT_EQ(spec.nodes[0].groups[1].count, 2);
  EXPECT_EQ(spec.nodes[0].TotalCount(), 4);
  EXPECT_FALSE(spec.nodes[1].mixed());

  // The whitespace-tolerant spelling and implicit *1 counts parse too.
  const ClusterSpec spaced = ClusterSpec::Parse(
      "gpu BigCard tflops=8.5 mem=32 code=b; gpu TinyCard tflops=1.4 mem=11;"
      "node { BigCard*2, TinyCard }");
  ASSERT_EQ(spaced.nodes.size(), 1u);
  ASSERT_EQ(spaced.nodes[0].groups.size(), 2u);
  EXPECT_EQ(spaced.nodes[0].groups[1].type, "TinyCard");
  EXPECT_EQ(spaced.nodes[0].groups[1].count, 1);
}

TEST(ClusterSpecTest, MixedNodeRoundTripsAndMatchesBuilder) {
  const ClusterSpec spec = ClusterSpec::Parse(kMixedNodeSpecText);
  const std::string canonical = spec.ToString();
  EXPECT_NE(canonical.find("node{BigCard*2,TinyCard*2}"), std::string::npos) << canonical;
  EXPECT_TRUE(ClusterSpec::Parse(canonical) == spec) << canonical;

  ClusterSpec built;
  built.Named("node-mix")
      .AddGpuClass("BigCard", 8.5, 32.0, 'b')
      .AddGpuClass("TinyCard", 1.4, 11.0)
      .AddMixedNode({{"BigCard", 2}, {"TinyCard", 2}})
      .AddNode("V", 4)
      .InterGbits(25.0);
  EXPECT_TRUE(built == spec);
}

TEST(ClusterSpecTest, RejectsMalformedMixedNodes) {
  constexpr const char* kClasses = "gpu MBig tflops=8 mem=32; gpu MTiny tflops=1 mem=11; ";
  // Empty list / empty group / missing type / bad counts.
  EXPECT_THROW(ClusterSpec::Parse(std::string(kClasses) + "node{}"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kClasses) + "node{MBig,,MTiny}"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kClasses) + "node{*2}"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kClasses) + "node{MBig*0}"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kClasses) + "node{MBig*junk}"),
               std::invalid_argument);
  EXPECT_THROW(
      ClusterSpec::Parse(std::string(kClasses) + "node{MBig*99999999999999999999}"),
      std::invalid_argument);
  // Unterminated brace and unknown member class.
  EXPECT_THROW(ClusterSpec::Parse(std::string(kClasses) + "node{MBig*2"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kClasses) + "node{NoSuchCard*2}"),
               std::invalid_argument);
}

TEST(ClusterSpecTest, MixedClassNodeBuildsAndPartitionsPerClassMemory) {
  const Cluster cluster = ClusterSpec::Parse(kMixedNodeSpecText).Build();
  EXPECT_EQ(cluster.num_nodes(), 2);
  EXPECT_EQ(cluster.num_gpus(), 8);
  EXPECT_FALSE(cluster.NodeHomogeneous(0));
  EXPECT_TRUE(cluster.NodeHomogeneous(1));
  const GpuSpec* big = FindGpuTypeByName("BigCard");
  const GpuSpec* tiny = FindGpuTypeByName("TinyCard");
  ASSERT_NE(big, nullptr);
  ASSERT_NE(tiny, nullptr);
  // Declaration order is GPU-id order inside the node.
  EXPECT_EQ(cluster.gpu(0).type, big->type);
  EXPECT_EQ(cluster.gpu(1).type, big->type);
  EXPECT_EQ(cluster.gpu(2).type, tiny->type);
  EXPECT_EQ(cluster.gpu(3).type, tiny->type);
  EXPECT_EQ(cluster.NodeType(0), big->type);  // first GPU's class
  // The composition is spelled out (cache keys depend on it).
  EXPECT_NE(cluster.ToString().find("BigCard x2 + TinyCard x2"), std::string::npos)
      << cluster.ToString();

  // A VW spanning the mixed node partitions with per-class memory caps.
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 2;
  const std::vector<int> vw = core::PickGpus(cluster, "BigCard*2@0,TinyCard*2@0");
  ASSERT_EQ(vw.size(), 4u);
  const partition::Partition partition = partitioner.Solve(vw, options);
  ASSERT_TRUE(partition.feasible);
  for (const partition::StageAssignment& stage : partition.stages) {
    EXPECT_EQ(stage.node, 0);
    EXPECT_EQ(stage.memory_cap, MemoryBytes(stage.gpu_type));
    EXPECT_LE(stage.memory_bytes, stage.memory_cap);
  }

  // HD pairing is undefined across mixed-class nodes and must refuse them.
  const Cluster hd_shaped =
      ClusterSpec::Parse(
          "gpu MBig tflops=8 mem=32; gpu MTiny tflops=1 mem=11;"
          "node{MBig*2,MTiny*2}; node 4xV; node 4xR; node 4xQ")
          .Build();
  EXPECT_THROW(cluster::Allocate(hd_shaped, cluster::AllocationPolicy::kHybridDistribution),
               std::invalid_argument);
  // ED hands out mixed-node GPUs in declaration order.
  const cluster::Allocation ed =
      cluster::Allocate(cluster, cluster::AllocationPolicy::kEqualDistribution);
  ASSERT_EQ(ed.vw_gpus.size(), 4u);
  EXPECT_EQ(cluster.gpu(ed.vw_gpus[0][0]).type, big->type);
  EXPECT_EQ(cluster.gpu(ed.vw_gpus[2][0]).type, tiny->type);
}

TEST(ClusterSpecTest, LinkKnobsRoundTripAndReachTheLinkModels) {
  const ClusterSpec spec = ClusterSpec::Parse(
      "node 4xV; node 4xQ;"
      "intra_gbps 12; intra_scaling 0.5; intra_latency_s 2e-05;"
      "inter_gbits 25; inter_efficiency 0.2; inter_intercept_s 0.0005");
  EXPECT_EQ(spec.intra_scaling, 0.5);
  EXPECT_EQ(spec.intra_latency_s, 2e-5);
  EXPECT_EQ(spec.inter_efficiency, 0.2);
  EXPECT_EQ(spec.inter_intercept_s, 5e-4);
  EXPECT_TRUE(ClusterSpec::Parse(spec.ToString()) == spec) << spec.ToString();

  const Cluster cluster = spec.Build();
  EXPECT_EQ(cluster.pcie().latency_s(), 2e-5);
  EXPECT_EQ(cluster.pcie().EffectiveBandwidth(), 12.0 * 1e9 * 0.5);
  EXPECT_EQ(cluster.infiniband().intercept_s(), 5e-4);
  EXPECT_EQ(cluster.infiniband().EffectiveBandwidth(), 25.0 / 8.0 * 1e9 * 0.2);
  // TransferTime reflects the knobs: intercept + bytes / effective bw.
  EXPECT_DOUBLE_EQ(cluster.infiniband().TransferTime(1ULL << 20),
                   5e-4 + static_cast<double>(1ULL << 20) / (25.0 / 8.0 * 1e9 * 0.2));

  // Defaulted knobs are not emitted, so paper-shaped specs stay identical.
  EXPECT_EQ(ClusterSpec::PaperTestbed().ToString(),
            "name paper-testbed; node 4xV; node 4xR; node 4xG; node 4xQ");
}

TEST(ClusterSpecTest, ReRegisteringBuiltinClassesIsIdempotent) {
  // Table 1 names contain spaces, but re-registering them with their own
  // numbers must return the existing handle (the documented idempotent case).
  EXPECT_EQ(RegisterGpuType("TITAN V", 6.60, 12.0), GpuType::kTitanV);
  EXPECT_EQ(RegisterGpuType("Quadro P4000", 2.95, 8.0), GpuType::kQuadroP4000);
  EXPECT_THROW(RegisterGpuType("TITAN V", 7.0, 12.0), std::invalid_argument);
}

TEST(ClusterSpecTest, ClassNamesShadowCodeStringsInPickGpus) {
  // A registered class whose name spells known code letters ("VQ") must be
  // selectable by name; the code-string interpretation yields to names.
  const Cluster cluster =
      ClusterSpec::Parse("gpu VQ tflops=3 mem=12; node 1xVQ; node 4xV; node 4xQ").Build();
  const GpuSpec* vq = FindGpuTypeByName("VQ");
  ASSERT_NE(vq, nullptr);
  const std::vector<int> picked = core::PickGpus(cluster, "VQ");
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(cluster.gpu(picked[0]).type, vq->type);
}

TEST(ClusterSpecTest, UseClusterRejectsUnrepresentableHandBuiltClusters) {
  // A hand-built general cluster without spec text cannot be carried as
  // paper node codes (PaperSubset would rebuild 4 GPUs/node, default links).
  const Cluster odd(
      {NodeGpus{GpuType::kTitanV, 2}, NodeGpus{GpuType::kQuadroP4000, 8}},
      PcieLink(8.0), InfinibandLink(10.0));
  core::Experiment e;
  EXPECT_THROW(e.UseCluster(odd), std::invalid_argument);
  // Paper node shape with non-default links is just as unrepresentable.
  const Cluster custom_links({NodeGpus{GpuType::kTitanV, 4}, NodeGpus{GpuType::kQuadroP4000, 4}},
                             PcieLink(8.0), InfinibandLink(10.0));
  EXPECT_THROW(e.UseCluster(custom_links), std::invalid_argument);
  // Paper-shaped clusters still carry fine.
  e.UseCluster(Cluster::PaperSubset("VQ"));
  EXPECT_EQ(e.cluster_nodes, "VQ");
}

TEST(ClusterSpecTest, PaperTestbedEquivalentToPaperSubset) {
  const Cluster direct = Cluster::Paper();
  const Cluster from_spec = ClusterSpec::PaperTestbed().Build();

  ASSERT_EQ(from_spec.num_nodes(), direct.num_nodes());
  ASSERT_EQ(from_spec.num_gpus(), direct.num_gpus());
  EXPECT_TRUE(from_spec.UniformGpusPerNode());
  for (int id = 0; id < direct.num_gpus(); ++id) {
    EXPECT_EQ(from_spec.gpu(id).type, direct.gpu(id).type);
    EXPECT_EQ(from_spec.gpu(id).node, direct.gpu(id).node);
  }
  // Identical link models, hence identical transfer times.
  const uint64_t bytes = 64ULL << 20;
  EXPECT_EQ(from_spec.pcie().TransferTime(bytes), direct.pcie().TransferTime(bytes));
  EXPECT_EQ(from_spec.infiniband().TransferTime(bytes), direct.infiniband().TransferTime(bytes));
  // And identical layout key.
  EXPECT_EQ(from_spec.ToString(), direct.ToString());

  // The partitioner solves both clusters identically.
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  partition::PartitionOptions options;
  options.nm = 2;
  const std::vector<int> vw = {0, 4, 8, 12};
  const partition::Partition a = partition::Partitioner(profile, direct).Solve(vw, options);
  const partition::Partition b = partition::Partitioner(profile, from_spec).Solve(vw, options);
  ASSERT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.bottleneck_time, b.bottleneck_time);
  ASSERT_EQ(a.num_stages(), b.num_stages());
  for (int q = 0; q < a.num_stages(); ++q) {
    EXPECT_EQ(a.stages[static_cast<size_t>(q)].last_layer,
              b.stages[static_cast<size_t>(q)].last_layer);
    EXPECT_EQ(a.stages[static_cast<size_t>(q)].gpu_id, b.stages[static_cast<size_t>(q)].gpu_id);
  }
}

TEST(ClusterSpecTest, BuildsHeterogeneousClusterWithRegisteredClasses) {
  const Cluster cluster = ClusterSpec::Parse(kMixedSpecText).Build();
  EXPECT_EQ(cluster.num_nodes(), 3);
  EXPECT_EQ(cluster.num_gpus(), 2 + 3 + 4);
  EXPECT_FALSE(cluster.UniformGpusPerNode());
  EXPECT_EQ(cluster.gpus_per_node(), 4);
  EXPECT_EQ(cluster.NodeGpuCount(0), 2);
  EXPECT_EQ(cluster.NodeGpuCount(1), 3);
  EXPECT_EQ(cluster.name(), "edge-mix");
  EXPECT_FALSE(cluster.spec_text().empty());

  const GpuSpec* big = FindGpuTypeByName("BigCard");
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(big->effective_tflops, 8.5);
  EXPECT_EQ(MemoryBytes(big->type), 32ULL << 30);
  EXPECT_EQ(cluster.NodeType(0), big->type);
  // Registered classes rank by declared TFLOPS among the paper classes:
  // BigCard (8.5) above V (6.6); TinyCard (1.4) below Q (2.95).
  EXPECT_LT(cluster::ComputeRank(big->type), cluster::ComputeRank(GpuType::kTitanV));
  const GpuSpec* tiny = FindGpuTypeByName("TinyCard");
  ASSERT_NE(tiny, nullptr);
  EXPECT_GT(cluster::ComputeRank(tiny->type), cluster::ComputeRank(GpuType::kQuadroP4000));
  // Spec links: 12 GB/s PCIe class, 25 Gbit/s network.
  EXPECT_LT(cluster.pcie().EffectiveBandwidth(), PcieLink().EffectiveBandwidth());
  EXPECT_LT(cluster.infiniband().EffectiveBandwidth(), InfinibandLink().EffectiveBandwidth());

  // Registration is idempotent: building the same spec again reuses handles.
  const Cluster again = ClusterSpec::Parse(kMixedSpecText).Build();
  EXPECT_EQ(again.NodeType(0), cluster.NodeType(0));
  // ...but redefining a known name with different numbers is rejected.
  EXPECT_THROW(ClusterSpec::Parse("gpu BigCard tflops=9 mem=32; node 1xBigCard").Build(),
               std::invalid_argument);
}

TEST(ClusterSpecTest, PickGpusSelectorsOnGenericCluster) {
  const Cluster cluster = ClusterSpec::Parse(kMixedSpecText).Build();
  const std::vector<int> by_name = core::PickGpus(cluster, "BigCard*2,TinyCard");
  ASSERT_EQ(by_name.size(), 3u);
  EXPECT_EQ(cluster.gpu(by_name[0]).type, FindGpuTypeByName("BigCard")->type);
  EXPECT_EQ(cluster.gpu(by_name[2]).type, FindGpuTypeByName("TinyCard")->type);

  const std::vector<int> pinned = core::PickGpus(cluster, "V*2@2");
  ASSERT_EQ(pinned.size(), 2u);
  EXPECT_EQ(cluster.gpu(pinned[0]).node, 2);

  // Code strings still work, on any cluster that has the classes.
  EXPECT_EQ(core::PickGpus(cluster, "VV").size(), 2u);

  EXPECT_THROW(core::PickGpus(cluster, "BigCard*3"), std::invalid_argument);
  EXPECT_THROW(core::PickGpus(cluster, "NoSuchCard"), std::invalid_argument);
  EXPECT_THROW(core::PickGpus(cluster, "TinyCard*2@0"), std::invalid_argument);
  // Malformed numeric suffixes must fail loudly, not silently truncate.
  EXPECT_THROW(core::PickGpus(cluster, "BigCard@0*2"), std::invalid_argument);
  EXPECT_THROW(core::PickGpus(cluster, "BigCard*2junk"), std::invalid_argument);
  EXPECT_THROW(core::PickGpus(cluster, "BigCard*"), std::invalid_argument);
  EXPECT_THROW(core::PickGpus(cluster, "BigCard*99999999999999999999"),
               std::invalid_argument);
}

// The ISSUE's acceptance scenario: a non-paper cluster spec runs kFullCluster
// end-to-end through SweepRunner and emits valid JSON rows.
TEST(ClusterSpecTest, GenericClusterRunsFullClusterExperimentEndToEnd) {
  core::Experiment e;
  e.kind = core::ExperimentKind::kFullCluster;
  e.model = core::ModelKind::kResNet152;
  e.cluster_spec = ClusterSpec::Parse(kMixedSpecText).ToString();
  e.cluster_label = "edge-mix";
  e.config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  e.config.placement = wsp::PlacementPolicy::kLocal;
  e.config.sync = wsp::SyncPolicy::Wsp(0);
  e.config.waves = 10;
  e.config.warmup_waves = 2;

  std::ostringstream out;
  runner::JsonlSink sink(out);
  runner::SweepOptions options;
  options.threads = 2;
  options.sink = &sink;
  runner::SweepRunner sweep(options);
  const auto results = sweep.Run({e});

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].feasible) << results[0].report.infeasible_reason;
  EXPECT_GT(results[0].throughput_img_s, 0.0);
  // ED on a 2/3/4-GPU cluster: 4 virtual workers, the smaller nodes thinning
  // out of the later ones.
  EXPECT_EQ(results[0].report.vws.size(), 4u);
  const std::string row = out.str();
  EXPECT_NE(row.find("\"cluster\":\"edge-mix\""), std::string::npos) << row;
  EXPECT_NE(row.find("\"feasible\":true"), std::string::npos) << row;

  // Determinism across thread counts holds for generic clusters too.
  runner::SweepRunner serial(runner::SweepOptions{});
  const auto serial_results = serial.Run({e});
  ASSERT_EQ(serial_results.size(), 1u);
  EXPECT_EQ(serial_results[0].throughput_img_s, results[0].throughput_img_s);
}

// ---- Rack topology and per-node-pair link overrides ----

constexpr const char* kRackSpecText =
    "name rack-mix\n"
    "gpu RackCard tflops=8.5 mem=32\n"
    "node 2xRackCard\n"
    "node 2xRackCard\n"
    "node 2xRackCard\n"
    "rack r0 { node0 node1 }\n"
    "rack r1 { node2 }\n"
    "cross_rack_gbits 10\n"
    "link node0<->node2 gbits 5 efficiency 0.1 intercept_s 0.001\n";

TEST(ClusterSpecTest, ParsesRacksAndLinkOverrides) {
  const ClusterSpec spec = ClusterSpec::Parse(kRackSpecText);
  ASSERT_EQ(spec.racks.size(), 2u);
  EXPECT_EQ(spec.racks[0].name, "r0");
  EXPECT_EQ(spec.racks[0].nodes, (std::vector<int>{0, 1}));
  EXPECT_EQ(spec.racks[1].nodes, (std::vector<int>{2}));
  ASSERT_TRUE(spec.cross_rack_gbits.has_value());
  EXPECT_EQ(*spec.cross_rack_gbits, 10.0);
  EXPECT_FALSE(spec.cross_rack_efficiency.has_value());
  EXPECT_FALSE(spec.cross_rack_intercept_s.has_value());
  ASSERT_EQ(spec.link_overrides.size(), 1u);
  EXPECT_EQ(spec.link_overrides[0].node_a, 0);
  EXPECT_EQ(spec.link_overrides[0].node_b, 2);
  EXPECT_EQ(spec.link_overrides[0].gbits, std::optional<double>(5.0));
  EXPECT_EQ(spec.link_overrides[0].efficiency, std::optional<double>(0.1));
  EXPECT_EQ(spec.link_overrides[0].intercept_s, std::optional<double>(0.001));

  // The glued-brace spelling and reversed pairs parse too (canonicalized).
  const ClusterSpec glued = ClusterSpec::Parse(
      "node 1xV; node 1xV; rack top {node0 node1}; link node1<->node0 gbits 3");
  ASSERT_EQ(glued.racks.size(), 1u);
  EXPECT_EQ(glued.racks[0].name, "top");
  EXPECT_EQ(glued.racks[0].nodes, (std::vector<int>{0, 1}));
  ASSERT_EQ(glued.link_overrides.size(), 1u);
  EXPECT_EQ(glued.link_overrides[0].node_a, 0);
  EXPECT_EQ(glued.link_overrides[0].node_b, 1);
  EXPECT_FALSE(glued.link_overrides[0].efficiency.has_value());
}

TEST(ClusterSpecTest, RackSpecRoundTripsAndMatchesBuilder) {
  const ClusterSpec spec = ClusterSpec::Parse(kRackSpecText);
  const std::string canonical = spec.ToString();
  EXPECT_NE(canonical.find("rack r0 { node0 node1 }"), std::string::npos) << canonical;
  EXPECT_NE(canonical.find("cross_rack_gbits 10"), std::string::npos) << canonical;
  EXPECT_NE(canonical.find("link node0<->node2 gbits 5 efficiency 0.1 intercept_s 0.001"),
            std::string::npos)
      << canonical;
  EXPECT_TRUE(ClusterSpec::Parse(canonical) == spec) << canonical;

  ClusterSpec built;
  built.Named("rack-mix")
      .AddGpuClass("RackCard", 8.5, 32.0)
      .AddNode("RackCard", 2)
      .AddNode("RackCard", 2)
      .AddNode("RackCard", 2)
      .AddRack("r0", {0, 1})
      .AddRack("r1", {2})
      .CrossRackGbits(10.0)
      .OverrideLink(0, 2, 5.0, 0.1, 0.001);
  EXPECT_TRUE(built == spec);
}

TEST(ClusterSpecTest, RejectsMalformedRacksAndOverrides) {
  constexpr const char* kNodes = "node 1xV; node 1xV; node 1xV; ";
  // Rack grammar and membership errors.
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "rack r0"), std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "rack r0 { }"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "rack { node0 }"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "rack r0 { junk }"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "rack r0 { node9 }"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "rack r0 { node-1 }"),
               std::invalid_argument);
  EXPECT_THROW(
      ClusterSpec::Parse(std::string(kNodes) + "rack r0 { node0 }; rack r1 { node0 }"),
      std::invalid_argument);
  EXPECT_THROW(
      ClusterSpec::Parse(std::string(kNodes) + "rack r0 { node0 }; rack r0 { node1 }"),
      std::invalid_argument);
  // Cross-rack knobs need racks and sane values.
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "cross_rack_gbits 10"),
               std::invalid_argument);
  EXPECT_THROW(
      ClusterSpec::Parse(std::string(kNodes) + "rack r0 { node0 }; cross_rack_gbits 0"),
      std::invalid_argument);
  EXPECT_THROW(
      ClusterSpec::Parse(std::string(kNodes) + "rack r0 { node0 }; cross_rack_efficiency 1.5"),
      std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) +
                                  "rack r0 { node0 }; cross_rack_intercept_s -1e-3"),
               std::invalid_argument);
  EXPECT_THROW(
      ClusterSpec::Parse(std::string(kNodes) + "rack r0 { node0 }; cross_rack_gbits nan"),
      std::invalid_argument);
  // Link override errors: grammar, ranges, duplicates, empty, self pairs.
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "link node0<->node1"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "link node0-node1 gbits 5"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "link node0<->node0 gbits 5"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "link node0<->node9 gbits 5"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "link node0<->node1 gbits 0"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "link node0<->node1 efficiency 2"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "link node0<->node1 watts 5"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) + "link node0<->node1 gbits 5 gbits 6"),
               std::invalid_argument);
  EXPECT_THROW(ClusterSpec::Parse(std::string(kNodes) +
                                  "link node0<->node1 gbits 5; link node1<->node0 gbits 6"),
               std::invalid_argument);
}

TEST(ClusterSpecTest, ResolvesPairLinksSameRackCrossRackAndOverride) {
  const ClusterSpec spec = ClusterSpec::Parse(kRackSpecText);
  const Cluster cluster = spec.Build();
  EXPECT_FALSE(cluster.UniformFabric());
  EXPECT_EQ(cluster.NodeRack(0), 0);
  EXPECT_EQ(cluster.NodeRack(1), 0);
  EXPECT_EQ(cluster.NodeRack(2), 1);
  EXPECT_TRUE(cluster.SameRack(0, 1));
  EXPECT_FALSE(cluster.SameRack(1, 2));

  const uint64_t bytes = 8ULL << 20;
  // Same rack: the plain inter link (56G IB defaults here).
  EXPECT_EQ(cluster.LinkBetweenNodes(0, 1).TransferTime(bytes),
            cluster.infiniband().TransferTime(bytes));
  // Cross-rack: inter with gbits swapped to 10 (efficiency/intercept
  // inherited).
  const InfinibandLink cross(10.0, InfinibandLink::kDefaultEfficiency,
                             InfinibandLink::kDefaultIntercept);
  EXPECT_EQ(cluster.LinkBetweenNodes(1, 2).TransferTime(bytes), cross.TransferTime(bytes));
  EXPECT_EQ(cluster.LinkBetweenNodes(2, 1).TransferTime(bytes), cross.TransferTime(bytes));
  // Explicit override beats the cross-rack link on its pair.
  const InfinibandLink overridden(5.0, 0.1, 0.001);
  EXPECT_EQ(cluster.LinkBetweenNodes(0, 2).TransferTime(bytes),
            overridden.TransferTime(bytes));
  // The spec-level resolver agrees with the built cluster.
  EXPECT_EQ(spec.InterLinkBetween(0, 2).TransferTime(bytes), overridden.TransferTime(bytes));
  EXPECT_EQ(spec.InterLinkBetween(1, 2).TransferTime(bytes), cross.TransferTime(bytes));
  // GPU-level routing picks the pair link: GPUs 0 (node0) and 5 (node2).
  EXPECT_EQ(cluster.LinkBetween(0, 5).TransferTime(bytes), overridden.TransferTime(bytes));
  EXPECT_EQ(cluster.LinkToNode(0, 2).TransferTime(bytes), overridden.TransferTime(bytes));
  // Same node stays PCIe.
  EXPECT_EQ(cluster.LinkBetween(0, 1).TransferTime(bytes),
            cluster.pcie().TransferTime(bytes));
  // The conservative funnel bound is the node's worst resolved pair link:
  // from node1 that is the cross-rack 10 Gbit/s link to node2 (the node0
  // link is the plain inter link, which is faster).
  EXPECT_EQ(cluster.WorstInterTransferTimeFrom(1, bytes), cross.TransferTime(bytes));
  EXPECT_EQ(cluster.WorstInterTransferTimeFrom(0, bytes), overridden.TransferTime(bytes));
  // On a uniform fabric the bound is exactly the shared inter link.
  const Cluster uniform = ClusterSpec::Parse("node 2xV; node 2xV").Build();
  EXPECT_EQ(uniform.WorstInterTransferTimeFrom(0, bytes),
            uniform.infiniband().TransferTime(bytes));
}

TEST(ClusterSpecTest, RacksAloneKeepTheFabricUniform) {
  // Racks without any cross-rack knob (or with knobs equal to the inter
  // values) change no link, so the cluster stays a uniform fabric and every
  // transfer time is bit-identical to the rack-free build.
  const char* kBase = "node 2xV; node 2xV; node 2xV; inter_gbits 25";
  const Cluster plain = ClusterSpec::Parse(kBase).Build();
  const Cluster racked =
      ClusterSpec::Parse(std::string(kBase) + "; rack r0 { node0 node1 }; rack r1 { node2 }")
          .Build();
  const Cluster racked_same_knob =
      ClusterSpec::Parse(std::string(kBase) +
                         "; rack r0 { node0 node1 }; rack r1 { node2 }; cross_rack_gbits 25")
          .Build();
  EXPECT_TRUE(plain.UniformFabric());
  EXPECT_TRUE(racked.UniformFabric());
  EXPECT_TRUE(racked_same_knob.UniformFabric());
  // Rack metadata is still there for the traffic accounting.
  EXPECT_EQ(racked.NodeRack(2), 1);
  EXPECT_EQ(plain.NodeRack(2), -1);
  const uint64_t bytes = 16ULL << 20;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_EQ(racked.LinkBetweenNodes(a, b).TransferTime(bytes),
                plain.LinkBetweenNodes(a, b).TransferTime(bytes));
    }
  }

  // And the partitioner returns a bit-identical partition.
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  partition::PartitionOptions options;
  options.nm = 2;
  const std::vector<int> vw = {0, 2, 4};
  const partition::Partition a = partition::Partitioner(profile, plain).Solve(vw, options);
  const partition::Partition b = partition::Partitioner(profile, racked).Solve(vw, options);
  ASSERT_TRUE(a.feasible);
  ASSERT_EQ(a.num_stages(), b.num_stages());
  EXPECT_EQ(a.bottleneck_time, b.bottleneck_time);
  EXPECT_EQ(a.sum_time, b.sum_time);
  for (int q = 0; q < a.num_stages(); ++q) {
    EXPECT_EQ(a.stages[static_cast<size_t>(q)].gpu_id, b.stages[static_cast<size_t>(q)].gpu_id);
    EXPECT_EQ(a.stages[static_cast<size_t>(q)].last_layer,
              b.stages[static_cast<size_t>(q)].last_layer);
  }
}

TEST(ClusterSpecTest, PartitionerRespondsToADegradedNodePair) {
  // The ISSUE's acceptance scenario: degrade one node pair's link and the
  // partitioner's chosen partition must respond. Three single-V nodes, a VW
  // with one GPU per node; with a uniform fabric the order search keeps the
  // first (id-ordered) representative, with node0<->node1 degraded it must
  // route around the bad cable by never placing stages on nodes 0 and 1
  // adjacently — at no bottleneck cost, since the detour links are intact.
  const char* kBase = "node 1xV; node 1xV; node 1xV";
  const Cluster uniform = ClusterSpec::Parse(kBase).Build();
  const Cluster degraded =
      ClusterSpec::Parse(std::string(kBase) + "; link node0<->node1 gbits 0.5").Build();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  partition::PartitionOptions options;
  options.nm = 1;

  const partition::Partition base =
      partition::Partitioner(profile, uniform).Solve({0, 1, 2}, options);
  ASSERT_TRUE(base.feasible);
  ASSERT_EQ(base.num_stages(), 3);
  EXPECT_EQ(base.stages[0].node, 0);
  EXPECT_EQ(base.stages[1].node, 1);
  EXPECT_EQ(base.stages[2].node, 2);

  const partition::Partitioner degraded_partitioner(profile, degraded);
  const partition::Partition routed = degraded_partitioner.Solve({0, 1, 2}, options);
  ASSERT_TRUE(routed.feasible);
  ASSERT_EQ(routed.num_stages(), 3);
  for (int q = 1; q < routed.num_stages(); ++q) {
    const int prev = routed.stages[static_cast<size_t>(q) - 1].node;
    const int cur = routed.stages[static_cast<size_t>(q)].node;
    EXPECT_FALSE((prev == 0 && cur == 1) || (prev == 1 && cur == 0))
        << "stage boundary " << q << " crosses the degraded pair";
  }
  EXPECT_EQ(routed.bottleneck_time, base.bottleneck_time);

  // With the order search off the degraded pair cannot be avoided, so the
  // link slowdown must surface in the objective — proof the per-pair link
  // reaches the DP's hoisted transfer times.
  partition::PartitionOptions fixed = options;
  fixed.search_gpu_orders = false;
  const partition::Partition stuck = degraded_partitioner.Solve({0, 1, 2}, fixed);
  const partition::Partition stuck_base =
      partition::Partitioner(profile, uniform).Solve({0, 1, 2}, fixed);
  ASSERT_TRUE(stuck.feasible);
  EXPECT_GT(stuck.bottleneck_time, stuck_base.bottleneck_time);

  // Solve and SolveReference agree on non-uniform fabrics too.
  const partition::Partition reference = degraded_partitioner.SolveReference({0, 1, 2}, options);
  ASSERT_TRUE(reference.feasible);
  EXPECT_EQ(reference.bottleneck_time, routed.bottleneck_time);
  EXPECT_EQ(reference.sum_time, routed.sum_time);
  for (int q = 0; q < routed.num_stages(); ++q) {
    EXPECT_EQ(reference.stages[static_cast<size_t>(q)].gpu_id,
              routed.stages[static_cast<size_t>(q)].gpu_id);
    EXPECT_EQ(reference.stages[static_cast<size_t>(q)].last_layer,
              routed.stages[static_cast<size_t>(q)].last_layer);
  }
}

TEST(ClusterSpecTest, UseClusterRejectsNonUniformFabricWithoutSpecText) {
  // A spec-built cluster carries its topology in spec_text; strip the text
  // and the node-code fallback must refuse the cluster rather than silently
  // rebuild it with a uniform fabric.
  Cluster cluster =
      ClusterSpec::Parse("node 4xV; node 4xR; link node0<->node1 gbits 2").Build();
  cluster.set_spec_text("");
  core::Experiment e;
  EXPECT_THROW(e.UseCluster(cluster), std::invalid_argument);
  // Racks with uniform links change no transfer time, but the traffic
  // accounting reads them — they are just as unrepresentable as node codes.
  Cluster rack_only =
      ClusterSpec::Parse("node 4xV; node 4xR; rack r0 { node0 }; rack r1 { node1 }").Build();
  rack_only.set_spec_text("");
  EXPECT_THROW(e.UseCluster(rack_only), std::invalid_argument);
}

TEST(ClusterSpecTest, GenericGraphExperimentCarriesModelName) {
  // A generic (no-ModelKind) graph must flow through the experiment pipeline
  // and the result sink without ModelKindOf throwing.
  std::vector<model::Layer> layers;
  for (int i = 0; i < 12; ++i) {
    model::Layer layer;
    layer.name = "blk" + std::to_string(i);
    layer.fwd_flops = 2.0e9;
    layer.param_bytes = 4ULL << 20;
    layer.out_bytes = 2ULL << 20;
    layer.stash_bytes = 2ULL << 20;
    layers.push_back(layer);
  }
  const model::ModelGraph graph("toynet12", model::ModelFamily::kGeneric, layers);
  EXPECT_THROW(core::ModelKindOf(graph), std::invalid_argument);

  core::Experiment e;
  e.kind = core::ExperimentKind::kSingleVirtualWorker;
  e.UseGraph(graph);
  // Not "VQ": this binary registers a class named VQ, and names shadow code
  // strings by design.
  e.vw_codes = "VR";
  e.config.nm = 2;
  e.config.waves = 8;
  e.config.warmup_waves = 2;
  EXPECT_EQ(e.ModelLabel(), "toynet12");

  runner::SweepRunner sweep(runner::SweepOptions{});
  std::ostringstream out;
  runner::JsonlSink sink(out);
  const auto results = sweep.Run({e});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].feasible);
  sink.Write(runner::RowFor(e, results[0]));
  EXPECT_NE(out.str().find("\"model\":\"toynet12\""), std::string::npos) << out.str();
}

}  // namespace
}  // namespace hetpipe::hw
