// Parameterized sweep over the whole HetPipe configuration space
// (model x allocation x placement x D): every combination must produce a
// feasible run satisfying the report invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "core/hetpipe.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "wsp/sync_policy.h"

namespace hetpipe::core {
namespace {

using SweepParam = std::tuple<bool /*vgg*/, cluster::AllocationPolicy, wsp::PlacementPolicy,
                              int /*d*/>;

class ConfigSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConfigSweepTest, RunsAndSatisfiesInvariants) {
  const auto [vgg, allocation, placement, d] = GetParam();
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();

  HetPipeConfig config;
  config.allocation = allocation;
  config.placement = placement;
  config.sync = wsp::SyncPolicy::Wsp(d);
  config.jitter_cv = 0.05;
  config.waves = 12;
  config.warmup_waves = 2;

  const HetPipeReport report = HetPipe(cluster, graph, config).Run();
  ASSERT_TRUE(report.feasible) << report.infeasible_reason;
  EXPECT_GT(report.throughput_img_s, 0.0);
  EXPECT_GE(report.nm, 1);
  EXPECT_LE(report.nm, config.nm_cap);
  EXPECT_EQ(report.s_local, report.nm - 1);
  EXPECT_EQ(report.s_global, wsp::GlobalStaleness(report.nm, d));
  EXPECT_EQ(report.vws.size(), 4u);
  for (const VwReport& vw : report.vws) {
    EXPECT_TRUE(vw.partition.feasible);
    EXPECT_GT(vw.throughput_img_s, 0.0);
    EXPECT_GE(vw.max_stage_utilization, 0.0);
    EXPECT_LE(vw.max_stage_utilization, 1.0);
    EXPECT_GE(vw.max_nm, report.nm);
    // Every stage honors its memory cap.
    for (const auto& stage : vw.partition.stages) {
      EXPECT_LE(stage.memory_bytes, stage.memory_cap);
    }
  }
  EXPECT_GE(report.total_wait_s, 0.0);
  EXPECT_GE(report.avg_clock_distance, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConfigSweepTest,
    ::testing::Combine(
        ::testing::Values(false, true),
        ::testing::Values(cluster::AllocationPolicy::kNodePartition,
                          cluster::AllocationPolicy::kEqualDistribution,
                          cluster::AllocationPolicy::kHybridDistribution),
        ::testing::Values(wsp::PlacementPolicy::kRoundRobin, wsp::PlacementPolicy::kLocal),
        ::testing::Values(0, 4)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string name = std::get<0>(info.param) ? "Vgg" : "ResNet";
      name += cluster::PolicyName(std::get<1>(info.param));
      name += std::get<2>(info.param) == wsp::PlacementPolicy::kLocal ? "Local" : "RR";
      name += "D" + std::to_string(std::get<3>(info.param));
      return name;
    });

}  // namespace
}  // namespace hetpipe::core
