#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <random>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "partition/partitioner.h"
#include "runner/partition_cache.h"
#include "runner/result_sink.h"
#include "serve/client.h"
#include "serve/plan_service.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace hetpipe::serve {
namespace {

// ---- Framing ----

struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

TEST(FramingTest, RoundTripsPayloads) {
  SocketPair pair;
  std::string error;
  for (const std::string& payload : {std::string("{}"), std::string("{\"k\":\"v\"}"),
                                    std::string(100000, 'x'), std::string()}) {
    ASSERT_TRUE(WriteFrame(pair.fds[0], payload, kDefaultMaxFrameBytes, &error)) << error;
    std::string read_back;
    ASSERT_EQ(ReadFrame(pair.fds[1], kDefaultMaxFrameBytes, &read_back, &error),
              FrameResult::kFrame)
        << error;
    EXPECT_EQ(read_back, payload);
  }
}

TEST(FramingTest, EofAtBoundaryVsMidFrame) {
  {
    SocketPair pair;
    ::close(pair.fds[0]);
    pair.fds[0] = -1;
    std::string payload, error;
    EXPECT_EQ(ReadFrame(pair.fds[1], kDefaultMaxFrameBytes, &payload, &error),
              FrameResult::kEof);
  }
  {
    SocketPair pair;
    // A length prefix promising 100 bytes, then EOF: a truncated frame.
    const uint32_t len = 100;
    char prefix[4];
    std::memcpy(prefix, &len, 4);
    ASSERT_EQ(::send(pair.fds[0], prefix, 4, 0), 4);
    ::close(pair.fds[0]);
    pair.fds[0] = -1;
    std::string payload, error;
    EXPECT_EQ(ReadFrame(pair.fds[1], kDefaultMaxFrameBytes, &payload, &error),
              FrameResult::kError);
    EXPECT_FALSE(error.empty());
  }
}

TEST(FramingTest, RefusesOversizedFrames) {
  SocketPair pair;
  std::string error;
  EXPECT_FALSE(WriteFrame(pair.fds[0], std::string(200, 'x'), 64, &error));
  EXPECT_FALSE(error.empty());

  // An oversized length prefix is refused before any payload is read.
  const uint32_t len = 1u << 30;
  char prefix[4];
  std::memcpy(prefix, &len, 4);
  ASSERT_EQ(::send(pair.fds[0], prefix, 4, 0), 4);
  std::string payload;
  error.clear();
  EXPECT_EQ(ReadFrame(pair.fds[1], kDefaultMaxFrameBytes, &payload, &error),
            FrameResult::kError);
  EXPECT_FALSE(error.empty());
}

// ---- JSON reader ----

TEST(JsonReaderTest, DecodesFlatObjects) {
  std::map<std::string, JsonValue> object;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(
      R"({"s":"a\nbA","n":-1.5e2,"t":true,"f":false,"z":null,"raw":{"x":[1,2]}})",
      &object, &error))
      << error;
  EXPECT_EQ(object.at("s").type, JsonValue::Type::kString);
  EXPECT_EQ(object.at("s").str, "a\nbA");
  EXPECT_EQ(object.at("n").type, JsonValue::Type::kNumber);
  EXPECT_EQ(object.at("n").num, -150.0);
  EXPECT_TRUE(object.at("t").boolean);
  EXPECT_FALSE(object.at("f").boolean);
  EXPECT_EQ(object.at("z").type, JsonValue::Type::kNull);
  EXPECT_EQ(object.at("raw").type, JsonValue::Type::kRaw);
  EXPECT_EQ(object.at("raw").str, R"({"x":[1,2]})");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  std::map<std::string, JsonValue> object;
  std::string error;
  for (const char* bad : {"", "[1]", "{\"a\":}", "{\"a\":1", "{\"a\":1}x", "{'a':1}",
                          "{\"a\":01e}", "{\"a\" 1}"}) {
    EXPECT_FALSE(ParseJsonObject(bad, &object, &error)) << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonReaderTest, LaterDuplicateKeyWins) {
  std::map<std::string, JsonValue> object;
  std::string error;
  ASSERT_TRUE(ParseJsonObject(R"({"a":1,"a":2})", &object, &error));
  EXPECT_EQ(object.at("a").num, 2.0);
}

// ---- Request decode / encode ----

TEST(PlanRequestTest, ToJsonParseRoundTrip) {
  PlanRequest request;
  request.op = "max_nm";
  request.id = "req-42";
  request.cluster_nodes = "VRQ";
  request.model = "vgg19";
  request.selector = "VVQQ";
  request.nm = 3;
  request.nm_cap = 5;
  request.batch_size = 64;
  request.search_orders = false;

  PlanRequest decoded;
  ErrorCode code = ErrorCode::kNone;
  std::string error;
  ASSERT_TRUE(ParsePlanRequest(request.ToJson(), &decoded, &code, &error)) << error;
  EXPECT_EQ(decoded.op, request.op);
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.cluster_nodes, request.cluster_nodes);
  EXPECT_EQ(decoded.model, request.model);
  EXPECT_EQ(decoded.selector, request.selector);
  EXPECT_EQ(decoded.nm, request.nm);
  EXPECT_EQ(decoded.nm_cap, request.nm_cap);
  EXPECT_EQ(decoded.batch_size, request.batch_size);
  EXPECT_EQ(decoded.search_orders, request.search_orders);
}

TEST(PlanRequestTest, RejectsBadRequests) {
  PlanRequest out;
  ErrorCode code = ErrorCode::kNone;
  std::string error;
  // Not JSON at all.
  EXPECT_FALSE(ParsePlanRequest("nope", &out, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadJson);
  // Wrong protocol version.
  EXPECT_FALSE(ParsePlanRequest(R"({"v":99,"op":"plan","selector":"VVQQ"})", &out, &code,
                                &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  // Unknown op.
  EXPECT_FALSE(ParsePlanRequest(R"({"v":1,"op":"dance"})", &out, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  // plan needs a selector.
  EXPECT_FALSE(ParsePlanRequest(R"({"v":1,"op":"plan"})", &out, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  // nm out of range.
  EXPECT_FALSE(
      ParsePlanRequest(R"({"v":1,"op":"plan","selector":"VVQQ","nm":0})", &out, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
  // Ill-typed field.
  EXPECT_FALSE(ParsePlanRequest(R"({"v":1,"op":"plan","selector":7})", &out, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadRequest);
}

// ---- PlanService ----

TEST(PlanServiceTest, PlanHitsCacheOnRepeat) {
  runner::PartitionCache cache;
  PlanService service(&cache);
  PlanRequest request;
  request.selector = "VVQQ";

  const runner::ResultRow miss = service.Handle(request);
  EXPECT_EQ(miss.Get("ok"), "true");
  EXPECT_EQ(miss.Get("feasible"), "true");
  EXPECT_EQ(miss.Get("cache_hit"), "false");
  EXPECT_EQ(miss.Get("num_stages"), "4");
  // A success row must not carry an error_code at all — Find distinguishes
  // the absent field from an empty value, which Get cannot.
  EXPECT_EQ(miss.Find("error_code"), std::nullopt);

  const runner::ResultRow hit = service.Handle(request);
  EXPECT_EQ(hit.Get("ok"), "true");
  EXPECT_EQ(hit.Get("cache_hit"), "true");
  // The cached answer is the cold answer, field for field.
  EXPECT_EQ(hit.Get("bottleneck_time_s"), miss.Get("bottleneck_time_s"));
  EXPECT_EQ(hit.Get("sum_time_s"), miss.Get("sum_time_s"));
  EXPECT_EQ(hit.Get("stages"), miss.Get("stages"));
  EXPECT_EQ(service.requests(), 2);
  EXPECT_EQ(service.errors(), 0);
  EXPECT_EQ(service.contexts(), 1);
}

TEST(PlanServiceTest, PlanMatchesDirectPartitioner) {
  runner::PartitionCache cache;
  PlanService service(&cache);
  PlanRequest request;
  request.selector = "VVQQ";
  request.nm = 2;
  const runner::ResultRow row = service.Handle(request);
  ASSERT_EQ(row.Get("ok"), "true");

  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 2;
  const partition::Partition direct =
      partitioner.Solve(core::PickGpus(cluster, "VVQQ"), options);
  runner::ResultRow expected;
  expected.Set("bottleneck", direct.bottleneck_time);
  EXPECT_EQ(row.Get("bottleneck_time_s"), expected.Get("bottleneck"));
  EXPECT_EQ(row.Get("num_stages"), std::to_string(direct.num_stages()));
}

TEST(PlanServiceTest, MaxNmMatchesPartitionerAndReportsCacheHit) {
  runner::PartitionCache cache;
  PlanService service(&cache);
  PlanRequest request;
  request.op = "max_nm";
  request.selector = "VVQQ";
  request.nm_cap = 7;

  const runner::ResultRow cold = service.Handle(request);
  ASSERT_EQ(cold.Get("ok"), "true");
  EXPECT_EQ(cold.Get("cache_hit"), "false");

  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const int expected = partitioner.FindMaxNm(core::PickGpus(cluster, "VVQQ"), 7);
  EXPECT_EQ(cold.Get("max_nm"), std::to_string(expected));

  // Every probe of the repeat comes from the cache.
  const runner::ResultRow warm = service.Handle(request);
  EXPECT_EQ(warm.Get("cache_hit"), "true");
  EXPECT_EQ(warm.Get("max_nm"), cold.Get("max_nm"));
}

TEST(PlanServiceTest, ClassifiesErrors) {
  runner::PartitionCache cache;
  PlanService service(&cache);

  PlanRequest bad_model;
  bad_model.selector = "VVQQ";
  bad_model.model = "alexnet";
  EXPECT_EQ(service.Handle(bad_model).Get("error_code"), "bad_model");

  PlanRequest bad_spec;
  bad_spec.selector = "VVQQ";
  bad_spec.cluster_spec = "node 0xV";
  EXPECT_EQ(service.Handle(bad_spec).Get("error_code"), "bad_spec");

  PlanRequest bad_selector;
  bad_selector.selector = "A100*64";
  EXPECT_EQ(service.Handle(bad_selector).Get("error_code"), "bad_selector");

  EXPECT_EQ(service.errors(), 3);
  EXPECT_EQ(service.requests(), 3);
}

TEST(PlanServiceTest, HandleJsonReportsShutdownAndStats) {
  runner::PartitionCache cache;
  PlanService service(&cache);

  bool shutdown = false;
  runner::ResultRow row = service.HandleJson(R"({"v":1,"op":"stats"})", &shutdown);
  EXPECT_FALSE(shutdown);
  EXPECT_EQ(row.Get("ok"), "true");
  EXPECT_EQ(row.Get("cache_size"), "0");

  row = service.HandleJson(R"({"v":1,"op":"shutdown"})", &shutdown);
  EXPECT_TRUE(shutdown);
  EXPECT_EQ(row.Get("ok"), "true");

  // A parse failure is an error response, never an exception — and not a
  // shutdown.
  row = service.HandleJson("not json", &shutdown);
  EXPECT_FALSE(shutdown);
  EXPECT_EQ(row.Get("ok"), "false");
  EXPECT_EQ(row.Find("error_code"), "bad_json");
}

// ---- End-to-end over sockets ----

TEST(PlanServerTest, ServesPlansOverTcp) {
  runner::PartitionCache cache;
  PlanServerOptions options;
  options.threads = 4;
  PlanServer server(&cache, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  PlanClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  PlanRequest request;
  request.selector = "VVQQ";
  request.id = "e2e";
  std::map<std::string, JsonValue> response;
  ASSERT_TRUE(client.Call(request, &response, &error)) << error;
  EXPECT_TRUE(response.at("ok").boolean);
  EXPECT_EQ(response.at("id").str, "e2e");
  EXPECT_FALSE(response.at("cache_hit").boolean);
  EXPECT_EQ(response.at("num_stages").num, 4.0);

  ASSERT_TRUE(client.Call(request, &response, &error)) << error;
  EXPECT_TRUE(response.at("cache_hit").boolean);

  server.RequestShutdown();
  server.Join();
}

TEST(PlanServerTest, ConcurrentClientsAllGetAnswers) {
  runner::PartitionCache cache;
  PlanServerOptions options;
  options.threads = 4;
  PlanServer server(&cache, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  constexpr int kClients = 4;
  constexpr int kCallsPerClient = 10;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      PlanClient client;
      std::string client_error;
      if (!client.Connect("127.0.0.1", server.port(), &client_error)) return;
      for (int i = 0; i < kCallsPerClient; ++i) {
        PlanRequest request;
        request.selector = (c % 2 == 0) ? "VVQQ" : "VRGQ";
        request.nm = 1 + (i % 3);
        std::map<std::string, JsonValue> response;
        if (client.Call(request, &response, &client_error) && response.at("ok").boolean) {
          ok_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(ok_count.load(), kClients * kCallsPerClient);
  EXPECT_EQ(server.service().requests(), kClients * kCallsPerClient);

  server.RequestShutdown();
  server.Join();
}

TEST(PlanServerTest, RemoteShutdownDrainsAndPersistsCache) {
  const std::string path = testing::TempDir() + "hetpipe_serve_test_cache.bin";
  std::remove(path.c_str());

  runner::PartitionCache cache;
  PlanServerOptions options;
  options.threads = 2;
  options.cache_path = path;
  options.save_interval_s = 3600;  // only the final snapshot should fire
  PlanServer server(&cache, options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  PlanClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port(), &error)) << error;
  PlanRequest plan;
  plan.selector = "VVQQ";
  std::map<std::string, JsonValue> response;
  ASSERT_TRUE(client.Call(plan, &response, &error)) << error;
  ASSERT_TRUE(response.at("ok").boolean);

  PlanRequest shutdown;
  shutdown.op = "shutdown";
  ASSERT_TRUE(client.Call(shutdown, &response, &error)) << error;
  EXPECT_TRUE(response.at("ok").boolean);
  server.Join();
  EXPECT_TRUE(server.shutdown_requested());

  // The final snapshot is loadable and holds the solved plan.
  runner::PartitionCache reloaded;
  ASSERT_TRUE(reloaded.Load(path, &error)) << error;
  EXPECT_EQ(reloaded.size(), 1);
  std::remove(path.c_str());
}

// ---- Fuzz-style robustness: mutated frames and adversarial JSON must come
// ---- back as stable bad_frame / bad_json / bad_request errors — never a
// ---- crash, hang, or exception. Deterministic (fixed seeds), and the CI
// ---- Debug job runs this under ASan/UBSan, which is where frame-length and
// ---- scanner-depth bugs would actually trip.

TEST(ProtocolFuzzTest, MutatedAndTruncatedFramesNeverCrashTheReader) {
  std::mt19937 rng(0x5e7fe);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 200; ++round) {
    SocketPair pair;
    std::string bytes;
    switch (round % 4) {
      case 0: {
        // A length prefix promising anything from 0 to 4 GiB, with a payload
        // shorter than promised (or absent).
        uint32_t len = static_cast<uint32_t>(rng());
        bytes.append(reinterpret_cast<const char*>(&len), 4);
        bytes.append(static_cast<size_t>(rng() % 64), 'p');
        break;
      }
      case 1: {
        // A valid frame, then its bytes mutated at random positions.
        std::string payload = R"({"v":1,"op":"plan","selector":"VVQQ"})";
        uint32_t len = static_cast<uint32_t>(payload.size());
        bytes.append(reinterpret_cast<const char*>(&len), 4);
        bytes += payload;
        for (int m = 0; m < 1 + round % 5; ++m) {
          bytes[rng() % bytes.size()] = static_cast<char>(byte(rng));
        }
        break;
      }
      case 2:
        // Pure noise, 0..127 bytes.
        for (size_t i = rng() % 128; i > 0; --i) {
          bytes.push_back(static_cast<char>(byte(rng)));
        }
        break;
      default: {
        // A truncated prefix: fewer than 4 header bytes.
        for (size_t i = rng() % 4; i > 0; --i) {
          bytes.push_back(static_cast<char>(byte(rng)));
        }
        break;
      }
    }
    ASSERT_EQ(::send(pair.fds[0], bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
    ::close(pair.fds[0]);
    pair.fds[0] = -1;
    // Drain the connection: every frame is accepted, rejected, or ends the
    // stream; none may hang (the writer is closed, so data is finite) and a
    // kError must carry a message.
    for (int frames = 0; frames < 8; ++frames) {
      std::string payload, error;
      const FrameResult result =
          ReadFrame(pair.fds[1], kDefaultMaxFrameBytes, &payload, &error);
      if (result == FrameResult::kEof) {
        break;
      }
      if (result == FrameResult::kError) {
        EXPECT_FALSE(error.empty());
        break;
      }
      ASSERT_EQ(result, FrameResult::kFrame);
    }
  }
}

TEST(ProtocolFuzzTest, AdversarialJsonYieldsStableErrorsNotCrashes) {
  runner::PartitionCache cache;
  PlanService service(&cache);

  // Hand-built adversarial payloads: deep nesting (the nested-value scanner
  // is iterative, so recursion depth must not be a resource), control bytes,
  // unterminated tokens, huge numbers, and embedded NULs.
  std::vector<std::string> payloads;
  {
    std::string deep_obj, deep_arr;
    for (int d = 0; d < 200000; ++d) {
      deep_obj += "{\"a\":";
      deep_arr += "[";
    }
    payloads.push_back(R"({"v":1,"op":"plan","selector":)" + deep_obj);
    payloads.push_back(R"({"v":1,"op":"plan","extra":)" + deep_arr + "}");
    payloads.push_back("{\"a\":\"\x01\x02\x03\"}");
    payloads.push_back(std::string("{\"a\":\"b") + '\0' + "c\"}");
    payloads.push_back(R"({"v":1e309,"op":"plan"})");
    payloads.push_back(R"({"v":1,"op":"plan","selector":")" + std::string(100000, 'V'));
    payloads.push_back("{\"v\":1,\"op\":\"plan\",\"selector\":\"VVQQ\",\"nm\":");
  }
  // Seeded mutations of a valid request: flip, insert, and delete bytes.
  std::mt19937 rng(0xfacade);
  std::uniform_int_distribution<int> byte(0, 255);
  const std::string valid = R"({"v":1,"op":"plan","selector":"VVQQ","nm":2})";
  for (int round = 0; round < 300; ++round) {
    std::string mutated = valid;
    for (int m = 0; m < 1 + round % 6; ++m) {
      const size_t at = rng() % mutated.size();
      switch (rng() % 3) {
        case 0:
          mutated[at] = static_cast<char>(byte(rng));
          break;
        case 1:
          mutated.insert(at, 1, static_cast<char>(byte(rng)));
          break;
        default:
          mutated.erase(at, 1);
          break;
      }
      if (mutated.empty()) {
        mutated = "x";
      }
    }
    payloads.push_back(std::move(mutated));
  }

  for (const std::string& payload : payloads) {
    // The raw JSON reader: parses or reports an error, never throws.
    std::map<std::string, JsonValue> object;
    std::string error;
    if (!ParseJsonObject(payload, &object, &error)) {
      EXPECT_FALSE(error.empty());
    }
    // The request decoder: success, or a stable code from the bad_* family.
    PlanRequest request;
    ErrorCode code = ErrorCode::kNone;
    error.clear();
    if (!ParsePlanRequest(payload, &request, &code, &error)) {
      EXPECT_TRUE(code == ErrorCode::kBadJson || code == ErrorCode::kBadRequest)
          << ErrorCodeName(code) << " for payload prefix: " << payload.substr(0, 60);
      EXPECT_FALSE(error.empty());
    }
    // The full service: always a response row, never a shutdown, and every
    // failure carries one of the stable error codes.
    bool shutdown = false;
    const runner::ResultRow row = service.HandleJson(payload, &shutdown);
    EXPECT_FALSE(shutdown);
    if (row.Get("ok") != "true") {
      EXPECT_EQ(row.Get("ok"), "false");
      const std::string code_name = row.Get("error_code");
      EXPECT_TRUE(code_name == "bad_json" || code_name == "bad_request" ||
                  code_name == "bad_spec" || code_name == "bad_model" ||
                  code_name == "bad_selector")
          << code_name << " for payload prefix: " << payload.substr(0, 60);
    }
  }
}

}  // namespace
}  // namespace hetpipe::serve
