#include <gtest/gtest.h>

#include "model/model_graph.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/vgg.h"

namespace hetpipe::model {
namespace {

double MiB(uint64_t bytes) { return static_cast<double>(bytes) / (1 << 20); }

TEST(ResNetTest, ParameterSizeMatchesPaper) {
  const ModelGraph graph = BuildResNet152();
  // §8.3: ResNet-152's parameter size is ~230 MB (60.2M fp32 params).
  EXPECT_NEAR(MiB(graph.total_param_bytes()), 230.0, 15.0);
  EXPECT_EQ(graph.family(), ModelFamily::kResNet152);
}

TEST(ResNetTest, ForwardFlopsInPublishedRange) {
  const ModelGraph graph = BuildResNet152();
  // ResNet-152 is ~11.3 G multiply-adds per image; this repo counts a MAC as
  // 2 FLOPs, so ~22.6 GFLOPs forward.
  EXPECT_GT(graph.total_fwd_flops(), 20e9);
  EXPECT_LT(graph.total_fwd_flops(), 26e9);
}

TEST(ResNetTest, BlockStructure) {
  const ModelGraph graph = BuildResNet152();
  // conv1 + maxpool + 50 bottleneck blocks + avgpool + fc.
  EXPECT_EQ(graph.num_layers(), 54);
  int blocks = 0;
  for (const Layer& layer : graph.layers()) {
    blocks += (layer.kind == LayerKind::kBlock) ? 1 : 0;
  }
  EXPECT_EQ(blocks, 3 + 8 + 36 + 3);
}

TEST(ResNetTest, GenericBuilderResNet50) {
  const ModelGraph graph = BuildBottleneckResNet("ResNet-50", 3, 4, 6, 3);
  EXPECT_EQ(graph.family(), ModelFamily::kGeneric);
  // ResNet-50 has ~25.6M params.
  EXPECT_NEAR(MiB(graph.total_param_bytes()), 98.0, 10.0);
}

TEST(VggTest, ParameterSizeMatchesPaper) {
  const ModelGraph graph = BuildVgg19();
  // §8.3: VGG-19's parameter size is ~548 MB (143.7M fp32 params).
  EXPECT_NEAR(MiB(graph.total_param_bytes()), 548.0, 15.0);
  EXPECT_EQ(graph.family(), ModelFamily::kVgg19);
}

TEST(VggTest, ForwardFlopsInPublishedRange) {
  const ModelGraph graph = BuildVgg19();
  // VGG-19 is ~19.6 G multiply-adds per 224x224 image = ~39.3 GFLOPs at
  // 2 ops per MAC.
  EXPECT_GT(graph.total_fwd_flops(), 36e9);
  EXPECT_LT(graph.total_fwd_flops(), 43e9);
}

TEST(VggTest, Vgg16Smaller) {
  const ModelGraph v19 = BuildVgg19();
  const ModelGraph v16 = BuildVgg16();
  EXPECT_LT(v16.total_fwd_flops(), v19.total_fwd_flops());
  EXPECT_LT(v16.total_param_bytes(), v19.total_param_bytes());
  EXPECT_EQ(v16.num_layers(), v19.num_layers() - 3);
}

TEST(VggTest, FcLayersDominateParams) {
  const ModelGraph graph = BuildVgg19();
  uint64_t fc_bytes = 0;
  for (const Layer& layer : graph.layers()) {
    if (layer.kind == LayerKind::kFc) {
      fc_bytes += layer.param_bytes;
    }
  }
  // The classifier holds ~86% of VGG-19's parameters — the reason the paper
  // calls VGG-19 "the model with a large parameter set".
  EXPECT_GT(static_cast<double>(fc_bytes) / graph.total_param_bytes(), 0.8);
}

TEST(ModelGraphTest, RangesSumToTotals) {
  const ModelGraph graph = BuildResNet152();
  const int last = graph.num_layers() - 1;
  EXPECT_EQ(graph.ParamBytesInRange(0, last), graph.total_param_bytes());
  EXPECT_EQ(graph.StashBytesInRange(0, last), graph.total_stash_bytes());
  const uint64_t head = graph.ParamBytesInRange(0, 9);
  const uint64_t tail = graph.ParamBytesInRange(10, last);
  EXPECT_EQ(head + tail, graph.total_param_bytes());
}

TEST(ModelGraphTest, BoundaryBytesMatchLayerOutputs) {
  const ModelGraph graph = BuildVgg19();
  for (int i = 0; i < graph.num_layers() - 1; ++i) {
    EXPECT_EQ(graph.BoundaryBytes(i), graph.layer(i).out_bytes);
  }
}

TEST(LayerTest, ConvCostFormulas) {
  const Layer conv = MakeConv("c", 3, 64, 128, 56, 56);
  EXPECT_DOUBLE_EQ(conv.fwd_flops, 2.0 * 9 * 64 * 128 * 56 * 56);
  EXPECT_EQ(conv.param_bytes, (9ULL * 64 * 128 + 128) * 4);
  EXPECT_EQ(conv.out_bytes, 128ULL * 56 * 56 * 4);
}

TEST(LayerTest, FcCostFormulas) {
  const Layer fc = MakeFc("f", 4096, 1000);
  EXPECT_DOUBLE_EQ(fc.fwd_flops, 2.0 * 4096 * 1000);
  EXPECT_EQ(fc.param_bytes, (4096ULL * 1000 + 1000) * 4);
  EXPECT_EQ(fc.out_bytes, 4000u);
}

TEST(LayerTest, BottleneckProjectsWhenChannelsChange) {
  const Layer same = MakeBottleneckBlock("b", 256, 64, 256, 56, 56);
  const Layer proj = MakeBottleneckBlock("b", 64, 64, 256, 56, 56);
  // The projection shortcut adds parameters and FLOPs.
  const Layer no_proj_base = MakeBottleneckBlock("b", 256, 64, 256, 56, 56);
  EXPECT_EQ(same.param_bytes, no_proj_base.param_bytes);
  EXPECT_GT(proj.fwd_flops, 0.0);
  EXPECT_GT(same.stash_bytes, same.out_bytes);  // stash includes internals
}

TEST(ProfilerTest, FasterGpuHasShorterTimes) {
  const ModelGraph graph = BuildResNet152();
  const ModelProfile profile(graph, 32);
  const double v = profile.FullModelTime(hw::GpuType::kTitanV);
  const double r = profile.FullModelTime(hw::GpuType::kTitanRtx);
  const double g = profile.FullModelTime(hw::GpuType::kRtx2060);
  const double q = profile.FullModelTime(hw::GpuType::kQuadroP4000);
  EXPECT_LT(v, r);
  EXPECT_LT(r, g);
  EXPECT_LT(g, q);
}

TEST(ProfilerTest, BackwardRoughlyTwiceForward) {
  const ModelGraph graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const int last = graph.num_layers() - 1;
  const double fwd = profile.StageFwdTime(0, last, hw::GpuType::kTitanV);
  const double bwd = profile.StageBwdTime(0, last, hw::GpuType::kTitanV);
  EXPECT_NEAR(bwd / fwd, 2.0, 0.1);
}

TEST(ProfilerTest, StageTimesAreAdditive) {
  const ModelGraph graph = BuildVgg19();
  const ModelProfile profile(graph, 32);
  const int last = graph.num_layers() - 1;
  const double whole = profile.StageTotalTime(0, last, hw::GpuType::kRtx2060);
  const double split = profile.StageTotalTime(0, 9, hw::GpuType::kRtx2060) +
                       profile.StageTotalTime(10, last, hw::GpuType::kRtx2060);
  EXPECT_NEAR(whole, split, 1e-12);
}

TEST(ProfilerTest, CalibrationMatchesFig3SingleWorkerThroughput) {
  // Fig. 3 absolute Nm=1 throughputs (img/s): pipelining with Nm=1 is
  // sequential execution, so batch / FullModelTime must be close to the
  // published numbers (communication adds a little on top).
  struct Case {
    ModelGraph graph;
    hw::GpuType gpu;
    double img_s;
  };
  const Case cases[] = {
      {BuildResNet152(), hw::GpuType::kTitanV, 96.0},
      {BuildResNet152(), hw::GpuType::kTitanRtx, 87.0},
      {BuildResNet152(), hw::GpuType::kRtx2060, 58.0},
      {BuildResNet152(), hw::GpuType::kQuadroP4000, 43.0},
      {BuildVgg19(), hw::GpuType::kTitanV, 119.0},
      {BuildVgg19(), hw::GpuType::kTitanRtx, 107.0},
      {BuildVgg19(), hw::GpuType::kRtx2060, 62.0},
      {BuildVgg19(), hw::GpuType::kQuadroP4000, 51.0},
  };
  for (const Case& c : cases) {
    const ModelProfile profile(c.graph, 32);
    const double throughput = 32.0 / profile.FullModelTime(c.gpu);
    EXPECT_NEAR(throughput, c.img_s, c.img_s * 0.15)
        << c.graph.name() << " on " << hw::CodeOf(c.gpu);
  }
}

TEST(ProfilerTest, BoundaryTransferScalesWithBatch) {
  const ModelGraph graph = BuildVgg19();
  const ModelProfile p32(graph, 32);
  const ModelProfile p64(graph, 64);
  EXPECT_EQ(p64.BoundaryTransferBytes(0), 2 * p32.BoundaryTransferBytes(0));
}

}  // namespace
}  // namespace hetpipe::model
