#include <gtest/gtest.h>

#include <cmath>

#include "train/data.h"
#include "train/model_zoo.h"
#include "train/ps.h"
#include "train/regret.h"
#include "train/tensor.h"
#include "train/wsp_trainer.h"

namespace hetpipe::train {
namespace {

TEST(TensorTest, BasicOps) {
  Tensor a(3);
  a[0] = 1.0;
  a[1] = 2.0;
  a[2] = 3.0;
  Tensor b(3);
  b.Fill(1.0);
  a.Axpy(2.0, b);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[2], 5.0);
  EXPECT_DOUBLE_EQ(b.Dot(b), 3.0);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
  a.Zero();
  EXPECT_DOUBLE_EQ(a.Norm(), 0.0);
}

TEST(TensorTest, Distance) {
  Tensor a(2);
  Tensor b(2);
  b[0] = 3.0;
  b[1] = 4.0;
  EXPECT_DOUBLE_EQ(a.DistanceTo(b), 5.0);
}

TEST(DataTest, LinearRegressionShape) {
  const Dataset data = MakeLinearRegression(100, 5, 0.1, 1);
  EXPECT_EQ(data.size(), 100);
  EXPECT_EQ(data.dim, 5);
  EXPECT_EQ(data.x[0].size(), 5u);
}

TEST(DataTest, BlobsAreSeparated) {
  const Dataset data = MakeBinaryBlobs(200, 3, 6.0, 2);
  double mean0 = 0.0;
  double mean1 = 0.0;
  int n0 = 0;
  int n1 = 0;
  for (int i = 0; i < data.size(); ++i) {
    if (data.y[static_cast<size_t>(i)] == 0.0) {
      mean0 += data.x[static_cast<size_t>(i)][0];
      ++n0;
    } else {
      mean1 += data.x[static_cast<size_t>(i)][0];
      ++n1;
    }
  }
  EXPECT_GT(mean1 / n1, mean0 / n0 + 3.0);
}

TEST(DataTest, StreamsAreDisjointShards) {
  const Dataset data = MakeLinearRegression(40, 2, 0.0, 3);
  MinibatchStream s0(data, 0, 2, 5);
  MinibatchStream s1(data, 1, 2, 5);
  const auto b0 = s0.Next(20);
  const auto b1 = s1.Next(20);
  for (int i : b0) {
    EXPECT_EQ(i % 2, 0);
  }
  for (int i : b1) {
    EXPECT_EQ(i % 2, 1);
  }
}

TEST(DataTest, StreamWrapsAround) {
  const Dataset data = MakeLinearRegression(10, 2, 0.0, 4);
  MinibatchStream s(data, 0, 1, 6);
  const auto batch = s.Next(25);  // bigger than the shard
  EXPECT_EQ(batch.size(), 25u);
}

// Finite-difference gradient check for every model in the zoo.
void CheckGradients(const TrainModel& model, const Dataset& data, const Tensor& w) {
  std::vector<int> idx{0, 1, 2, 3};
  Tensor grad(model.num_params());
  model.LossAndGrad(data, idx, w, &grad);
  const double eps = 1e-6;
  for (size_t j = 0; j < model.num_params(); j += std::max<size_t>(1, model.num_params() / 7)) {
    Tensor wp = w;
    wp[j] += eps;
    Tensor wm = w;
    wm[j] -= eps;
    Tensor scratch(model.num_params());
    const double lp = model.LossAndGrad(data, idx, wp, &scratch);
    scratch.Zero();
    const double lm = model.LossAndGrad(data, idx, wm, &scratch);
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad[j], fd, 1e-4 * std::max(1.0, std::abs(fd))) << "param " << j;
  }
}

TEST(ModelZooTest, LinearRegressionGradientsCorrect) {
  const Dataset data = MakeLinearRegression(20, 6, 0.1, 11);
  const LinearRegressionModel model(6);
  Tensor w(model.num_params());
  w.Fill(0.3);
  CheckGradients(model, data, w);
}

TEST(ModelZooTest, LogisticRegressionGradientsCorrect) {
  const Dataset data = MakeBinaryBlobs(20, 4, 2.0, 12);
  const LogisticRegressionModel model(4);
  Tensor w(model.num_params());
  w.Fill(-0.2);
  CheckGradients(model, data, w);
}

TEST(ModelZooTest, MlpGradientsCorrect) {
  const Dataset data = MakeXorLike(20, 3, 13);
  const MlpModel model(3, 5);
  const Tensor w = model.Init(14);
  CheckGradients(model, data, w);
}

TEST(ParameterServerTest, PushAdvancesClocksAndWeights) {
  ParameterServer ps(2, Tensor(3));
  Tensor u(3);
  u.Fill(1.0);
  ps.PushWave(0, 0, u);
  EXPECT_EQ(ps.GlobalWave(), -1);
  ps.PushWave(1, 0, u);
  EXPECT_EQ(ps.GlobalWave(), 0);
  Tensor w(3);
  ps.Read(&w);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
}

TEST(ParameterServerTest, WaveCallbackFires) {
  ParameterServer ps(1, Tensor(1));
  int64_t last_wave = -1;
  ps.SetWaveCallback([&](int64_t wave, const Tensor&) { last_wave = wave; });
  Tensor u(1);
  ps.PushWave(0, 0, u);
  ps.PushWave(0, 1, u);
  EXPECT_EQ(last_wave, 1);
}

TEST(TrainerTest, BspConvergesOnConvexProblem) {
  const Dataset data = MakeLinearRegression(400, 8, 0.05, 21);
  const LinearRegressionModel model(8);
  TrainerOptions options = BspOptions(/*num_workers=*/4, /*steps=*/400);
  options.worker.lr = 0.05;
  options.worker.batch = 8;
  const TrainerResult result = TrainWsp(model, data, options);
  EXPECT_LT(result.final_loss, 0.05);
  EXPECT_TRUE(result.staleness_within_bound);
  EXPECT_EQ(result.worst_observed_staleness, 0);  // BSP has zero staleness
}

TEST(TrainerTest, WspConvergesWithPipelineStaleness) {
  const Dataset data = MakeLinearRegression(400, 8, 0.05, 22);
  const LinearRegressionModel model(8);
  TrainerOptions options = WspOptions(/*num_workers=*/4, /*waves=*/150, /*nm=*/4, /*d=*/1);
  options.worker.lr = 0.02;
  options.worker.batch = 8;
  const TrainerResult result = TrainWsp(model, data, options);
  EXPECT_LT(result.final_loss, 0.1);
  EXPECT_TRUE(result.staleness_within_bound);
  EXPECT_EQ(result.total_minibatches, 4 * 150 * 4);
}

TEST(TrainerTest, SspStalenessRespectsBound) {
  const Dataset data = MakeLinearRegression(200, 6, 0.05, 23);
  const LinearRegressionModel model(6);
  TrainerOptions options = SspOptions(/*num_workers=*/4, /*steps=*/300, /*s=*/3);
  options.worker.lr = 0.03;
  const TrainerResult result = TrainWsp(model, data, options);
  EXPECT_TRUE(result.staleness_within_bound);
  EXPECT_LT(result.final_loss, 0.1);
}

TEST(TrainerTest, AspStillMakesProgress) {
  const Dataset data = MakeLinearRegression(200, 6, 0.05, 24);
  const LinearRegressionModel model(6);
  TrainerOptions options = AspOptions(/*num_workers=*/4, /*steps=*/300);
  options.worker.lr = 0.03;
  const TrainerResult result = TrainWsp(model, data, options);
  const double initial_loss = model.FullLoss(data, Tensor(model.num_params()));
  EXPECT_LT(result.final_loss, initial_loss * 0.5);
}

TEST(TrainerTest, LossCurveIsRecorded) {
  const Dataset data = MakeLinearRegression(200, 4, 0.05, 25);
  const LinearRegressionModel model(4);
  TrainerOptions options = WspOptions(2, 64, 2, 0);
  options.worker.lr = 0.05;
  const TrainerResult result = TrainWsp(model, data, options);
  ASSERT_GE(result.loss_curve.size(), 2u);
  // Loss should broadly decrease over training.
  EXPECT_LT(result.loss_curve.back().second, result.loss_curve.front().second);
}

TEST(TrainerTest, MlpTrainsOnNonlinearData) {
  const Dataset data = MakeXorLike(300, 2, 26);
  const MlpModel model(2, 8);
  TrainerOptions options = WspOptions(2, 200, 2, 1);
  options.worker.lr = 0.3;
  options.worker.batch = 16;
  options.init = model.Init(27);
  const TrainerResult result = TrainWsp(model, data, options);
  const double initial = model.FullLoss(data, model.Init(27));
  EXPECT_LT(result.final_loss, initial * 0.8);
  EXPECT_TRUE(result.staleness_within_bound);
}

TEST(RegretTest, OptimumSolverReachesLowLoss) {
  const Dataset data = MakeLinearRegression(200, 5, 0.01, 31);
  const LinearRegressionModel model(5);
  Tensor w_star;
  const double loss = SolveOptimum(model, data, 400, 0.2, &w_star);
  EXPECT_LT(loss, 1e-3);
}

TEST(RegretTest, RegretDecreasesWithHorizon) {
  const Dataset data = MakeLinearRegression(300, 5, 0.02, 32);
  RegretExperimentOptions options;
  options.num_workers = 2;
  options.nm = 2;
  options.d = 1;
  options.horizons = {32, 128, 512};
  const RegretResult result = RunRegretExperiment(data, options);
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_TRUE(result.decreasing);
  // Theorem 1: R[W] = O(1/sqrt(T)); regret at the longest horizon must be
  // well below the shortest one.
  EXPECT_LT(result.points.back().regret, result.points.front().regret);
}

}  // namespace
}  // namespace hetpipe::train
