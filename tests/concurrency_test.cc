// Targeted concurrency stress tests. These run in every configuration, but
// they are written for the TSan lane (-DHETPIPE_SANITIZE=thread): each test
// drives one of the concurrent subsystems through the interleavings that a
// race would need — cache readers against Save/eviction, server accept
// against shutdown, pool tasks that throw — and asserts the results stay
// exact. Under TSan any data race or lock misuse in those paths fails the
// run even when the assertions would pass.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "partition/partitioner.h"
#include "runner/partition_cache.h"
#include "runner/thread_pool.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace hetpipe::runner {
namespace {

bool SamePartition(const partition::Partition& a, const partition::Partition& b) {
  return a.feasible == b.feasible && a.bottleneck_time == b.bottleneck_time &&
         a.sum_time == b.sum_time && a.num_stages() == b.num_stages();
}

// ---- ThreadPool exception safety ----

TEST(ThreadPoolExceptionTest, ParallelForRethrowsAndRunsEveryIndex) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](int64_t i) {
                         ran.fetch_add(1);
                         if (i % 7 == 0) {
                           throw std::runtime_error("task failure");
                         }
                       }),
      std::runtime_error);
  // A throwing task must not strand its siblings: every index still runs and
  // the loop still terminates (a deadlock here would hang the test).
  EXPECT_EQ(ran.load(), 100);

  // The pool must remain fully usable after a throwing ParallelFor.
  std::atomic<int> after{0};
  pool.ParallelFor(50, [&](int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolExceptionTest, DestructorJoinsAfterThrowingTasks) {
  // Regression for the Join/destructor audit: destroying a pool right after
  // a throwing ParallelFor must join every worker (no task left marooned in
  // the queue, no lost shutdown signal). The test passes by terminating.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(4);
    try {
      pool.ParallelFor(32, [&](int64_t i) {
        if (i % 3 == 0) throw std::runtime_error("boom");
      });
      FAIL() << "ParallelFor should have rethrown";
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(ThreadPoolExceptionTest, NestedParallelForPropagatesInlineExceptions) {
  // From inside a pool worker, ParallelFor runs inline; an exception thrown
  // by the inner body must surface through the outer ParallelFor without
  // wedging either level.
  ThreadPool pool(4);
  std::atomic<int> inner_runs{0};
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](int64_t i) {
                                  pool.ParallelFor(4, [&](int64_t j) {
                                    inner_runs.fetch_add(1);
                                    if (i == 3 && j == 2) {
                                      throw std::runtime_error("inner failure");
                                    }
                                  });
                                }),
               std::runtime_error);
  EXPECT_GT(inner_runs.load(), 0);
  std::atomic<int> after{0};
  pool.ParallelFor(16, [&](int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16);
}

TEST(ThreadPoolStressTest, NestedSweepsShareOnePoolExactly) {
  // The nested-sweep pattern (an outer sweep whose tasks run inner sweeps on
  // the same pool) must neither deadlock nor misplace results. Index math
  // makes every (outer, inner) cell distinct so lost or doubled work shows.
  ThreadPool pool(4);
  constexpr int kOuter = 12;
  constexpr int kInner = 16;
  std::vector<int64_t> sums(kOuter, 0);
  pool.ParallelFor(kOuter, [&](int64_t o) {
    std::vector<int64_t> cells(kInner, 0);
    pool.ParallelFor(kInner, [&](int64_t i) { cells[static_cast<size_t>(i)] = o * 100 + i; });
    int64_t sum = 0;
    for (int64_t cell : cells) sum += cell;
    sums[static_cast<size_t>(o)] = sum;
  });
  for (int o = 0; o < kOuter; ++o) {
    int64_t want = 0;
    for (int i = 0; i < kInner; ++i) want += o * 100 + i;
    EXPECT_EQ(sums[static_cast<size_t>(o)], want) << "outer index " << o;
  }
}

// ---- PartitionCache under contention ----

TEST(PartitionCacheStressTest, HammerWithConcurrentSaveAndEviction) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::string path = testing::TempDir() + "hetpipe_concurrency_hammer.bin";

  constexpr int kKeys = 6;
  partition::Partition expected[kKeys];
  for (int nm = 1; nm <= kKeys; ++nm) {
    partition::PartitionOptions options;
    options.nm = nm;
    expected[nm - 1] = partitioner.Solve({0, 4, 8, 12}, options);
  }

  PartitionCache cache;
  cache.SetCapacity(3);  // smaller than the live key set: eviction is constant
  std::atomic<int> mismatches{0};
  ThreadPool pool(8);
  pool.ParallelFor(240, [&](int64_t i) {
    partition::PartitionOptions options;
    options.nm = 1 + static_cast<int>(i % kKeys);
    const partition::Partition got = cache.Solve(partitioner, {0, 4, 8, 12}, options);
    if (!SamePartition(got, expected[options.nm - 1])) {
      mismatches.fetch_add(1);
    }
    // Saves overlap solves and evictions; SetCapacity oscillates the bound
    // while readers hold the shared lock.
    if (i % 31 == 0) cache.Save(path);
    if (i % 53 == 0) cache.SetCapacity(i % 2 == 0 ? 2 : 4);
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.size(), 4);
  EXPECT_GT(cache.evictions(), 0);

  // A snapshot taken mid-churn is a valid, loadable file.
  PartitionCache reloaded;
  std::string error;
  ASSERT_TRUE(reloaded.Load(path, &error)) << error;
  std::remove(path.c_str());
}

TEST(PartitionCacheStressTest, SetCapacityShrinkBelowLiveWhileReadersActive) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);

  constexpr int kKeys = 8;
  partition::Partition expected[kKeys];
  for (int nm = 1; nm <= kKeys; ++nm) {
    partition::PartitionOptions options;
    options.nm = nm;
    expected[nm - 1] = partitioner.Solve({0, 4, 8, 12}, options);
  }

  PartitionCache cache;
  for (int nm = 1; nm <= kKeys; ++nm) {
    partition::PartitionOptions options;
    options.nm = nm;
    cache.Solve(partitioner, {0, 4, 8, 12}, options);
  }
  ASSERT_EQ(cache.size(), kKeys);

  // Readers hammer every key while the main thread shrinks the bound far
  // below the live-entry count. Evicted keys re-solve (and may evict
  // something else); every answer must stay exact throughout.
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      int nm = 1 + t;
      while (!done.load(std::memory_order_acquire)) {
        partition::PartitionOptions options;
        options.nm = nm;
        const partition::Partition got = cache.Solve(partitioner, {0, 4, 8, 12}, options);
        if (!SamePartition(got, expected[nm - 1])) mismatches.fetch_add(1);
        nm = 1 + (nm % kKeys);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    cache.SetCapacity(2);
    cache.SetCapacity(kKeys + 1);
  }
  cache.SetCapacity(2);
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(cache.size(), 2);
  EXPECT_GT(cache.evictions(), 0);
}

TEST(PartitionCacheTest, SetCapacityEvictsInLruOrder) {
  // Serial companion to the stress test above: with no concurrency the
  // surviving entries are exactly the most recently used ones.
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);

  PartitionCache cache;
  for (int nm = 1; nm <= 5; ++nm) {
    partition::PartitionOptions options;
    options.nm = nm;
    cache.Solve(partitioner, {0, 4, 8, 12}, options);
  }
  // Refresh nm=1: LRU order is now 2, 3, 4 (oldest first), then 5, 1.
  {
    partition::PartitionOptions options;
    options.nm = 1;
    cache.Solve(partitioner, {0, 4, 8, 12}, options);
  }
  cache.SetCapacity(2);
  EXPECT_EQ(cache.size(), 2);

  // Survivors must be the two most recently used: nm=5 and nm=1.
  const int64_t hits_before = cache.hits();
  for (int nm : {1, 5}) {
    partition::PartitionOptions options;
    options.nm = nm;
    bool was_hit = false;
    cache.Solve(partitioner, {0, 4, 8, 12}, options, &was_hit);
    EXPECT_TRUE(was_hit) << "nm=" << nm << " should have survived the shrink";
  }
  EXPECT_EQ(cache.hits(), hits_before + 2);
  // nm=2 (the least recently used) must be gone. Capacity is raised first so
  // the probe doesn't evict a survivor we just asserted on.
  cache.SetCapacity(0);
  {
    partition::PartitionOptions options;
    options.nm = 2;
    bool was_hit = true;
    cache.Solve(partitioner, {0, 4, 8, 12}, options, &was_hit);
    EXPECT_FALSE(was_hit) << "nm=2 should have been evicted";
  }
}

// ---- Parallel scalable search under contention ----

TEST(SearchParallelStressTest, ConcurrentPooledSolvesStayByteIdentical) {
  // Several request threads share one Partitioner and one ThreadPool — the
  // serve daemon's exact shape — and each runs pooled beam/hierarchical
  // solves. The searches batch candidates through ParallelFor with a shared
  // mutex-guarded incumbent bound; under TSan this flushes out any lock
  // misuse there, and the assertions pin that contention never changes a
  // single byte of the results (index-ordered reductions, strict pruning).
  hw::ClusterSpec spec;
  spec.Named("stress-racked");
  spec.AddNode("V", 1).AddNode("R", 1).AddNode("G", 1);
  spec.AddNode("Q", 1).AddNode("V", 1).AddNode("R", 1);
  spec.AddRack("left", {0, 1, 2}).AddRack("right", {3, 4, 5});
  spec.CrossRackGbits(10.0);
  const hw::Cluster cluster = spec.Build();
  const auto graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::vector<int> ids = {0, 1, 2, 3, 4, 5};

  ThreadPool pool(4);
  std::map<int, partition::Partition> expected;  // strategy index -> serial
  const partition::SearchStrategy strategies[] = {partition::SearchStrategy::kBeam,
                                                  partition::SearchStrategy::kHierarchical};
  for (int s = 0; s < 2; ++s) {
    partition::PartitionOptions options;
    options.strategy = strategies[s];
    expected[s] = partitioner.SolveScalable(ids, options);
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 6; ++round) {
        const int s = (t + round) % 2;
        partition::PartitionOptions options;
        options.strategy = strategies[s];
        options.pool = &pool;
        const partition::Partition got = partitioner.SolveScalable(ids, options);
        if (!SamePartition(got, expected[s]) ||
            got.ToString(profile) != expected[s].ToString(profile)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace hetpipe::runner

namespace hetpipe::serve {
namespace {

// ---- PlanServer connect/shutdown races ----

TEST(PlanServerStressTest, ShutdownRacesInFlightConnections) {
  // Rounds of: start a server, hammer it from several client threads, and
  // tear it down while calls are mid-flight. Clients may see failures after
  // shutdown begins (connection refused, EOF, or a shutting_down response) —
  // what must never happen is a crash, a wedged Join, or a torn response on
  // a call that was reported successful.
  for (int round = 0; round < 5; ++round) {
    runner::PartitionCache cache;
    PlanServerOptions options;
    options.threads = 4;
    PlanServer server(&cache, options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    std::atomic<int> ok_calls{0};
    std::atomic<int> bad_payloads{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < 20; ++i) {
          PlanClient client;
          std::string client_error;
          if (!client.Connect("127.0.0.1", server.port(), &client_error)) return;
          PlanRequest request;
          request.selector = (c % 2 == 0) ? "VVQQ" : "VRGQ";
          request.nm = 1 + (i % 2);
          std::map<std::string, JsonValue> response;
          if (!client.Call(request, &response, &client_error)) continue;
          if (response.count("ok") == 0) {
            bad_payloads.fetch_add(1);  // torn frame: never acceptable
          } else if (response.at("ok").boolean) {
            ok_calls.fetch_add(1);
          }
        }
      });
    }
    // Let some traffic land, then shut down underneath the clients. The
    // first round keeps the server up until clients finish so at least one
    // round exercises the pure steady state.
    if (round > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * round));
      server.RequestShutdown();
    }
    for (std::thread& client : clients) client.join();
    server.RequestShutdown();
    server.Join();
    EXPECT_EQ(bad_payloads.load(), 0);
    if (round == 0) {
      EXPECT_GT(ok_calls.load(), 0);
    }
  }
}

TEST(PlanServerStressTest, RemoteAndLocalShutdownRace) {
  // The remote "shutdown" op (handled on a pool thread) and a local
  // RequestShutdown+Join race each other; exactly one wins the CAS and both
  // paths must coexist with the listener/saver teardown.
  for (int round = 0; round < 5; ++round) {
    runner::PartitionCache cache;
    PlanServerOptions options;
    options.threads = 3;
    PlanServer server(&cache, options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    std::thread remote([&] {
      PlanClient client;
      std::string client_error;
      if (!client.Connect("127.0.0.1", server.port(), &client_error)) return;
      PlanRequest request;
      request.op = "shutdown";
      std::map<std::string, JsonValue> response;
      client.Call(request, &response, &client_error);
    });
    server.RequestShutdown();
    server.Join();
    remote.join();
    EXPECT_TRUE(server.shutdown_requested());
  }
}

TEST(PlanServerStressTest, PeriodicSaverShutsDownPromptly) {
  // The saver thread sleeps in long intervals; RequestShutdown must wake it
  // immediately (the notify passes through saver_mu_ — a lost wakeup here
  // would stall Join for the full interval and time this test out).
  const std::string path = testing::TempDir() + "hetpipe_concurrency_saver.bin";
  for (int round = 0; round < 10; ++round) {
    runner::PartitionCache cache;
    PlanServerOptions options;
    options.threads = 2;
    options.cache_path = path;
    options.save_interval_s = 3600.0;  // would dwarf the test timeout if missed
    PlanServer server(&cache, options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;
    const auto begin = std::chrono::steady_clock::now();
    server.RequestShutdown();
    server.Join();
    const auto elapsed = std::chrono::steady_clock::now() - begin;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 60);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetpipe::serve
