#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/allocator.h"
#include "hw/cluster.h"

namespace hetpipe::cluster {
namespace {

std::string VwCodes(const hw::Cluster& cluster, const std::vector<int>& vw) {
  std::string codes;
  for (int id : vw) {
    codes.push_back(hw::CodeOf(cluster.gpu(id).type));
  }
  std::sort(codes.begin(), codes.end());
  return codes;
}

void ExpectDisjointCover(const hw::Cluster& cluster, const Allocation& alloc) {
  std::set<int> seen;
  for (const auto& vw : alloc.vw_gpus) {
    for (int id : vw) {
      EXPECT_TRUE(seen.insert(id).second) << "GPU " << id << " assigned twice";
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), cluster.num_gpus());
}

TEST(AllocatorTest, NodePartitionMatchesTable3) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const Allocation alloc = Allocate(cluster, AllocationPolicy::kNodePartition);
  ASSERT_EQ(alloc.num_vws(), 4);
  EXPECT_EQ(VwCodes(cluster, alloc.vw_gpus[0]), "VVVV");
  EXPECT_EQ(VwCodes(cluster, alloc.vw_gpus[1]), "RRRR");
  EXPECT_EQ(VwCodes(cluster, alloc.vw_gpus[2]), "GGGG");
  EXPECT_EQ(VwCodes(cluster, alloc.vw_gpus[3]), "QQQQ");
  ExpectDisjointCover(cluster, alloc);
}

TEST(AllocatorTest, EqualDistributionMatchesTable3) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const Allocation alloc = Allocate(cluster, AllocationPolicy::kEqualDistribution);
  ASSERT_EQ(alloc.num_vws(), 4);
  for (const auto& vw : alloc.vw_gpus) {
    EXPECT_EQ(VwCodes(cluster, vw), "GQRV");  // sorted VRGQ
  }
  ExpectDisjointCover(cluster, alloc);
}

TEST(AllocatorTest, HybridDistributionMatchesTable3) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const Allocation alloc = Allocate(cluster, AllocationPolicy::kHybridDistribution);
  ASSERT_EQ(alloc.num_vws(), 4);
  // Table 3: two VWs of VVQQ and two of RRGG.
  int vvqq = 0;
  int rrgg = 0;
  for (const auto& vw : alloc.vw_gpus) {
    const std::string codes = VwCodes(cluster, vw);
    vvqq += (codes == "QQVV");
    rrgg += (codes == "GGRR");
  }
  EXPECT_EQ(vvqq, 2);
  EXPECT_EQ(rrgg, 2);
  ExpectDisjointCover(cluster, alloc);
}

TEST(AllocatorTest, HdRequiresFourByFour) {
  const hw::Cluster small = hw::Cluster::PaperSubset("VR");
  EXPECT_THROW(Allocate(small, AllocationPolicy::kHybridDistribution), std::invalid_argument);
}

TEST(AllocatorTest, EdOnSubsets) {
  const hw::Cluster cluster = hw::Cluster::PaperSubset("VRQ");
  const Allocation alloc = Allocate(cluster, AllocationPolicy::kEqualDistribution);
  ASSERT_EQ(alloc.num_vws(), 4);
  for (const auto& vw : alloc.vw_gpus) {
    ASSERT_EQ(vw.size(), 3u);  // one GPU per node
    EXPECT_EQ(VwCodes(cluster, vw), "QRV");
  }
}

TEST(AllocatorTest, NpOnSingleNode) {
  const hw::Cluster cluster = hw::Cluster::PaperSubset("V");
  const Allocation alloc = Allocate(cluster, AllocationPolicy::kNodePartition);
  ASSERT_EQ(alloc.num_vws(), 1);
  EXPECT_EQ(alloc.vw_gpus[0].size(), 4u);
}

TEST(AllocatorTest, ComputeRankOrdering) {
  // §8.1: V > R > G > Q in compute power.
  EXPECT_LT(ComputeRank(hw::GpuType::kTitanV), ComputeRank(hw::GpuType::kTitanRtx));
  EXPECT_LT(ComputeRank(hw::GpuType::kTitanRtx), ComputeRank(hw::GpuType::kRtx2060));
  EXPECT_LT(ComputeRank(hw::GpuType::kRtx2060), ComputeRank(hw::GpuType::kQuadroP4000));
}

TEST(AllocatorTest, ToStringContainsPolicyAndCodes) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const Allocation alloc = Allocate(cluster, AllocationPolicy::kEqualDistribution);
  const std::string s = alloc.ToString(cluster);
  EXPECT_NE(s.find("ED"), std::string::npos);
  EXPECT_NE(s.find("VRGQ"), std::string::npos);
}

TEST(AllocatorTest, PolicyNames) {
  EXPECT_STREQ(PolicyName(AllocationPolicy::kNodePartition), "NP");
  EXPECT_STREQ(PolicyName(AllocationPolicy::kEqualDistribution), "ED");
  EXPECT_STREQ(PolicyName(AllocationPolicy::kHybridDistribution), "HD");
}

}  // namespace
}  // namespace hetpipe::cluster
