#include <gtest/gtest.h>

#include <string>

#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "model/profiler.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "sim/simulator.h"
#include "wsp/clock.h"
#include "wsp/param_server.h"
#include "wsp/staleness.h"
#include "wsp/sync_policy.h"

namespace hetpipe::wsp {
namespace {

TEST(VectorClockTest, GlobalIsMinimum) {
  VectorClock clocks(3);
  EXPECT_EQ(clocks.Global(), -1);
  clocks.Advance(0, 5);
  clocks.Advance(1, 3);
  EXPECT_EQ(clocks.Global(), -1);  // worker 2 has not pushed
  clocks.Advance(2, 1);
  EXPECT_EQ(clocks.Global(), 1);
  EXPECT_EQ(clocks.Distance(), 4);
}

TEST(VectorClockTest, AdvanceIsMonotonic) {
  VectorClock clocks(2);
  clocks.Advance(0, 2);
  clocks.Advance(0, 2);  // same value is fine
  EXPECT_EQ(clocks.local(0), 2);
}

TEST(SyncPolicyTest, StalenessFormulas) {
  // §4/§5 with Nm=4 (s_local = 3): s_global = (D+1)*4 + 3 - 1.
  EXPECT_EQ(LocalStaleness(4), 3);
  EXPECT_EQ(GlobalStaleness(4, 0), 6);
  EXPECT_EQ(GlobalStaleness(4, 1), 10);
  EXPECT_EQ(GlobalStaleness(1, 0), 0);  // BSP: no staleness at all
  EXPECT_EQ(GlobalStaleness(1, 3), 3);  // SSP with s=3
}

TEST(SyncPolicyTest, RequiredGlobalWaveMatchesPaperExample) {
  // Paper example (§5): D=0, s_local=3 (Nm=4). Minibatch 11 "must have a
  // version of the weights that includes all the global updates from
  // minibatches 1 to 4", i.e. wave 0. Minibatches up to 7 need nothing.
  EXPECT_EQ(RequiredGlobalWave(7, 4, 0), -1);
  EXPECT_EQ(RequiredGlobalWave(8, 4, 0), 0);
  EXPECT_EQ(RequiredGlobalWave(11, 4, 0), 0);
  EXPECT_EQ(RequiredGlobalWave(12, 4, 0), 1);
}

TEST(SyncPolicyTest, Nm1IsClassicSspAndBsp) {
  // Nm=1, D=0: minibatch p needs every global update through p-1 (BSP).
  EXPECT_EQ(RequiredGlobalWave(2, 1, 0), 0);
  EXPECT_EQ(RequiredGlobalWave(5, 1, 0), 3);
  // Nm=1, D=s: SSP staleness window.
  EXPECT_EQ(RequiredGlobalWave(5, 1, 2), 1);
  EXPECT_EQ(RequiredGlobalWave(3, 1, 2), -1);
}

TEST(SyncPolicyTest, LargerDRequiresLess) {
  for (int64_t p = 1; p <= 40; ++p) {
    for (int nm : {1, 2, 4}) {
      EXPECT_LE(RequiredGlobalWave(p, nm, 2), RequiredGlobalWave(p, nm, 1));
      EXPECT_LE(RequiredGlobalWave(p, nm, 1), RequiredGlobalWave(p, nm, 0));
    }
  }
}

TEST(SyncPolicyTest, ToString) {
  EXPECT_EQ(SyncPolicy::Wsp(4).ToString(), "WSP(D=4)");
  EXPECT_EQ(SyncPolicy::Asp().ToString(), "ASP");
}

TEST(StalenessTest, Lemma1Bounds) {
  // Lemma 1: |R_t| + |Q_t| <= (2*sg + sl)(N-1).
  EXPECT_EQ(Lemma1CardinalityBound(6, 4, 4), (2 * 6 + 4) * 3);
  EXPECT_EQ(Lemma1CardinalityBound(0, 1, 1), 0);
  // min(R_t u Q_t) >= max(1, t - (sg + sl) N).
  EXPECT_EQ(Lemma1MinIndexBound(5, 6, 4, 4), 1);
  EXPECT_EQ(Lemma1MinIndexBound(100, 6, 4, 4), 100 - 40);
}

TEST(StalenessTest, Theorem1BoundShrinksWithT) {
  const double b1 = Theorem1RegretBound(1.0, 1.0, 6, 4, 4, 100);
  const double b2 = Theorem1RegretBound(1.0, 1.0, 6, 4, 4, 400);
  EXPECT_NEAR(b1 / b2, 2.0, 1e-9);  // O(1/sqrt(T))
}

TEST(StalenessTest, TrackerDetectsViolation) {
  StalenessTracker tracker(/*nm=*/4, /*d=*/0);  // bound = 6
  tracker.RecordInjection(1, 4);
  EXPECT_TRUE(tracker.WithinBound());
  tracker.RecordInjection(2, 7);
  EXPECT_FALSE(tracker.WithinBound());
  EXPECT_EQ(tracker.worst_observed(), 7);
  EXPECT_EQ(tracker.bound(), 6);
}

// ---- Parameter-server comm-time model. ----

class PsCommTest : public ::testing::Test {
 protected:
  PsCommTest()
      : cluster_(hw::Cluster::Paper()),
        graph_(model::BuildVgg19()),
        profile_(graph_, 32),
        partitioner_(profile_, cluster_) {}

  partition::Partition EdPartition(int nm) {
    partition::PartitionOptions options;
    options.nm = nm;
    return partitioner_.Solve({0, 4, 8, 12}, options);  // one GPU per node
  }

  hw::Cluster cluster_;
  model::ModelGraph graph_;
  model::ModelProfile profile_;
  partition::Partitioner partitioner_;
};

TEST_F(PsCommTest, LocalPlacementIsFasterAndMovesNothingAcrossNodes) {
  const partition::Partition partition = EdPartition(1);
  ASSERT_TRUE(partition.feasible);
  const VwCommTimes local = ComputePsCommTimes(partition, cluster_, PlacementPolicy::kLocal);
  const VwCommTimes rr = ComputePsCommTimes(partition, cluster_, PlacementPolicy::kRoundRobin);
  EXPECT_LT(local.push_s, rr.push_s);
  EXPECT_EQ(CrossNodeSyncBytes(partition, PlacementPolicy::kLocal, cluster_.num_nodes()), 0u);
  EXPECT_GT(CrossNodeSyncBytes(partition, PlacementPolicy::kRoundRobin, cluster_.num_nodes()),
            graph_.total_param_bytes() / 2);
}

TEST_F(PsCommTest, PushPullSymmetric) {
  const partition::Partition partition = EdPartition(1);
  const VwCommTimes t = ComputePsCommTimes(partition, cluster_, PlacementPolicy::kRoundRobin);
  EXPECT_DOUBLE_EQ(t.push_s, t.pull_s);
  EXPECT_GT(t.push_s, 0.0);
}

TEST_F(PsCommTest, RoundRobinRidesTheSlowestResolvedPairLink) {
  // With per-pair links, a node's remote PS bytes funnel over its slowest
  // inter-node link: degrading one pair must slow round-robin push/pull,
  // while a topology-free spec of the same shape stays bit-identical to the
  // shared-link model.
  const char* kBase = "node 1xV; node 1xV; node 1xV; node 1xV";
  const hw::Cluster uniform = hw::ClusterSpec::Parse(kBase).Build();
  const hw::Cluster degraded =
      hw::ClusterSpec::Parse(std::string(kBase) + "; link node0<->node3 gbits 1").Build();

  const model::ModelProfile profile(graph_, 32);
  const partition::Partitioner partitioner(profile, uniform);
  partition::PartitionOptions options;
  options.nm = 1;
  options.search_gpu_orders = false;  // same stage order on both clusters
  const partition::Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  ASSERT_TRUE(partition.feasible);

  const VwCommTimes flat =
      ComputePsCommTimes(partition, uniform, PlacementPolicy::kRoundRobin);
  const VwCommTimes slow =
      ComputePsCommTimes(partition, degraded, PlacementPolicy::kRoundRobin);
  EXPECT_GT(slow.push_s, flat.push_s);
  // Local placement moves nothing across nodes, so the bad cable is free.
  EXPECT_DOUBLE_EQ(ComputePsCommTimes(partition, degraded, PlacementPolicy::kLocal).push_s,
                   ComputePsCommTimes(partition, uniform, PlacementPolicy::kLocal).push_s);
}

// ---- WSP coordinator in a controlled simulation. ----

// A scripted "virtual worker" that completes waves at fixed intervals and
// asks the coordinator before each injection.
struct ScriptedVw {
  ScriptedVw(sim::Simulator& s, WspCoordinator& c, int id, int nm, double wave_period,
             int64_t waves)
      : simulator(&s), coord(&c), vw(id), nm(nm), period(wave_period), total_waves(waves) {}

  void Start() { ScheduleNext(); }

  void ScheduleNext() {
    if (wave >= total_waves) {
      return;
    }
    const int64_t p = wave * nm + 1;  // first minibatch of the wave
    const bool ok = coord->RequestInjection(vw, p, [this] { ScheduleNext(); });
    if (!ok) {
      ++blocked_count;
      return;
    }
    simulator->Schedule(period, [this] {
      coord->OnWaveComplete(vw, wave);
      ++wave;
      ScheduleNext();
    });
  }

  sim::Simulator* simulator;
  WspCoordinator* coord;
  int vw;
  int nm;
  double period;
  int64_t total_waves;
  int64_t wave = 0;
  int blocked_count = 0;
};

TEST(WspCoordinatorTest, GlobalWaveAdvancesOnlyWhenAllPush) {
  sim::Simulator simulator;
  WspCoordinatorOptions options;
  options.num_vws = 2;
  options.nm = 4;
  options.policy = SyncPolicy::Wsp(0);
  std::vector<VwCommTimes> comm(2);  // zero-cost comm
  WspCoordinator coordinator(simulator, options, comm);

  coordinator.OnWaveComplete(0, 0);
  simulator.Run();
  EXPECT_EQ(coordinator.global_wave(), -1);
  coordinator.OnWaveComplete(1, 0);
  simulator.Run();
  EXPECT_EQ(coordinator.global_wave(), 0);
}

TEST(WspCoordinatorTest, SlowWorkerThrottlesFastOneAtD0) {
  sim::Simulator simulator;
  WspCoordinatorOptions options;
  options.num_vws = 2;
  options.nm = 2;
  options.policy = SyncPolicy::Wsp(0);
  std::vector<VwCommTimes> comm(2);
  WspCoordinator coordinator(simulator, options, comm);

  ScriptedVw fast(simulator, coordinator, 0, 2, 1.0, 20);
  ScriptedVw slow(simulator, coordinator, 1, 2, 3.0, 20);
  fast.Start();
  slow.Start();
  simulator.Run();
  EXPECT_EQ(fast.wave, 20);
  EXPECT_EQ(slow.wave, 20);
  EXPECT_GT(fast.blocked_count, 0);       // the fast VW had to wait
  EXPECT_EQ(slow.blocked_count, 0);       // the slow one never does
  EXPECT_GE(coordinator.clock_distance().max(), 1.0);
}

TEST(WspCoordinatorTest, LargerDReducesBlocking) {
  int blocked_d0 = 0;
  int blocked_d4 = 0;
  for (int d : {0, 4}) {
    sim::Simulator simulator;
    WspCoordinatorOptions options;
    options.num_vws = 2;
    options.nm = 2;
    options.policy = SyncPolicy::Wsp(d);
    std::vector<VwCommTimes> comm(2);
    WspCoordinator coordinator(simulator, options, comm);
    ScriptedVw fast(simulator, coordinator, 0, 2, 1.0, 30);
    ScriptedVw slow(simulator, coordinator, 1, 2, 1.5, 30);
    fast.Start();
    slow.Start();
    simulator.Run();
    if (d == 0) {
      blocked_d0 = fast.blocked_count;
    } else {
      blocked_d4 = fast.blocked_count;
    }
  }
  EXPECT_LT(blocked_d4, blocked_d0);
}

TEST(WspCoordinatorTest, AspNeverBlocks) {
  sim::Simulator simulator;
  WspCoordinatorOptions options;
  options.num_vws = 2;
  options.nm = 2;
  options.policy = SyncPolicy::Asp();
  std::vector<VwCommTimes> comm(2);
  WspCoordinator coordinator(simulator, options, comm);
  ScriptedVw fast(simulator, coordinator, 0, 2, 1.0, 25);
  ScriptedVw slow(simulator, coordinator, 1, 2, 10.0, 25);
  fast.Start();
  slow.Start();
  simulator.Run();
  EXPECT_EQ(fast.blocked_count, 0);
  EXPECT_EQ(slow.blocked_count, 0);
}

TEST(WspCoordinatorTest, PullLatencyDelaysResume) {
  sim::Simulator simulator;
  WspCoordinatorOptions options;
  options.num_vws = 2;
  options.nm = 1;  // BSP-style for a crisp timing check
  options.policy = SyncPolicy::Wsp(0);
  std::vector<VwCommTimes> comm(2);
  comm[0].pull_s = 0.5;
  comm[1].pull_s = 0.5;
  WspCoordinator coordinator(simulator, options, comm);

  // Worker 0 finishes wave 0 at t=0 and immediately wants minibatch 2 (which
  // requires global wave 0); worker 1 pushes wave 0 at t=2.
  bool resumed = false;
  double resume_time = -1.0;
  coordinator.OnWaveComplete(0, 0);
  simulator.Schedule(0.0, [&] {
    if (!coordinator.RequestInjection(0, 2, [&] {
          resumed = true;
          resume_time = simulator.now();
        })) {
      // blocked as expected
    } else {
      resumed = true;
      resume_time = simulator.now();
    }
  });
  simulator.Schedule(2.0, [&] { coordinator.OnWaveComplete(1, 0); });
  simulator.Run();
  ASSERT_TRUE(resumed);
  // Global wave completes at t=2, pull takes 0.5.
  EXPECT_NEAR(resume_time, 2.5, 1e-9);
}

}  // namespace
}  // namespace hetpipe::wsp
