// End-to-end checks that the reproduced system exhibits the paper's headline
// qualitative results (§8).
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/hetpipe.h"
#include "dp/horovod.h"
#include "model/resnet.h"
#include "model/vgg.h"

namespace hetpipe::core {
namespace {

HetPipeConfig EdLocal(int d, double jitter) {
  HetPipeConfig config;
  config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  config.placement = wsp::PlacementPolicy::kLocal;
  config.sync = wsp::SyncPolicy::Wsp(d);
  config.jitter_cv = jitter;
  config.waves = 30;
  return config;
}

TEST(IntegrationTest, EdLocalBeatsNpForResNet) {
  // Fig. 4a: NP is bound by the GGGG virtual worker; ED with local placement
  // is the best HetPipe configuration.
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  HetPipeConfig np = EdLocal(0, 0.0);
  np.allocation = cluster::AllocationPolicy::kNodePartition;
  np.placement = wsp::PlacementPolicy::kRoundRobin;
  const double np_thr = HetPipe(cluster, graph, np).Run().throughput_img_s;
  const double ed_thr = HetPipe(cluster, graph, EdLocal(0, 0.0)).Run().throughput_img_s;
  EXPECT_GT(ed_thr, np_thr);
}

TEST(IntegrationTest, EdLocalBeatsHorovodOnBothModels) {
  // §8.3: ED-local is 1.8x Horovod for VGG-19 and ~1.4x for ResNet-152.
  const hw::Cluster cluster = hw::Cluster::Paper();
  for (const bool vgg : {true, false}) {
    const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();
    const model::ModelProfile profile(graph, 32);
    const dp::HorovodResult horovod = dp::SimulateHorovod(cluster, profile);
    const double hetpipe = HetPipe(cluster, graph, EdLocal(0, 0.0)).Run().throughput_img_s;
    EXPECT_GT(hetpipe, horovod.throughput_img_s) << graph.name();
  }
}

TEST(IntegrationTest, VggSpeedupOverHorovodRoughly1_8x) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const dp::HorovodResult horovod = dp::SimulateHorovod(cluster, profile);
  const double hetpipe = HetPipe(cluster, graph, EdLocal(0, 0.0)).Run().throughput_img_s;
  const double ratio = hetpipe / horovod.throughput_img_s;
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 2.6);
}

TEST(IntegrationTest, Table4AddingWhimpyGpusHelpsHetPipe) {
  // Table 4: HetPipe throughput rises as V -> VR -> VRQ -> VRQG GPUs are
  // added, even though the added GPUs get progressively whimpier. For the
  // comm-heavy VGG-19 the paper's own gain on the last (G) step is only ~6%,
  // so the strict monotone check runs on ResNet-152 and VGG-19 tolerates a
  // flat last step.
  const auto resnet = RunTable4(model::BuildResNet152(), /*jitter_cv=*/0.0);
  ASSERT_EQ(resnet.size(), 4u);
  for (size_t i = 1; i < resnet.size(); ++i) {
    EXPECT_GT(resnet[i].hetpipe_img_s, resnet[i - 1].hetpipe_img_s)
        << resnet[i].cluster_label;
  }
  const auto vgg = RunTable4(model::BuildVgg19(), /*jitter_cv=*/0.0);
  ASSERT_EQ(vgg.size(), 4u);
  // VGG-19 is communication-bound: once the first conv block is the
  // bottleneck stage, extra whimpy GPUs keep throughput flat rather than
  // raising it (the paper's own VRQ->VRQG step is only +6%).
  EXPECT_GT(vgg[1].hetpipe_img_s, vgg[0].hetpipe_img_s);
  EXPECT_GT(vgg[2].hetpipe_img_s, vgg[1].hetpipe_img_s * 0.98);
  EXPECT_GT(vgg[3].hetpipe_img_s, vgg[2].hetpipe_img_s * 0.95);
  // Overall, 16 heterogeneous GPUs dwarf 4 good ones (the paper's 2x+ claim).
  EXPECT_GT(vgg[3].hetpipe_img_s, vgg[0].hetpipe_img_s * 1.5);
}

TEST(IntegrationTest, Table4HorovodInfeasibleForResNetOn16) {
  const auto cells = RunTable4(model::BuildResNet152(), /*jitter_cv=*/0.0);
  ASSERT_EQ(cells.size(), 4u);
  // The 16-GPU configuration includes the G node whose GPUs cannot hold
  // ResNet-152 — the paper reports "X" for Horovod there.
  EXPECT_FALSE(cells[3].horovod_feasible);
  EXPECT_TRUE(cells[0].horovod_feasible);
  // HetPipe runs everywhere.
  for (const auto& cell : cells) {
    EXPECT_GT(cell.hetpipe_img_s, 0.0);
  }
}

TEST(IntegrationTest, Fig3ThroughputSaturatesWithNm) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const auto points = RunFig3Config(cluster, graph, "VVVV", 4);
  ASSERT_EQ(points.size(), 4u);
  for (size_t i = 1; i < points.size(); ++i) {
    if (points[i].feasible && points[i - 1].feasible) {
      EXPECT_GE(points[i].normalized, points[i - 1].normalized * 0.98);
    }
  }
  // Pipelining must provide a real speedup by Nm=4.
  ASSERT_TRUE(points[3].feasible);
  EXPECT_GT(points[3].normalized, 1.8);
}

TEST(IntegrationTest, HigherDReducesWaitTime) {
  // §8.4: "as D increases, the waiting time of a virtual worker to receive
  // the updated global weight decreases."
  const model::ModelGraph graph = model::BuildVgg19();
  const auto rows = RunStalenessWaitStudy(graph, {0, 4}, /*jitter_cv=*/0.15);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_LT(rows[1].total_wait_s, rows[0].total_wait_s);
}

TEST(IntegrationTest, IdleIsSmallFractionOfWait) {
  // §8.4: actual idle time is only ~18% of waiting time, because the pipeline
  // keeps processing already-injected minibatches while blocked.
  const model::ModelGraph graph = model::BuildVgg19();
  const auto rows = RunStalenessWaitStudy(graph, {0}, /*jitter_cv=*/0.15);
  ASSERT_EQ(rows.size(), 1u);
  if (rows[0].total_wait_s > 0.0) {
    // Strictly less than 1: the pipeline keeps draining injected minibatches
    // while blocked, so real idle time is a fraction of wait time.
    EXPECT_LT(rows[0].idle_fraction_of_wait, 0.95);
  }
}

TEST(IntegrationTest, Fig6OrderingOfConvergenceTimes) {
  // Fig. 6: every HetPipe configuration converges well before Horovod; D=4
  // trades extra staleness for less synchronization stall and lands near
  // D=0 (the paper's real-cluster variance made D=4 a clear win; our
  // simulated ED-local VWs are more homogeneous, so the two are close);
  // D=32 is never better than D=4.
  const auto series = RunFig6(/*jitter_cv=*/0.15, /*target=*/0.67);
  ASSERT_EQ(series.size(), 4u);  // Horovod, D=0, D=4, D=32
  const double horovod = series[0].hours_to_target;
  const double d0 = series[1].hours_to_target;
  const double d4 = series[2].hours_to_target;
  const double d32 = series[3].hours_to_target;
  EXPECT_LT(d0, horovod * 0.8);
  EXPECT_LT(d4, horovod * 0.8);
  EXPECT_LE(d4, d0 * 1.08);
  EXPECT_GE(d32, d4 * 0.999);
  // Throughput itself is ordered by D (less stalling).
  EXPECT_GT(series[2].throughput_img_s, series[1].throughput_img_s);
}

TEST(IntegrationTest, Fig5HetPipeConvergesFasterThanHorovod) {
  const auto series = RunFig5(/*jitter_cv=*/0.15, /*target=*/0.74);
  ASSERT_EQ(series.size(), 3u);  // Horovod-12, HetPipe-12, HetPipe-16
  EXPECT_LT(series[1].hours_to_target, series[0].hours_to_target);
  // Adding the whimpy G GPUs speeds convergence further (the 39% claim).
  EXPECT_LT(series[2].hours_to_target, series[1].hours_to_target);
}

}  // namespace
}  // namespace hetpipe::core
