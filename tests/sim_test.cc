#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace hetpipe::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(3.0, [&] { order.push_back(3); });
  q.Push(1.0, [&] { order.push_back(1); });
  q.Push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, BreaksTiesByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().action();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, SizeTracksPushPop) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.Push(1.0, [] {});
  q.Push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(SimulatorTest, AdvancesTimeToEventTimestamps) {
  Simulator sim;
  std::vector<double> seen;
  sim.Schedule(1.5, [&] { seen.push_back(sim.now()); });
  sim.Schedule(0.5, [&] { seen.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 0.5);
  EXPECT_DOUBLE_EQ(seen[1], 1.5);
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Schedule(1.0, [&] {
      ++fired;
      EXPECT_DOUBLE_EQ(sim.now(), 2.0);
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.events_processed(), 2u);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] { ++fired; });
  sim.Schedule(5.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventAtExactDeadlineFires) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(2.0, [&] { ++fired; });
  sim.RunUntil(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenQueueDrainsEarly) {
  // Regression: the queue draining before the deadline used to leave now()
  // at the last event, so a later RunUntil with an earlier-than-last-deadline
  // window observed a non-monotone clock and relative Schedule() calls were
  // anchored at the stale time.
  Simulator sim;
  sim.Schedule(1.0, [] {});
  sim.RunUntil(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);  // not 1.0: the interval to 5.0 elapsed

  // Back-to-back windows see a monotone clock even with nothing queued.
  sim.RunUntil(7.0);
  EXPECT_DOUBLE_EQ(sim.now(), 7.0);

  // Relative scheduling after a drained window anchors at the deadline.
  double fired_at = -1.0;
  sim.Schedule(1.0, [&] { fired_at = sim.now(); });
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(fired_at, 8.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);

  // Run() (infinite deadline) still leaves the clock at the last event.
  Simulator open_ended;
  open_ended.Schedule(3.0, [] {});
  open_ended.Run();
  EXPECT_DOUBLE_EQ(open_ended.now(), 3.0);

  // A Stop() inside the window leaves the clock at the stopping event.
  Simulator stopped;
  stopped.Schedule(1.0, [&] { stopped.Stop(); });
  stopped.RunUntil(9.0);
  EXPECT_DOUBLE_EQ(stopped.now(), 1.0);
}

TEST(SimulatorTest, StopHaltsDispatch) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1.0, [&] {
    ++fired;
    sim.Stop();
  });
  sim.Schedule(2.0, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  double at = -1.0;
  sim.Schedule(1.0, [&] { sim.Schedule(-5.0, [&] { at = sim.now(); }); });
  sim.Run();
  EXPECT_DOUBLE_EQ(at, 1.0);
}

TEST(AccumulatorTest, BasicMoments) {
  Accumulator acc;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    acc.Add(v);
  }
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(AccumulatorTest, EmptyIsSafe) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stddev(), 0.0);
}

TEST(AccumulatorTest, SingleSampleHasZeroVariance) {
  Accumulator acc;
  acc.Add(7.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 7.0);
}

TEST(BusyTrackerTest, UtilizationWithinWindow) {
  BusyTracker tracker;
  tracker.AddBusy(0.0, 1.0);
  tracker.AddBusy(2.0, 3.0);
  EXPECT_DOUBLE_EQ(tracker.busy_time(), 2.0);
  EXPECT_DOUBLE_EQ(tracker.Utilization(0.0, 4.0), 0.5);
  // Partial overlap with the window.
  EXPECT_DOUBLE_EQ(tracker.Utilization(0.5, 2.5), 0.5);
}

TEST(BusyTrackerTest, IgnoresEmptyIntervalsAndEmptyWindows) {
  BusyTracker tracker;
  tracker.AddBusy(1.0, 1.0);
  tracker.AddBusy(2.0, 1.0);  // end < start: ignored
  EXPECT_DOUBLE_EQ(tracker.busy_time(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.Utilization(5.0, 5.0), 0.0);
}

TEST(TimeSeriesTest, InterpolatesLinearly) {
  TimeSeries series;
  series.Add(0.0, 0.0);
  series.Add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(5.0), 0.5);
  EXPECT_DOUBLE_EQ(series.ValueAt(-1.0), 0.0);  // clamps
  EXPECT_DOUBLE_EQ(series.ValueAt(99.0), 1.0);  // clamps
}

TEST(TimeSeriesTest, FirstTimeAtLeastInterpolatesCrossing) {
  TimeSeries series;
  series.Add(0.0, 0.0);
  series.Add(2.0, 0.4);
  series.Add(4.0, 0.8);
  EXPECT_NEAR(series.FirstTimeAtLeast(0.6), 3.0, 1e-12);
  EXPECT_TRUE(std::isinf(series.FirstTimeAtLeast(0.9)));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextU64() == b.NextU64());
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    acc.Add(rng.Normal());
  }
  EXPECT_NEAR(acc.mean(), 0.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(v.data(), v.size());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(SplitMixTest, KnownNonZeroStream) {
  SplitMix64 sm(0);
  uint64_t prev = sm.Next();
  for (int i = 0; i < 10; ++i) {
    const uint64_t next = sm.Next();
    EXPECT_NE(next, prev);
    prev = next;
  }
}

}  // namespace
}  // namespace hetpipe::sim
