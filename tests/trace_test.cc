#include <gtest/gtest.h>

#include <sstream>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "partition/partitioner.h"
#include "pipeline/trace_check.h"
#include "pipeline/virtual_worker.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace hetpipe {
namespace {

TEST(TracerTest, ChromeJsonContainsEvents) {
  sim::Tracer tracer;
  tracer.Add({"FW(M1,P1)", "forward", 0, 0.0, 1.0});
  tracer.Add({"BW(M1,P1)", "backward", 0, 2.0, 3.5});
  std::ostringstream os;
  tracer.ExportChromeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("FW(M1,P1)"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.5e+06"), std::string::npos);
}

TEST(TracerTest, AsciiGanttMarksLanes) {
  sim::Tracer tracer;
  tracer.Add({"FW(M1,P1)", "forward", 0, 0.0, 5.0});
  tracer.Add({"BW(M1,P2)", "backward", 1, 5.0, 10.0});
  const std::string chart = tracer.AsciiGantt(0.0, 10.0, 10, {"G1", "G2"});
  // Lane 0: F in the first half; lane 1: B in the second half.
  EXPECT_NE(chart.find("G1 FFFFF....."), std::string::npos);
  EXPECT_NE(chart.find("G2 .....BBBBB"), std::string::npos);
}

TEST(TraceCheckTest, ParsesTaskNames) {
  const auto fw = pipeline::ParseTaskEvent("FW(M12,P3)");
  ASSERT_TRUE(fw.has_value());
  EXPECT_EQ(fw->kind, pipeline::TaskKind::kForward);
  EXPECT_EQ(fw->minibatch, 12);
  EXPECT_EQ(fw->stage, 2);
  const auto fused = pipeline::ParseTaskEvent("FWBW(M2,P4)");
  ASSERT_TRUE(fused.has_value());
  EXPECT_EQ(fused->kind, pipeline::TaskKind::kForwardBackward);
  EXPECT_FALSE(pipeline::ParseTaskEvent("recv FW(M1,P2)").has_value());
  EXPECT_FALSE(pipeline::ParseTaskEvent("push").has_value());
}

TEST(TraceCheckTest, DetectsOrderViolation) {
  std::vector<sim::TraceEvent> events = {
      {"FW(M2,P1)", "forward", 0, 0.0, 1.0},
      {"FW(M1,P1)", "forward", 0, 1.0, 2.0},
  };
  const auto result = pipeline::ValidatePipelineTrace(events, 1, 4);
  EXPECT_FALSE(result.ok);
}

TEST(TraceCheckTest, DetectsOverlap) {
  std::vector<sim::TraceEvent> events = {
      {"FW(M1,P1)", "forward", 0, 0.0, 2.0},
      {"BW(M1,P1)", "backward", 0, 1.0, 3.0},
  };
  const auto result = pipeline::ValidatePipelineTrace(events, 1, 4);
  EXPECT_FALSE(result.ok);
}

TEST(TraceCheckTest, DetectsCausalityViolation) {
  std::vector<sim::TraceEvent> events = {
      // FW at stage 2 before its stage-1 forward finished.
      {"FW(M1,P1)", "forward", 0, 0.0, 2.0},
      {"FW(M1,P2)", "forward", 1, 1.0, 3.0},
  };
  const auto result = pipeline::ValidatePipelineTrace(events, 2, 4);
  EXPECT_FALSE(result.ok);
}

// The real check: every traced pipeline execution satisfies all five rules.
class TracedPipelineTest : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(TracedPipelineTest, SatisfiesSchedulingRules) {
  const auto [nm, jitter] = GetParam();
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = nm;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  ASSERT_TRUE(partition.feasible);

  sim::Tracer tracer;
  sim::Simulator simulator;
  pipeline::OpenGate gate;
  pipeline::VirtualWorkerOptions vopt;
  vopt.nm = nm;
  vopt.jitter_cv = jitter;
  vopt.seed = 31337;
  vopt.max_minibatches = 12 * nm;
  vopt.tracer = &tracer;
  pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
  vw.Start();
  simulator.Run();

  ASSERT_FALSE(tracer.empty());
  const auto result = pipeline::ValidatePipelineTrace(tracer.events(), 4, nm);
  EXPECT_TRUE(result.ok) << (result.violations.empty() ? "" : result.violations.front());
}

INSTANTIATE_TEST_SUITE_P(Sweep, TracedPipelineTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(0.0, 0.3)),
                         [](const auto& info) {
                           return "Nm" + std::to_string(std::get<0>(info.param)) +
                                  (std::get<1>(info.param) > 0 ? "_jitter" : "_clean");
                         });

TEST(TracedPipelineTest, GanttLooksLikeFig1) {
  // Fig. 1 shape: at Nm=4 the first stage front-loads four forward passes
  // before its first backward pass.
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 4;
  const partition::Partition partition = partitioner.Solve({0, 1, 2, 3}, options);
  ASSERT_TRUE(partition.feasible);

  sim::Tracer tracer;
  sim::Simulator simulator;
  pipeline::OpenGate gate;
  pipeline::VirtualWorkerOptions vopt;
  vopt.nm = 4;
  vopt.max_minibatches = 16;
  vopt.tracer = &tracer;
  pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
  vw.Start();
  simulator.Run();

  int fw_before_first_bw = 0;
  bool saw_bw = false;
  for (const auto& e : tracer.events()) {
    const auto task = pipeline::ParseTaskEvent(e.name);
    if (!task.has_value() || task->stage != 0) {
      continue;
    }
    if (task->kind == pipeline::TaskKind::kForward && !saw_bw) {
      ++fw_before_first_bw;
    }
    if (task->kind == pipeline::TaskKind::kBackward) {
      saw_bw = true;
    }
  }
  EXPECT_EQ(fw_before_first_bw, 4);  // M1..M4 forwards run before BW(M1)
}

}  // namespace
}  // namespace hetpipe
