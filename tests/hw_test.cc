#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "hw/gpu_spec.h"
#include "hw/link.h"

namespace hetpipe::hw {
namespace {

TEST(GpuSpecTest, Table1Values) {
  const GpuSpec& v = SpecOf(GpuType::kTitanV);
  EXPECT_STREQ(v.name, "TITAN V");
  EXPECT_EQ(v.cuda_cores, 5120);
  EXPECT_EQ(v.boost_clock_mhz, 1455);
  EXPECT_DOUBLE_EQ(v.memory_gib, 12.0);
  EXPECT_DOUBLE_EQ(v.memory_bw_gbps, 653.0);

  const GpuSpec& r = SpecOf(GpuType::kTitanRtx);
  EXPECT_EQ(r.cuda_cores, 4608);
  EXPECT_DOUBLE_EQ(r.memory_gib, 24.0);

  const GpuSpec& g = SpecOf(GpuType::kRtx2060);
  EXPECT_EQ(g.cuda_cores, 1920);
  EXPECT_DOUBLE_EQ(g.memory_gib, 6.0);

  const GpuSpec& q = SpecOf(GpuType::kQuadroP4000);
  EXPECT_EQ(q.cuda_cores, 1792);
  EXPECT_DOUBLE_EQ(q.memory_gib, 8.0);
  EXPECT_DOUBLE_EQ(q.memory_bw_gbps, 243.0);
}

TEST(GpuSpecTest, CodesRoundTrip) {
  for (const GpuSpec& spec : AllGpuSpecs()) {
    EXPECT_EQ(TypeFromCode(spec.code), spec.type);
    EXPECT_EQ(CodeOf(spec.type), spec.code);
  }
}

TEST(GpuSpecTest, ParseGpuCodes) {
  const auto types = ParseGpuCodes("VRGQ");
  ASSERT_EQ(types.size(), 4u);
  EXPECT_EQ(types[0], GpuType::kTitanV);
  EXPECT_EQ(types[1], GpuType::kTitanRtx);
  EXPECT_EQ(types[2], GpuType::kRtx2060);
  EXPECT_EQ(types[3], GpuType::kQuadroP4000);
  EXPECT_EQ(GpuCodes(types), "VRGQ");
}

TEST(GpuSpecTest, UnknownCodeThrows) {
  EXPECT_THROW(TypeFromCode('X'), std::invalid_argument);
  EXPECT_THROW(ParseGpuCodes("VZ"), std::invalid_argument);
}

TEST(GpuSpecTest, MemoryBytes) {
  EXPECT_EQ(MemoryBytes(GpuType::kRtx2060), 6ULL << 30);
  EXPECT_EQ(MemoryBytes(GpuType::kTitanRtx), 24ULL << 30);
}

TEST(LinkTest, PcieTransferScalesWithBytes) {
  const PcieLink link;
  EXPECT_DOUBLE_EQ(link.TransferTime(0), 0.0);
  const double t1 = link.TransferTime(1 << 20);
  const double t2 = link.TransferTime(2 << 20);
  EXPECT_GT(t2, t1);
  // Effective bandwidth is the scaled-down peak.
  EXPECT_NEAR(link.EffectiveBandwidth(), 15.75e9 * PcieLink::kDefaultScaling, 1.0);
}

TEST(LinkTest, InfinibandSlowerThanPcie) {
  const PcieLink pcie;
  const InfinibandLink ib;
  const uint64_t bytes = 100ULL << 20;
  EXPECT_GT(ib.TransferTime(bytes), pcie.TransferTime(bytes));
}

TEST(LinkTest, InfinibandLinearModel) {
  const InfinibandLink ib;
  const double t1 = ib.TransferTime(10 << 20);
  const double t2 = ib.TransferTime(20 << 20);
  // Linear: doubling payload roughly doubles the bandwidth term.
  const double slope1 = t1 - InfinibandLink::kDefaultIntercept;
  const double slope2 = t2 - InfinibandLink::kDefaultIntercept;
  EXPECT_NEAR(slope2 / slope1, 2.0, 1e-9);
}

TEST(ClusterTest, PaperClusterShape) {
  const Cluster cluster = Cluster::Paper();
  EXPECT_EQ(cluster.num_nodes(), 4);
  EXPECT_EQ(cluster.gpus_per_node(), 4);
  EXPECT_EQ(cluster.num_gpus(), 16);
  EXPECT_EQ(cluster.NodeType(0), GpuType::kTitanV);
  EXPECT_EQ(cluster.NodeType(1), GpuType::kTitanRtx);
  EXPECT_EQ(cluster.NodeType(2), GpuType::kRtx2060);
  EXPECT_EQ(cluster.NodeType(3), GpuType::kQuadroP4000);
}

TEST(ClusterTest, GpuIdsAndNodesConsistent) {
  const Cluster cluster = Cluster::Paper();
  for (int id = 0; id < cluster.num_gpus(); ++id) {
    const Gpu& gpu = cluster.gpu(id);
    EXPECT_EQ(gpu.id, id);
    EXPECT_EQ(gpu.node, id / 4);
    EXPECT_EQ(gpu.type, cluster.NodeType(gpu.node));
  }
}

TEST(ClusterTest, GpusOnNode) {
  const Cluster cluster = Cluster::Paper();
  const auto ids = cluster.GpusOnNode(2);
  ASSERT_EQ(ids.size(), 4u);
  for (int id : ids) {
    EXPECT_EQ(cluster.gpu(id).type, GpuType::kRtx2060);
  }
}

TEST(ClusterTest, LinkSelection) {
  const Cluster cluster = Cluster::Paper();
  // Same node -> PCIe (faster); across nodes -> Infiniband.
  const uint64_t bytes = 64ULL << 20;
  const double intra = cluster.LinkBetween(0, 1).TransferTime(bytes);
  const double inter = cluster.LinkBetween(0, 4).TransferTime(bytes);
  EXPECT_LT(intra, inter);
  EXPECT_TRUE(cluster.SameNode(0, 3));
  EXPECT_FALSE(cluster.SameNode(3, 4));
}

TEST(ClusterTest, PaperSubset) {
  const Cluster cluster = Cluster::PaperSubset("VR");
  EXPECT_EQ(cluster.num_gpus(), 8);
  EXPECT_EQ(cluster.num_nodes(), 2);
  EXPECT_EQ(cluster.NodeType(1), GpuType::kTitanRtx);
}

TEST(ClusterTest, ToStringMentionsLayout) {
  const Cluster cluster = Cluster::PaperSubset("VG");
  const std::string s = cluster.ToString();
  EXPECT_NE(s.find("VVVV"), std::string::npos);
  EXPECT_NE(s.find("GGGG"), std::string::npos);
}

}  // namespace
}  // namespace hetpipe::hw
