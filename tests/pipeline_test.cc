#include <gtest/gtest.h>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "pipeline/schedule.h"
#include "pipeline/task.h"
#include "pipeline/virtual_worker.h"
#include "sim/simulator.h"

namespace hetpipe::pipeline {
namespace {

TEST(TaskTest, Names) {
  EXPECT_STREQ(TaskKindName(TaskKind::kForward), "FW");
  EXPECT_STREQ(TaskKindName(TaskKind::kBackward), "BW");
  Task t{TaskKind::kForward, 3, 1};
  EXPECT_EQ(ToString(t), "FW(M3,P2)");
}

TEST(StageQueueTest, ForwardOrderEnforced) {
  StageQueue q(0);
  // FW of minibatch 2 arrives first; it must not run before FW of 1.
  q.MakeAvailable({TaskKind::kForward, 2, 0});
  EXPECT_FALSE(q.PickNext().has_value());
  q.MakeAvailable({TaskKind::kForward, 1, 0});
  auto t = q.PickNext();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->minibatch, 1);
  t = q.PickNext();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->minibatch, 2);
}

TEST(StageQueueTest, BackwardOrderEnforcedIndependently) {
  StageQueue q(0);
  q.MakeAvailable({TaskKind::kBackward, 2, 0});
  q.MakeAvailable({TaskKind::kForward, 1, 0});
  // BW(2) blocked (BW(1) not done); FW(1) eligible.
  auto t = q.PickNext();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, TaskKind::kForward);
  q.MakeAvailable({TaskKind::kBackward, 1, 0});
  t = q.PickNext();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, TaskKind::kBackward);
  EXPECT_EQ(t->minibatch, 1);
}

TEST(StageQueueTest, FifoAmongEligible) {
  StageQueue q(0);
  q.MakeAvailable({TaskKind::kForward, 1, 0});
  q.MakeAvailable({TaskKind::kBackward, 1, 0});
  // Both eligible; FW(1) arrived first -> FIFO picks it.
  auto t = q.PickNext();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, TaskKind::kForward);
}

TEST(StageQueueTest, FusedTaskAdvancesBothCounters) {
  StageQueue q(3);
  q.MakeAvailable({TaskKind::kForwardBackward, 1, 3});
  auto t = q.PickNext();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(q.next_forward(), 2);
  EXPECT_EQ(q.next_backward(), 2);
}

// Builds a small pipeline fixture over the paper cluster.
class VirtualWorkerTest : public ::testing::Test {
 protected:
  VirtualWorkerTest()
      : cluster_(hw::Cluster::Paper()),
        graph_(model::BuildResNet152()),
        profile_(graph_, 32),
        partitioner_(profile_, cluster_) {}

  partition::Partition MakePartition(const std::vector<int>& gpus, int nm) {
    partition::PartitionOptions options;
    options.nm = nm;
    partition::Partition p = partitioner_.Solve(gpus, options);
    EXPECT_TRUE(p.feasible);
    return p;
  }

  hw::Cluster cluster_;
  model::ModelGraph graph_;
  model::ModelProfile profile_;
  partition::Partitioner partitioner_;
};

TEST_F(VirtualWorkerTest, Nm1IsSequentialExecution) {
  const partition::Partition partition = MakePartition({0, 1, 2, 3}, 1);
  sim::Simulator simulator;
  OpenGate gate;
  VirtualWorkerOptions options;
  options.nm = 1;
  options.max_minibatches = 5;
  VirtualWorkerSim vw(0, simulator, partition, gate, options);
  vw.Start();
  simulator.Run();
  EXPECT_EQ(vw.minibatches_completed(), 5);
  // With Nm=1 each minibatch takes the full round trip: sum of stage times.
  const double expected = 5.0 * partition.sum_time;
  EXPECT_NEAR(vw.last_completion_time(), expected, expected * 0.01);
}

TEST_F(VirtualWorkerTest, ThroughputImprovesWithNm) {
  double prev_time = 1e30;
  for (int nm : {1, 2, 4}) {
    const partition::Partition partition = MakePartition({0, 1, 2, 3}, nm);
    sim::Simulator simulator;
    OpenGate gate;
    VirtualWorkerOptions options;
    options.nm = nm;
    options.max_minibatches = 24;
    VirtualWorkerSim vw(0, simulator, partition, gate, options);
    vw.Start();
    simulator.Run();
    EXPECT_EQ(vw.minibatches_completed(), 24);
    EXPECT_LT(vw.last_completion_time(), prev_time);
    prev_time = vw.last_completion_time();
  }
}

TEST_F(VirtualWorkerTest, CompletionsAreOrdered) {
  const partition::Partition partition = MakePartition({0, 1, 2, 3}, 4);
  sim::Simulator simulator;
  OpenGate gate;
  VirtualWorkerOptions options;
  options.nm = 4;
  options.max_minibatches = 20;
  VirtualWorkerSim vw(0, simulator, partition, gate, options);
  vw.Start();
  simulator.Run();
  const auto& times = vw.completion_times();
  ASSERT_EQ(times.size(), 20u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
  }
}

TEST_F(VirtualWorkerTest, NeverExceedsNmInFlight) {
  // Completion of minibatch p must precede injection of p + Nm; with the
  // FIFO conditions this shows as: completion time of p < completion of p+Nm
  // minus at least the last stage's task time. Indirect check: with Nm=2 and
  // 12 minibatches, the makespan is at least ceil(12/2) * bottleneck.
  const int nm = 2;
  const partition::Partition partition = MakePartition({0, 1, 2, 3}, nm);
  sim::Simulator simulator;
  OpenGate gate;
  VirtualWorkerOptions options;
  options.nm = nm;
  options.max_minibatches = 12;
  VirtualWorkerSim vw(0, simulator, partition, gate, options);
  vw.Start();
  simulator.Run();
  const double lower_bound = 12.0 / nm * partition.bottleneck_time;
  EXPECT_GE(vw.last_completion_time(), lower_bound * 0.99);
}

TEST_F(VirtualWorkerTest, UtilizationRisesWithNm) {
  double util1 = 0.0;
  double util4 = 0.0;
  for (int nm : {1, 4}) {
    const partition::Partition partition = MakePartition({0, 1, 2, 3}, nm);
    sim::Simulator simulator;
    OpenGate gate;
    VirtualWorkerOptions options;
    options.nm = nm;
    options.max_minibatches = 40;
    VirtualWorkerSim vw(0, simulator, partition, gate, options);
    vw.Start();
    simulator.Run();
    const double u = vw.MaxStageUtilization(0.0, simulator.now());
    if (nm == 1) {
      util1 = u;
    } else {
      util4 = u;
    }
  }
  EXPECT_GT(util4, util1);
  EXPECT_LE(util4, 1.0);
}

TEST_F(VirtualWorkerTest, SingleGpuWorkerRuns) {
  const partition::Partition partition = MakePartition({4}, 1);  // one R GPU
  sim::Simulator simulator;
  OpenGate gate;
  VirtualWorkerOptions options;
  options.nm = 1;
  options.max_minibatches = 3;
  VirtualWorkerSim vw(0, simulator, partition, gate, options);
  vw.Start();
  simulator.Run();
  EXPECT_EQ(vw.minibatches_completed(), 3);
  EXPECT_EQ(vw.num_stages(), 1);
}

TEST_F(VirtualWorkerTest, WaveCallbacksFirePerWave) {
  struct CountingGate : public InjectionGate {
    bool RequestInjection(int, int64_t, std::function<void()>) override { return true; }
    void OnWaveComplete(int, int64_t wave) override {
      waves.push_back(wave);
    }
    std::vector<int64_t> waves;
  };
  const int nm = 3;
  const partition::Partition partition = MakePartition({0, 1, 2, 3}, nm);
  sim::Simulator simulator;
  CountingGate gate;
  VirtualWorkerOptions options;
  options.nm = nm;
  options.max_minibatches = 12;
  VirtualWorkerSim vw(0, simulator, partition, gate, options);
  vw.Start();
  simulator.Run();
  EXPECT_EQ(gate.waves, (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST_F(VirtualWorkerTest, JitterKeepsCompletionCount) {
  const partition::Partition partition = MakePartition({0, 1, 2, 3}, 4);
  sim::Simulator simulator;
  OpenGate gate;
  VirtualWorkerOptions options;
  options.nm = 4;
  options.jitter_cv = 0.2;
  options.seed = 99;
  options.max_minibatches = 40;
  VirtualWorkerSim vw(0, simulator, partition, gate, options);
  vw.Start();
  simulator.Run();
  EXPECT_EQ(vw.minibatches_completed(), 40);
}

TEST_F(VirtualWorkerTest, DeterministicAcrossRuns) {
  const partition::Partition partition = MakePartition({0, 4, 8, 12}, 3);
  double first = -1.0;
  for (int run = 0; run < 2; ++run) {
    sim::Simulator simulator;
    OpenGate gate;
    VirtualWorkerOptions options;
    options.nm = 3;
    options.jitter_cv = 0.1;
    options.seed = 7;
    options.max_minibatches = 30;
    VirtualWorkerSim vw(0, simulator, partition, gate, options);
    vw.Start();
    simulator.Run();
    if (run == 0) {
      first = vw.last_completion_time();
    } else {
      EXPECT_DOUBLE_EQ(vw.last_completion_time(), first);
    }
  }
}

}  // namespace
}  // namespace hetpipe::pipeline
