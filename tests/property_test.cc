// Property-style and parameterized sweeps over the system's invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "pipeline/virtual_worker.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "train/regret.h"
#include "train/wsp_trainer.h"
#include "wsp/staleness.h"
#include "wsp/sync_policy.h"

namespace hetpipe {
namespace {

// ---- Partition validity over random synthetic models. ----

model::ModelGraph RandomChainModel(uint64_t seed, int layers) {
  sim::Rng rng(seed);
  std::vector<model::Layer> chain;
  int channels = 32;
  int res = 112;
  for (int i = 0; i < layers; ++i) {
    if (i % 5 == 4 && res > 7) {
      chain.push_back(model::MakePool("pool" + std::to_string(i), channels, res / 2, res / 2));
      res /= 2;
    } else {
      const int cout = channels + static_cast<int>(rng.UniformInt(0, 64));
      chain.push_back(
          model::MakeConv("conv" + std::to_string(i), 3, channels, cout, res, res));
      channels = cout;
    }
  }
  chain.push_back(model::MakeFc("fc", channels * res * res, 100));
  return model::ModelGraph("random-" + std::to_string(seed), model::ModelFamily::kGeneric,
                           std::move(chain));
}

class RandomPartitionTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPartitionTest, SolvedPartitionIsValid) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = RandomChainModel(GetParam(), 18);
  const model::ModelProfile profile(graph, 16);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 2;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  if (!partition.feasible) {
    GTEST_SKIP() << "random model does not fit this VW at nm=2";
  }
  // Contiguous cover.
  int next = 0;
  double max_time = 0.0;
  for (const auto& stage : partition.stages) {
    EXPECT_EQ(stage.first_layer, next);
    EXPECT_LE(stage.first_layer, stage.last_layer);
    EXPECT_LE(stage.memory_bytes, stage.memory_cap);
    max_time = std::max(max_time, stage.TotalTime());
    next = stage.last_layer + 1;
  }
  EXPECT_EQ(next, graph.num_layers());
  EXPECT_DOUBLE_EQ(partition.bottleneck_time, max_time);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPartitionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// ---- Staleness-bound invariants across the (N, Nm, D) grid, on the real
// threaded trainer. ----

class StalenessGridTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(StalenessGridTest, ObservedStalenessWithinWspBound) {
  const auto [workers, nm, d] = GetParam();
  const train::Dataset data = train::MakeLinearRegression(200, 5, 0.05, 77);
  const train::LinearRegressionModel model(5);
  train::TrainerOptions options = train::WspOptions(workers, /*waves=*/40, nm, d);
  options.worker.lr = 0.02;
  options.worker.batch = 4;
  const train::TrainerResult result = train::TrainWsp(model, data, options);
  EXPECT_TRUE(result.staleness_within_bound)
      << "N=" << workers << " nm=" << nm << " d=" << d
      << " worst=" << result.worst_observed_staleness
      << " bound=" << wsp::GlobalStaleness(nm, d);
  EXPECT_EQ(result.total_minibatches, static_cast<int64_t>(workers) * 40 * nm);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StalenessGridTest,
    ::testing::Combine(::testing::Values(2, 4), ::testing::Values(1, 2, 4),
                       ::testing::Values(0, 1, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "_Nm" +
             std::to_string(std::get<1>(info.param)) + "_D" +
             std::to_string(std::get<2>(info.param));
    });

// ---- Pipeline scheduling conditions hold under jitter, for every (k, Nm). ----

class ScheduleConditionTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ScheduleConditionTest, PipelineCompletesInOrder) {
  const auto [k, nm] = GetParam();
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);

  std::vector<int> gpus;
  const int per_node[] = {0, 4, 8, 12};
  for (int i = 0; i < k; ++i) {
    gpus.push_back(per_node[i]);
  }
  partition::PartitionOptions options;
  options.nm = nm;
  const partition::Partition partition = partitioner.Solve(gpus, options);
  if (!partition.feasible) {
    GTEST_SKIP();
  }

  sim::Simulator simulator;
  pipeline::OpenGate gate;
  pipeline::VirtualWorkerOptions vopt;
  vopt.nm = nm;
  vopt.jitter_cv = 0.25;
  vopt.seed = 1234;
  vopt.max_minibatches = 10 * nm;
  pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
  vw.Start();
  simulator.Run();
  // All injected minibatches complete, in order (asserted inside the VW), and
  // the completion timestamps are nondecreasing even with heavy jitter.
  EXPECT_EQ(vw.minibatches_completed(), 10 * nm);
  const auto& times = vw.completion_times();
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i], times[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ScheduleConditionTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Values(1, 2, 4, 6)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "_Nm" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Memory-model monotonicity properties. ----

class MemoryMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(MemoryMonotoneTest, EarlierStagesNeedMoreActivationMemory) {
  const int nm = GetParam();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  // Same layer range, earlier pipeline position -> at least as much memory.
  for (int q = 1; q < 4; ++q) {
    EXPECT_GE(partition::StageMemoryBytes(profile, 10, 20, q - 1, 4, nm),
              partition::StageMemoryBytes(profile, 10, 20, q, 4, nm));
  }
}

INSTANTIATE_TEST_SUITE_P(Nm, MemoryMonotoneTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7));

// ---- Lemma 1 arithmetic across a parameter grid. ----

class Lemma1Test : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Lemma1Test, BoundsAreConsistent) {
  const auto [nm, d, n] = GetParam();
  const int64_t sl = wsp::LocalStaleness(nm) + 1;  // paper's sl = s_local + 1
  const int64_t sg = wsp::GlobalStaleness(nm, d);
  EXPECT_GE(sg, sl - 1);  // global staleness dominates local
  EXPECT_GE(wsp::Lemma1CardinalityBound(sg, sl, n), 0);
  // min-index bound is nondecreasing in t.
  EXPECT_LE(wsp::Lemma1MinIndexBound(10, sg, sl, n), wsp::Lemma1MinIndexBound(11, sg, sl, n));
  // Theorem 1 bound is decreasing in T and increasing in staleness.
  EXPECT_GT(wsp::Theorem1RegretBound(1, 1, sg, sl, n, 100),
            wsp::Theorem1RegretBound(1, 1, sg, sl, n, 1000));
  EXPECT_LE(wsp::Theorem1RegretBound(1, 1, sg, sl, n, 100),
            wsp::Theorem1RegretBound(1, 1, sg + 5, sl, n, 100));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Lemma1Test,
    ::testing::Combine(::testing::Values(1, 2, 4, 7), ::testing::Values(0, 1, 4, 32),
                       ::testing::Values(1, 2, 4, 8)));

}  // namespace
}  // namespace hetpipe
