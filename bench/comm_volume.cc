// Reproduces the §8.3 cross-node data-transfer accounting: VGG-19 over
// Horovod moves ~515 MB across nodes per iteration vs ~103 MB per minibatch
// with ED-local; ResNet-152's ED-local traffic (~298 MB) exceeds Horovod's
// (~211 MB) because of large inter-stage activations.
#include <cstdio>

#include "core/experiment.h"
#include "dp/placement.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"

int main() {
  using namespace hetpipe;
  const hw::Cluster cluster = hw::Cluster::Paper();

  std::printf("Sec 8.3 — cross-node traffic per minibatch (MB)\n\n");
  std::printf("%-12s %14s %18s %18s %18s\n", "model", "Horovod", "ED-local params",
              "ED-local acts", "ED default params");
  for (const bool vgg : {true, false}) {
    const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();
    const model::ModelProfile profile(graph, 32);
    const partition::Partitioner partitioner(profile, cluster);
    partition::PartitionOptions options;
    options.nm = vgg ? 3 : 4;
    const partition::Partition partition =
        partitioner.Solve(core::PickGpusByCode(cluster, "VRGQ"), options);

    const double mb = 1.0 / (1 << 20);
    const double horovod =
        static_cast<double>(dp::HorovodCrossNodeBytes(graph.total_param_bytes(), 16)) * mb;
    const double local_params = static_cast<double>(dp::PsCrossNodeBytesPerMinibatch(
                                    partition, cluster.num_nodes(), true, options.nm)) *
                                mb;
    const double acts =
        static_cast<double>(dp::ActivationCrossNodeBytes(partition, profile)) * mb;
    const double rr_params = static_cast<double>(dp::PsCrossNodeBytesPerMinibatch(
                                 partition, cluster.num_nodes(), false, options.nm)) *
                             mb;
    std::printf("%-12s %14.0f %18.0f %18.0f %18.0f\n", graph.name().c_str(), horovod,
                local_params, acts, rr_params);
  }
  std::printf("\n(paper: VGG-19 Horovod ~515 MB vs ED-local ~103 MB;\n"
              " ResNet-152 ED-local ~298 MB vs Horovod ~211 MB — activations dominate)\n");
  return 0;
}
