// Reproduces the §8.3 cross-node data-transfer accounting: VGG-19 over
// Horovod moves ~515 MB across nodes per iteration vs ~103 MB per minibatch
// with ED-local; ResNet-152's ED-local traffic (~298 MB) exceeds Horovod's
// (~211 MB) because of large inter-stage activations. The partition solves
// run through the sweep runner (and its cache).
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "dp/placement.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "runner/cli.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());
  const hw::Cluster cluster = hw::Cluster::Paper();

  std::vector<core::Experiment> experiments;
  for (const bool vgg : {true, false}) {
    core::Experiment e;
    e.kind = core::ExperimentKind::kPartitionOnly;
    e.model = vgg ? core::ModelKind::kVgg19 : core::ModelKind::kResNet152;
    e.vw_codes = "VRGQ";
    e.config.nm = vgg ? 3 : 4;
    e.simulate = false;  // only the split is needed for the traffic accounting
    experiments.push_back(std::move(e));
  }
  const auto results = sweep.Run(experiments);

  std::printf("Sec 8.3 — cross-node traffic per minibatch (MB)\n\n");
  std::printf("%-12s %14s %18s %18s %18s\n", "model", "Horovod", "ED-local params",
              "ED-local acts", "ED default params");
  for (size_t i = 0; i < experiments.size(); ++i) {
    const core::Experiment& e = experiments[i];
    const partition::Partition& partition = results[i].partition;
    const model::ModelGraph graph = core::BuildModel(e.model);
    const model::ModelProfile profile(graph, e.config.batch_size);

    const double mb = 1.0 / (1 << 20);
    const double horovod =
        static_cast<double>(dp::HorovodCrossNodeBytes(graph.total_param_bytes(), 16)) * mb;
    const double local_params = static_cast<double>(dp::PsCrossNodeBytesPerMinibatch(
                                    partition, cluster.num_nodes(), true, e.config.nm)) *
                                mb;
    const double acts =
        static_cast<double>(dp::ActivationCrossNodeBytes(partition, profile)) * mb;
    const double rr_params = static_cast<double>(dp::PsCrossNodeBytesPerMinibatch(
                                 partition, cluster.num_nodes(), false, e.config.nm)) *
                             mb;
    std::printf("%-12s %14.0f %18.0f %18.0f %18.0f\n", graph.name().c_str(), horovod,
                local_params, acts, rr_params);
  }
  std::printf("\n(paper: VGG-19 Horovod ~515 MB vs ED-local ~103 MB;\n"
              " ResNet-152 ED-local ~298 MB vs Horovod ~211 MB — activations dominate)\n");
  return 0;
}
