// Reproduces Fig. 3: normalized throughput and maximum per-stage GPU
// utilization of a single virtual worker as Nm varies, for the seven GPU
// configurations of Table 3, on ResNet-152 and VGG-19.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>

#include "core/experiment.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "runner/cli.h"

namespace {

void RunModel(const hetpipe::hw::Cluster& cluster, const hetpipe::model::ModelGraph& graph,
              hetpipe::runner::SweepRunner& runner) {
  constexpr int kNmMax = 7;
  const char* configs[] = {"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ", "RRGG"};

  std::printf("\n--- %s (batch 32) ---\n", graph.name().c_str());
  std::printf("%-6s %-10s", "config", "Nm=1 img/s");
  for (int nm = 1; nm <= kNmMax; ++nm) {
    std::printf("  Nm=%d", nm);
  }
  std::printf("   | max GPU util at each Nm\n");

  for (const char* codes : configs) {
    const auto points = hetpipe::core::RunFig3Config(cluster, graph, codes, kNmMax, &runner);
    std::printf("%-6s %-10.0f", codes, points[0].throughput_img_s);
    for (const auto& p : points) {
      if (p.feasible) {
        std::printf("  %4.2f", p.normalized);
      } else {
        std::printf("     -");
      }
    }
    std::printf("   |");
    for (const auto& p : points) {
      if (p.feasible) {
        std::printf(" %3.0f%%", 100.0 * p.max_utilization);
      } else {
        std::printf("    -");
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  hetpipe::runner::BenchArgs args = hetpipe::runner::BenchArgs::Parse(argc, argv);
  hetpipe::runner::SweepRunner runner(args.sweep_options());

  std::printf("Fig. 3 — single virtual worker: normalized throughput vs Nm\n");
  std::printf("(normalized to the same configuration's Nm=1 throughput;\n");
  std::printf(" '-' marks Nm values whose partition exceeds GPU memory)\n");
  const hetpipe::hw::Cluster cluster = hetpipe::hw::Cluster::Paper();
  RunModel(cluster, hetpipe::model::BuildResNet152(), runner);
  RunModel(cluster, hetpipe::model::BuildVgg19(), runner);
  return 0;
}
