// Real-numerics convergence study backing §6: multi-threaded SGD under BSP,
// SSP, ASP, and WSP (with pipeline-induced local staleness) on a convex
// objective and a nonconvex MLP. WSP converges despite its bounded staleness.
#include <cstdio>

#include "train/data.h"
#include "train/model_zoo.h"
#include "train/wsp_trainer.h"

namespace {

using namespace hetpipe::train;

void Report(const char* label, const TrainerResult& result) {
  std::printf("  %-14s final loss %.5f  worst staleness %3lld (bound ok: %s)  minibatches %lld\n",
              label, result.final_loss,
              static_cast<long long>(result.worst_observed_staleness),
              result.staleness_within_bound ? "yes" : "NO",
              static_cast<long long>(result.total_minibatches));
}

}  // namespace

int main() {
  std::printf("WSP vs BSP/SSP/ASP — real threaded SGD (4 workers)\n");

  {
    const Dataset data = MakeLinearRegression(800, 10, 0.05, 1001);
    const LinearRegressionModel model(10);
    std::printf("\nconvex least squares (d=10, n=800):\n");

    TrainerOptions bsp = BspOptions(4, 600);
    bsp.worker.lr = 0.05;
    Report("BSP", TrainWsp(model, data, bsp));

    TrainerOptions ssp = SspOptions(4, 600, 3);
    ssp.worker.lr = 0.05;
    Report("SSP(s=3)", TrainWsp(model, data, ssp));

    TrainerOptions asp = AspOptions(4, 600);
    asp.worker.lr = 0.05;
    Report("ASP", TrainWsp(model, data, asp));

    for (int d : {0, 1, 4}) {
      TrainerOptions wsp = WspOptions(4, 150, 4, d);
      wsp.worker.lr = 0.02;
      char label[32];
      std::snprintf(label, sizeof(label), "WSP(Nm=4,D=%d)", d);
      Report(label, TrainWsp(model, data, wsp));
    }
  }

  {
    const Dataset data = MakeXorLike(600, 2, 2002);
    const MlpModel model(2, 8);
    std::printf("\nnonconvex MLP (2-8-1 tanh, XOR-like labels):\n");
    const double init_loss = model.FullLoss(data, model.Init(7));
    std::printf("  initial loss %.5f\n", init_loss);

    TrainerOptions bsp = BspOptions(4, 800);
    bsp.worker.lr = 0.3;
    bsp.worker.batch = 16;
    bsp.init = model.Init(7);
    Report("BSP", TrainWsp(model, data, bsp));

    TrainerOptions wsp = WspOptions(4, 200, 4, 1);
    wsp.worker.lr = 0.15;
    wsp.worker.batch = 16;
    wsp.init = model.Init(7);
    Report("WSP(Nm=4,D=1)", TrainWsp(model, data, wsp));
  }
  return 0;
}
