// Real-numerics convergence study backing §6: multi-threaded SGD under BSP,
// SSP, ASP, and WSP (with pipeline-induced local staleness) on a convex
// objective and a nonconvex MLP. WSP converges despite its bounded staleness.
// Each trainer configuration is one task on the sweep runner; results print
// in configuration order regardless of scheduling.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>
#include <string>
#include <vector>

#include "runner/cli.h"
#include "train/data.h"
#include "train/model_zoo.h"
#include "train/wsp_trainer.h"

namespace {

using namespace hetpipe;
using namespace hetpipe::train;

struct Job {
  std::string label;
  const TrainModel* model = nullptr;
  const Dataset* data = nullptr;
  TrainerOptions options;
};

void RunSection(runner::SweepRunner& sweep, const std::vector<Job>& jobs) {
  const std::vector<TrainerResult> results = sweep.Map<TrainerResult>(
      static_cast<int64_t>(jobs.size()), [&](int64_t i) {
        const Job& job = jobs[static_cast<size_t>(i)];
        return TrainWsp(*job.model, *job.data, job.options);
      });
  for (size_t i = 0; i < jobs.size(); ++i) {
    const TrainerResult& result = results[i];
    std::printf(
        "  %-14s final loss %.5f  worst staleness %3lld (bound ok: %s)  minibatches %lld\n",
        jobs[i].label.c_str(), result.final_loss,
        static_cast<long long>(result.worst_observed_staleness),
        result.staleness_within_bound ? "yes" : "NO",
        static_cast<long long>(result.total_minibatches));
    if (sweep.sink() != nullptr) {
      runner::ResultRow row;
      row.Set("name", jobs[i].label)
          .Set("kind", "wsp_trainer")
          .Set("final_loss", result.final_loss)
          .Set("worst_staleness", result.worst_observed_staleness)
          .Set("staleness_within_bound", result.staleness_within_bound)
          .Set("minibatches", result.total_minibatches);
      sweep.sink()->Write(row);
    }
  }
  if (sweep.sink() != nullptr) {
    sweep.sink()->Flush();
  }
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());

  std::printf("WSP vs BSP/SSP/ASP — real threaded SGD (4 workers)\n");

  {
    const Dataset data = MakeLinearRegression(800, 10, 0.05, 1001);
    const LinearRegressionModel model(10);
    std::printf("\nconvex least squares (d=10, n=800):\n");

    std::vector<Job> jobs;
    {
      TrainerOptions bsp = BspOptions(4, 600);
      bsp.worker.lr = 0.05;
      jobs.push_back({"BSP", &model, &data, bsp});
    }
    {
      TrainerOptions ssp = SspOptions(4, 600, 3);
      ssp.worker.lr = 0.05;
      jobs.push_back({"SSP(s=3)", &model, &data, ssp});
    }
    {
      TrainerOptions asp = AspOptions(4, 600);
      asp.worker.lr = 0.05;
      jobs.push_back({"ASP", &model, &data, asp});
    }
    for (int d : {0, 1, 4}) {
      TrainerOptions wsp = WspOptions(4, 150, 4, d);
      wsp.worker.lr = 0.02;
      jobs.push_back({"WSP(Nm=4,D=" + std::to_string(d) + ")", &model, &data, wsp});
    }
    RunSection(sweep, jobs);
  }

  {
    const Dataset data = MakeXorLike(600, 2, 2002);
    const MlpModel model(2, 8);
    std::printf("\nnonconvex MLP (2-8-1 tanh, XOR-like labels):\n");
    const double init_loss = model.FullLoss(data, model.Init(7));
    std::printf("  initial loss %.5f\n", init_loss);

    std::vector<Job> jobs;
    {
      TrainerOptions bsp = BspOptions(4, 800);
      bsp.worker.lr = 0.3;
      bsp.worker.batch = 16;
      bsp.init = model.Init(7);
      jobs.push_back({"BSP", &model, &data, bsp});
    }
    {
      TrainerOptions wsp = WspOptions(4, 200, 4, 1);
      wsp.worker.lr = 0.15;
      wsp.worker.batch = 16;
      wsp.init = model.Init(7);
      jobs.push_back({"WSP(Nm=4,D=1)", &model, &data, wsp});
    }
    RunSection(sweep, jobs);
  }
  return 0;
}
