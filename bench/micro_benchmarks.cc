// google-benchmark micro-benchmarks for the repo's core kernels: the DES
// event queue, the min-max partitioner (serial, pruned, parallel, cached),
// the AllReduce cost model, and the real WSP trainer step.
#include <benchmark/benchmark.h>

#include "dp/allreduce.h"
#include "hw/cluster.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "pipeline/virtual_worker.h"
#include "runner/partition_cache.h"
#include "runner/thread_pool.h"
#include "sim/simulator.h"
#include "train/data.h"
#include "train/model_zoo.h"
#include "train/wsp_trainer.h"

namespace {

using namespace hetpipe;

void BM_EventQueuePushPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < state.range(0); ++i) {
      queue.Push(static_cast<double>((i * 2654435761u) % 1000), [] {});
    }
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.Pop());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1 << 10)->Arg(1 << 14);

void BM_SimulatorDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    int64_t remaining = state.range(0);
    std::function<void()> tick = [&] {
      if (--remaining > 0) {
        simulator.Schedule(1.0, tick);
      }
    };
    simulator.Schedule(1.0, tick);
    simulator.Run();
    benchmark::DoNotOptimize(simulator.now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorDispatch)->Arg(1 << 12);

void BM_PartitionerSolve(benchmark::State& state) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.Solve({0, 4, 8, 12}, options));
  }
}
BENCHMARK(BM_PartitionerSolve)->Arg(1)->Arg(4)->Arg(7);

void BM_PartitionerSolveNoPrune(benchmark::State& state) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = static_cast<int>(state.range(0));
  options.prune = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.Solve({0, 4, 8, 12}, options));
  }
}
BENCHMARK(BM_PartitionerSolveNoPrune)->Arg(4);

void BM_PartitionerSolveParallelOrders(benchmark::State& state) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  runner::ThreadPool pool(static_cast<int>(state.range(0)));
  partition::PartitionOptions options;
  options.nm = 4;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(partitioner.Solve({0, 4, 8, 12}, options));
  }
}
BENCHMARK(BM_PartitionerSolveParallelOrders)->Arg(2)->Arg(8);

void BM_PartitionCacheHit(benchmark::State& state) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  runner::PartitionCache cache;
  partition::PartitionOptions options;
  options.nm = 4;
  cache.Solve(partitioner, {0, 4, 8, 12}, options);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Solve(partitioner, {0, 4, 8, 12}, options));
  }
}
BENCHMARK(BM_PartitionCacheHit);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  runner::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(256, [&](int64_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
    benchmark::DoNotOptimize(sum.load());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(4);

void BM_PipelineSimulation(benchmark::State& state) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelGraph graph = model::BuildVgg19();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = 4;
  const partition::Partition partition = partitioner.Solve({0, 4, 8, 12}, options);
  for (auto _ : state) {
    sim::Simulator simulator;
    pipeline::OpenGate gate;
    pipeline::VirtualWorkerOptions vopt;
    vopt.nm = 4;
    vopt.max_minibatches = 200;
    pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
    vw.Start();
    simulator.Run();
    benchmark::DoNotOptimize(vw.minibatches_completed());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_PipelineSimulation);

void BM_RingAllReduceModel(benchmark::State& state) {
  dp::RingAllReduceParams params;
  params.num_workers = 16;
  params.bytes = 548ULL << 20;
  params.bottleneck_bps = 1e9;
  params.per_step_latency_s = 30e-6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp::RingAllReduceTime(params));
  }
}
BENCHMARK(BM_RingAllReduceModel);

void BM_WspTrainerStep(benchmark::State& state) {
  const train::Dataset data = train::MakeLinearRegression(256, 16, 0.05, 7);
  const train::LinearRegressionModel model(16);
  for (auto _ : state) {
    train::TrainerOptions options = train::WspOptions(2, 16, 2, 1);
    options.worker.lr = 0.02;
    benchmark::DoNotOptimize(train::TrainWsp(model, data, options));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 2);
}
BENCHMARK(BM_WspTrainerStep);

}  // namespace
