// Rack-topology sensitivity on a mixed-class cluster — the fabric structure
// the paper's single inter-node link cannot express, swept as spec-level
// rack groups and per-node-pair overrides:
//   rack grid:      consecutive racks of 1 and 2 nodes x cross-rack Gbit/s
//   degraded pairs: the node0<->node2 link alone dropped to a few Gbit/s
// Both grids come from runner::TopologySweep; a partition-only row reports
// the rack-aware traffic split (dp::ActivationTrafficByTier).
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH] --cache-file=PATH
//
// Every node pair's resolved link is part of the partition-cache key (cache
// file v3), so a --cache-file warmed on one topology is never wrongly reused
// on another: repeated identical runs are all hits, changed racks/overrides
// all misses.
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "dp/placement.h"
#include "hw/cluster_spec.h"
#include "runner/cli.h"
#include "runner/spec_sweep.h"

namespace {

using namespace hetpipe;

void PrintRows(const std::vector<core::Experiment>& experiments,
               const std::vector<core::ExperimentResult>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    const core::ExperimentResult& r = results[i];
    if (!r.feasible) {
      std::printf("  %-44s %12s\n", r.name.c_str(), "infeasible");
    } else {
      std::printf("  %-44s %8.1f img/s  Nm=%d\n", r.name.c_str(), r.throughput_img_s,
                  r.report.nm);
    }
  }
  (void)experiments;
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  for (const std::string& arg : args.rest) {
    std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    return 2;
  }
  runner::SweepRunner sweep(args.sweep_options());
  const hw::ClusterSpec spec = runner::MixedDemoSpec("topology-mix");
  std::printf("topology sweep — %s: %s\n", spec.name.c_str(), spec.Build().ToString().c_str());

  runner::SpecSweepOptions options;
  options.model = core::ModelKind::kResNet152;
  options.jitter_cv = 0.05;

  std::printf("\nrack grid (rack size x cross-rack Gbit/s) + degraded-pair scenarios:\n");
  const std::vector<core::Experiment> grid = runner::TopologySweep(
      spec, /*rack_sizes=*/{1, 2}, /*cross_rack_gbits=*/{25.0, 10.0, 2.0},
      /*degraded_pair_gbits=*/{10.0, 2.0}, options);
  PrintRows(grid, sweep.Run(grid));

  // The §8.3-style traffic accounting, rack-aware: one cross-node VW on the
  // racked spec, its activation traffic split by link tier.
  std::printf("\nactivation traffic by link tier (VW spanning all three nodes):\n");
  hw::ClusterSpec racked = spec;
  racked.Named("topology-mix-r2")
      .AddRack("r0", {0, 1})
      .AddRack("r1", {2})
      .CrossRackGbits(2.0);
  core::Experiment traffic_experiment;
  traffic_experiment.name = "traffic split BigCard@0,SmallCard@1,V*2@2";
  traffic_experiment.kind = core::ExperimentKind::kPartitionOnly;
  traffic_experiment.model = core::ModelKind::kResNet152;
  traffic_experiment.cluster_spec = racked.ToString();
  traffic_experiment.cluster_label = racked.name;
  traffic_experiment.vw_codes = "BigCard@0,SmallCard@1,V*2@2";
  traffic_experiment.config.nm = 2;
  traffic_experiment.simulate = false;
  const auto traffic_results = sweep.Run({traffic_experiment});
  {
    const hw::Cluster cluster = racked.Build();
    const model::ModelGraph graph = core::BuildModel(traffic_experiment.model);
    const model::ModelProfile profile(graph, traffic_experiment.config.batch_size);
    const dp::ActivationTraffic traffic =
        dp::ActivationTrafficByTier(traffic_results[0].partition, profile, cluster);
    const double mb = 1.0 / (1 << 20);
    std::printf("  intra-node %.0f MB, same-rack %.0f MB, cross-rack %.0f MB per minibatch\n",
                static_cast<double>(traffic.intra_node_bytes) * mb,
                static_cast<double>(traffic.same_rack_bytes) * mb,
                static_cast<double>(traffic.cross_rack_bytes) * mb);
  }

  std::fprintf(stderr, "partition cache: %lld hits, %lld misses\n",
               static_cast<long long>(sweep.cache().hits()),
               static_cast<long long>(sweep.cache().misses()));
  return 0;
}
