// Partitioner hot-path benchmark: times cold Partitioner::Solve against the
// retained pre-optimization SolveReference (naive O(stage-length) cost sums,
// vector-of-vector DP, factorial order scan with string dedup) across
// models x clusters x virtual-worker shapes x Nm, verifying on every point
// that the two return bit-identical partitions. Also pins the no-allocation
// property of the thread-local DP scratch: repeated warm solves must not grow
// a single buffer.
//
// The JSON rows (--json) are the repo's partitioner perf trajectory; commit a
// run as BENCH_partitioner.json (see README "Partitioner performance").
//
// Flags: --threads=N (default 1: timing stability) --repeat=N (default 5)
//        --json[=PATH] --csv[=PATH] --cache-file=PATH
//        --expect=PATH        compare every point's solve result against a
//                             checked-in expectations file; any divergence
//                             (or a missing/extra point) fails the run. The
//                             comparison covers results only, never timings,
//                             so it is stable across machines and compilers.
//        --write-expect=PATH  regenerate that file from this run
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "model/model_graph.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/transformer.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "runner/cli.h"
#include "runner/spec_sweep.h"
#include "runner/sweep_runner.h"

namespace {

using namespace hetpipe;
using Clock = std::chrono::steady_clock;

// The generic cluster of the grid: a mixed-class node, a whimpy node, and a
// paper V node (the canonical runner::MixedDemoSpec, also the cluster_sweep
// straggler cluster, which exercises registered GPU classes and multi-class
// order enumeration).
hw::Cluster MixedCluster() { return runner::MixedDemoSpec("mixed-3node").Build(); }

struct GridPoint {
  std::string model;
  std::string cluster;
  std::string vw;  // PickGpus selector
  int nm = 1;
};

struct PointResult {
  GridPoint point;
  int layers = 0;
  int k = 0;
  bool feasible = false;
  double bottleneck_ms = 0.0;
  double ref_ms = 0.0;   // best-of-repeat cold SolveReference wall time
  double fast_ms = 0.0;  // best-of-repeat cold Solve wall time
  bool identical = false;
  std::string signature;  // timing-free solve result, for --expect
};

// Bit-exact comparison: the optimization must change speed, never results.
bool SamePartition(const partition::Partition& a, const partition::Partition& b) {
  if (a.feasible != b.feasible || a.bottleneck_time != b.bottleneck_time ||
      a.sum_time != b.sum_time || a.stages.size() != b.stages.size()) {
    return false;
  }
  for (size_t q = 0; q < a.stages.size(); ++q) {
    const partition::StageAssignment& x = a.stages[q];
    const partition::StageAssignment& y = b.stages[q];
    if (x.first_layer != y.first_layer || x.last_layer != y.last_layer ||
        x.gpu_id != y.gpu_id || x.gpu_type != y.gpu_type || x.node != y.node ||
        x.fwd_compute_s != y.fwd_compute_s || x.bwd_compute_s != y.bwd_compute_s ||
        x.fwd_comm_in_s != y.fwd_comm_in_s || x.bwd_comm_in_s != y.bwd_comm_in_s ||
        x.param_bytes != y.param_bytes || x.memory_bytes != y.memory_bytes) {
      return false;
    }
  }
  return true;
}

// Timing-free description of a solve result, printed with full double
// precision (%.17g round-trips), so an expectations file pins results across
// machines without pinning wall clock.
std::string Signature(const partition::Partition& p) {
  char buf[96];
  if (!p.feasible) {
    return "infeasible";
  }
  std::string sig;
  std::snprintf(buf, sizeof(buf), "b=%.17g s=%.17g", p.bottleneck_time, p.sum_time);
  sig += buf;
  for (const partition::StageAssignment& stage : p.stages) {
    std::snprintf(buf, sizeof(buf), " %d:%d-%d@%c", stage.gpu_id, stage.first_layer,
                  stage.last_layer, hw::CodeOf(stage.gpu_type));
    sig += buf;
  }
  return sig;
}

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::vector<GridPoint> BuildGrid() {
  std::vector<GridPoint> grid;
  const std::vector<std::pair<std::string, std::vector<std::string>>> cluster_vws = {
      {"paper", {"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ"}},
      {"mixed-3node",
       {"BigCard*2,SmallCard*2", "SmallCard*4", "BigCard*1,SmallCard*1,V*2"}},
  };
  for (const char* model : {"resnet152", "vgg19", "bert-large"}) {
    for (const auto& [cluster, vws] : cluster_vws) {
      for (const std::string& vw : vws) {
        for (int nm : {1, 2, 4}) {
          grid.push_back(GridPoint{model, cluster, vw, nm});
        }
      }
    }
  }
  return grid;
}

model::ModelGraph BuildModelByName(const std::string& name) {
  if (name == "resnet152") {
    return model::BuildResNet152();
  }
  if (name == "vgg19") {
    return model::BuildVgg19();
  }
  return model::BuildBertLarge();
}

PointResult RunPoint(const GridPoint& point, const hw::Cluster& cluster,
                     const model::ModelProfile& profile, int repeat) {
  PointResult out;
  out.point = point;
  out.layers = profile.num_layers();

  const std::vector<int> gpu_ids = core::PickGpus(cluster, point.vw);
  out.k = static_cast<int>(gpu_ids.size());

  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = point.nm;

  // One untimed round first: warms the DP scratch and pins equivalence.
  const partition::Partition reference = partitioner.SolveReference(gpu_ids, options);
  const partition::Partition fast = partitioner.Solve(gpu_ids, options);
  out.identical = SamePartition(reference, fast);
  out.feasible = fast.feasible;
  out.bottleneck_ms = fast.bottleneck_time * 1e3;
  out.signature = Signature(fast);

  // Best-of-N: robust against preemption spikes on busy machines (a single
  // descheduling would otherwise dominate a mean at these microsecond
  // scales).
  for (int r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    (void)partitioner.SolveReference(gpu_ids, options);
    const double ms = MsBetween(start, Clock::now());
    out.ref_ms = r == 0 ? ms : std::min(out.ref_ms, ms);
  }
  for (int r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    (void)partitioner.Solve(gpu_ids, options);
    const double ms = MsBetween(start, Clock::now());
    out.fast_ms = r == 0 ? ms : std::min(out.fast_ms, ms);
  }
  return out;
}

std::string ExpectKey(const GridPoint& point) {
  return point.model + "|" + point.cluster + "|" + point.vw + "|nm" +
         std::to_string(point.nm);
}

int CompareExpectations(const std::vector<PointResult>& results, const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "error: cannot read expectations file %s\n", path.c_str());
    return 1;
  }
  std::map<std::string, std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      std::fprintf(stderr, "error: malformed expectations line: %s\n", line.c_str());
      return 1;
    }
    expected[line.substr(0, tab)] = line.substr(tab + 1);
  }
  int divergent = 0;
  for (const PointResult& r : results) {
    const std::string key = ExpectKey(r.point);
    auto it = expected.find(key);
    if (it == expected.end()) {
      std::fprintf(stderr, "EXPECT MISSING  %s\n", key.c_str());
      ++divergent;
      continue;
    }
    if (it->second != r.signature) {
      std::fprintf(stderr, "EXPECT DIVERGED %s\n  expected: %s\n  got:      %s\n",
                   key.c_str(), it->second.c_str(), r.signature.c_str());
      ++divergent;
    }
    expected.erase(it);
  }
  for (const auto& [key, sig] : expected) {
    std::fprintf(stderr, "EXPECT EXTRA    %s (file has a point this grid no longer runs)\n",
                 key.c_str());
    ++divergent;
  }
  if (divergent > 0) {
    std::fprintf(stderr, "%d expectation(s) diverged — solve results changed\n", divergent);
    return 1;
  }
  std::printf("all %zu solve results match %s\n", results.size(), path.c_str());
  return 0;
}

int WriteExpectations(const std::vector<PointResult>& results, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  out << "# partitioner_speed solve-result expectations: key \\t signature.\n"
         "# Regenerate with: partitioner_speed --write-expect=<this file>\n";
  for (const PointResult& r : results) {
    out << ExpectKey(r.point) << '\t' << r.signature << '\n';
  }
  return out.good() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  int repeat = 5;
  std::string expect_path;
  std::string write_expect_path;
  for (const std::string& arg : args.rest) {
    if (arg.rfind("--repeat=", 0) == 0) {
      int parsed = 0;
      if (!runner::ParseIntFlag(arg.substr(9), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --repeat needs a positive integer, got \"%s\"\n",
                     arg.c_str() + 9);
        return 2;
      }
      repeat = parsed;
    } else if (arg.rfind("--expect=", 0) == 0) {
      expect_path = arg.substr(9);
    } else if (arg.rfind("--write-expect=", 0) == 0) {
      write_expect_path = arg.substr(15);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  // Shared read-only inputs, built once: profiles are per (model, batch) and
  // clusters per label. GPU classes the mixed spec declares register here.
  const hw::Cluster paper = hw::Cluster::Paper();
  const hw::Cluster mixed = MixedCluster();
  const auto cluster_of = [&](const std::string& label) -> const hw::Cluster& {
    return label == "paper" ? paper : mixed;
  };
  std::map<std::string, model::ModelGraph> graphs;
  for (const char* name : {"resnet152", "vgg19", "bert-large"}) {
    graphs.emplace(name, BuildModelByName(name));
  }
  std::map<std::string, model::ModelProfile> profiles;
  for (const auto& [name, graph] : graphs) {
    profiles.emplace(name, model::ModelProfile(graph, 32));
  }

  const std::vector<GridPoint> grid = BuildGrid();
  std::printf("timing %zu grid points (cold Solve vs pre-optimization SolveReference,\n"
              "best of %d repetitions each)\n\n",
              grid.size(), repeat);

  runner::SweepOptions sweep_options = args.sweep_options();
  sweep_options.threads = args.threads > 0 ? args.threads : 1;
  runner::SweepRunner sweep(sweep_options);
  const std::vector<PointResult> results = sweep.Map<PointResult>(
      static_cast<int64_t>(grid.size()), [&](int64_t i) {
        const GridPoint& point = grid[static_cast<size_t>(i)];
        return RunPoint(point, cluster_of(point.cluster), profiles.at(point.model), repeat);
      });

  bool all_identical = true;
  double resnet_paper_speedup_min = 0.0;
  double resnet_paper_speedup_geo = 1.0;
  int resnet_paper_points = 0;
  for (const PointResult& r : results) {
    all_identical = all_identical && r.identical;
    const double speedup = r.fast_ms > 0.0 ? r.ref_ms / r.fast_ms : 0.0;
    std::printf("  %-10s %-12s %-28s nm=%d  %8.3f -> %7.3f ms  (%5.1fx)%s\n",
                r.point.model.c_str(), r.point.cluster.c_str(), r.point.vw.c_str(),
                r.point.nm, r.ref_ms, r.fast_ms, speedup,
                r.identical ? "" : "  RESULTS DIVERGED — BUG");
    if (r.point.model == "resnet152" && r.point.cluster == "paper" && r.k == 4) {
      resnet_paper_speedup_min = resnet_paper_points == 0
                                     ? speedup
                                     : std::min(resnet_paper_speedup_min, speedup);
      resnet_paper_speedup_geo *= speedup;
      ++resnet_paper_points;
    }
    if (runner::ResultSink* sink = args.sink()) {
      runner::ResultRow row;
      row.Set("bench", "partitioner_speed")
          .Set("model", r.point.model)
          .Set("cluster", r.point.cluster)
          .Set("vw", r.point.vw)
          .Set("nm", r.point.nm)
          .Set("layers", r.layers)
          .Set("k", r.k)
          .Set("feasible", r.feasible)
          .Set("bottleneck_ms", r.bottleneck_ms)
          .Set("ref_solve_ms", r.ref_ms)
          .Set("fast_solve_ms", r.fast_ms)
          .Set("speedup", speedup)
          .Set("identical", r.identical);
      sink->Write(row);
    }
  }

  // Warm-solve allocation check: after the grid every shape has been seen, so
  // further solves on this thread must not grow a single scratch buffer.
  const std::vector<int> warm_ids = core::PickGpus(paper, "VRGQ");
  const partition::Partitioner warm_partitioner(profiles.at("resnet152"), paper);
  partition::PartitionOptions warm_options;
  warm_options.nm = 2;
  (void)warm_partitioner.Solve(warm_ids, warm_options);  // warm this thread's scratch
  const int64_t grows_before = partition::DpScratchGrowCount();
  for (int r = 0; r < 50; ++r) {
    (void)warm_partitioner.Solve(warm_ids, warm_options);
  }
  const int64_t scratch_grows = partition::DpScratchGrowCount() - grows_before;

  if (resnet_paper_points > 0) {
    resnet_paper_speedup_geo =
        std::pow(resnet_paper_speedup_geo, 1.0 / resnet_paper_points);
  }
  std::printf("\nresnet152 on the paper 4-GPU VWs: cold-solve speedup geomean %.1fx, min %.1fx "
              "(%d points)\n",
              resnet_paper_speedup_geo, resnet_paper_speedup_min, resnet_paper_points);
  std::printf("scratch buffer grows during 50 repeated warm solves: %lld %s\n",
              static_cast<long long>(scratch_grows),
              scratch_grows == 0 ? "(no per-solve DP allocation)" : "— BUG");
  std::printf("optimized vs reference results bit-identical on all points: %s\n",
              all_identical ? "yes" : "NO — BUG");

  if (runner::ResultSink* sink = args.sink()) {
    runner::ResultRow summary;
    summary.Set("bench", "partitioner_speed_summary")
        .Set("resnet152_paper_speedup_geomean", resnet_paper_speedup_geo)
        .Set("resnet152_paper_speedup_min", resnet_paper_speedup_min)
        .Set("scratch_grows_warm", scratch_grows)
        .Set("all_identical", all_identical);
    sink->Write(summary);
    sink->Flush();
  }

  int exit_code = (all_identical && scratch_grows == 0) ? 0 : 1;
  if (!write_expect_path.empty()) {
    exit_code = std::max(exit_code, WriteExpectations(results, write_expect_path));
  }
  if (!expect_path.empty()) {
    exit_code = std::max(exit_code, CompareExpectations(results, expect_path));
  }
  return exit_code;
}
