// Partitioner hot-path benchmark: times cold Partitioner::Solve against the
// retained pre-optimization SolveReference (naive O(stage-length) cost sums,
// vector-of-vector DP, factorial order scan with string dedup) across
// models x clusters x virtual-worker shapes x Nm, verifying on every point
// that the two return bit-identical partitions. Also pins the no-allocation
// property of the thread-local DP scratch: repeated warm solves must not grow
// a single buffer.
//
// The JSON rows (--json) are the repo's partitioner perf trajectory; commit a
// run as BENCH_partitioner.json (see README "Partitioner performance").
//
// Flags: --threads=N (default 1: timing stability) --repeat=N (default 5)
//        --out=PATH --json[=PATH] --csv[=PATH] --cache-file=PATH
//        --expect=PATH        compare every point's solve result against a
//                             checked-in expectations file; any divergence
//                             (or a missing/extra point) fails the run. The
//                             comparison covers results only, never timings,
//                             so it is stable across machines and compilers.
//        --write-expect=PATH  regenerate that file from this run
//        --growth[=smoke|full]  run the scalable-tier growth curve instead of
//                             the grid: synthetic racked heterogeneous
//                             clusters from 16 GPUs up to 1024 (full), timing
//                             SolveScalable under the kAuto selector. The
//                             16-GPU point stays on the exact path and is
//                             verified bit-identical to Solve; it also anchors
//                             beam quality (forced-beam bottleneck vs the
//                             exact optimum).
//        --growth-budget-ms=N fail if any growth solve exceeds N ms wall
//                             clock (the CI ceiling).
//        --width-sweep[=smoke|full]  sweep beam_width x rack_order_limit x
//                             threads over the growth clusters
//                             (runner::RunWidthSweep), reporting quality vs
//                             the exact optimum / the sweep's best and
//                             asserting parallel solves bit-identical to
//                             serial. Emits bench=partitioner_width_sweep
//                             rows.
//
// Growth mode also times each case's solve on a thread pool (--threads=N,
// default 8 when unset) against the serial solve, asserts the two partitions
// bit-identical, and emits bench=partitioner_parallel rows (with the host
// core count, since speedup is bounded by it).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster.h"
#include "hw/cluster_spec.h"
#include "model/model_graph.h"
#include "model/profiler.h"
#include "model/resnet.h"
#include "model/transformer.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "runner/cli.h"
#include "runner/spec_sweep.h"
#include "runner/sweep_runner.h"
#include "runner/thread_pool.h"
#include "runner/width_sweep.h"

namespace {

using namespace hetpipe;
using Clock = std::chrono::steady_clock;

// The generic cluster of the grid: a mixed-class node, a whimpy node, and a
// paper V node (the canonical runner::MixedDemoSpec, also the cluster_sweep
// straggler cluster, which exercises registered GPU classes and multi-class
// order enumeration).
hw::Cluster MixedCluster() { return runner::MixedDemoSpec("mixed-3node").Build(); }

struct GridPoint {
  std::string model;
  std::string cluster;
  std::string vw;  // PickGpus selector
  int nm = 1;
};

struct PointResult {
  GridPoint point;
  int layers = 0;
  int k = 0;
  bool feasible = false;
  double bottleneck_ms = 0.0;
  double ref_ms = 0.0;   // best-of-repeat cold SolveReference wall time
  double fast_ms = 0.0;  // best-of-repeat cold Solve wall time
  bool identical = false;
  std::string signature;  // timing-free solve result, for --expect
};

// Bit-exact comparison: the optimization must change speed, never results.
bool SamePartition(const partition::Partition& a, const partition::Partition& b) {
  if (a.feasible != b.feasible || a.bottleneck_time != b.bottleneck_time ||
      a.sum_time != b.sum_time || a.stages.size() != b.stages.size()) {
    return false;
  }
  for (size_t q = 0; q < a.stages.size(); ++q) {
    const partition::StageAssignment& x = a.stages[q];
    const partition::StageAssignment& y = b.stages[q];
    if (x.first_layer != y.first_layer || x.last_layer != y.last_layer ||
        x.gpu_id != y.gpu_id || x.gpu_type != y.gpu_type || x.node != y.node ||
        x.fwd_compute_s != y.fwd_compute_s || x.bwd_compute_s != y.bwd_compute_s ||
        x.fwd_comm_in_s != y.fwd_comm_in_s || x.bwd_comm_in_s != y.bwd_comm_in_s ||
        x.param_bytes != y.param_bytes || x.memory_bytes != y.memory_bytes) {
      return false;
    }
  }
  return true;
}

// Timing-free description of a solve result, printed with full double
// precision (%.17g round-trips), so an expectations file pins results across
// machines without pinning wall clock.
std::string Signature(const partition::Partition& p) {
  char buf[96];
  if (!p.feasible) {
    return "infeasible";
  }
  std::string sig;
  std::snprintf(buf, sizeof(buf), "b=%.17g s=%.17g", p.bottleneck_time, p.sum_time);
  sig += buf;
  for (const partition::StageAssignment& stage : p.stages) {
    std::snprintf(buf, sizeof(buf), " %d:%d-%d@%c", stage.gpu_id, stage.first_layer,
                  stage.last_layer, hw::CodeOf(stage.gpu_type));
    sig += buf;
  }
  return sig;
}

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::vector<GridPoint> BuildGrid() {
  std::vector<GridPoint> grid;
  const std::vector<std::pair<std::string, std::vector<std::string>>> cluster_vws = {
      {"paper", {"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ"}},
      {"mixed-3node",
       {"BigCard*2,SmallCard*2", "SmallCard*4", "BigCard*1,SmallCard*1,V*2"}},
  };
  for (const char* model : {"resnet152", "vgg19", "bert-large"}) {
    for (const auto& [cluster, vws] : cluster_vws) {
      for (const std::string& vw : vws) {
        for (int nm : {1, 2, 4}) {
          grid.push_back(GridPoint{model, cluster, vw, nm});
        }
      }
    }
  }
  return grid;
}

model::ModelGraph BuildModelByName(const std::string& name) {
  if (name == "resnet152") {
    return model::BuildResNet152();
  }
  if (name == "vgg19") {
    return model::BuildVgg19();
  }
  return model::BuildBertLarge();
}

PointResult RunPoint(const GridPoint& point, const hw::Cluster& cluster,
                     const model::ModelProfile& profile, int repeat) {
  PointResult out;
  out.point = point;
  out.layers = profile.num_layers();

  const std::vector<int> gpu_ids = core::PickGpus(cluster, point.vw);
  out.k = static_cast<int>(gpu_ids.size());

  const partition::Partitioner partitioner(profile, cluster);
  partition::PartitionOptions options;
  options.nm = point.nm;

  // One untimed round first: warms the DP scratch and pins equivalence.
  const partition::Partition reference = partitioner.SolveReference(gpu_ids, options);
  const partition::Partition fast = partitioner.Solve(gpu_ids, options);
  out.identical = SamePartition(reference, fast);
  out.feasible = fast.feasible;
  out.bottleneck_ms = fast.bottleneck_time * 1e3;
  out.signature = Signature(fast);

  // Best-of-N: robust against preemption spikes on busy machines (a single
  // descheduling would otherwise dominate a mean at these microsecond
  // scales).
  for (int r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    (void)partitioner.SolveReference(gpu_ids, options);
    const double ms = MsBetween(start, Clock::now());
    out.ref_ms = r == 0 ? ms : std::min(out.ref_ms, ms);
  }
  for (int r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    (void)partitioner.Solve(gpu_ids, options);
    const double ms = MsBetween(start, Clock::now());
    out.fast_ms = r == 0 ? ms : std::min(out.fast_ms, ms);
  }
  return out;
}

std::string ExpectKey(const GridPoint& point) {
  return point.model + "|" + point.cluster + "|" + point.vw + "|nm" +
         std::to_string(point.nm);
}

int CompareExpectations(const std::vector<PointResult>& results, const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "error: cannot read expectations file %s\n", path.c_str());
    return 1;
  }
  std::map<std::string, std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      std::fprintf(stderr, "error: malformed expectations line: %s\n", line.c_str());
      return 1;
    }
    expected[line.substr(0, tab)] = line.substr(tab + 1);
  }
  int divergent = 0;
  for (const PointResult& r : results) {
    const std::string key = ExpectKey(r.point);
    auto it = expected.find(key);
    if (it == expected.end()) {
      std::fprintf(stderr, "EXPECT MISSING  %s\n", key.c_str());
      ++divergent;
      continue;
    }
    if (it->second != r.signature) {
      std::fprintf(stderr, "EXPECT DIVERGED %s\n  expected: %s\n  got:      %s\n",
                   key.c_str(), it->second.c_str(), r.signature.c_str());
      ++divergent;
    }
    expected.erase(it);
  }
  for (const auto& [key, sig] : expected) {
    std::fprintf(stderr, "EXPECT EXTRA    %s (file has a point this grid no longer runs)\n",
                 key.c_str());
    ++divergent;
  }
  if (divergent > 0) {
    std::fprintf(stderr, "%d expectation(s) diverged — solve results changed\n", divergent);
    return 1;
  }
  std::printf("all %zu solve results match %s\n", results.size(), path.c_str());
  return 0;
}

int WriteExpectations(const std::vector<PointResult>& results, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);  // lint: ofstream-allowed (expectation file, not rows)
  if (!out.is_open()) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  out << "# partitioner_speed solve-result expectations: key \\t signature.\n"
         "# Regenerate with: partitioner_speed --write-expect=<this file>\n";
  for (const PointResult& r : results) {
    out << ExpectKey(r.point) << '\t' << r.signature << '\n';
  }
  return out.good() ? 0 : 1;
}

// ---- The scalable-tier growth curve (--growth). ----

// One synthetic cluster scale: `nodes` homogeneous nodes of `gpus_per_node`
// GPUs cycling through four registered classes, grouped into `racks` racks
// (0 = no rack structure), with a virtual worker of `k` GPUs taken
// `per_node` at a time from evenly-strided nodes.
struct GrowthCase {
  std::string label;
  int nodes = 0;
  int gpus_per_node = 0;
  int racks = 0;
  int k = 0;
  int per_node = 1;
  bool compare_exact = false;  // k small enough for the exact oracle
};

std::vector<GrowthCase> GrowthCases(bool full) {
  std::vector<GrowthCase> cases = {
      // 16 GPUs, 2 racks, VW = 2 GPUs on each of 4 nodes: 8!/(2!^4) = 2520
      // distinct orders, under the selector's exact limit — the growth
      // curve's small end proves the auto path stays exact.
      {"g16-2rack", 4, 4, 2, 8, 2, true},
      // 64 GPUs, one GPU on each of 16 nodes across 4 racks: 16! orders,
      // resolved to the hierarchical search.
      {"g64-4rack", 16, 4, 4, 16, 1, false},
      // The same 64 GPUs with no rack structure: resolved to the flat beam.
      {"g64-norack", 16, 4, 0, 16, 1, false},
  };
  if (full) {
    cases.push_back({"g256-8rack", 64, 4, 8, 24, 1, false});
    cases.push_back({"g1024-16rack", 128, 8, 16, 32, 1, false});
  }
  return cases;
}

hw::Cluster BuildGrowthCluster(const GrowthCase& c) {
  static const char* kClasses[4] = {"GrowV", "GrowR", "GrowG", "GrowQ"};
  hw::ClusterSpec spec;
  spec.Named(c.label)
      .AddGpuClass("GrowV", 14.0, 12.0, 'v')
      .AddGpuClass("GrowR", 16.3, 24.0, 'r')
      .AddGpuClass("GrowG", 11.3, 8.0, 'g')
      .AddGpuClass("GrowQ", 5.3, 32.0, 'q');
  for (int node = 0; node < c.nodes; ++node) {
    spec.AddNode(kClasses[node % 4], c.gpus_per_node);
  }
  if (c.racks > 0) {
    const int per_rack = c.nodes / c.racks;
    for (int rack = 0; rack < c.racks; ++rack) {
      std::vector<int> members;
      for (int node = rack * per_rack; node < (rack + 1) * per_rack; ++node) {
        members.push_back(node);
      }
      spec.AddRack("rack" + std::to_string(rack), members);
    }
    spec.CrossRackGbits(5.0);
  }
  return spec.Build();
}

// The growth VW: `per_node` GPUs from each of k/per_node nodes strided evenly
// across the cluster (and therefore across its racks).
std::vector<int> PickGrowthVw(const hw::Cluster& cluster, const GrowthCase& c) {
  const int nodes_used = c.k / c.per_node;
  const int stride = std::max(1, c.nodes / nodes_used);
  std::vector<int> ids;
  for (int pick = 0; pick < nodes_used; ++pick) {
    const int node = pick * stride;
    int taken = 0;
    for (const hw::Gpu& gpu : cluster.gpus()) {
      if (gpu.node == node && taken < c.per_node) {
        ids.push_back(gpu.id);
        ++taken;
      }
    }
  }
  return ids;
}

// Registers the growth GPU classes (idempotent with AddGpuClass's numbers) —
// the profile only covers classes known at its construction, so these must
// exist before the resnet152 profile is built.
void RegisterGrowthClasses() {
  hw::RegisterGpuType("GrowV", 14.0, 12.0, 'v');
  hw::RegisterGpuType("GrowR", 16.3, 24.0, 'r');
  hw::RegisterGpuType("GrowG", 11.3, 8.0, 'g');
  hw::RegisterGpuType("GrowQ", 5.3, 32.0, 'q');
}

int RunGrowthCurve(bool full, double budget_ms, int repeat, int threads,
                   runner::ResultSink* sink) {
  RegisterGrowthClasses();
  // resnet152 is the deepest profiled model (54 layers), so it admits the
  // k=32 pipeline of the 1024-GPU point.
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);
  const int timing_rounds = std::min(repeat, 3);
  const int cores = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  runner::ThreadPool pool(threads);
  bool ok = true;

  std::printf("scalable-tier growth curve (%s): resnet152, nm=1, kAuto selector, "
              "%d-thread pool on %d core(s)\n\n",
              full ? "full" : "smoke", pool.num_threads(), cores);
  for (const GrowthCase& c : GrowthCases(full)) {
    const hw::Cluster cluster = BuildGrowthCluster(c);
    const std::vector<int> gpu_ids = PickGrowthVw(cluster, c);
    const partition::Partitioner partitioner(profile, cluster);
    partition::PartitionOptions options;  // kAuto, defaults
    const partition::SearchStrategy strategy =
        partition::ResolveSearchStrategy(cluster, gpu_ids, options);
    const uint64_t orders =
        partition::EstimateOrderCount(cluster, gpu_ids, uint64_t{1} << 62);

    const partition::Partition solved = partitioner.SolveScalable(gpu_ids, options);
    double solve_ms = 0.0;
    for (int r = 0; r < timing_rounds; ++r) {
      const auto start = Clock::now();
      (void)partitioner.SolveScalable(gpu_ids, options);
      const double ms = MsBetween(start, Clock::now());
      solve_ms = r == 0 ? ms : std::min(solve_ms, ms);
    }

    // The same solve on the pool: index-ordered reductions make it
    // byte-identical to the serial result, so bit-equality is asserted, not
    // tolerated. Speedup is bounded by the host core count (reported in the
    // row — a 1-core container shows ~1x regardless of pool size).
    partition::PartitionOptions parallel_options = options;
    parallel_options.pool = &pool;
    const partition::Partition parallel_solved =
        partitioner.SolveScalable(gpu_ids, parallel_options);
    const bool parallel_identical = SamePartition(parallel_solved, solved);
    double parallel_ms = 0.0;
    for (int r = 0; r < timing_rounds; ++r) {
      const auto start = Clock::now();
      (void)partitioner.SolveScalable(gpu_ids, parallel_options);
      const double ms = MsBetween(start, Clock::now());
      parallel_ms = r == 0 ? ms : std::min(parallel_ms, ms);
    }

    bool point_ok = solved.feasible && parallel_identical;
    double beam_over_exact = 0.0;
    if (c.compare_exact) {
      // The selector must have kept this point exact, bit-identically; the
      // forced beam anchors approximate quality against the true optimum.
      const partition::Partition exact = partitioner.Solve(gpu_ids, options);
      point_ok = point_ok && strategy == partition::SearchStrategy::kExact &&
                 SamePartition(solved, exact);
      partition::PartitionOptions beam_options = options;
      beam_options.strategy = partition::SearchStrategy::kBeam;
      const partition::Partition beam = partitioner.SolveScalable(gpu_ids, beam_options);
      point_ok = point_ok && beam.feasible &&
                 beam.bottleneck_time >= exact.bottleneck_time - 1e-12;
      beam_over_exact =
          exact.bottleneck_time > 0.0 ? beam.bottleneck_time / exact.bottleneck_time : 0.0;
    }
    const bool within_budget = budget_ms <= 0.0 || solve_ms <= budget_ms;
    ok = ok && point_ok && within_budget;

    std::printf("  %-13s %4d gpus  k=%-2d  %-12s orders~%llu  %8.2f ms serial  "
                "%8.2f ms x%d%s%s  bottleneck %.3f ms%s%s\n",
                c.label.c_str(), c.nodes * c.gpus_per_node, c.k,
                partition::SearchStrategyName(strategy),
                static_cast<unsigned long long>(orders), solve_ms, parallel_ms,
                pool.num_threads(), parallel_identical ? "" : " DIVERGED",
                parallel_identical ? "" : " — BUG", solved.bottleneck_time * 1e3,
                c.compare_exact && beam_over_exact > 0.0
                    ? (" (beam/exact " + std::to_string(beam_over_exact) + ")").c_str()
                    : "",
                point_ok ? (within_budget ? "" : "  OVER BUDGET") : "  FAILED");
    if (sink != nullptr) {
      runner::ResultRow row;
      row.Set("bench", "partitioner_growth")
          .Set("case", c.label)
          .Set("gpus", c.nodes * c.gpus_per_node)
          .Set("nodes", c.nodes)
          .Set("racks", c.racks)
          .Set("k", c.k)
          .Set("strategy", partition::SearchStrategyName(strategy))
          .Set("orders_estimate", static_cast<double>(orders))
          .Set("solve_ms", solve_ms)
          .Set("feasible", solved.feasible)
          .Set("bottleneck_ms", solved.bottleneck_time * 1e3);
      if (c.compare_exact) {
        row.Set("beam_over_exact", beam_over_exact);
      }
      sink->Write(row);
      runner::ResultRow parallel_row;
      parallel_row.Set("bench", "partitioner_parallel")
          .Set("case", c.label)
          .Set("gpus", c.nodes * c.gpus_per_node)
          .Set("k", c.k)
          .Set("strategy", partition::SearchStrategyName(strategy))
          .Set("threads", pool.num_threads())
          .Set("cores", cores)
          .Set("serial_ms", solve_ms)
          .Set("parallel_ms", parallel_ms)
          .Set("speedup", parallel_ms > 0.0 ? solve_ms / parallel_ms : 0.0)
          .Set("identical", parallel_identical);
      sink->Write(parallel_row);
    }
  }
  if (sink != nullptr) {
    sink->Flush();
  }
  std::printf("\ngrowth curve %s\n", ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}

// --width-sweep: the autotuning sweep over the same growth clusters. Clusters
// live in a deque (stable addresses — WidthSweepCase keeps pointers into it).
int RunWidthSweepMode(bool full, int repeat, runner::ResultSink* sink) {
  RegisterGrowthClasses();
  const model::ModelGraph graph = model::BuildResNet152();
  const model::ModelProfile profile(graph, 32);

  std::deque<hw::Cluster> clusters;
  std::vector<runner::WidthSweepCase> cases;
  for (const GrowthCase& c : GrowthCases(full)) {
    clusters.push_back(BuildGrowthCluster(c));
    runner::WidthSweepCase sweep_case;
    sweep_case.label = c.label;
    sweep_case.cluster = &clusters.back();
    sweep_case.gpu_ids = PickGrowthVw(clusters.back(), c);
    sweep_case.has_exact = c.compare_exact;
    cases.push_back(std::move(sweep_case));
  }

  runner::WidthSweepConfig config;
  config.repeat = std::min(repeat, 3);
  return runner::RunWidthSweep(profile, cases, config, sink) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  int repeat = 5;
  std::string expect_path;
  std::string write_expect_path;
  bool growth = false;
  bool growth_full = false;
  bool width_sweep = false;
  bool width_sweep_full = false;
  double growth_budget_ms = 0.0;
  for (const std::string& arg : args.rest) {
    if (arg == "--growth" || arg == "--growth=smoke") {
      growth = true;
    } else if (arg == "--growth=full") {
      growth = true;
      growth_full = true;
    } else if (arg == "--width-sweep" || arg == "--width-sweep=smoke") {
      width_sweep = true;
    } else if (arg == "--width-sweep=full") {
      width_sweep = true;
      width_sweep_full = true;
    } else if (arg.rfind("--growth-budget-ms=", 0) == 0) {
      int parsed = 0;
      if (!runner::ParseIntFlag(arg.substr(19), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --growth-budget-ms needs a positive integer, got \"%s\"\n",
                     arg.c_str() + 19);
        return 2;
      }
      growth_budget_ms = parsed;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      int parsed = 0;
      if (!runner::ParseIntFlag(arg.substr(9), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --repeat needs a positive integer, got \"%s\"\n",
                     arg.c_str() + 9);
        return 2;
      }
      repeat = parsed;
    } else if (arg.rfind("--expect=", 0) == 0) {
      expect_path = arg.substr(9);
    } else if (arg.rfind("--write-expect=", 0) == 0) {
      write_expect_path = arg.substr(15);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  if (width_sweep) {
    return RunWidthSweepMode(width_sweep_full, repeat, args.sink());
  }
  if (growth) {
    return RunGrowthCurve(growth_full, growth_budget_ms, repeat,
                          args.threads > 1 ? args.threads : 8, args.sink());
  }

  // Shared read-only inputs, built once: profiles are per (model, batch) and
  // clusters per label. GPU classes the mixed spec declares register here.
  const hw::Cluster paper = hw::Cluster::Paper();
  const hw::Cluster mixed = MixedCluster();
  const auto cluster_of = [&](const std::string& label) -> const hw::Cluster& {
    return label == "paper" ? paper : mixed;
  };
  std::map<std::string, model::ModelGraph> graphs;
  for (const char* name : {"resnet152", "vgg19", "bert-large"}) {
    graphs.emplace(name, BuildModelByName(name));
  }
  std::map<std::string, model::ModelProfile> profiles;
  for (const auto& [name, graph] : graphs) {
    profiles.emplace(name, model::ModelProfile(graph, 32));
  }

  const std::vector<GridPoint> grid = BuildGrid();
  std::printf("timing %zu grid points (cold Solve vs pre-optimization SolveReference,\n"
              "best of %d repetitions each)\n\n",
              grid.size(), repeat);

  runner::SweepOptions sweep_options = args.sweep_options();
  sweep_options.threads = args.threads > 0 ? args.threads : 1;
  runner::SweepRunner sweep(sweep_options);
  const std::vector<PointResult> results = sweep.Map<PointResult>(
      static_cast<int64_t>(grid.size()), [&](int64_t i) {
        const GridPoint& point = grid[static_cast<size_t>(i)];
        return RunPoint(point, cluster_of(point.cluster), profiles.at(point.model), repeat);
      });

  bool all_identical = true;
  double resnet_paper_speedup_min = 0.0;
  double resnet_paper_speedup_geo = 1.0;
  int resnet_paper_points = 0;
  for (const PointResult& r : results) {
    all_identical = all_identical && r.identical;
    const double speedup = r.fast_ms > 0.0 ? r.ref_ms / r.fast_ms : 0.0;
    std::printf("  %-10s %-12s %-28s nm=%d  %8.3f -> %7.3f ms  (%5.1fx)%s\n",
                r.point.model.c_str(), r.point.cluster.c_str(), r.point.vw.c_str(),
                r.point.nm, r.ref_ms, r.fast_ms, speedup,
                r.identical ? "" : "  RESULTS DIVERGED — BUG");
    if (r.point.model == "resnet152" && r.point.cluster == "paper" && r.k == 4) {
      resnet_paper_speedup_min = resnet_paper_points == 0
                                     ? speedup
                                     : std::min(resnet_paper_speedup_min, speedup);
      resnet_paper_speedup_geo *= speedup;
      ++resnet_paper_points;
    }
    if (runner::ResultSink* sink = args.sink()) {
      runner::ResultRow row;
      row.Set("bench", "partitioner_speed")
          .Set("model", r.point.model)
          .Set("cluster", r.point.cluster)
          .Set("vw", r.point.vw)
          .Set("nm", r.point.nm)
          .Set("layers", r.layers)
          .Set("k", r.k)
          .Set("feasible", r.feasible)
          .Set("bottleneck_ms", r.bottleneck_ms)
          .Set("ref_solve_ms", r.ref_ms)
          .Set("fast_solve_ms", r.fast_ms)
          .Set("speedup", speedup)
          .Set("identical", r.identical);
      sink->Write(row);
    }
  }

  // Warm-solve allocation check: after the grid every shape has been seen, so
  // further solves on this thread must not grow a single scratch buffer.
  const std::vector<int> warm_ids = core::PickGpus(paper, "VRGQ");
  const partition::Partitioner warm_partitioner(profiles.at("resnet152"), paper);
  partition::PartitionOptions warm_options;
  warm_options.nm = 2;
  (void)warm_partitioner.Solve(warm_ids, warm_options);  // warm this thread's scratch
  const int64_t grows_before = partition::DpScratchGrowCount();
  for (int r = 0; r < 50; ++r) {
    (void)warm_partitioner.Solve(warm_ids, warm_options);
  }
  const int64_t scratch_grows = partition::DpScratchGrowCount() - grows_before;

  if (resnet_paper_points > 0) {
    resnet_paper_speedup_geo =
        std::pow(resnet_paper_speedup_geo, 1.0 / resnet_paper_points);
  }
  std::printf("\nresnet152 on the paper 4-GPU VWs: cold-solve speedup geomean %.1fx, min %.1fx "
              "(%d points)\n",
              resnet_paper_speedup_geo, resnet_paper_speedup_min, resnet_paper_points);
  std::printf("scratch buffer grows during 50 repeated warm solves: %lld %s\n",
              static_cast<long long>(scratch_grows),
              scratch_grows == 0 ? "(no per-solve DP allocation)" : "— BUG");
  std::printf("optimized vs reference results bit-identical on all points: %s\n",
              all_identical ? "yes" : "NO — BUG");

  if (runner::ResultSink* sink = args.sink()) {
    runner::ResultRow summary;
    summary.Set("bench", "partitioner_speed_summary")
        .Set("resnet152_paper_speedup_geomean", resnet_paper_speedup_geo)
        .Set("resnet152_paper_speedup_min", resnet_paper_speedup_min)
        .Set("scratch_grows_warm", scratch_grows)
        .Set("all_identical", all_identical);
    sink->Write(summary);
    sink->Flush();
  }

  int exit_code = (all_identical && scratch_grows == 0) ? 0 : 1;
  if (!write_expect_path.empty()) {
    exit_code = std::max(exit_code, WriteExpectations(results, write_expect_path));
  }
  if (!expect_path.empty()) {
    exit_code = std::max(exit_code, CompareExpectations(results, expect_path));
  }
  return exit_code;
}
