// serve_bench: load generator for hetpipe_serve. Opens --concurrency
// connections, round-trips --queries requests drawn from a deterministic
// skewed workload (a Zipf pick over --workload-size distinct plan/max_nm
// queries, so the cache sees hot keys and a long tail), and reports the
// latency/throughput/hit-rate trajectory. The JSON rows (--json) are the
// repo's serve perf trajectory; commit a run as BENCH_serve.json (see README
// "Serve performance" and docs/benchmarks.md).
//
// With --port=N it drives a live daemon (what CI's smoke test and the
// committed trajectory do); without it, it starts an in-process PlanServer on
// an ephemeral loopback port — same wire path, one command.
//
// Flags: --host=ADDR --port=N      target server (default: in-process)
//        --queries=N               total round trips (default 1000)
//        --concurrency=N           connections, each on its own thread
//                                  (default 8)
//        --qps=N                   global pacing; 0 = as fast as possible
//        --skew=PCT                Zipf exponent in percent: 0 = uniform,
//                                  100 = classic 1/rank (default 100)
//        --workload-size=N         distinct requests in the pool (default 12)
//        --seed=N                  workload/sampling seed (default 42)
//        --strategy=NAME           search-tier knobs stamped onto every
//        --beam-width=N            workload item (defaults auto / 8 / 720);
//        --rack-order-limit=N      non-default knobs fork the server's cache
//                                  keys exactly like the batch benches
//        --threads --out --json --csv --cache-file (runner/cli.h;
//        cache/threads only shape the in-process server)
//
// Exit 0 when every query round-tripped with ok=true; 1 otherwise.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "runner/cli.h"
#include "runner/partition_cache.h"
#include "runner/result_sink.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace hetpipe;
using Clock = std::chrono::steady_clock;

struct Sample {
  double done_s = 0.0;     // completion time since bench start
  double latency_us = 0.0; // client-observed round trip
  bool cache_hit = false;
  bool ok = false;
};

// The pool of distinct requests the Zipf pick draws from: plan queries over
// the paper testbed's virtual-worker shapes at several Nm, with a max_nm
// query mixed in every fifth slot. Deterministic in k, so two runs (and the
// server's cache) see the identical key set.
serve::PlanRequest WorkloadItem(int k) {
  static const char* kSelectors[] = {"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ",
                                     "VV",   "QQ",   "VQ",   "RG",   "VRG",  "GQ"};
  constexpr int kNumSelectors = static_cast<int>(sizeof(kSelectors) / sizeof(kSelectors[0]));
  serve::PlanRequest request;
  request.selector = kSelectors[k % kNumSelectors];
  request.model = (k % 3 == 2) ? "vgg19" : "resnet152";
  if (k % 5 == 4) {
    request.op = "max_nm";
    request.nm_cap = 4;
  } else {
    request.op = "plan";
    request.nm = 1 + (k % 4);
  }
  request.id = "w" + std::to_string(k);
  return request;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

bool ParseCountFlag(const std::string& value, const char* name, int min, int* out) {
  if (!runner::ParseIntFlag(value, out) || *out < min) {
    std::fprintf(stderr, "error: %s needs an integer >= %d, got \"%s\"\n", name, min,
                 value.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  std::string host = "127.0.0.1";
  int port = 0;
  int queries = 1000;
  int concurrency = 8;
  int qps = 0;
  int skew_pct = 100;
  int workload_size = 12;
  int seed = 42;
  std::string strategy = "auto";
  int beam_width = 8;
  int rack_order_limit = 720;
  for (const std::string& arg : args.rest) {
    const auto value = [&](size_t prefix) { return arg.substr(prefix); };
    if (arg.rfind("--host=", 0) == 0) {
      host = value(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!ParseCountFlag(value(7), "--port", 1, &port)) return 2;
    } else if (arg.rfind("--queries=", 0) == 0) {
      if (!ParseCountFlag(value(10), "--queries", 1, &queries)) return 2;
    } else if (arg.rfind("--concurrency=", 0) == 0) {
      if (!ParseCountFlag(value(14), "--concurrency", 1, &concurrency)) return 2;
    } else if (arg.rfind("--qps=", 0) == 0) {
      if (!ParseCountFlag(value(6), "--qps", 0, &qps)) return 2;
    } else if (arg.rfind("--skew=", 0) == 0) {
      if (!ParseCountFlag(value(7), "--skew", 0, &skew_pct)) return 2;
    } else if (arg.rfind("--workload-size=", 0) == 0) {
      if (!ParseCountFlag(value(16), "--workload-size", 1, &workload_size)) return 2;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!ParseCountFlag(value(7), "--seed", 0, &seed)) return 2;
    } else if (arg.rfind("--strategy=", 0) == 0) {
      strategy = value(11);  // server-validated, like serve_client
    } else if (arg.rfind("--beam-width=", 0) == 0) {
      if (!ParseCountFlag(value(13), "--beam-width", 1, &beam_width)) return 2;
    } else if (arg.rfind("--rack-order-limit=", 0) == 0) {
      if (!ParseCountFlag(value(19), "--rack-order-limit", 1, &rack_order_limit)) return 2;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (concurrency > queries) concurrency = queries;

  // In-process fallback: same sockets, same frames, no separate process.
  runner::PartitionCache local_cache;
  std::unique_ptr<serve::PlanServer> local_server;
  if (port == 0) {
    serve::PlanServerOptions options;
    options.threads = args.threads;
    options.cache_path = args.cache_path();
    local_server = std::make_unique<serve::PlanServer>(
        args.cache() ? args.cache() : &local_cache, options);
    std::string error;
    if (!local_server->Start(&error)) {
      std::fprintf(stderr, "serve_bench: in-process server: %s\n", error.c_str());
      return 1;
    }
    host = "127.0.0.1";
    port = local_server->port();
    std::printf("serve_bench: started in-process server on 127.0.0.1:%d\n", port);
  }

  // Workload pool and its Zipf weights: weight of rank i is (i+1)^-skew.
  const double skew = skew_pct / 100.0;
  std::vector<std::string> pool_json;
  pool_json.reserve(static_cast<size_t>(workload_size));
  for (int k = 0; k < workload_size; ++k) {
    serve::PlanRequest item = WorkloadItem(k);
    item.strategy = strategy;
    item.beam_width = beam_width;
    item.rack_order_limit = rack_order_limit;
    pool_json.push_back(item.ToJson());
  }
  std::vector<double> cumulative(pool_json.size());
  double total_weight = 0.0;
  for (size_t i = 0; i < pool_json.size(); ++i) {
    total_weight += std::pow(static_cast<double>(i + 1), -skew);
    cumulative[i] = total_weight;
  }

  std::vector<Sample> samples(static_cast<size_t>(queries));
  std::vector<std::thread> workers;
  std::vector<std::string> worker_errors(static_cast<size_t>(concurrency));
  const Clock::time_point bench_start = Clock::now();

  for (int t = 0; t < concurrency; ++t) {
    workers.emplace_back([&, t] {
      serve::PlanClient client;
      std::string error;
      if (!client.Connect(host, port, &error)) {
        worker_errors[static_cast<size_t>(t)] = error;
        return;
      }
      std::mt19937 rng(static_cast<uint32_t>(seed) + static_cast<uint32_t>(t) * 7919u);
      std::uniform_real_distribution<double> uniform(0.0, total_weight);
      std::string response_json;
      std::map<std::string, serve::JsonValue> response;
      for (int i = t; i < queries; i += concurrency) {
        if (qps > 0) {
          const auto due = bench_start + std::chrono::duration_cast<Clock::duration>(
                                             std::chrono::duration<double>(i / double(qps)));
          std::this_thread::sleep_until(due);
        }
        const double pick = uniform(rng);
        const size_t item = static_cast<size_t>(
            std::lower_bound(cumulative.begin(), cumulative.end(), pick) - cumulative.begin());
        const Clock::time_point sent = Clock::now();
        Sample& sample = samples[static_cast<size_t>(i)];
        if (!client.CallRaw(pool_json[std::min(item, pool_json.size() - 1)], &response_json,
                            &error)) {
          worker_errors[static_cast<size_t>(t)] = error;
          return;
        }
        const Clock::time_point got = Clock::now();
        sample.latency_us = std::chrono::duration<double, std::micro>(got - sent).count();
        sample.done_s = std::chrono::duration<double>(got - bench_start).count();
        response.clear();
        if (serve::ParseJsonObject(response_json, &response, &error)) {
          auto ok = response.find("ok");
          sample.ok = ok != response.end() &&
                      ok->second.type == serve::JsonValue::Type::kBool && ok->second.boolean;
          auto hit = response.find("cache_hit");
          sample.cache_hit = hit != response.end() &&
                             hit->second.type == serve::JsonValue::Type::kBool &&
                             hit->second.boolean;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s = std::chrono::duration<double>(Clock::now() - bench_start).count();

  bool failed = false;
  for (int t = 0; t < concurrency; ++t) {
    if (!worker_errors[static_cast<size_t>(t)].empty()) {
      std::fprintf(stderr, "serve_bench: worker %d: %s\n", t,
                   worker_errors[static_cast<size_t>(t)].c_str());
      failed = true;
    }
  }
  int64_t ok_count = 0, hit_count = 0;
  for (const Sample& sample : samples) {
    ok_count += sample.ok ? 1 : 0;
    hit_count += sample.cache_hit ? 1 : 0;
  }

  // Server-side cache truth, from the stats op over the same wire.
  double server_hit_rate = 0.0;
  int64_t server_requests = 0;
  {
    serve::PlanClient stats_client;
    std::string error;
    serve::PlanRequest stats;
    stats.op = "stats";
    std::map<std::string, serve::JsonValue> response;
    if (stats_client.Connect(host, port, &error) &&
        stats_client.Call(stats, &response, &error)) {
      const auto num = [&](const char* key) {
        auto it = response.find(key);
        return it != response.end() && it->second.type == serve::JsonValue::Type::kNumber
                   ? it->second.num
                   : 0.0;
      };
      const double hits = num("cache_hits"), misses = num("cache_misses");
      if (hits + misses > 0) server_hit_rate = hits / (hits + misses);
      server_requests = static_cast<int64_t>(num("requests"));
    } else {
      std::fprintf(stderr, "serve_bench: stats query failed: %s\n", error.c_str());
      failed = true;
    }
  }

  // Trajectory: completion-ordered samples in up-to-10 equal-count windows.
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) { return a.done_s < b.done_s; });
  const int windows = std::min(10, queries);
  std::printf("\n%8s %8s %8s %10s %10s %8s\n", "window", "t_end_s", "queries", "p50_ms",
              "p99_ms", "hit_rate");
  for (int w = 0; w < windows; ++w) {
    const size_t first = static_cast<size_t>(queries) * static_cast<size_t>(w) /
                         static_cast<size_t>(windows);
    const size_t last = static_cast<size_t>(queries) * static_cast<size_t>(w + 1) /
                        static_cast<size_t>(windows);
    if (last <= first) continue;
    std::vector<double> latencies;
    latencies.reserve(last - first);
    int64_t window_hits = 0;
    for (size_t i = first; i < last; ++i) {
      latencies.push_back(samples[i].latency_us);
      window_hits += samples[i].cache_hit ? 1 : 0;
    }
    std::sort(latencies.begin(), latencies.end());
    const double window_start = first == 0 ? 0.0 : samples[first - 1].done_s;
    const double span = std::max(samples[last - 1].done_s - window_start, 1e-9);
    const double window_qps = static_cast<double>(last - first) / span;
    const double p50_ms = Percentile(latencies, 0.50) / 1000.0;
    const double p99_ms = Percentile(latencies, 0.99) / 1000.0;
    const double hit_rate = static_cast<double>(window_hits) / static_cast<double>(last - first);
    std::printf("%8d %8.3f %8zu %10.3f %10.3f %8.3f\n", w, samples[last - 1].done_s,
                last - first, p50_ms, p99_ms, hit_rate);
    if (runner::ResultSink* sink = args.sink()) {
      runner::ResultRow row;
      row.Set("bench", "serve").Set("row", "window").Set("window", w);
      row.Set("t_end_s", samples[last - 1].done_s);
      row.Set("queries", static_cast<int64_t>(last - first));
      row.Set("qps", window_qps);
      row.Set("p50_ms", p50_ms).Set("p99_ms", p99_ms).Set("hit_rate", hit_rate);
      sink->Write(row);
    }
  }

  std::vector<double> all_latencies;
  all_latencies.reserve(samples.size());
  for (const Sample& sample : samples) all_latencies.push_back(sample.latency_us);
  std::sort(all_latencies.begin(), all_latencies.end());
  const double overall_qps = static_cast<double>(queries) / std::max(wall_s, 1e-9);
  const double p50_ms = Percentile(all_latencies, 0.50) / 1000.0;
  const double p99_ms = Percentile(all_latencies, 0.99) / 1000.0;
  const double client_hit_rate = static_cast<double>(hit_count) / static_cast<double>(queries);

  std::printf("\n%d queries on %d connections in %.3f s: %.1f qps, p50 %.3f ms, p99 %.3f ms\n"
              "cache hit rate: %.3f client-observed, %.3f server-side (%lld server requests)\n",
              queries, concurrency, wall_s, overall_qps, p50_ms, p99_ms, client_hit_rate,
              server_hit_rate, static_cast<long long>(server_requests));
  if (ok_count != queries) {
    std::fprintf(stderr, "serve_bench: %lld of %d responses were not ok\n",
                 static_cast<long long>(queries - ok_count), queries);
    failed = true;
  }

  if (runner::ResultSink* sink = args.sink()) {
    runner::ResultRow row;
    row.Set("bench", "serve").Set("row", "summary");
    row.Set("queries", queries).Set("concurrency", concurrency);
    row.Set("workload_size", workload_size).Set("skew", skew).Set("qps_target", qps);
    row.Set("wall_s", wall_s).Set("qps", overall_qps);
    row.Set("p50_ms", p50_ms).Set("p99_ms", p99_ms);
    row.Set("hit_rate", client_hit_rate).Set("server_hit_rate", server_hit_rate);
    row.Set("ok", ok_count == queries);
    sink->Write(row);
    sink->Flush();
  }

  if (local_server) {
    local_server->RequestShutdown();
    local_server->Join();
  }
  return failed ? 1 : 0;
}
