// Acceptance benchmark for the sweep runner: a partitioner-ablation-style
// sweep (models x VW shapes x Nm x jitter) executed three ways —
//   serial    one RunExperiment after another, no shared partition cache
//             (what the hand-rolled bench loops used to do),
//   parallel  SweepRunner with N threads and a shared PartitionCache,
//   warm      the same sweep again on the already-populated cache,
// verifying element-wise identical results and reporting wall-clock speedup.
//
// With --nested, runs the nested-sweep smoke instead: an outer
// SweepRunner::Map whose tasks each construct an inner SweepRunner sharing
// the outer pool and cache (SweepOptions::pool), verifying that nested
// fan-out neither deadlocks nor changes a single row vs the serial run.
//
// With --store-roundtrip, runs the result-store smoke instead: the sweep's
// rows go to a JSONL sink and a .hds StoreSink (src/store/) side by side,
// the store file is read back, and every row must re-render to the exact
// JSONL line — the end-to-end guarantee that --out=file.hds loses nothing.
//
// Flags: --threads=N (default 8) --repeat=N (default 5) --nested
//        --store-roundtrip --json[=PATH] --csv[=PATH] --out=PATH
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "runner/cli.h"
#include "store/extent_reader.h"
#include "store/extent_writer.h"

namespace {

using namespace hetpipe;
using Clock = std::chrono::steady_clock;

std::vector<core::Experiment> BuildSweep() {
  const char* kCodes[] = {"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ", "RRGG"};
  std::vector<core::Experiment> experiments;
  for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
    for (const char* codes : kCodes) {
      for (int nm : {1, 3, 5}) {
        for (double jitter : {0.0, 0.1, 0.2}) {
          core::Experiment e;
          e.kind = core::ExperimentKind::kSingleVirtualWorker;
          e.model = model;
          e.vw_codes = codes;
          e.config.nm = nm;
          e.config.jitter_cv = jitter;
          e.config.waves = 30;
          experiments.push_back(std::move(e));
        }
      }
    }
  }
  return experiments;
}

bool SameResults(const std::vector<core::ExperimentResult>& a,
                 const std::vector<core::ExperimentResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible ||
        a[i].throughput_img_s != b[i].throughput_img_s ||  // bit-identical, not approximate
        a[i].partition.bottleneck_time != b[i].partition.bottleneck_time ||
        a[i].partition.num_stages() != b[i].partition.num_stages()) {
      return false;
    }
  }
  return true;
}

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Nested-sweep smoke: split the experiment list into groups, run each group
// in an inner SweepRunner constructed inside an outer SweepRunner::Map task,
// with every inner runner sharing the outer pool and cache. The flattened
// rows must be element-wise identical to a plain serial run.
int RunNestedSmoke(int threads) {
  const std::vector<core::Experiment> experiments = BuildSweep();

  std::vector<core::ExperimentResult> serial;
  serial.reserve(experiments.size());
  for (const core::Experiment& e : experiments) {
    serial.push_back(core::RunExperiment(e));
  }

  runner::SweepOptions outer_options;
  outer_options.threads = threads;
  runner::SweepRunner outer(outer_options);
  constexpr int64_t kGroups = 7;
  const auto nested = outer.Map<std::vector<core::ExperimentResult>>(
      kGroups, [&](int64_t group) {
        std::vector<core::Experiment> slice;
        for (size_t i = static_cast<size_t>(group); i < experiments.size();
             i += static_cast<size_t>(kGroups)) {
          slice.push_back(experiments[i]);
        }
        runner::SweepOptions inner_options;
        inner_options.pool = &outer.pool();  // shared: no second thread set
        inner_options.cache = &outer.cache();
        runner::SweepRunner inner(inner_options);
        return inner.Run(slice);
      });

  std::vector<core::ExperimentResult> flattened(experiments.size());
  for (int64_t group = 0; group < kGroups; ++group) {
    const auto& slice = nested[static_cast<size_t>(group)];
    for (size_t s = 0; s < slice.size(); ++s) {
      flattened[static_cast<size_t>(group) + s * static_cast<size_t>(kGroups)] = slice[s];
    }
  }

  const bool identical = SameResults(serial, flattened);
  std::printf("nested sweeps (%d-thread shared pool, %lld inner runners) vs serial: %s\n",
              threads, static_cast<long long>(kGroups),
              identical ? "element-wise identical" : "DIVERGED — BUG");
  return identical ? 0 : 1;
}

// Store smoke: one sweep, rows mirrored to JSONL and to a .hds store file;
// reading the store back must reproduce the JSONL stream byte for byte.
int RunStoreRoundtrip(int threads) {
  const std::string store_path = "sweep_speedup_roundtrip.hds";
  std::ostringstream jsonl;
  std::string error;
  std::unique_ptr<store::StoreSink> store_sink = store::StoreSink::Open(store_path, &error);
  if (store_sink == nullptr) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  runner::JsonlSink jsonl_sink(jsonl);
  runner::MultiSink multi;
  multi.AddSink(&jsonl_sink);
  multi.AddSink(store_sink.get());

  runner::SweepOptions options;
  options.threads = threads;
  options.sink = &multi;
  runner::SweepRunner sweep(options);
  const std::vector<core::Experiment> experiments = BuildSweep();
  sweep.Run(experiments);
  multi.Flush();
  if (!store_sink->Close(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  std::vector<runner::ResultRow> read_back;
  if (!store::ReadAllRows(store_path, &read_back, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::remove(store_path.c_str());
    return 1;
  }
  std::string rendered;
  for (const runner::ResultRow& row : read_back) {
    rendered += runner::RowToJson(row);
    rendered += "\n";
  }
  std::remove(store_path.c_str());

  const bool identical = rendered == jsonl.str();
  std::printf("store round trip (%zu experiments, %zu rows back): %s\n", experiments.size(),
              read_back.size(),
              identical ? "JSONL byte-identical" : "DIVERGED from JSONL — BUG");
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  const int threads = args.threads > 0 ? args.threads : 8;
  int repeat = 5;
  bool nested = false;
  bool store_roundtrip = false;
  for (const std::string& arg : args.rest) {
    if (arg.rfind("--repeat=", 0) == 0) {
      int parsed = 0;
      if (!runner::ParseIntFlag(arg.substr(9), &parsed)) {
        std::fprintf(stderr, "error: --repeat needs an integer, got \"%s\"\n",
                     arg.c_str() + 9);
        return 2;
      }
      repeat = std::max(1, parsed);
    } else if (arg == "--nested") {
      nested = true;
    } else if (arg == "--store-roundtrip") {
      store_roundtrip = true;
    }
  }
  if (store_roundtrip) {
    return RunStoreRoundtrip(threads);
  }
  if (nested) {
    return RunNestedSmoke(threads);
  }
  const std::vector<core::Experiment> experiments = BuildSweep();
  std::printf("sweep of %zu single-VW configurations (models x shapes x Nm x jitter),\n"
              "each mode timed over %d repetitions\n\n",
              experiments.size(), repeat);

  // Serial baseline: no shared cache, no pool — each experiment pays its own
  // full GPU-order search, like the old hand-rolled loops.
  std::vector<core::ExperimentResult> serial;
  const auto serial_start = Clock::now();
  for (int r = 0; r < repeat; ++r) {
    serial.clear();
    serial.reserve(experiments.size());
    for (const core::Experiment& e : experiments) {
      serial.push_back(core::RunExperiment(e));
    }
  }
  const double serial_s = Seconds(serial_start, Clock::now()) / repeat;
  std::printf("  %-28s %8.3f s\n", "serial, no cache:", serial_s);

  // Parallel sweep with a shared cache, cold (fresh runner every repetition).
  runner::SweepOptions options = args.sweep_options();
  options.threads = threads;
  std::vector<core::ExperimentResult> parallel;
  int64_t cold_hits = 0;
  int64_t cold_misses = 0;
  const auto parallel_start = Clock::now();
  for (int r = 0; r < repeat; ++r) {
    runner::SweepRunner cold(options);
    parallel = cold.Run(experiments);
    cold_hits = cold.cache().hits();
    cold_misses = cold.cache().misses();
  }
  const double parallel_s = Seconds(parallel_start, Clock::now()) / repeat;
  std::printf("  %-28s %8.3f s  (%.2fx vs serial, %d threads, cache: %lld hits / %lld misses)\n",
              "parallel, cold cache:", parallel_s, serial_s / parallel_s, threads,
              static_cast<long long>(cold_hits), static_cast<long long>(cold_misses));

  // The same sweep on an already-populated cache: every partition is a hit.
  runner::SweepRunner sweep(options);
  sweep.Run(experiments);  // warm it
  std::vector<core::ExperimentResult> warm;
  const auto warm_start = Clock::now();
  for (int r = 0; r < repeat; ++r) {
    warm = sweep.Run(experiments);
  }
  const double warm_s = Seconds(warm_start, Clock::now()) / repeat;
  std::printf("  %-28s %8.3f s  (%.2fx vs serial)\n", "parallel, warm cache:", warm_s,
              serial_s / warm_s);

  const bool identical = SameResults(serial, parallel) && SameResults(serial, warm);
  std::printf("\nresults element-wise identical across all three runs: %s\n",
              identical ? "yes" : "NO — BUG");
  return identical ? 0 : 1;
}
