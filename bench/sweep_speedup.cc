// Acceptance benchmark for the sweep runner: a partitioner-ablation-style
// sweep (models x VW shapes x Nm x jitter) executed three ways —
//   serial    one RunExperiment after another, no shared partition cache
//             (what the hand-rolled bench loops used to do),
//   parallel  SweepRunner with N threads and a shared PartitionCache,
//   warm      the same sweep again on the already-populated cache,
// verifying element-wise identical results and reporting wall-clock speedup.
//
// Flags: --threads=N (default 8) --repeat=N (default 5) --json[=PATH] --csv[=PATH]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "runner/cli.h"

namespace {

using namespace hetpipe;
using Clock = std::chrono::steady_clock;

std::vector<core::Experiment> BuildSweep() {
  const char* kCodes[] = {"VVVV", "RRRR", "GGGG", "QQQQ", "VRGQ", "VVQQ", "RRGG"};
  std::vector<core::Experiment> experiments;
  for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
    for (const char* codes : kCodes) {
      for (int nm : {1, 3, 5}) {
        for (double jitter : {0.0, 0.1, 0.2}) {
          core::Experiment e;
          e.kind = core::ExperimentKind::kSingleVirtualWorker;
          e.model = model;
          e.vw_codes = codes;
          e.config.nm = nm;
          e.config.jitter_cv = jitter;
          e.config.waves = 30;
          experiments.push_back(std::move(e));
        }
      }
    }
  }
  return experiments;
}

bool SameResults(const std::vector<core::ExperimentResult>& a,
                 const std::vector<core::ExperimentResult>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].feasible != b[i].feasible ||
        a[i].throughput_img_s != b[i].throughput_img_s ||  // bit-identical, not approximate
        a[i].partition.bottleneck_time != b[i].partition.bottleneck_time ||
        a[i].partition.num_stages() != b[i].partition.num_stages()) {
      return false;
    }
  }
  return true;
}

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  const int threads = args.threads > 0 ? args.threads : 8;
  int repeat = 5;
  for (const std::string& arg : args.rest) {
    if (arg.rfind("--repeat=", 0) == 0) {
      repeat = std::max(1, std::atoi(arg.c_str() + 9));
    }
  }
  const std::vector<core::Experiment> experiments = BuildSweep();
  std::printf("sweep of %zu single-VW configurations (models x shapes x Nm x jitter),\n"
              "each mode timed over %d repetitions\n\n",
              experiments.size(), repeat);

  // Serial baseline: no shared cache, no pool — each experiment pays its own
  // full GPU-order search, like the old hand-rolled loops.
  std::vector<core::ExperimentResult> serial;
  const auto serial_start = Clock::now();
  for (int r = 0; r < repeat; ++r) {
    serial.clear();
    serial.reserve(experiments.size());
    for (const core::Experiment& e : experiments) {
      serial.push_back(core::RunExperiment(e));
    }
  }
  const double serial_s = Seconds(serial_start, Clock::now()) / repeat;
  std::printf("  %-28s %8.3f s\n", "serial, no cache:", serial_s);

  // Parallel sweep with a shared cache, cold (fresh runner every repetition).
  runner::SweepOptions options = args.sweep_options();
  options.threads = threads;
  std::vector<core::ExperimentResult> parallel;
  int64_t cold_hits = 0;
  int64_t cold_misses = 0;
  const auto parallel_start = Clock::now();
  for (int r = 0; r < repeat; ++r) {
    runner::SweepRunner cold(options);
    parallel = cold.Run(experiments);
    cold_hits = cold.cache().hits();
    cold_misses = cold.cache().misses();
  }
  const double parallel_s = Seconds(parallel_start, Clock::now()) / repeat;
  std::printf("  %-28s %8.3f s  (%.2fx vs serial, %d threads, cache: %lld hits / %lld misses)\n",
              "parallel, cold cache:", parallel_s, serial_s / parallel_s, threads,
              static_cast<long long>(cold_hits), static_cast<long long>(cold_misses));

  // The same sweep on an already-populated cache: every partition is a hit.
  runner::SweepRunner sweep(options);
  sweep.Run(experiments);  // warm it
  std::vector<core::ExperimentResult> warm;
  const auto warm_start = Clock::now();
  for (int r = 0; r < repeat; ++r) {
    warm = sweep.Run(experiments);
  }
  const double warm_s = Seconds(warm_start, Clock::now()) / repeat;
  std::printf("  %-28s %8.3f s  (%.2fx vs serial)\n", "parallel, warm cache:", warm_s,
              serial_s / warm_s);

  const bool identical = SameResults(serial, parallel) && SameResults(serial, warm);
  std::printf("\nresults element-wise identical across all three runs: %s\n",
              identical ? "yes" : "NO — BUG");
  return identical ? 0 : 1;
}
