// Empirical validation of Theorem 1 (§6, Appendix A): the regret of WSP's
// noisy distributed pipeline SGD on a convex objective shrinks like
// O(1/sqrt(T)), i.e. regret * sqrt(T) stays bounded as the horizon grows.
// The horizons run concurrently on the sweep runner (each is an independent
// training run) and report in horizon order.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>
#include <vector>

#include "runner/cli.h"
#include "train/data.h"
#include "train/model_zoo.h"
#include "train/regret.h"
#include "wsp/staleness.h"
#include "wsp/sync_policy.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());

  const train::Dataset data = train::MakeLinearRegression(600, 8, 0.02, 424242);

  train::RegretExperimentOptions options;
  options.num_workers = 4;
  options.nm = 4;
  options.d = 1;
  options.batch = 4;
  options.lr = 0.08;
  const std::vector<int64_t> horizons = {32, 128, 512, 2048};

  std::printf("Theorem 1 — regret of WSP (N=%d workers, Nm=%d, D=%d) on convex least squares\n\n",
              options.num_workers, options.nm, options.d);

  // Solve f(w*) once; the parallel horizons only need the reference loss.
  {
    const train::LinearRegressionModel model(data.dim);
    train::Tensor w_star;
    options.precomputed_optimum_loss =
        train::SolveOptimum(model, data, /*iters=*/500, /*lr=*/0.2, &w_star);
  }

  const std::vector<train::RegretResult> per_horizon = sweep.Map<train::RegretResult>(
      static_cast<int64_t>(horizons.size()), [&](int64_t i) {
        train::RegretExperimentOptions one = options;
        one.horizons = {horizons[static_cast<size_t>(i)]};
        return train::RunRegretExperiment(data, one);
      });

  const int64_t sl = wsp::LocalStaleness(options.nm) + 1;
  const int64_t sg = wsp::GlobalStaleness(options.nm, options.d);
  std::printf("s_local+1 = %lld, s_global = %lld, f(w*) = %.6f\n\n",
              static_cast<long long>(sl), static_cast<long long>(sg),
              per_horizon.front().optimum_loss);
  std::printf("%10s %14s %18s\n", "T", "regret R[W]", "R[W] * sqrt(T)");
  bool decreasing = true;
  double prev_regret = 0.0;
  for (size_t i = 0; i < per_horizon.size(); ++i) {
    const train::RegretPoint& point = per_horizon[i].points.front();
    if (i > 0 && point.regret > prev_regret) {
      decreasing = false;
    }
    prev_regret = point.regret;
    std::printf("%10lld %14.6f %18.4f\n", static_cast<long long>(point.total_steps),
                point.regret, point.sqrt_t_scaled);
    if (sweep.sink() != nullptr) {
      runner::ResultRow row;
      row.Set("name", "regret_T" + std::to_string(point.total_steps))
          .Set("kind", "regret")
          .Set("total_steps", point.total_steps)
          .Set("regret", point.regret)
          .Set("sqrt_t_scaled", point.sqrt_t_scaled);
      sweep.sink()->Write(row);
    }
  }
  if (sweep.sink() != nullptr) {
    sweep.sink()->Flush();
  }
  std::printf("\nregret %s with T (Theorem 1 predicts O(1/sqrt(T)) decay)\n",
              decreasing ? "decreases" : "DOES NOT decrease");
  return 0;
}
