// Empirical validation of Theorem 1 (§6, Appendix A): the regret of WSP's
// noisy distributed pipeline SGD on a convex objective shrinks like
// O(1/sqrt(T)), i.e. regret * sqrt(T) stays bounded as the horizon grows.
#include <cstdio>

#include "train/data.h"
#include "train/regret.h"
#include "wsp/staleness.h"
#include "wsp/sync_policy.h"

int main() {
  using namespace hetpipe;
  const train::Dataset data = train::MakeLinearRegression(600, 8, 0.02, 424242);

  train::RegretExperimentOptions options;
  options.num_workers = 4;
  options.nm = 4;
  options.d = 1;
  options.batch = 4;
  options.lr = 0.08;
  options.horizons = {32, 128, 512, 2048};

  std::printf("Theorem 1 — regret of WSP (N=%d workers, Nm=%d, D=%d) on convex least squares\n\n",
              options.num_workers, options.nm, options.d);
  const train::RegretResult result = train::RunRegretExperiment(data, options);
  const int64_t sl = wsp::LocalStaleness(options.nm) + 1;
  const int64_t sg = wsp::GlobalStaleness(options.nm, options.d);
  std::printf("s_local+1 = %lld, s_global = %lld, f(w*) = %.6f\n\n",
              static_cast<long long>(sl), static_cast<long long>(sg), result.optimum_loss);
  std::printf("%10s %14s %18s\n", "T", "regret R[W]", "R[W] * sqrt(T)");
  for (const auto& point : result.points) {
    std::printf("%10lld %14.6f %18.4f\n", static_cast<long long>(point.total_steps),
                point.regret, point.sqrt_t_scaled);
  }
  std::printf("\nregret %s with T (Theorem 1 predicts O(1/sqrt(T)) decay)\n",
              result.decreasing ? "decreases" : "DOES NOT decrease");
  return 0;
}
