// Ablation: the min-max DP partitioner (the paper's CPLEX substitute) vs two
// naive baselines — equal layer counts per stage and parameter-balanced
// stages — measured by pipeline bottleneck time and simulated throughput.
#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "core/hetpipe.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "partition/partitioner.h"
#include "pipeline/virtual_worker.h"
#include "sim/simulator.h"

namespace {

using namespace hetpipe;

// Builds a partition with prescribed stage boundaries (no optimization).
partition::Partition FixedSplit(const model::ModelProfile& profile, const hw::Cluster& cluster,
                                const std::vector<int>& gpus, const std::vector<int>& lasts,
                                int nm) {
  // Reuse the partitioner machinery by restricting the DP: simplest honest
  // approach is to recompute stage costs directly.
  partition::Partition out;
  out.feasible = true;
  int first = 0;
  for (size_t q = 0; q < gpus.size(); ++q) {
    partition::StageAssignment st;
    st.first_layer = first;
    st.last_layer = lasts[q];
    st.gpu_id = gpus[q];
    st.gpu_type = cluster.gpu(gpus[q]).type;
    st.node = cluster.gpu(gpus[q]).node;
    st.fwd_compute_s = profile.StageFwdTime(st.first_layer, st.last_layer, st.gpu_type);
    st.bwd_compute_s = profile.StageBwdTime(st.first_layer, st.last_layer, st.gpu_type);
    if (q > 0) {
      st.fwd_comm_in_s = cluster.LinkBetween(gpus[q - 1], gpus[q])
                             .TransferTime(profile.BoundaryTransferBytes(st.first_layer - 1));
    }
    if (q + 1 < gpus.size()) {
      st.bwd_comm_in_s = cluster.LinkBetween(gpus[q], gpus[q + 1])
                             .TransferTime(profile.BoundaryTransferBytes(st.last_layer));
    }
    st.param_bytes = profile.graph().ParamBytesInRange(st.first_layer, st.last_layer);
    st.memory_bytes = partition::StageMemoryBytes(profile, st.first_layer, st.last_layer,
                                                  static_cast<int>(q),
                                                  static_cast<int>(gpus.size()), nm);
    st.memory_cap = hw::MemoryBytes(st.gpu_type);
    out.bottleneck_time = std::max(out.bottleneck_time, st.TotalTime());
    out.sum_time += st.TotalTime();
    out.stages.push_back(st);
    first = st.last_layer + 1;
  }
  return out;
}

double SimThroughput(const partition::Partition& partition, int nm, int batch) {
  sim::Simulator simulator;
  pipeline::OpenGate gate;
  pipeline::VirtualWorkerOptions options;
  options.nm = nm;
  options.max_minibatches = 40 * nm;
  pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, options);
  vw.Start();
  simulator.Run();
  const auto& t = vw.completion_times();
  const size_t warm = static_cast<size_t>(5 * nm);
  if (t.size() <= warm + 1) {
    return 0.0;
  }
  return static_cast<double>(t.size() - 1 - warm) * batch / (t.back() - t[warm]);
}

std::vector<int> EqualLayerLasts(int layers, int k) {
  std::vector<int> lasts;
  for (int q = 1; q <= k; ++q) {
    lasts.push_back(layers * q / k - 1);
  }
  lasts.back() = layers - 1;
  return lasts;
}

std::vector<int> ParamBalancedLasts(const model::ModelGraph& graph, int k) {
  const uint64_t per_stage = graph.total_param_bytes() / static_cast<uint64_t>(k);
  std::vector<int> lasts;
  uint64_t acc = 0;
  for (int i = 0; i < graph.num_layers(); ++i) {
    acc += graph.layer(i).param_bytes;
    if (acc >= per_stage && static_cast<int>(lasts.size()) < k - 1 &&
        graph.num_layers() - i - 1 >= k - 1 - static_cast<int>(lasts.size())) {
      lasts.push_back(i);
      acc = 0;
    }
  }
  while (static_cast<int>(lasts.size()) < k) {
    lasts.push_back(graph.num_layers() - 1);
  }
  lasts.back() = graph.num_layers() - 1;
  return lasts;
}

void RunModel(const model::ModelGraph& graph) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelProfile profile(graph, 32);
  const partition::Partitioner partitioner(profile, cluster);
  const std::vector<int> gpus = core::PickGpusByCode(cluster, "VRGQ");
  const int nm = 3;

  partition::PartitionOptions options;
  options.nm = nm;
  const partition::Partition dp = partitioner.Solve(gpus, options);
  const partition::Partition equal =
      FixedSplit(profile, cluster, gpus, EqualLayerLasts(graph.num_layers(), 4), nm);
  const partition::Partition params =
      FixedSplit(profile, cluster, gpus, ParamBalancedLasts(graph, 4), nm);

  std::printf("\n%s on VRGQ (Nm=%d):\n", graph.name().c_str(), nm);
  std::printf("  %-18s %14s %14s\n", "partitioner", "bottleneck ms", "sim img/s");
  struct Row {
    const char* name;
    const partition::Partition* p;
  } rows[] = {{"min-max DP", &dp}, {"equal layers", &equal}, {"param balanced", &params}};
  for (const auto& row : rows) {
    std::printf("  %-18s %14.1f %14.0f\n", row.name, row.p->bottleneck_time * 1e3,
                SimThroughput(*row.p, nm, 32));
  }
}

}  // namespace

int main() {
  std::printf("Ablation — memory-aware min-max partitioning vs naive splits\n");
  RunModel(model::BuildResNet152());
  RunModel(model::BuildVgg19());
  return 0;
}
