// Ablation: the min-max DP partitioner (the paper's CPLEX substitute) vs two
// naive baselines — equal layer counts per stage and parameter-balanced
// stages — measured by pipeline bottleneck time and simulated throughput.
// One kPartitionOnly experiment per (model, strategy), all executed by the
// sweep runner.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>
#include <vector>

#include "core/experiment.h"
#include "runner/cli.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());

  const struct {
    const char* label;
    core::PartitionStrategy strategy;
  } kStrategies[] = {
      {"min-max DP", core::PartitionStrategy::kMinMaxDp},
      {"equal layers", core::PartitionStrategy::kEqualLayers},
      {"param balanced", core::PartitionStrategy::kParamBalanced},
  };
  const core::ModelKind kModels[] = {core::ModelKind::kResNet152, core::ModelKind::kVgg19};
  constexpr int kNm = 3;

  std::vector<core::Experiment> experiments;
  for (core::ModelKind model : kModels) {
    for (const auto& strategy : kStrategies) {
      core::Experiment e;
      e.kind = core::ExperimentKind::kPartitionOnly;
      e.model = model;
      e.vw_codes = "VRGQ";
      e.strategy = strategy.strategy;
      e.config.nm = kNm;
      e.config.waves = 40;
      e.config.warmup_waves = 5;
      experiments.push_back(std::move(e));
    }
  }
  const auto results = sweep.Run(experiments);

  std::printf("Ablation — memory-aware min-max partitioning vs naive splits\n");
  size_t index = 0;
  for (core::ModelKind model : kModels) {
    std::printf("\n%s on VRGQ (Nm=%d):\n", core::ModelName(model), kNm);
    std::printf("  %-18s %14s %14s %6s\n", "partitioner", "bottleneck ms", "sim img/s", "fits");
    for (const auto& strategy : kStrategies) {
      const core::ExperimentResult& r = results[index++];
      std::printf("  %-18s %14.1f %14.0f %6s\n", strategy.label,
                  r.partition.bottleneck_time * 1e3, r.throughput_img_s,
                  r.partition.feasible ? "yes" : "NO");
    }
  }
  std::printf("\n(naive splits are simulated even when a stage exceeds its GPU memory;\n"
              " the 'fits' column records honesty about the cap)\n");
  return 0;
}
