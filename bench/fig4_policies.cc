// Reproduces Fig. 4 (and prints Table 3): whole-cluster training throughput
// of Horovod vs HetPipe under the NP / ED / ED-local / HD allocation
// policies, D=0, on ResNet-152 and VGG-19.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>
#include <string>

#include "cluster/allocator.h"
#include "core/experiment.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "runner/cli.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());
  const hw::Cluster cluster = hw::Cluster::Paper();

  std::printf("Table 3 — resource allocation for the three policies:\n");
  for (auto policy :
       {cluster::AllocationPolicy::kNodePartition, cluster::AllocationPolicy::kEqualDistribution,
        cluster::AllocationPolicy::kHybridDistribution}) {
    const cluster::Allocation alloc = cluster::Allocate(cluster, policy);
    std::printf("  %s\n", alloc.ToString(cluster).c_str());
  }

  constexpr double kJitter = 0.1;
  for (const bool vgg : {false, true}) {
    const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();
    std::printf("\nFig. 4%s — %s, D=0 (bar = images/sec; number = Nm):\n", vgg ? "b" : "a",
                graph.name().c_str());
    const auto rows = core::RunFig4(cluster, graph, kJitter, &sweep);
    for (const auto& row : rows) {
      if (!row.feasible) {
        std::printf("  %-9s  infeasible\n", row.label.c_str());
        continue;
      }
      std::printf("  %-9s %7.0f img/s  (%d GPUs%s%s)\n", row.label.c_str(),
                  row.throughput_img_s, row.gpus_used, row.nm > 0 ? ", Nm=" : "",
                  row.nm > 0 ? std::to_string(row.nm).c_str() : "");
    }
  }
  std::printf("\nPaper shape: ED-local is the best HetPipe policy on both models;\n"
              "for VGG-19 it beats Horovod ~1.8x; NP is depressed by the straggler\n"
              "and memory bound of the whimpy GGGG virtual worker.\n");
  return 0;
}
