// Size/speed benchmark of the .hds columnar result store (src/store/)
// against JSONL on a synthetic sweep shaped like real bench output: ~120k
// rows of repeated names/kinds/models, counting step numbers, throughput
// doubles, and a slab of rows that add late columns mid-stream (schema
// evolution). Reports bytes for both encodings, write/read timings, and a
// full row-by-row round-trip equality check — the row every CI run floors on
// (jsonl_over_store and roundtrip_identical in BENCH_store.json).
//
// Flags: --rows=N (default 120000) --keep-files
//        --json[=PATH] --csv[=PATH] --out=PATH
#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "runner/cli.h"
#include "runner/result_sink.h"
#include "store/extent_reader.h"
#include "store/extent_writer.h"

namespace {

using namespace hetpipe;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Synthetic sweep rows, deterministic for a given seed. The value
// distributions mirror what RowFor emits: heavy string repetition (model,
// kind, cluster), slowly-varying ints (step), and noisy doubles.
std::vector<runner::ResultRow> BuildRows(int num_rows, uint64_t seed) {
  static const char* kModels[] = {"resnet152", "vgg19", "bert-large", "gpt2-medium"};
  static const char* kKinds[] = {"hetpipe", "single-vw", "horovod", "ps"};
  static const char* kClusters[] = {"whimsy16", "mixed8", "rack2x8"};
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> throughput(5.0, 500.0);
  std::uniform_int_distribution<int> nm(1, 32);
  std::vector<runner::ResultRow> rows;
  rows.reserve(static_cast<size_t>(num_rows));
  for (int i = 0; i < num_rows; ++i) {
    runner::ResultRow row;
    row.Set("name", std::string(kKinds[i % 4]) + "/" + kModels[i % 3] + "/p" + std::to_string(i % 97))
        .Set("bench", "synthetic_sweep")
        .Set("kind", kKinds[i % 4])
        .Set("model", kModels[i % 3])
        .Set("cluster", kClusters[i % 3])
        .Set("step", static_cast<int64_t>(i))
        .Set("feasible", i % 7 != 0)
        .Set("throughput_img_s", throughput(rng))
        .Set("nm", nm(rng));
    if (i % 5 == 0) {
      row.Set("vw", "R" + std::to_string(i % 11) + "V2Q1");
    }
    // Columns that only exist in the back half of the sweep: the store must
    // carry the schema change and null the early rows.
    if (i > num_rows / 2) {
      row.Set("s_global", 3 + (i % 4)).Set("total_wait_s", throughput(rng) * 1e-3);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

int64_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in.is_open() ? static_cast<int64_t>(in.tellg()) : -1;
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  int num_rows = 120000;
  bool keep_files = false;
  for (const std::string& arg : args.rest) {
    if (arg.rfind("--rows=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(7), &num_rows) || num_rows <= 0) {
        std::fprintf(stderr, "error: --rows needs a positive integer\n");
        return 2;
      }
    } else if (arg == "--keep-files") {
      keep_files = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  const std::string jsonl_path = "store_bench_tmp.jsonl";
  const std::string store_path = "store_bench_tmp.hds";
  const std::vector<runner::ResultRow> rows = BuildRows(num_rows, /*seed=*/20260807);

  // JSONL encoding, through the same sink every bench uses.
  const Clock::time_point jsonl_start = Clock::now();
  {
    std::ofstream out(jsonl_path, std::ios::trunc);  // lint: ofstream-allowed (measurement target)
    if (!out.is_open()) {
      std::fprintf(stderr, "error: cannot write %s\n", jsonl_path.c_str());
      return 1;
    }
    runner::JsonlSink sink(out);
    for (const runner::ResultRow& row : rows) {
      sink.Write(row);
    }
    sink.Flush();
  }
  const double jsonl_write_s = SecondsSince(jsonl_start);

  // Store encoding.
  const Clock::time_point store_start = Clock::now();
  int64_t extents = 0;
  {
    std::string error;
    std::unique_ptr<store::ExtentWriter> writer = store::ExtentWriter::Open(store_path, &error);
    if (writer == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    for (const runner::ResultRow& row : rows) {
      writer->Append(row);
    }
    if (!writer->Finalize(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    extents = writer->extents_written();
  }
  const double store_write_s = SecondsSince(store_start);

  // Round trip: every row must come back exactly (same fields, same order,
  // same JSON rendering).
  const Clock::time_point read_start = Clock::now();
  std::vector<runner::ResultRow> read_back;
  read_back.reserve(rows.size());
  {
    std::string error;
    if (!store::ReadAllRows(store_path, &read_back, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  }
  const double store_read_s = SecondsSince(read_start);
  bool roundtrip_identical = read_back.size() == rows.size();
  for (size_t i = 0; roundtrip_identical && i < rows.size(); ++i) {
    roundtrip_identical = RowToJson(read_back[i]) == RowToJson(rows[i]);
  }

  const int64_t jsonl_bytes = FileBytes(jsonl_path);
  const int64_t store_bytes = FileBytes(store_path);
  const double ratio =
      store_bytes > 0 ? static_cast<double>(jsonl_bytes) / static_cast<double>(store_bytes) : 0.0;

  std::printf("store_bench: %d rows\n", num_rows);
  std::printf("  jsonl  %10lld bytes  wrote in %.3fs\n", static_cast<long long>(jsonl_bytes),
              jsonl_write_s);
  std::printf("  store  %10lld bytes  wrote in %.3fs, read in %.3fs (%lld extents)\n",
              static_cast<long long>(store_bytes), store_write_s, store_read_s,
              static_cast<long long>(extents));
  std::printf("  jsonl/store size ratio %.2fx, round trip %s\n", ratio,
              roundtrip_identical ? "identical" : "DIVERGED");

  if (runner::ResultSink* sink = args.sink()) {
    runner::ResultRow row;
    row.Set("bench", "store")
        .Set("rows", static_cast<int64_t>(num_rows))
        .Set("jsonl_bytes", jsonl_bytes)
        .Set("store_bytes", store_bytes)
        .Set("jsonl_over_store", ratio)
        .Set("jsonl_write_s", jsonl_write_s)
        .Set("store_write_s", store_write_s)
        .Set("store_read_s", store_read_s)
        .Set("extents", extents)
        .Set("roundtrip_identical", roundtrip_identical);
    sink->Write(row);
    sink->Flush();
  }

  if (!keep_files) {
    std::remove(jsonl_path.c_str());
    std::remove(store_path.c_str());
  }
  return roundtrip_identical ? 0 : 1;
}
