// Link-latency sensitivity on a mixed-class-node cluster — the knobs the
// paper's §7 communication model hard-codes (PCIe per-transfer setup cost,
// Infiniband regression intercept) swept as spec-level parameters:
//   latency grid:  inter-node intercept x intra-node latency (ED-local)
//   fig3 grid:     single-VW Nm sweep per distinct ED shape of the cluster,
//                  at the default and at a degraded inter-node intercept
// Both grids come from the spec-driven runner::SpecSweep helpers.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH] --cache-file=PATH
//
// Because the intercept/latency knobs are part of the partition-cache key,
// a --cache-file warmed at one latency point is never wrongly reused at
// another: repeated identical runs are all hits, changed knobs all misses.
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster_spec.h"
#include "runner/cli.h"
#include "runner/spec_sweep.h"

namespace {

using namespace hetpipe;

// A latency-sensitive shape: a node mixing strong and whimpy cards (cross-
// class boundaries inside the node), a whimpy node, and a paper V-node — the
// canonical runner::MixedDemoSpec shared with cluster_sweep and
// partitioner_speed.
hw::ClusterSpec LatencyMixSpec() { return runner::MixedDemoSpec("latency-mix"); }

void PrintRows(const std::vector<core::Experiment>& experiments,
               const std::vector<core::ExperimentResult>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    const core::ExperimentResult& r = results[i];
    if (!r.feasible) {
      std::printf("  %-44s %12s\n", r.name.c_str(), "infeasible");
    } else if (experiments[i].kind == core::ExperimentKind::kSingleVirtualWorker) {
      std::printf("  %-44s %8.1f img/s\n", r.name.c_str(), r.throughput_img_s);
    } else {
      std::printf("  %-44s %8.1f img/s  Nm=%d\n", r.name.c_str(), r.throughput_img_s,
                  r.report.nm);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  for (const std::string& arg : args.rest) {
    std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
    return 2;
  }
  runner::SweepRunner sweep(args.sweep_options());
  const hw::ClusterSpec spec = LatencyMixSpec();
  std::printf("latency sweep — %s: %s\n", spec.name.c_str(), spec.Build().ToString().c_str());

  runner::SpecSweepOptions options;
  options.model = core::ModelKind::kResNet152;
  options.jitter_cv = 0.05;

  std::printf("\nlink latency grid (inter intercept x intra latency, ED-local):\n");
  const std::vector<core::Experiment> grid = runner::LatencySweep(
      spec, {100e-6, 1e-3, 5e-3, 20e-3}, {10e-6, 1e-3}, options);
  PrintRows(grid, sweep.Run(grid));

  std::printf("\nfig3-style single-VW Nm sweep per distinct ED shape:\n");
  std::vector<core::Experiment> fig3 = runner::SingleVwSweep(spec, /*nm_max=*/4, options);
  {
    hw::ClusterSpec slow = spec;
    slow.Named("latency-mix-slow").InterInterceptS(5e-3);
    for (core::Experiment& e : runner::SingleVwSweep(slow, /*nm_max=*/4, options)) {
      fig3.push_back(std::move(e));
    }
  }
  PrintRows(fig3, sweep.Run(fig3));

  std::fprintf(stderr, "partition cache: %lld hits, %lld misses\n",
               static_cast<long long>(sweep.cache().hits()),
               static_cast<long long>(sweep.cache().misses()));
  return 0;
}
