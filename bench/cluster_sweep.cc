// Sweeps HetPipe over generic heterogeneous clusters — the scenario axes the
// paper's fixed 4 x 4 testbed (Table 4) could not explore:
//   scale:      growing node counts of mixed non-Table-1 GPU classes
//   straggler:  task-time jitter x clock-distance threshold D
//   bandwidth:  inter-node link rate from 10 to 100 Gbit/s
//
// Flags: --threads=N --json[=PATH] --csv[=PATH] --cache-file=PATH
//        --spec-file=PATH   run the full-cluster scenario on your own
//                           hw::ClusterSpec text file instead of the built-in
//                           scenarios (see README for the format)
//
// With --cache-file, a repeated run loads every partition from disk and skips
// the GPU-order search entirely; the emitted rows are identical either way.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster_spec.h"
#include "runner/cli.h"

namespace {

using namespace hetpipe;

// Fictional but realistically-shaped GPU classes beyond Table 1: a strong
// datacenter card and a whimpy inference card (sustained ResNet-class TFLOPS,
// memory in GiB).
constexpr const char* kClasses =
    "gpu BigCard tflops=9.2 mem=40 code=a; gpu SmallCard tflops=2.6 mem=16 code=t";

// The fixed mixed cluster of the straggler and bandwidth scenarios: 2 strong
// GPUs, 4 whimpy ones, and one paper V-node.
std::string MixedSpecText(double inter_gbits) {
  std::ostringstream os;
  os << "name mixed-3node; " << kClasses
     << "; node 2xBigCard; node 4xSmallCard; node 4xV; inter_gbits " << inter_gbits;
  return os.str();
}

core::Experiment EdLocal(const std::string& name, core::ModelKind model,
                         const std::string& spec_text, const std::string& label, int d,
                         double jitter_cv) {
  core::Experiment e;
  e.name = name;
  e.kind = core::ExperimentKind::kFullCluster;
  e.model = model;
  e.cluster_spec = spec_text;
  e.cluster_label = label;
  e.config = core::EdLocalConfig(d, jitter_cv);
  e.config.waves = 30;
  return e;
}

std::vector<core::Experiment> ScaleScenario() {
  // Growing clusters that alternate strong and whimpy nodes: 1 node up to 6.
  std::vector<core::Experiment> experiments;
  for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
    for (int nodes = 1; nodes <= 6; ++nodes) {
      std::ostringstream spec;
      spec << "name scale-" << nodes << "; " << kClasses;
      for (int n = 0; n < nodes; ++n) {
        spec << "; node " << (n % 2 == 0 ? "2xBigCard" : "4xSmallCard");
      }
      experiments.push_back(EdLocal(
          "scale " + std::string(core::ModelName(model)) + " " + std::to_string(nodes) +
              " nodes",
          model, spec.str(), "scale-" + std::to_string(nodes), /*d=*/0, /*jitter_cv=*/0.05));
    }
  }
  return experiments;
}

std::vector<core::Experiment> StragglerScenario() {
  std::vector<core::Experiment> experiments;
  for (const double jitter : {0.0, 0.1, 0.3}) {
    for (const int d : {0, 4, 32}) {
      std::ostringstream name;
      name << "straggler jitter=" << jitter << " D=" << d;
      experiments.push_back(EdLocal(name.str(), core::ModelKind::kResNet152,
                                    MixedSpecText(25.0), "mixed-3node", d, jitter));
    }
  }
  return experiments;
}

std::vector<core::Experiment> BandwidthScenario() {
  std::vector<core::Experiment> experiments;
  for (const double gbits : {10.0, 25.0, 56.0, 100.0}) {
    std::ostringstream name;
    name << "bandwidth " << gbits << " Gbit/s";
    experiments.push_back(EdLocal(name.str(), core::ModelKind::kVgg19, MixedSpecText(gbits),
                                  "mixed-3node", /*d=*/0, /*jitter_cv=*/0.05));
  }
  return experiments;
}

void PrintRows(const std::vector<core::Experiment>& experiments,
               const std::vector<core::ExperimentResult>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    const core::ExperimentResult& r = results[i];
    if (!r.feasible) {
      std::printf("  %-34s %12s\n", r.name.c_str(), "infeasible");
      continue;
    }
    std::printf("  %-34s %8.1f img/s  Nm=%d  %zu VWs\n", r.name.c_str(), r.throughput_img_s,
                r.report.nm, r.report.vws.size());
    (void)experiments;
  }
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);

  std::string spec_file;
  for (const std::string& arg : args.rest) {
    const std::string prefix = "--spec-file=";
    if (arg.rfind(prefix, 0) == 0) {
      spec_file = arg.substr(prefix.size());
      if (spec_file.empty()) {
        std::fprintf(stderr, "error: --spec-file needs a path\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  runner::SweepRunner sweep(args.sweep_options());

  if (!spec_file.empty()) {
    std::ifstream in(spec_file);
    if (!in.is_open()) {
      std::fprintf(stderr, "error: cannot read spec file %s\n", spec_file.c_str());
      return 2;
    }
    std::stringstream text;
    text << in.rdbuf();
    hw::ClusterSpec spec;
    try {
      spec = hw::ClusterSpec::Parse(text.str());
      spec.Build();  // surfaces registry conflicts before the sweep starts
    } catch (const std::invalid_argument& bad_spec) {
      std::fprintf(stderr, "error: %s: %s\n", spec_file.c_str(), bad_spec.what());
      return 2;
    }
    const std::string label = spec.name.empty() ? spec_file : spec.name;
    std::printf("cluster sweep — user spec %s: %s\n", label.c_str(),
                spec.Build().ToString().c_str());
    std::vector<core::Experiment> experiments;
    for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
      for (const int d : {0, 4}) {
        experiments.push_back(EdLocal(std::string(core::ModelName(model)) + " D=" +
                                          std::to_string(d),
                                      model, spec.ToString(), label, d, /*jitter_cv=*/0.1));
      }
    }
    PrintRows(experiments, sweep.Run(experiments));
  } else {
    std::printf("cluster sweep — generic heterogeneous scenarios beyond Table 4\n");
    const struct {
      const char* title;
      std::vector<core::Experiment> experiments;
    } scenarios[] = {
        {"scale (alternating strong/whimpy nodes)", ScaleScenario()},
        {"stragglers (jitter x D, mixed 3-node cluster)", StragglerScenario()},
        {"inter-node bandwidth (mixed 3-node cluster)", BandwidthScenario()},
    };
    for (const auto& scenario : scenarios) {
      std::printf("\n%s:\n", scenario.title);
      PrintRows(scenario.experiments, sweep.Run(scenario.experiments));
    }
  }

  std::fprintf(stderr, "partition cache: %lld hits, %lld misses\n",
               static_cast<long long>(sweep.cache().hits()),
               static_cast<long long>(sweep.cache().misses()));
  return 0;
}
