// Sweeps HetPipe over generic heterogeneous clusters — the scenario axes the
// paper's fixed 4 x 4 testbed (Table 4) could not explore:
//   scale:      growing node prefixes of a mixed strong/whimpy cluster
//               (Table 4-style Horovod-vs-HetPipe rows per prefix)
//   straggler:  task-time jitter x clock-distance threshold D
//   bandwidth:  inter-node link rate from 10 to 100 Gbit/s
// All three grids come from the spec-driven runner::SpecSweep helpers; this
// binary only picks the specs and prints the rows.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH] --cache-file=PATH
//        --spec-file=PATH   run the straggler scenario on your own
//                           hw::ClusterSpec text file instead of the built-in
//                           scenarios (see README for the format)
//
// With --cache-file, a repeated run loads every partition from disk and skips
// the GPU-order search entirely; the emitted rows are identical either way.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster_spec.h"
#include "runner/cli.h"
#include "runner/spec_sweep.h"

namespace {

using namespace hetpipe;

// Fictional but realistically-shaped GPU classes beyond Table 1: a strong
// datacenter card and a whimpy inference card (sustained ResNet-class TFLOPS,
// memory in GiB).
hw::ClusterSpec& DeclareClasses(hw::ClusterSpec& spec) {
  spec.AddGpuClass("BigCard", 9.2, 40.0, 'a').AddGpuClass("SmallCard", 2.6, 16.0, 't');
  return spec;
}

// The fixed mixed cluster of the straggler and bandwidth scenarios: one node
// mixing strong and whimpy cards (the mixed-class node the spec grammar now
// supports), one whimpy node, and one paper V-node — the canonical
// runner::MixedDemoSpec shared with latency_sweep and partitioner_speed.
hw::ClusterSpec MixedSpec() { return runner::MixedDemoSpec("mixed-3node"); }

// The scale scenario's 6-node cluster: alternating strong and whimpy nodes,
// swept prefix by prefix (1 node, 2 nodes, ..., 6 nodes).
hw::ClusterSpec ScaleSpec() {
  hw::ClusterSpec spec;
  spec.Named("scale");
  DeclareClasses(spec);
  for (int n = 0; n < 6; ++n) {
    if (n % 2 == 0) {
      spec.AddNode("BigCard", 2);
    } else {
      spec.AddNode("SmallCard", 4);
    }
  }
  return spec;
}

void PrintRows(const std::vector<core::Experiment>& experiments,
               const std::vector<core::ExperimentResult>& results) {
  for (size_t i = 0; i < results.size(); ++i) {
    const core::ExperimentResult& r = results[i];
    if (!r.feasible) {
      std::printf("  %-40s %12s\n", r.name.c_str(), "infeasible");
      continue;
    }
    if (experiments[i].kind == core::ExperimentKind::kHorovod) {
      std::printf("  %-40s %8.1f img/s  %zu workers\n", r.name.c_str(), r.throughput_img_s,
                  r.horovod.worker_gpus.size());
      continue;
    }
    std::printf("  %-40s %8.1f img/s  Nm=%d  %zu VWs\n", r.name.c_str(), r.throughput_img_s,
                r.report.nm, r.report.vws.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);

  std::string spec_file;
  for (const std::string& arg : args.rest) {
    const std::string prefix = "--spec-file=";
    if (arg.rfind(prefix, 0) == 0) {
      spec_file = arg.substr(prefix.size());
      if (spec_file.empty()) {
        std::fprintf(stderr, "error: --spec-file needs a path\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  runner::SweepRunner sweep(args.sweep_options());

  if (!spec_file.empty()) {
    std::ifstream in(spec_file);
    if (!in.is_open()) {
      std::fprintf(stderr, "error: cannot read spec file %s\n", spec_file.c_str());
      return 2;
    }
    std::stringstream text;
    text << in.rdbuf();
    hw::ClusterSpec spec;
    try {
      spec = hw::ClusterSpec::Parse(text.str());
      spec.Build();  // surfaces registry conflicts before the sweep starts
    } catch (const std::invalid_argument& bad_spec) {
      std::fprintf(stderr, "error: %s: %s\n", spec_file.c_str(), bad_spec.what());
      return 2;
    }
    // Anonymous spec files are labeled by their path so concatenated rows
    // from several files stay distinguishable.
    const std::string label = spec.name.empty() ? spec_file : spec.name;
    std::printf("cluster sweep — user spec %s: %s\n", label.c_str(),
                spec.Build().ToString().c_str());
    std::vector<core::Experiment> experiments;
    for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
      runner::SpecSweepOptions options;
      options.model = model;
      for (core::Experiment& e :
           runner::StragglerSweep(spec, {0.1}, {0, 4}, options)) {
        e.name = std::string(core::ModelName(model)) + " " + e.name;
        e.cluster_label = label;
        experiments.push_back(std::move(e));
      }
    }
    PrintRows(experiments, sweep.Run(experiments));
  } else {
    std::printf("cluster sweep — generic heterogeneous scenarios beyond Table 4\n");

    std::vector<core::Experiment> scale;
    for (core::ModelKind model : {core::ModelKind::kResNet152, core::ModelKind::kVgg19}) {
      runner::SpecSweepOptions options;
      options.model = model;
      options.jitter_cv = 0.05;
      for (core::Experiment& e : runner::ScalingSweep(ScaleSpec(), options)) {
        scale.push_back(std::move(e));
      }
    }

    runner::SpecSweepOptions resnet;
    resnet.model = core::ModelKind::kResNet152;
    runner::SpecSweepOptions vgg;
    vgg.model = core::ModelKind::kVgg19;
    vgg.jitter_cv = 0.05;

    const struct {
      const char* title;
      std::vector<core::Experiment> experiments;
    } scenarios[] = {
        {"scale (alternating strong/whimpy node prefixes)", std::move(scale)},
        {"stragglers (jitter x D, mixed 3-node cluster)",
         runner::StragglerSweep(MixedSpec(), {0.0, 0.1, 0.3}, {0, 4, 32}, resnet)},
        {"inter-node bandwidth (mixed 3-node cluster)",
         runner::BandwidthSweep(MixedSpec(), {10.0, 25.0, 56.0, 100.0}, vgg)},
    };
    for (const auto& scenario : scenarios) {
      std::printf("\n%s:\n", scenario.title);
      PrintRows(scenario.experiments, sweep.Run(scenario.experiments));
    }
  }

  std::fprintf(stderr, "partition cache: %lld hits, %lld misses\n",
               static_cast<long long>(sweep.cache().hits()),
               static_cast<long long>(sweep.cache().misses()));
  return 0;
}
