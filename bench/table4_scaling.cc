// Reproduces Table 4: throughput of Horovod vs HetPipe (ED-local) as whimpy
// GPUs are added to the cluster: 4[V] -> 8[VR] -> 12[VRQ] -> 16[VRQG].
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>

#include "core/experiment.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "runner/cli.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());

  std::printf("Table 4 — performance improvement of adding whimpy GPUs\n");
  std::printf("(parenthesized: total concurrent minibatches across virtual workers;\n");
  std::printf(" X: model does not fit some GPU so Horovod cannot run)\n");

  constexpr double kJitter = 0.1;
  for (const bool vgg : {true, false}) {
    const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();
    std::printf("\n%s:\n  %-18s %12s %16s\n", graph.name().c_str(), "cluster", "Horovod",
                "HetPipe");
    const auto cells = core::RunTable4(graph, kJitter, &sweep);
    double first_hetpipe = 0.0;
    double last_hetpipe = 0.0;
    for (const auto& cell : cells) {
      std::printf("  %-18s", cell.cluster_label.c_str());
      if (cell.horovod_feasible) {
        std::printf(" %8.0f img/s", cell.horovod_img_s);
      } else {
        std::printf(" %13s", "X");
      }
      std::printf(" %8.0f (%d)\n", cell.hetpipe_img_s, cell.total_concurrent_minibatches);
      if (first_hetpipe == 0.0) {
        first_hetpipe = cell.hetpipe_img_s;
      }
      last_hetpipe = cell.hetpipe_img_s;
    }
    std::printf("  HetPipe speedup from added whimpy GPUs: %.2fx (paper: up to 2.3x)\n",
                last_hetpipe / first_hetpipe);
  }
  return 0;
}
