// Extension study: HetPipe against the full family of data-parallel
// synchronization strategies the paper discusses — AllReduce BSP (Horovod),
// parameter-server BSP/SSP/ASP (§2.2), and decentralized AD-PSGD (§9) — on
// the 16-GPU heterogeneous cluster. Six experiments per model, one sweep.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>
#include <vector>

#include "core/convergence.h"
#include "core/experiment.h"
#include "runner/cli.h"

namespace {

using namespace hetpipe;

void Row(const core::ExperimentResult& r, int workers, double staleness,
         const core::ConvergenceModel& conv, double target) {
  if (!r.feasible) {
    std::printf("  %-22s %10s\n", r.name.c_str(), "X");
    return;
  }
  core::ConvergenceInput input;
  input.throughput_img_s = r.throughput_img_s;
  input.avg_missing_updates = staleness;
  std::printf("  %-22s %7.0f img/s  %3d GPUs  staleness %5.1f  hours-to-target %6.1f\n",
              r.name.c_str(), r.throughput_img_s, workers, staleness,
              conv.HoursToAccuracy(input, target));
}

std::vector<core::Experiment> ModelExperiments(core::ModelKind model) {
  std::vector<core::Experiment> experiments;

  core::Experiment horovod;
  horovod.name = "Horovod (AllReduce)";
  horovod.kind = core::ExperimentKind::kHorovod;
  horovod.model = model;
  experiments.push_back(std::move(horovod));

  const struct {
    const char* label;
    dp::PsSyncMode mode;
    int staleness;
  } kPsModes[] = {
      {"PS BSP", dp::PsSyncMode::kBsp, 0},
      {"PS SSP(s=3)", dp::PsSyncMode::kSsp, 3},
      {"PS ASP", dp::PsSyncMode::kAsp, 0},
  };
  for (const auto& ps : kPsModes) {
    core::Experiment e;
    e.name = ps.label;
    e.kind = core::ExperimentKind::kPsDataParallel;
    e.model = model;
    e.ps.mode = ps.mode;
    e.ps.staleness = ps.staleness;
    experiments.push_back(std::move(e));
  }

  core::Experiment adpsgd;
  adpsgd.name = "AD-PSGD (gossip)";
  adpsgd.kind = core::ExperimentKind::kAdPsgd;
  adpsgd.model = model;
  experiments.push_back(std::move(adpsgd));

  core::Experiment hetpipe;
  hetpipe.name = "HetPipe ED-local D=0";
  hetpipe.kind = core::ExperimentKind::kFullCluster;
  hetpipe.model = model;
  hetpipe.config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  hetpipe.config.placement = wsp::PlacementPolicy::kLocal;
  hetpipe.config.sync = wsp::SyncPolicy::Wsp(0);
  hetpipe.config.jitter_cv = 0.1;
  experiments.push_back(std::move(hetpipe));

  return experiments;
}

}  // namespace

int main(int argc, char** argv) {
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());
  const hw::Cluster cluster = hw::Cluster::Paper();

  for (const bool vgg : {false, true}) {
    const core::ModelKind model = vgg ? core::ModelKind::kVgg19 : core::ModelKind::kResNet152;
    const core::ConvergenceModel conv = core::ConvergenceModel::For(
        vgg ? model::ModelFamily::kVgg19 : model::ModelFamily::kResNet152);
    const double target = vgg ? 0.67 : 0.74;
    std::printf("\n=== %s (target top-1 %.0f%%) ===\n", core::ModelName(model), target * 100);

    const auto experiments = ModelExperiments(model);
    const auto results = sweep.Run(experiments);
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      int workers = 0;
      double staleness = 0.0;
      switch (experiments[i].kind) {
        case core::ExperimentKind::kHorovod:
          workers = static_cast<int>(r.horovod.worker_gpus.size());
          break;
        case core::ExperimentKind::kPsDataParallel:
          workers = r.ps.num_workers;
          staleness = r.ps.expected_staleness;
          break;
        case core::ExperimentKind::kAdPsgd:
          workers = r.adpsgd.num_workers;
          staleness = r.adpsgd.expected_staleness;
          break;
        default:
          workers = cluster.num_gpus();
          staleness = r.report.AvgMissingUpdates();
          break;
      }
      Row(r, workers, staleness, conv, target);
    }
  }
  std::printf("\nHetPipe is the only strategy that can use every GPU for ResNet-152 and the\n"
              "only one whose effective throughput is not capped by the slowest replica.\n");
  return 0;
}
