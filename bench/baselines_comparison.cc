// Extension study: HetPipe against the full family of data-parallel
// synchronization strategies the paper discusses — AllReduce BSP (Horovod),
// parameter-server BSP/SSP/ASP (§2.2), and decentralized AD-PSGD (§9) — on
// the 16-GPU heterogeneous cluster.
#include <cstdio>

#include "core/convergence.h"
#include "core/hetpipe.h"
#include "dp/decentralized.h"
#include "dp/horovod.h"
#include "dp/ps_baselines.h"
#include "model/resnet.h"
#include "model/vgg.h"

namespace {

using namespace hetpipe;

void Row(const char* label, bool feasible, int workers, double throughput, double staleness,
         const core::ConvergenceModel& conv, double target) {
  if (!feasible) {
    std::printf("  %-22s %10s\n", label, "X");
    return;
  }
  core::ConvergenceInput input;
  input.throughput_img_s = throughput;
  input.avg_missing_updates = staleness;
  std::printf("  %-22s %7.0f img/s  %3d GPUs  staleness %5.1f  hours-to-target %6.1f\n", label,
              throughput, workers, staleness, conv.HoursToAccuracy(input, target));
}

}  // namespace

int main() {
  const hw::Cluster cluster = hw::Cluster::Paper();
  for (const bool vgg : {false, true}) {
    const model::ModelGraph graph = vgg ? model::BuildVgg19() : model::BuildResNet152();
    const model::ModelProfile profile(graph, 32);
    const core::ConvergenceModel conv = core::ConvergenceModel::For(graph.family());
    const double target = vgg ? 0.67 : 0.74;
    std::printf("\n=== %s (target top-1 %.0f%%) ===\n", graph.name().c_str(), target * 100);

    const dp::HorovodResult horovod = dp::SimulateHorovod(cluster, profile);
    Row("Horovod (AllReduce)", horovod.feasible, static_cast<int>(horovod.worker_gpus.size()),
        horovod.throughput_img_s, 0.0, conv, target);

    dp::PsDpOptions ps;
    ps.mode = dp::PsSyncMode::kBsp;
    const auto bsp = dp::SimulatePsDataParallel(cluster, profile, ps);
    Row("PS BSP", bsp.feasible, bsp.num_workers, bsp.throughput_img_s, bsp.expected_staleness,
        conv, target);

    ps.mode = dp::PsSyncMode::kSsp;
    ps.staleness = 3;
    const auto ssp = dp::SimulatePsDataParallel(cluster, profile, ps);
    Row("PS SSP(s=3)", ssp.feasible, ssp.num_workers, ssp.throughput_img_s,
        ssp.expected_staleness, conv, target);

    ps.mode = dp::PsSyncMode::kAsp;
    const auto asp = dp::SimulatePsDataParallel(cluster, profile, ps);
    Row("PS ASP", asp.feasible, asp.num_workers, asp.throughput_img_s, asp.expected_staleness,
        conv, target);

    const auto adpsgd = dp::SimulateAdPsgd(cluster, profile);
    Row("AD-PSGD (gossip)", adpsgd.feasible, adpsgd.num_workers, adpsgd.throughput_img_s,
        adpsgd.expected_staleness, conv, target);

    core::HetPipeConfig config;
    config.allocation = cluster::AllocationPolicy::kEqualDistribution;
    config.placement = wsp::PlacementPolicy::kLocal;
    config.sync = wsp::SyncPolicy::Wsp(0);
    config.jitter_cv = 0.1;
    const core::HetPipeReport hetpipe = core::HetPipe(cluster, graph, config).Run();
    Row("HetPipe ED-local D=0", hetpipe.feasible, cluster.num_gpus(),
        hetpipe.throughput_img_s, hetpipe.AvgMissingUpdates(), conv, target);
  }
  std::printf("\nHetPipe is the only strategy that can use every GPU for ResNet-152 and the\n"
              "only one whose effective throughput is not capped by the slowest replica.\n");
  return 0;
}
