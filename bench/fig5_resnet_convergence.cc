// Reproduces Fig. 5: ResNet-152 top-1 accuracy vs wall-clock time for
// Horovod (12 GPUs), HetPipe (12 GPUs), and HetPipe (16 GPUs), D=0.
// Paper result: HetPipe-12 converges 35% faster than Horovod-12 and
// HetPipe-16 39% faster.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>

#include "core/experiment.h"
#include "runner/cli.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());

  constexpr double kTarget = 0.74;
  const auto series = core::RunFig5(/*jitter_cv=*/0.1, kTarget, &sweep);

  std::printf("Fig. 5 — ResNet-152 top-1 accuracy vs time (target %.0f%%)\n\n", kTarget * 100);
  std::printf("%-20s %10s %12s %14s\n", "series", "img/s", "staleness", "hours to 74%");
  for (const auto& s : series) {
    std::printf("%-20s %10.0f %12.1f %14.1f\n", s.label.c_str(), s.throughput_img_s,
                s.avg_missing_updates, s.hours_to_target);
  }

  const double horovod = series[0].hours_to_target;
  std::printf("\nconvergence speedup vs Horovod-12: HetPipe-12 %.0f%% (paper 35%%), "
              "HetPipe-16 %.0f%% (paper 39%%)\n",
              100.0 * (1.0 - series[1].hours_to_target / horovod),
              100.0 * (1.0 - series[2].hours_to_target / horovod));

  std::printf("\naccuracy curves (sampled every 6 h):\n%-8s", "hours");
  for (const auto& s : series) {
    std::printf(" %20s", s.label.c_str());
  }
  std::printf("\n");
  for (double t = 6.0; t <= 72.0; t += 6.0) {
    std::printf("%-8.0f", t);
    for (const auto& s : series) {
      std::printf(" %19.1f%%", 100.0 * s.curve.ValueAt(t));
    }
    std::printf("\n");
  }
  return 0;
}
