// Reproduces the §8.4 synchronization-overhead analysis: as D grows, the
// time a virtual worker waits for the updated global weights shrinks, and
// the actual GPU idle time is only a fraction of the waiting time because
// the pipeline keeps processing already-injected minibatches.
// Paper: waiting at D=4 is 62% of waiting at D=0; idle is 18% of waiting.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>

#include "core/experiment.h"
#include "model/vgg.h"
#include "runner/cli.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());

  const model::ModelGraph graph = model::BuildVgg19();
  const auto rows =
      core::RunStalenessWaitStudy(graph, {0, 1, 4, 32}, /*jitter_cv=*/0.15, &sweep);

  std::printf("Sec 8.4 — synchronization overhead vs clock-distance threshold D\n");
  std::printf("(VGG-19, ED-local, 4 virtual workers, task jitter cv=0.15)\n\n");
  std::printf("%4s %12s %12s %14s %12s %10s\n", "D", "img/s", "wait (s)", "idle/wait",
              "clock dist", "lag (waves)");
  double wait_d0 = 0.0;
  for (const auto& row : rows) {
    if (row.d == 0) {
      wait_d0 = row.total_wait_s;
    }
    std::printf("%4d %12.0f %12.2f %13.0f%% %12.2f %10.2f\n", row.d, row.throughput_img_s,
                row.total_wait_s, 100.0 * row.idle_fraction_of_wait, row.avg_clock_distance,
                row.avg_global_lag_waves);
  }
  for (const auto& row : rows) {
    if (row.d == 4 && wait_d0 > 0.0) {
      std::printf("\nwaiting time at D=4 is %.0f%% of D=0 (paper: 62%%)\n",
                  100.0 * row.total_wait_s / wait_d0);
    }
  }
  return 0;
}
