// Reproduces Fig. 6: VGG-19 top-1 accuracy vs wall-clock time for Horovod and
// HetPipe (ED-local) with D in {0, 4, 32}. Paper result: D=0 converges 29%
// faster than Horovod; D=4 49% faster than Horovod (28% faster than D=0);
// D=32 degrades ~4.7% vs D=4 despite similar throughput.
//
// Flags: --threads=N --out=PATH --json[=PATH] --csv[=PATH]
#include <cstdio>

#include "core/experiment.h"
#include "runner/cli.h"

int main(int argc, char** argv) {
  using namespace hetpipe;
  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  runner::SweepRunner sweep(args.sweep_options());

  constexpr double kTarget = 0.67;
  const auto series = core::RunFig6(/*jitter_cv=*/0.15, kTarget, &sweep);

  std::printf("Fig. 6 — VGG-19 top-1 accuracy vs time (target %.0f%%)\n\n", kTarget * 100);
  std::printf("%-16s %10s %12s %14s\n", "series", "img/s", "staleness", "hours to 67%");
  for (const auto& s : series) {
    std::printf("%-16s %10.0f %12.1f %14.1f\n", s.label.c_str(), s.throughput_img_s,
                s.avg_missing_updates, s.hours_to_target);
  }

  const double horovod = series[0].hours_to_target;
  const double d0 = series[1].hours_to_target;
  const double d4 = series[2].hours_to_target;
  const double d32 = series[3].hours_to_target;
  std::printf("\nvs Horovod: D=0 %.0f%% faster (paper 29%%), D=4 %.0f%% faster (paper 49%%)\n",
              100.0 * (1.0 - d0 / horovod), 100.0 * (1.0 - d4 / horovod));
  std::printf("D=32 vs D=4: %.1f%% slower (paper 4.7%%)\n", 100.0 * (d32 / d4 - 1.0));

  std::printf("\naccuracy curves (sampled every 12 h):\n%-8s", "hours");
  for (const auto& s : series) {
    std::printf(" %16s", s.label.c_str());
  }
  std::printf("\n");
  for (double t = 12.0; t <= 144.0; t += 12.0) {
    std::printf("%-8.0f", t);
    for (const auto& s : series) {
      std::printf(" %15.1f%%", 100.0 * s.curve.ValueAt(t));
    }
    std::printf("\n");
  }
  return 0;
}
