// hetpipe_serve: the partition-plan daemon. Answers plan / max_nm / stats /
// shutdown queries over length-prefixed JSON-over-TCP (docs/serve-protocol.md
// is the wire reference), sharing one runner::PartitionCache across every
// connection so repeated queries cost a cache lookup instead of a GPU-order
// search. Pairs with bench/serve_client (one-shot CLI) and bench/serve_bench
// (load generator).
//
// Flags: --host=ADDR          bind address (default 127.0.0.1)
//        --port=N             listen port; 0 picks an ephemeral one (default)
//        --port-file=PATH     write the bound port there (scripts and CI use
//                             this with --port=0 to avoid collisions)
//        --threads=N          request-executor threads (default: hardware)
//        --cache-file=PATH    persistent cache: loaded at startup, saved
//                             periodically and on shutdown
//        --save-interval-s=N  seconds between periodic cache saves (default
//                             30; needs --cache-file)
//        --cache-capacity=N   LRU bound on cache entries (default 0:
//                             unbounded, matching the batch benches)
//        --max-frame-bytes=N  refuse frames larger than this (default 1 MiB)
//
// Runs until SIGINT/SIGTERM or a remote "shutdown" op, then drains in-flight
// requests, persists the cache, and exits 0. Exits 2 on bad flags, 1 when the
// listener cannot start.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "runner/cli.h"
#include "runner/partition_cache.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void OnSignal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  using namespace hetpipe;

  runner::BenchArgs args = runner::BenchArgs::Parse(argc, argv);
  serve::PlanServerOptions options;
  options.cache_path = args.cache_path();
  std::string port_file;
  int64_t cache_capacity = 0;

  for (const std::string& arg : args.rest) {
    int parsed = 0;
    if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(7), &parsed) || parsed < 0 || parsed > 65535) {
        std::fprintf(stderr, "error: --port needs an integer in [0, 65535]\n");
        return 2;
      }
      options.port = parsed;
    } else if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
    } else if (arg.rfind("--save-interval-s=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(18), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --save-interval-s needs a positive integer\n");
        return 2;
      }
      options.save_interval_s = parsed;
    } else if (arg.rfind("--cache-capacity=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(17), &parsed) || parsed < 0) {
        std::fprintf(stderr, "error: --cache-capacity needs a non-negative integer\n");
        return 2;
      }
      cache_capacity = parsed;
    } else if (arg.rfind("--max-frame-bytes=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(18), &parsed) || parsed < 64) {
        std::fprintf(stderr, "error: --max-frame-bytes needs an integer >= 64\n");
        return 2;
      }
      options.max_frame_bytes = static_cast<uint32_t>(parsed);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  options.threads = args.threads;

  // The daemon always has a cache (it is the point of the service); the
  // BenchArgs one only exists under --cache-file, where it arrives pre-loaded.
  runner::PartitionCache local_cache;
  runner::PartitionCache* cache = args.cache() ? args.cache() : &local_cache;
  if (cache_capacity > 0) cache->SetCapacity(cache_capacity);

  serve::PlanServer server(cache, options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "hetpipe_serve: %s\n", error.c_str());
    return 1;
  }
  if (!port_file.empty()) {
    if (std::FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%d\n", server.port());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "hetpipe_serve: cannot write --port-file %s\n", port_file.c_str());
      server.RequestShutdown();
      server.Join();
      return 1;
    }
  }
  std::printf("hetpipe_serve listening on %s:%d\n", options.host.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.RequestShutdown();
  server.Join();

  const serve::PlanService& service = server.service();
  std::printf("hetpipe_serve: drained; %lld requests (%lld errors), cache %lld entries, "
              "%lld hits / %lld misses / %lld evictions\n",
              static_cast<long long>(service.requests()), static_cast<long long>(service.errors()),
              static_cast<long long>(cache->size()), static_cast<long long>(cache->hits()),
              static_cast<long long>(cache->misses()), static_cast<long long>(cache->evictions()));
  return 0;
}
