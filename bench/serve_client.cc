// serve_client: one-shot CLI client for hetpipe_serve. Sends a single
// request, prints the response JSON on stdout, and exits 0 iff the server
// answered ok=true — so shell scripts and the CI smoke test can assert on the
// exit code alone.
//
// Flags: --host=ADDR         server address (default 127.0.0.1)
//        --port=N            server port (required)
//        --op=NAME           plan | max_nm | stats | shutdown (default plan)
//        --id=TAG            opaque tag echoed into the response
//        --nodes=CODES       paper node codes for the cluster (default VRGQ)
//        --spec-file=PATH    hw::ClusterSpec text file (overrides --nodes)
//        --model=NAME        resnet152 | vgg19 (default resnet152)
//        --selector=SEL      virtual-worker GPU selector (required for
//                            plan/max_nm), e.g. VVQQ or "A100*2,T4"
//        --nm=N --nm-cap=N --batch-size=N --no-search-orders
//        --strategy=NAME     partitioner search tier: auto | exact | beam |
//                            hierarchical (default auto; the response echoes
//                            the resolved tier)
//        --beam-width=N --rack-order-limit=N
//                            search-tier knobs (defaults 8 / 720)
//
// Exit codes: 0 ok=true, 1 server answered ok=false, 2 bad usage,
// 3 connection/protocol failure.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "runner/cli.h"
#include "serve/client.h"
#include "serve/protocol.h"

int main(int argc, char** argv) {
  using namespace hetpipe;

  std::string host = "127.0.0.1";
  int port = 0;
  serve::PlanRequest request;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int parsed = 0;
    if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(7), &parsed) || parsed < 1 || parsed > 65535) {
        std::fprintf(stderr, "error: --port needs an integer in [1, 65535]\n");
        return 2;
      }
      port = parsed;
    } else if (arg.rfind("--op=", 0) == 0) {
      request.op = arg.substr(5);
    } else if (arg.rfind("--id=", 0) == 0) {
      request.id = arg.substr(5);
    } else if (arg.rfind("--nodes=", 0) == 0) {
      request.cluster_nodes = arg.substr(8);
    } else if (arg.rfind("--spec-file=", 0) == 0) {
      std::ifstream in(arg.substr(12));
      if (!in) {
        std::fprintf(stderr, "error: cannot read --spec-file %s\n", arg.c_str() + 12);
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      request.cluster_spec = text.str();
    } else if (arg.rfind("--model=", 0) == 0) {
      request.model = arg.substr(8);
    } else if (arg.rfind("--selector=", 0) == 0) {
      request.selector = arg.substr(11);
    } else if (arg.rfind("--nm=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(5), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --nm needs a positive integer\n");
        return 2;
      }
      request.nm = parsed;
    } else if (arg.rfind("--nm-cap=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(9), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --nm-cap needs a positive integer\n");
        return 2;
      }
      request.nm_cap = parsed;
    } else if (arg.rfind("--batch-size=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(13), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --batch-size needs a positive integer\n");
        return 2;
      }
      request.batch_size = parsed;
    } else if (arg == "--no-search-orders") {
      request.search_orders = false;
    } else if (arg.rfind("--strategy=", 0) == 0) {
      // Passed through verbatim: the server owns validation, so a junk
      // strategy exercises its stable bad_request path (and exit code 1).
      request.strategy = arg.substr(11);
    } else if (arg.rfind("--beam-width=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(13), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --beam-width needs a positive integer\n");
        return 2;
      }
      request.beam_width = parsed;
    } else if (arg.rfind("--rack-order-limit=", 0) == 0) {
      if (!runner::ParseIntFlag(arg.substr(19), &parsed) || parsed < 1) {
        std::fprintf(stderr, "error: --rack-order-limit needs a positive integer\n");
        return 2;
      }
      request.rack_order_limit = parsed;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "error: --port is required\n");
    return 2;
  }

  serve::PlanClient client;
  std::string error;
  if (!client.Connect(host, port, &error)) {
    std::fprintf(stderr, "serve_client: %s\n", error.c_str());
    return 3;
  }
  std::string response_json;
  if (!client.CallRaw(request.ToJson(), &response_json, &error)) {
    std::fprintf(stderr, "serve_client: %s\n", error.c_str());
    return 3;
  }
  std::printf("%s\n", response_json.c_str());

  std::map<std::string, serve::JsonValue> response;
  if (!serve::ParseJsonObject(response_json, &response, &error)) {
    std::fprintf(stderr, "serve_client: unparseable response: %s\n", error.c_str());
    return 3;
  }
  auto ok = response.find("ok");
  const bool success = ok != response.end() &&
                       ok->second.type == serve::JsonValue::Type::kBool && ok->second.boolean;
  return success ? 0 : 1;
}
