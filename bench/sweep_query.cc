// Query tool over .hds columnar result files (src/store/): scan, filter,
// project, sort, and merge-join sweeps without re-running them. Reads the
// typed columns the store preserves (so `--where=throughput_img_s>=40` is a
// numeric comparison, not a string one) and emits through the same sinks
// every bench writes with — the output of a query is itself a result file,
// so queries compose (.hds in, .hds out).
//
// Usage: sweep_query FILE.hds [flags]
//
// Flags: --where=KEY(=|!=|<|<=|>|>=)VALUE  keep rows matching the predicate
//                                          (repeatable; predicates AND)
//        --select=K1,K2,...                keep only these fields, this order
//        --sort=K1,K2,...                  stable sort by these keys
//        --join=FILE2.hds                  merge-join against a second file
//        --on=K1,K2,...                    join keys (required with --join);
//                                          right-side non-key fields that
//                                          collide with a left name get a
//                                          "_r" suffix
//        --out=PATH --json[=PATH] --csv[=PATH]  output (default: JSONL to
//                                          stdout)
//
// Pipeline order: join, then where, then sort, then select. Comparisons
// (predicates, sort keys, join keys) are typed: numeric for int64/double
// columns (an int64 compares exactly against an int64), false<true for
// bools, lexicographic for strings; a row missing the key sorts first and
// fails every predicate.
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "runner/cli.h"
#include "runner/result_sink.h"
#include "store/extent_reader.h"

namespace {

using hetpipe::runner::ResultRow;
using Value = hetpipe::runner::Value;

enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

struct Predicate {
  std::string key;
  Op op = Op::kEq;
  Value literal;
};

// The literal's most specific reading: bool for true/false, int64 for a full
// integer token, double for a full float token, else the string itself.
Value ParseLiteral(const std::string& token) {
  if (token == "true") {
    return Value(true);
  }
  if (token == "false") {
    return Value(false);
  }
  int64_t as_int = 0;
  {
    const char* begin = token.c_str();
    const auto [ptr, ec] = std::from_chars(begin, begin + token.size(), as_int);
    if (ec == std::errc() && ptr == begin + token.size() && !token.empty()) {
      return Value(as_int);
    }
  }
  {
    char* end = nullptr;
    const double as_double = std::strtod(token.c_str(), &end);
    if (!token.empty() && end == token.c_str() + token.size()) {
      return Value(as_double);
    }
  }
  return Value(token);
}

bool IsNumeric(const Value& v) {
  return std::holds_alternative<int64_t>(v) || std::holds_alternative<double>(v);
}

double AsDouble(const Value& v) {
  return std::holds_alternative<int64_t>(v) ? static_cast<double>(std::get<int64_t>(v))
                                            : std::get<double>(v);
}

// Three-way typed comparison; nullptr (field absent) sorts before anything.
// Cross-type pairs order by ValueType index — arbitrary but total, so sorts
// and joins stay well-defined on schema-conflicted columns.
int CompareValues(const Value* a, const Value* b) {
  if (a == nullptr || b == nullptr) {
    return (a != nullptr) - (b != nullptr);
  }
  if (std::holds_alternative<int64_t>(*a) && std::holds_alternative<int64_t>(*b)) {
    const int64_t x = std::get<int64_t>(*a);
    const int64_t y = std::get<int64_t>(*b);
    return (x > y) - (x < y);
  }
  if (IsNumeric(*a) && IsNumeric(*b)) {
    const double x = AsDouble(*a);
    const double y = AsDouble(*b);
    return (x > y) - (x < y);
  }
  if (std::holds_alternative<bool>(*a) && std::holds_alternative<bool>(*b)) {
    return static_cast<int>(std::get<bool>(*a)) - static_cast<int>(std::get<bool>(*b));
  }
  if (std::holds_alternative<std::string>(*a) && std::holds_alternative<std::string>(*b)) {
    const int c = std::get<std::string>(*a).compare(std::get<std::string>(*b));
    return (c > 0) - (c < 0);
  }
  const int x = static_cast<int>(a->index());
  const int y = static_cast<int>(b->index());
  return (x > y) - (x < y);
}

bool Matches(const ResultRow& row, const Predicate& predicate) {
  const Value* value = row.FindValue(predicate.key);
  if (value == nullptr) {
    return false;
  }
  const int c = CompareValues(value, &predicate.literal);
  switch (predicate.op) {
    case Op::kEq:
      return c == 0;
    case Op::kNe:
      return c != 0;
    case Op::kLt:
      return c < 0;
    case Op::kLe:
      return c <= 0;
    case Op::kGt:
      return c > 0;
    case Op::kGe:
      return c >= 0;
  }
  return false;
}

// KEY(OP)VALUE with the two-character operators tried first, so "x<=3" is
// kLe on "x", not kLt on "x" against "=3".
bool ParsePredicate(const std::string& text, Predicate* out, std::string* error) {
  struct Spelling {
    const char* token;
    Op op;
  };
  static const Spelling kSpellings[] = {
      {"!=", Op::kNe}, {"<=", Op::kLe}, {">=", Op::kGe},
      {"=", Op::kEq},  {"<", Op::kLt},  {">", Op::kGt},
  };
  size_t best_pos = std::string::npos;
  const Spelling* best = nullptr;
  for (const Spelling& spelling : kSpellings) {
    const size_t pos = text.find(spelling.token);
    if (pos != std::string::npos && pos > 0 &&
        (best == nullptr || pos < best_pos ||
         (pos == best_pos && std::string(spelling.token).size() > std::string(best->token).size()))) {
      best_pos = pos;
      best = &spelling;
    }
  }
  if (best == nullptr) {
    *error = "--where needs KEY(=|!=|<|<=|>|>=)VALUE, got \"" + text + "\"";
    return false;
  }
  out->key = text.substr(0, best_pos);
  out->op = best->op;
  out->literal = ParseLiteral(text.substr(best_pos + std::string(best->token).size()));
  return true;
}

std::vector<std::string> SplitKeys(const std::string& text) {
  std::vector<std::string> keys;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) {
      keys.push_back(text.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return keys;
}

// Typed three-way comparison over a key tuple.
int CompareByKeys(const ResultRow& a, const ResultRow& b, const std::vector<std::string>& keys) {
  for (const std::string& key : keys) {
    const int c = CompareValues(a.FindValue(key), b.FindValue(key));
    if (c != 0) {
      return c;
    }
  }
  return 0;
}

ResultRow SetValue(ResultRow row, const std::string& key, const Value& value) {
  struct Visitor {
    ResultRow* row;
    const std::string* key;
    void operator()(bool v) const { row->Set(*key, v); }
    void operator()(int64_t v) const { row->Set(*key, v); }
    void operator()(double v) const { row->Set(*key, v); }
    void operator()(const std::string& v) const { row->Set(*key, v); }
  };
  std::visit(Visitor{&row, &key}, value);
  return row;
}

// One joined row: every left field, then the right row's non-key fields
// (suffixed "_r" when the name collides with any left field).
ResultRow JoinRows(const ResultRow& left, const ResultRow& right,
                   const std::vector<std::string>& keys) {
  ResultRow out = left;
  for (const auto& [key, value] : right.fields()) {
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) {
      continue;
    }
    const std::string name = left.FindValue(key) != nullptr ? key + "_r" : key;
    out = SetValue(std::move(out), name, value);
  }
  return out;
}

// Sort-merge join; rows within an equal-key group pair up as a cartesian
// product, preserving each side's (sorted) order.
std::vector<ResultRow> MergeJoin(std::vector<ResultRow> left, std::vector<ResultRow> right,
                                 const std::vector<std::string>& keys) {
  const auto by_keys = [&keys](const ResultRow& a, const ResultRow& b) {
    return CompareByKeys(a, b, keys) < 0;
  };
  std::stable_sort(left.begin(), left.end(), by_keys);
  std::stable_sort(right.begin(), right.end(), by_keys);
  std::vector<ResultRow> joined;
  size_t l = 0;
  size_t r = 0;
  while (l < left.size() && r < right.size()) {
    const int c = CompareByKeys(left[l], right[r], keys);
    if (c < 0) {
      ++l;
    } else if (c > 0) {
      ++r;
    } else {
      size_t l_end = l + 1;
      while (l_end < left.size() && CompareByKeys(left[l], left[l_end], keys) == 0) {
        ++l_end;
      }
      size_t r_end = r + 1;
      while (r_end < right.size() && CompareByKeys(right[r], right[r_end], keys) == 0) {
        ++r_end;
      }
      for (size_t i = l; i < l_end; ++i) {
        for (size_t j = r; j < r_end; ++j) {
          joined.push_back(JoinRows(left[i], right[j], keys));
        }
      }
      l = l_end;
      r = r_end;
    }
  }
  return joined;
}

std::vector<ResultRow> LoadStore(const std::string& path) {
  if (path.size() < 4 || path.compare(path.size() - 4, 4, ".hds") != 0) {
    std::fprintf(stderr, "error: sweep_query reads .hds store files, got \"%s\"\n", path.c_str());
    std::exit(2);
  }
  std::vector<ResultRow> rows;
  std::string error;
  if (!hetpipe::store::ReadAllRows(path, &rows, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    std::exit(1);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  hetpipe::runner::BenchArgs args = hetpipe::runner::BenchArgs::Parse(argc, argv);

  std::string input_path;
  std::string join_path;
  std::vector<Predicate> predicates;
  std::vector<std::string> select_keys;
  std::vector<std::string> sort_keys;
  std::vector<std::string> join_keys;
  for (const std::string& arg : args.rest) {
    const auto flag_value = [&arg](const char* flag) -> const char* {
      const std::string prefix = std::string("--") + flag + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size() : nullptr;
    };
    if (const char* v = flag_value("where")) {
      Predicate predicate;
      std::string error;
      if (!ParsePredicate(v, &predicate, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      predicates.push_back(std::move(predicate));
    } else if (const char* v = flag_value("select")) {
      select_keys = SplitKeys(v);
    } else if (const char* v = flag_value("sort")) {
      sort_keys = SplitKeys(v);
    } else if (const char* v = flag_value("join")) {
      join_path = v;
    } else if (const char* v = flag_value("on")) {
      join_keys = SplitKeys(v);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      std::fprintf(stderr, "error: more than one input file (%s, %s); join with --join=FILE\n",
                   input_path.c_str(), arg.c_str());
      return 2;
    }
  }
  if (input_path.empty()) {
    std::fprintf(stderr, "usage: sweep_query FILE.hds [--where=K=V ...] [--select=K,...] "
                         "[--sort=K,...] [--join=FILE.hds --on=K,...] [--out=PATH]\n");
    return 2;
  }
  if (!join_path.empty() && join_keys.empty()) {
    std::fprintf(stderr, "error: --join needs --on=KEY[,KEY...]\n");
    return 2;
  }
  if (join_path.empty() && !join_keys.empty()) {
    std::fprintf(stderr, "error: --on without --join\n");
    return 2;
  }

  std::vector<ResultRow> rows = LoadStore(input_path);
  const size_t rows_scanned = rows.size();
  size_t rows_joined_against = 0;
  if (!join_path.empty()) {
    std::vector<ResultRow> right = LoadStore(join_path);
    rows_joined_against = right.size();
    rows = MergeJoin(std::move(rows), std::move(right), join_keys);
  }

  if (!predicates.empty()) {
    std::vector<ResultRow> kept;
    kept.reserve(rows.size());
    for (ResultRow& row : rows) {
      bool matches = true;
      for (const Predicate& predicate : predicates) {
        matches = matches && Matches(row, predicate);
      }
      if (matches) {
        kept.push_back(std::move(row));
      }
    }
    rows = std::move(kept);
  }

  if (!sort_keys.empty()) {
    std::stable_sort(rows.begin(), rows.end(),
                     [&sort_keys](const ResultRow& a, const ResultRow& b) {
                       return CompareByKeys(a, b, sort_keys) < 0;
                     });
  }

  if (!select_keys.empty()) {
    for (ResultRow& row : rows) {
      ResultRow projected;
      for (const std::string& key : select_keys) {
        const Value* value = row.FindValue(key);
        if (value != nullptr) {
          projected = SetValue(std::move(projected), key, *value);
        }
      }
      row = std::move(projected);
    }
  }

  hetpipe::runner::JsonlSink stdout_sink(std::cout);
  hetpipe::runner::ResultSink* sink = args.sink();
  if (sink == nullptr) {
    sink = &stdout_sink;
  }
  for (const ResultRow& row : rows) {
    sink->Write(row);
  }
  sink->Flush();

  if (rows_joined_against > 0) {
    std::fprintf(stderr, "sweep_query: %zu x %zu rows joined, %zu rows out\n", rows_scanned,
                 rows_joined_against, rows.size());
  } else {
    std::fprintf(stderr, "sweep_query: %zu rows scanned, %zu rows out\n", rows_scanned,
                 rows.size());
  }
  return 0;
}
