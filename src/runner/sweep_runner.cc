#include "runner/sweep_runner.h"

namespace hetpipe::runner {

ResultRow RowFor(const core::Experiment& experiment, const core::ExperimentResult& result) {
  ResultRow row;
  row.Set("name", result.name)
      .Set("kind", core::KindName(experiment.kind))
      .Set("model", experiment.ModelLabel())
      .Set("cluster", experiment.ClusterLabel())
      .Set("feasible", result.feasible)
      .Set("throughput_img_s", result.throughput_img_s);
  if (!experiment.vw_codes.empty()) {
    row.Set("vw", experiment.vw_codes);
  }
  switch (experiment.kind) {
    case core::ExperimentKind::kFullCluster:
      row.Set("policy", cluster::PolicyName(experiment.config.allocation))
          .Set("placement",
               experiment.config.placement == wsp::PlacementPolicy::kLocal ? "local" : "rr")
          .Set("d", experiment.config.sync.d)
          .Set("nm", result.report.nm)
          .Set("num_vws", static_cast<int64_t>(result.report.vws.size()))
          .Set("s_local", result.report.s_local)
          .Set("s_global", result.report.s_global)
          .Set("total_wait_s", result.report.total_wait_s)
          .Set("idle_fraction_of_wait", result.report.idle_fraction_of_wait)
          .Set("avg_clock_distance", result.report.avg_clock_distance)
          .Set("avg_global_lag_waves", result.report.avg_global_lag_waves);
      break;
    case core::ExperimentKind::kSingleVirtualWorker:
      row.Set("nm", experiment.config.nm);
      if (result.feasible && !result.report.vws.empty()) {
        row.Set("max_utilization", result.report.vws.front().max_stage_utilization)
            .Set("bottleneck_ms", result.report.vws.front().partition.bottleneck_time * 1e3);
      }
      break;
    case core::ExperimentKind::kPartitionOnly:
      row.Set("strategy", core::StrategyName(experiment.strategy))
          .Set("nm", experiment.config.nm)
          .Set("num_stages", result.partition.num_stages())
          .Set("bottleneck_ms", result.partition.bottleneck_time * 1e3)
          .Set("round_trip_ms", result.partition.sum_time * 1e3)
          .Set("fits_memory", result.partition.feasible);
      break;
    case core::ExperimentKind::kHorovod:
      row.Set("workers", static_cast<int64_t>(result.horovod.worker_gpus.size()))
          .Set("excluded", result.horovod.num_excluded)
          .Set("iteration_s", result.horovod.iteration_s)
          .Set("exposed_comm_s", result.horovod.exposed_comm_s);
      break;
    case core::ExperimentKind::kPsDataParallel:
      row.Set("mode", experiment.ps.mode == dp::PsSyncMode::kBsp
                          ? "bsp"
                          : (experiment.ps.mode == dp::PsSyncMode::kSsp ? "ssp" : "asp"))
          .Set("workers", result.ps.num_workers)
          .Set("expected_staleness", result.ps.expected_staleness);
      break;
    case core::ExperimentKind::kAdPsgd:
      row.Set("workers", result.adpsgd.num_workers)
          .Set("expected_staleness", result.adpsgd.expected_staleness);
      break;
  }
  return row;
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {
  if (options_.cache != nullptr) {
    cache_ = options_.cache;
  } else {
    owned_cache_ = std::make_unique<PartitionCache>();
    cache_ = owned_cache_.get();
  }
  if (options_.pool != nullptr) {
    pool_ = options_.pool;
  } else {
    owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
}

std::vector<core::ExperimentResult> SweepRunner::Run(
    const std::vector<core::Experiment>& experiments) {
  const int64_t n = static_cast<int64_t>(experiments.size());
  std::vector<core::ExperimentResult> results(experiments.size());
  pool_->ParallelFor(n, [&](int64_t i) {
    core::Experiment experiment = experiments[static_cast<size_t>(i)];
    if (experiment.config.partition_cache == nullptr) {
      experiment.config.partition_cache = cache_;
    }
    if (experiment.config.pool == nullptr) {
      experiment.config.pool = pool_;
    }
    results[static_cast<size_t>(i)] = core::RunExperiment(experiment);
  });
  if (options_.sink != nullptr) {
    for (size_t i = 0; i < experiments.size(); ++i) {
      options_.sink->Write(RowFor(experiments[i], results[i]));
    }
    options_.sink->Flush();
  }
  return results;
}

}  // namespace hetpipe::runner
