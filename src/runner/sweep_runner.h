#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/experiment.h"
#include "runner/partition_cache.h"
#include "runner/result_sink.h"
#include "runner/thread_pool.h"

namespace hetpipe::runner {

struct SweepOptions {
  // Worker threads; <= 0 selects the hardware concurrency. Ignored when
  // `pool` is set.
  int threads = 0;
  // Partition memo shared by every experiment of the sweep. When null the
  // runner owns one, so repeated virtual-worker shapes across the sweep
  // always coalesce; pass an external cache to share across sweeps too.
  PartitionCache* cache = nullptr;
  // Worker pool shared by every runner it is handed to. When null the runner
  // owns a pool of `threads`. Nested sweeps (a SweepRunner::Map task that
  // itself constructs a SweepRunner) should share the outer runner's pool:
  // ThreadPool::ParallelFor from inside a pool worker runs inline, so the
  // nesting cannot deadlock or oversubscribe the machine with one thread set
  // per inner runner — and results stay identical to the serial run.
  ThreadPool* pool = nullptr;
  // Optional structured output; rows are written in experiment order after
  // the parallel phase, so sinks need no locking and output is reproducible.
  ResultSink* sink = nullptr;
};

// The standard machine-readable row for one experiment result (echoed config
// plus the kind-specific metrics).
ResultRow RowFor(const core::Experiment& experiment, const core::ExperimentResult& result);

// Executes many experiments concurrently on a thread pool. Results come back
// indexed exactly like the input — result ordering (and every value in it) is
// independent of thread interleaving: experiments are independent, the
// partition cache returns bit-identical partitions hit or miss, and rows are
// emitted sequentially afterwards.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  // Runs every experiment; results[i] belongs to experiments[i]. The sweep's
  // cache and pool are plumbed into each experiment's config unless the
  // experiment already carries its own.
  std::vector<core::ExperimentResult> Run(const std::vector<core::Experiment>& experiments);

  // Generic deterministic fan-out for sweeps that are not core::Experiments
  // (e.g. the real-SGD convergence studies, or nested sweeps that construct
  // an inner SweepRunner sharing this runner's pool): results[i] = fn(i).
  template <typename R>
  std::vector<R> Map(int64_t n, const std::function<R(int64_t)>& fn) {
    // vector<bool> packs elements into shared words, so "distinct index" is
    // NOT "distinct memory" — concurrent writes to neighbors would be a data
    // race. Reject it at compile time; use vector<char> results instead.
    static_assert(!std::is_same_v<R, bool>,
                  "SweepRunner::Map<bool> would race on vector<bool>'s packed "
                  "words; map to char (or a struct) instead");
    std::vector<R> results(static_cast<size_t>(n));
    pool_->ParallelFor(n, [&](int64_t i) { results[static_cast<size_t>(i)] = fn(i); });
    return results;
  }

  PartitionCache& cache() { return *cache_; }
  ThreadPool& pool() { return *pool_; }
  ResultSink* sink() { return options_.sink; }

 private:
  SweepOptions options_;
  std::unique_ptr<PartitionCache> owned_cache_;
  PartitionCache* cache_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace hetpipe::runner
