#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace hetpipe::runner {

// Fixed-size worker pool for the sweep runner, the partitioner's GPU-order
// search, and the serve request executor. Nested use is safe: ParallelFor
// called from inside a pool worker runs its body inline on the calling thread
// instead of re-submitting, so a task that itself fans out (e.g. an
// experiment whose partitioner parallelizes its order search over the same
// pool) can never deadlock.
//
// Thread-safety: ParallelFor and Submit may be called concurrently from any
// thread; the destructor must not race with either (join your producers
// first — the serve server drains its connections before dropping the pool).
class ThreadPool {
 public:
  // num_threads <= 0 selects the hardware concurrency (at least 1). A pool of
  // 1 executes everything on the calling thread.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // True when the calling thread is one of this process's pool workers.
  static bool InWorkerThread();

  // Runs fn(0), ..., fn(n - 1), distributing indices over the workers, and
  // returns when all have finished. The calling thread participates. Indices
  // are split into one contiguous chunk per participant and drained with
  // work-stealing (a worker that finishes its chunk takes indices from the
  // others), so skewed per-index costs cannot strand the tail on one thread;
  // every index still runs exactly once, so any output indexed by i is
  // identical to the serial loop's. If any invocation throws, the first
  // exception (in completion order) is rethrown after all indices finish or
  // are abandoned.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  // Fire-and-forget: enqueues `task` for a dedicated worker. Unlike
  // ParallelFor, the calling thread does not participate and does not wait —
  // this is the serve server's request executor, where the caller is the
  // accept loop and must return to accept(). Tasks only ever run on the
  // dedicated workers, of which a pool of k threads has k - 1: Submit on a
  // 1-thread pool runs the task inline on the calling thread (there is no
  // one else to run it, and silently never running it would be worse).
  // Exceptions escaping `task` terminate the process, as they would from any
  // detached thread — wrap work that can throw.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  // Immutable after construction; read from any thread without locking.
  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  util::Mutex mu_;
  util::CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace hetpipe::runner
