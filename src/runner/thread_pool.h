#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hetpipe::runner {

// Fixed-size worker pool for the sweep runner and the partitioner's GPU-order
// search. Nested use is safe: ParallelFor called from inside a pool worker
// runs its body inline on the calling thread instead of re-submitting, so a
// task that itself fans out (e.g. an experiment whose partitioner
// parallelizes its order search over the same pool) can never deadlock.
class ThreadPool {
 public:
  // num_threads <= 0 selects the hardware concurrency (at least 1). A pool of
  // 1 executes everything on the calling thread.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // True when the calling thread is one of this process's pool workers.
  static bool InWorkerThread();

  // Runs fn(0), ..., fn(n - 1), distributing indices over the workers, and
  // returns when all have finished. The calling thread participates. Indices
  // are split into one contiguous chunk per participant and drained with
  // work-stealing (a worker that finishes its chunk takes indices from the
  // others), so skewed per-index costs cannot strand the tail on one thread;
  // every index still runs exactly once, so any output indexed by i is
  // identical to the serial loop's. If any invocation throws, the first
  // exception (in completion order) is rethrown after all indices finish or
  // are abandoned.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
};

}  // namespace hetpipe::runner
