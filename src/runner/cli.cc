#include "runner/cli.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "store/extent_writer.h"

namespace hetpipe::runner {
namespace {

// Matches --flag / --flag=value; value is "" for the bare form.
bool MatchFlag(const std::string& arg, const std::string& flag, std::string* value) {
  const std::string prefix = "--" + flag;
  if (arg == prefix) {
    value->clear();
    return true;
  }
  if (arg.rfind(prefix + "=", 0) == 0) {
    *value = arg.substr(prefix.size() + 1);
    return true;
  }
  return false;
}

}  // namespace

bool ParseIntFlag(const std::string& text, int* value) {
  const char* begin = text.c_str();
  const auto [ptr, ec] = std::from_chars(begin, begin + text.size(), *value);
  return ec == std::errc() && ptr == begin + text.size() && !text.empty();
}

BenchArgs BenchArgs::Parse(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (MatchFlag(arg, "threads", &value)) {
      if (!ParseIntFlag(value, &args.threads)) {
        // std::atoi would map "abc" to 0 (= hardware concurrency) silently;
        // a bad thread count must be a loud usage error instead.
        std::fprintf(stderr, "error: --threads needs an integer, got \"%s\"\n", value.c_str());
        std::exit(2);
      }
    } else if (MatchFlag(arg, "cache-file", &value)) {
      if (value.empty()) {
        std::fprintf(stderr, "error: --cache-file needs a path\n");
        std::exit(2);
      }
      args.cache_path_ = value;
      args.cache_ = std::make_unique<PartitionCache>();
      std::string load_error;
      if (args.cache_->Load(value, &load_error)) {
        std::fprintf(stderr, "cache-file %s: loaded %lld entries\n", value.c_str(),
                     static_cast<long long>(args.cache_->size()));
      } else if (std::ifstream(value).good()) {
        // A present-but-unusable file is rejected cleanly: warn and run cold.
        // The destructor only rewrites it once the run has fresh entries —
        // e.g. a version-mismatched file a newer binary can still read must
        // not be clobbered by an empty cache.
        args.cache_load_failed_ = true;
        std::fprintf(stderr, "warning: ignoring cache file: %s\n", load_error.c_str());
      }
    } else if (MatchFlag(arg, "out", &value)) {
      args.AddOut(value);
    } else if (MatchFlag(arg, "json", &value)) {
      std::ostream* out = args.OpenOutput(value);
      args.sinks_.push_back(std::make_unique<JsonlSink>(*out));
      args.multi_.AddSink(args.sinks_.back().get());
      args.has_sink_ = true;
    } else if (MatchFlag(arg, "csv", &value)) {
      std::ostream* out = args.OpenOutput(value);
      args.sinks_.push_back(std::make_unique<CsvSink>(*out));
      args.multi_.AddSink(args.sinks_.back().get());
      args.has_sink_ = true;
    } else {
      args.rest.push_back(arg);
    }
  }
  return args;
}

void BenchArgs::AddOut(const std::string& path) {
  const size_t dot = path.rfind('.');
  if (path.empty() || path == "-" || dot == std::string::npos) {
    std::fprintf(stderr,
                 "error: --out needs a file path whose extension names the format "
                 "(.jsonl, .json, .csv, or .hds); use --json/--csv for stdout\n");
    std::exit(2);
  }
  const std::string ext = path.substr(dot);
  std::unique_ptr<ResultSink> sink;
  if (ext == ".jsonl" || ext == ".json") {
    sink = std::make_unique<JsonlSink>(*OpenOutput(path));
  } else if (ext == ".csv") {
    sink = std::make_unique<CsvSink>(*OpenOutput(path));
  } else if (ext == ".hds") {
    std::string error;
    sink = store::StoreSink::Open(path, &error);
    if (sink == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      std::exit(2);
    }
  } else {
    std::fprintf(stderr,
                 "error: --out does not recognize the extension \"%s\" "
                 "(want .jsonl, .json, .csv, or .hds)\n",
                 ext.c_str());
    std::exit(2);
  }
  sinks_.push_back(std::move(sink));
  multi_.AddSink(sinks_.back().get());
  has_sink_ = true;
}

std::ostream* BenchArgs::OpenOutput(const std::string& path) {
  if (path.empty() || path == "-") {
    return &std::cout;
  }
  files_.push_back(std::make_unique<std::ofstream>(path));
  if (!files_.back()->is_open()) {
    // Silent row loss is worse than a refusal: scripts must be able to trust
    // that exit 0 means the file holds the sweep.
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    std::exit(2);
  }
  return files_.back().get();
}

BenchArgs::~BenchArgs() {
  if (cache_ == nullptr || cache_path_.empty()) {
    return;
  }
  if (cache_load_failed_ && cache_->size() == 0) {
    // The file on disk failed to load and this run produced nothing to
    // replace it with; overwriting it would only destroy whatever it still
    // holds (e.g. entries a differently-versioned binary can read).
    std::fprintf(stderr, "warning: not overwriting unloadable cache file %s with an empty cache\n",
                 cache_path_.c_str());
    return;
  }
  std::string save_error;
  if (cache_->Save(cache_path_, &save_error)) {
    std::fprintf(stderr, "cache-file %s: saved %lld entries (%lld hits, %lld misses this run)\n",
                 cache_path_.c_str(), static_cast<long long>(cache_->size()),
                 static_cast<long long>(cache_->hits()),
                 static_cast<long long>(cache_->misses()));
  } else {
    std::fprintf(stderr, "warning: %s\n", save_error.c_str());
  }
}

SweepOptions BenchArgs::sweep_options() {
  SweepOptions options;
  options.threads = threads;
  options.sink = sink();
  options.cache = cache_.get();
  return options;
}

ResultSink* BenchArgs::sink() { return has_sink_ ? &multi_ : nullptr; }

}  // namespace hetpipe::runner
