#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "partition/partitioner.h"
#include "util/mutex.h"

namespace hetpipe::runner {

// Memoizes solved partitions across experiments. The exhaustive GPU-order
// search dominates sweep cost, and sweeps revisit the same virtual-worker
// shapes constantly (every ED virtual worker of a cluster, every wave of an
// Nm sweep, every policy sharing a subset). Keyed by (model profile
// fingerprint, cluster layout + link-model probes (bandwidth, scaling,
// latency/intercept knobs, and the per-node-pair links a rack topology or
// link override resolves to), VW GPU (class, node) multiset, Nm, order-search
// flag, memory params) — everything
// Partitioner::Solve's result depends on. Keys are value-based (GPU class
// names and numbers, never process-local handles), so they are stable across
// processes and safe to persist.
//
// Because Solve's answer depends on the GPUs only through their (class, node)
// multiset, a hit for a *different* GPU-id set with the same signature is
// remapped onto the requested ids, so e.g. the four ED virtual workers of the
// paper cluster all share one solve.
//
// Thread-safety: one instance is shared by every sweep task of a run and by
// every connection of a `hetpipe_serve` daemon. The read path (a hit on a
// materialized entry) takes a shared lock, so concurrent readers never
// serialize against each other; all mutation (inserting a miss,
// materializing a loaded entry, eviction, Clear) takes the exclusive lock.
// Counters are atomics, so the hot hit path never writes under the shared
// lock except to the entry's own access stamp. A hit returns a Partition
// identical to what a cold Solve would return (tested), so caching never
// changes results.
//
// Size bound: SetCapacity(n) caps the entry count (materialized + loaded
// alike); 0 (the default) keeps it unbounded, which is the historical
// behavior every bench relies on. When an insert overflows the bound, the
// least-recently-used entry is evicted (loaded-but-never-requested entries
// count as older than any materialized one) and evictions() counts it. A
// long-running service should set a bound; batch sweeps need not.
//
// Disk persistence: Save writes a versioned, checksummed binary snapshot and
// Load merges one back (entries already in memory win), so repeated figure
// runs skip the order search entirely (--cache-file in runner/cli.h). Save is
// safe to call concurrently with reads and solves — `hetpipe_serve` calls it
// periodically from a background thread — and writes a temp file renamed over
// the target, so a crash mid-save never corrupts the previous snapshot.
// Loaded entries stay in serialized form until their key is requested; a key
// can only match after the experiment has built the same cluster, so every
// GPU class a loaded entry mentions is resolvable by then. Load rejects
// truncated, corrupted, or version-mismatched files, leaving the cache
// unchanged.
class PartitionCache {
 public:
  // Bumped whenever the file layout or the key derivation changes; files of
  // any other version are rejected on Load. v2: link probes moved from
  // (0 B, 1 MiB) to (1 B, 1 MiB) so spec-level latency/intercept knobs are
  // always part of the key. v3: the resolved inter link of every node pair
  // of the virtual worker is probed, so rack topology and per-pair link
  // overrides can never alias a uniform-fabric entry (and vice versa),
  // while topology changes outside the VW's nodes — which cannot affect its
  // solve — still share entries.
  static constexpr uint32_t kFileVersion = 3;

  // Drop-in for Partitioner::SolveScalable (which IS Solve whenever the
  // resolved strategy is exact — the default for every paper-scale input).
  // Non-exact resolved strategies get their own key suffix, so a beam or
  // hierarchical answer can never alias an exact entry or vice versa; exact
  // keys are byte-identical to pre-scalable-tier keys, keeping version-3
  // cache files valid. When `was_hit` is non-null it reports whether the
  // answer came from the cache (serve responses surface this); materializing
  // a disk-loaded entry counts as a hit.
  partition::Partition Solve(const partition::Partitioner& partitioner,
                             const std::vector<int>& gpu_ids,
                             const partition::PartitionOptions& options,
                             bool* was_hit = nullptr);

  // Drop-in for Partitioner::FindMaxNm; every probed nm goes through the
  // cache, so a later Solve at the chosen nm is a hit.
  int FindMaxNm(const partition::Partitioner& partitioner, const std::vector<int>& gpu_ids,
                int nm_cap, partition::PartitionOptions options);

  // Caps the number of entries (materialized + still-serialized). 0 removes
  // the bound. Shrinking below the current size evicts immediately, oldest
  // first. Not meaningfully concurrent with itself, but safe against
  // concurrent Solve/Save.
  void SetCapacity(int64_t max_entries);
  int64_t capacity() const;

  // Writes every entry (materialized and still-serialized alike) to `path`,
  // via a temp file in the same directory renamed over the target, so a
  // crash mid-save never leaves `path` truncated or corrupted. Returns false
  // and fills `error` (when non-null) on I/O failure (the target is then
  // untouched).
  bool Save(const std::string& path, std::string* error = nullptr) const;

  // Merges the entries of a Save'd file; keys already present are kept as-is.
  // If the merge overflows a configured capacity, oldest entries are evicted.
  // Returns false and fills `error` (when non-null) on an unreadable,
  // truncated, corrupted, or version-mismatched file — the cache is unchanged
  // in every failure case.
  bool Load(const std::string& path, std::string* error = nullptr);

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }
  int64_t size() const;
  void Clear();

 private:
  // A materialized entry plus its LRU stamp. The stamp is an atomic so the
  // shared-lock hit path can refresh it without upgrading to the exclusive
  // lock; eviction scans stamps under the exclusive lock.
  struct Entry {
    partition::Partition partition;
    std::atomic<uint64_t> last_use;
    Entry(partition::Partition p, uint64_t stamp)
        : partition(std::move(p)), last_use(stamp) {}
  };

  // Evicts until the bound holds. Caller holds the exclusive lock.
  void EvictOverCapacityLocked() REQUIRES(mu_);

  mutable util::SharedMutex mu_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mu_);
  // Entries merged from disk, still serialized; materialized on first hit.
  // Never requested yet, so for eviction they rank older than any
  // materialized entry.
  std::unordered_map<std::string, std::string> pending_ GUARDED_BY(mu_);
  int64_t max_entries_ GUARDED_BY(mu_) = 0;  // 0 = unbounded
  std::atomic<uint64_t> clock_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace hetpipe::runner
