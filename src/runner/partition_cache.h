#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "partition/partitioner.h"

namespace hetpipe::runner {

// Memoizes solved partitions across experiments. The exhaustive GPU-order
// search dominates sweep cost, and sweeps revisit the same virtual-worker
// shapes constantly (every ED virtual worker of a cluster, every wave of an
// Nm sweep, every policy sharing a subset). Keyed by (model profile
// fingerprint, cluster layout, VW GPU (type, node) multiset, Nm, order-search
// flag, memory params) — everything Partitioner::Solve's result depends on.
//
// Because Solve's answer depends on the GPUs only through their (type, node)
// multiset, a hit for a *different* GPU-id set with the same signature is
// remapped onto the requested ids, so e.g. the four ED virtual workers of the
// paper cluster all share one solve.
//
// Thread-safe: concurrent sweep tasks share one instance. A hit returns a
// Partition identical to what a cold Solve would return (tested), so caching
// never changes results.
class PartitionCache {
 public:
  // Drop-in for Partitioner::Solve.
  partition::Partition Solve(const partition::Partitioner& partitioner,
                             const std::vector<int>& gpu_ids,
                             const partition::PartitionOptions& options);

  // Drop-in for Partitioner::FindMaxNm; every probed nm goes through the
  // cache, so a later Solve at the chosen nm is a hit.
  int FindMaxNm(const partition::Partitioner& partitioner, const std::vector<int>& gpu_ids,
                int nm_cap, partition::PartitionOptions options);

  int64_t hits() const;
  int64_t misses() const;
  int64_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, partition::Partition> entries_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace hetpipe::runner
