#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "partition/partitioner.h"

namespace hetpipe::runner {

// Memoizes solved partitions across experiments. The exhaustive GPU-order
// search dominates sweep cost, and sweeps revisit the same virtual-worker
// shapes constantly (every ED virtual worker of a cluster, every wave of an
// Nm sweep, every policy sharing a subset). Keyed by (model profile
// fingerprint, cluster layout + link-model probes (bandwidth, scaling,
// latency/intercept knobs, and the per-node-pair links a rack topology or
// link override resolves to), VW GPU (class, node) multiset, Nm, order-search
// flag, memory params) — everything
// Partitioner::Solve's result depends on. Keys are value-based (GPU class
// names and numbers, never process-local handles), so they are stable across
// processes and safe to persist.
//
// Because Solve's answer depends on the GPUs only through their (class, node)
// multiset, a hit for a *different* GPU-id set with the same signature is
// remapped onto the requested ids, so e.g. the four ED virtual workers of the
// paper cluster all share one solve.
//
// Thread-safe: concurrent sweep tasks share one instance. A hit returns a
// Partition identical to what a cold Solve would return (tested), so caching
// never changes results.
//
// Disk persistence: Save writes a versioned, checksummed binary snapshot and
// Load merges one back (entries already in memory win), so repeated figure
// runs skip the order search entirely (--cache-file in runner/cli.h). Loaded
// entries stay in serialized form until their key is requested; a key can
// only match after the experiment has built the same cluster, so every GPU
// class a loaded entry mentions is resolvable by then. Load rejects
// truncated, corrupted, or version-mismatched files, leaving the cache
// unchanged.
class PartitionCache {
 public:
  // Bumped whenever the file layout or the key derivation changes; files of
  // any other version are rejected on Load. v2: link probes moved from
  // (0 B, 1 MiB) to (1 B, 1 MiB) so spec-level latency/intercept knobs are
  // always part of the key. v3: the resolved inter link of every node pair
  // of the virtual worker is probed, so rack topology and per-pair link
  // overrides can never alias a uniform-fabric entry (and vice versa),
  // while topology changes outside the VW's nodes — which cannot affect its
  // solve — still share entries.
  static constexpr uint32_t kFileVersion = 3;

  // Drop-in for Partitioner::Solve.
  partition::Partition Solve(const partition::Partitioner& partitioner,
                             const std::vector<int>& gpu_ids,
                             const partition::PartitionOptions& options);

  // Drop-in for Partitioner::FindMaxNm; every probed nm goes through the
  // cache, so a later Solve at the chosen nm is a hit.
  int FindMaxNm(const partition::Partitioner& partitioner, const std::vector<int>& gpu_ids,
                int nm_cap, partition::PartitionOptions options);

  // Writes every entry (materialized and still-serialized alike) to `path`,
  // via a temp file in the same directory renamed over the target, so a
  // crash mid-save never leaves `path` truncated or corrupted. Returns false
  // and fills `error` (when non-null) on I/O failure (the target is then
  // untouched).
  bool Save(const std::string& path, std::string* error = nullptr) const;

  // Merges the entries of a Save'd file; keys already present are kept as-is.
  // Returns false and fills `error` (when non-null) on an unreadable,
  // truncated, corrupted, or version-mismatched file — the cache is unchanged
  // in every failure case.
  bool Load(const std::string& path, std::string* error = nullptr);

  int64_t hits() const;
  int64_t misses() const;
  int64_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, partition::Partition> entries_;
  // Entries merged from disk, still serialized; materialized on first hit.
  std::unordered_map<std::string, std::string> pending_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace hetpipe::runner
