#include "runner/partition_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "util/binary_io.h"

namespace hetpipe::runner {
namespace {

// The shared FNV-1a (util/binary_io.h): same algorithm this file always
// used, so every structural fingerprint — and thus every cache key and file
// checksum — is byte-identical to what older binaries computed.
using Fingerprint = util::Fnv1a;

// The distinct GPU classes present in `cluster`, ordered by name so the
// result is independent of registration order (and thus of the process).
std::vector<const hw::GpuSpec*> PresentSpecs(const hw::Cluster& cluster) {
  std::vector<const hw::GpuSpec*> specs;
  for (const hw::Gpu& gpu : cluster.gpus()) {
    const hw::GpuSpec& spec = hw::SpecOf(gpu.type);
    bool known = false;
    for (const hw::GpuSpec* s : specs) {
      known = known || s == &spec;
    }
    if (!known) {
      specs.push_back(&spec);
    }
  }
  std::sort(specs.begin(), specs.end(),
            [](const hw::GpuSpec* a, const hw::GpuSpec* b) {
              return std::strcmp(a->name, b->name) < 0;
            });
  return specs;
}

// Everything the per-layer cost model feeds the partitioner: compute times on
// every GPU class present in the cluster, boundary transfer sizes, stash and
// param bytes (memory model), and the class identities (name, declared
// TFLOPS, memory capacity) those times and caps derive from. Value-based, so
// two processes that build the same cluster spec agree on the fingerprint.
uint64_t ProfileFingerprint(const model::ModelProfile& profile, const hw::Cluster& cluster) {
  const std::vector<const hw::GpuSpec*> specs = PresentSpecs(cluster);
  Fingerprint fp;
  fp.Mix(profile.graph().name());
  fp.Mix(static_cast<uint64_t>(profile.batch_size()));
  for (const hw::GpuSpec* spec : specs) {
    fp.Mix(std::string(spec->name));
    fp.Mix(spec->effective_tflops);
    fp.Mix(spec->memory_gib);
  }
  for (int layer = 0; layer < profile.num_layers(); ++layer) {
    for (const hw::GpuSpec* spec : specs) {
      const model::LayerTime& t = profile.TimeOf(layer, spec->type);
      fp.Mix(t.fwd_s);
      fp.Mix(t.bwd_s);
    }
    fp.Mix(profile.BoundaryTransferBytes(layer));
    fp.Mix(profile.graph().layer(layer).param_bytes);
    fp.Mix(profile.graph().StashBytesInRange(layer, layer));
  }
  return fp.value();
}

// The (class, node) sequence of the virtual worker, by class name so the
// signature survives process boundaries. With the order search on, Solve's
// answer depends only on the multiset, so the sequence is sorted and any
// GPU-id set with the same shape maps to the same key; with the search off
// the given order IS the stage order, so it must stay in the key.
std::string VwSignature(const hw::Cluster& cluster, const std::vector<int>& gpu_ids,
                        bool order_invariant) {
  std::vector<std::pair<std::string, int>> shape;
  shape.reserve(gpu_ids.size());
  for (int id : gpu_ids) {
    const hw::Gpu& gpu = cluster.gpu(id);
    shape.emplace_back(hw::SpecOf(gpu.type).name, gpu.node);
  }
  if (order_invariant) {
    std::sort(shape.begin(), shape.end());
  }
  std::string signature;
  for (const auto& [name, node] : shape) {
    signature += name;
    signature.push_back('@');
    signature += std::to_string(node);
    signature.push_back(';');
  }
  return signature;
}

std::string MakeKey(const partition::Partitioner& partitioner, const std::vector<int>& gpu_ids,
                    const partition::PartitionOptions& options) {
  Fingerprint fp;
  fp.Mix(ProfileFingerprint(partitioner.profile(), partitioner.cluster()));
  fp.Mix(partitioner.cluster().ToString());
  // Two probes at distinct non-zero sizes fully characterize each affine
  // link model: t(1) = latency + 1/bw and t(1 MiB) = latency + 1 MiB/bw pin
  // down both coefficients, so clusters differing in any link knob —
  // bandwidth, scaling/efficiency, or latency/intercept — never share a key.
  // (A 0-byte probe would be blind to latency: TransferTime(0) is 0 by
  // definition, so latency-only and latency+bandwidth-aliased changes could
  // collide.)
  fp.Mix(partitioner.cluster().pcie().TransferTime(1));
  fp.Mix(partitioner.cluster().pcie().TransferTime(1ULL << 20));
  fp.Mix(partitioner.cluster().infiniband().TransferTime(1));
  fp.Mix(partitioner.cluster().infiniband().TransferTime(1ULL << 20));
  // Rack topologies and per-pair overrides make the inter-node fabric
  // non-uniform, so probe the resolved links among the virtual worker's own
  // nodes too (file version 3). Solve depends on inter-node links only
  // between consecutive stages, which are all VW GPUs, so pairs outside the
  // VW are irrelevant — probing only the VW's pairs keeps a degraded link
  // elsewhere in the cluster from splitting keys of provably identical
  // solves. On a uniform fabric every probe is a pure function of the four
  // above, so topology-only changes, and nothing else, split keys.
  const hw::Cluster& cluster = partitioner.cluster();
  std::vector<int> vw_nodes;
  vw_nodes.reserve(gpu_ids.size());
  for (int id : gpu_ids) {
    const int node = cluster.gpu(id).node;
    if (std::find(vw_nodes.begin(), vw_nodes.end(), node) == vw_nodes.end()) {
      vw_nodes.push_back(node);
    }
  }
  std::sort(vw_nodes.begin(), vw_nodes.end());
  for (size_t a = 0; a < vw_nodes.size(); ++a) {
    for (size_t b = a + 1; b < vw_nodes.size(); ++b) {
      fp.Mix(cluster.LinkBetweenNodes(vw_nodes[a], vw_nodes[b]).TransferTime(1));
      fp.Mix(cluster.LinkBetweenNodes(vw_nodes[a], vw_nodes[b]).TransferTime(1ULL << 20));
    }
  }
  fp.Mix(options.mem_params.optimizer_multiplier);
  fp.Mix(options.mem_params.framework_overhead_bytes);
  fp.Mix(static_cast<uint64_t>(options.mem_params.stash_weights ? 1 : 0));
  std::string key = std::to_string(fp.value());
  key.push_back('|');
  key += VwSignature(partitioner.cluster(), gpu_ids,
                     /*order_invariant=*/options.search_gpu_orders);
  key += "nm" + std::to_string(options.nm);
  key += options.search_gpu_orders ? "s1" : "s0";
  // Scalable-tier strategies search different order slices, so their results
  // may differ from the exact search's and must not alias its entries. The
  // token is appended only when the RESOLVED strategy is non-exact: every
  // exact-path key (the only kind that existed before the scalable tier) is
  // byte-identical to what it always was, so version-3 cache files stay
  // valid with no version bump. The knobs that shape a non-exact search ride
  // along in its token.
  const partition::SearchStrategy resolved =
      partition::ResolveSearchStrategy(partitioner.cluster(), gpu_ids, options);
  if (resolved != partition::SearchStrategy::kExact) {
    key.push_back('|');
    key += partition::SearchStrategyName(resolved);
    key += " w" + std::to_string(options.beam_width);
    if (resolved == partition::SearchStrategy::kHierarchical) {
      key += " r" + std::to_string(options.rack_order_limit);
    }
  }
  return key;
}

// Rewrites the cached partition's gpu ids onto `gpu_ids`. Valid because the
// solution depends on the GPUs only through (type, node): stage times, link
// classes, and memory caps are all unchanged under the rewrite.
partition::Partition Remap(partition::Partition partition, const hw::Cluster& cluster,
                           const std::vector<int>& gpu_ids) {
  std::vector<bool> used(gpu_ids.size(), false);
  for (partition::StageAssignment& stage : partition.stages) {
    for (size_t i = 0; i < gpu_ids.size(); ++i) {
      const hw::Gpu& gpu = cluster.gpu(gpu_ids[i]);
      if (!used[i] && gpu.type == stage.gpu_type && gpu.node == stage.node) {
        used[i] = true;
        stage.gpu_id = gpu_ids[i];
        break;
      }
    }
  }
  return partition;
}

// ---- Binary (de)serialization via util/binary_io.h. Little-endian scalars,
// ---- length-prefixed strings; GPU classes travel by name + numbers, never
// ---- by handle.

using util::Cursor;
using util::PutF64;
using util::PutI32;
using util::PutStr;
using util::PutU32;
using util::PutU64;

void SerializePartition(std::string& out, const partition::Partition& partition) {
  out.push_back(partition.feasible ? 1 : 0);
  PutF64(out, partition.bottleneck_time);
  PutF64(out, partition.sum_time);
  PutU32(out, static_cast<uint32_t>(partition.stages.size()));
  for (const partition::StageAssignment& stage : partition.stages) {
    const hw::GpuSpec& spec = hw::SpecOf(stage.gpu_type);
    PutI32(out, stage.first_layer);
    PutI32(out, stage.last_layer);
    PutI32(out, stage.gpu_id);
    PutI32(out, stage.node);
    PutStr(out, spec.name);
    PutF64(out, spec.effective_tflops);
    PutF64(out, spec.memory_gib);
    out.push_back(spec.code);
    PutF64(out, stage.fwd_compute_s);
    PutF64(out, stage.bwd_compute_s);
    PutF64(out, stage.fwd_comm_in_s);
    PutF64(out, stage.bwd_comm_in_s);
    PutU64(out, stage.param_bytes);
    PutU64(out, stage.memory_bytes);
    PutU64(out, stage.memory_cap);
  }
}

// Fails (returns false) on malformed bytes or a GPU class name that is not
// currently registered with the recorded numbers. The latter cannot happen
// for a true key hit — the key fingerprints every class of the cluster — so
// a failure simply demotes the entry to a miss.
bool DeserializePartition(const std::string& bytes, partition::Partition* out) {
  Cursor cursor(bytes.data(), bytes.size());
  partition::Partition partition;
  partition.feasible = cursor.Get<char>() != 0;
  partition.bottleneck_time = cursor.Get<double>();
  partition.sum_time = cursor.Get<double>();
  const uint32_t num_stages = cursor.Get<uint32_t>();
  for (uint32_t q = 0; cursor.ok() && q < num_stages; ++q) {
    partition::StageAssignment stage;
    stage.first_layer = cursor.Get<int32_t>();
    stage.last_layer = cursor.Get<int32_t>();
    stage.gpu_id = cursor.Get<int32_t>();
    stage.node = cursor.Get<int32_t>();
    const std::string type_name = cursor.GetStr();
    const double tflops = cursor.Get<double>();
    const double memory_gib = cursor.Get<double>();
    cursor.Get<char>();  // display code: informational only
    stage.fwd_compute_s = cursor.Get<double>();
    stage.bwd_compute_s = cursor.Get<double>();
    stage.fwd_comm_in_s = cursor.Get<double>();
    stage.bwd_comm_in_s = cursor.Get<double>();
    stage.param_bytes = cursor.Get<uint64_t>();
    stage.memory_bytes = cursor.Get<uint64_t>();
    stage.memory_cap = cursor.Get<uint64_t>();
    if (!cursor.ok()) {
      return false;
    }
    const hw::GpuSpec* spec = hw::FindGpuTypeByName(type_name);
    if (spec == nullptr || spec->effective_tflops != tflops ||
        spec->memory_gib != memory_gib) {
      return false;
    }
    stage.gpu_type = spec->type;
    partition.stages.push_back(stage);
  }
  if (!cursor.ok() || cursor.left() != 0) {
    return false;
  }
  *out = std::move(partition);
  return true;
}

constexpr uint32_t kFileMagic = 0x31435048;  // "HPC1"

uint64_t ChecksumBytes(const char* data, size_t size) { return util::Fnv1aBytes(data, size); }

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

}  // namespace

partition::Partition PartitionCache::Solve(const partition::Partitioner& partitioner,
                                           const std::vector<int>& gpu_ids,
                                           const partition::PartitionOptions& options,
                                           bool* was_hit) {
  const std::string key = MakeKey(partitioner, gpu_ids, options);
  if (was_hit != nullptr) {
    *was_hit = false;
  }
  // Fast path: a materialized hit needs only the shared lock — concurrent
  // readers (sweep tasks, serve connections) never serialize here. The LRU
  // stamp is an atomic inside the entry, so refreshing it is a plain store.
  {
    util::ReaderMutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      it->second.last_use.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                                std::memory_order_relaxed);
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      return Remap(it->second.partition, partitioner.cluster(), gpu_ids);
    }
  }
  // Slow path: materializing a disk-loaded entry or recording a miss mutates
  // the maps, so take the exclusive lock and re-check (another thread may
  // have materialized or solved this key since the shared lock dropped).
  {
    util::WriterMutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      it->second.last_use.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                                std::memory_order_relaxed);
      if (was_hit != nullptr) {
        *was_hit = true;
      }
      return Remap(it->second.partition, partitioner.cluster(), gpu_ids);
    }
    auto pending = pending_.find(key);
    if (pending != pending_.end()) {
      partition::Partition materialized;
      const bool usable = DeserializePartition(pending->second, &materialized);
      pending_.erase(pending);
      if (usable) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        entries_.try_emplace(key, materialized,
                             clock_.fetch_add(1, std::memory_order_relaxed) + 1);
        if (was_hit != nullptr) {
          *was_hit = true;
        }
        return Remap(std::move(materialized), partitioner.cluster(), gpu_ids);
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  partition::Partition solved = partitioner.SolveScalable(gpu_ids, options);
  {
    util::WriterMutexLock lock(mu_);
    entries_.try_emplace(key, solved, clock_.fetch_add(1, std::memory_order_relaxed) + 1);
    EvictOverCapacityLocked();
  }
  return solved;
}

void PartitionCache::SetCapacity(int64_t max_entries) {
  util::WriterMutexLock lock(mu_);
  max_entries_ = max_entries < 0 ? 0 : max_entries;
  EvictOverCapacityLocked();
}

int64_t PartitionCache::capacity() const {
  util::ReaderMutexLock lock(mu_);
  return max_entries_;
}

void PartitionCache::EvictOverCapacityLocked() {
  if (max_entries_ <= 0) {
    return;
  }
  while (static_cast<int64_t>(entries_.size() + pending_.size()) > max_entries_) {
    // Loaded-but-never-requested entries rank older than any materialized
    // one: nothing in this process has asked for them yet.
    if (!pending_.empty()) {
      pending_.erase(pending_.begin());
    } else {
      auto oldest = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.last_use.load(std::memory_order_relaxed) <
            oldest->second.last_use.load(std::memory_order_relaxed)) {
          oldest = it;
        }
      }
      entries_.erase(oldest);
    }
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

int PartitionCache::FindMaxNm(const partition::Partitioner& partitioner,
                              const std::vector<int>& gpu_ids, int nm_cap,
                              partition::PartitionOptions options) {
  return partition::FindMaxNmWith(
      [&](const partition::PartitionOptions& at_nm) {
        return Solve(partitioner, gpu_ids, at_nm);
      },
      nm_cap, options);
}

bool PartitionCache::Save(const std::string& path, std::string* error) const {
  std::string records;
  uint64_t count = 0;
  {
    // Shared lock: Save only reads, so a periodic background save never
    // blocks concurrent cache hits (inserts wait, which is fine — they are
    // preceded by a full solve anyway).
    util::ReaderMutexLock lock(mu_);
    count = entries_.size() + pending_.size();
    for (const auto& [key, entry] : entries_) {
      std::string blob;
      PutStr(blob, key);
      SerializePartition(blob, entry.partition);
      PutU32(records, static_cast<uint32_t>(blob.size()));
      records += blob;
    }
    for (const auto& [key, bytes] : pending_) {
      std::string blob;
      PutStr(blob, key);
      blob += bytes;
      PutU32(records, static_cast<uint32_t>(blob.size()));
      records += blob;
    }
  }

  std::string file;
  PutU32(file, kFileMagic);
  PutU32(file, kFileVersion);
  PutU64(file, count);
  file += records;
  PutU64(file, ChecksumBytes(records.data(), records.size()));

  // Write-then-rename so a crash (or ENOSPC) mid-save can never leave `path`
  // truncated: the previous cache survives until the new bytes are complete,
  // and the rename swaps them in atomically (same directory, so it cannot
  // degrade to a copy).
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      SetError(error, "cannot open " + tmp_path + " for writing");
      return false;
    }
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out.good()) {
      SetError(error, "short write to " + tmp_path);
      out.close();
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    SetError(error, "cannot rename " + tmp_path + " to " + path);
    std::remove(tmp_path.c_str());
    return false;
  }
  return true;
}

bool PartitionCache::Load(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    SetError(error, "cannot open " + path);
    return false;
  }
  std::string file((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());

  Cursor header(file.data(), file.size());
  const uint32_t magic = header.Get<uint32_t>();
  const uint32_t version = header.Get<uint32_t>();
  const uint64_t count = header.Get<uint64_t>();
  if (!header.ok() || magic != kFileMagic) {
    SetError(error, path + " is not a partition cache file");
    return false;
  }
  if (version != kFileVersion) {
    SetError(error, path + " has cache version " + std::to_string(version) + ", expected " +
                        std::to_string(kFileVersion));
    return false;
  }
  if (header.left() < sizeof(uint64_t)) {
    SetError(error, path + " is truncated");
    return false;
  }

  const size_t header_size = file.size() - header.left();
  const size_t records_size = header.left() - sizeof(uint64_t);
  const char* records = file.data() + header_size;
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, records + records_size, sizeof(stored_checksum));
  if (ChecksumBytes(records, records_size) != stored_checksum) {
    SetError(error, path + " failed its checksum (corrupted)");
    return false;
  }

  std::vector<std::pair<std::string, std::string>> loaded;
  size_t offset = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (records_size - offset < sizeof(uint32_t)) {
      SetError(error, path + " is truncated");
      return false;
    }
    uint32_t blob_size = 0;
    std::memcpy(&blob_size, records + offset, sizeof(blob_size));
    offset += sizeof(blob_size);
    if (blob_size > records_size - offset) {
      SetError(error, path + " is truncated");
      return false;
    }
    Cursor blob_cursor(records + offset, blob_size);
    std::string key = blob_cursor.GetStr();
    if (!blob_cursor.ok() || key.empty()) {
      SetError(error, path + " contains a malformed entry");
      return false;
    }
    const size_t key_bytes = blob_size - blob_cursor.left();
    loaded.emplace_back(std::move(key),
                        std::string(records + offset + key_bytes, blob_cursor.left()));
    offset += blob_size;
  }
  if (offset != records_size) {
    SetError(error, path + " has trailing bytes after its entries");
    return false;
  }

  util::WriterMutexLock lock(mu_);
  for (auto& [key, bytes] : loaded) {
    if (entries_.find(key) == entries_.end() && pending_.find(key) == pending_.end()) {
      pending_.emplace(std::move(key), std::move(bytes));
    }
  }
  EvictOverCapacityLocked();
  return true;
}

int64_t PartitionCache::size() const {
  util::ReaderMutexLock lock(mu_);
  return static_cast<int64_t>(entries_.size() + pending_.size());
}

void PartitionCache::Clear() {
  util::WriterMutexLock lock(mu_);
  entries_.clear();
  pending_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

}  // namespace hetpipe::runner
