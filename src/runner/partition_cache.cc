#include "runner/partition_cache.h"

#include <algorithm>
#include <cstring>

namespace hetpipe::runner {
namespace {

// FNV-1a, the usual choice for cheap structural fingerprints.
class Fingerprint {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ ((v >> (8 * i)) & 0xff)) * 0x100000001b3ULL;
    }
  }
  void Mix(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
  void Mix(const std::string& s) {
    for (char c : s) {
      hash_ = (hash_ ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    }
    Mix(static_cast<uint64_t>(s.size()));
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Everything the per-layer cost model feeds the partitioner: compute times
// per GPU type, boundary transfer sizes, stash/param bytes (memory model).
uint64_t ProfileFingerprint(const model::ModelProfile& profile) {
  Fingerprint fp;
  fp.Mix(profile.graph().name());
  fp.Mix(static_cast<uint64_t>(profile.batch_size()));
  for (int layer = 0; layer < profile.num_layers(); ++layer) {
    for (const hw::GpuSpec& spec : hw::AllGpuSpecs()) {
      const model::LayerTime& t = profile.TimeOf(layer, spec.type);
      fp.Mix(t.fwd_s);
      fp.Mix(t.bwd_s);
    }
    fp.Mix(profile.BoundaryTransferBytes(layer));
    fp.Mix(profile.graph().layer(layer).param_bytes);
    fp.Mix(profile.graph().StashBytesInRange(layer, layer));
  }
  return fp.value();
}

// The (type, node) sequence of the virtual worker. With the order search on,
// Solve's answer depends only on the multiset, so the sequence is sorted and
// any GPU-id set with the same shape maps to the same key; with the search
// off the given order IS the stage order, so it must stay in the key.
std::string VwSignature(const hw::Cluster& cluster, const std::vector<int>& gpu_ids,
                        bool order_invariant) {
  std::vector<std::pair<char, int>> shape;
  shape.reserve(gpu_ids.size());
  for (int id : gpu_ids) {
    const hw::Gpu& gpu = cluster.gpu(id);
    shape.emplace_back(hw::CodeOf(gpu.type), gpu.node);
  }
  if (order_invariant) {
    std::sort(shape.begin(), shape.end());
  }
  std::string signature;
  for (const auto& [code, node] : shape) {
    signature.push_back(code);
    signature += std::to_string(node);
    signature.push_back('.');
  }
  return signature;
}

std::string MakeKey(const partition::Partitioner& partitioner, const std::vector<int>& gpu_ids,
                    const partition::PartitionOptions& options) {
  Fingerprint fp;
  fp.Mix(ProfileFingerprint(partitioner.profile()));
  fp.Mix(partitioner.cluster().ToString());
  fp.Mix(options.mem_params.optimizer_multiplier);
  fp.Mix(options.mem_params.framework_overhead_bytes);
  fp.Mix(static_cast<uint64_t>(options.mem_params.stash_weights ? 1 : 0));
  std::string key = std::to_string(fp.value());
  key.push_back('|');
  key += VwSignature(partitioner.cluster(), gpu_ids,
                     /*order_invariant=*/options.search_gpu_orders);
  key += "nm" + std::to_string(options.nm);
  key += options.search_gpu_orders ? "s1" : "s0";
  return key;
}

// Rewrites the cached partition's gpu ids onto `gpu_ids`. Valid because the
// solution depends on the GPUs only through (type, node): stage times, link
// classes, and memory caps are all unchanged under the rewrite.
partition::Partition Remap(partition::Partition partition, const hw::Cluster& cluster,
                           const std::vector<int>& gpu_ids) {
  std::vector<bool> used(gpu_ids.size(), false);
  for (partition::StageAssignment& stage : partition.stages) {
    for (size_t i = 0; i < gpu_ids.size(); ++i) {
      const hw::Gpu& gpu = cluster.gpu(gpu_ids[i]);
      if (!used[i] && gpu.type == stage.gpu_type && gpu.node == stage.node) {
        used[i] = true;
        stage.gpu_id = gpu_ids[i];
        break;
      }
    }
  }
  return partition;
}

}  // namespace

partition::Partition PartitionCache::Solve(const partition::Partitioner& partitioner,
                                           const std::vector<int>& gpu_ids,
                                           const partition::PartitionOptions& options) {
  const std::string key = MakeKey(partitioner, gpu_ids, options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      return Remap(it->second, partitioner.cluster(), gpu_ids);
    }
    ++misses_;
  }
  partition::Partition solved = partitioner.Solve(gpu_ids, options);
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.emplace(key, solved);
  }
  return solved;
}

int PartitionCache::FindMaxNm(const partition::Partitioner& partitioner,
                              const std::vector<int>& gpu_ids, int nm_cap,
                              partition::PartitionOptions options) {
  return partition::FindMaxNmWith(
      [&](const partition::PartitionOptions& at_nm) {
        return Solve(partitioner, gpu_ids, at_nm);
      },
      nm_cap, options);
}

int64_t PartitionCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

int64_t PartitionCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

int64_t PartitionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

void PartitionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace hetpipe::runner
