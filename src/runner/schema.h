#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace hetpipe::runner {

class ResultRow;

// The one value type of the results pipeline; ResultRow::Value aliases it.
using Value = std::variant<bool, int64_t, double, std::string>;

// The four value types a ResultRow field can carry, in the order they appear
// in Value. The numeric values are part of the store file format
// (store::ExtentWriter serializes them), so they are append-only.
enum class ValueType : uint8_t {
  kBool = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};
const char* ValueTypeName(ValueType type);

// The ValueType of a Value's active alternative.
ValueType TypeOfValue(const Value& value);

// One named, typed column of a result set.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
};

// The explicit schema of a stream of ResultRows: ordered, typed columns,
// either declared up front or derived row by row. Every sink shares one
// evolution policy instead of re-discovering columns per row:
//
//   * A key first seen in any row appends a column, in first-seen order.
//   * A column that observes both kInt64 and kDouble values promotes to
//     kDouble (the only silent widening; int64s beyond 2^53 lose precision
//     in typed storage, which docs/result-store.md documents).
//   * Any other type conflict keeps the column's established type and is
//     counted in conflicts(); typed consumers (the store) null out the
//     conflicting value, text consumers (JSONL/CSV) render the original
//     value — rendering never depends on the column type, which is how the
//     refactor keeps every JSONL/CSV byte identical.
//   * Freeze() pins the column set for consumers that cannot add columns
//     anymore (a CSV header already in the stream). Later columns are still
//     recorded — in columns() past frozen_size(), and by name in
//     late_columns() — so nothing is lost silently.
//
// Plain value type — not thread-safe; sinks observe rows sequentially.
class Schema {
 public:
  Schema() = default;
  // Declared up front; rows observed later must match or evolve per the
  // policy above.
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  // Folds one row into the schema per the evolution policy.
  void Observe(const ResultRow& row);

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  // Index of `name`, or -1 when absent.
  int IndexOf(const std::string& name) const;

  void Freeze() {
    if (!frozen_) {
      frozen_ = true;
      frozen_size_ = columns_.size();
    }
  }
  bool frozen() const { return frozen_; }
  // Number of columns at Freeze() time (== size() when never frozen).
  size_t frozen_size() const { return frozen_ ? frozen_size_ : columns_.size(); }
  // Names of columns first seen after Freeze(), in first-seen order.
  std::vector<std::string> late_columns() const;

  // Values observed with a type that neither matched their column nor was
  // absorbed by int64->double promotion.
  int64_t conflicts() const { return conflicts_; }

  // The row's values aligned to columns(): result[i] points at the row's
  // value for columns()[i], or is nullptr where the row has no such field.
  std::vector<const Value*> Project(const ResultRow& row) const;

 private:
  std::vector<Column> columns_;
  bool frozen_ = false;
  size_t frozen_size_ = 0;
  int64_t conflicts_ = 0;
};

}  // namespace hetpipe::runner
