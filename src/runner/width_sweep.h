#pragma once

#include <string>
#include <vector>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "partition/partitioner.h"

namespace hetpipe::runner {

class ResultSink;

// One cluster/virtual-worker input of a width sweep. The sweep does not own
// the cluster; callers keep it alive for the duration (bench/partitioner_speed
// passes its growth clusters).
struct WidthSweepCase {
  std::string label;
  const hw::Cluster* cluster = nullptr;
  std::vector<int> gpu_ids;
  // When true, k is small enough for the exact order enumeration; the sweep
  // solves it once as the quality baseline (quality_vs_exact).
  bool has_exact = false;
};

// The sweep grid. Per case: kBeam over every beam width, plus — when the
// auto selector would pick the hierarchical search for that case —
// kHierarchical over every rack order limit; each configuration is solved at
// every thread count. thread value 1 means no pool (the serial path); larger
// values run on a ThreadPool of that size, and the result is asserted
// byte-identical to the serial solve (index-ordered reductions make parallel
// and serial the same bytes at any thread count).
struct WidthSweepConfig {
  std::vector<int> beam_widths = {2, 4, 8, 16, 32};
  std::vector<int64_t> rack_order_limits = {24, 120, 720};
  std::vector<int> thread_counts = {1, 2, 8};
  int repeat = 3;  // best-of-N timing per configuration
  // nm / memory knobs for every solve; strategy, beam_width, rack_order_limit
  // and pool are overwritten by the sweep.
  partition::PartitionOptions base;
};

struct WidthSweepRow {
  std::string case_label;
  std::string strategy;  // "beam" | "hierarchical"
  int beam_width = 0;
  int64_t rack_order_limit = 0;
  int threads = 1;  // 1 = serial (no pool)
  bool feasible = false;
  double solve_ms = 0.0;
  double bottleneck_ms = 0.0;
  // bottleneck / exact-optimum bottleneck (0 when the case has no exact
  // baseline) and bottleneck / best bottleneck any swept configuration of
  // this case found (1.0 = this configuration ties the sweep's best).
  double quality_vs_exact = 0.0;
  double quality_vs_best = 0.0;
  // Parallel solve bit-identical to the serial one (always true for the
  // serial rows themselves). Any false fails the sweep.
  bool thread_identical = true;
};

// Runs the sweep, prints one table line per row, and emits
// bench=partitioner_width_sweep JSON rows (plus a per-core "cores" field) to
// `sink` when non-null. Returns false if any solve was infeasible or any
// parallel solve diverged from its serial twin. docs/benchmarks.md documents
// the row schema.
bool RunWidthSweep(const model::ModelProfile& profile,
                   const std::vector<WidthSweepCase>& cases, const WidthSweepConfig& config,
                   ResultSink* sink, std::vector<WidthSweepRow>* rows_out = nullptr);

}  // namespace hetpipe::runner
