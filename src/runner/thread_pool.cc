#include "runner/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <vector>

namespace hetpipe::runner {
namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  num_threads_ = std::max(1, num_threads);
  // The calling thread participates in every ParallelFor, so a pool of k
  // threads needs only k - 1 dedicated workers.
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) {
        cv_.Wait(lock);
      }
      if (queue_.empty()) {
        return;  // shutdown with a drained queue
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // A 1-thread pool has no dedicated workers; inline execution is the only
    // way the task can ever run.
    task();
    return;
  }
  {
    util::MutexLock lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (n == 1 || num_threads_ == 1 || InWorkerThread()) {
    for (int64_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  // Work-stealing chunking: the index space is split into one contiguous
  // chunk per participant, each drained through its own atomic cursor; a
  // participant that exhausts its home chunk steals indices from the other
  // chunks' cursors. Generic-cluster sweeps mix heavyweight full-cluster
  // experiments with near-instant infeasible probes, so fixed chunk ownership
  // alone leaves workers idle while one chunk grinds — stealing keeps them
  // busy, and since every index still runs exactly once into its own result
  // slot, results remain input-ordered and identical to the serial loop.
  struct Chunk {
    alignas(64) std::atomic<int64_t> next{0};  // own cache line: stolen from
    int64_t end = 0;
  };
  struct SharedState {
    std::vector<Chunk> chunks;
    std::atomic<int64_t> done{0};
    util::Mutex mu;
    util::CondVar cv;
    std::exception_ptr error GUARDED_BY(mu);
    int64_t n = 0;
  };
  auto state = std::make_shared<SharedState>();
  state->n = n;
  const int64_t num_chunks = std::min<int64_t>(num_threads_, n);
  state->chunks = std::vector<Chunk>(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    state->chunks[static_cast<size_t>(c)].next.store(n * c / num_chunks,
                                                     std::memory_order_relaxed);
    state->chunks[static_cast<size_t>(c)].end = n * (c + 1) / num_chunks;
  }

  const auto drain = [state, &fn](int64_t home) {
    const int64_t num = static_cast<int64_t>(state->chunks.size());
    for (int64_t offset = 0; offset < num; ++offset) {
      Chunk& chunk = state->chunks[static_cast<size_t>((home + offset) % num)];
      for (;;) {
        const int64_t i = chunk.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= chunk.end) {
          break;  // chunk exhausted: move on and steal from the next one
        }
        try {
          fn(i);
        } catch (...) {
          util::MutexLock lock(state->mu);
          if (!state->error) {
            state->error = std::current_exception();
          }
        }
        if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == state->n) {
          // Taking the mutex before notifying closes the missed-wakeup
          // window: the completion waiter checks `done` under this mutex, so
          // the notify cannot land between its check and its block.
          util::MutexLock lock(state->mu);
          state->cv.NotifyAll();
        }
      }
    }
  };

  const int64_t helpers =
      std::min<int64_t>(static_cast<int64_t>(workers_.size()), n - 1);
  {
    util::MutexLock lock(mu_);
    for (int64_t i = 0; i < helpers; ++i) {
      // Helper i starts from chunk i + 1; the calling thread owns chunk 0.
      const int64_t home = (i + 1) % num_chunks;
      queue_.emplace_back([drain, home] { drain(home); });
    }
  }
  cv_.NotifyAll();

  drain(0);  // the calling thread works too
  {
    util::MutexLock lock(state->mu);
    while (state->done.load(std::memory_order_acquire) != n) {
      state->cv.Wait(lock);
    }
    if (state->error) {
      std::rethrow_exception(state->error);
    }
  }
}

}  // namespace hetpipe::runner
