#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "hw/cluster_spec.h"

namespace hetpipe::runner {

// Spec-driven scenario generators: given one hw::ClusterSpec, build the
// paper-shaped experiment grids (Fig. 3 single-VW sweeps, Table 4-style
// scaling, straggler / bandwidth / latency sensitivity) as core::Experiment
// lists ready for SweepRunner. Every generator is deterministic — the same
// spec and options always produce the same experiments in the same order —
// and carries the cluster as canonical spec text, so the lists are safe to
// fan out across threads and processes. This is how a bench (or a test)
// explores any cluster you can imagine with a few lines instead of
// hand-rolled experiment loops.

// Shared knobs of the generators. `model` selects the workload;
// `jitter_cv`/`d` seed the full-cluster WSP configs (individual generators
// that sweep one of these take explicit grids instead).
struct SpecSweepOptions {
  core::ModelKind model = core::ModelKind::kResNet152;
  double jitter_cv = 0.05;
  int d = 0;       // WSP clock-distance threshold
  int waves = 30;  // simulated waves per experiment
  int warmup_waves = 3;
};

// The demo cluster shared by the cluster_sweep, latency_sweep, and
// partitioner_speed benches (named per bench, same topology): one node
// mixing a strong datacenter card with a whimpy inference card, one whimpy
// node, one paper V node, 25 Gbit/s inter-node. Declares the "BigCard" /
// "SmallCard" GPU classes — one canonical copy, so the benches (and the
// partitioner_speed expectations file) can never drift onto different
// clusters.
hw::ClusterSpec MixedDemoSpec(const std::string& name);

// One ED-local full-cluster experiment on `spec` — the building block every
// full-cluster generator below uses (NP when the cluster has a single node,
// matching the paper's V4 case).
core::Experiment SpecExperiment(const hw::ClusterSpec& spec, const std::string& name, int d,
                                double jitter_cv, const SpecSweepOptions& options);

// Fig. 3-style: for every *distinct* ED virtual-worker shape of the spec's
// cluster, one single-virtual-worker experiment per nm in [1, nm_max].
// Shapes are (GPU class, node) multisets, so e.g. the four identical ED VWs
// of the paper testbed contribute one shape. Deterministic (jitter 0), like
// the paper's Fig. 3.
std::vector<core::Experiment> SingleVwSweep(const hw::ClusterSpec& spec, int nm_max,
                                            const SpecSweepOptions& options = {});

// Table 4-style scaling: for each node-prefix of the spec (its first 1..N
// nodes), a Horovod row and a HetPipe row, so the grid answers "what does
// each added node buy" on arbitrary clusters the way Table 4 does on the
// paper testbed.
std::vector<core::Experiment> ScalingSweep(const hw::ClusterSpec& spec,
                                           const SpecSweepOptions& options = {});

// Straggler grid: the full spec under every (jitter_cv, D) combination.
std::vector<core::Experiment> StragglerSweep(const hw::ClusterSpec& spec,
                                             const std::vector<double>& jitter_cvs,
                                             const std::vector<int>& d_values,
                                             const SpecSweepOptions& options = {});

// Bandwidth grid: the spec re-run at each inter-node link rate (Gbit/s).
std::vector<core::Experiment> BandwidthSweep(const hw::ClusterSpec& spec,
                                             const std::vector<double>& inter_gbits,
                                             const SpecSweepOptions& options = {});

// Latency grid: the spec re-run at each (inter-node intercept, intra-node
// latency) pair, in seconds — the knobs the paper's §7 regression hard-coded
// and a real deployment would re-measure.
std::vector<core::Experiment> LatencySweep(const hw::ClusterSpec& spec,
                                           const std::vector<double>& inter_intercepts_s,
                                           const std::vector<double>& intra_latencies_s,
                                           const SpecSweepOptions& options = {});

// Topology grid over a rack-structured fabric, two scenario families on
// one spec (which must carry no racks/overrides of its own):
//   - rack partitions: for every rack size r in `rack_sizes`, the nodes are
//     grouped into consecutive racks of r ("r0", "r1", ...; last rack
//     partial), and the spec re-runs at every cross-rack rate in
//     `cross_rack_gbits`;
//   - single-pair degradation: for every rate in `degraded_pair_gbits`, the
//     un-racked spec re-runs with the link node0<->node<H-1> overridden to
//     that rate (skipped on single-node specs).
// This is how coverage grows beyond uniform-fabric grids: the same workload
// under rack-structured bandwidth cliffs and one bad cable.
std::vector<core::Experiment> TopologySweep(const hw::ClusterSpec& spec,
                                            const std::vector<int>& rack_sizes,
                                            const std::vector<double>& cross_rack_gbits,
                                            const std::vector<double>& degraded_pair_gbits,
                                            const SpecSweepOptions& options = {});

}  // namespace hetpipe::runner
