#include "runner/schema.h"

#include "runner/result_sink.h"

namespace hetpipe::runner {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType TypeOfValue(const Value& value) {
  return static_cast<ValueType>(value.index());
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Schema::Observe(const ResultRow& row) {
  for (const auto& [key, value] : row.fields()) {
    const ValueType type = TypeOfValue(value);
    const int index = IndexOf(key);
    if (index < 0) {
      columns_.push_back(Column{key, type});
      continue;
    }
    Column& column = columns_[static_cast<size_t>(index)];
    if (column.type == type) {
      continue;
    }
    // A column mixing int64 and double is numeric in spirit: widen it once
    // and absorb both (an int64 observed on a kDouble column is likewise not
    // a conflict — typed storage casts it). Every other mismatch keeps the
    // established type; the value still renders as itself in text sinks.
    if (column.type == ValueType::kInt64 && type == ValueType::kDouble) {
      column.type = ValueType::kDouble;
    } else if (!(column.type == ValueType::kDouble && type == ValueType::kInt64)) {
      ++conflicts_;
    }
  }
}

std::vector<std::string> Schema::late_columns() const {
  std::vector<std::string> names;
  for (size_t i = frozen_size(); i < columns_.size(); ++i) {
    names.push_back(columns_[i].name);
  }
  return names;
}

std::vector<const Value*> Schema::Project(const ResultRow& row) const {
  std::vector<const Value*> values(columns_.size(), nullptr);
  for (const auto& [key, value] : row.fields()) {
    const int index = IndexOf(key);
    if (index >= 0) {
      values[static_cast<size_t>(index)] = &value;
    }
  }
  return values;
}

}  // namespace hetpipe::runner
