#include "runner/spec_sweep.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "cluster/allocator.h"

namespace hetpipe::runner {
namespace {

// Short human label for a spec ("spec" when anonymous), used in row names.
std::string SpecLabel(const hw::ClusterSpec& spec) {
  return spec.name.empty() ? "spec" : spec.name;
}

// Compact decimal rendering for row names (ostream default formatting, so
// 0.1 prints "0.1" and 5e-3 prints "0.005").
std::string Num(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

hw::ClusterSpec MixedDemoSpec(const std::string& name) {
  hw::ClusterSpec spec;
  spec.Named(name);
  spec.AddGpuClass("BigCard", 9.2, 40.0, 'a')
      .AddGpuClass("SmallCard", 2.6, 16.0, 't')
      .AddMixedNode({{"BigCard", 2}, {"SmallCard", 2}})
      .AddNode("SmallCard", 4)
      .AddNode("V", 4)
      .InterGbits(25.0);
  return spec;
}

core::Experiment SpecExperiment(const hw::ClusterSpec& spec, const std::string& name, int d,
                                double jitter_cv, const SpecSweepOptions& options) {
  core::Experiment e;
  e.name = name;
  e.kind = core::ExperimentKind::kFullCluster;
  e.model = options.model;
  e.cluster_spec = spec.ToString();
  e.cluster_label = SpecLabel(spec);
  e.config = core::EdLocalConfig(d, jitter_cv);
  if (spec.nodes.size() == 1) {
    // A single node forms one virtual worker (the paper's V4 case).
    e.config.allocation = cluster::AllocationPolicy::kNodePartition;
  }
  e.config.waves = options.waves;
  return e;
}

std::vector<core::Experiment> SingleVwSweep(const hw::ClusterSpec& spec, int nm_max,
                                            const SpecSweepOptions& options) {
  // The spec's ED virtual workers define the interesting single-VW shapes:
  // one GPU of every node, with smaller nodes thinning out of later VWs.
  // Each distinct (class, node) multiset becomes a PickGpus selector of
  // sorted "Class@node" terms — value-based, so the experiment list is
  // process-portable like everything else carried by spec text.
  const hw::Cluster cluster = spec.Build();
  const cluster::Allocation ed =
      cluster::Allocate(cluster, cluster::AllocationPolicy::kEqualDistribution);

  std::vector<std::string> selectors;
  std::set<std::string> seen;
  for (const std::vector<int>& vw : ed.vw_gpus) {
    std::vector<std::pair<std::string, int>> shape;
    shape.reserve(vw.size());
    for (int id : vw) {
      const hw::Gpu& gpu = cluster.gpu(id);
      shape.emplace_back(hw::SpecOf(gpu.type).name, gpu.node);
    }
    std::sort(shape.begin(), shape.end());
    std::string selector;
    for (const auto& [class_name, node] : shape) {
      if (!selector.empty()) {
        selector.push_back(',');
      }
      selector += class_name + "@" + std::to_string(node);
    }
    if (!selector.empty() && seen.insert(selector).second) {
      selectors.push_back(selector);
    }
  }

  std::vector<core::Experiment> experiments;
  for (const std::string& selector : selectors) {
    for (int nm = 1; nm <= nm_max; ++nm) {
      core::Experiment e;
      e.kind = core::ExperimentKind::kSingleVirtualWorker;
      e.model = options.model;
      e.cluster_spec = spec.ToString();
      e.cluster_label = SpecLabel(spec);
      e.vw_codes = selector;
      e.config.nm = nm;
      e.config.waves = options.waves;
      e.config.warmup_waves = options.warmup_waves;
      e.config.jitter_cv = 0.0;  // Fig. 3 is a deterministic single-VW sweep
      experiments.push_back(std::move(e));
    }
  }
  return experiments;
}

std::vector<core::Experiment> ScalingSweep(const hw::ClusterSpec& spec,
                                           const SpecSweepOptions& options) {
  std::vector<core::Experiment> experiments;
  for (size_t prefix = 1; prefix <= spec.nodes.size(); ++prefix) {
    hw::ClusterSpec subset = spec;
    subset.nodes.assign(spec.nodes.begin(), spec.nodes.begin() + static_cast<long>(prefix));
    subset.name = SpecLabel(spec) + "-" + std::to_string(prefix) + "n";
    // Trim the topology to the prefix, or the truncated spec fails Validate:
    // racks keep their in-prefix members (emptied racks vanish), an override
    // survives only when both of its nodes are in the prefix, and cross-rack
    // knobs need at least one surviving rack.
    subset.racks.clear();
    for (const hw::RackDecl& rack : spec.racks) {
      hw::RackDecl kept{rack.name, {}};
      for (const int node : rack.nodes) {
        if (node < static_cast<int>(prefix)) {
          kept.nodes.push_back(node);
        }
      }
      if (!kept.nodes.empty()) {
        subset.racks.push_back(std::move(kept));
      }
    }
    subset.link_overrides.clear();
    for (const hw::LinkOverrideDecl& decl : spec.link_overrides) {
      if (decl.node_b < static_cast<int>(prefix)) {
        subset.link_overrides.push_back(decl);
      }
    }
    if (subset.racks.empty()) {
      subset.cross_rack_gbits.reset();
      subset.cross_rack_efficiency.reset();
      subset.cross_rack_intercept_s.reset();
    }
    const std::string label =
        std::string(core::ModelName(options.model)) + " " + subset.name;

    core::Experiment horovod;
    horovod.name = label + " horovod";
    horovod.kind = core::ExperimentKind::kHorovod;
    horovod.model = options.model;
    horovod.cluster_spec = subset.ToString();
    horovod.cluster_label = subset.name;
    experiments.push_back(std::move(horovod));

    experiments.push_back(
        SpecExperiment(subset, label + " hetpipe", options.d, options.jitter_cv, options));
  }
  return experiments;
}

std::vector<core::Experiment> StragglerSweep(const hw::ClusterSpec& spec,
                                             const std::vector<double>& jitter_cvs,
                                             const std::vector<int>& d_values,
                                             const SpecSweepOptions& options) {
  std::vector<core::Experiment> experiments;
  for (const double jitter : jitter_cvs) {
    for (const int d : d_values) {
      experiments.push_back(SpecExperiment(
          spec, "straggler jitter=" + Num(jitter) + " D=" + std::to_string(d), d, jitter,
          options));
    }
  }
  return experiments;
}

std::vector<core::Experiment> BandwidthSweep(const hw::ClusterSpec& spec,
                                             const std::vector<double>& inter_gbits,
                                             const SpecSweepOptions& options) {
  std::vector<core::Experiment> experiments;
  for (const double gbits : inter_gbits) {
    hw::ClusterSpec tuned = spec;
    tuned.InterGbits(gbits);
    experiments.push_back(SpecExperiment(tuned, "bandwidth " + Num(gbits) + " Gbit/s",
                                         options.d, options.jitter_cv, options));
  }
  return experiments;
}

std::vector<core::Experiment> TopologySweep(const hw::ClusterSpec& spec,
                                            const std::vector<int>& rack_sizes,
                                            const std::vector<double>& cross_rack_gbits,
                                            const std::vector<double>& degraded_pair_gbits,
                                            const SpecSweepOptions& options) {
  if (!spec.racks.empty() || !spec.link_overrides.empty()) {
    throw std::invalid_argument(
        "TopologySweep: the base spec must not carry racks or link overrides");
  }
  const int num_nodes = static_cast<int>(spec.nodes.size());
  std::vector<core::Experiment> experiments;
  for (const int rack_size : rack_sizes) {
    if (rack_size <= 0 || rack_size >= num_nodes) {
      // One rack spanning everything (or nonsense sizes) has no cross-rack
      // pair to sweep.
      continue;
    }
    hw::ClusterSpec racked = spec;
    for (int first = 0, rack = 0; first < num_nodes; first += rack_size, ++rack) {
      std::vector<int> members;
      for (int node = first; node < std::min(first + rack_size, num_nodes); ++node) {
        members.push_back(node);
      }
      racked.AddRack("r" + std::to_string(rack), std::move(members));
    }
    for (const double gbits : cross_rack_gbits) {
      hw::ClusterSpec tuned = racked;
      tuned.CrossRackGbits(gbits);
      experiments.push_back(SpecExperiment(
          tuned,
          "racks of " + std::to_string(rack_size) + " xrack=" + Num(gbits) + " Gbit/s",
          options.d, options.jitter_cv, options));
    }
  }
  if (num_nodes > 1) {
    for (const double gbits : degraded_pair_gbits) {
      hw::ClusterSpec degraded = spec;
      degraded.OverrideLink(0, num_nodes - 1, gbits);
      experiments.push_back(SpecExperiment(
          degraded,
          "degraded node0<->node" + std::to_string(num_nodes - 1) + " " + Num(gbits) +
              " Gbit/s",
          options.d, options.jitter_cv, options));
    }
  }
  return experiments;
}

std::vector<core::Experiment> LatencySweep(const hw::ClusterSpec& spec,
                                           const std::vector<double>& inter_intercepts_s,
                                           const std::vector<double>& intra_latencies_s,
                                           const SpecSweepOptions& options) {
  std::vector<core::Experiment> experiments;
  for (const double intercept : inter_intercepts_s) {
    for (const double latency : intra_latencies_s) {
      hw::ClusterSpec tuned = spec;
      tuned.InterInterceptS(intercept).IntraLatencyS(latency);
      experiments.push_back(SpecExperiment(
          tuned, "latency inter=" + Num(intercept) + "s intra=" + Num(latency) + "s",
          options.d, options.jitter_cv, options));
    }
  }
  return experiments;
}

}  // namespace hetpipe::runner
