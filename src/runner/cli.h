#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "runner/result_sink.h"
#include "runner/sweep_runner.h"

namespace hetpipe::runner {

// The flags shared by every bench binary:
//   --threads=N       sweep-runner worker threads (default: hardware)
//   --json[=PATH]     emit JSON Lines rows (default: stdout)
//   --csv[=PATH]      emit CSV rows (default: stdout)
// Unknown arguments are left for the binary's own use (in order) in `rest`.
class BenchArgs {
 public:
  static BenchArgs Parse(int argc, char** argv);

  // Sweep options wired to the parsed flags; sink() is null when no output
  // flag was given. The returned pointers stay owned by this object.
  SweepOptions sweep_options();
  ResultSink* sink();

  int threads = 0;
  std::vector<std::string> rest;

 private:
  // Returns stdout for ""/"-", else the opened file (warning on failure).
  std::ostream* OpenOutput(const std::string& path);

  std::vector<std::unique_ptr<std::ofstream>> files_;
  std::vector<std::unique_ptr<ResultSink>> sinks_;
  MultiSink multi_;
  bool has_sink_ = false;
};

}  // namespace hetpipe::runner
