#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "runner/partition_cache.h"
#include "runner/result_sink.h"
#include "runner/sweep_runner.h"

namespace hetpipe::runner {

// Strict base-10 integer parse for flag values: the whole token must be an
// (optionally negative) integer that fits an int. Returns false on an empty
// token, junk ("abc", "3x"), or overflow — std::atoi would silently map all
// of those to 0 or truncate.
bool ParseIntFlag(const std::string& text, int* value);

// The flags shared by every bench binary:
//   --threads=N       sweep-runner worker threads (default: hardware)
//   --out=PATH        emit rows to PATH in the format its extension names:
//                     .jsonl/.json (JSON Lines), .csv, or .hds (the columnar
//                     result store, src/store/). Repeatable; combines with
//                     --json/--csv, which remain as stdout-capable aliases.
//   --json[=PATH]     emit JSON Lines rows (default: stdout)
//   --csv[=PATH]      emit CSV rows (default: stdout)
//   --cache-file=PATH disk-persistent partition cache: loaded before the
//                     sweep (a missing file starts cold; a corrupted or
//                     version-mismatched one is rejected with a warning) and
//                     saved back on exit, so repeated figure runs skip the
//                     GPU-order search entirely. A file that failed to load
//                     is only rewritten once the run has new entries to
//                     save — never clobbered with an empty cache.
// Unknown arguments are left for the binary's own use (in order) in `rest`.
class BenchArgs {
 public:
  BenchArgs() = default;
  static BenchArgs Parse(int argc, char** argv);
  // Saves the --cache-file cache back to disk (when the flag was given).
  ~BenchArgs();

  BenchArgs(BenchArgs&&) = default;
  BenchArgs& operator=(BenchArgs&&) = default;

  // Sweep options wired to the parsed flags; sink() is null when no output
  // flag was given, cache is null without --cache-file. The returned pointers
  // stay owned by this object.
  SweepOptions sweep_options();
  ResultSink* sink();
  // The --cache-file cache (null when the flag is absent).
  PartitionCache* cache() { return cache_.get(); }
  // The --cache-file path ("" when the flag is absent); hetpipe_serve hands
  // it to the server's periodic background saver.
  const std::string& cache_path() const { return cache_path_; }

  int threads = 0;
  std::vector<std::string> rest;

 private:
  // Returns stdout for ""/"-", else the opened file (warning on failure).
  std::ostream* OpenOutput(const std::string& path);
  // --out: appends the sink named by `path`'s extension (exit 2 on an
  // unrecognized or missing extension — a silent default would write a
  // format the caller did not ask for).
  void AddOut(const std::string& path);

  std::vector<std::unique_ptr<std::ofstream>> files_;
  std::vector<std::unique_ptr<ResultSink>> sinks_;
  MultiSink multi_;
  bool has_sink_ = false;
  std::string cache_path_;
  bool cache_load_failed_ = false;
  std::unique_ptr<PartitionCache> cache_;
};

}  // namespace hetpipe::runner
