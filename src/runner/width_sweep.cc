// Width/limit autotuning sweep for the scalable partitioner tier: solves each
// case under a grid of beam widths, rack order limits, and thread counts,
// anchoring quality against the exact optimum where one is tractable and
// against the sweep's own best elsewhere. Doubles as the parallel-determinism
// harness: every multi-threaded solve is compared field-for-field against its
// serial twin, and any divergence fails the sweep — the searches reduce in
// index order, so the comparison demands bit-identity, not tolerance.
#include "runner/width_sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "runner/result_sink.h"
#include "runner/thread_pool.h"

namespace hetpipe::runner {
namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// Bit-exact comparison (every field, no tolerance) — the parallel searches
// promise byte-identical results, so approximate equality would hide bugs.
bool SamePartition(const partition::Partition& a, const partition::Partition& b) {
  if (a.feasible != b.feasible || a.bottleneck_time != b.bottleneck_time ||
      a.sum_time != b.sum_time || a.stages.size() != b.stages.size()) {
    return false;
  }
  for (size_t q = 0; q < a.stages.size(); ++q) {
    const partition::StageAssignment& x = a.stages[q];
    const partition::StageAssignment& y = b.stages[q];
    if (x.first_layer != y.first_layer || x.last_layer != y.last_layer ||
        x.gpu_id != y.gpu_id || x.gpu_type != y.gpu_type || x.node != y.node ||
        x.fwd_compute_s != y.fwd_compute_s || x.bwd_compute_s != y.bwd_compute_s ||
        x.fwd_comm_in_s != y.fwd_comm_in_s || x.bwd_comm_in_s != y.bwd_comm_in_s ||
        x.param_bytes != y.param_bytes || x.memory_bytes != y.memory_bytes) {
      return false;
    }
  }
  return true;
}

// One (strategy, knob) point of the per-case grid.
struct ConfigPoint {
  partition::SearchStrategy strategy = partition::SearchStrategy::kBeam;
  int beam_width = 0;
  int64_t rack_order_limit = 0;
};

}  // namespace

bool RunWidthSweep(const model::ModelProfile& profile,
                   const std::vector<WidthSweepCase>& cases, const WidthSweepConfig& config,
                   ResultSink* sink, std::vector<WidthSweepRow>* rows_out) {
  const int cores = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const int timing_rounds = std::max(1, config.repeat);

  // Pools are shared across cases and built lazily per distinct thread count.
  std::vector<std::pair<int, std::unique_ptr<ThreadPool>>> pools;
  const auto pool_of = [&](int threads) -> ThreadPool* {
    if (threads <= 1) return nullptr;  // 1 = the serial path, no pool at all
    for (auto& [count, pool] : pools) {
      if (count == threads) return pool.get();
    }
    pools.emplace_back(threads, std::make_unique<ThreadPool>(threads));
    return pools.back().second.get();
  };

  std::printf("width sweep: %zu case(s), %d hardware core(s), best of %d\n",
              cases.size(), cores, timing_rounds);
  std::printf("  %-13s %-12s %5s %6s %3s  %9s  %12s  %8s %8s\n", "case", "strategy",
              "width", "limit", "thr", "solve_ms", "bottleneck", "vs_exact", "vs_best");

  bool ok = true;
  for (const WidthSweepCase& c : cases) {
    const partition::Partitioner partitioner(profile, *c.cluster);
    partition::PartitionOptions base = config.base;
    base.pool = nullptr;

    double exact_bottleneck = 0.0;
    if (c.has_exact) {
      const partition::Partition exact = partitioner.Solve(c.gpu_ids, base);
      if (exact.feasible) exact_bottleneck = exact.bottleneck_time;
    }

    // kBeam is swept everywhere; the rack-limit axis only matters where the
    // auto selector would run the hierarchical search (a rack-less or
    // single-rack case degrades it to the beam anyway).
    const bool sweep_hier =
        partition::ResolveSearchStrategy(*c.cluster, c.gpu_ids, base) ==
        partition::SearchStrategy::kHierarchical;
    std::vector<ConfigPoint> points;
    for (int width : config.beam_widths) {
      points.push_back({partition::SearchStrategy::kBeam, width, base.rack_order_limit});
    }
    if (sweep_hier) {
      for (int64_t limit : config.rack_order_limits) {
        points.push_back({partition::SearchStrategy::kHierarchical, base.beam_width, limit});
      }
    }

    std::vector<WidthSweepRow> case_rows;
    double best_bottleneck = std::numeric_limits<double>::infinity();
    for (const ConfigPoint& point : points) {
      partition::PartitionOptions options = base;
      options.strategy = point.strategy;
      options.beam_width = point.beam_width;
      options.rack_order_limit = point.rack_order_limit;

      options.pool = nullptr;
      const partition::Partition serial = partitioner.SolveScalable(c.gpu_ids, options);
      if (serial.feasible) {
        best_bottleneck = std::min(best_bottleneck, serial.bottleneck_time);
      }

      for (int threads : config.thread_counts) {
        options.pool = pool_of(threads);
        const partition::Partition solved =
            options.pool == nullptr ? serial : partitioner.SolveScalable(c.gpu_ids, options);

        WidthSweepRow row;
        row.case_label = c.label;
        row.strategy = partition::SearchStrategyName(point.strategy);
        row.beam_width = point.beam_width;
        row.rack_order_limit = point.rack_order_limit;
        row.threads = threads;
        row.feasible = solved.feasible;
        row.bottleneck_ms = solved.bottleneck_time * 1e3;
        row.thread_identical = SamePartition(solved, serial);
        if (exact_bottleneck > 0.0) {
          row.quality_vs_exact = solved.bottleneck_time / exact_bottleneck;
        }
        for (int r = 0; r < timing_rounds; ++r) {
          const auto start = Clock::now();
          (void)partitioner.SolveScalable(c.gpu_ids, options);
          const double ms = MsBetween(start, Clock::now());
          row.solve_ms = r == 0 ? ms : std::min(row.solve_ms, ms);
        }
        ok = ok && row.feasible && row.thread_identical;
        case_rows.push_back(std::move(row));
      }
    }

    for (WidthSweepRow& row : case_rows) {
      if (best_bottleneck > 0.0 && std::isfinite(best_bottleneck)) {
        row.quality_vs_best = (row.bottleneck_ms * 1e-3) / best_bottleneck;
      }
      char vs_exact[32] = "-";
      if (row.quality_vs_exact > 0.0) {
        std::snprintf(vs_exact, sizeof(vs_exact), "%.4f", row.quality_vs_exact);
      }
      std::printf("  %-13s %-12s %5d %6lld %3d  %9.3f  %9.3f ms  %8s %8.4f%s\n",
                  row.case_label.c_str(), row.strategy.c_str(), row.beam_width,
                  static_cast<long long>(row.rack_order_limit), row.threads, row.solve_ms,
                  row.bottleneck_ms, vs_exact, row.quality_vs_best,
                  row.feasible ? (row.thread_identical ? "" : "  PARALLEL DIVERGED — BUG")
                               : "  INFEASIBLE");
      if (sink != nullptr) {
        ResultRow out;
        out.Set("bench", "partitioner_width_sweep")
            .Set("case", row.case_label)
            .Set("strategy", row.strategy)
            .Set("beam_width", row.beam_width)
            .Set("rack_order_limit", row.rack_order_limit)
            .Set("threads", row.threads)
            .Set("cores", cores)
            .Set("feasible", row.feasible)
            .Set("solve_ms", row.solve_ms)
            .Set("bottleneck_ms", row.bottleneck_ms)
            .Set("quality_vs_best", row.quality_vs_best)
            .Set("thread_identical", row.thread_identical);
        if (row.quality_vs_exact > 0.0) {
          out.Set("quality_vs_exact", row.quality_vs_exact);
        }
        sink->Write(out);
      }
      if (rows_out != nullptr) {
        rows_out->push_back(row);
      }
    }

    // Default-retuning summary: the narrowest serial beam that already ties
    // the sweep's best bottleneck for this case (quality saturates there —
    // anything wider only costs time).
    int saturating_width = 0;
    for (const WidthSweepRow& row : case_rows) {
      if (row.strategy == std::string("beam") && row.threads == 1 && row.feasible &&
          row.quality_vs_best <= 1.0 + 1e-12) {
        saturating_width = saturating_width == 0 ? row.beam_width
                                                 : std::min(saturating_width, row.beam_width);
      }
    }
    if (saturating_width > 0) {
      std::printf("  %-13s beam quality saturates at width %d\n", c.label.c_str(),
                  saturating_width);
    }
  }
  if (sink != nullptr) {
    sink->Flush();
  }
  std::printf("width sweep %s\n", ok ? "ok" : "FAILED");
  return ok;
}

}  // namespace hetpipe::runner
