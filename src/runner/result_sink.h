#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "runner/schema.h"

namespace hetpipe::runner {

// One machine-readable result record: an ordered list of named fields.
// A plain value type — not thread-safe; build each row on one thread.
class ResultRow {
 public:
  using Value = runner::Value;

  ResultRow& Set(std::string key, bool v) { return Add(std::move(key), Value(v)); }
  ResultRow& Set(std::string key, int v) {
    return Add(std::move(key), Value(static_cast<int64_t>(v)));
  }
  ResultRow& Set(std::string key, int64_t v) { return Add(std::move(key), Value(v)); }
  ResultRow& Set(std::string key, double v) { return Add(std::move(key), Value(v)); }
  ResultRow& Set(std::string key, std::string v) { return Add(std::move(key), Value(std::move(v))); }
  ResultRow& Set(std::string key, const char* v) { return Add(std::move(key), Value(std::string(v))); }

  const std::vector<std::pair<std::string, Value>>& fields() const { return fields_; }

  // The typed value of `key`, or nullptr when the row has no such field —
  // the only accessor that distinguishes an absent key from an empty value.
  const Value* FindValue(const std::string& key) const;
  // Value of `key` rendered as in the JSON output (strings unquoted), or
  // nullopt when absent. An empty string value comes back as "" with a
  // present optional, never as nullopt.
  std::optional<std::string> Find(const std::string& key) const;
  // Find() collapsed for callers that treat absent and empty alike.
  std::string Get(const std::string& key) const {
    std::optional<std::string> value = Find(key);
    return value.has_value() ? *std::move(value) : std::string();
  }

 private:
  ResultRow& Add(std::string key, Value v) {
    fields_.emplace_back(std::move(key), std::move(v));
    return *this;
  }
  std::vector<std::pair<std::string, Value>> fields_;
};

// One row rendered as a single-line JSON object — exactly the line JsonlSink
// writes (keys in insertion order, strings escaped per RFC 8259, non-finite
// doubles as null), without the trailing newline. This is the one JSON
// encoder in the tree: the JSONL sinks, the serve wire protocol, and the
// serve clients all produce their objects through it, so escaping rules can
// never diverge between a bench row and a network frame.
std::string RowToJson(const ResultRow& row);

// Destination for sweep results. The base class owns the stream's Schema:
// Write() folds each row into it (one shared evolution policy — first-seen
// column order, int64->double promotion, frozen-header bookkeeping) before
// handing the row to the concrete sink, so sinks consume schema-checked
// typed values instead of re-discovering columns per row. Implementations
// are not required to be thread-safe: the sweep runner writes rows
// sequentially, in experiment order, after the parallel phase completes.
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  void Write(const ResultRow& row) {
    schema_.Observe(row);
    WriteRow(row);
  }
  // Flushes buffered output (CSV needs the full column set before writing).
  virtual void Flush() {}
  // The typed schema accumulated over every row written so far.
  const Schema& schema() const { return schema_; }

 protected:
  // The row has already been folded into schema().
  virtual void WriteRow(const ResultRow& row) = 0;
  Schema schema_;
};

// JSON Lines: one self-describing object per row, streamed as written. Rows
// render from their own fields (insertion order), never from the schema —
// the refactor guarantee that no JSONL byte ever moves.
class JsonlSink : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

 protected:
  void WriteRow(const ResultRow& row) override;

 private:
  std::ostream* out_;
};

// CSV with a header row. Rows are buffered until Flush (or destruction); the
// first Flush freezes the schema — the header is its column set at that
// point, the union of keys over the rows buffered so far, in first-seen
// order — and later flushes render their rows against those columns. A key
// first appearing after the header is out cannot get a column anymore (the
// header line is already in the stream); the schema records it past
// frozen_size(), and it is reported in dropped_columns() and warned about on
// stderr once, never dropped silently.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(&out) {}
  ~CsvSink() override { Flush(); }
  void Flush() override;

  // Keys that appeared only after the header was written, in first-seen
  // order; their values never reached the output.
  const std::vector<std::string>& dropped_columns() const { return dropped_columns_; }

 protected:
  void WriteRow(const ResultRow& row) override { rows_.push_back(row); }

 private:
  std::ostream* out_;
  std::vector<ResultRow> rows_;
  bool header_written_ = false;
  std::vector<std::string> dropped_columns_;
};

// Fans rows out to several sinks (e.g. --json and --csv together). Each
// child folds its own schema, so a sink added mid-stream is not poisoned by
// rows it never saw.
class MultiSink : public ResultSink {
 public:
  void AddSink(ResultSink* sink) { sinks_.push_back(sink); }
  void Flush() override {
    for (ResultSink* sink : sinks_) {
      sink->Flush();
    }
  }
  bool empty() const { return sinks_.empty(); }

 protected:
  void WriteRow(const ResultRow& row) override {
    for (ResultSink* sink : sinks_) {
      sink->Write(row);
    }
  }

 private:
  std::vector<ResultSink*> sinks_;
};

}  // namespace hetpipe::runner
