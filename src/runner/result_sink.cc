#include "runner/result_sink.h"

#include <cmath>
#include <sstream>

namespace hetpipe::runner {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) {
    return "null";
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string ValueToString(const ResultRow::Value& value, bool quote_strings) {
  struct Visitor {
    bool quote;
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return FormatDouble(v); }
    std::string operator()(const std::string& v) const {
      return quote ? "\"" + EscapeJson(v) + "\"" : v;
    }
  };
  return std::visit(Visitor{quote_strings}, value);
}

std::string EscapeCsv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

}  // namespace

std::string ResultRow::Get(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) {
      return ValueToString(v, /*quote_strings=*/false);
    }
  }
  return "";
}

void JsonlSink::Write(const ResultRow& row) {
  *out_ << "{";
  bool first = true;
  for (const auto& [key, value] : row.fields()) {
    if (!first) {
      *out_ << ",";
    }
    first = false;
    *out_ << "\"" << EscapeJson(key) << "\":" << ValueToString(value, /*quote_strings=*/true);
  }
  *out_ << "}\n";
}

void CsvSink::Flush() {
  if (rows_.empty()) {
    return;
  }

  if (columns_.empty()) {
    for (const ResultRow& row : rows_) {
      for (const auto& [key, value] : row.fields()) {
        (void)value;
        bool known = false;
        for (const std::string& c : columns_) {
          if (c == key) {
            known = true;
            break;
          }
        }
        if (!known) {
          columns_.push_back(key);
        }
      }
    }
    for (size_t i = 0; i < columns_.size(); ++i) {
      *out_ << (i > 0 ? "," : "") << EscapeCsv(columns_[i]);
    }
    *out_ << "\n";
  }

  for (const ResultRow& row : rows_) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::string cell;
      for (const auto& [key, value] : row.fields()) {
        if (key == columns_[i]) {
          cell = ValueToString(value, /*quote_strings=*/false);
          break;
        }
      }
      *out_ << (i > 0 ? "," : "") << EscapeCsv(cell);
    }
    *out_ << "\n";
  }
  rows_.clear();
}

}  // namespace hetpipe::runner
