#include "runner/result_sink.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace hetpipe::runner {
namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // JSON forbids raw control characters in strings; anything below
        // 0x20 without a short escape must go out as \u00XX or the line is
        // unparseable.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04X",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// How a row value is rendered: JSON token (strings quoted+escaped,
// non-finite doubles -> null), the raw JSON-value form ResultRow::Get
// returns (strings unquoted), or a CSV cell (non-finite doubles -> empty:
// CSV has no null literal, and "inf"/"nan" break numeric column parsers).
enum class ValueFormat { kJson, kRaw, kCsv };

std::string FormatDouble(double v, ValueFormat format) {
  if (!std::isfinite(v)) {
    // JSON has no literal for NaN or the infinities; null is the only
    // faithful spelling ("inf" makes the whole line unparseable).
    return format == ValueFormat::kCsv ? "" : "null";
  }
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

std::string ValueToString(const ResultRow::Value& value, ValueFormat format) {
  struct Visitor {
    ValueFormat format;
    std::string operator()(bool v) const { return v ? "true" : "false"; }
    std::string operator()(int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return FormatDouble(v, format); }
    std::string operator()(const std::string& v) const {
      return format == ValueFormat::kJson ? "\"" + EscapeJson(v) + "\"" : v;
    }
  };
  return std::visit(Visitor{format}, value);
}

std::string EscapeCsv(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    return s;
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out += "\"";
  return out;
}

}  // namespace

const ResultRow::Value* ResultRow::FindValue(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

std::optional<std::string> ResultRow::Find(const std::string& key) const {
  const Value* value = FindValue(key);
  if (value == nullptr) {
    return std::nullopt;
  }
  return ValueToString(*value, ValueFormat::kRaw);
}

std::string RowToJson(const ResultRow& row) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : row.fields()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + EscapeJson(key) + "\":" + ValueToString(value, ValueFormat::kJson);
  }
  out += "}";
  return out;
}

void JsonlSink::WriteRow(const ResultRow& row) { *out_ << RowToJson(row) << "\n"; }

void CsvSink::Flush() {
  if (rows_.empty()) {
    return;
  }

  // The first flush freezes the schema: rows buffered so far all contributed
  // their keys (the base class observes at Write), so the header is exactly
  // the union in first-seen order.
  if (!header_written_) {
    schema_.Freeze();
    for (size_t i = 0; i < schema_.frozen_size(); ++i) {
      *out_ << (i > 0 ? "," : "") << EscapeCsv(schema_.columns()[i].name);
    }
    *out_ << "\n";
    header_written_ = true;
  }

  const size_t num_columns = schema_.frozen_size();
  for (const ResultRow& row : rows_) {
    const std::vector<const ResultRow::Value*> values = schema_.Project(row);
    for (size_t i = 0; i < num_columns; ++i) {
      const std::string cell =
          values[i] != nullptr ? ValueToString(*values[i], ValueFormat::kCsv) : std::string();
      *out_ << (i > 0 ? "," : "") << EscapeCsv(cell);
    }
    *out_ << "\n";
  }
  rows_.clear();

  // A key first seen after the header is already out cannot get a column;
  // dropping it silently would let a sweep lose a metric without anyone
  // noticing. The schema records such columns past frozen_size(); warn once
  // per column as it appears.
  for (size_t i = num_columns + dropped_columns_.size(); i < schema_.size(); ++i) {
    const std::string& key = schema_.columns()[i].name;
    dropped_columns_.push_back(key);
    std::fprintf(stderr,
                 "warning: CSV column \"%s\" first appeared after the header was "
                 "written; its values are dropped\n",
                 key.c_str());
  }
}

}  // namespace hetpipe::runner
