#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hetpipe::wsp {

// Per-virtual-worker local clocks plus the derived global clock (§5: the
// parameter server's global clock is the minimum local clock; the clock
// distance is the spread between the fastest and slowest virtual worker).
class VectorClock {
 public:
  explicit VectorClock(int num_workers) : clocks_(static_cast<size_t>(num_workers), -1) {}

  int num_workers() const { return static_cast<int>(clocks_.size()); }
  int64_t local(int worker) const { return clocks_.at(static_cast<size_t>(worker)); }

  // Advances `worker`'s local clock to `clock` (monotonic).
  void Advance(int worker, int64_t clock);

  // Global clock: minimum local clock over all workers (-1 before any push).
  int64_t Global() const;
  // max(local) - min(local); the WSP invariant requires distance <= D.
  int64_t Distance() const;

 private:
  std::vector<int64_t> clocks_;
};

}  // namespace hetpipe::wsp
