#include "wsp/sync_policy.h"

namespace hetpipe::wsp {

std::string SyncPolicy::ToString() const {
  switch (mode) {
    case SyncMode::kWsp:
      return "WSP(D=" + std::to_string(d) + ")";
    case SyncMode::kAsp:
      return "ASP";
  }
  return "?";
}

int64_t LocalStaleness(int nm) { return nm - 1; }

int64_t GlobalStaleness(int nm, int d) {
  const int64_t s_local = LocalStaleness(nm);
  return (d + 1) * (s_local + 1) + s_local - 1;
}

int64_t RequiredGlobalWave(int64_t p, int nm, int d) {
  const int64_t m = p - GlobalStaleness(nm, d) - 1;
  if (m < 1) {
    return -1;
  }
  return (m - 1) / nm;
}

}  // namespace hetpipe::wsp
