#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hw/cluster.h"
#include "partition/partitioner.h"
#include "pipeline/virtual_worker.h"
#include "sim/simulator.h"
#include "sim/stats.h"
#include "wsp/clock.h"
#include "wsp/sync_policy.h"

namespace hetpipe::wsp {

// Where the parameter-server shards live (§8.1, "Parameter Placement").
//  kRoundRobin — layers spread round-robin over all nodes (TensorFlow's
//                replica_device_setter default): most push/pull bytes cross
//                Infiniband.
//  kLocal      — each partition's layers served by the PS on the node that
//                runs that partition ("ED-local"): push/pull stays on PCIe.
enum class PlacementPolicy {
  kRoundRobin,
  kLocal,
};

// Modeled time for one virtual worker to push a wave's aggregated update to
// the parameter servers, and to pull the global weights back.
struct VwCommTimes {
  double push_s = 0.0;
  double pull_s = 0.0;
};

// Computes push/pull times for a virtual worker's partition: every stage
// moves its parameter bytes to/from the PS shards, local bytes over PCIe and
// remote bytes over the node NIC (Infiniband). Stage transfers on different
// nodes proceed in parallel; transfers sharing a node NIC serialize. On a
// rack topology (or with per-pair link overrides) a node's remote bytes ride
// its slowest resolved inter-node link — round-robin shards live on every
// other node, so the worst pair bounds the funnel; uniform fabrics are
// bit-identical to the shared-link model.
VwCommTimes ComputePsCommTimes(const partition::Partition& partition, const hw::Cluster& cluster,
                               PlacementPolicy placement);

// Bytes a virtual worker moves across node boundaries per wave for parameter
// synchronization (the paper's 103 MB / 515 MB comparison in §8.3).
uint64_t CrossNodeSyncBytes(const partition::Partition& partition, PlacementPolicy placement,
                            int num_nodes);

struct WspCoordinatorOptions {
  int num_vws = 1;
  int nm = 1;
  SyncPolicy policy = SyncPolicy::Wsp(0);
};

// The parameter server + WSP synchronization model (§5), driving the
// injection gates of all virtual workers in the DES:
//  * a VW finishing wave c pushes its aggregated update (push_s later it
//    arrives at the PS and advances the VW's local clock);
//  * the global clock advances when every VW has pushed wave c;
//  * a VW needing global wave w (per RequiredGlobalWave) pulls once w is
//    globally complete, paying pull_s, then resumes injection.
class WspCoordinator final : public pipeline::InjectionGate {
 public:
  WspCoordinator(sim::Simulator& simulator, const WspCoordinatorOptions& options,
                 std::vector<VwCommTimes> comm);

  // pipeline::InjectionGate:
  bool RequestInjection(int vw, int64_t p, std::function<void()> wake) override;
  void OnWaveComplete(int vw, int64_t wave) override;

  int64_t global_wave() const { return global_wave_; }
  int64_t pulled_wave(int vw) const { return pulled_wave_.at(static_cast<size_t>(vw)); }
  const VectorClock& clocks() const { return clocks_; }
  // Clock distance sampled at every push arrival.
  const sim::Accumulator& clock_distance() const { return clock_distance_; }
  // Observed staleness, in waves, sampled at every gated injection:
  // (wave of p) - 1 - pulled_wave. Feeds the convergence model.
  const sim::Accumulator& observed_lag_waves() const { return observed_lag_; }

 private:
  struct Waiter {
    int64_t required_wave = -1;
    std::function<void()> wake;
  };

  void OnPushArrived(int vw, int64_t wave);
  void MaybeAdvanceGlobal();
  void StartPullIfNeeded(int vw);
  void OnPullComplete(int vw, int64_t wave);

  sim::Simulator* simulator_;
  WspCoordinatorOptions options_;
  std::vector<VwCommTimes> comm_;

  VectorClock clocks_;                 // local clock = last wave whose push arrived
  int64_t global_wave_ = -1;           // last wave pushed by *all* VWs
  std::vector<int64_t> pulled_wave_;   // last global wave each VW has pulled
  std::vector<bool> pull_in_flight_;
  std::vector<std::optional<Waiter>> waiters_;

  sim::Accumulator clock_distance_;
  sim::Accumulator observed_lag_;
};

}  // namespace hetpipe::wsp
