#include "wsp/param_server.h"

#include <algorithm>
#include <map>

namespace hetpipe::wsp {

VwCommTimes ComputePsCommTimes(const partition::Partition& partition, const hw::Cluster& cluster,
                               PlacementPolicy placement) {
  const int num_nodes = cluster.num_nodes();
  // Remote bytes funneling through each node's NIC, and the largest
  // single-GPU PCIe transfer.
  std::map<int, uint64_t> remote_bytes_by_node;
  double max_pcie_s = 0.0;

  for (const partition::StageAssignment& stage : partition.stages) {
    // Parameter bytes of this stage = weights that must be synchronized.
    const uint64_t stage_params = stage.param_bytes;
    uint64_t local = 0;
    uint64_t remote = 0;
    switch (placement) {
      case PlacementPolicy::kLocal:
        local = stage_params;
        break;
      case PlacementPolicy::kRoundRobin:
        // Layers spread evenly across all nodes: 1/H lands on this stage's
        // own node, the rest crosses Infiniband.
        local = stage_params / static_cast<uint64_t>(num_nodes);
        remote = stage_params - local;
        break;
    }
    max_pcie_s = std::max(max_pcie_s, cluster.pcie().TransferTime(local));
    remote_bytes_by_node[stage.node] += remote;
  }

  double max_ib_s = 0.0;
  for (const auto& [node, bytes] : remote_bytes_by_node) {
    // Round-robin placement spreads the remote shards over every other node,
    // so the funneled bytes ride the node's slowest inter-node link — on a
    // uniform fabric that is exactly the shared inter link, on a rack
    // topology or with a degraded pair it is the worst resolved pair link.
    max_ib_s = std::max(max_ib_s, cluster.WorstInterTransferTimeFrom(node, bytes));
  }

  VwCommTimes times;
  times.push_s = std::max(max_pcie_s, max_ib_s);
  times.pull_s = times.push_s;  // symmetric: weights down, updates up
  return times;
}

uint64_t CrossNodeSyncBytes(const partition::Partition& partition, PlacementPolicy placement,
                            int num_nodes) {
  if (placement == PlacementPolicy::kLocal) {
    return 0;
  }
  uint64_t total = 0;
  for (const partition::StageAssignment& stage : partition.stages) {
    const uint64_t local = stage.param_bytes / static_cast<uint64_t>(num_nodes);
    total += stage.param_bytes - local;
  }
  return total;
}

WspCoordinator::WspCoordinator(sim::Simulator& simulator, const WspCoordinatorOptions& options,
                               std::vector<VwCommTimes> comm)
    : simulator_(&simulator),
      options_(options),
      comm_(std::move(comm)),
      clocks_(options.num_vws),
      pulled_wave_(static_cast<size_t>(options.num_vws), -1),
      pull_in_flight_(static_cast<size_t>(options.num_vws), false),
      waiters_(static_cast<size_t>(options.num_vws)) {}

bool WspCoordinator::RequestInjection(int vw, int64_t p, std::function<void()> wake) {
  const int64_t pulled = pulled_wave_[static_cast<size_t>(vw)];
  const int64_t own_wave = (p - 1) / options_.nm;
  const auto sample_lag = [&] {
    if (own_wave >= 1) {
      observed_lag_.Add(static_cast<double>(std::max<int64_t>(0, own_wave - 1 - pulled)));
    }
  };
  if (options_.policy.mode == SyncMode::kAsp) {
    sample_lag();
    return true;
  }
  const int64_t required = RequiredGlobalWave(p, options_.nm, options_.policy.d);
  if (required < 0 || pulled >= required) {
    sample_lag();
    return true;
  }
  waiters_[static_cast<size_t>(vw)] = Waiter{required, std::move(wake)};
  StartPullIfNeeded(vw);
  return false;
}

void WspCoordinator::OnWaveComplete(int vw, int64_t wave) {
  // The aggregated update u~ travels to the parameter servers.
  simulator_->Schedule(comm_[static_cast<size_t>(vw)].push_s,
                       [this, vw, wave] { OnPushArrived(vw, wave); });
}

void WspCoordinator::OnPushArrived(int vw, int64_t wave) {
  clocks_.Advance(vw, wave);
  clock_distance_.Add(static_cast<double>(clocks_.Distance()));
  MaybeAdvanceGlobal();
  StartPullIfNeeded(vw);  // refresh this VW's local copy if it is behind
}

void WspCoordinator::MaybeAdvanceGlobal() {
  const int64_t new_global = clocks_.Global();
  if (new_global <= global_wave_) {
    return;
  }
  global_wave_ = new_global;
  // Freshly completed global waves may unblock waiting virtual workers.
  for (int vw = 0; vw < options_.num_vws; ++vw) {
    StartPullIfNeeded(vw);
  }
}

void WspCoordinator::StartPullIfNeeded(int vw) {
  const auto idx = static_cast<size_t>(vw);
  if (pull_in_flight_[idx]) {
    return;
  }
  // Pull when a waiter needs a wave that is now globally complete, or eagerly
  // whenever fresher global weights exist (virtual workers refresh their
  // local copy at wave boundaries without blocking, per §5).
  const bool waiter_ready =
      waiters_[idx].has_value() && global_wave_ >= waiters_[idx]->required_wave;
  const bool stale_copy = global_wave_ > pulled_wave_[idx];
  if (!waiter_ready && !stale_copy) {
    return;
  }
  pull_in_flight_[idx] = true;
  const int64_t wave = global_wave_;
  simulator_->Schedule(comm_[idx].pull_s, [this, vw, wave] { OnPullComplete(vw, wave); });
}

void WspCoordinator::OnPullComplete(int vw, int64_t wave) {
  const auto idx = static_cast<size_t>(vw);
  pull_in_flight_[idx] = false;
  pulled_wave_[idx] = std::max(pulled_wave_[idx], wave);
  if (waiters_[idx].has_value() && pulled_wave_[idx] >= waiters_[idx]->required_wave) {
    auto wake = std::move(waiters_[idx]->wake);
    waiters_[idx].reset();
    wake();
  } else {
    // The global wave may have advanced past `wave` while pulling.
    StartPullIfNeeded(vw);
  }
}

}  // namespace hetpipe::wsp
