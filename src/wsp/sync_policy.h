#pragma once

#include <cstdint>
#include <string>

namespace hetpipe::wsp {

// Parameter synchronization models supported at the virtual-worker level.
//  kWsp  — Wave Synchronous Parallel with clock-distance threshold D
//          (D = 0 is the BSP-like configuration of §5).
//  kAsp  — Asynchronous Parallel: no gating at all (known not to guarantee
//          convergence; provided as a baseline).
enum class SyncMode {
  kWsp,
  kAsp,
};

struct SyncPolicy {
  SyncMode mode = SyncMode::kWsp;
  int d = 0;  // maximum clock distance (ignored for kAsp)

  static SyncPolicy Wsp(int d) { return SyncPolicy{SyncMode::kWsp, d}; }
  static SyncPolicy Asp() { return SyncPolicy{SyncMode::kAsp, 0}; }

  std::string ToString() const;
};

// Local staleness threshold for Nm concurrent minibatches (§4): s_local = Nm - 1.
int64_t LocalStaleness(int nm);

// Global staleness bound (§5):
//   s_global = (D + 1) * (s_local + 1) + s_local - 1.
// A minibatch p may proceed only with weights reflecting all global updates
// from minibatches 1 .. p - (s_global + 1).
int64_t GlobalStaleness(int nm, int d);

// The newest *wave* (0-indexed) whose aggregated global updates minibatch p
// (1-indexed) must have before it may start, or -1 if none. Derived from the
// global staleness bound, given that updates become globally visible one
// whole wave at a time: p needs the global updates of minibatch
// m = p - s_global - 1, i.e. the entire wave floor((m - 1) / Nm) that m
// belongs to.
int64_t RequiredGlobalWave(int64_t p, int nm, int d);

}  // namespace hetpipe::wsp
