#pragma once

#include <cstdint>
#include <algorithm>

#include "sim/stats.h"
#include "wsp/sync_policy.h"

namespace hetpipe::wsp {

// Quantities from the convergence analysis (§6, Lemma 1), with
// sg = s_global and sl = s_local + 1 as abbreviated in the paper.

// Upper bound on |R_t| + |Q_t|: (2*sg + sl) * (N - 1).
int64_t Lemma1CardinalityBound(int64_t sg, int64_t sl, int num_workers);

// Lower bound on min(R_t ∪ Q_t): max(1, t - (sg + sl) * N).
int64_t Lemma1MinIndexBound(int64_t t, int64_t sg, int64_t sl, int num_workers);

// Theorem 1 regret bound: 4 * M * L * sqrt((2*sg + sl) * N / T).
double Theorem1RegretBound(double m, double l, int64_t sg, int64_t sl, int num_workers,
                           int64_t t);

// Records the staleness actually observed at each minibatch injection so
// experiments can verify the WSP bounds empirically and so the convergence
// model can consume *measured* (not worst-case) staleness.
class StalenessTracker {
 public:
  StalenessTracker(int nm, int d) : nm_(nm), d_(d) {}

  // `missing_updates`: number of most-recent global minibatch updates absent
  // from the weights minibatch p trains with.
  void RecordInjection(int64_t p, int64_t missing_updates);

  int64_t worst_observed() const { return worst_; }
  const sim::Accumulator& observed() const { return observed_; }
  // True iff every recorded injection respected the s_global bound.
  bool WithinBound() const { return worst_ <= GlobalStaleness(nm_, d_); }
  int64_t bound() const { return GlobalStaleness(nm_, d_); }

 private:
  int nm_;
  int d_;
  int64_t worst_ = 0;
  sim::Accumulator observed_;
};

}  // namespace hetpipe::wsp
