#include "wsp/clock.h"

#include <algorithm>
#include <cassert>

namespace hetpipe::wsp {

void VectorClock::Advance(int worker, int64_t clock) {
  int64_t& slot = clocks_.at(static_cast<size_t>(worker));
  assert(clock >= slot && "local clocks are monotonic");
  slot = std::max(slot, clock);
}

int64_t VectorClock::Global() const {
  return *std::min_element(clocks_.begin(), clocks_.end());
}

int64_t VectorClock::Distance() const {
  const auto [lo, hi] = std::minmax_element(clocks_.begin(), clocks_.end());
  return *hi - *lo;
}

}  // namespace hetpipe::wsp
