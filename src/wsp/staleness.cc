#include "wsp/staleness.h"

#include <cmath>

namespace hetpipe::wsp {

int64_t Lemma1CardinalityBound(int64_t sg, int64_t sl, int num_workers) {
  return (2 * sg + sl) * (num_workers - 1);
}

int64_t Lemma1MinIndexBound(int64_t t, int64_t sg, int64_t sl, int num_workers) {
  return std::max<int64_t>(1, t - (sg + sl) * num_workers);
}

double Theorem1RegretBound(double m, double l, int64_t sg, int64_t sl, int num_workers,
                           int64_t t) {
  return 4.0 * m * l *
         std::sqrt(static_cast<double>((2 * sg + sl) * num_workers) / static_cast<double>(t));
}

void StalenessTracker::RecordInjection(int64_t /*p*/, int64_t missing_updates) {
  worst_ = std::max(worst_, missing_updates);
  observed_.Add(static_cast<double>(missing_updates));
}

}  // namespace hetpipe::wsp
