#include "sim/event_queue.h"

#include <utility>

namespace hetpipe::sim {

uint64_t EventQueue::Push(SimTime time, std::function<void()> action) {
  const uint64_t seq = next_seq_++;
  heap_.push(Event{time, seq, std::move(action)});
  return seq;
}

Event EventQueue::Pop() {
  // std::priority_queue::top() returns a const reference; the move is safe
  // because we pop immediately after and never touch the moved-from slot.
  Event event = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return event;
}

}  // namespace hetpipe::sim
