#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.h"

namespace hetpipe::sim {

// Streaming scalar accumulator (Welford's online algorithm for variance).
class Accumulator {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Sample variance / standard deviation; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

 private:
  size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Tracks how long a simulated resource (a GPU, a link) was busy, so that
// utilization = busy / elapsed can be reported, as in Fig. 3 of the paper.
class BusyTracker {
 public:
  // Records a busy interval [start, end). Intervals are assumed
  // non-overlapping (a GPU executes one task at a time).
  void AddBusy(SimTime start, SimTime end);

  SimTime busy_time() const { return busy_; }
  // Utilization in [0, 1] over the window [window_start, window_end); only
  // busy time that falls inside the window counts.
  double Utilization(SimTime window_start, SimTime window_end) const;

 private:
  struct Interval {
    SimTime start;
    SimTime end;
  };
  SimTime busy_ = 0.0;
  std::vector<Interval> intervals_;
};

// Append-only (time, value) series, e.g. accuracy-vs-time curves.
class TimeSeries {
 public:
  void Add(double t, double v) { points_.emplace_back(t, v); }
  const std::vector<std::pair<double, double>>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  // Linear interpolation; clamps outside the recorded range.
  double ValueAt(double t) const;
  // First time the series reaches `v` (series assumed nondecreasing);
  // returns +inf if never reached.
  double FirstTimeAtLeast(double v) const;

 private:
  std::vector<std::pair<double, double>> points_;
};

}  // namespace hetpipe::sim
