#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.h"

namespace hetpipe::sim {

// Single-threaded discrete-event simulator.
//
// All HetPipe performance experiments run on this kernel: pipeline stages,
// link transfers, and parameter-server synchronization are modeled as events.
// Execution is deterministic: ties in time are broken by insertion order.
class Simulator {
 public:
  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  // Schedules `action` to run `delay` seconds from now. Negative delays clamp
  // to zero (fire at the current instant, after already-queued events).
  void Schedule(SimTime delay, std::function<void()> action);

  // Schedules `action` at absolute simulated time `time` (>= now()).
  void ScheduleAt(SimTime time, std::function<void()> action);

  // Runs until the event queue drains or Stop() is called.
  void Run();

  // Runs until simulated time exceeds `deadline` (events at exactly
  // `deadline` still fire), the queue drains, or Stop() is called. Unless
  // stopped, now() is `deadline` afterwards — even when the queue drained
  // early — so back-to-back RunUntil calls always observe a monotone clock.
  void RunUntil(SimTime deadline);

  // Requests that the currently running Run()/RunUntil() return once the
  // in-flight event completes.
  void Stop() { stopped_ = true; }

 private:
  void Dispatch(const SimTime deadline);

  EventQueue queue_;
  SimTime now_ = 0.0;
  uint64_t events_processed_ = 0;
  bool stopped_ = false;
};

}  // namespace hetpipe::sim
