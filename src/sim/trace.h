#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace hetpipe::sim {

// One completed interval of work on a simulated resource (a GPU stage, a
// link). Lanes group events by resource for display.
struct TraceEvent {
  std::string name;      // e.g. "FW(M3,P2)"
  std::string category;  // e.g. "forward" / "backward" / "comm"
  int lane = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
};

// Collects TraceEvents during a simulation; renders them as a Chrome
// about://tracing JSON file or as a Fig.-1-style ASCII Gantt chart.
class Tracer {
 public:
  void Add(TraceEvent event) { events_.push_back(std::move(event)); }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

  // Chrome trace-event format ("traceEvents" array of X-phase events, with
  // simulated seconds mapped to microseconds). Load via chrome://tracing or
  // https://ui.perfetto.dev.
  void ExportChromeJson(std::ostream& os) const;

  // ASCII Gantt: one row per lane, `width` character columns spanning
  // [t0, t1). Characters are the first letter of each event's category
  // (F for forward, B for backward, ...); '.' is idle.
  std::string AsciiGantt(SimTime t0, SimTime t1, int width,
                         const std::vector<std::string>& lane_labels = {}) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace hetpipe::sim
