#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hetpipe::sim {

// Simulated time, in seconds.
using SimTime = double;

// A scheduled callback. Events are ordered by (time, seq); seq is a strictly
// increasing insertion counter so that events scheduled for the same instant
// fire in FIFO order, making every simulation run deterministic.
struct Event {
  SimTime time = 0.0;
  uint64_t seq = 0;
  std::function<void()> action;
};

// Min-heap of events keyed on (time, seq).
class EventQueue {
 public:
  // Enqueues `action` to fire at absolute time `time`. Returns the sequence
  // number assigned to the event.
  uint64_t Push(SimTime time, std::function<void()> action);

  // Removes and returns the earliest event. Must not be called when empty.
  Event Pop();

  const Event& Top() const { return heap_.top(); }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace hetpipe::sim
