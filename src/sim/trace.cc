#include "sim/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace hetpipe::sim {
namespace {

// Minimal JSON string escaping (names are programmatic, but be safe).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

void Tracer::ExportChromeJson(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"" << JsonEscape(e.category)
       << "\",\"ph\":\"X\",\"ts\":" << e.start * 1e6 << ",\"dur\":" << (e.end - e.start) * 1e6
       << ",\"pid\":0,\"tid\":" << e.lane << "}";
  }
  os << "]}";
}

std::string Tracer::AsciiGantt(SimTime t0, SimTime t1, int width,
                               const std::vector<std::string>& lane_labels) const {
  if (t1 <= t0 || width <= 0) {
    return "";
  }
  int max_lane = 0;
  for (const TraceEvent& e : events_) {
    max_lane = std::max(max_lane, e.lane);
  }
  std::vector<std::string> rows(static_cast<size_t>(max_lane) + 1,
                                std::string(static_cast<size_t>(width), '.'));
  const double scale = width / (t1 - t0);
  for (const TraceEvent& e : events_) {
    const int c0 = std::max(0, static_cast<int>((e.start - t0) * scale));
    const int c1 = std::min(width, std::max(c0 + 1, static_cast<int>((e.end - t0) * scale)));
    const char mark = e.category.empty() ? '#' : static_cast<char>(std::toupper(e.category[0]));
    for (int c = c0; c < c1; ++c) {
      rows[static_cast<size_t>(e.lane)][static_cast<size_t>(c)] = mark;
    }
  }
  std::ostringstream os;
  for (size_t lane = 0; lane < rows.size(); ++lane) {
    if (lane < lane_labels.size()) {
      os << lane_labels[lane] << " ";
    } else {
      os << "lane" << lane << " ";
    }
    os << rows[lane] << "\n";
  }
  return os.str();
}

}  // namespace hetpipe::sim
