#include "sim/rng.h"

#include <cmath>

namespace hetpipe::sim {
namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) {
    s = sm.Next();
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = NextDouble();
  const double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace hetpipe::sim
