#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace hetpipe::sim {

// SplitMix64: used to seed Xoshiro and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next();

 private:
  uint64_t state_;
};

// xoshiro256**, a fast high-quality PRNG. All stochastic components of the
// repo (synthetic datasets, jittered task times, dataset shuffles) draw from
// this so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  uint64_t NextU64();
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Standard normal via Box-Muller.
  double Normal();
  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Fisher-Yates shuffle of indices [0, n).
  template <typename T>
  void Shuffle(T* data, size_t n) {
    for (size_t i = n; i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(data[i - 1], data[j]);
    }
  }

 private:
  std::array<uint64_t, 4> state_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace hetpipe::sim
