#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace hetpipe::sim {

void Accumulator::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void BusyTracker::AddBusy(SimTime start, SimTime end) {
  if (end <= start) {
    return;
  }
  busy_ += end - start;
  intervals_.push_back({start, end});
}

double BusyTracker::Utilization(SimTime window_start, SimTime window_end) const {
  const SimTime window = window_end - window_start;
  if (window <= 0.0) {
    return 0.0;
  }
  SimTime busy_in_window = 0.0;
  for (const Interval& iv : intervals_) {
    const SimTime s = std::max(iv.start, window_start);
    const SimTime e = std::min(iv.end, window_end);
    if (e > s) {
      busy_in_window += e - s;
    }
  }
  return std::min(1.0, busy_in_window / window);
}

double TimeSeries::ValueAt(double t) const {
  if (points_.empty()) {
    return 0.0;
  }
  if (t <= points_.front().first) {
    return points_.front().second;
  }
  if (t >= points_.back().first) {
    return points_.back().second;
  }
  // Binary search for the segment containing t.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), t,
      [](const std::pair<double, double>& p, double x) { return p.first < x; });
  const auto [t1, v1] = *it;
  const auto [t0, v0] = *(it - 1);
  if (t1 == t0) {
    return v1;
  }
  const double alpha = (t - t0) / (t1 - t0);
  return v0 + alpha * (v1 - v0);
}

double TimeSeries::FirstTimeAtLeast(double v) const {
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].second >= v) {
      if (i == 0) {
        return points_[0].first;
      }
      // Interpolate the crossing inside the previous segment.
      const auto [t0, v0] = points_[i - 1];
      const auto [t1, v1] = points_[i];
      if (v1 == v0) {
        return t1;
      }
      const double alpha = (v - v0) / (v1 - v0);
      return t0 + alpha * (t1 - t0);
    }
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace hetpipe::sim
