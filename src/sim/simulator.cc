#include "sim/simulator.h"

#include <utility>

namespace hetpipe::sim {

void Simulator::Schedule(SimTime delay, std::function<void()> action) {
  if (delay < 0.0) {
    delay = 0.0;
  }
  queue_.Push(now_ + delay, std::move(action));
}

void Simulator::ScheduleAt(SimTime time, std::function<void()> action) {
  if (time < now_) {
    time = now_;
  }
  queue_.Push(time, std::move(action));
}

void Simulator::Run() { Dispatch(std::numeric_limits<SimTime>::infinity()); }

void Simulator::RunUntil(SimTime deadline) { Dispatch(deadline); }

void Simulator::Dispatch(const SimTime deadline) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    if (queue_.Top().time > deadline) {
      now_ = deadline;
      return;
    }
    Event event = queue_.Pop();
    now_ = event.time;
    ++events_processed_;
    event.action();
  }
  // The queue drained (or Stop() fired) before the deadline. For a finite
  // deadline the simulated interval up to it has still elapsed, so advance
  // the clock; otherwise back-to-back RunUntil calls would see time jump
  // backwards relative to the previous call's deadline. Run() passes an
  // infinite deadline and must leave now_ at the last event. A Stop() leaves
  // the clock at the stopping event so the caller can resume from it.
  if (!stopped_ && deadline < std::numeric_limits<SimTime>::infinity() && now_ < deadline) {
    now_ = deadline;
  }
}

}  // namespace hetpipe::sim
