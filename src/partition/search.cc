// The scalable partitioner search tier: strategy selection, the beam search
// over (type, node) order prefixes, and the rack-hierarchical search. The
// exact enumeration in partitioner.cc is optimal but visits a multinomial
// number of orders; these searches visit a polynomial slice of that space,
// always producing their result through the same SolveFixedOrder DP, so a
// returned partition is exactly what Solve would report for its order — only
// the set of orders tried differs. Everything here is deterministic and
// invariant under permutations of the input gpu ids with equal (type, node)
// multisets: ids are canonicalized up front and every search decision is a
// function of classes and positions, never of raw id values.
//
// Parallelism: when options.pool is set, the three bulk loops — beam depth
// expansions, candidate-order evaluation, and the hierarchical coordinate-
// descent batches — run under ThreadPool::ParallelFor into index-addressed
// slots, and every winner is picked by a reduction that walks those slots in
// input order. Candidates within a batch are independent except through the
// shared branch-and-bound incumbent, and the incumbent is only ever an upper
// bound on the optimum (see SolveOrderBatch), so parallel and serial runs are
// byte-identical at any thread count. The short sequential-accept polish
// loops (pairwise-swap hill climbs) have true loop-carried dependences and
// deliberately stay serial.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>
#include <numeric>
#include <vector>

#include "partition/partitioner.h"
#include "runner/thread_pool.h"

namespace hetpipe::partition {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// One distinct (type, node) class of a virtual worker, with its member ids
// ascending. Groups are ordered by (type, node) — an id-free canonical order,
// so equal multisets on different ids group identically.
struct Group {
  hw::GpuType type;
  int node = -1;
  std::vector<int> ids;
};

std::vector<Group> CanonicalGroups(const hw::Cluster& cluster, std::vector<int> ids) {
  std::sort(ids.begin(), ids.end());
  std::vector<Group> groups;
  for (int id : ids) {
    const hw::Gpu& gpu = cluster.gpu(id);
    Group* group = nullptr;
    for (Group& existing : groups) {
      if (existing.type == gpu.type && existing.node == gpu.node) {
        group = &existing;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{gpu.type, gpu.node, {}});
      group = &groups.back();
    }
    group->ids.push_back(id);
  }
  std::sort(groups.begin(), groups.end(), [](const Group& a, const Group& b) {
    if (a.type != b.type) {
      return static_cast<int>(a.type) < static_cast<int>(b.type);
    }
    return a.node < b.node;
  });
  return groups;
}

// Realizes a group-index sequence as a gpu-id order: each group contributes
// its ids in ascending order (the minimal representative, matching the exact
// enumerator's convention).
std::vector<int> RealizeOrder(const std::vector<Group>& groups, const std::vector<int>& seq) {
  std::vector<size_t> next(groups.size(), 0);
  std::vector<int> order;
  order.reserve(seq.size());
  for (int g : seq) {
    order.push_back(groups[static_cast<size_t>(g)].ids[next[static_cast<size_t>(g)]++]);
  }
  return order;
}

// A partial beam state: `seq` classes chosen for stages 0..t-1, of which
// stages 0..t-2 are "closed" (full cost known — a stage's backward comm needs
// the NEXT stage's class, so the newest stage stays pending until extended).
// `dp[i]` is the exact minimal bottleneck of placing the first i layers on
// the closed stages; `score` is min_i dp[i], an optimistic bound used only
// for beam ranking.
struct BeamState {
  std::vector<int> seq;
  std::vector<int> used;  // per-group consumed count
  std::vector<double> dp;
  double score = 0.0;
};

// Deterministic beam ordering: better bound first, ties by class sequence.
bool BeamLess(const BeamState& a, const BeamState& b) {
  if (a.score != b.score) {
    return a.score < b.score;
  }
  return a.seq < b.seq;
}

}  // namespace

const char* SearchStrategyName(SearchStrategy strategy) {
  switch (strategy) {
    case SearchStrategy::kAuto:
      return "auto";
    case SearchStrategy::kExact:
      return "exact";
    case SearchStrategy::kBeam:
      return "beam";
    case SearchStrategy::kHierarchical:
      return "hierarchical";
  }
  return "unknown";
}

bool ParseSearchStrategy(const std::string& name, SearchStrategy* out) {
  for (SearchStrategy strategy :
       {SearchStrategy::kAuto, SearchStrategy::kExact, SearchStrategy::kBeam,
        SearchStrategy::kHierarchical}) {
    if (name == SearchStrategyName(strategy)) {
      *out = strategy;
      return true;
    }
  }
  return false;
}

uint64_t EstimateOrderCount(const hw::Cluster& cluster, const std::vector<int>& gpu_ids,
                            uint64_t cap) {
  if (cap == 0) {
    cap = 1;
  }
  const std::vector<Group> groups = CanonicalGroups(cluster, gpu_ids);
  // Multinomial k! / prod(c_g!) built as a product of binomials: placing each
  // group's c ids into the slots left over contributes C(placed + c, c).
  uint64_t total = 1;
  uint64_t placed = 0;
  for (const Group& group : groups) {
    const uint64_t c = group.ids.size();
    uint64_t binom = 1;
    for (uint64_t i = 1; i <= c; ++i) {
      // binom is C(placed + i, i) after each step (integral stepwise) and
      // non-decreasing in i, so saturating early is sound.
      const __uint128_t grown = static_cast<__uint128_t>(binom) * (placed + i) / i;
      if (grown > cap) {
        return cap;
      }
      binom = static_cast<uint64_t>(grown);
    }
    const __uint128_t next = static_cast<__uint128_t>(total) * binom;
    if (next > cap) {
      return cap;
    }
    total = static_cast<uint64_t>(next);
    placed += c;
  }
  return total;
}

SearchStrategy ResolveSearchStrategy(const hw::Cluster& cluster,
                                     const std::vector<int>& gpu_ids,
                                     const PartitionOptions& options) {
  // Deliberately independent of options.pool: parallelism changes how fast a
  // tier runs, never which tier runs (or what it returns — parallel and
  // serial solves are byte-identical). A pool-sensitive selector would fork
  // PartitionCache keys on thread count, splitting otherwise shareable cache
  // entries across hosts; partition_test pins this invariant.
  //
  // With the order search off the given order IS the stage order — there is
  // no order space to search, so every strategy degenerates to the exact
  // fixed-order DP.
  if (!options.search_gpu_orders || gpu_ids.size() <= 1) {
    return SearchStrategy::kExact;
  }
  if (options.strategy != SearchStrategy::kAuto) {
    return options.strategy;
  }
  const uint64_t limit =
      options.exact_order_limit < 1 ? 1 : static_cast<uint64_t>(options.exact_order_limit);
  if (EstimateOrderCount(cluster, gpu_ids, limit + 1) <= limit) {
    return SearchStrategy::kExact;
  }
  // Beyond exact reach: hierarchical when the virtual worker actually spans
  // racks (the coarse phase needs more than one super-node), beam otherwise.
  int first_rack = -2;
  bool multi_rack = false;
  for (int id : gpu_ids) {
    const int rack = cluster.NodeRack(cluster.gpu(id).node);
    if (rack < 0) {
      multi_rack = false;  // no rack structure at all
      break;
    }
    if (first_rack == -2) {
      first_rack = rack;
    } else if (rack != first_rack) {
      multi_rack = true;
    }
  }
  return multi_rack ? SearchStrategy::kHierarchical : SearchStrategy::kBeam;
}

Partition Partitioner::SolveScalable(const std::vector<int>& gpu_ids,
                                     const PartitionOptions& options) const {
  switch (ResolveSearchStrategy(*cluster_, gpu_ids, options)) {
    case SearchStrategy::kBeam:
      return SolveBeam(gpu_ids, options);
    case SearchStrategy::kHierarchical:
      return SolveHierarchical(gpu_ids, options);
    case SearchStrategy::kAuto:  // ResolveSearchStrategy never returns kAuto
    case SearchStrategy::kExact:
      break;
  }
  return Solve(gpu_ids, options);
}

namespace {

// Shared context of one beam/local search: the canonical groups plus the
// hoisted per-class tables the incremental DP closes stages with.
struct SearchContext {
  const model::ModelProfile* profile = nullptr;
  const hw::Cluster* cluster = nullptr;
  std::vector<Group> groups;
  int k = 0;
  int n = 0;
};

// Closes stage `sq` (class `cur`, preceded by `prev_class` or -1, followed by
// `next_class` or -1 for the last stage) over `dp_prev`, producing the next
// dp row. Identical cost and memory arithmetic to SolveFixedOrder, evaluated
// through the same cumulative tables and prefix sums.
std::vector<double> CloseStage(const SearchContext& ctx, const PartitionOptions& options,
                               const std::vector<double>& dp_prev, int sq, int prev_class,
                               int cur, int next_class) {
  const int n = ctx.n;
  const int k = ctx.k;
  const hw::GpuType type = ctx.groups[static_cast<size_t>(cur)].type;
  const double* fwd_cum = ctx.profile->FwdCum(type);
  const double* bwd_cum = ctx.profile->BwdCum(type);
  const uint64_t* param_prefix = ctx.profile->graph().ParamPrefix();
  const uint64_t* stash_prefix = ctx.profile->graph().StashPrefix();
  const uint64_t batch = static_cast<uint64_t>(ctx.profile->batch_size());
  const uint64_t in_flight = static_cast<uint64_t>(InFlightAtStage(sq, k, options.nm));
  const uint64_t cap = hw::MemoryBytes(type);

  // Boundary transfer rows, hoisted like SolveFixedOrder's xfer table. A
  // group's first id stands in for the class — links depend on nodes only.
  const auto rep = [&](int g) { return ctx.groups[static_cast<size_t>(g)].ids.front(); };
  std::vector<double> fwd_x;
  if (prev_class >= 0) {
    const hw::LinkModel& link = ctx.cluster->LinkBetween(rep(prev_class), rep(cur));
    fwd_x.resize(static_cast<size_t>(n));
    for (int b = 0; b + 1 < n; ++b) {
      fwd_x[static_cast<size_t>(b)] = link.TransferTime(ctx.profile->BoundaryTransferBytes(b));
    }
  }
  std::vector<double> bwd_x;
  if (next_class >= 0) {
    const hw::LinkModel& link = ctx.cluster->LinkBetween(rep(cur), rep(next_class));
    bwd_x.resize(static_cast<size_t>(n));
    for (int b = 0; b + 1 < n; ++b) {
      bwd_x[static_cast<size_t>(b)] = link.TransferTime(ctx.profile->BoundaryTransferBytes(b));
    }
  }

  std::vector<double> dp(static_cast<size_t>(n) + 1, kInf);
  const int q = sq + 1;  // dp rows count closed stages, 1-based like the DP
  for (int i = q; i <= n - (k - q); ++i) {
    const size_t last = static_cast<size_t>(i - 1);
    double best = kInf;
    for (int j = q - 1; j < i; ++j) {
      const double prior = dp_prev[static_cast<size_t>(j)];
      if (prior == kInf) {
        continue;
      }
      const uint64_t need = StageMemoryBytesFromSums(
          param_prefix[i] - param_prefix[j], stash_prefix[i] - stash_prefix[j], batch,
          in_flight, options.mem_params);
      if (need > cap) {
        continue;
      }
      const size_t jn = static_cast<size_t>(j) * static_cast<size_t>(n);
      double cost = fwd_cum[jn + last] + bwd_cum[jn + last];
      if (!fwd_x.empty()) {
        cost += fwd_x[static_cast<size_t>(j - 1)];
      }
      if (!bwd_x.empty()) {
        cost += bwd_x[last];
      }
      const double cand = std::max(prior, cost);
      if (cand < best) {
        best = cand;
      }
    }
    dp[static_cast<size_t>(i)] = best;
  }
  return dp;
}

double MinOf(const std::vector<double>& dp) {
  double best = kInf;
  for (double v : dp) {
    best = std::min(best, v);
  }
  return best;
}

// Solves every candidate order with a shared branch-and-bound incumbent, on
// options.pool when one is given, returning results indexed like the input.
// Callers reduce over the returned vector in input order, which makes the
// picked winner independent of thread interleaving: the incumbent (seeded
// with `initial_bound`, tightened to the min bottleneck of any feasible
// result) never drops below min(initial_bound, batch optimum), so whenever
// the batch can beat or tie the caller's incumbent at all, every candidate
// achieving the batch minimum is solved exactly under any schedule
// (`cand > prune_above` is strict), and candidates a tighter bound happens to
// prune could never have won the reduction anyway. This is the same argument
// Solve's exact order enumeration relies on.
std::vector<Partition> SolveOrderBatch(
    const std::function<Partition(const std::vector<int>&, double)>& solve_order,
    const PartitionOptions& options, double initial_bound,
    const std::vector<std::vector<int>>& orders) {
  std::vector<Partition> results(orders.size());
  std::mutex incumbent_mu;
  double incumbent = initial_bound;
  const auto solve_one = [&](int64_t index) {
    double bound = kInf;
    if (options.prune) {
      std::lock_guard<std::mutex> lock(incumbent_mu);
      bound = incumbent;
    }
    Partition candidate = solve_order(orders[static_cast<size_t>(index)], bound);
    if (candidate.feasible) {
      std::lock_guard<std::mutex> lock(incumbent_mu);
      incumbent = std::min(incumbent, candidate.bottleneck_time);
    }
    results[static_cast<size_t>(index)] = std::move(candidate);
  };
  if (options.pool != nullptr && orders.size() > 1) {
    options.pool->ParallelFor(static_cast<int64_t>(orders.size()), solve_one);
  } else {
    for (int64_t index = 0; index < static_cast<int64_t>(orders.size()); ++index) {
      solve_one(index);
    }
  }
  return results;
}

}  // namespace

Partition Partitioner::SolveBeam(const std::vector<int>& gpu_ids,
                                 const PartitionOptions& options) const {
  const int n = profile_->num_layers();
  const int k = static_cast<int>(gpu_ids.size());
  if (k == 0 || n < k) {
    return Partition{};
  }
  if (!options.search_gpu_orders || k == 1) {
    return Solve(gpu_ids, options);
  }

  SearchContext ctx;
  ctx.profile = profile_;
  ctx.cluster = cluster_;
  ctx.groups = CanonicalGroups(*cluster_, gpu_ids);
  ctx.k = k;
  ctx.n = n;
  const int num_groups = static_cast<int>(ctx.groups.size());
  const size_t width = static_cast<size_t>(std::max(1, options.beam_width));

  // ---- Beam over order prefixes. ----
  BeamState root;
  root.used.assign(static_cast<size_t>(num_groups), 0);
  root.dp.assign(static_cast<size_t>(n) + 1, kInf);
  root.dp[0] = 0.0;
  root.score = 0.0;
  std::vector<BeamState> beam = {root};
  for (int t = 0; t < k; ++t) {
    // Expansions are addressed as state * num_groups + group and computed
    // into index-owned slots, so the compacted order below equals the serial
    // nested-loop order regardless of which thread ran which slot. Sorting is
    // then total (expanded seqs within a depth are pairwise distinct, and
    // BeamLess falls back to the seq), so the surviving beam is byte-
    // identical to the serial one.
    const int64_t expansions =
        static_cast<int64_t>(beam.size()) * static_cast<int64_t>(num_groups);
    std::vector<BeamState> slots(static_cast<size_t>(expansions));
    std::vector<char> valid(static_cast<size_t>(expansions), 0);
    const auto expand_one = [&](int64_t e) {
      const BeamState& state = beam[static_cast<size_t>(e / num_groups)];
      const int g = static_cast<int>(e % num_groups);
      if (state.used[static_cast<size_t>(g)] >=
          static_cast<int>(ctx.groups[static_cast<size_t>(g)].ids.size())) {
        return;
      }
      BeamState next = state;
      next.seq.push_back(g);
      ++next.used[static_cast<size_t>(g)];
      if (t > 0) {
        // Choosing stage t's class closes stage t-1 (its backward comm —
        // the link to stage t — is now known).
        const int prev_class = t >= 2 ? state.seq[static_cast<size_t>(t) - 2] : -1;
        next.dp = CloseStage(ctx, options, state.dp, t - 1, prev_class,
                             state.seq.back(), g);
        next.score = MinOf(next.dp);
        if (next.score == kInf) {
          return;  // no feasible closing: every completion is infeasible
        }
      }
      slots[static_cast<size_t>(e)] = std::move(next);
      valid[static_cast<size_t>(e)] = 1;
    };
    if (options.pool != nullptr && t > 0 && expansions > 1) {
      options.pool->ParallelFor(expansions, expand_one);
    } else {
      for (int64_t e = 0; e < expansions; ++e) {
        expand_one(e);
      }
    }
    std::vector<BeamState> expanded;
    expanded.reserve(static_cast<size_t>(expansions));
    for (int64_t e = 0; e < expansions; ++e) {
      if (valid[static_cast<size_t>(e)] != 0) {
        expanded.push_back(std::move(slots[static_cast<size_t>(e)]));
      }
    }
    std::sort(expanded.begin(), expanded.end(), BeamLess);
    if (expanded.size() > width) {
      expanded.resize(width);
    }
    beam = std::move(expanded);
    if (beam.empty()) {
      break;
    }
  }

  // ---- Candidate orders: beam survivors plus deterministic heuristic
  // ---- seeds (the classic feasibility seed puts big memory first — the
  // ---- front of a 1F1B pipeline holds the most in-flight minibatches).
  std::vector<std::vector<int>> seqs;
  for (const BeamState& state : beam) {
    seqs.push_back(state.seq);
  }
  const auto push_sorted_seed = [&](auto less) {
    std::vector<int> by_group(static_cast<size_t>(num_groups));
    std::iota(by_group.begin(), by_group.end(), 0);
    std::stable_sort(by_group.begin(), by_group.end(), less);
    std::vector<int> seq;
    seq.reserve(static_cast<size_t>(k));
    for (int g : by_group) {
      seq.insert(seq.end(), ctx.groups[static_cast<size_t>(g)].ids.size(), g);
    }
    seqs.push_back(std::move(seq));
  };
  push_sorted_seed([&](int a, int b) {
    return hw::MemoryBytes(ctx.groups[static_cast<size_t>(a)].type) >
           hw::MemoryBytes(ctx.groups[static_cast<size_t>(b)].type);
  });
  push_sorted_seed([&](int a, int b) {
    return hw::SpecOf(ctx.groups[static_cast<size_t>(a)].type).effective_tflops >
           hw::SpecOf(ctx.groups[static_cast<size_t>(b)].type).effective_tflops;
  });

  // ---- Exact evaluation of every candidate (batched onto the pool, winner
  // ---- picked in input order), then swap local search. ----
  Partition best;
  std::vector<int> best_seq;
  {
    std::vector<std::vector<int>> orders;
    orders.reserve(seqs.size());
    for (const std::vector<int>& seq : seqs) {
      orders.push_back(RealizeOrder(ctx.groups, seq));
    }
    std::vector<Partition> results = SolveOrderBatch(
        [&](const std::vector<int>& order, double bound) {
          return SolveFixedOrder(order, options, bound);
        },
        options, kInf, orders);
    for (size_t index = 0; index < results.size(); ++index) {
      if (ImprovesPartition(results[index], best)) {
        best = std::move(results[index]);
        best_seq = seqs[index];
      }
    }
  }
  if (!best.feasible) {
    return best;
  }

  // Greedy hill climb on pairwise class swaps: all pairs while that is cheap,
  // adjacent pairs at large k. Pruned solves (bound = incumbent bottleneck)
  // keep equal-bottleneck candidates alive, so the sum-time tie-break still
  // applies; accepted swaps update the order in place. Each probe's base
  // order depends on every earlier accept — a true loop-carried dependence —
  // so this polish stays serial by design (it is a constant-factor tail of
  // the search; the bulk phases above are the ones the pool accelerates).
  const bool all_pairs = k * (k - 1) / 2 <= 300;
  for (int pass = 0; pass < 4; ++pass) {
    bool improved = false;
    for (int a = 0; a < k - 1; ++a) {
      const int b_end = all_pairs ? k : std::min(k, a + 2);
      for (int b = a + 1; b < b_end; ++b) {
        if (best_seq[static_cast<size_t>(a)] == best_seq[static_cast<size_t>(b)]) {
          continue;
        }
        std::vector<int> swapped = best_seq;
        std::swap(swapped[static_cast<size_t>(a)], swapped[static_cast<size_t>(b)]);
        Partition candidate = SolveFixedOrder(RealizeOrder(ctx.groups, swapped), options,
                                              options.prune ? best.bottleneck_time : kInf);
        if (ImprovesPartition(candidate, best)) {
          best = std::move(candidate);
          best_seq = std::move(swapped);
          improved = true;
        }
      }
    }
    if (!improved) {
      break;
    }
  }
  return best;
}

namespace {

// One rack's slice of the virtual worker during the hierarchical search.
struct RackSegment {
  int rack = -1;
  std::vector<int> ids;     // canonical ascending
  std::vector<int> order;   // current realized order of `ids`
  uint64_t memory_bytes = 0;
  double tflops = 0.0;
};

std::vector<int> ComposeOrder(const std::vector<RackSegment>& segments,
                              const std::vector<int>& rack_order) {
  std::vector<int> full;
  for (int s : rack_order) {
    const RackSegment& segment = segments[static_cast<size_t>(s)];
    full.insert(full.end(), segment.order.begin(), segment.order.end());
  }
  return full;
}

}  // namespace

Partition Partitioner::SolveHierarchical(const std::vector<int>& gpu_ids,
                                         const PartitionOptions& options) const {
  const int n = profile_->num_layers();
  const int k = static_cast<int>(gpu_ids.size());
  if (k == 0 || n < k) {
    return Partition{};
  }
  if (!options.search_gpu_orders || k == 1) {
    return Solve(gpu_ids, options);
  }

  // ---- Coarsen: one super-node per rack the virtual worker touches. ----
  std::vector<int> ids = gpu_ids;
  std::sort(ids.begin(), ids.end());
  std::vector<RackSegment> segments;
  for (int id : ids) {
    const int rack = cluster_->NodeRack(cluster_->gpu(id).node);
    RackSegment* segment = nullptr;
    for (RackSegment& existing : segments) {
      if (existing.rack == rack) {
        segment = &existing;
        break;
      }
    }
    if (segment == nullptr) {
      segments.push_back(RackSegment{rack, {}, {}, 0, 0.0});
      segment = &segments.back();
    }
    segment->ids.push_back(id);
    segment->memory_bytes += hw::MemoryBytes(cluster_->gpu(id).type);
    segment->tflops += hw::SpecOf(cluster_->gpu(id).type).effective_tflops;
  }
  std::sort(segments.begin(), segments.end(),
            [](const RackSegment& a, const RackSegment& b) { return a.rack < b.rack; });
  const int num_segments = static_cast<int>(segments.size());
  if (num_segments <= 1) {
    // Single rack (or no rack structure): nothing to coarsen.
    return SolveBeam(gpu_ids, options);
  }

  // Default within-rack order: big memory first, then fast first — the same
  // feasibility-minded heuristic the beam seeds use. Id-free tie-breaks keep
  // equal multisets on different ids order-identical.
  for (RackSegment& segment : segments) {
    segment.order = segment.ids;
    std::stable_sort(segment.order.begin(), segment.order.end(), [&](int a, int b) {
      const hw::Gpu& ga = cluster_->gpu(a);
      const hw::Gpu& gb = cluster_->gpu(b);
      const uint64_t ma = hw::MemoryBytes(ga.type);
      const uint64_t mb = hw::MemoryBytes(gb.type);
      if (ma != mb) {
        return ma > mb;
      }
      const double ta = hw::SpecOf(ga.type).effective_tflops;
      const double tb = hw::SpecOf(gb.type).effective_tflops;
      if (ta != tb) {
        return ta > tb;
      }
      if (ga.type != gb.type) {
        return static_cast<int>(ga.type) < static_cast<int>(gb.type);
      }
      return ga.node < gb.node;
    });
  }

  // ---- Coarse phase: search the rack order. Few racks are enumerated
  // ---- exhaustively; beyond that, deterministic heuristic orders plus
  // ---- adjacent-swap local search at rack granularity.
  std::vector<std::vector<int>> rack_orders;
  uint64_t permutations = 1;
  for (int s = 2; s <= num_segments && permutations <= 720; ++s) {
    permutations *= static_cast<uint64_t>(s);
  }
  if (permutations <= 720) {
    std::vector<int> perm(static_cast<size_t>(num_segments));
    std::iota(perm.begin(), perm.end(), 0);
    do {
      rack_orders.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  } else {
    std::vector<int> base(static_cast<size_t>(num_segments));
    std::iota(base.begin(), base.end(), 0);
    rack_orders.push_back(base);
    std::vector<int> by_memory = base;
    std::stable_sort(by_memory.begin(), by_memory.end(), [&](int a, int b) {
      return segments[static_cast<size_t>(a)].memory_bytes >
             segments[static_cast<size_t>(b)].memory_bytes;
    });
    rack_orders.push_back(by_memory);
    std::vector<int> by_tflops = base;
    std::stable_sort(by_tflops.begin(), by_tflops.end(), [&](int a, int b) {
      return segments[static_cast<size_t>(a)].tflops > segments[static_cast<size_t>(b)].tflops;
    });
    rack_orders.push_back(by_tflops);
  }

  Partition best;
  std::vector<int> best_rack_order;
  const auto evaluate = [&](const std::vector<int>& rack_order) {
    const double bound = options.prune && best.feasible ? best.bottleneck_time : kInf;
    Partition candidate = SolveFixedOrder(ComposeOrder(segments, rack_order), options, bound);
    if (ImprovesPartition(candidate, best)) {
      best = std::move(candidate);
      best_rack_order = rack_order;
    }
  };
  {
    // The enumerated (or heuristic) rack orders are independent candidates:
    // batch them onto the pool and pick the winner in enumeration order.
    std::vector<std::vector<int>> orders;
    orders.reserve(rack_orders.size());
    for (const std::vector<int>& rack_order : rack_orders) {
      orders.push_back(ComposeOrder(segments, rack_order));
    }
    std::vector<Partition> results = SolveOrderBatch(
        [&](const std::vector<int>& order, double bound) {
          return SolveFixedOrder(order, options, bound);
        },
        options, kInf, orders);
    for (size_t index = 0; index < results.size(); ++index) {
      if (ImprovesPartition(results[index], best)) {
        best = std::move(results[index]);
        best_rack_order = rack_orders[index];
      }
    }
  }
  if (permutations > 720 && best.feasible) {
    // Adjacent-swap polish over the rack order. Sequential accepts feed the
    // next probe's base order, so this short loop (num_segments - 1 probes
    // per pass) stays serial by design.
    for (int pass = 0; pass < 3; ++pass) {
      bool improved = false;
      for (int a = 0; a + 1 < num_segments; ++a) {
        std::vector<int> swapped = best_rack_order;
        std::swap(swapped[static_cast<size_t>(a)], swapped[static_cast<size_t>(a) + 1]);
        const Partition before = best;
        evaluate(swapped);
        improved = improved || best.bottleneck_time < before.bottleneck_time ||
                   (best.feasible && !before.feasible);
      }
      if (!improved) {
        break;
      }
    }
  }
  if (!best.feasible || best_rack_order.empty()) {
    // No rack order produced a feasible pipeline with the heuristic interior
    // orders; fall back to the flat beam, which searches interleavings the
    // rack-contiguous composition cannot express.
    return SolveBeam(gpu_ids, options);
  }

  // ---- Refine: coordinate descent across rack segments, each segment's
  // ---- interior order searched with the exact distinct-order enumerator
  // ---- (adjacent swaps when a segment alone overflows rack_order_limit).
  for (int pass = 0; pass < 2; ++pass) {
    bool improved = false;
    for (int position = 0; position < num_segments; ++position) {
      RackSegment& segment = segments[static_cast<size_t>(best_rack_order[
          static_cast<size_t>(position)])];
      const uint64_t limit =
          options.rack_order_limit < 1 ? 1 : static_cast<uint64_t>(options.rack_order_limit);
      std::vector<std::vector<int>> interior_orders;
      if (EstimateOrderCount(*cluster_, segment.ids, limit + 1) <= limit) {
        interior_orders = DistinctClassOrders(*cluster_, segment.ids);
      } else {
        for (size_t a = 0; a + 1 < segment.order.size(); ++a) {
          std::vector<int> swapped = segment.order;
          std::swap(swapped[a], swapped[a + 1]);
          interior_orders.push_back(std::move(swapped));
        }
      }
      // Within one position the interior candidates are independent (each
      // composes the full order with its own interior; only the incumbent
      // bound is shared), so the batch runs on the pool and the winner —
      // the same one the serial accept-in-place loop would end on — is
      // picked in enumeration order and installed once.
      std::vector<std::vector<int>> full_orders;
      full_orders.reserve(interior_orders.size());
      const std::vector<int> saved = segment.order;
      for (const std::vector<int>& interior : interior_orders) {
        segment.order = interior;
        full_orders.push_back(ComposeOrder(segments, best_rack_order));
      }
      segment.order = saved;
      const double bound = options.prune ? best.bottleneck_time : kInf;
      std::vector<Partition> results = SolveOrderBatch(
          [&](const std::vector<int>& order, double b) {
            return SolveFixedOrder(order, options, b);
          },
          options, bound, full_orders);
      for (size_t index = 0; index < results.size(); ++index) {
        if (ImprovesPartition(results[index], best)) {
          best = std::move(results[index]);
          segment.order = interior_orders[index];
          improved = true;
        }
      }
    }
    if (!improved) {
      break;
    }
  }
  return best;
}

}  // namespace hetpipe::partition
