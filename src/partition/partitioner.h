#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "partition/memory_model.h"

namespace hetpipe::partition {

// One pipeline stage of a solved partition.
struct StageAssignment {
  int first_layer = 0;
  int last_layer = -1;
  int gpu_id = -1;  // physical GPU executing this stage
  hw::GpuType gpu_type = hw::GpuType::kTitanV;
  int node = -1;

  double fwd_compute_s = 0.0;  // per minibatch
  double bwd_compute_s = 0.0;
  double fwd_comm_in_s = 0.0;  // receive activations from the previous stage
  double bwd_comm_in_s = 0.0;  // receive gradients from the next stage
  uint64_t param_bytes = 0;    // weights owned by this stage (synced with the PS)
  uint64_t memory_bytes = 0;
  uint64_t memory_cap = 0;

  // Stage execution time used by the min-max objective (§4: compute plus the
  // communication needed to receive its inputs).
  double TotalTime() const {
    return fwd_compute_s + bwd_compute_s + fwd_comm_in_s + bwd_comm_in_s;
  }
};

// A solved model partition for one virtual worker.
struct Partition {
  bool feasible = false;
  std::vector<StageAssignment> stages;
  double bottleneck_time = 0.0;  // max over stages of TotalTime()
  double sum_time = 0.0;         // sum over stages (the Nm=1 round-trip basis)

  int num_stages() const { return static_cast<int>(stages.size()); }
  std::string ToString(const model::ModelProfile& profile) const;
};

struct PartitionOptions {
  int nm = 1;  // concurrent minibatches the partition must support
  // If true, try every distinct assignment of the virtual worker's GPUs to
  // stage positions and keep the best feasible solution; heterogeneous VWs
  // care because memory demand falls toward the back of the pipeline while
  // the first stage needs the most.
  bool search_gpu_orders = true;
  StageMemoryParams mem_params;
};

// Min-max partitioner (§7): splits the layer chain into k contiguous stages,
// one per GPU of a virtual worker, minimizing the maximum per-stage
// execution time (compute + input communication) subject to each stage
// fitting its GPU's memory with Nm concurrent minibatches. The paper solves
// this with CPLEX; this implementation solves the identical objective exactly
// by dynamic programming over (layer, stage) plus a search over GPU orders.
class Partitioner {
 public:
  Partitioner(const model::ModelProfile& profile, const hw::Cluster& cluster);

  // Solves for the virtual worker owning `gpu_ids` (k = gpu_ids.size()).
  Partition Solve(const std::vector<int>& gpu_ids, const PartitionOptions& options) const;

  // Largest nm in [1, nm_cap] for which a feasible partition exists
  // (Maxm of §4); returns 0 if even nm=1 is infeasible.
  int FindMaxNm(const std::vector<int>& gpu_ids, int nm_cap,
                PartitionOptions options = {}) const;

 private:
  // Solves with a fixed stage->GPU assignment (gpu_ids[i] runs stage i).
  Partition SolveFixedOrder(const std::vector<int>& gpu_ids,
                            const PartitionOptions& options) const;

  const model::ModelProfile* profile_;
  const hw::Cluster* cluster_;
};

}  // namespace hetpipe::partition
