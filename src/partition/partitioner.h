#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "partition/memory_model.h"

namespace hetpipe::runner {
class ThreadPool;
}  // namespace hetpipe::runner

namespace hetpipe::partition {

// One pipeline stage of a solved partition.
struct StageAssignment {
  int first_layer = 0;
  int last_layer = -1;
  int gpu_id = -1;  // physical GPU executing this stage
  hw::GpuType gpu_type = hw::GpuType::kTitanV;
  int node = -1;

  double fwd_compute_s = 0.0;  // per minibatch
  double bwd_compute_s = 0.0;
  double fwd_comm_in_s = 0.0;  // receive activations from the previous stage
  double bwd_comm_in_s = 0.0;  // receive gradients from the next stage
  uint64_t param_bytes = 0;    // weights owned by this stage (synced with the PS)
  uint64_t memory_bytes = 0;
  uint64_t memory_cap = 0;

  // Stage execution time used by the min-max objective (§4: compute plus the
  // communication needed to receive its inputs).
  double TotalTime() const {
    return fwd_compute_s + bwd_compute_s + fwd_comm_in_s + bwd_comm_in_s;
  }
};

// A solved model partition for one virtual worker.
struct Partition {
  bool feasible = false;
  std::vector<StageAssignment> stages;
  double bottleneck_time = 0.0;  // max over stages of TotalTime()
  double sum_time = 0.0;         // sum over stages (the Nm=1 round-trip basis)

  int num_stages() const { return static_cast<int>(stages.size()); }
  std::string ToString(const model::ModelProfile& profile) const;
};

struct PartitionOptions {
  int nm = 1;  // concurrent minibatches the partition must support
  // If true, try every distinct assignment of the virtual worker's GPUs to
  // stage positions and keep the best feasible solution; heterogeneous VWs
  // care because memory demand falls toward the back of the pipeline while
  // the first stage needs the most.
  bool search_gpu_orders = true;
  // Branch-and-bound across the order search: abandon a GPU order once its
  // partial bottleneck strictly exceeds the best complete solution found so
  // far. Only strictly-worse states are cut, so the solution (including
  // sum-time tie-breaks) is identical with pruning on or off.
  bool prune = true;
  // When set, the GPU-order enumeration is solved in parallel on this pool;
  // results are reduced in enumeration order, so the answer is byte-identical
  // to the serial search. Nested calls from inside a pool task degrade to
  // serial automatically (ThreadPool::ParallelFor is nesting-safe).
  runner::ThreadPool* pool = nullptr;
  StageMemoryParams mem_params;
};

// Min-max partitioner (§7): splits the layer chain into k contiguous stages,
// one per GPU of a virtual worker, minimizing the maximum per-stage
// execution time (compute + input communication) subject to each stage
// fitting its GPU's memory with Nm concurrent minibatches. The paper solves
// this with CPLEX; this implementation solves the identical objective exactly
// by dynamic programming over (layer, stage) plus a branch-and-bound search
// over GPU orders.
//
// The hot path is O(k n^2) with O(1) inner-loop work: stage times and stage
// memory come from the profile/graph cumulative tables, per-boundary transfer
// times are precomputed once per GPU order, and the DP runs on flat
// thread-local scratch reused across solves (no per-solve allocation after
// warmup). The GPU-order search enumerates the distinct (type, node) multiset
// permutations directly — no factorial next_permutation scan, no string
// signatures — in exactly the order the old dedup scan produced them, so
// results (including exact ties) are bit-identical to SolveReference.
class Partitioner {
 public:
  Partitioner(const model::ModelProfile& profile, const hw::Cluster& cluster);

  // Solves for the virtual worker owning `gpu_ids` (k = gpu_ids.size()).
  Partition Solve(const std::vector<int>& gpu_ids, const PartitionOptions& options) const;

  // The pre-optimization implementation (naive O(stage-length) cost sums,
  // vector-of-vector DP, factorial order scan with string-signature dedup),
  // retained as the equivalence oracle for tests and the speed baseline for
  // bench/partitioner_speed. Returns a bit-identical Partition to Solve.
  Partition SolveReference(const std::vector<int>& gpu_ids,
                           const PartitionOptions& options) const;

  // Largest nm in [1, nm_cap] for which a feasible partition exists
  // (Maxm of §4); returns 0 if even nm=1 is infeasible.
  int FindMaxNm(const std::vector<int>& gpu_ids, int nm_cap,
                PartitionOptions options = {}) const;

  const model::ModelProfile& profile() const { return *profile_; }
  const hw::Cluster& cluster() const { return *cluster_; }

 private:
  // Solves with a fixed stage->GPU assignment (gpu_ids[i] runs stage i).
  // DP states whose bottleneck strictly exceeds `prune_above` are abandoned;
  // a pruned search reports infeasible, which callers must treat as "no
  // solution better than the incumbent".
  Partition SolveFixedOrder(const std::vector<int>& gpu_ids, const PartitionOptions& options,
                            double prune_above) const;
  // The original SolveFixedOrder, kept verbatim for SolveReference.
  Partition SolveFixedOrderReference(const std::vector<int>& gpu_ids,
                                     const PartitionOptions& options, double prune_above) const;

  const model::ModelProfile* profile_;
  const hw::Cluster* cluster_;
};

// Number of times the calling thread's reusable partitioner scratch had to
// grow a buffer. After one solve of the largest (k, n) a thread will see, the
// count stays flat across further solves — the no-allocation property
// bench/partitioner_speed and the tests pin.
int64_t DpScratchGrowCount();

// Builds the partition with prescribed stage boundaries: stage q covers
// layers (stage_lasts[q-1], stage_lasts[q]] on gpu_ids[q]. No optimization;
// `feasible` reports whether every stage fits its GPU's memory at `nm`.
// Used by the naive-baseline ablations and by tools that want to inspect a
// hand-chosen split.
Partition BuildFixedPartition(const model::ModelProfile& profile, const hw::Cluster& cluster,
                              const std::vector<int>& gpu_ids,
                              const std::vector<int>& stage_lasts, int nm,
                              const StageMemoryParams& mem_params = {});

// The Maxm probe of §4 shared by Partitioner::FindMaxNm and the partition
// cache: largest nm in [1, nm_cap] for which `solve` (called with `options`
// at that nm) is feasible; 0 if even nm=1 is not. Feasibility is monotone
// non-increasing in nm (stage memory grows with nm through InFlightAtStage),
// so this binary-searches the boundary in O(log nm_cap) solves instead of
// scanning nm_cap -> 1; the returned nm is identical to the linear scan's.
int FindMaxNmWith(const std::function<Partition(const PartitionOptions&)>& solve, int nm_cap,
                  PartitionOptions options);

// Stage boundaries of the naive baselines the ablation compares against.
enum class NaiveSplit {
  kEqualLayers,    // the same number of layers per stage
  kParamBalanced,  // roughly equal parameter bytes per stage
};
std::vector<int> NaiveStageLasts(const model::ModelGraph& graph, int k, NaiveSplit kind);

}  // namespace hetpipe::partition
