#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "partition/memory_model.h"

namespace hetpipe::runner {
class ThreadPool;
}  // namespace hetpipe::runner

namespace hetpipe::partition {

// One pipeline stage of a solved partition.
struct StageAssignment {
  int first_layer = 0;
  int last_layer = -1;
  int gpu_id = -1;  // physical GPU executing this stage
  hw::GpuType gpu_type = hw::GpuType::kTitanV;
  int node = -1;

  double fwd_compute_s = 0.0;  // per minibatch
  double bwd_compute_s = 0.0;
  double fwd_comm_in_s = 0.0;  // receive activations from the previous stage
  double bwd_comm_in_s = 0.0;  // receive gradients from the next stage
  uint64_t param_bytes = 0;    // weights owned by this stage (synced with the PS)
  uint64_t memory_bytes = 0;
  uint64_t memory_cap = 0;

  // Stage execution time used by the min-max objective (§4: compute plus the
  // communication needed to receive its inputs).
  double TotalTime() const {
    return fwd_compute_s + bwd_compute_s + fwd_comm_in_s + bwd_comm_in_s;
  }
};

// A solved model partition for one virtual worker.
struct Partition {
  bool feasible = false;
  std::vector<StageAssignment> stages;
  double bottleneck_time = 0.0;  // max over stages of TotalTime()
  double sum_time = 0.0;         // sum over stages (the Nm=1 round-trip basis)

  int num_stages() const { return static_cast<int>(stages.size()); }
  std::string ToString(const model::ModelProfile& profile) const;
};

// How SolveScalable searches the space of (type, node) stage orders. The
// exact enumeration is optimal but its distinct-order count is a multinomial
// that explodes once a virtual worker spans many distinct nodes (16 GPUs on
// 16 nodes is already 16! orders); the scalable strategies trade optimality
// guarantees for polynomial search cost. See docs/architecture.md
// ("Partition search strategies").
enum class SearchStrategy {
  kAuto,          // pick by search-space size (exact whenever it is tractable)
  kExact,         // every distinct (type, node) order: Partitioner::Solve
  kBeam,          // beam over order prefixes + swap local search
  kHierarchical,  // rack-level coarse order, then within-rack refinement
};
const char* SearchStrategyName(SearchStrategy strategy);

// Inverse of SearchStrategyName: decodes "auto" / "exact" / "beam" /
// "hierarchical" into *out and returns true; returns false (leaving *out
// untouched) on anything else. The serve protocol and CLI flags parse
// strategy tokens through this one mapping.
bool ParseSearchStrategy(const std::string& name, SearchStrategy* out);

struct PartitionOptions {
  int nm = 1;  // concurrent minibatches the partition must support
  // If true, try every distinct assignment of the virtual worker's GPUs to
  // stage positions and keep the best feasible solution; heterogeneous VWs
  // care because memory demand falls toward the back of the pipeline while
  // the first stage needs the most.
  bool search_gpu_orders = true;
  // Branch-and-bound across the order search: abandon a GPU order once its
  // partial bottleneck strictly exceeds the best complete solution found so
  // far. Only strictly-worse states are cut, so the solution (including
  // sum-time tie-breaks) is identical with pruning on or off.
  bool prune = true;
  // When set, the GPU-order enumeration is solved in parallel on this pool;
  // results are reduced in enumeration order, so the answer is byte-identical
  // to the serial search. Nested calls from inside a pool task degrade to
  // serial automatically (ThreadPool::ParallelFor is nesting-safe).
  runner::ThreadPool* pool = nullptr;
  StageMemoryParams mem_params;

  // ---- SolveScalable knobs (ignored by plain Solve/SolveReference). ----
  // kAuto picks exact whenever the distinct-order estimate fits under
  // exact_order_limit, so every paper-scale solve stays bit-identical to
  // Solve; an explicit strategy is honored whenever there is an order search
  // to run (with search_gpu_orders off the given order IS the stage order,
  // so everything resolves to the exact fixed-order DP).
  SearchStrategy strategy = SearchStrategy::kAuto;
  // Largest distinct (type, node) order count the auto selector still solves
  // exactly. The default is far above every paper/mixed grid in this repo
  // (those peak at a few thousand orders) but well below the multinomials a
  // many-node virtual worker produces.
  int64_t exact_order_limit = 10000;
  // Beam width of the prefix beam search (kBeam and the hierarchical coarse
  // phase when racks overflow exact enumeration).
  int beam_width = 8;
  // Within-rack refinement enumerates a rack segment's distinct orders
  // exactly up to this count; beyond it the segment falls back to adjacent
  // swap local search.
  int64_t rack_order_limit = 720;
};

// Min-max partitioner (§7): splits the layer chain into k contiguous stages,
// one per GPU of a virtual worker, minimizing the maximum per-stage
// execution time (compute + input communication) subject to each stage
// fitting its GPU's memory with Nm concurrent minibatches. The paper solves
// this with CPLEX; this implementation solves the identical objective exactly
// by dynamic programming over (layer, stage) plus a branch-and-bound search
// over GPU orders.
//
// The hot path is O(k n^2) with O(1) inner-loop work: stage times and stage
// memory come from the profile/graph cumulative tables, per-boundary transfer
// times are precomputed once per GPU order, and the DP runs on flat
// thread-local scratch reused across solves (no per-solve allocation after
// warmup). The GPU-order search enumerates the distinct (type, node) multiset
// permutations directly — no factorial next_permutation scan, no string
// signatures — in exactly the order the old dedup scan produced them, so
// results (including exact ties) are bit-identical to SolveReference.
class Partitioner {
 public:
  Partitioner(const model::ModelProfile& profile, const hw::Cluster& cluster);

  // Solves for the virtual worker owning `gpu_ids` (k = gpu_ids.size()).
  Partition Solve(const std::vector<int>& gpu_ids, const PartitionOptions& options) const;

  // The pre-optimization implementation (naive O(stage-length) cost sums,
  // vector-of-vector DP, factorial order scan with string-signature dedup),
  // retained as the equivalence oracle for tests and the speed baseline for
  // bench/partitioner_speed. Returns a bit-identical Partition to Solve.
  Partition SolveReference(const std::vector<int>& gpu_ids,
                           const PartitionOptions& options) const;

  // Largest nm in [1, nm_cap] for which a feasible partition exists
  // (Maxm of §4); returns 0 if even nm=1 is infeasible.
  int FindMaxNm(const std::vector<int>& gpu_ids, int nm_cap,
                PartitionOptions options = {}) const;

  // ---- The scalable search tier (src/partition/search.cc). ----

  // Strategy-dispatched solve: resolves options.strategy (kAuto goes through
  // ResolveSearchStrategy) and runs the exact, beam, or hierarchical search.
  // On the exact path this IS Solve — bit-identical results, including ties —
  // so paper-scale callers can switch to SolveScalable without any drift.
  // The approximate paths return a valid feasible partition (built by the
  // same BuildFixedPartition machinery, so TimeOf/stage fields mean the same
  // thing) whose bottleneck is >= the exact optimum; they search only a
  // polynomial slice of the order space.
  Partition SolveScalable(const std::vector<int>& gpu_ids,
                          const PartitionOptions& options) const;

  // Beam search over (type, node) order prefixes: states carry the exact DP
  // row of their closed stages, extend one class at a time, and the top
  // options.beam_width states per depth survive; the surviving complete
  // orders are then polished by deterministic pairwise-swap local search.
  // Deterministic, and invariant under permutations of `gpu_ids` with equal
  // (type, node) multisets (ids are canonicalized first).
  Partition SolveBeam(const std::vector<int>& gpu_ids, const PartitionOptions& options) const;

  // Hierarchical search over the PR-5 rack topology: coarsen the virtual
  // worker to its racks, search the rack order (exhaustively for few racks,
  // beam otherwise), then refine each rack's internal order with the exact
  // distinct-order enumerator (coordinate descent across racks). Virtual
  // workers inside a single rack degrade to SolveBeam.
  Partition SolveHierarchical(const std::vector<int>& gpu_ids,
                              const PartitionOptions& options) const;

  const model::ModelProfile& profile() const { return *profile_; }
  const hw::Cluster& cluster() const { return *cluster_; }

 private:
  // Solves with a fixed stage->GPU assignment (gpu_ids[i] runs stage i).
  // DP states whose bottleneck strictly exceeds `prune_above` are abandoned;
  // a pruned search reports infeasible, which callers must treat as "no
  // solution better than the incumbent".
  Partition SolveFixedOrder(const std::vector<int>& gpu_ids, const PartitionOptions& options,
                            double prune_above) const;
  // The original SolveFixedOrder, kept verbatim for SolveReference.
  Partition SolveFixedOrderReference(const std::vector<int>& gpu_ids,
                                     const PartitionOptions& options, double prune_above) const;

  const model::ModelProfile* profile_;
  const hw::Cluster* cluster_;
};

// Number of times the calling thread's reusable partitioner scratch had to
// grow a buffer. After one solve of the largest (k, n) a thread will see, the
// count stays flat across further solves — the no-allocation property
// bench/partitioner_speed and the tests pin.
int64_t DpScratchGrowCount();

// Builds the partition with prescribed stage boundaries: stage q covers
// layers (stage_lasts[q-1], stage_lasts[q]] on gpu_ids[q]. No optimization;
// `feasible` reports whether every stage fits its GPU's memory at `nm`.
// Used by the naive-baseline ablations and by tools that want to inspect a
// hand-chosen split.
Partition BuildFixedPartition(const model::ModelProfile& profile, const hw::Cluster& cluster,
                              const std::vector<int>& gpu_ids,
                              const std::vector<int>& stage_lasts, int nm,
                              const StageMemoryParams& mem_params = {});

// The Maxm probe of §4 shared by Partitioner::FindMaxNm and the partition
// cache: largest nm in [1, nm_cap] for which `solve` (called with `options`
// at that nm) is feasible; 0 if even nm=1 is not. Feasibility is monotone
// non-increasing in nm (stage memory grows with nm through InFlightAtStage),
// so this binary-searches the boundary in O(log nm_cap) solves instead of
// scanning nm_cap -> 1; the returned nm is identical to the linear scan's.
int FindMaxNmWith(const std::function<Partition(const PartitionOptions&)>& solve, int nm_cap,
                  PartitionOptions options);

// True when `candidate` improves on `best` under the min-max objective with
// the sum-time tie-break. Matches the exact search's "first wins" rule when
// candidates are visited in enumeration order; the scalable searches use the
// same rule so their reductions agree with Solve's.
bool ImprovesPartition(const Partition& candidate, const Partition& best);

// Number of distinct (type, node) orderings of the virtual worker's GPUs —
// the exact search's work, a multinomial k! / prod(class_count!). Saturates
// at `cap` (so thousand-node multisets never overflow); cap must be >= 1.
uint64_t EstimateOrderCount(const hw::Cluster& cluster, const std::vector<int>& gpu_ids,
                            uint64_t cap);

// The strategy SolveScalable (and the partition cache's key derivation) uses
// for this input: an explicit options.strategy wins; kAuto picks kExact when
// EstimateOrderCount fits under options.exact_order_limit (or the order
// search is off — a fixed order has nothing to search), else kHierarchical
// when the virtual worker spans more than one rack, else kBeam. Never
// returns kAuto.
SearchStrategy ResolveSearchStrategy(const hw::Cluster& cluster,
                                     const std::vector<int>& gpu_ids,
                                     const PartitionOptions& options);

// The distinct (type, node) orderings of `ids`, each realized by its minimal
// ascending-id representative, in the first-occurrence order of the
// reference factorial scan (see the implementation note in partitioner.cc).
// This is the exact enumerator Solve searches; the hierarchical refinement
// reuses it per rack segment.
std::vector<std::vector<int>> DistinctClassOrders(const hw::Cluster& cluster,
                                                  std::vector<int> ids);

// Stage boundaries of the naive baselines the ablation compares against.
enum class NaiveSplit {
  kEqualLayers,    // the same number of layers per stage
  kParamBalanced,  // roughly equal parameter bytes per stage
};
std::vector<int> NaiveStageLasts(const model::ModelGraph& graph, int k, NaiveSplit kind);

}  // namespace hetpipe::partition
