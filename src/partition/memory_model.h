#pragma once

#include <cstdint>

#include "hw/gpu_spec.h"
#include "model/profiler.h"

namespace hetpipe::partition {

// Maximum number of minibatches simultaneously resident at stage
// `stage_index` (0-based) of a `num_stages`-deep pipeline running `nm`
// concurrent minibatches. In 1F1B steady state a minibatch occupies stage q
// from its forward pass until its backward pass returns, i.e. for
// 2*(k - q) + 1 stage slots; the pipeline never holds more than nm.
// Matches Fig. 1 of the paper: the first stage holds all Nm=4 minibatches,
// the last stage exactly one.
int InFlightAtStage(int stage_index, int num_stages, int nm);

// Knobs of the stage memory estimate.
struct StageMemoryParams {
  // Weights + gradient buffer + SGD momentum.
  double optimizer_multiplier = 3.0;
  // Weight stashing (§4): the weight version w_p used by minibatch p is kept
  // until p's backward pass, one extra copy per in-flight minibatch.
  bool stash_weights = true;
  // CUDA context, cuDNN workspaces, allocator slack.
  uint64_t framework_overhead_bytes = 500ULL << 20;
};

// The stage memory formula on already-summed inputs: optimizer state over the
// stage's parameters, one stashed weight copy per in-flight minibatch, the
// stashed activations of every in-flight minibatch, and framework overhead.
// This is THE one copy of the arithmetic — StageMemoryBytes sums the ranges
// and calls it, and the partitioner's DP inner loop calls it directly on
// prefix-sum differences with the in-flight count hoisted, so the two can
// never drift apart.
inline uint64_t StageMemoryBytesFromSums(uint64_t param_bytes, uint64_t stash_per_image,
                                         uint64_t batch_size, uint64_t in_flight,
                                         const StageMemoryParams& params) {
  uint64_t total = static_cast<uint64_t>(
      static_cast<double>(param_bytes) * params.optimizer_multiplier);
  if (params.stash_weights) {
    total += param_bytes * in_flight;
  }
  total += stash_per_image * batch_size * in_flight;
  total += params.framework_overhead_bytes;
  return total;
}

// Bytes of GPU memory needed to run layers [first, last] as stage
// `stage_index` of `num_stages` with `nm` concurrent minibatches.
uint64_t StageMemoryBytes(const model::ModelProfile& profile, int first, int last,
                          int stage_index, int num_stages, int nm,
                          const StageMemoryParams& params = {});

// Memory needed by a plain data-parallel worker (whole model, one minibatch,
// no weight stashing). Used to decide Horovod feasibility: ResNet-152 at
// batch 32 exceeds the 6 GiB RTX 2060, so Horovod can only use 12 GPUs (§8.3).
uint64_t SingleWorkerMemoryBytes(const model::ModelProfile& profile,
                                 const StageMemoryParams& params = {});

// True if a plain DP worker for this model fits in `gpu`'s memory.
bool FitsOnSingleGpu(const model::ModelProfile& profile, hw::GpuType gpu,
                     const StageMemoryParams& params = {});

}  // namespace hetpipe::partition
