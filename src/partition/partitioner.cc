#include "partition/partitioner.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <mutex>
#include <set>
#include <utility>

#include "runner/thread_pool.h"

namespace hetpipe::partition {

bool ImprovesPartition(const Partition& candidate, const Partition& best) {
  if (!candidate.feasible) {
    return false;
  }
  return !best.feasible || candidate.bottleneck_time < best.bottleneck_time ||
         (candidate.bottleneck_time == best.bottleneck_time &&
          candidate.sum_time < best.sum_time);
}

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// Shorthand for the shared first-wins improvement rule declared in the
// header; the searches below visit candidates in enumeration order.
bool Improves(const Partition& candidate, const Partition& best) {
  return ImprovesPartition(candidate, best);
}

// Flat scratch buffers for SolveFixedOrder, one set per thread (the GPU-order
// search runs SolveFixedOrder concurrently on pool workers). Buffers only
// ever grow, so after the first solve of the largest (k, n) shape a thread
// sees, repeated solves allocate nothing.
struct DpScratch {
  std::vector<double> dp;          // (k+1) x (n+1), row-major
  std::vector<int> choice;         // (k+1) x (n+1), row-major
  std::vector<double> xfer;        // (k-1) x (n-1): boundary transfer seconds
  std::vector<double> fwd_xfer;    // n: per-row shifted fwd-comm terms (SoA)
  std::vector<double> vals;        // n: masked candidate bottlenecks (SoA)
  std::vector<hw::GpuType> types;  // k
  std::vector<uint64_t> mem_caps;  // k
  std::vector<int> lasts;          // k
  int64_t grows = 0;

  template <typename T>
  T* Ensure(std::vector<T>& v, size_t need) {
    if (v.size() < need) {
      if (v.capacity() < need) {
        ++grows;
      }
      v.resize(need);
    }
    return v.data();
  }
};

DpScratch& LocalScratch() {
  static thread_local DpScratch scratch;
  return scratch;
}

// Appends the distinct (type, node) orderings of `ids` (sorted ascending) to
// `orders`, each realized by its minimal GPU-id representative (every class's
// ids appear in ascending order), in lexicographic order of those
// representatives. That is exactly the sequence the old factorial
// next_permutation + string-signature dedup scan produced — the first
// permutation reaching a signature is its minimal representative, and first
// occurrences appear in representative order — so downstream "first wins"
// tie-breaks are unchanged. Cost is O(#distinct-orders * k^2) instead of
// O(k! * k): with repeated GPU classes (homogeneous and mixed-node VWs, the
// common case) the distinct count is the multinomial, not the factorial.
struct ClassGroup {
  hw::GpuType type;
  int node;
  std::vector<int> ids;  // ascending
  size_t used = 0;
};

void EmitClassOrders(std::vector<ClassGroup>& groups, std::vector<int>& current, size_t k,
                     std::vector<std::vector<int>>& orders) {
  if (current.size() == k) {
    orders.push_back(current);
    return;
  }
  // Candidates: the next unused id of each class, tried in ascending id
  // order, which yields representatives lexicographically.
  std::vector<std::pair<int, size_t>> candidates;
  candidates.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].used < groups[g].ids.size()) {
      candidates.emplace_back(groups[g].ids[groups[g].used], g);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& [id, g] : candidates) {
    ++groups[g].used;
    current.push_back(id);
    EmitClassOrders(groups, current, k, orders);
    current.pop_back();
    --groups[g].used;
  }
}

}  // namespace

std::vector<std::vector<int>> DistinctClassOrders(const hw::Cluster& cluster,
                                                  std::vector<int> ids) {
  std::sort(ids.begin(), ids.end());
  std::vector<ClassGroup> groups;
  for (int id : ids) {
    const hw::Gpu& gpu = cluster.gpu(id);
    ClassGroup* group = nullptr;
    for (ClassGroup& existing : groups) {
      if (existing.type == gpu.type && existing.node == gpu.node) {
        group = &existing;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(ClassGroup{gpu.type, gpu.node, {}, 0});
      group = &groups.back();
    }
    group->ids.push_back(id);
  }
  std::vector<std::vector<int>> orders;
  std::vector<int> current;
  current.reserve(ids.size());
  EmitClassOrders(groups, current, ids.size(), orders);
  return orders;
}

int64_t DpScratchGrowCount() { return LocalScratch().grows; }

std::string Partition::ToString(const model::ModelProfile& profile) const {
  if (!feasible) {
    return "infeasible";
  }
  std::string out;
  out.reserve(24 + stages.size() * 64);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "bottleneck %g ms:", bottleneck_time * 1e3);
  out += buf;
  for (const StageAssignment& s : stages) {
    out += " [";
    out += profile.graph().layer(s.first_layer).name;
    out += "..";
    out += profile.graph().layer(s.last_layer).name;
    out += " on ";
    out += hw::CodeOf(s.gpu_type);
    std::snprintf(buf, sizeof(buf), " %gms %lluMiB]", s.TotalTime() * 1e3,
                  static_cast<unsigned long long>(s.memory_bytes >> 20));
    out += buf;
  }
  return out;
}

Partitioner::Partitioner(const model::ModelProfile& profile, const hw::Cluster& cluster)
    : profile_(&profile), cluster_(&cluster) {}

Partition BuildFixedPartition(const model::ModelProfile& profile, const hw::Cluster& cluster,
                              const std::vector<int>& gpu_ids,
                              const std::vector<int>& stage_lasts, int nm,
                              const StageMemoryParams& mem_params) {
  Partition result;
  const int k = static_cast<int>(gpu_ids.size());
  if (k == 0 || stage_lasts.size() != gpu_ids.size() ||
      stage_lasts.back() != profile.num_layers() - 1) {
    return result;
  }

  result.feasible = true;
  int first = 0;
  for (int q = 0; q < k; ++q) {
    StageAssignment stage;
    stage.first_layer = first;
    stage.last_layer = stage_lasts[static_cast<size_t>(q)];
    if (stage.last_layer < stage.first_layer) {
      return Partition{};  // empty stage: malformed boundaries
    }
    stage.gpu_id = gpu_ids[static_cast<size_t>(q)];
    stage.gpu_type = cluster.gpu(stage.gpu_id).type;
    stage.node = cluster.gpu(stage.gpu_id).node;
    stage.fwd_compute_s =
        profile.StageFwdTime(stage.first_layer, stage.last_layer, stage.gpu_type);
    stage.bwd_compute_s =
        profile.StageBwdTime(stage.first_layer, stage.last_layer, stage.gpu_type);
    if (q > 0) {
      const auto& link = cluster.LinkBetween(gpu_ids[static_cast<size_t>(q) - 1],
                                             gpu_ids[static_cast<size_t>(q)]);
      stage.fwd_comm_in_s =
          link.TransferTime(profile.BoundaryTransferBytes(stage.first_layer - 1));
    }
    if (q < k - 1) {
      const auto& link = cluster.LinkBetween(gpu_ids[static_cast<size_t>(q)],
                                             gpu_ids[static_cast<size_t>(q) + 1]);
      stage.bwd_comm_in_s = link.TransferTime(profile.BoundaryTransferBytes(stage.last_layer));
    }
    stage.param_bytes =
        profile.graph().ParamBytesInRange(stage.first_layer, stage.last_layer);
    stage.memory_bytes = StageMemoryBytes(profile, stage.first_layer, stage.last_layer, q, k,
                                          nm, mem_params);
    stage.memory_cap = hw::MemoryBytes(stage.gpu_type);
    result.feasible = result.feasible && stage.memory_bytes <= stage.memory_cap;
    result.bottleneck_time = std::max(result.bottleneck_time, stage.TotalTime());
    result.sum_time += stage.TotalTime();
    result.stages.push_back(stage);
    first = stage.last_layer + 1;
  }
  return result;
}

std::vector<int> NaiveStageLasts(const model::ModelGraph& graph, int k, NaiveSplit kind) {
  std::vector<int> lasts;
  const int n = graph.num_layers();
  switch (kind) {
    case NaiveSplit::kEqualLayers:
      for (int q = 1; q <= k; ++q) {
        lasts.push_back(n * q / k - 1);
      }
      lasts.back() = n - 1;
      break;
    case NaiveSplit::kParamBalanced: {
      const uint64_t per_stage = graph.total_param_bytes() / static_cast<uint64_t>(k);
      uint64_t acc = 0;
      for (int i = 0; i < n; ++i) {
        acc += graph.layer(i).param_bytes;
        if (acc >= per_stage && static_cast<int>(lasts.size()) < k - 1 &&
            n - i - 1 >= k - 1 - static_cast<int>(lasts.size())) {
          lasts.push_back(i);
          acc = 0;
        }
      }
      while (static_cast<int>(lasts.size()) < k) {
        lasts.push_back(n - 1);
      }
      lasts.back() = n - 1;
      break;
    }
  }
  return lasts;
}

Partition Partitioner::SolveFixedOrder(const std::vector<int>& gpu_ids,
                                       const PartitionOptions& options,
                                       double prune_above) const {
  const int n = profile_->num_layers();
  const int k = static_cast<int>(gpu_ids.size());
  Partition result;
  if (k == 0 || n < k) {
    return result;
  }

  DpScratch& scratch = LocalScratch();
  hw::GpuType* types = scratch.Ensure(scratch.types, static_cast<size_t>(k));
  uint64_t* mem_caps = scratch.Ensure(scratch.mem_caps, static_cast<size_t>(k));
  for (int q = 0; q < k; ++q) {
    types[q] = cluster_->gpu(gpu_ids[static_cast<size_t>(q)]).type;
    // Resolved once per order: SpecOf takes the registry lock for classes
    // beyond Table 1, which the O(k n^2) DP loop must not.
    mem_caps[q] = hw::MemoryBytes(types[q]);
  }

  // Transfer seconds across each stage boundary (q -> q+1) for every layer
  // boundary b (the activation after layer b): hoists the two LinkBetween
  // lookups and the virtual TransferTime call out of the DP inner loop into
  // one O(k n) pass per order.
  const int nb = n - 1;
  double* xfer = scratch.Ensure(
      scratch.xfer, static_cast<size_t>(std::max(0, k - 1)) * static_cast<size_t>(nb));
  for (int q = 0; q + 1 < k; ++q) {
    const hw::LinkModel& link = cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q)],
                                                      gpu_ids[static_cast<size_t>(q) + 1]);
    double* row = xfer + static_cast<size_t>(q) * static_cast<size_t>(nb);
    for (int b = 0; b < nb; ++b) {
      row[b] = link.TransferTime(profile_->BoundaryTransferBytes(b));
    }
  }

  // dp[q][i]: minimal bottleneck assigning the first i layers to the first q
  // stages (all non-empty). choice[q][i]: split point achieving it. States
  // whose bottleneck strictly exceeds `prune_above` stay at infinity — any
  // completion would be strictly worse than the incumbent. Flat row-major
  // scratch reused across solves; everything the inner loop touches is a raw
  // array and every arithmetic operation happens in the same order as the
  // reference implementation, so costs, memory sums, and therefore every DP
  // decision are bit-identical to it.
  const uint64_t* param_prefix = profile_->graph().ParamPrefix();
  const uint64_t* stash_prefix = profile_->graph().StashPrefix();
  const StageMemoryParams& mem = options.mem_params;
  const uint64_t batch = static_cast<uint64_t>(profile_->batch_size());

  const size_t stride = static_cast<size_t>(n) + 1;
  const size_t cells = static_cast<size_t>(k + 1) * stride;
  double* dp = scratch.Ensure(scratch.dp, cells);
  int* choice = scratch.Ensure(scratch.choice, cells);
  std::fill(dp, dp + cells, kInf);
  std::fill(choice, choice + cells, -1);
  dp[0] = 0.0;
  for (int q = 1; q <= k; ++q) {
    const int sq = q - 1;  // stage index of the stage this DP row places
    // Stage [j, i-1] on stage sq costs fwd_cum[j][i-1] + bwd_cum[j][i-1]
    // plus the boundary transfers hoisted into xfer above, and needs
    // StageMemoryBytesFromSums(...) bytes evaluated on prefix-sum
    // differences with the per-stage in-flight count hoisted out of the
    // loops (identical operations, identical bits).
    const double* tot_cum = profile_->TotalCumByLast(types[sq]);
    const double* prev_xfer =
        sq > 0 ? xfer + static_cast<size_t>(sq - 1) * static_cast<size_t>(nb) : nullptr;
    const double* next_xfer =
        sq < k - 1 ? xfer + static_cast<size_t>(sq) * static_cast<size_t>(nb) : nullptr;
    const uint64_t in_flight =
        static_cast<uint64_t>(InFlightAtStage(sq, k, options.nm));
    const uint64_t cap = mem_caps[sq];
    const double* prev = dp + static_cast<size_t>(q - 1) * stride;
    double* cur = dp + static_cast<size_t>(q) * stride;
    int* cur_choice = choice + static_cast<size_t>(q) * stride;
    // SoA pass per row: shift the forward-comm terms so the inner loop reads
    // fwd_x[j] instead of prev_xfer[j - 1] (unit stride, no branch). The
    // first row has no incoming transfer — zeros there, and adding 0.0 to a
    // positive finite (or +inf) cost is a bit-exact identity, so the single
    // branchless expression below reproduces the reference's conditional
    // adds. Every stage cost is strictly positive (launch overheads), so the
    // -0.0 + 0.0 == +0.0 edge case cannot arise.
    double* fwd_x = scratch.Ensure(scratch.fwd_xfer, static_cast<size_t>(n));
    double* vals = scratch.Ensure(scratch.vals, static_cast<size_t>(n));
    if (prev_xfer != nullptr) {
      fwd_x[0] = 0.0;  // j == 0 is unreachable when sq > 0 (j >= q - 1 >= 1)
      for (int b = 0; b < nb; ++b) {
        fwd_x[b + 1] = prev_xfer[b];
      }
    } else {
      std::fill(fwd_x, fwd_x + n, 0.0);
    }
    for (int i = q; i <= n - (k - q); ++i) {
      const size_t last = static_cast<size_t>(i - 1);
      // Contiguous over j: entry j is fwd_cum[j][i-1] + bwd_cum[j][i-1],
      // precombined at profile build time in the same operand order.
      const double* tot_row = tot_cum + last * static_cast<size_t>(n);
      const double bwd_comm = next_xfer != nullptr ? next_xfer[last] : 0.0;
      double best = kInf;
      int best_j = -1;
      // The stage's memory demand is non-increasing in j (a later split means
      // fewer layers, and both prefix differences shrink), so feasibility is
      // monotone over j: binary-search the first memory-feasible split and
      // run the tightened loop from there with no per-j memory check. The
      // skipped j values are exactly the ones the reference loop `continue`s
      // on, so every surviving (j, cand) decision is unchanged.
      int feasible_from = i;  // i: no feasible split for this (q, i)
      {
        int lo = q - 1;
        int hi = i - 1;
        while (lo <= hi) {
          const int mid = lo + (hi - lo) / 2;
          const uint64_t need = StageMemoryBytesFromSums(
              param_prefix[i] - param_prefix[mid],  // layers [mid, i-1]
              stash_prefix[i] - stash_prefix[mid], batch, in_flight, mem);
          if (need <= cap) {
            feasible_from = mid;
            hi = mid - 1;
          } else {
            lo = mid + 1;
          }
        }
      }
      // Phase A (branchless, contiguous, auto-vectorizable): compute every
      // candidate bottleneck and mask pruned ones to +inf with a compare +
      // select. The reference's `prior == kInf` skip needs no branch here:
      // inf + anything = inf, max(inf, cost) = inf, and +inf never wins the
      // strict `<` in phase B. Its `cand > prune_above` skip becomes the
      // select (a pruned candidate is stored as +inf, which likewise cannot
      // win). The arithmetic is ((tot + fwd_x[j]) + bwd_comm) — the exact
      // association order of the reference's conditional `+=` chain — and
      // `prior < cost ? cost : prior` is std::max(prior, cost) verbatim, so
      // every surviving value is bit-identical to the scalar loop's.
      for (int j = feasible_from; j < i; ++j) {
        const double cost = (tot_row[j] + fwd_x[j]) + bwd_comm;
        const double prior = prev[j];
        const double cand = prior < cost ? cost : prior;
        vals[j] = cand <= prune_above ? cand : kInf;
      }
      // Phase B: index-min reduction over vals with four independent lanes
      // (breaks the loop-carried min dependence so the compiler can overlap
      // the compares). Within a lane indices increase, so strict `<` keeps
      // the smallest index of the lane's argmin; the final cross-lane reduce
      // is lexicographic on (value, index), which together reproduce the
      // reference's "smallest j wins ties" exactly.
      double lane_best[4] = {kInf, kInf, kInf, kInf};
      int lane_j[4] = {-1, -1, -1, -1};
      int j = feasible_from;
      for (; j + 4 <= i; j += 4) {
        for (int l = 0; l < 4; ++l) {
          if (vals[j + l] < lane_best[l]) {
            lane_best[l] = vals[j + l];
            lane_j[l] = j + l;
          }
        }
      }
      for (int l = 0; j < i; ++j, ++l) {  // remainder: still index-monotone per lane
        if (vals[j] < lane_best[l]) {
          lane_best[l] = vals[j];
          lane_j[l] = j;
        }
      }
      for (int l = 0; l < 4; ++l) {
        if (lane_best[l] < best ||
            (lane_best[l] == best && lane_j[l] != -1 && lane_j[l] < best_j)) {
          best = lane_best[l];
          best_j = lane_j[l];
        }
      }
      cur[i] = best;
      cur_choice[i] = best_j;
    }
  }

  if (dp[static_cast<size_t>(k) * stride + static_cast<size_t>(n)] == kInf) {
    return result;
  }

  // Reconstruct stage boundaries and rebuild the stages from them.
  int* lasts = scratch.Ensure(scratch.lasts, static_cast<size_t>(k));
  int i = n;
  for (int q = k; q >= 1; --q) {
    lasts[q - 1] = i - 1;
    i = choice[static_cast<size_t>(q) * stride + static_cast<size_t>(i)];
  }
  return BuildFixedPartition(*profile_, *cluster_, gpu_ids,
                             std::vector<int>(lasts, lasts + k), options.nm,
                             options.mem_params);
}

Partition Partitioner::Solve(const std::vector<int>& gpu_ids,
                             const PartitionOptions& options) const {
  if (!options.search_gpu_orders || gpu_ids.size() <= 1) {
    return SolveFixedOrder(gpu_ids, options, kInf);
  }

  // Enumerate distinct (type, node) orderings of the VW's GPUs; identical
  // class sequences produce identical solutions, so each is solved once.
  const std::vector<std::vector<int>> orders = DistinctClassOrders(*cluster_, gpu_ids);

  // Solve every order, sharing the incumbent bottleneck as a branch-and-bound
  // cut. The incumbent is only ever an upper bound on the optimum, so any
  // value observed by any thread is a valid cut; the final reduction walks
  // the orders in enumeration order, which makes the result independent of
  // thread interleaving.
  std::vector<Partition> candidates(orders.size());
  std::mutex incumbent_mu;
  double incumbent = kInf;
  const auto solve_one = [&](int64_t index) {
    double bound = kInf;
    if (options.prune) {
      std::lock_guard<std::mutex> lock(incumbent_mu);
      bound = incumbent;
    }
    Partition candidate =
        SolveFixedOrder(orders[static_cast<size_t>(index)], options, bound);
    if (candidate.feasible) {
      std::lock_guard<std::mutex> lock(incumbent_mu);
      incumbent = std::min(incumbent, candidate.bottleneck_time);
    }
    candidates[static_cast<size_t>(index)] = std::move(candidate);
  };

  if (options.pool != nullptr && orders.size() > 1) {
    options.pool->ParallelFor(static_cast<int64_t>(orders.size()), solve_one);
  } else {
    for (int64_t index = 0; index < static_cast<int64_t>(orders.size()); ++index) {
      solve_one(index);
    }
  }

  Partition best;
  for (const Partition& candidate : candidates) {
    if (Improves(candidate, best)) {
      best = candidate;
    }
  }
  return best;
}

Partition Partitioner::SolveFixedOrderReference(const std::vector<int>& gpu_ids,
                                                const PartitionOptions& options,
                                                double prune_above) const {
  const int n = profile_->num_layers();
  const int k = static_cast<int>(gpu_ids.size());
  Partition result;
  if (k == 0 || n < k) {
    return result;
  }

  std::vector<hw::GpuType> types(static_cast<size_t>(k));
  std::vector<uint64_t> mem_caps(static_cast<size_t>(k));
  for (int q = 0; q < k; ++q) {
    types[static_cast<size_t>(q)] = cluster_->gpu(gpu_ids[static_cast<size_t>(q)]).type;
    mem_caps[static_cast<size_t>(q)] = hw::MemoryBytes(types[static_cast<size_t>(q)]);
  }

  const auto stage_cost = [&](int q, int j, int i) -> double {
    double cost = profile_->StageTotalTimeNaive(j, i, types[static_cast<size_t>(q)]);
    if (q > 0) {
      const auto& link = cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q) - 1],
                                               gpu_ids[static_cast<size_t>(q)]);
      cost += link.TransferTime(profile_->BoundaryTransferBytes(j - 1));
    }
    if (q < k - 1) {
      const auto& link = cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q)],
                                               gpu_ids[static_cast<size_t>(q) + 1]);
      cost += link.TransferTime(profile_->BoundaryTransferBytes(i));
    }
    return cost;
  };

  const auto stage_fits = [&](int q, int j, int i) -> bool {
    // The pre-optimization cost: O(stage-length) range sums per DP state.
    const model::ModelGraph& graph = profile_->graph();
    const uint64_t need = StageMemoryBytesFromSums(
        graph.ParamBytesInRangeNaive(j, i), graph.StashBytesInRangeNaive(j, i),
        static_cast<uint64_t>(profile_->batch_size()),
        static_cast<uint64_t>(InFlightAtStage(q, k, options.nm)), options.mem_params);
    return need <= mem_caps[static_cast<size_t>(q)];
  };

  std::vector<std::vector<double>> dp(static_cast<size_t>(k) + 1,
                                      std::vector<double>(static_cast<size_t>(n) + 1, kInf));
  std::vector<std::vector<int>> choice(static_cast<size_t>(k) + 1,
                                       std::vector<int>(static_cast<size_t>(n) + 1, -1));
  dp[0][0] = 0.0;
  for (int q = 1; q <= k; ++q) {
    for (int i = q; i <= n - (k - q); ++i) {
      double best = kInf;
      int best_j = -1;
      for (int j = q - 1; j < i; ++j) {
        if (dp[static_cast<size_t>(q) - 1][static_cast<size_t>(j)] == kInf) {
          continue;
        }
        if (!stage_fits(q - 1, j, i - 1)) {
          continue;
        }
        const double cand = std::max(dp[static_cast<size_t>(q) - 1][static_cast<size_t>(j)],
                                     stage_cost(q - 1, j, i - 1));
        if (cand > prune_above) {
          continue;
        }
        if (cand < best) {
          best = cand;
          best_j = j;
        }
      }
      dp[static_cast<size_t>(q)][static_cast<size_t>(i)] = best;
      choice[static_cast<size_t>(q)][static_cast<size_t>(i)] = best_j;
    }
  }

  if (dp[static_cast<size_t>(k)][static_cast<size_t>(n)] == kInf) {
    return result;
  }

  std::vector<int> lasts(static_cast<size_t>(k));
  int i = n;
  for (int q = k; q >= 1; --q) {
    lasts[static_cast<size_t>(q) - 1] = i - 1;
    i = choice[static_cast<size_t>(q)][static_cast<size_t>(i)];
  }
  return BuildFixedPartition(*profile_, *cluster_, gpu_ids, lasts, options.nm,
                             options.mem_params);
}

Partition Partitioner::SolveReference(const std::vector<int>& gpu_ids,
                                      const PartitionOptions& options) const {
  if (!options.search_gpu_orders || gpu_ids.size() <= 1) {
    return SolveFixedOrderReference(gpu_ids, options, kInf);
  }

  // The pre-optimization order enumeration: scan all k! id permutations,
  // dedup by a per-candidate (type, node) string signature.
  std::vector<int> ids = gpu_ids;
  std::sort(ids.begin(), ids.end());
  std::set<std::string> seen;
  std::vector<std::vector<int>> orders;
  do {
    std::string signature;
    for (int id : ids) {
      const hw::Gpu& g = cluster_->gpu(id);
      signature += std::to_string(static_cast<int>(g.type));
      signature.push_back('@');
      signature += std::to_string(g.node);
      signature.push_back(';');
    }
    if (seen.insert(signature).second) {
      orders.push_back(ids);
    }
  } while (std::next_permutation(ids.begin(), ids.end()));

  std::vector<Partition> candidates(orders.size());
  double incumbent = kInf;
  for (size_t index = 0; index < orders.size(); ++index) {
    const double bound = options.prune ? incumbent : kInf;
    Partition candidate = SolveFixedOrderReference(orders[index], options, bound);
    if (candidate.feasible) {
      incumbent = std::min(incumbent, candidate.bottleneck_time);
    }
    candidates[index] = std::move(candidate);
  }

  Partition best;
  for (const Partition& candidate : candidates) {
    if (Improves(candidate, best)) {
      best = candidate;
    }
  }
  return best;
}

int FindMaxNmWith(const std::function<Partition(const PartitionOptions&)>& solve, int nm_cap,
                  PartitionOptions options) {
  // Feasibility is monotone non-increasing in nm: every stage's memory demand
  // grows with nm (InFlightAtStage is non-decreasing in nm), so a partition
  // feasible at nm is feasible at every smaller nm. Binary search the largest
  // feasible value — O(log nm_cap) solves instead of a nm_cap -> 1 scan, with
  // the identical answer.
  int lo = 1;
  int hi = nm_cap;
  int best = 0;
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    options.nm = mid;
    if (solve(options).feasible) {
      best = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return best;
}

int Partitioner::FindMaxNm(const std::vector<int>& gpu_ids, int nm_cap,
                           PartitionOptions options) const {
  return FindMaxNmWith(
      [&](const PartitionOptions& at_nm) { return Solve(gpu_ids, at_nm); }, nm_cap, options);
}

}  // namespace hetpipe::partition
