#include "partition/partitioner.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>

#include "runner/thread_pool.h"

namespace hetpipe::partition {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// True when `candidate` improves on `best` under the min-max objective with
// the sum-time tie-break. Matches the serial search's "first wins" rule when
// candidates are visited in enumeration order.
bool Improves(const Partition& candidate, const Partition& best) {
  if (!candidate.feasible) {
    return false;
  }
  return !best.feasible || candidate.bottleneck_time < best.bottleneck_time ||
         (candidate.bottleneck_time == best.bottleneck_time &&
          candidate.sum_time < best.sum_time);
}

}  // namespace

std::string Partition::ToString(const model::ModelProfile& profile) const {
  std::ostringstream os;
  if (!feasible) {
    os << "infeasible";
    return os.str();
  }
  os << "bottleneck " << bottleneck_time * 1e3 << " ms:";
  for (const StageAssignment& s : stages) {
    os << " [" << profile.graph().layer(s.first_layer).name << ".."
       << profile.graph().layer(s.last_layer).name << " on " << hw::CodeOf(s.gpu_type)
       << " " << s.TotalTime() * 1e3 << "ms " << (s.memory_bytes >> 20) << "MiB]";
  }
  return os.str();
}

Partitioner::Partitioner(const model::ModelProfile& profile, const hw::Cluster& cluster)
    : profile_(&profile), cluster_(&cluster) {}

Partition BuildFixedPartition(const model::ModelProfile& profile, const hw::Cluster& cluster,
                              const std::vector<int>& gpu_ids,
                              const std::vector<int>& stage_lasts, int nm,
                              const StageMemoryParams& mem_params) {
  Partition result;
  const int k = static_cast<int>(gpu_ids.size());
  if (k == 0 || stage_lasts.size() != gpu_ids.size() ||
      stage_lasts.back() != profile.num_layers() - 1) {
    return result;
  }

  result.feasible = true;
  int first = 0;
  for (int q = 0; q < k; ++q) {
    StageAssignment stage;
    stage.first_layer = first;
    stage.last_layer = stage_lasts[static_cast<size_t>(q)];
    if (stage.last_layer < stage.first_layer) {
      return Partition{};  // empty stage: malformed boundaries
    }
    stage.gpu_id = gpu_ids[static_cast<size_t>(q)];
    stage.gpu_type = cluster.gpu(stage.gpu_id).type;
    stage.node = cluster.gpu(stage.gpu_id).node;
    stage.fwd_compute_s =
        profile.StageFwdTime(stage.first_layer, stage.last_layer, stage.gpu_type);
    stage.bwd_compute_s =
        profile.StageBwdTime(stage.first_layer, stage.last_layer, stage.gpu_type);
    if (q > 0) {
      const auto& link = cluster.LinkBetween(gpu_ids[static_cast<size_t>(q) - 1],
                                             gpu_ids[static_cast<size_t>(q)]);
      stage.fwd_comm_in_s =
          link.TransferTime(profile.BoundaryTransferBytes(stage.first_layer - 1));
    }
    if (q < k - 1) {
      const auto& link = cluster.LinkBetween(gpu_ids[static_cast<size_t>(q)],
                                             gpu_ids[static_cast<size_t>(q) + 1]);
      stage.bwd_comm_in_s = link.TransferTime(profile.BoundaryTransferBytes(stage.last_layer));
    }
    stage.param_bytes =
        profile.graph().ParamBytesInRange(stage.first_layer, stage.last_layer);
    stage.memory_bytes = StageMemoryBytes(profile, stage.first_layer, stage.last_layer, q, k,
                                          nm, mem_params);
    stage.memory_cap = hw::MemoryBytes(stage.gpu_type);
    result.feasible = result.feasible && stage.memory_bytes <= stage.memory_cap;
    result.bottleneck_time = std::max(result.bottleneck_time, stage.TotalTime());
    result.sum_time += stage.TotalTime();
    result.stages.push_back(stage);
    first = stage.last_layer + 1;
  }
  return result;
}

std::vector<int> NaiveStageLasts(const model::ModelGraph& graph, int k, NaiveSplit kind) {
  std::vector<int> lasts;
  const int n = graph.num_layers();
  switch (kind) {
    case NaiveSplit::kEqualLayers:
      for (int q = 1; q <= k; ++q) {
        lasts.push_back(n * q / k - 1);
      }
      lasts.back() = n - 1;
      break;
    case NaiveSplit::kParamBalanced: {
      const uint64_t per_stage = graph.total_param_bytes() / static_cast<uint64_t>(k);
      uint64_t acc = 0;
      for (int i = 0; i < n; ++i) {
        acc += graph.layer(i).param_bytes;
        if (acc >= per_stage && static_cast<int>(lasts.size()) < k - 1 &&
            n - i - 1 >= k - 1 - static_cast<int>(lasts.size())) {
          lasts.push_back(i);
          acc = 0;
        }
      }
      while (static_cast<int>(lasts.size()) < k) {
        lasts.push_back(n - 1);
      }
      lasts.back() = n - 1;
      break;
    }
  }
  return lasts;
}

Partition Partitioner::SolveFixedOrder(const std::vector<int>& gpu_ids,
                                       const PartitionOptions& options,
                                       double prune_above) const {
  const int n = profile_->num_layers();
  const int k = static_cast<int>(gpu_ids.size());
  Partition result;
  if (k == 0 || n < k) {
    return result;
  }

  std::vector<hw::GpuType> types(static_cast<size_t>(k));
  std::vector<uint64_t> mem_caps(static_cast<size_t>(k));
  for (int q = 0; q < k; ++q) {
    types[static_cast<size_t>(q)] = cluster_->gpu(gpu_ids[static_cast<size_t>(q)]).type;
    // Resolved once per order: SpecOf takes the registry lock for classes
    // beyond Table 1, which the O(n^2 k) DP loop must not.
    mem_caps[static_cast<size_t>(q)] = hw::MemoryBytes(types[static_cast<size_t>(q)]);
  }

  // Per-stage cost of covering layers [j, i] (inclusive), including the
  // communication to receive forward activations and backward gradients.
  const auto stage_cost = [&](int q, int j, int i) -> double {
    double cost = profile_->StageTotalTime(j, i, types[static_cast<size_t>(q)]);
    if (q > 0) {
      const auto& link =
          cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q) - 1], gpu_ids[static_cast<size_t>(q)]);
      cost += link.TransferTime(profile_->BoundaryTransferBytes(j - 1));
    }
    if (q < k - 1) {
      const auto& link =
          cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q)], gpu_ids[static_cast<size_t>(q) + 1]);
      cost += link.TransferTime(profile_->BoundaryTransferBytes(i));
    }
    return cost;
  };

  const auto stage_fits = [&](int q, int j, int i) -> bool {
    const uint64_t need = StageMemoryBytes(*profile_, j, i, q, k, options.nm,
                                           options.mem_params);
    return need <= mem_caps[static_cast<size_t>(q)];
  };

  // dp[q][i]: minimal bottleneck assigning the first i layers to the first q
  // stages (all non-empty). choice[q][i]: split point achieving it. States
  // whose bottleneck strictly exceeds `prune_above` stay at infinity — any
  // completion would be strictly worse than the incumbent.
  std::vector<std::vector<double>> dp(static_cast<size_t>(k) + 1,
                                      std::vector<double>(static_cast<size_t>(n) + 1, kInf));
  std::vector<std::vector<int>> choice(static_cast<size_t>(k) + 1,
                                       std::vector<int>(static_cast<size_t>(n) + 1, -1));
  dp[0][0] = 0.0;
  for (int q = 1; q <= k; ++q) {
    for (int i = q; i <= n - (k - q); ++i) {
      double best = kInf;
      int best_j = -1;
      for (int j = q - 1; j < i; ++j) {
        if (dp[static_cast<size_t>(q) - 1][static_cast<size_t>(j)] == kInf) {
          continue;
        }
        if (!stage_fits(q - 1, j, i - 1)) {
          continue;
        }
        const double cand = std::max(dp[static_cast<size_t>(q) - 1][static_cast<size_t>(j)],
                                     stage_cost(q - 1, j, i - 1));
        if (cand > prune_above) {
          continue;
        }
        if (cand < best) {
          best = cand;
          best_j = j;
        }
      }
      dp[static_cast<size_t>(q)][static_cast<size_t>(i)] = best;
      choice[static_cast<size_t>(q)][static_cast<size_t>(i)] = best_j;
    }
  }

  if (dp[static_cast<size_t>(k)][static_cast<size_t>(n)] == kInf) {
    return result;
  }

  // Reconstruct stage boundaries and rebuild the stages from them.
  std::vector<int> lasts(static_cast<size_t>(k));
  int i = n;
  for (int q = k; q >= 1; --q) {
    lasts[static_cast<size_t>(q) - 1] = i - 1;
    i = choice[static_cast<size_t>(q)][static_cast<size_t>(i)];
  }
  return BuildFixedPartition(*profile_, *cluster_, gpu_ids, lasts, options.nm,
                             options.mem_params);
}

Partition Partitioner::Solve(const std::vector<int>& gpu_ids,
                             const PartitionOptions& options) const {
  if (!options.search_gpu_orders || gpu_ids.size() <= 1) {
    return SolveFixedOrder(gpu_ids, options, kInf);
  }

  // Enumerate distinct (type, node) orderings of the VW's GPUs; identical
  // signatures produce identical solutions.
  std::vector<int> ids = gpu_ids;
  std::sort(ids.begin(), ids.end());
  std::set<std::string> seen;
  std::vector<std::vector<int>> orders;
  do {
    std::string signature;
    for (int id : ids) {
      const hw::Gpu& g = cluster_->gpu(id);
      signature += std::to_string(static_cast<int>(g.type));
      signature.push_back('@');
      signature += std::to_string(g.node);
      signature.push_back(';');
    }
    if (seen.insert(signature).second) {
      orders.push_back(ids);
    }
  } while (std::next_permutation(ids.begin(), ids.end()));

  // Solve every order, sharing the incumbent bottleneck as a branch-and-bound
  // cut. The incumbent is only ever an upper bound on the optimum, so any
  // value observed by any thread is a valid cut; the final reduction walks
  // the orders in enumeration order, which makes the result independent of
  // thread interleaving.
  std::vector<Partition> candidates(orders.size());
  std::mutex incumbent_mu;
  double incumbent = kInf;
  const auto solve_one = [&](int64_t index) {
    double bound = kInf;
    if (options.prune) {
      std::lock_guard<std::mutex> lock(incumbent_mu);
      bound = incumbent;
    }
    Partition candidate =
        SolveFixedOrder(orders[static_cast<size_t>(index)], options, bound);
    if (candidate.feasible) {
      std::lock_guard<std::mutex> lock(incumbent_mu);
      incumbent = std::min(incumbent, candidate.bottleneck_time);
    }
    candidates[static_cast<size_t>(index)] = std::move(candidate);
  };

  if (options.pool != nullptr && orders.size() > 1) {
    options.pool->ParallelFor(static_cast<int64_t>(orders.size()), solve_one);
  } else {
    for (int64_t index = 0; index < static_cast<int64_t>(orders.size()); ++index) {
      solve_one(index);
    }
  }

  Partition best;
  for (const Partition& candidate : candidates) {
    if (Improves(candidate, best)) {
      best = candidate;
    }
  }
  return best;
}

int FindMaxNmWith(const std::function<Partition(const PartitionOptions&)>& solve, int nm_cap,
                  PartitionOptions options) {
  for (int nm = nm_cap; nm >= 1; --nm) {
    options.nm = nm;
    if (solve(options).feasible) {
      return nm;
    }
  }
  return 0;
}

int Partitioner::FindMaxNm(const std::vector<int>& gpu_ids, int nm_cap,
                           PartitionOptions options) const {
  return FindMaxNmWith(
      [&](const PartitionOptions& at_nm) { return Solve(gpu_ids, at_nm); }, nm_cap, options);
}

}  // namespace hetpipe::partition
