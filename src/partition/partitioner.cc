#include "partition/partitioner.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

namespace hetpipe::partition {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::string Partition::ToString(const model::ModelProfile& profile) const {
  std::ostringstream os;
  if (!feasible) {
    os << "infeasible";
    return os.str();
  }
  os << "bottleneck " << bottleneck_time * 1e3 << " ms:";
  for (const StageAssignment& s : stages) {
    os << " [" << profile.graph().layer(s.first_layer).name << ".."
       << profile.graph().layer(s.last_layer).name << " on " << hw::CodeOf(s.gpu_type)
       << " " << s.TotalTime() * 1e3 << "ms " << (s.memory_bytes >> 20) << "MiB]";
  }
  return os.str();
}

Partitioner::Partitioner(const model::ModelProfile& profile, const hw::Cluster& cluster)
    : profile_(&profile), cluster_(&cluster) {}

Partition Partitioner::SolveFixedOrder(const std::vector<int>& gpu_ids,
                                       const PartitionOptions& options) const {
  const int n = profile_->num_layers();
  const int k = static_cast<int>(gpu_ids.size());
  Partition result;
  if (k == 0 || n < k) {
    return result;
  }

  std::vector<hw::GpuType> types(static_cast<size_t>(k));
  for (int q = 0; q < k; ++q) {
    types[static_cast<size_t>(q)] = cluster_->gpu(gpu_ids[static_cast<size_t>(q)]).type;
  }

  // Per-stage cost of covering layers [j, i] (inclusive), including the
  // communication to receive forward activations and backward gradients.
  const auto stage_cost = [&](int q, int j, int i) -> double {
    double cost = profile_->StageTotalTime(j, i, types[static_cast<size_t>(q)]);
    if (q > 0) {
      const auto& link =
          cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q) - 1], gpu_ids[static_cast<size_t>(q)]);
      cost += link.TransferTime(profile_->BoundaryTransferBytes(j - 1));
    }
    if (q < k - 1) {
      const auto& link =
          cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q)], gpu_ids[static_cast<size_t>(q) + 1]);
      cost += link.TransferTime(profile_->BoundaryTransferBytes(i));
    }
    return cost;
  };

  const auto stage_fits = [&](int q, int j, int i) -> bool {
    const uint64_t need = StageMemoryBytes(*profile_, j, i, q, k, options.nm,
                                           options.mem_params);
    return need <= hw::MemoryBytes(types[static_cast<size_t>(q)]);
  };

  // dp[q][i]: minimal bottleneck assigning the first i layers to the first q
  // stages (all non-empty). choice[q][i]: split point achieving it.
  std::vector<std::vector<double>> dp(static_cast<size_t>(k) + 1,
                                      std::vector<double>(static_cast<size_t>(n) + 1, kInf));
  std::vector<std::vector<int>> choice(static_cast<size_t>(k) + 1,
                                       std::vector<int>(static_cast<size_t>(n) + 1, -1));
  dp[0][0] = 0.0;
  for (int q = 1; q <= k; ++q) {
    for (int i = q; i <= n - (k - q); ++i) {
      double best = kInf;
      int best_j = -1;
      for (int j = q - 1; j < i; ++j) {
        if (dp[static_cast<size_t>(q) - 1][static_cast<size_t>(j)] == kInf) {
          continue;
        }
        if (!stage_fits(q - 1, j, i - 1)) {
          continue;
        }
        const double cand = std::max(dp[static_cast<size_t>(q) - 1][static_cast<size_t>(j)],
                                     stage_cost(q - 1, j, i - 1));
        if (cand < best) {
          best = cand;
          best_j = j;
        }
      }
      dp[static_cast<size_t>(q)][static_cast<size_t>(i)] = best;
      choice[static_cast<size_t>(q)][static_cast<size_t>(i)] = best_j;
    }
  }

  if (dp[static_cast<size_t>(k)][static_cast<size_t>(n)] == kInf) {
    return result;
  }

  // Reconstruct stage boundaries.
  std::vector<int> last(static_cast<size_t>(k));
  int i = n;
  for (int q = k; q >= 1; --q) {
    last[static_cast<size_t>(q) - 1] = i - 1;
    i = choice[static_cast<size_t>(q)][static_cast<size_t>(i)];
  }

  result.feasible = true;
  int first = 0;
  for (int q = 0; q < k; ++q) {
    StageAssignment stage;
    stage.first_layer = first;
    stage.last_layer = last[static_cast<size_t>(q)];
    stage.gpu_id = gpu_ids[static_cast<size_t>(q)];
    stage.gpu_type = types[static_cast<size_t>(q)];
    stage.node = cluster_->gpu(stage.gpu_id).node;
    stage.fwd_compute_s =
        profile_->StageFwdTime(stage.first_layer, stage.last_layer, stage.gpu_type);
    stage.bwd_compute_s =
        profile_->StageBwdTime(stage.first_layer, stage.last_layer, stage.gpu_type);
    if (q > 0) {
      const auto& link = cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q) - 1],
                                               gpu_ids[static_cast<size_t>(q)]);
      stage.fwd_comm_in_s =
          link.TransferTime(profile_->BoundaryTransferBytes(stage.first_layer - 1));
    }
    if (q < k - 1) {
      const auto& link = cluster_->LinkBetween(gpu_ids[static_cast<size_t>(q)],
                                               gpu_ids[static_cast<size_t>(q) + 1]);
      stage.bwd_comm_in_s = link.TransferTime(profile_->BoundaryTransferBytes(stage.last_layer));
    }
    stage.param_bytes =
        profile_->graph().ParamBytesInRange(stage.first_layer, stage.last_layer);
    stage.memory_bytes = StageMemoryBytes(*profile_, stage.first_layer, stage.last_layer, q, k,
                                          options.nm, options.mem_params);
    stage.memory_cap = hw::MemoryBytes(stage.gpu_type);
    result.stages.push_back(stage);
    result.bottleneck_time = std::max(result.bottleneck_time, stage.TotalTime());
    result.sum_time += stage.TotalTime();
    first = stage.last_layer + 1;
  }
  return result;
}

Partition Partitioner::Solve(const std::vector<int>& gpu_ids,
                             const PartitionOptions& options) const {
  if (!options.search_gpu_orders || gpu_ids.size() <= 1) {
    return SolveFixedOrder(gpu_ids, options);
  }

  // Enumerate distinct (type, node) orderings of the VW's GPUs; identical
  // signatures produce identical solutions.
  std::vector<int> ids = gpu_ids;
  std::sort(ids.begin(), ids.end());
  std::set<std::string> seen;
  Partition best;
  do {
    std::string signature;
    for (int id : ids) {
      const hw::Gpu& g = cluster_->gpu(id);
      signature.push_back(hw::CodeOf(g.type));
      signature.push_back(static_cast<char>('0' + g.node));
    }
    if (!seen.insert(signature).second) {
      continue;
    }
    Partition candidate = SolveFixedOrder(ids, options);
    if (!candidate.feasible) {
      continue;
    }
    const bool better =
        !best.feasible || candidate.bottleneck_time < best.bottleneck_time ||
        (candidate.bottleneck_time == best.bottleneck_time && candidate.sum_time < best.sum_time);
    if (better) {
      best = candidate;
    }
  } while (std::next_permutation(ids.begin(), ids.end()));
  return best;
}

int Partitioner::FindMaxNm(const std::vector<int>& gpu_ids, int nm_cap,
                           PartitionOptions options) const {
  for (int nm = nm_cap; nm >= 1; --nm) {
    options.nm = nm;
    if (Solve(gpu_ids, options).feasible) {
      return nm;
    }
  }
  return 0;
}

}  // namespace hetpipe::partition
