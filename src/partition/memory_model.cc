#include "partition/memory_model.h"

#include <algorithm>

namespace hetpipe::partition {

int InFlightAtStage(int stage_index, int num_stages, int nm) {
  const int window = 2 * (num_stages - 1 - stage_index) + 1;
  return std::max(1, std::min(nm, window));
}

uint64_t StageMemoryBytes(const model::ModelProfile& profile, int first, int last,
                          int stage_index, int num_stages, int nm,
                          const StageMemoryParams& params) {
  const model::ModelGraph& graph = profile.graph();
  return StageMemoryBytesFromSums(
      graph.ParamBytesInRange(first, last), graph.StashBytesInRange(first, last),
      static_cast<uint64_t>(profile.batch_size()),
      static_cast<uint64_t>(InFlightAtStage(stage_index, num_stages, nm)), params);
}

uint64_t SingleWorkerMemoryBytes(const model::ModelProfile& profile,
                                 const StageMemoryParams& params) {
  StageMemoryParams dp_params = params;
  dp_params.stash_weights = false;  // one minibatch at a time, no stashing
  return StageMemoryBytes(profile, 0, profile.num_layers() - 1,
                          /*stage_index=*/0, /*num_stages=*/1, /*nm=*/1, dp_params);
}

bool FitsOnSingleGpu(const model::ModelProfile& profile, hw::GpuType gpu,
                     const StageMemoryParams& params) {
  return SingleWorkerMemoryBytes(profile, params) <= hw::MemoryBytes(gpu);
}

}  // namespace hetpipe::partition
