#include "train/tensor.h"

#include <cassert>
#include <cmath>

namespace hetpipe::train {

void Tensor::Zero() { Fill(0.0); }

void Tensor::Fill(double v) {
  for (double& x : data_) {
    x = v;
  }
}

void Tensor::Axpy(double a, const Tensor& x) {
  assert(size() == x.size());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += a * x.data_[i];
  }
}

void Tensor::Scale(double a) {
  for (double& x : data_) {
    x *= a;
  }
}

double Tensor::Dot(const Tensor& x) const {
  assert(size() == x.size());
  double sum = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    sum += data_[i] * x.data_[i];
  }
  return sum;
}

double Tensor::Norm() const { return std::sqrt(SquaredNorm()); }

double Tensor::DistanceTo(const Tensor& x) const {
  assert(size() == x.size());
  double sum = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - x.data_[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

}  // namespace hetpipe::train
