#include "train/ps.h"

#include <cassert>
#include <utility>

namespace hetpipe::train {

ParameterServer::ParameterServer(int num_workers, Tensor init)
    : num_workers_(num_workers), weights_(std::move(init)), clocks_(num_workers) {}

void ParameterServer::PushWave(int worker, int64_t wave, const Tensor& update) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(update.size() == weights_.size());
  weights_.Axpy(1.0, update);
  clocks_.Advance(worker, wave);
  const int64_t new_global = clocks_.Global();
  if (new_global > global_wave_) {
    global_wave_ = new_global;
    if (wave_cb_) {
      wave_cb_(global_wave_, weights_);
    }
    global_advanced_.notify_all();
  }
}

int64_t ParameterServer::GlobalWave() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_wave_;
}

int64_t ParameterServer::WaitGlobalWave(int64_t min_wave) {
  std::unique_lock<std::mutex> lock(mu_);
  global_advanced_.wait(lock, [&] { return global_wave_ >= min_wave; });
  return global_wave_;
}

int64_t ParameterServer::Read(Tensor* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out = weights_;
  return global_wave_;
}

void ParameterServer::SetWaveCallback(std::function<void(int64_t, const Tensor&)> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  wave_cb_ = std::move(cb);
}

}  // namespace hetpipe::train
