#pragma once

#include <memory>
#include <vector>

#include "train/data.h"
#include "train/tensor.h"

namespace hetpipe::train {

// A differentiable training objective. LossAndGrad must be thread-safe for
// concurrent calls with distinct `grad` outputs (workers run in parallel).
class TrainModel {
 public:
  virtual ~TrainModel() = default;

  virtual size_t num_params() const = 0;

  // Mean loss over the rows `indices` of `data` at weights `w`; accumulates
  // d(loss)/dw into `grad` (caller zeroes it).
  virtual double LossAndGrad(const Dataset& data, const std::vector<int>& indices,
                             const Tensor& w, Tensor* grad) const = 0;

  // Mean loss over the whole dataset.
  double FullLoss(const Dataset& data, const Tensor& w) const;
};

// 0.5 * (<w, x> - y)^2 — convex; used by the Theorem-1 regret experiments.
class LinearRegressionModel final : public TrainModel {
 public:
  explicit LinearRegressionModel(int dim) : dim_(dim) {}
  size_t num_params() const override { return static_cast<size_t>(dim_); }
  double LossAndGrad(const Dataset& data, const std::vector<int>& indices, const Tensor& w,
                     Tensor* grad) const override;

 private:
  int dim_;
};

// Binary cross-entropy with sigmoid(<w, x> + b) — convex.
class LogisticRegressionModel final : public TrainModel {
 public:
  explicit LogisticRegressionModel(int dim) : dim_(dim) {}
  size_t num_params() const override { return static_cast<size_t>(dim_) + 1; }
  double LossAndGrad(const Dataset& data, const std::vector<int>& indices, const Tensor& w,
                     Tensor* grad) const override;

 private:
  int dim_;
};

// One-hidden-layer tanh MLP with sigmoid output and cross-entropy loss —
// nonconvex; exercises WSP on the kind of objective DNN training has.
class MlpModel final : public TrainModel {
 public:
  MlpModel(int dim, int hidden) : dim_(dim), hidden_(hidden) {}
  size_t num_params() const override;
  double LossAndGrad(const Dataset& data, const std::vector<int>& indices, const Tensor& w,
                     Tensor* grad) const override;

  // Random small-weight initialization.
  Tensor Init(uint64_t seed) const;

 private:
  int dim_;
  int hidden_;
};

}  // namespace hetpipe::train
