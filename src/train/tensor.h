#pragma once

#include <cstddef>
#include <vector>

namespace hetpipe::train {

// Dense fp64 vector used as the parameter/gradient container of the real
// (numeric) training substrate. Deliberately minimal: the convergence and
// regret experiments run on small convex/MLP problems, not on the DNNs the
// performance simulator models.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(size_t n) : data_(n, 0.0) {}

  size_t size() const { return data_.size(); }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double& operator[](size_t i) { return data_[i]; }
  double operator[](size_t i) const { return data_[i]; }

  void Zero();
  void Fill(double v);
  // this += a * x
  void Axpy(double a, const Tensor& x);
  void Scale(double a);
  double Dot(const Tensor& x) const;
  double SquaredNorm() const { return Dot(*this); }
  double Norm() const;
  // Euclidean distance to x.
  double DistanceTo(const Tensor& x) const;

 private:
  std::vector<double> data_;
};

}  // namespace hetpipe::train
