#include "train/regret.h"

#include <cmath>
#include <numeric>

#include "train/wsp_trainer.h"

namespace hetpipe::train {

double SolveOptimum(const TrainModel& model, const Dataset& data, int iters, double lr,
                    Tensor* w_star) {
  *w_star = Tensor(model.num_params());
  std::vector<int> all(static_cast<size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  double loss = 0.0;
  for (int i = 0; i < iters; ++i) {
    Tensor grad(model.num_params());
    loss = model.LossAndGrad(data, all, *w_star, &grad);
    w_star->Axpy(-lr, grad);
  }
  return loss;
}

RegretResult RunRegretExperiment(const Dataset& data, const RegretExperimentOptions& options) {
  const LinearRegressionModel model(data.dim);

  RegretResult result;
  if (options.precomputed_optimum_loss >= 0.0) {
    result.optimum_loss = options.precomputed_optimum_loss;
  } else {
    Tensor w_star;
    result.optimum_loss = SolveOptimum(model, data, /*iters=*/500, /*lr=*/0.2, &w_star);
  }

  double prev_regret = std::numeric_limits<double>::infinity();
  for (int64_t waves : options.horizons) {
    TrainerOptions topt = WspOptions(options.num_workers, waves, options.nm, options.d);
    topt.worker.batch = options.batch;
    topt.worker.lr = options.lr;
    topt.worker.sqrt_lr_decay = true;
    topt.worker.seed = options.seed;
    const TrainerResult run = TrainWsp(model, data, topt);

    RegretPoint point;
    point.total_steps = run.total_minibatches;
    // R[W] = mean over t of f_t(w~_t), minus f(w*).
    double mean_noisy_loss = 0.0;
    // TrainWsp does not expose per-worker losses; approximate the mean noisy
    // loss with the aggregate recorded by workers (sum over all minibatches).
    mean_noisy_loss = run.total_minibatches > 0
                          ? run.sum_noisy_loss / static_cast<double>(run.total_minibatches)
                          : 0.0;
    point.regret = mean_noisy_loss - result.optimum_loss;
    point.sqrt_t_scaled = point.regret * std::sqrt(static_cast<double>(point.total_steps));
    if (point.regret > prev_regret) {
      result.decreasing = false;
    }
    prev_regret = point.regret;
    result.points.push_back(point);
  }
  return result;
}

}  // namespace hetpipe::train
