#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "train/data.h"
#include "train/model_zoo.h"
#include "train/worker.h"

namespace hetpipe::train {

struct TrainerOptions {
  int num_workers = 4;
  WorkerOptions worker;
  Tensor init;  // empty: zeros
};

// Outcome of a multi-threaded WSP training run.
struct TrainerResult {
  // (global wave, full-dataset loss at the global weights) samples.
  std::vector<std::pair<int64_t, double>> loss_curve;
  double final_loss = 0.0;
  Tensor final_weights;

  int64_t total_minibatches = 0;
  // Sum over every minibatch of f_t(w~_t), the loss at the noisy weights it
  // was computed with (the regret experiment's numerator).
  double sum_noisy_loss = 0.0;
  int64_t worst_observed_staleness = 0;
  bool staleness_within_bound = true;
  double mean_observed_staleness = 0.0;
  double total_wait_seconds = 0.0;
};

// Spawns `num_workers` WSP workers on real threads sharing one parameter
// server and trains `model` on `data`. This is the numeric counterpart of
// the performance simulator: it validates that WSP converges (§6) and that
// the staleness bounds hold during real concurrent execution.
TrainerResult TrainWsp(const TrainModel& model, const Dataset& data,
                       const TrainerOptions& options);

// Convenience baselines on the same machinery:
//   BSP  = Nm=1, D=0;  SSP(s) = Nm=1, D=s;  ASP = no gating.
TrainerOptions BspOptions(int num_workers, int64_t steps);
TrainerOptions SspOptions(int num_workers, int64_t steps, int s);
TrainerOptions AspOptions(int num_workers, int64_t steps);
TrainerOptions WspOptions(int num_workers, int64_t waves, int nm, int d);

}  // namespace hetpipe::train
