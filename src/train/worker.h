#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "train/data.h"
#include "train/model_zoo.h"
#include "train/ps.h"
#include "wsp/staleness.h"
#include "wsp/sync_policy.h"

namespace hetpipe::train {

struct WorkerOptions {
  int nm = 1;  // concurrent pipeline minibatches (local staleness = nm - 1)
  wsp::SyncPolicy sync = wsp::SyncPolicy::Wsp(0);
  int64_t waves = 100;  // waves to process (nm minibatches each)
  int batch = 8;
  double lr = 0.05;
  bool sqrt_lr_decay = false;  // eta_t = lr / sqrt(t), as in Theorem 1
  double momentum = 0.0;       // heavy-ball momentum on the local velocity
  double weight_decay = 0.0;   // L2 regularization added to every gradient
  uint64_t seed = 1;
};

// One virtual worker of the *real* (numeric) WSP trainer. Pipelined model
// parallelism is emulated by delayed gradient application: the gradient of
// minibatch p is computed on weights that include local updates only through
// p - Nm (the §4 local-staleness semantics), and one aggregated update per
// wave is pushed to the parameter server. Injection of minibatch p blocks
// until the global wave RequiredGlobalWave(p) is available (the §5 global-
// staleness gate); with Nm=1 this degenerates to SSP (D=s) / BSP (D=0), and
// SyncMode::kAsp disables gating entirely.
class WspWorker {
 public:
  WspWorker(int id, const TrainModel& model, const Dataset& data, ParameterServer& ps,
            int num_workers, const WorkerOptions& options);

  // Runs to completion (call on a dedicated thread).
  void Run();

  // Available after Run() returns.
  const wsp::StalenessTracker& staleness() const { return staleness_; }
  double sum_minibatch_loss() const { return sum_loss_; }
  int64_t minibatches_processed() const { return processed_; }
  double wait_seconds() const { return wait_seconds_; }
  // Loss of every minibatch at the (noisy) weights it was computed with —
  // the f_t(w~_t) sequence of the regret analysis.
  const std::vector<double>& minibatch_losses() const { return losses_; }

 private:
  struct PendingUpdate {
    int64_t index;  // minibatch index (1-based)
    Tensor update;
  };

  void ApplyReadyUpdates(int64_t p);
  void MaybePull(int64_t p, bool blocking, int64_t required_wave);
  double LearningRate(int64_t p) const;

  int id_;
  const TrainModel* model_;
  const Dataset* data_;
  ParameterServer* ps_;
  WorkerOptions options_;
  MinibatchStream stream_;

  Tensor local_;      // weights the next gradient is computed on
  Tensor partial_;    // applied-but-not-yet-pushed updates (current wave)
  Tensor velocity_;   // momentum buffer
  std::deque<PendingUpdate> pending_;  // computed-but-not-yet-applied updates
  int64_t last_pulled_wave_ = -1;

  wsp::StalenessTracker staleness_;
  std::vector<double> losses_;
  double sum_loss_ = 0.0;
  int64_t processed_ = 0;
  double wait_seconds_ = 0.0;
};

}  // namespace hetpipe::train
