#include "train/model_zoo.h"

#include <cassert>
#include <cmath>
#include <numeric>

#include "sim/rng.h"

namespace hetpipe::train {
namespace {

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// Numerically stable binary cross-entropy for logit z, label y in {0,1}.
double BceLoss(double z, double y) {
  const double m = std::max(z, 0.0);
  return m - z * y + std::log(std::exp(-m) + std::exp(z - m));
}

}  // namespace

double TrainModel::FullLoss(const Dataset& data, const Tensor& w) const {
  std::vector<int> all(static_cast<size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  Tensor scratch(num_params());
  return LossAndGrad(data, all, w, &scratch);
}

double LinearRegressionModel::LossAndGrad(const Dataset& data, const std::vector<int>& indices,
                                          const Tensor& w, Tensor* grad) const {
  assert(w.size() == num_params());
  double loss = 0.0;
  const double inv = 1.0 / static_cast<double>(indices.size());
  for (int idx : indices) {
    const auto& row = data.x[static_cast<size_t>(idx)];
    double pred = 0.0;
    for (int j = 0; j < dim_; ++j) {
      pred += w[static_cast<size_t>(j)] * row[static_cast<size_t>(j)];
    }
    const double err = pred - data.y[static_cast<size_t>(idx)];
    loss += 0.5 * err * err;
    for (int j = 0; j < dim_; ++j) {
      (*grad)[static_cast<size_t>(j)] += inv * err * row[static_cast<size_t>(j)];
    }
  }
  return loss * inv;
}

double LogisticRegressionModel::LossAndGrad(const Dataset& data, const std::vector<int>& indices,
                                            const Tensor& w, Tensor* grad) const {
  assert(w.size() == num_params());
  double loss = 0.0;
  const double inv = 1.0 / static_cast<double>(indices.size());
  const size_t bias = static_cast<size_t>(dim_);
  for (int idx : indices) {
    const auto& row = data.x[static_cast<size_t>(idx)];
    double z = w[bias];
    for (int j = 0; j < dim_; ++j) {
      z += w[static_cast<size_t>(j)] * row[static_cast<size_t>(j)];
    }
    const double y = data.y[static_cast<size_t>(idx)];
    loss += BceLoss(z, y);
    const double delta = Sigmoid(z) - y;
    for (int j = 0; j < dim_; ++j) {
      (*grad)[static_cast<size_t>(j)] += inv * delta * row[static_cast<size_t>(j)];
    }
    (*grad)[bias] += inv * delta;
  }
  return loss * inv;
}

size_t MlpModel::num_params() const {
  // W1 (hidden x dim) + b1 (hidden) + w2 (hidden) + b2 (1).
  return static_cast<size_t>(hidden_) * static_cast<size_t>(dim_) +
         static_cast<size_t>(hidden_) * 2 + 1;
}

Tensor MlpModel::Init(uint64_t seed) const {
  sim::Rng rng(seed);
  Tensor w(num_params());
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = scale * rng.Normal();
  }
  return w;
}

double MlpModel::LossAndGrad(const Dataset& data, const std::vector<int>& indices,
                             const Tensor& w, Tensor* grad) const {
  assert(w.size() == num_params());
  const size_t w1 = 0;
  const size_t b1 = static_cast<size_t>(hidden_) * static_cast<size_t>(dim_);
  const size_t w2 = b1 + static_cast<size_t>(hidden_);
  const size_t b2 = w2 + static_cast<size_t>(hidden_);

  std::vector<double> h(static_cast<size_t>(hidden_));
  std::vector<double> pre(static_cast<size_t>(hidden_));
  double loss = 0.0;
  const double inv = 1.0 / static_cast<double>(indices.size());

  for (int idx : indices) {
    const auto& row = data.x[static_cast<size_t>(idx)];
    // Forward.
    for (int u = 0; u < hidden_; ++u) {
      double z = w[b1 + static_cast<size_t>(u)];
      const size_t base = w1 + static_cast<size_t>(u) * static_cast<size_t>(dim_);
      for (int j = 0; j < dim_; ++j) {
        z += w[base + static_cast<size_t>(j)] * row[static_cast<size_t>(j)];
      }
      pre[static_cast<size_t>(u)] = z;
      h[static_cast<size_t>(u)] = std::tanh(z);
    }
    double z_out = w[b2];
    for (int u = 0; u < hidden_; ++u) {
      z_out += w[w2 + static_cast<size_t>(u)] * h[static_cast<size_t>(u)];
    }
    const double y = data.y[static_cast<size_t>(idx)];
    loss += BceLoss(z_out, y);

    // Backward.
    const double delta_out = Sigmoid(z_out) - y;
    (*grad)[b2] += inv * delta_out;
    for (int u = 0; u < hidden_; ++u) {
      const double hu = h[static_cast<size_t>(u)];
      (*grad)[w2 + static_cast<size_t>(u)] += inv * delta_out * hu;
      const double delta_h = delta_out * w[w2 + static_cast<size_t>(u)] * (1.0 - hu * hu);
      (*grad)[b1 + static_cast<size_t>(u)] += inv * delta_h;
      const size_t base = w1 + static_cast<size_t>(u) * static_cast<size_t>(dim_);
      for (int j = 0; j < dim_; ++j) {
        (*grad)[base + static_cast<size_t>(j)] += inv * delta_h * row[static_cast<size_t>(j)];
      }
    }
  }
  return loss * inv;
}

}  // namespace hetpipe::train
