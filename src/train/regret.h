#pragma once

#include <cstdint>
#include <vector>

#include "train/data.h"
#include "train/model_zoo.h"

namespace hetpipe::train {

// Empirical validation of Theorem 1: trains a *convex* objective under WSP
// with eta_t = lr / sqrt(t) and measures the regret
//   R[W] = (1/T) sum_t f_t(w~_t) - f(w*),
// where w* is obtained by running plain gradient descent to (near) optimum.
// Theorem 1 bounds R[W] by 4*M*L*sqrt((2*s_g + s_l) * N / T), so R[W] must
// shrink like O(1/sqrt(T)).
struct RegretExperimentOptions {
  int num_workers = 4;
  int nm = 4;
  int d = 1;
  int batch = 4;
  double lr = 0.1;
  uint64_t seed = 7;
  std::vector<int64_t> horizons = {64, 256, 1024};  // waves per measurement
  // When >= 0, used as f(w*) instead of re-running SolveOptimum — lets a
  // sweep solve the optimum once and fan the horizons out in parallel.
  double precomputed_optimum_loss = -1.0;
};

struct RegretPoint {
  int64_t total_steps = 0;  // T: total minibatch updates across workers
  double regret = 0.0;      // measured R[W]
  double sqrt_t_scaled = 0.0;  // regret * sqrt(T): bounded if Theorem 1 holds
};

struct RegretResult {
  double optimum_loss = 0.0;
  std::vector<RegretPoint> points;
  // True if regret decreases with T across the measured horizons.
  bool decreasing = true;
};

RegretResult RunRegretExperiment(const Dataset& data, const RegretExperimentOptions& options);

// Reference optimum via full-batch gradient descent.
double SolveOptimum(const TrainModel& model, const Dataset& data, int iters, double lr,
                    Tensor* w_star);

}  // namespace hetpipe::train
