#include "train/data.h"

#include <cmath>

namespace hetpipe::train {

Dataset MakeLinearRegression(int num, int dim, double noise, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> w_star(static_cast<size_t>(dim));
  for (double& w : w_star) {
    w = rng.Normal();
  }
  Dataset data;
  data.dim = dim;
  data.x.reserve(static_cast<size_t>(num));
  data.y.reserve(static_cast<size_t>(num));
  for (int i = 0; i < num; ++i) {
    std::vector<double> row(static_cast<size_t>(dim));
    double dot = 0.0;
    for (int j = 0; j < dim; ++j) {
      row[static_cast<size_t>(j)] = rng.Normal();
      dot += row[static_cast<size_t>(j)] * w_star[static_cast<size_t>(j)];
    }
    data.x.push_back(std::move(row));
    data.y.push_back(dot + noise * rng.Normal());
  }
  return data;
}

Dataset MakeBinaryBlobs(int num, int dim, double separation, uint64_t seed) {
  sim::Rng rng(seed);
  Dataset data;
  data.dim = dim;
  for (int i = 0; i < num; ++i) {
    const double label = (i % 2 == 0) ? 0.0 : 1.0;
    const double center = label == 0.0 ? -separation / 2.0 : separation / 2.0;
    std::vector<double> row(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) {
      row[static_cast<size_t>(j)] = center + rng.Normal();
    }
    data.x.push_back(std::move(row));
    data.y.push_back(label);
  }
  return data;
}

Dataset MakeXorLike(int num, int dim, uint64_t seed) {
  sim::Rng rng(seed);
  Dataset data;
  data.dim = dim;
  for (int i = 0; i < num; ++i) {
    std::vector<double> row(static_cast<size_t>(dim));
    for (int j = 0; j < dim; ++j) {
      row[static_cast<size_t>(j)] = rng.Uniform(-1.0, 1.0);
    }
    const double label = (row[0] * row[1 % static_cast<size_t>(dim)] > 0.0) ? 1.0 : 0.0;
    data.x.push_back(std::move(row));
    data.y.push_back(label);
  }
  return data;
}

MinibatchStream::MinibatchStream(const Dataset& data, int worker, int num_workers, uint64_t seed)
    : rng_(seed + static_cast<uint64_t>(worker) * 0x51ed270b7f7fULL) {
  for (int i = worker; i < data.size(); i += num_workers) {
    shard_.push_back(i);
  }
  rng_.Shuffle(shard_.data(), shard_.size());
}

std::vector<int> MinibatchStream::Next(int batch) {
  std::vector<int> indices;
  indices.reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    if (cursor_ >= shard_.size()) {
      cursor_ = 0;
      rng_.Shuffle(shard_.data(), shard_.size());
    }
    indices.push_back(shard_[cursor_++]);
  }
  return indices;
}

}  // namespace hetpipe::train
