#include "train/wsp_trainer.h"

#include <memory>
#include <mutex>
#include <thread>

namespace hetpipe::train {

TrainerResult TrainWsp(const TrainModel& model, const Dataset& data,
                       const TrainerOptions& options) {
  Tensor init = options.init.size() == model.num_params() ? options.init
                                                          : Tensor(model.num_params());
  ParameterServer ps(options.num_workers, std::move(init));

  TrainerResult result;
  std::mutex curve_mu;
  ps.SetWaveCallback([&](int64_t wave, const Tensor& weights) {
    // Sample the loss curve sparsely to keep the callback cheap.
    if (wave % 8 != 0) {
      return;
    }
    std::lock_guard<std::mutex> lock(curve_mu);
    result.loss_curve.emplace_back(wave, model.FullLoss(data, weights));
  });

  std::vector<std::unique_ptr<WspWorker>> workers;
  workers.reserve(static_cast<size_t>(options.num_workers));
  for (int w = 0; w < options.num_workers; ++w) {
    workers.push_back(
        std::make_unique<WspWorker>(w, model, data, ps, options.num_workers, options.worker));
  }

  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (auto& worker : workers) {
    threads.emplace_back([&worker] { worker->Run(); });
  }
  for (auto& t : threads) {
    t.join();
  }

  result.final_weights = Tensor(model.num_params());
  ps.Read(&result.final_weights);
  result.final_loss = model.FullLoss(data, result.final_weights);

  double staleness_sum = 0.0;
  size_t staleness_count = 0;
  for (const auto& worker : workers) {
    result.total_minibatches += worker->minibatches_processed();
    result.sum_noisy_loss += worker->sum_minibatch_loss();
    result.worst_observed_staleness =
        std::max(result.worst_observed_staleness, worker->staleness().worst_observed());
    result.staleness_within_bound &= worker->staleness().WithinBound();
    staleness_sum += worker->staleness().observed().sum();
    staleness_count += worker->staleness().observed().count();
    result.total_wait_seconds += worker->wait_seconds();
  }
  result.mean_observed_staleness =
      staleness_count > 0 ? staleness_sum / static_cast<double>(staleness_count) : 0.0;
  return result;
}

TrainerOptions BspOptions(int num_workers, int64_t steps) {
  TrainerOptions options;
  options.num_workers = num_workers;
  options.worker.nm = 1;
  options.worker.sync = wsp::SyncPolicy::Wsp(0);
  options.worker.waves = steps;
  return options;
}

TrainerOptions SspOptions(int num_workers, int64_t steps, int s) {
  TrainerOptions options = BspOptions(num_workers, steps);
  options.worker.sync = wsp::SyncPolicy::Wsp(s);
  return options;
}

TrainerOptions AspOptions(int num_workers, int64_t steps) {
  TrainerOptions options = BspOptions(num_workers, steps);
  options.worker.sync = wsp::SyncPolicy::Asp();
  return options;
}

TrainerOptions WspOptions(int num_workers, int64_t waves, int nm, int d) {
  TrainerOptions options;
  options.num_workers = num_workers;
  options.worker.nm = nm;
  options.worker.sync = wsp::SyncPolicy::Wsp(d);
  options.worker.waves = waves;
  return options;
}

}  // namespace hetpipe::train
