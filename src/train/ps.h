#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "train/tensor.h"
#include "wsp/clock.h"

namespace hetpipe::train {

// Thread-safe parameter server implementing the WSP protocol of §5 on real
// weights: workers push one aggregated update per wave (w_global += u~, and
// the worker's local clock advances); the global clock is the minimum local
// clock; pulls return the *current* global weights, which may contain extra
// updates beyond the global clock — exactly the E_{n,p} term of the §6
// analysis.
class ParameterServer {
 public:
  ParameterServer(int num_workers, Tensor init);

  size_t dim() const { return weights_.size(); }
  int num_workers() const { return num_workers_; }

  // Applies worker's aggregated update for `wave` (0-indexed; must be the
  // worker's next wave) and advances its local clock.
  void PushWave(int worker, int64_t wave, const Tensor& update);

  // Minimum pushed wave over all workers (-1 before everyone's first push).
  int64_t GlobalWave() const;

  // Blocks until GlobalWave() >= min_wave. Returns the observed global wave.
  int64_t WaitGlobalWave(int64_t min_wave);

  // Copy of the current global weights (w0 plus every update received so
  // far) and the global wave at the time of the copy.
  int64_t Read(Tensor* out) const;

  // Invoked (under the server lock) each time the global wave advances, with
  // the new wave and the current global weights. Used to record loss curves.
  void SetWaveCallback(std::function<void(int64_t wave, const Tensor& weights)> cb);

 private:
  const int num_workers_;
  mutable std::mutex mu_;
  std::condition_variable global_advanced_;
  Tensor weights_;
  wsp::VectorClock clocks_;
  int64_t global_wave_ = -1;
  std::function<void(int64_t, const Tensor&)> wave_cb_;
};

}  // namespace hetpipe::train
