#include "train/worker.h"

#include <chrono>
#include <cmath>

namespace hetpipe::train {

WspWorker::WspWorker(int id, const TrainModel& model, const Dataset& data, ParameterServer& ps,
                     int num_workers, const WorkerOptions& options)
    : id_(id),
      model_(&model),
      data_(&data),
      ps_(&ps),
      options_(options),
      stream_(data, id, num_workers, options.seed),
      local_(model.num_params()),
      partial_(model.num_params()),
      velocity_(model.num_params()),
      staleness_(options.nm, options.sync.mode == wsp::SyncMode::kWsp ? options.sync.d : 1 << 20) {
  ps.Read(&local_);  // start from the shared initial weights w0
}

double WspWorker::LearningRate(int64_t p) const {
  if (!options_.sqrt_lr_decay) {
    return options_.lr;
  }
  return options_.lr / std::sqrt(static_cast<double>(p));
}

void WspWorker::ApplyReadyUpdates(int64_t p) {
  // A minibatch may proceed once updates of minibatches <= p - Nm are in the
  // local weights (§4): apply every pending update that old, pushing each
  // completed wave's aggregate to the parameter server as it closes.
  while (!pending_.empty() && pending_.front().index <= p - options_.nm) {
    const PendingUpdate& u = pending_.front();
    local_.Axpy(1.0, u.update);
    partial_.Axpy(1.0, u.update);
    if (u.index % options_.nm == 0) {
      const int64_t wave = u.index / options_.nm - 1;
      ps_->PushWave(id_, wave, partial_);
      partial_.Zero();
    }
    pending_.pop_front();
  }
}

void WspWorker::MaybePull(int64_t p, bool blocking, int64_t required_wave) {
  if (blocking) {
    const auto start = std::chrono::steady_clock::now();
    ps_->WaitGlobalWave(required_wave);
    wait_seconds_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                         .count();
  } else if (ps_->GlobalWave() <= last_pulled_wave_) {
    return;  // nothing new to fetch
  }
  // w_local := w_global + own applied-but-unpushed updates. Pending (not yet
  // applied) updates stay excluded: that is the pipeline's local staleness.
  Tensor global(model_->num_params());
  last_pulled_wave_ = ps_->Read(&global);
  global.Axpy(1.0, partial_);
  local_ = std::move(global);
  const int64_t own_wave = (p - 1) / options_.nm;
  staleness_.RecordInjection(
      p, std::max<int64_t>(0, (own_wave - 1 - last_pulled_wave_)) * options_.nm);
}

void WspWorker::Run() {
  const int64_t total = options_.waves * options_.nm;
  for (int64_t p = 1; p <= total; ++p) {
    ApplyReadyUpdates(p);

    const bool gated = options_.sync.mode == wsp::SyncMode::kWsp;
    const int64_t required = gated
                                 ? wsp::RequiredGlobalWave(p, options_.nm, options_.sync.d)
                                 : -1;
    if (required >= 0 && last_pulled_wave_ < required) {
      MaybePull(p, /*blocking=*/true, required);
    } else if (p % options_.nm == 1 || options_.nm == 1) {
      // Wave boundary: refresh eagerly if fresher global weights exist.
      MaybePull(p, /*blocking=*/false, -1);
    }

    // Compute the gradient on the (possibly stale) local weights.
    const std::vector<int> batch = stream_.Next(options_.batch);
    Tensor grad(model_->num_params());
    const double loss = model_->LossAndGrad(*data_, batch, local_, &grad);
    losses_.push_back(loss);
    sum_loss_ += loss;
    ++processed_;

    if (options_.weight_decay > 0.0) {
      grad.Axpy(options_.weight_decay, local_);
    }
    if (options_.momentum > 0.0) {
      velocity_.Scale(options_.momentum);
      velocity_.Axpy(1.0, grad);
      grad = velocity_;
    }
    grad.Scale(-LearningRate(p));
    pending_.push_back(PendingUpdate{p, std::move(grad)});
  }
  // Drain the pipeline: apply and push everything still pending.
  ApplyReadyUpdates(total + options_.nm);
}

}  // namespace hetpipe::train
