#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace hetpipe::train {

// Synthetic supervised dataset: `num` rows of `dim` features with targets.
// Substitutes for ImageNet in the convergence experiments (the repo has no
// access to the real dataset; what the WSP analysis needs is an objective
// whose optimum is known and whose gradients are cheap).
struct Dataset {
  int dim = 0;
  std::vector<std::vector<double>> x;
  std::vector<double> y;

  int size() const { return static_cast<int>(x.size()); }
};

// y = <w*, x> + noise, for linear-regression (convex least squares).
Dataset MakeLinearRegression(int num, int dim, double noise, uint64_t seed);

// Two Gaussian blobs with labels {0, 1}, for logistic regression (convex).
Dataset MakeBinaryBlobs(int num, int dim, double separation, uint64_t seed);

// Nonlinear decision boundary (XOR-of-signs), for the MLP experiments.
Dataset MakeXorLike(int num, int dim, uint64_t seed);

// Deterministic per-worker minibatch stream: worker w of n draws from its own
// shard of the dataset, shuffled with its own seed (data parallelism assigns
// each worker a different subset, §2.2).
class MinibatchStream {
 public:
  MinibatchStream(const Dataset& data, int worker, int num_workers, uint64_t seed);

  // Returns `batch` row indices; reshuffles the shard on wraparound.
  std::vector<int> Next(int batch);

 private:
  std::vector<int> shard_;
  size_t cursor_ = 0;
  sim::Rng rng_;
};

}  // namespace hetpipe::train
