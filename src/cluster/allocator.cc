#include "cluster/allocator.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace hetpipe::cluster {

const char* PolicyName(AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kNodePartition:
      return "NP";
    case AllocationPolicy::kEqualDistribution:
      return "ED";
    case AllocationPolicy::kHybridDistribution:
      return "HD";
  }
  return "?";
}

int ComputeRank(hw::GpuType type) {
  // Rank by sustained compute throughput, strongest first. On the paper
  // classes this reproduces §8.1's ordering V > R > G > Q; registered classes
  // slot in by their declared TFLOPS (ties break toward the earlier class).
  const hw::GpuSpec& mine = hw::SpecOf(type);
  int rank = 0;
  for (const hw::GpuSpec& other : hw::AllGpuSpecs()) {
    if (other.effective_tflops > mine.effective_tflops ||
        (other.effective_tflops == mine.effective_tflops &&
         static_cast<int>(other.type) < static_cast<int>(type))) {
      ++rank;
    }
  }
  return rank;
}

std::string Allocation::ToString(const hw::Cluster& cluster) const {
  std::ostringstream os;
  os << PolicyName(policy) << ":";
  for (const std::vector<int>& vw : vw_gpus) {
    os << " [";
    for (int id : vw) {
      os << hw::CodeOf(cluster.gpu(id).type);
    }
    os << ']';
  }
  return os.str();
}

namespace {

Allocation AllocateNp(const hw::Cluster& cluster) {
  Allocation allocation;
  allocation.policy = AllocationPolicy::kNodePartition;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    allocation.vw_gpus.push_back(cluster.GpusOnNode(n));
  }
  return allocation;
}

Allocation AllocateEd(const hw::Cluster& cluster) {
  // One GPU of every node per virtual worker. On clusters with unequal node
  // sizes the number of VWs is the largest node's GPU count, and smaller
  // nodes simply contribute to the first VWs only. Mixed-class nodes hand
  // out their GPUs in declaration (GPU-id) order, so VW i receives the i-th
  // declared GPU of every node — deterministic and spec-controlled.
  Allocation allocation;
  allocation.policy = AllocationPolicy::kEqualDistribution;
  allocation.vw_gpus.resize(static_cast<size_t>(cluster.gpus_per_node()));
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const std::vector<int> ids = cluster.GpusOnNode(n);
    for (size_t i = 0; i < ids.size(); ++i) {
      allocation.vw_gpus[i].push_back(ids[i]);
    }
  }
  return allocation;
}

Allocation AllocateHd(const hw::Cluster& cluster) {
  bool homogeneous_nodes = true;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    homogeneous_nodes = homogeneous_nodes && cluster.NodeHomogeneous(n);
  }
  if (cluster.num_nodes() != 4 || cluster.gpus_per_node() != 4 ||
      !cluster.UniformGpusPerNode() || !homogeneous_nodes) {
    throw std::invalid_argument(
        "HD allocation requires a 4-node x 4-GPU cluster of homogeneous nodes");
  }
  // Order nodes by compute power, then pair (strongest, weakest) and the two
  // middle nodes; each pair yields two virtual workers with 2 + 2 GPUs.
  std::vector<int> nodes(4);
  std::iota(nodes.begin(), nodes.end(), 0);
  std::sort(nodes.begin(), nodes.end(), [&](int a, int b) {
    return ComputeRank(cluster.NodeType(a)) < ComputeRank(cluster.NodeType(b));
  });

  Allocation allocation;
  allocation.policy = AllocationPolicy::kHybridDistribution;
  const std::pair<int, int> pairs[] = {{nodes[0], nodes[3]}, {nodes[1], nodes[2]}};
  for (const auto& [strong, weak] : pairs) {
    const std::vector<int> strong_ids = cluster.GpusOnNode(strong);
    const std::vector<int> weak_ids = cluster.GpusOnNode(weak);
    for (int half = 0; half < 2; ++half) {
      std::vector<int> vw;
      vw.push_back(strong_ids[static_cast<size_t>(half) * 2]);
      vw.push_back(strong_ids[static_cast<size_t>(half) * 2 + 1]);
      vw.push_back(weak_ids[static_cast<size_t>(half) * 2]);
      vw.push_back(weak_ids[static_cast<size_t>(half) * 2 + 1]);
      allocation.vw_gpus.push_back(std::move(vw));
    }
  }
  return allocation;
}

}  // namespace

Allocation Allocate(const hw::Cluster& cluster, AllocationPolicy policy) {
  switch (policy) {
    case AllocationPolicy::kNodePartition:
      return AllocateNp(cluster);
    case AllocationPolicy::kEqualDistribution:
      return AllocateEd(cluster);
    case AllocationPolicy::kHybridDistribution:
      return AllocateHd(cluster);
  }
  throw std::invalid_argument("unknown allocation policy");
}

}  // namespace hetpipe::cluster
