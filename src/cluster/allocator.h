#pragma once

#include <string>
#include <vector>

#include "hw/cluster.h"

namespace hetpipe::cluster {

// The three resource-allocation policies of §8.1 (Table 3).
enum class AllocationPolicy {
  kNodePartition,      // NP: one node per virtual worker (homogeneous VWs)
  kEqualDistribution,  // ED: one GPU of every node per virtual worker
  kHybridDistribution, // HD: pair strong and weak node types (VVQQ / RRGG)
};

const char* PolicyName(AllocationPolicy policy);

// GPUs assigned to each virtual worker.
struct Allocation {
  AllocationPolicy policy = AllocationPolicy::kNodePartition;
  std::vector<std::vector<int>> vw_gpus;

  int num_vws() const { return static_cast<int>(vw_gpus.size()); }
  // e.g. "NP: [VVVV][RRRR][GGGG][QQQQ]".
  std::string ToString(const hw::Cluster& cluster) const;
};

// Allocates the cluster's GPUs to virtual workers.
//  NP: one VW per node.
//  ED: VW i takes the i-th GPU of every node (requires gpus_per_node VWs).
//  HD: requires 4 nodes x 4 GPUs; ranks node types by compute power
//      (V > R > G > Q, §8.1) and builds two VWs from {strongest, weakest}
//      and two from the middle pair, reproducing Table 3's VVQQ/RRGG split.
Allocation Allocate(const hw::Cluster& cluster, AllocationPolicy policy);

// Compute-power rank of a GPU type (0 = strongest) among all known classes:
// §8.1's V > R > G > Q on the paper testbed, declared TFLOPS ordering for
// classes registered through hw::ClusterSpec.
int ComputeRank(hw::GpuType type);

}  // namespace hetpipe::cluster
