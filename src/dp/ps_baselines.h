#pragma once

#include <string>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "partition/memory_model.h"

namespace hetpipe::dp {

// Analytic models of classic parameter-server data parallelism (§2.2): each
// GPU that can hold the whole model is one worker; all workers push gradients
// to and pull weights from PS shards spread round-robin over the nodes.
// These are the BSP / SSP / ASP reference points WSP generalizes.
enum class PsSyncMode {
  kBsp,  // barrier every iteration: pay the slowest worker + max noise
  kSsp,  // bounded staleness s: noise amortized over the slack window
  kAsp,  // no barrier: every worker runs at its own speed
};

struct PsDpOptions {
  PsSyncMode mode = PsSyncMode::kBsp;
  int staleness = 0;        // SSP threshold s
  double noise_cv = 0.10;   // per-iteration compute-time noise (stragglers)
  partition::StageMemoryParams mem_params;
};

struct PsDpResult {
  bool feasible = false;
  int num_workers = 0;
  int num_excluded = 0;
  double slowest_compute_s = 0.0;
  double comm_s = 0.0;            // per-iteration PS push+pull per worker
  double sync_overhead_s = 0.0;   // barrier/noise cost per iteration
  double throughput_img_s = 0.0;
  // Expected missing updates a gradient is computed against (0 for BSP),
  // feeding the convergence model.
  double expected_staleness = 0.0;

  std::string ToString() const;
};

// Simulates PS-based DP over every GPU of `cluster` that fits the model.
PsDpResult SimulatePsDataParallel(const hw::Cluster& cluster,
                                  const model::ModelProfile& profile,
                                  const PsDpOptions& options = {});

}  // namespace hetpipe::dp
