#include "dp/placement.h"

namespace hetpipe::dp {

uint64_t HorovodCrossNodeBytes(uint64_t param_bytes, int num_workers) {
  if (num_workers <= 1) {
    return 0;
  }
  return param_bytes * static_cast<uint64_t>(num_workers - 1) /
         static_cast<uint64_t>(num_workers);
}

uint64_t ActivationCrossNodeBytes(const partition::Partition& partition,
                                  const model::ModelProfile& profile) {
  uint64_t total = 0;
  for (size_t q = 1; q < partition.stages.size(); ++q) {
    const auto& prev = partition.stages[q - 1];
    const auto& cur = partition.stages[q];
    if (prev.node == cur.node) {
      continue;
    }
    // Forward activations plus the same-sized backward gradients.
    total += 2 * profile.BoundaryTransferBytes(prev.last_layer);
  }
  return total;
}

ActivationTraffic ActivationTrafficByTier(const partition::Partition& partition,
                                          const model::ModelProfile& profile,
                                          const hw::Cluster& cluster) {
  ActivationTraffic traffic;
  for (size_t q = 1; q < partition.stages.size(); ++q) {
    const auto& prev = partition.stages[q - 1];
    const auto& cur = partition.stages[q];
    const uint64_t bytes = 2 * profile.BoundaryTransferBytes(prev.last_layer);
    if (prev.node == cur.node) {
      traffic.intra_node_bytes += bytes;
    } else if (cluster.SameRack(prev.node, cur.node)) {
      traffic.same_rack_bytes += bytes;
    } else {
      traffic.cross_rack_bytes += bytes;
    }
  }
  return traffic;
}

uint64_t PsCrossNodeBytesPerMinibatch(const partition::Partition& partition, int num_nodes,
                                      bool local_placement, int nm) {
  if (local_placement || num_nodes <= 1) {
    return 0;
  }
  uint64_t per_wave = 0;
  for (const partition::StageAssignment& stage : partition.stages) {
    const uint64_t local = stage.param_bytes / static_cast<uint64_t>(num_nodes);
    // Push the update and pull the fresh weights once per wave.
    per_wave += 2 * (stage.param_bytes - local);
  }
  return per_wave / static_cast<uint64_t>(nm > 0 ? nm : 1);
}

}  // namespace hetpipe::dp
