#include "dp/decentralized.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hetpipe::dp {

std::string DecentralizedResult::ToString() const {
  std::ostringstream os;
  if (!feasible) {
    os << "infeasible (model fits no GPU)";
    return os.str();
  }
  os << num_workers << " workers, pairwise comm " << avg_pairwise_comm_s * 1e3 << " ms, "
     << throughput_img_s << " img/s";
  return os.str();
}

DecentralizedResult SimulateAdPsgd(const hw::Cluster& cluster,
                                   const model::ModelProfile& profile,
                                   const DecentralizedOptions& options) {
  DecentralizedResult result;

  std::vector<int> workers;
  for (const hw::Gpu& gpu : cluster.gpus()) {
    if (partition::FitsOnSingleGpu(profile, gpu.type, options.mem_params)) {
      workers.push_back(gpu.id);
    } else {
      ++result.num_excluded;
    }
  }
  if (workers.empty()) {
    return result;
  }
  result.feasible = true;
  result.num_workers = static_cast<int>(workers.size());

  // A random peer is on another node with probability ~ (N - g)/(N - 1) for
  // g workers per node; weight it between the PCIe and Infiniband exchange.
  const uint64_t params = profile.graph().total_param_bytes();
  const double n = static_cast<double>(result.num_workers);

  double sum_rate = 0.0;
  double sum_comm = 0.0;
  for (int id : workers) {
    int same_node = 0;
    for (int other : workers) {
      same_node += (other != id && cluster.SameNode(id, other)) ? 1 : 0;
    }
    const double p_local = n > 1.0 ? same_node / (n - 1.0) : 0.0;
    // Exchange both directions: 2x params over the chosen link.
    const int node = cluster.gpu(id).node;
    double cross_s = 0.0;
    if (cluster.UniformFabric()) {
      // Uniform fabric: every cross-node peer costs the same shared inter
      // link, so the historical single-term expression is exact; keeping it
      // keeps uniform-fabric results bit-identical to pre-topology releases.
      cross_s = cluster.WorstInterTransferTimeFrom(node, 2 * params);
    } else {
      // Rack topology / link overrides: gossip peers are the *actual* other
      // workers, so average the exchange over their nodes' resolved pair
      // links — a peer behind a degraded cross-rack link costs what that
      // link charges, and degrading a pair no worker touches changes
      // nothing.
      int cross_peers = 0;
      for (int other : workers) {
        if (other == id || cluster.SameNode(id, other)) continue;
        cross_s += cluster.LinkBetweenNodes(node, cluster.gpu(other).node)
                       .TransferTime(2 * params);
        ++cross_peers;
      }
      cross_s = cross_peers > 0 ? cross_s / cross_peers : 0.0;
    }
    const double comm =
        p_local * cluster.pcie().TransferTime(2 * params) + (1.0 - p_local) * cross_s;
    const double exposed = comm * (1.0 - options.comm_overlap);
    const double compute = profile.FullModelTime(cluster.gpu(id).type);
    sum_rate += profile.batch_size() / (compute + exposed);
    sum_comm += comm;
  }
  result.throughput_img_s = sum_rate;
  result.avg_pairwise_comm_s = sum_comm / n;
  // Gossip averaging mixes information in O(log N) rounds; until then other
  // workers' updates are effectively missing.
  result.expected_staleness = (n - 1.0) * std::log2(std::max(2.0, n));
  return result;
}

}  // namespace hetpipe::dp
