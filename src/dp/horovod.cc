#include "dp/horovod.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "dp/allreduce.h"

namespace hetpipe::dp {

std::string HorovodResult::ToString() const {
  std::ostringstream os;
  if (!feasible) {
    os << "infeasible (model fits no GPU)";
    return os.str();
  }
  os << worker_gpus.size() << " workers";
  if (num_excluded > 0) {
    os << " (" << num_excluded << " GPUs excluded: model too large)";
  }
  os << ", compute " << compute_s * 1e3 << " ms, allreduce " << allreduce_s * 1e3
     << " ms (exposed " << exposed_comm_s * 1e3 << " ms), " << throughput_img_s << " img/s";
  return os.str();
}

HorovodResult SimulateHorovod(const hw::Cluster& cluster, const model::ModelProfile& profile,
                              const HorovodOptions& options) {
  HorovodResult result;

  for (const hw::Gpu& gpu : cluster.gpus()) {
    if (partition::FitsOnSingleGpu(profile, gpu.type, options.mem_params)) {
      result.worker_gpus.push_back(gpu.id);
    } else {
      ++result.num_excluded;
    }
  }
  if (result.worker_gpus.empty()) {
    return result;
  }
  result.feasible = true;

  // BSP: every iteration waits for the slowest replica.
  std::map<int, int> workers_per_node;
  for (int id : result.worker_gpus) {
    result.compute_s = std::max(result.compute_s, profile.FullModelTime(cluster.gpu(id).type));
    ++workers_per_node[cluster.gpu(id).node];
  }

  const bool multi_node = workers_per_node.size() > 1;
  // Ring bottleneck: the most contended fabric on the ring. For a multi-node
  // ring that is a node NIC shared by all of that node's workers; for a
  // single-node ring it is the PCIe fabric.
  int max_workers_on_node = 0;
  for (const auto& [node, count] : workers_per_node) {
    max_workers_on_node = std::max(max_workers_on_node, count);
  }
  double bottleneck_bps = 0.0;
  double overlap = 0.0;
  if (multi_node) {
    bottleneck_bps = SharedFabricBandwidth(options.inter_node_fabric_bps, max_workers_on_node,
                                           options.inter_node_efficiency);
    overlap = options.inter_node_overlap;
  } else {
    bottleneck_bps = SharedFabricBandwidth(options.intra_node_fabric_bps, max_workers_on_node,
                                           options.intra_node_efficiency);
    overlap = options.intra_node_overlap;
  }

  RingAllReduceParams ar;
  ar.num_workers = static_cast<int>(result.worker_gpus.size());
  ar.bytes = profile.graph().total_param_bytes();
  ar.bottleneck_bps = bottleneck_bps;
  ar.per_step_latency_s = multi_node ? 30e-6 : 10e-6;
  result.allreduce_s = RingAllReduceTime(ar);

  result.exposed_comm_s = std::max(0.0, result.allreduce_s - overlap * result.compute_s);
  result.iteration_s = result.compute_s + result.exposed_comm_s;
  result.throughput_img_s = static_cast<double>(result.worker_gpus.size()) *
                            profile.batch_size() / result.iteration_s;
  return result;
}

}  // namespace hetpipe::dp
