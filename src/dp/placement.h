#pragma once

#include <cstdint>

#include "hw/cluster.h"
#include "partition/partitioner.h"

namespace hetpipe::dp {

// Cross-node traffic accounting backing the §8.3 comparison ("the amount of
// data transferred across the nodes with ED-local (103MB) is much smaller
// than that with Horovod (515MB)").

// Inter-node bytes one Horovod worker contributes per iteration: a ring
// AllReduce moves (N-1)/N of the gradient bytes through each worker per
// direction (the paper's accounting counts one direction).
uint64_t HorovodCrossNodeBytes(uint64_t param_bytes, int num_workers);

// Inter-node activation + gradient bytes one virtual worker moves per
// minibatch: every stage boundary whose two stages sit on different nodes
// carries the boundary activations forward and a same-sized gradient back.
uint64_t ActivationCrossNodeBytes(const partition::Partition& partition,
                                  const model::ModelProfile& profile);

// The same activation + gradient traffic split by link tier, for rack-aware
// accounting: intra-node (PCIe-class), cross-node within one rack, and
// cross-rack. On a cluster without rack structure every cross-node byte
// counts as same-rack, so same_rack_bytes + cross_rack_bytes ==
// ActivationCrossNodeBytes always.
struct ActivationTraffic {
  uint64_t intra_node_bytes = 0;
  uint64_t same_rack_bytes = 0;   // cross-node, same rack
  uint64_t cross_rack_bytes = 0;  // cross-node, different racks
};
ActivationTraffic ActivationTrafficByTier(const partition::Partition& partition,
                                          const model::ModelProfile& profile,
                                          const hw::Cluster& cluster);

// Inter-node parameter-synchronization bytes per *minibatch* for a virtual
// worker under PS placement: round-robin placement pushes+pulls the remote
// fraction of every stage's parameters once per wave (amortized over Nm
// minibatches); local placement moves nothing across nodes.
uint64_t PsCrossNodeBytesPerMinibatch(const partition::Partition& partition, int num_nodes,
                                      bool local_placement, int nm);

}  // namespace hetpipe::dp
