#include "dp/allreduce.h"

namespace hetpipe::dp {

double RingAllReduceTime(const RingAllReduceParams& params) {
  if (params.num_workers <= 1 || params.bytes == 0) {
    return 0.0;
  }
  const double n = static_cast<double>(params.num_workers);
  const double steps = 2.0 * (n - 1.0);
  const double volume = steps / n * static_cast<double>(params.bytes);
  return volume / params.bottleneck_bps + steps * params.per_step_latency_s;
}

double SharedFabricBandwidth(double fabric_bps, int workers_on_node, double efficiency) {
  if (workers_on_node < 1) {
    workers_on_node = 1;
  }
  return fabric_bps * efficiency / static_cast<double>(workers_on_node);
}

}  // namespace hetpipe::dp
