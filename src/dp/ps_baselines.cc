#include "dp/ps_baselines.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace hetpipe::dp {

std::string PsDpResult::ToString() const {
  std::ostringstream os;
  if (!feasible) {
    os << "infeasible (model fits no GPU)";
    return os.str();
  }
  os << num_workers << " workers, compute " << slowest_compute_s * 1e3 << " ms, PS comm "
     << comm_s * 1e3 << " ms, sync " << sync_overhead_s * 1e3 << " ms, " << throughput_img_s
     << " img/s";
  return os.str();
}

PsDpResult SimulatePsDataParallel(const hw::Cluster& cluster,
                                  const model::ModelProfile& profile,
                                  const PsDpOptions& options) {
  PsDpResult result;

  std::vector<int> workers;
  for (const hw::Gpu& gpu : cluster.gpus()) {
    if (partition::FitsOnSingleGpu(profile, gpu.type, options.mem_params)) {
      workers.push_back(gpu.id);
    } else {
      ++result.num_excluded;
    }
  }
  if (workers.empty()) {
    return result;
  }
  result.feasible = true;
  result.num_workers = static_cast<int>(workers.size());

  // Per-worker compute and PS traffic. Parameters are sharded round-robin
  // over the nodes: 1/H stays local (PCIe), the rest crosses the node NIC,
  // which every worker on the node shares.
  const uint64_t params = profile.graph().total_param_bytes();
  const int num_nodes = cluster.num_nodes();
  std::map<int, int> workers_per_node;
  for (int id : workers) {
    ++workers_per_node[cluster.gpu(id).node];
  }

  double min_compute = 1e30;
  double sum_rate_asp = 0.0;
  double worst_iteration = 0.0;
  for (int id : workers) {
    const double compute = profile.FullModelTime(cluster.gpu(id).type);
    result.slowest_compute_s = std::max(result.slowest_compute_s, compute);
    min_compute = std::min(min_compute, compute);

    const uint64_t local = 2 * params / static_cast<uint64_t>(num_nodes);
    const uint64_t remote = 2 * params - local;
    const int node = cluster.gpu(id).node;
    const int sharing = workers_per_node[node];
    double inter_s = 0.0;
    if (cluster.UniformFabric() || num_nodes <= 1) {
      // Uniform fabric: every destination uses the one shared inter link, and
      // the historical aggregate formula is exact. Kept as the literal
      // expression (not the per-destination sum below, whose float additions
      // associate differently) so uniform-fabric results stay bit-identical
      // to every release before per-pair links existed.
      inter_s = cluster.WorstInterTransferTimeFrom(node, remote);
    } else {
      // Rack topology / link overrides: the remote shards live one per other
      // node, so price each destination over its actual resolved pair link.
      // Shards are the round-robin split of `remote` with the remainder
      // spread over the first destinations in node order.
      const uint64_t destinations = static_cast<uint64_t>(num_nodes - 1);
      const uint64_t base = remote / destinations;
      uint64_t extra = remote % destinations;
      for (int dest = 0; dest < num_nodes; ++dest) {
        if (dest == node) continue;
        const uint64_t shard = base + (extra > 0 ? 1 : 0);
        if (extra > 0) --extra;
        inter_s += cluster.LinkBetweenNodes(node, dest).TransferTime(shard);
      }
    }
    // The node's workers share its NIC, local shards move over PCIe.
    const double comm = cluster.pcie().TransferTime(local) + inter_s * sharing;
    result.comm_s = std::max(result.comm_s, comm);
    sum_rate_asp += profile.batch_size() / (compute + comm);
    worst_iteration = std::max(worst_iteration, compute + comm);
  }

  // Straggler noise: BSP pays the expected maximum of N iid per-iteration
  // deviations every iteration; SSP amortizes it over its slack window of
  // s iterations; ASP pays none.
  const double n = static_cast<double>(result.num_workers);
  const double max_noise = options.noise_cv * result.slowest_compute_s *
                           std::sqrt(2.0 * std::log(std::max(2.0, n)));
  switch (options.mode) {
    case PsSyncMode::kBsp:
      result.sync_overhead_s = max_noise;
      result.expected_staleness = 0.0;
      break;
    case PsSyncMode::kSsp:
      result.sync_overhead_s = max_noise / static_cast<double>(options.staleness + 1);
      // Each gradient misses on average ~s/2 updates from each other worker.
      result.expected_staleness = (n - 1.0) * (0.5 + options.staleness / 2.0);
      break;
    case PsSyncMode::kAsp:
      result.sync_overhead_s = 0.0;
      // Unbounded in theory; in steady state the lag tracks the rate spread.
      result.expected_staleness = (n - 1.0) * (result.slowest_compute_s / min_compute);
      break;
  }

  if (options.mode == PsSyncMode::kAsp) {
    result.throughput_img_s = sum_rate_asp;
  } else {
    // Bounded clock distance: every worker advances at the gated rate.
    const double iteration = worst_iteration + result.sync_overhead_s;
    result.throughput_img_s = n * profile.batch_size() / iteration;
  }
  return result;
}

}  // namespace hetpipe::dp
