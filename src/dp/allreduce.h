#pragma once

#include <cstdint>

namespace hetpipe::dp {

// Cost model of bandwidth-optimal ring AllReduce (Patarasuk & Yuan), the
// collective Horovod uses: each of N workers sends 2*(N-1) chunks of
// `bytes`/N, so on a ring whose slowest per-worker segment sustains
// `bottleneck_bps` the transfer takes 2*(N-1)/N * bytes / bottleneck_bps,
// plus per-step latency.
struct RingAllReduceParams {
  int num_workers = 1;
  uint64_t bytes = 0;
  double bottleneck_bps = 1.0;    // slowest per-worker segment bandwidth
  double per_step_latency_s = 0;  // latency paid on each of the 2(N-1) steps
};

double RingAllReduceTime(const RingAllReduceParams& params);

// Effective per-worker ring-segment bandwidth when `workers_on_node` ring
// members share one node NIC / PCIe fabric of raw bandwidth `fabric_bps`,
// discounted by `efficiency` (protocol + framework overhead; calibrated in
// horovod.cc).
double SharedFabricBandwidth(double fabric_bps, int workers_on_node, double efficiency);

}  // namespace hetpipe::dp
