#pragma once

#include <string>
#include <vector>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "partition/memory_model.h"

namespace hetpipe::dp {

struct HorovodOptions {
  // Fraction of the AllReduce hidden under backprop. Horovod overlaps
  // tensor-fused reductions with the tail of the backward pass; the paper's
  // TF 1.12 setup achieves partial overlap inter-node and effectively none
  // for a single-node PCIe ring (calibrated against Table 4).
  double inter_node_overlap = 0.4;
  double intra_node_overlap = 0.0;
  // Protocol/framework efficiency applied to the shared fabric bandwidth.
  double inter_node_efficiency = 0.49;
  double intra_node_efficiency = 0.40;
  // Raw fabric bandwidths for the AllReduce. Horovod's NCCL-style collectives
  // bypass the TensorFlow runtime and use IB verbs / CUDA IPC, so they see
  // near-line-rate fabric bandwidth — unlike the gRPC transport modeled by
  // hw::InfinibandLink that the pipeline's activation/PS traffic uses.
  double inter_node_fabric_bps = 56.0 / 8.0 * 1e9;  // 56 Gbps Infiniband
  double intra_node_fabric_bps = 15.75e9;           // PCIe 3.0 x16
  partition::StageMemoryParams mem_params;
};

// Result of the Horovod-style BSP data-parallel baseline (§8.1's "DP via
// Horovod that uses AllReduce communication").
struct HorovodResult {
  bool feasible = false;        // at least one GPU fits the model
  std::vector<int> worker_gpus; // GPUs that fit the model and participate
  int num_excluded = 0;         // GPUs whose memory the model exceeds
  double compute_s = 0.0;       // slowest worker's minibatch time (BSP barrier)
  double allreduce_s = 0.0;     // full ring AllReduce of the gradients
  double exposed_comm_s = 0.0;  // AllReduce not hidden under compute
  double iteration_s = 0.0;
  double throughput_img_s = 0.0;

  std::string ToString() const;
};

// Simulates synchronous data parallelism over every GPU of `cluster` that can
// hold the whole model (ResNet-152 at batch 32 does not fit the 6 GiB
// RTX 2060, so those GPUs are excluded, reproducing the paper's "Horovod uses
// only 12 GPUs"). Iteration time = max worker compute (stragglers!) +
// exposed ring-AllReduce time.
HorovodResult SimulateHorovod(const hw::Cluster& cluster, const model::ModelProfile& profile,
                              const HorovodOptions& options = {});

}  // namespace hetpipe::dp
