#pragma once

#include <string>

#include "hw/cluster.h"
#include "model/profiler.h"
#include "partition/memory_model.h"

namespace hetpipe::dp {

// AD-PSGD-style decentralized data parallelism (Lian et al., discussed in the
// paper's §9): no parameter server — after each minibatch a worker averages
// its weights with one randomly chosen neighbor and keeps going, so fast
// workers are never blocked. The paper positions this as orthogonal/future
// work for when the PS becomes a bottleneck; the model here provides the
// comparison point.
struct DecentralizedOptions {
  // Fraction of the pairwise exchange overlapped with compute (gossip can be
  // fully asynchronous; some serialization remains at the endpoints).
  double comm_overlap = 0.5;
  partition::StageMemoryParams mem_params;
};

struct DecentralizedResult {
  bool feasible = false;
  int num_workers = 0;
  int num_excluded = 0;
  double throughput_img_s = 0.0;
  double avg_pairwise_comm_s = 0.0;
  // Neighbor-averaging acts like staleness ~ mixing time of the gossip graph.
  double expected_staleness = 0.0;

  std::string ToString() const;
};

// Every GPU that fits the model is a worker; each iteration costs its own
// compute plus the exposed part of one pairwise weight exchange (weights up
// and down over the link to a random peer, usually across Infiniband).
DecentralizedResult SimulateAdPsgd(const hw::Cluster& cluster,
                                   const model::ModelProfile& profile,
                                   const DecentralizedOptions& options = {});

}  // namespace hetpipe::dp
