#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

// Annotatable wrappers around the standard mutexes. The standard types carry
// no capability attributes, so Clang's thread-safety analysis cannot see
// them; these wrappers are zero-overhead (every method is a single inlined
// forwarding call) and make GUARDED_BY / REQUIRES contracts checkable at
// compile time. House rule (enforced by scripts/lint.sh): concurrent
// subsystems use util::Mutex / util::SharedMutex, not raw std::mutex, so the
// analysis covers them.
//
// Condition-variable waits use explicit loops, not predicates:
//
//   util::MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(lock);
//
// because a predicate lambda is a separate function to the analysis — it
// cannot see that the lambda runs with the lock held, so guarded reads
// inside it would (falsely) warn. The explicit loop reads guarded state in a
// scope where the capability is provably held, and is exactly the loop the
// predicate overload expands to anyway.

namespace hetpipe::util {

class CondVar;

// std::mutex as a Clang capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// std::shared_mutex as a Clang capability: exclusive writers, concurrent
// readers.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

// std::lock_guard-shaped RAII for Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

// Exclusive RAII for SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~WriterMutexLock() RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Shared (reader) RAII for SharedMutex. The destructor's contract is
// RELEASE_GENERIC because the capability is held in shared mode.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() RELEASE_GENERIC() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// std::condition_variable over util::Mutex. Wait relocks before returning, so
// from the analysis's point of view (and the caller's) the capability is held
// continuously across the wait — which is the invariant that matters: guarded
// state may be read immediately after Wait returns. Taking the MutexLock (not
// the Mutex) makes holding the lock a structural precondition; the methods
// carry no REQUIRES attribute because the analysis cannot prove that the
// caller's capability and the lock's stored reference alias.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's MutexLock still owns the mutex
  }

  // Returns false on timeout (like wait_for's cv_status::timeout).
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock, const std::chrono::duration<Rep, Period>& timeout) {
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hetpipe::util
