#pragma once

#include <cstdint>
#include <cstring>
#include <string>

// Little-endian binary (de)serialization primitives shared by every on-disk
// format in the tree (runner::PartitionCache, store::ExtentWriter/Reader):
// appenders onto a std::string, a bounds-checked Cursor that degrades to
// "not ok" instead of reading past the end, and the FNV-1a fingerprint used
// both for structural cache keys and file checksums. Keeping one copy means
// a hardening fix (e.g. a new overflow check in the cursor) reaches every
// format at once.
namespace hetpipe::util {

// FNV-1a, the usual choice for cheap structural fingerprints and
// corruption-detection checksums (not cryptographic).
class Fnv1a {
 public:
  void MixByte(unsigned char b) { hash_ = (hash_ ^ b) * 0x100000001b3ULL; }
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      MixByte(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }
  }
  void Mix(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
  void Mix(const std::string& s) {
    for (char c : s) {
      MixByte(static_cast<unsigned char>(c));
    }
    Mix(static_cast<uint64_t>(s.size()));
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

inline uint64_t Fnv1aBytes(const char* data, size_t size) {
  Fnv1a fp;
  for (size_t i = 0; i < size; ++i) {
    fp.MixByte(static_cast<unsigned char>(data[i]));
  }
  return fp.value();
}

// ---- Appenders. Scalars are written in host byte order; every platform this
// ---- repo targets is little-endian, and the file headers' magic values
// ---- would catch a byte-order mismatch at load time.

inline void PutU8(std::string& out, uint8_t v) { out.push_back(static_cast<char>(v)); }
inline void PutU32(std::string& out, uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutU64(std::string& out, uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutI32(std::string& out, int32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutF64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
inline void PutStr(std::string& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

// Unsigned LEB128; at most 10 bytes for a uint64_t.
inline void PutVarU64(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

// ZigZag so small negative deltas stay short varints.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// Bounds-checked reader; every getter degrades to "not ok" (and a
// zero-initialized value) on underflow instead of reading past the end, so
// callers can decode a whole record and check ok() once.
class Cursor {
 public:
  Cursor(const char* data, size_t size) : p_(data), left_(size) {}

  bool ok() const { return ok_; }
  size_t left() const { return left_; }

  template <typename T>
  T Get() {
    T v{};
    if (!Take(sizeof(T))) {
      return v;
    }
    std::memcpy(&v, p_ - sizeof(T), sizeof(T));
    return v;
  }

  std::string GetStr() {
    const uint32_t n = Get<uint32_t>();
    if (!Take(n)) {
      return std::string();
    }
    return std::string(p_ - n, n);
  }

  uint64_t GetVarU64() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (!Take(1)) {
        return 0;
      }
      const unsigned char b = static_cast<unsigned char>(*(p_ - 1));
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) {
        return v;
      }
    }
    ok_ = false;  // 10th continuation byte: not a valid uint64_t varint
    return 0;
  }

  // Raw view of the next n bytes (nullptr + !ok() on underflow).
  const char* GetBytes(size_t n) {
    if (!Take(n)) {
      return nullptr;
    }
    return p_ - n;
  }

 private:
  bool Take(size_t n) {
    if (!ok_ || n > left_) {
      ok_ = false;
      return false;
    }
    p_ += n;
    left_ -= n;
    return true;
  }

  const char* p_;
  size_t left_;
  bool ok_ = true;
};

}  // namespace hetpipe::util
