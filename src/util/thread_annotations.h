#pragma once

// Clang thread-safety-analysis attribute macros, following the naming of
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html. Under Clang with
// -Wthread-safety (on for clang builds, see CMakeLists.txt) the compiler
// statically checks that every GUARDED_BY member is only touched with its
// capability held and that ACQUIRE/RELEASE contracts balance; everywhere
// else (GCC, MSVC) the macros expand to nothing, so annotated code costs
// zero and compiles identically.
//
// Use through the annotatable wrapper types in util/mutex.h — std::mutex and
// std::shared_mutex themselves carry no capability attributes, so raw
// standard-library mutexes are invisible to the analysis.

#if defined(__clang__) && (!defined(SWIG))
#define HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

// On classes: this type is a capability (a mutex-like thing the analysis
// tracks). The string names the capability kind in diagnostics.
#define CAPABILITY(x) HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// On classes: RAII object that acquires a capability in its constructor and
// releases it in its destructor (std::lock_guard-shaped).
#define SCOPED_CAPABILITY HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// On data members: may only be read with the capability held (shared or
// exclusive) and only written with it held exclusively.
#define GUARDED_BY(x) HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// On pointer members: the pointed-to data (not the pointer) is guarded.
#define PT_GUARDED_BY(x) HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// On functions: caller must hold the capability (exclusively / shared).
#define REQUIRES(...) \
  HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// On functions: acquires the capability; caller must not already hold it.
#define ACQUIRE(...) \
  HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

// On functions: releases the capability; caller must hold it. RELEASE_GENERIC
// releases whichever mode (shared or exclusive) is held — the right contract
// for a scoped lock's destructor.
#define RELEASE(...) \
  HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

// On functions: caller must NOT hold the capability (deadlock guard for
// functions that acquire it themselves).
#define EXCLUDES(...) HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// On functions returning a reference to a capability.
#define RETURN_CAPABILITY(x) HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use should say
// why in a comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  HETPIPE_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
