#include "store/extent_reader.h"

#include "util/binary_io.h"

namespace hetpipe::store {
namespace {

using runner::ResultRow;
using runner::ValueType;

bool BitAt(const char* bitmap, size_t index) {
  return (static_cast<unsigned char>(bitmap[index / 8]) >> (index % 8)) & 1u;
}

}  // namespace

runner::ResultRow Extent::Row(size_t r) const {
  ResultRow row;
  for (const ColumnData& column : columns_) {
    if (r >= column.present.size() || column.present[r] == 0) {
      continue;
    }
    switch (column.column.type) {
      case ValueType::kBool:
        row.Set(column.column.name, column.bools[r] != 0);
        break;
      case ValueType::kInt64:
        row.Set(column.column.name, column.ints[r]);
        break;
      case ValueType::kDouble:
        row.Set(column.column.name, column.doubles[r]);
        break;
      case ValueType::kString:
        row.Set(column.column.name, column.strings[r]);
        break;
    }
  }
  return row;
}

std::unique_ptr<ExtentReader> ExtentReader::Open(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return nullptr;
  }
  char header[12];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    if (error != nullptr) {
      *error = path + ": truncated header (not a .hds file?)";
    }
    return nullptr;
  }
  util::Cursor cursor(header, sizeof(header));
  const uint32_t magic = cursor.Get<uint32_t>();
  const uint32_t version = cursor.Get<uint32_t>();
  const uint32_t flags = cursor.Get<uint32_t>();
  if (magic != kStoreMagic) {
    if (error != nullptr) {
      *error = path + ": bad magic (not a .hds file)";
    }
    return nullptr;
  }
  if (version != kStoreVersion) {
    if (error != nullptr) {
      *error = path + ": unsupported store version " + std::to_string(version);
    }
    return nullptr;
  }
  if (flags != 0) {
    if (error != nullptr) {
      *error = path + ": unsupported store flags " + std::to_string(flags);
    }
    return nullptr;
  }
  return std::unique_ptr<ExtentReader>(new ExtentReader(path, std::move(in)));
}

ExtentReader::Next ExtentReader::Fail(std::string* error, const std::string& message) {
  done_ = true;
  if (error != nullptr) {
    *error = path_ + ": " + message;
  }
  return Next::kError;
}

ExtentReader::Next ExtentReader::Read(Extent* extent, std::string* error) {
  if (done_) {
    return Fail(error, "Read past the end of the file");
  }

  char marker_bytes[4];
  in_.read(marker_bytes, sizeof(marker_bytes));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(marker_bytes))) {
    return Fail(error, "truncated: missing trailer (file not finalized?)");
  }
  uint32_t marker = 0;
  std::memcpy(&marker, marker_bytes, sizeof(marker));

  if (marker == kTrailerMarker) {
    char buf[24];
    in_.read(buf, sizeof(buf));
    if (in_.gcount() != static_cast<std::streamsize>(sizeof(buf))) {
      return Fail(error, "truncated trailer");
    }
    util::Cursor cursor(buf, sizeof(buf));
    const uint64_t rows = cursor.Get<uint64_t>();
    const uint64_t extents = cursor.Get<uint64_t>();
    const uint64_t checksum = cursor.Get<uint64_t>();
    if (util::Fnv1aBytes(buf, 16) != checksum) {
      return Fail(error, "trailer checksum mismatch");
    }
    if (rows != static_cast<uint64_t>(rows_seen_) ||
        extents != static_cast<uint64_t>(extents_seen_)) {
      return Fail(error, "trailer totals disagree with the extents read (" +
                             std::to_string(rows) + " rows / " + std::to_string(extents) +
                             " extents recorded, " + std::to_string(rows_seen_) + " / " +
                             std::to_string(extents_seen_) + " decoded)");
    }
    if (in_.peek() != std::ifstream::traits_type::eof()) {
      return Fail(error, "trailing bytes after the trailer");
    }
    total_rows_ = static_cast<int64_t>(rows);
    total_extents_ = static_cast<int64_t>(extents);
    done_ = true;
    return Next::kEnd;
  }

  if (marker != kExtentMarker) {
    return Fail(error, "bad extent marker");
  }
  char frame[12];
  in_.read(frame, sizeof(frame));
  if (in_.gcount() != static_cast<std::streamsize>(sizeof(frame))) {
    return Fail(error, "truncated extent frame");
  }
  util::Cursor frame_cursor(frame, sizeof(frame));
  const uint32_t payload_size = frame_cursor.Get<uint32_t>();
  const uint64_t checksum = frame_cursor.Get<uint64_t>();
  if (payload_size > kMaxExtentPayloadBytes) {
    return Fail(error, "extent payload size " + std::to_string(payload_size) + " exceeds limit");
  }
  std::string payload(payload_size, '\0');
  in_.read(&payload[0], static_cast<std::streamsize>(payload_size));
  if (in_.gcount() != static_cast<std::streamsize>(payload_size)) {
    return Fail(error, "truncated extent payload");
  }
  if (util::Fnv1aBytes(payload.data(), payload.size()) != checksum) {
    return Fail(error, "extent checksum mismatch");
  }
  std::string decode_error;
  if (!DecodeExtent(payload, extent, &decode_error)) {
    return Fail(error, decode_error);
  }
  ++extents_seen_;
  rows_seen_ += static_cast<int64_t>(extent->num_rows());
  return Next::kExtent;
}

bool ExtentReader::DecodeExtent(const std::string& payload, Extent* extent, std::string* error) {
  extent->columns_.clear();
  extent->num_rows_ = 0;
  util::Cursor cursor(payload.data(), payload.size());

  const uint32_t num_columns = cursor.Get<uint32_t>();
  std::vector<runner::Column> columns;
  for (uint32_t c = 0; c < num_columns && cursor.ok(); ++c) {
    runner::Column column;
    column.name = cursor.GetStr();
    const uint8_t type = cursor.Get<uint8_t>();
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      *error = "unknown column type " + std::to_string(type);
      return false;
    }
    column.type = static_cast<ValueType>(type);
    columns.push_back(column);
  }
  const uint32_t num_rows = cursor.Get<uint32_t>();
  if (!cursor.ok()) {
    *error = "extent schema underflow";
    return false;
  }
  if (num_rows > kMaxRowsPerExtent) {
    *error = "extent row count " + std::to_string(num_rows) + " exceeds limit";
    return false;
  }
  const size_t bitmap_bytes = (static_cast<size_t>(num_rows) + 7) / 8;

  extent->num_rows_ = num_rows;
  extent->columns_.reserve(columns.size());
  for (const runner::Column& column : columns) {
    ColumnData data;
    data.column = column;
    const char* bitmap = cursor.GetBytes(bitmap_bytes);
    const uint8_t encoding_byte = cursor.Get<uint8_t>();
    const uint32_t encoded_size = cursor.Get<uint32_t>();
    const char* encoded = cursor.GetBytes(encoded_size);
    if (!cursor.ok()) {
      *error = "column \"" + column.name + "\" underflow";
      return false;
    }
    data.present.assign(num_rows, 0);
    size_t present_count = 0;
    for (uint32_t r = 0; r < num_rows; ++r) {
      if (BitAt(bitmap, r)) {
        data.present[r] = 1;
        ++present_count;
      }
    }

    util::Cursor values(encoded, encoded_size);
    const ColumnEncoding encoding = static_cast<ColumnEncoding>(encoding_byte);
    bool encoding_fits_type = false;
    switch (column.type) {
      case ValueType::kBool:
        encoding_fits_type = encoding == ColumnEncoding::kBoolBitmap;
        break;
      case ValueType::kInt64:
        encoding_fits_type = encoding == ColumnEncoding::kInt64ZigZag;
        break;
      case ValueType::kDouble:
        encoding_fits_type = encoding == ColumnEncoding::kDoubleRaw;
        break;
      case ValueType::kString:
        encoding_fits_type =
            encoding == ColumnEncoding::kStringRaw || encoding == ColumnEncoding::kStringDict;
        break;
    }
    if (!encoding_fits_type) {
      *error = "column \"" + column.name + "\" has encoding " + std::to_string(encoding_byte) +
               ", which does not fit its type";
      return false;
    }

    switch (encoding) {
      case ColumnEncoding::kBoolBitmap: {
        if (encoded_size != bitmap_bytes) {
          *error = "column \"" + column.name + "\" bool bitmap has the wrong size";
          return false;
        }
        const char* bits = values.GetBytes(encoded_size);
        data.bools.assign(num_rows, 0);
        for (uint32_t r = 0; r < num_rows; ++r) {
          data.bools[r] = BitAt(bits, r) ? 1 : 0;
        }
        break;
      }
      case ColumnEncoding::kInt64ZigZag: {
        data.ints.assign(num_rows, 0);
        uint64_t prev = 0;
        for (uint32_t r = 0; r < num_rows; ++r) {
          if (data.present[r] == 0) {
            continue;
          }
          const uint64_t delta = static_cast<uint64_t>(util::ZigZagDecode(values.GetVarU64()));
          prev += delta;  // mod 2^64, mirroring the writer's wrapping delta
          data.ints[r] = static_cast<int64_t>(prev);
        }
        break;
      }
      case ColumnEncoding::kDoubleRaw: {
        if (encoded_size != present_count * sizeof(double)) {
          *error = "column \"" + column.name + "\" double data has the wrong size";
          return false;
        }
        data.doubles.assign(num_rows, 0.0);
        for (uint32_t r = 0; r < num_rows; ++r) {
          if (data.present[r] != 0) {
            data.doubles[r] = values.Get<double>();
          }
        }
        break;
      }
      case ColumnEncoding::kStringRaw: {
        data.strings.assign(num_rows, std::string());
        for (uint32_t r = 0; r < num_rows; ++r) {
          if (data.present[r] != 0) {
            data.strings[r] = values.GetStr();
          }
        }
        break;
      }
      case ColumnEncoding::kStringDict: {
        const uint32_t dict_size = values.Get<uint32_t>();
        if (dict_size > encoded_size) {  // each entry costs >= 4 bytes; cheap sanity cap
          *error = "column \"" + column.name + "\" dictionary size is corrupt";
          return false;
        }
        std::vector<std::string> dict;
        dict.reserve(dict_size);
        for (uint32_t i = 0; i < dict_size && values.ok(); ++i) {
          dict.push_back(values.GetStr());
        }
        data.strings.assign(num_rows, std::string());
        for (uint32_t r = 0; r < num_rows; ++r) {
          if (data.present[r] == 0) {
            continue;
          }
          const uint64_t index = values.GetVarU64();
          if (index >= dict.size()) {
            *error = "column \"" + column.name + "\" dictionary index out of range";
            return false;
          }
          data.strings[r] = dict[index];
        }
        break;
      }
      default:
        *error = "column \"" + column.name + "\" has unknown encoding " +
                 std::to_string(encoding_byte);
        return false;
    }
    if (!values.ok()) {
      *error = "column \"" + column.name + "\" value data underflow";
      return false;
    }
    if (values.left() != 0) {
      *error = "column \"" + column.name + "\" has trailing value bytes";
      return false;
    }
    extent->columns_.push_back(std::move(data));
  }
  if (!cursor.ok()) {
    *error = "extent underflow";
    return false;
  }
  if (cursor.left() != 0) {
    *error = "trailing bytes in extent payload";
    return false;
  }
  return true;
}

bool ReadAllRows(const std::string& path, std::vector<runner::ResultRow>* rows,
                 std::string* error) {
  std::unique_ptr<ExtentReader> reader = ExtentReader::Open(path, error);
  if (reader == nullptr) {
    return false;
  }
  Extent extent;
  while (true) {
    switch (reader->Read(&extent, error)) {
      case ExtentReader::Next::kExtent:
        for (size_t r = 0; r < extent.num_rows(); ++r) {
          rows->push_back(extent.Row(r));
        }
        break;
      case ExtentReader::Next::kEnd:
        return true;
      case ExtentReader::Next::kError:
        return false;
    }
  }
}

}  // namespace hetpipe::store
