#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "runner/result_sink.h"
#include "runner/schema.h"

namespace hetpipe::store {

// ---- The .hds ("hetpipe data store") columnar result format ----
//
// A sweep's rows as a sequence of typed, independently-checksummed extents,
// modeled on DataSeries (Anderson, FAST '09): instead of re-rendering every
// key string per row the way JSONL does, rows are buffered, transposed into
// per-column vectors, and written as compact typed blocks. Layout (all
// little-endian, via util/binary_io.h):
//
//   file   := header extent* trailer
//   header := u32 magic "HDS1" | u32 version | u32 flags (must be 0)
//   extent := u32 extent-marker | u32 payload_size | u64 fnv1a(payload)
//             | payload
//   payload:= u32 ncols { str name | u8 ValueType } * ncols
//             u32 nrows
//             { null bitmap ceil(nrows/8) | u8 encoding | u32 enc_size
//               | enc_size bytes } * ncols
//   trailer:= u32 trailer-marker | u64 total_rows | u64 total_extents
//             | u64 fnv1a(total_rows || total_extents)
//
// Each extent carries its own schema snapshot, so the schema can evolve
// mid-file (runner::Schema's evolution policy: first-seen column order,
// int64->double promotion); rows written before a column existed read back
// as nulls. Column encodings do the compression — the null bitmap plus:
//
//   kBoolBitmap     row-aligned bit per row (nulls are 0 bits)
//   kInt64ZigZag    zigzag varint of the delta vs the previous present value
//   kDoubleRaw      8 raw bytes per present value
//   kStringRaw      length-prefixed bytes per present value
//   kStringDict     u32 dict size, dict strings, varint index per present
//                   value (chosen whenever any string repeats)
//
// Append is streaming: a full extent is flushed to disk and dropped from
// memory, so a million-row sweep never holds more than one extent. The file
// is written as `path + ".tmp"` and renamed onto `path` by Finalize() — the
// same crash-safe pattern as PartitionCache::Save — so a crash mid-sweep
// never leaves a half-written file under the final name, and a reader can
// trust that a finalized file ends in its trailer.

constexpr uint32_t kStoreMagic = 0x31534448;  // "HDS1"
constexpr uint32_t kStoreVersion = 1;
constexpr uint32_t kExtentMarker = 0x544e5458;  // "XTNT"
constexpr uint32_t kTrailerMarker = 0x444e4558;  // "XEND"
// An extent payload larger than this is a corrupt length prefix, not data.
constexpr uint32_t kMaxExtentPayloadBytes = 1u << 30;

enum class ColumnEncoding : uint8_t {
  kBoolBitmap = 0,
  kInt64ZigZag = 1,
  kDoubleRaw = 2,
  kStringRaw = 3,
  kStringDict = 4,
};

struct WriterOptions {
  // Approximate uncompressed row bytes buffered before an extent is cut.
  // Bigger extents compress strings better (one dictionary per extent) at
  // the cost of more memory and a coarser scan granularity.
  size_t extent_target_bytes = 64 * 1024;
};

// Streaming writer. Not thread-safe — like every ResultSink, rows arrive
// sequentially from the sweep runner's ordered emit phase.
class ExtentWriter {
 public:
  // Opens `path + ".tmp"` immediately (so an unwritable directory fails
  // loudly at open, not after the sweep); nullptr + `error` on failure.
  static std::unique_ptr<ExtentWriter> Open(const std::string& path, std::string* error,
                                            WriterOptions options = {});
  // Finalizes (with a stderr warning on failure) unless Finalize was called.
  ~ExtentWriter();

  ExtentWriter(const ExtentWriter&) = delete;
  ExtentWriter& operator=(const ExtentWriter&) = delete;

  // Buffers one row; cuts and writes an extent when the buffer reaches the
  // target size. I/O errors are sticky: they surface from Flush/Finalize.
  void Append(const runner::ResultRow& row);

  // Writes any buffered rows as an extent. Mid-stream checkpoint only — the
  // file is not readable until Finalize renames it into place.
  bool Flush(std::string* error);

  // Flushes, writes the trailer, and atomically renames the temp file onto
  // `path`. Idempotent; returns false (and leaves the previous file at
  // `path` untouched) on any I/O failure.
  bool Finalize(std::string* error);

  // Schema accumulated over every appended row (the evolution policy's
  // authoritative copy for this file).
  const runner::Schema& schema() const { return schema_; }
  int64_t rows_appended() const { return total_rows_; }
  int64_t extents_written() const { return total_extents_; }

 private:
  ExtentWriter(std::string path, std::string tmp_path, WriterOptions options);

  bool WriteBufferedExtent(std::string* error);
  void SetFailed(const std::string& message);

  std::string path_;
  std::string tmp_path_;
  WriterOptions options_;
  std::ofstream out_;
  runner::Schema schema_;
  std::vector<runner::ResultRow> buffered_;
  size_t buffered_bytes_ = 0;
  int64_t total_rows_ = 0;
  int64_t total_extents_ = 0;
  bool finalized_ = false;
  bool failed_ = false;
  std::string first_error_;
  // Columns whose values were dropped to null over a type conflict the
  // schema could not absorb, warned once each.
  std::vector<std::string> conflict_warned_;
};

// ResultSink adapter: wires the store into every bench via the sinks the
// sweep runner already writes to (`--out=results.hds`). Finalizes on
// destruction; a finalize failure is a loud stderr warning (the sink API has
// no error channel), and the previous file at `path`, if any, survives.
class StoreSink : public runner::ResultSink {
 public:
  // Fails loudly like BenchArgs::OpenOutput: nullptr + `error` when the
  // temp file cannot be created.
  static std::unique_ptr<StoreSink> Open(const std::string& path, std::string* error,
                                         WriterOptions options = {});
  ~StoreSink() override;

  void Flush() override;
  // Explicit finalization for callers that must observe the error.
  bool Close(std::string* error);

 protected:
  void WriteRow(const runner::ResultRow& row) override;

 private:
  explicit StoreSink(std::unique_ptr<ExtentWriter> writer) : writer_(std::move(writer)) {}
  std::unique_ptr<ExtentWriter> writer_;
  bool closed_ = false;
};

}  // namespace hetpipe::store
