#include "store/extent_writer.h"

#include <cstdio>
#include <unordered_map>

#include "util/binary_io.h"

namespace hetpipe::store {
namespace {

using runner::ResultRow;
using runner::ValueType;

// Rough in-memory footprint of a row, used only to decide when an extent is
// full; never serialized, so the estimate being approximate is harmless.
size_t ApproxRowBytes(const ResultRow& row) {
  size_t bytes = 0;
  for (const auto& [key, value] : row.fields()) {
    bytes += key.size() + 2;
    if (const auto* s = std::get_if<std::string>(&value)) {
      bytes += s->size() + 4;
    } else {
      bytes += 8;
    }
  }
  return bytes;
}

void SetBit(std::string& bitmap, size_t index) {
  bitmap[index / 8] = static_cast<char>(static_cast<unsigned char>(bitmap[index / 8]) |
                                        (1u << (index % 8)));
}

}  // namespace

std::unique_ptr<ExtentWriter> ExtentWriter::Open(const std::string& path, std::string* error,
                                                 WriterOptions options) {
  std::unique_ptr<ExtentWriter> writer(
      new ExtentWriter(path, path + ".tmp", options));
  writer->out_.open(writer->tmp_path_, std::ios::binary | std::ios::trunc);
  if (!writer->out_.is_open()) {
    if (error != nullptr) {
      *error = "cannot open " + writer->tmp_path_ + " for writing";
    }
    return nullptr;
  }
  std::string header;
  util::PutU32(header, kStoreMagic);
  util::PutU32(header, kStoreVersion);
  util::PutU32(header, 0);  // flags: reserved, readers reject non-zero
  writer->out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  if (!writer->out_.good()) {
    if (error != nullptr) {
      *error = "cannot write header to " + writer->tmp_path_;
    }
    return nullptr;
  }
  return writer;
}

ExtentWriter::ExtentWriter(std::string path, std::string tmp_path, WriterOptions options)
    : path_(std::move(path)), tmp_path_(std::move(tmp_path)), options_(options) {}

ExtentWriter::~ExtentWriter() {
  if (finalized_) {
    return;
  }
  std::string error;
  if (!Finalize(&error)) {
    std::fprintf(stderr, "warning: store file %s not finalized: %s\n", path_.c_str(),
                 error.c_str());
  }
}

void ExtentWriter::SetFailed(const std::string& message) {
  if (!failed_) {
    failed_ = true;
    first_error_ = message;
  }
}

void ExtentWriter::Append(const runner::ResultRow& row) {
  if (finalized_) {
    SetFailed("Append after Finalize on " + path_);
    return;
  }
  schema_.Observe(row);
  buffered_bytes_ += ApproxRowBytes(row);
  buffered_.push_back(row);
  ++total_rows_;
  if (buffered_bytes_ >= options_.extent_target_bytes) {
    std::string error;
    if (!WriteBufferedExtent(&error)) {
      SetFailed(error);
    }
  }
}

bool ExtentWriter::WriteBufferedExtent(std::string* error) {
  if (failed_) {
    if (error != nullptr) {
      *error = first_error_;
    }
    return false;
  }
  if (buffered_.empty()) {
    return true;
  }

  const std::vector<runner::Column>& columns = schema_.columns();
  const size_t num_rows = buffered_.size();

  // Transpose: one pass projecting every buffered row onto the schema.
  std::vector<std::vector<const ResultRow::Value*>> projected;
  projected.reserve(num_rows);
  for (const ResultRow& row : buffered_) {
    projected.push_back(schema_.Project(row));
  }

  std::string payload;
  util::PutU32(payload, static_cast<uint32_t>(columns.size()));
  for (const runner::Column& column : columns) {
    util::PutStr(payload, column.name);
    util::PutU8(payload, static_cast<uint8_t>(column.type));
  }
  util::PutU32(payload, static_cast<uint32_t>(num_rows));

  for (size_t c = 0; c < columns.size(); ++c) {
    const ValueType type = columns[c].type;
    std::string bitmap(( num_rows + 7) / 8, '\0');

    // A value is present when the row has the field and its type fits the
    // column (identical, or int64 on a promoted-to-double column). Anything
    // else is a conflict the schema already counted: store it as null and
    // warn once per column — the value is still intact in any text sink fed
    // from the same rows.
    std::vector<const ResultRow::Value*> present;
    present.reserve(num_rows);
    for (size_t r = 0; r < num_rows; ++r) {
      const ResultRow::Value* value = projected[r][c];
      if (value == nullptr) {
        continue;
      }
      const ValueType value_type = runner::TypeOfValue(*value);
      const bool storable =
          value_type == type || (type == ValueType::kDouble && value_type == ValueType::kInt64);
      if (!storable) {
        bool warned = false;
        for (const std::string& name : conflict_warned_) {
          warned = warned || name == columns[c].name;
        }
        if (!warned) {
          conflict_warned_.push_back(columns[c].name);
          std::fprintf(stderr,
                       "warning: store column \"%s\" (%s) dropped a %s value to null "
                       "(type conflict)\n",
                       columns[c].name.c_str(), ValueTypeName(type), ValueTypeName(value_type));
        }
        continue;
      }
      SetBit(bitmap, r);
      present.push_back(value);
    }

    std::string encoded;
    ColumnEncoding encoding = ColumnEncoding::kDoubleRaw;
    switch (type) {
      case ValueType::kBool: {
        encoding = ColumnEncoding::kBoolBitmap;
        // Row-aligned value bits; null rows are 0 bits (the null bitmap is
        // what distinguishes them from a present false).
        std::string bits((num_rows + 7) / 8, '\0');
        size_t p = 0;
        for (size_t r = 0; r < num_rows; ++r) {
          const ResultRow::Value* value = projected[r][c];
          const bool is_present =
              (static_cast<unsigned char>(bitmap[r / 8]) >> (r % 8)) & 1u;
          if (is_present) {
            if (std::get<bool>(*present[p])) {
              SetBit(bits, r);
            }
            ++p;
          }
          (void)value;
        }
        encoded = std::move(bits);
        break;
      }
      case ValueType::kInt64: {
        encoding = ColumnEncoding::kInt64ZigZag;
        // Delta vs the previous present value, zigzag so runs of similar
        // values (sweep grids counting up) stay one byte each. The delta is
        // computed mod 2^64, so INT64_MIN..INT64_MAX spans cannot overflow.
        uint64_t prev = 0;
        for (const ResultRow::Value* value : present) {
          const uint64_t v = static_cast<uint64_t>(std::get<int64_t>(*value));
          util::PutVarU64(encoded, util::ZigZagEncode(static_cast<int64_t>(v - prev)));
          prev = v;
        }
        break;
      }
      case ValueType::kDouble: {
        encoding = ColumnEncoding::kDoubleRaw;
        for (const ResultRow::Value* value : present) {
          const double d = std::holds_alternative<int64_t>(*value)
                               ? static_cast<double>(std::get<int64_t>(*value))
                               : std::get<double>(*value);
          util::PutF64(encoded, d);
        }
        break;
      }
      case ValueType::kString: {
        // One dictionary per extent: sweep rows repeat model names, cluster
        // labels, and policy strings endlessly, so indices beat raw bytes
        // whenever anything repeats at all.
        std::unordered_map<std::string, uint32_t> dict_index;
        std::vector<const std::string*> dict;
        for (const ResultRow::Value* value : present) {
          const std::string& s = std::get<std::string>(*value);
          if (dict_index.emplace(s, static_cast<uint32_t>(dict.size())).second) {
            dict.push_back(&s);
          }
        }
        if (dict.size() < present.size()) {
          encoding = ColumnEncoding::kStringDict;
          util::PutU32(encoded, static_cast<uint32_t>(dict.size()));
          for (const std::string* s : dict) {
            util::PutStr(encoded, *s);
          }
          for (const ResultRow::Value* value : present) {
            util::PutVarU64(encoded, dict_index.at(std::get<std::string>(*value)));
          }
        } else {
          encoding = ColumnEncoding::kStringRaw;
          for (const ResultRow::Value* value : present) {
            util::PutStr(encoded, std::get<std::string>(*value));
          }
        }
        break;
      }
    }

    payload += bitmap;
    util::PutU8(payload, static_cast<uint8_t>(encoding));
    util::PutU32(payload, static_cast<uint32_t>(encoded.size()));
    payload += encoded;
  }

  std::string framed;
  util::PutU32(framed, kExtentMarker);
  util::PutU32(framed, static_cast<uint32_t>(payload.size()));
  util::PutU64(framed, util::Fnv1aBytes(payload.data(), payload.size()));
  framed += payload;
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  if (!out_.good()) {
    const std::string message = "short write to " + tmp_path_;
    SetFailed(message);
    if (error != nullptr) {
      *error = message;
    }
    return false;
  }
  ++total_extents_;
  buffered_.clear();
  buffered_bytes_ = 0;
  return true;
}

bool ExtentWriter::Flush(std::string* error) {
  if (!WriteBufferedExtent(error)) {
    return false;
  }
  // A checkpoint that stays in the stream buffer is no checkpoint: push the
  // extent to the OS so a crash after Flush loses at most the trailer.
  out_.flush();
  if (!out_.good()) {
    SetFailed("short write to " + tmp_path_);
    if (error != nullptr) {
      *error = first_error_;
    }
    return false;
  }
  return true;
}

bool ExtentWriter::Finalize(std::string* error) {
  if (finalized_) {
    if (failed_ && error != nullptr) {
      *error = first_error_;
    }
    return !failed_;
  }
  finalized_ = true;
  if (!WriteBufferedExtent(error)) {
    out_.close();
    std::remove(tmp_path_.c_str());
    return false;
  }

  std::string totals;
  util::PutU64(totals, static_cast<uint64_t>(total_rows_));
  util::PutU64(totals, static_cast<uint64_t>(total_extents_));
  std::string trailer;
  util::PutU32(trailer, kTrailerMarker);
  trailer += totals;
  util::PutU64(trailer, util::Fnv1aBytes(totals.data(), totals.size()));
  out_.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out_.flush();
  if (!out_.good()) {
    SetFailed("short write to " + tmp_path_);
    if (error != nullptr) {
      *error = first_error_;
    }
    out_.close();
    std::remove(tmp_path_.c_str());
    return false;
  }
  out_.close();
  // Atomic swap, as in PartitionCache::Save: the previous file at `path`
  // survives any failure above, and a reader never sees a partial file.
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    SetFailed("cannot rename " + tmp_path_ + " to " + path_);
    if (error != nullptr) {
      *error = first_error_;
    }
    std::remove(tmp_path_.c_str());
    return false;
  }
  return true;
}

// ---- StoreSink ----

std::unique_ptr<StoreSink> StoreSink::Open(const std::string& path, std::string* error,
                                           WriterOptions options) {
  std::unique_ptr<ExtentWriter> writer = ExtentWriter::Open(path, error, options);
  if (writer == nullptr) {
    return nullptr;
  }
  return std::unique_ptr<StoreSink>(new StoreSink(std::move(writer)));
}

StoreSink::~StoreSink() {
  std::string error;
  if (!Close(&error)) {
    std::fprintf(stderr, "warning: %s\n", error.c_str());
  }
}

void StoreSink::WriteRow(const runner::ResultRow& row) { writer_->Append(row); }

void StoreSink::Flush() {
  std::string error;
  if (!writer_->Flush(&error)) {
    // The error is sticky in the writer; Close (or the destructor) repeats
    // it for callers that can act on it.
    std::fprintf(stderr, "warning: %s\n", error.c_str());
  }
}

bool StoreSink::Close(std::string* error) {
  if (closed_) {
    return true;
  }
  closed_ = true;
  return writer_->Finalize(error);
}

}  // namespace hetpipe::store
