#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "runner/result_sink.h"
#include "runner/schema.h"
#include "store/extent_writer.h"

namespace hetpipe::store {

// More rows than a sane extent (the writer cuts at ~64 KiB) — a count above
// this is a corrupt file, refused before allocating row-aligned vectors.
constexpr uint32_t kMaxRowsPerExtent = 1u << 24;

// One decoded column of one extent: row-aligned slices, so values[r] lines up
// with presence[r] for every row r of the extent. Only the vector matching
// `column.type` is populated; null rows hold a default value and are
// distinguished by present[r] == 0.
struct ColumnData {
  runner::Column column;
  std::vector<uint8_t> present;  // 1 when row r has a value
  std::vector<uint8_t> bools;
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;
};

// One decoded extent: the schema snapshot it carried plus per-column slices.
class Extent {
 public:
  const std::vector<ColumnData>& columns() const { return columns_; }
  size_t num_rows() const { return num_rows_; }

  // Row r reconstructed in schema (column) order, nulls skipped — for rows
  // whose writers emit fields in a consistent order (every bench RowFor
  // does), this reproduces the original field order exactly.
  runner::ResultRow Row(size_t r) const;

 private:
  friend class ExtentReader;
  std::vector<ColumnData> columns_;
  size_t num_rows_ = 0;
};

// Streaming reader for .hds files: validates the header up front, then hands
// back one checksum-verified extent at a time, and on kEnd has verified the
// trailer totals against what it actually decoded. Never trusts a length or
// count from the file without bounds-checking it first — a truncated or
// bit-flipped file fails with an error message, not a crash.
class ExtentReader {
 public:
  enum class Next {
    kExtent,  // *extent holds the next decoded extent
    kEnd,     // trailer reached and verified; totals are now valid
    kError,   // corrupt/truncated file; *error says why
  };

  // nullptr + `error` when the file is missing or its header is not a
  // version-1 .hds header.
  static std::unique_ptr<ExtentReader> Open(const std::string& path, std::string* error);

  Next Read(Extent* extent, std::string* error);

  // Trailer totals; meaningful only after Read returned kEnd.
  int64_t total_rows() const { return total_rows_; }
  int64_t total_extents() const { return total_extents_; }

 private:
  ExtentReader(std::string path, std::ifstream in) : path_(std::move(path)), in_(std::move(in)) {}

  bool DecodeExtent(const std::string& payload, Extent* extent, std::string* error);
  Next Fail(std::string* error, const std::string& message);

  std::string path_;
  std::ifstream in_;
  int64_t rows_seen_ = 0;
  int64_t extents_seen_ = 0;
  int64_t total_rows_ = 0;
  int64_t total_extents_ = 0;
  bool done_ = false;
};

// Loads every row of `path` in file order. Convenience wrapper over
// ExtentReader for consumers that want rows, not extents (sweep_query, the
// round-trip checks); false + `error` on any corruption.
bool ReadAllRows(const std::string& path, std::vector<runner::ResultRow>* rows,
                 std::string* error);

}  // namespace hetpipe::store
