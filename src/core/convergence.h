#pragma once

#include "model/model_graph.h"
#include "sim/stats.h"

namespace hetpipe::core {

// Saturating accuracy-vs-epochs curve: acc(e) = max * (1 - exp(-e / tau)).
// The curve constants are chosen so that the BSP baseline reaches the paper's
// target accuracy (74% for ResNet-152, 67% for VGG-19) after a typical
// ImageNet epoch budget; only *relative* wall-clock behaviour matters for the
// Fig. 5 / Fig. 6 reproduction.
struct AccuracyCurve {
  double max_accuracy = 0.78;
  double tau_epochs = 26.0;

  double Accuracy(double epochs) const;
  // Epochs needed to reach `accuracy`; +inf if unreachable.
  double EpochsToAccuracy(double accuracy) const;

  static AccuracyCurve ResNet152() { return {0.78, 26.0}; }
  static AccuracyCurve Vgg19() { return {0.705, 24.0}; }
  static AccuracyCurve For(model::ModelFamily family);
};

// Statistical efficiency of SGD under parameter staleness: each epoch under
// an average of `avg_missing_updates` missing minibatch updates contributes
// eff = 1 / (1 + kappa * avg_missing_updates) of a synchronous epoch — the
// standard SSP-style degradation model.
double StatisticalEfficiency(double kappa, double avg_missing_updates);

// Per-model staleness sensitivity kappa, calibrated against the convergence
// ratios the paper reports (§8.4): VGG-19's fc-heavy gradients make it far
// more staleness-sensitive than ResNet-152.
double StalenessSensitivity(model::ModelFamily family);

struct ConvergenceInput {
  double throughput_img_s = 0.0;
  double avg_missing_updates = 0.0;  // 0 for synchronous baselines (Horovod)
  double dataset_images = 1.28e6;    // ImageNet-1k train split
};

// Maps simulated throughput + observed staleness to accuracy-vs-wall-clock
// curves, regenerating Figs. 5 and 6.
class ConvergenceModel {
 public:
  ConvergenceModel(AccuracyCurve curve, double kappa) : curve_(curve), kappa_(kappa) {}

  static ConvergenceModel For(model::ModelFamily family) {
    return ConvergenceModel(AccuracyCurve::For(family), StalenessSensitivity(family));
  }

  double EffectiveEpochsPerHour(const ConvergenceInput& input) const;
  // Top-1 accuracy after `hours` of training.
  double AccuracyAtHours(const ConvergenceInput& input, double hours) const;
  // Accuracy curve sampled every `step_hours` up to `max_hours`.
  sim::TimeSeries Curve(const ConvergenceInput& input, double max_hours,
                        double step_hours) const;
  // Wall-clock hours to reach `target` accuracy (+inf if unreachable).
  double HoursToAccuracy(const ConvergenceInput& input, double target) const;

  const AccuracyCurve& curve() const { return curve_; }
  double kappa() const { return kappa_; }

 private:
  AccuracyCurve curve_;
  double kappa_;
};

}  // namespace hetpipe::core
