#pragma once

#include <string>
#include <vector>

#include "core/convergence.h"
#include "core/hetpipe.h"
#include "dp/horovod.h"
#include "hw/cluster.h"
#include "model/model_graph.h"

namespace hetpipe::core {

// Picks one unused GPU per code letter from the cluster, e.g. "VVQQ" on the
// paper cluster returns two TITAN V GPUs (node 0) and two Quadro P4000s
// (node 3) — the Fig. 3 virtual-worker configurations.
std::vector<int> PickGpusByCode(const hw::Cluster& cluster, const std::string& codes);

// ---- Fig. 3: single-virtual-worker throughput and utilization vs Nm. ----
struct Fig3Point {
  int nm = 0;
  bool feasible = false;
  double throughput_img_s = 0.0;
  double normalized = 0.0;  // vs the Nm=1 throughput of the same config
  double max_utilization = 0.0;
};
std::vector<Fig3Point> RunFig3Config(const hw::Cluster& cluster, const model::ModelGraph& graph,
                                     const std::string& codes, int nm_max);

// ---- Fig. 4: whole-cluster throughput under the allocation policies. ----
struct Fig4Row {
  std::string label;  // Horovod / NP / ED / ED-local / HD
  bool feasible = false;
  int nm = 0;
  int gpus_used = 0;
  double throughput_img_s = 0.0;
};
std::vector<Fig4Row> RunFig4(const hw::Cluster& cluster, const model::ModelGraph& graph,
                             double jitter_cv);

// ---- Table 4: adding whimpy GPUs (4[V], 8[VR], 12[VRQ], 16[VRQG]). ----
struct Table4Cell {
  std::string cluster_label;
  int num_gpus = 0;
  double horovod_img_s = 0.0;
  bool horovod_feasible = false;
  double hetpipe_img_s = 0.0;
  int total_concurrent_minibatches = 0;  // N_vw * Nm, shown in parentheses
};
std::vector<Table4Cell> RunTable4(const model::ModelGraph& graph, double jitter_cv);

// ---- Figs. 5/6: accuracy-vs-time convergence curves. ----
struct ConvergenceSeries {
  std::string label;
  double throughput_img_s = 0.0;
  double avg_missing_updates = 0.0;
  double hours_to_target = 0.0;
  sim::TimeSeries curve;
};

// Fig. 5: ResNet-152 — Horovod (12 GPUs), HetPipe (12 GPUs), HetPipe (16
// GPUs), all with D=0, ED-local.
std::vector<ConvergenceSeries> RunFig5(double jitter_cv, double target_accuracy);

// Fig. 6: VGG-19 — Horovod and HetPipe with D in {0, 4, 32}, ED-local.
std::vector<ConvergenceSeries> RunFig6(double jitter_cv, double target_accuracy);

// ---- §8.4: synchronization overhead vs D. ----
struct StalenessWaitRow {
  int d = 0;
  double throughput_img_s = 0.0;
  double total_wait_s = 0.0;
  double idle_fraction_of_wait = 0.0;
  double avg_clock_distance = 0.0;
  double avg_global_lag_waves = 0.0;
};
std::vector<StalenessWaitRow> RunStalenessWaitStudy(const model::ModelGraph& graph,
                                                    const std::vector<int>& d_values,
                                                    double jitter_cv);

}  // namespace hetpipe::core
