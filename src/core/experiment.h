#pragma once

#include <string>
#include <vector>

#include "core/convergence.h"
#include "core/hetpipe.h"
#include "dp/decentralized.h"
#include "dp/horovod.h"
#include "dp/ps_baselines.h"
#include "hw/cluster.h"
#include "model/model_graph.h"

namespace hetpipe::runner {
class SweepRunner;
}  // namespace hetpipe::runner

namespace hetpipe::core {

// Picks one unused GPU per code letter from the cluster, e.g. "VVQQ" on the
// paper cluster returns two TITAN V GPUs (node 0) and two Quadro P4000s
// (node 3) — the Fig. 3 virtual-worker configurations.
std::vector<int> PickGpusByCode(const hw::Cluster& cluster, const std::string& codes);

// Spec-driven GPU selection for any cluster. A selector is either a code
// string as above ("VVQQ"), or a comma-separated list of terms
//   <class-name>[*<count>][@<node>]
// e.g. "A100*2,T4" or "A100*2@0,A100*2@1". Each term picks `count` unused
// GPUs of that class (from node `node` when given), in GPU-id order. Throws
// std::invalid_argument when the cluster cannot satisfy the selector.
std::vector<int> PickGpus(const hw::Cluster& cluster, const std::string& selector);

// ---- One experiment = one independently runnable configuration. ----
// Experiments are cheap value types described by names and codes (not live
// cluster/graph objects) so the sweep runner can copy them across threads and
// the result sink can echo them verbatim into JSON/CSV rows.

enum class ModelKind {
  kResNet152,
  kVgg19,
};
const char* ModelName(ModelKind kind);
model::ModelGraph BuildModel(ModelKind kind);
// Maps a built graph back to its kind (throws for generic graphs — callers
// that may see generic graphs should use Experiment::UseGraph, which carries
// the model name instead of dying here).
ModelKind ModelKindOf(const model::ModelGraph& graph);

// How kPartitionOnly experiments split the model over the virtual worker.
enum class PartitionStrategy {
  kMinMaxDp,       // the paper's memory-constrained min-max partitioner
  kEqualLayers,    // naive ablation baseline: equal layer counts
  kParamBalanced,  // naive ablation baseline: equal parameter bytes
};
const char* StrategyName(PartitionStrategy strategy);

enum class ExperimentKind {
  kFullCluster,         // HetPipe::Run: allocate VWs, partition, simulate WSP
  kSingleVirtualWorker, // one VW picked by codes, fixed Nm, no global gate
  kPartitionOnly,       // solve/build one VW's partition; optionally simulate
  kHorovod,             // AllReduce BSP data parallelism
  kPsDataParallel,      // parameter-server BSP/SSP/ASP data parallelism
  kAdPsgd,              // decentralized gossip data parallelism
};
const char* KindName(ExperimentKind kind);

struct Experiment {
  std::string name;  // row label, defaults to an auto-generated description
  ExperimentKind kind = ExperimentKind::kFullCluster;
  ModelKind model = ModelKind::kResNet152;
  // Model to run when not null: a caller-owned graph (e.g. a generic model no
  // ModelKind names) shared read-only across sweep threads. `model` is
  // ignored in that case and `model_name` labels the rows.
  const model::ModelGraph* graph = nullptr;
  // Row label for the model; empty means ModelName(model).
  std::string model_name;
  // Paper-testbed node codes handed to hw::Cluster::PaperSubset ("VRGQ" is
  // the full 16-GPU cluster of Fig. 2). Ignored when cluster_spec is set.
  std::string cluster_nodes = "VRGQ";
  // hw::ClusterSpec text (see cluster_spec.h) describing an arbitrary
  // cluster; when set it replaces cluster_nodes and the experiment runs on
  // the spec-built cluster. Kept as text so Experiment stays a cheap value
  // type the sweep runner can copy across threads and processes.
  std::string cluster_spec;
  // Row label for the cluster; empty means cluster_nodes (or the spec name).
  std::string cluster_label;
  // GPU selector for the virtual worker of the single-VW / partition-only
  // kinds: a code string or a PickGpus selector ("A100*2,T4").
  std::string vw_codes;
  PartitionStrategy strategy = PartitionStrategy::kMinMaxDp;
  // kPartitionOnly: also run the open-gate pipeline simulation on the result.
  bool simulate = true;
  // Policies, sync, Nm, jitter, waves, and the (optional) shared partition
  // cache / thread pool all travel inside the config.
  HetPipeConfig config;
  // kPsDataParallel flavor.
  dp::PsDpOptions ps;

  // Runs on `graph` (kept by pointer, not copied): sets model_name, and the
  // kind too when the graph's family has one. This is how experiments carry
  // generic models without ModelKindOf throwing.
  Experiment& UseGraph(const model::ModelGraph& model_graph);
  // Runs on `cluster`: carries its spec text when it has one (any spec-built
  // cluster), else its paper node codes.
  Experiment& UseCluster(const hw::Cluster& cluster);

  // Labels for reports: never throw, even for generic models / spec clusters.
  std::string ModelLabel() const;
  std::string ClusterLabel() const;

  std::string Describe() const;
};

struct ExperimentResult {
  std::string name;  // echo of Experiment::name / Describe()
  bool feasible = false;
  double throughput_img_s = 0.0;

  HetPipeReport report;             // kFullCluster / kSingleVirtualWorker
  partition::Partition partition;   // kPartitionOnly (also vws[0] for single-VW)
  dp::HorovodResult horovod;        // kHorovod
  dp::PsDpResult ps;                // kPsDataParallel
  dp::DecentralizedResult adpsgd;   // kAdPsgd
};

// Runs one experiment synchronously on the calling thread. Deterministic:
// the same Experiment always produces the same result, with or without a
// partition cache in its config. This is the unit of work SweepRunner
// schedules.
ExperimentResult RunExperiment(const Experiment& experiment);

// ---- Fig. 3: single-virtual-worker throughput and utilization vs Nm. ----
struct Fig3Point {
  int nm = 0;
  bool feasible = false;
  double throughput_img_s = 0.0;
  double normalized = 0.0;  // vs the Nm=1 throughput of the same config
  double max_utilization = 0.0;
};
std::vector<Fig3Point> RunFig3Config(const hw::Cluster& cluster, const model::ModelGraph& graph,
                                     const std::string& codes, int nm_max,
                                     runner::SweepRunner* runner = nullptr);

// ---- Fig. 4: whole-cluster throughput under the allocation policies. ----
struct Fig4Row {
  std::string label;  // Horovod / NP / ED / ED-local / HD
  bool feasible = false;
  int nm = 0;
  int gpus_used = 0;
  double throughput_img_s = 0.0;
};
std::vector<Fig4Row> RunFig4(const hw::Cluster& cluster, const model::ModelGraph& graph,
                             double jitter_cv, runner::SweepRunner* runner = nullptr);

// ---- Table 4: adding whimpy GPUs (4[V], 8[VR], 12[VRQ], 16[VRQG]). ----
struct Table4Cell {
  std::string cluster_label;
  int num_gpus = 0;
  double horovod_img_s = 0.0;
  bool horovod_feasible = false;
  double hetpipe_img_s = 0.0;
  int total_concurrent_minibatches = 0;  // N_vw * Nm, shown in parentheses
};
std::vector<Table4Cell> RunTable4(const model::ModelGraph& graph, double jitter_cv,
                                  runner::SweepRunner* runner = nullptr);

// ---- Figs. 5/6: accuracy-vs-time convergence curves. ----
struct ConvergenceSeries {
  std::string label;
  double throughput_img_s = 0.0;
  double avg_missing_updates = 0.0;
  double hours_to_target = 0.0;
  sim::TimeSeries curve;
};

// Fig. 5: ResNet-152 — Horovod (12 GPUs), HetPipe (12 GPUs), HetPipe (16
// GPUs), all with D=0, ED-local.
std::vector<ConvergenceSeries> RunFig5(double jitter_cv, double target_accuracy,
                                       runner::SweepRunner* runner = nullptr);

// Fig. 6: VGG-19 — Horovod and HetPipe with D in {0, 4, 32}, ED-local.
std::vector<ConvergenceSeries> RunFig6(double jitter_cv, double target_accuracy,
                                       runner::SweepRunner* runner = nullptr);

// ---- §8.4: synchronization overhead vs D. ----
struct StalenessWaitRow {
  int d = 0;
  double throughput_img_s = 0.0;
  double total_wait_s = 0.0;
  double idle_fraction_of_wait = 0.0;
  double avg_clock_distance = 0.0;
  double avg_global_lag_waves = 0.0;
};
std::vector<StalenessWaitRow> RunStalenessWaitStudy(const model::ModelGraph& graph,
                                                    const std::vector<int>& d_values,
                                                    double jitter_cv,
                                                    runner::SweepRunner* runner = nullptr);

// The ED-local configuration shared by the convergence and wait studies
// (correlated slowdowns accompany the iid jitter: they are what the
// clock-distance threshold D absorbs).
HetPipeConfig EdLocalConfig(int d, double jitter_cv);

// Node codes of a paper-testbed cluster ("VRGQ" for the full testbed), the
// inverse of hw::Cluster::PaperSubset.
std::string NodeCodesOf(const hw::Cluster& cluster);

}  // namespace hetpipe::core
