#include "core/convergence.h"

#include <cmath>
#include <limits>

namespace hetpipe::core {

double AccuracyCurve::Accuracy(double epochs) const {
  if (epochs <= 0.0) {
    return 0.0;
  }
  return max_accuracy * (1.0 - std::exp(-epochs / tau_epochs));
}

double AccuracyCurve::EpochsToAccuracy(double accuracy) const {
  if (accuracy >= max_accuracy) {
    return std::numeric_limits<double>::infinity();
  }
  if (accuracy <= 0.0) {
    return 0.0;
  }
  return -tau_epochs * std::log(1.0 - accuracy / max_accuracy);
}

AccuracyCurve AccuracyCurve::For(model::ModelFamily family) {
  switch (family) {
    case model::ModelFamily::kResNet152:
      return ResNet152();
    case model::ModelFamily::kVgg19:
      return Vgg19();
    case model::ModelFamily::kGeneric:
      return {0.75, 25.0};
  }
  return {0.75, 25.0};
}

double StatisticalEfficiency(double kappa, double avg_missing_updates) {
  return 1.0 / (1.0 + kappa * avg_missing_updates);
}

double StalenessSensitivity(model::ModelFamily family) {
  // Calibrated so that the reproduced Figs. 5/6 match the paper's reported
  // convergence-time ratios: for VGG-19 HetPipe(D=0) is ~29% (not ~79%)
  // faster than Horovod despite a ~1.8x throughput edge — most of the edge is
  // eaten by staleness — while for ResNet-152 the staleness penalty observed
  // in the paper is small.
  switch (family) {
    case model::ModelFamily::kVgg19:
      return 0.030;
    case model::ModelFamily::kResNet152:
      return 0.004;
    case model::ModelFamily::kGeneric:
      return 0.010;
  }
  return 0.010;
}

double ConvergenceModel::EffectiveEpochsPerHour(const ConvergenceInput& input) const {
  const double epochs_per_hour = input.throughput_img_s * 3600.0 / input.dataset_images;
  return epochs_per_hour * StatisticalEfficiency(kappa_, input.avg_missing_updates);
}

double ConvergenceModel::AccuracyAtHours(const ConvergenceInput& input, double hours) const {
  return curve_.Accuracy(EffectiveEpochsPerHour(input) * hours);
}

sim::TimeSeries ConvergenceModel::Curve(const ConvergenceInput& input, double max_hours,
                                        double step_hours) const {
  sim::TimeSeries series;
  for (double t = 0.0; t <= max_hours + 1e-9; t += step_hours) {
    series.Add(t, AccuracyAtHours(input, t));
  }
  return series;
}

double ConvergenceModel::HoursToAccuracy(const ConvergenceInput& input, double target) const {
  const double epochs = curve_.EpochsToAccuracy(target);
  const double rate = EffectiveEpochsPerHour(input);
  if (!std::isfinite(epochs) || rate <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return epochs / rate;
}

}  // namespace hetpipe::core
