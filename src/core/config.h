#pragma once

#include <cstdint>
#include <string>

#include "cluster/allocator.h"
#include "partition/memory_model.h"
#include "wsp/param_server.h"
#include "wsp/sync_policy.h"

namespace hetpipe::runner {
class PartitionCache;
class ThreadPool;
}  // namespace hetpipe::runner

namespace hetpipe::core {

// Configuration of one HetPipe training run.
struct HetPipeConfig {
  int batch_size = 32;  // per-virtual-worker minibatch size (paper: 32)

  cluster::AllocationPolicy allocation = cluster::AllocationPolicy::kEqualDistribution;
  wsp::PlacementPolicy placement = wsp::PlacementPolicy::kRoundRobin;
  wsp::SyncPolicy sync = wsp::SyncPolicy::Wsp(0);

  // Concurrent minibatches per virtual worker. 0 selects the largest common
  // feasible value (min over VWs of Maxm), as §4 prescribes; a positive value
  // caps it.
  int nm = 0;
  int nm_cap = 7;  // the paper sweeps Nm up to 7 (Fig. 3)

  // Task-time jitter (coefficient of variation). Real clusters are noisy;
  // this is what gives D > 0 its throughput advantage over the BSP-like D=0.
  double jitter_cv = 0.0;
  // Correlated noise: per-wave speed drift and a persistent per-VW speed
  // bias — the straggler sources that make the D=0 wave barrier expensive
  // and let local clocks drift apart when D is large (§8.4).
  double drift_cv = 0.0;
  double speed_bias_cv = 0.0;
  uint64_t seed = 42;

  // Simulated run length, in waves per virtual worker.
  int64_t waves = 60;
  // Waves excluded from throughput measurement while the pipeline fills.
  int64_t warmup_waves = 5;

  partition::StageMemoryParams mem_params;

  // Shared partition memoization and worker pool, both optional and not
  // owned. The sweep runner plumbs these through so repeated virtual-worker
  // shapes across a sweep hit the cache instead of re-running the GPU-order
  // search; a run with them unset behaves identically, just colder.
  runner::PartitionCache* partition_cache = nullptr;
  runner::ThreadPool* pool = nullptr;

  std::string ToString() const;
};

}  // namespace hetpipe::core
