#include "core/hetpipe.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "runner/partition_cache.h"
#include "sim/simulator.h"
#include "wsp/sync_policy.h"

namespace hetpipe::core {

double SteadyStateThroughput(const std::vector<sim::SimTime>& completion_times, int64_t warmup,
                             int batch_size) {
  const int64_t n = static_cast<int64_t>(completion_times.size());
  if (n <= warmup + 1) {
    return 0.0;
  }
  const double window = completion_times.back() - completion_times[static_cast<size_t>(warmup)];
  if (window <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(n - 1 - warmup) * batch_size / window;
}

namespace {

double MeasureThroughput(const pipeline::VirtualWorkerSim& vw, int64_t warmup, int batch) {
  return SteadyStateThroughput(vw.completion_times(), warmup, batch);
}

}  // namespace

double HetPipeReport::AvgMissingUpdates() const {
  const double n = static_cast<double>(vws.size());
  if (n == 0) {
    return 0.0;
  }
  const double cross_vw =
      avg_global_lag_waves * static_cast<double>(nm) * (n - 1.0) / std::max(1.0, n);
  return static_cast<double>(s_local) + cross_vw;
}

std::string HetPipeReport::Summary() const {
  std::ostringstream os;
  if (!feasible) {
    os << "infeasible: " << infeasible_reason;
    return os.str();
  }
  os << throughput_img_s << " img/s total, Nm=" << nm << ", " << vws.size() << " VWs";
  return os.str();
}

HetPipe::HetPipe(const hw::Cluster& cluster, const model::ModelGraph& graph,
                 HetPipeConfig config)
    : cluster_(&cluster), graph_(&graph), config_(std::move(config)) {}

HetPipeReport HetPipe::Run() const {
  HetPipeReport report;
  const cluster::Allocation alloc = cluster::Allocate(*cluster_, config_.allocation);
  const model::ModelProfile profile(*graph_, config_.batch_size);
  // The partitioner's DP tables live in thread-local scratch reused across
  // solves, so the Maxm probes, the Nm estimate loop, and the final solves
  // below allocate no DP state per call — neither here nor on sweep-runner
  // worker threads running many Experiments in sequence.
  const partition::Partitioner partitioner(profile, *cluster_);

  // A run revisits the same virtual-worker shapes many times (the Maxm probe,
  // the Nm estimate loop, the final solve — and under ED all VWs share one
  // shape), so even a standalone run keeps a local memo when the sweep runner
  // did not hand one down. Cache hits return exactly what a cold solve would.
  runner::PartitionCache local_cache;
  runner::PartitionCache* cache =
      config_.partition_cache != nullptr ? config_.partition_cache : &local_cache;

  partition::PartitionOptions popt;
  popt.mem_params = config_.mem_params;
  popt.pool = config_.pool;

  // Nm must be identical across virtual workers (§4): the cap is the minimum
  // Maxm (memory feasibility) over VWs...
  int nm_cap = config_.nm_cap;
  std::vector<int> max_nms;
  for (const std::vector<int>& gpus : alloc.vw_gpus) {
    const int max_nm = cache->FindMaxNm(partitioner, gpus, config_.nm_cap, popt);
    if (max_nm == 0) {
      report.infeasible_reason = "no feasible partition for a virtual worker";
      return report;
    }
    max_nms.push_back(max_nm);
    nm_cap = std::min(nm_cap, max_nm);
  }
  if (config_.nm > 0) {
    nm_cap = std::min(nm_cap, config_.nm);
  }

  // ...and within the cap Nm is "set such that performance is maximized"
  // (§8.3): pick the value with the best estimated aggregate steady-state
  // throughput. Larger Nm overlaps more minibatches but memory pressure
  // forces increasingly imbalanced partitions, so the optimum is not always
  // the cap.
  int common_nm = nm_cap;
  if (config_.nm == 0) {
    std::vector<double> estimates(static_cast<size_t>(nm_cap) + 1, -1.0);
    double best_estimate = -1.0;
    for (int nm = 1; nm <= nm_cap; ++nm) {
      partition::PartitionOptions nm_opt = popt;
      nm_opt.nm = nm;
      double estimate = 0.0;
      bool all_feasible = true;
      for (const std::vector<int>& gpus : alloc.vw_gpus) {
        const partition::Partition p = cache->Solve(partitioner, gpus, nm_opt);
        if (!p.feasible) {
          all_feasible = false;
          break;
        }
        // Steady state: latency-limited (nm in flight over a round trip) or
        // bottleneck-stage-limited, whichever binds.
        const double per_minibatch =
            std::max(p.sum_time / static_cast<double>(nm), p.bottleneck_time);
        estimate += config_.batch_size / per_minibatch;
      }
      if (all_feasible) {
        estimates[static_cast<size_t>(nm)] = estimate;
        best_estimate = std::max(best_estimate, estimate);
      }
    }
    // The analytic estimate ignores queueing slack, which favors deeper
    // pipelines: among near-ties take the largest nm.
    for (int nm = 1; nm <= nm_cap; ++nm) {
      if (estimates[static_cast<size_t>(nm)] >= 0.97 * best_estimate) {
        common_nm = nm;
      }
    }
  }

  popt.nm = common_nm;
  std::vector<partition::Partition> partitions;
  std::vector<wsp::VwCommTimes> comm;
  for (const std::vector<int>& gpus : alloc.vw_gpus) {
    partitions.push_back(cache->Solve(partitioner, gpus, popt));
    comm.push_back(wsp::ComputePsCommTimes(partitions.back(), *cluster_, config_.placement));
  }

  sim::Simulator simulator;
  wsp::WspCoordinatorOptions wopt;
  wopt.num_vws = alloc.num_vws();
  wopt.nm = common_nm;
  wopt.policy = config_.sync;
  wsp::WspCoordinator coordinator(simulator, wopt, comm);

  std::vector<std::unique_ptr<pipeline::VirtualWorkerSim>> vws;
  for (int v = 0; v < alloc.num_vws(); ++v) {
    pipeline::VirtualWorkerOptions vopt;
    vopt.nm = common_nm;
    vopt.jitter_cv = config_.jitter_cv;
    vopt.drift_cv = config_.drift_cv;
    vopt.speed_bias_cv = config_.speed_bias_cv;
    vopt.seed = config_.seed;
    vopt.max_minibatches = config_.waves * common_nm;
    vws.push_back(std::make_unique<pipeline::VirtualWorkerSim>(
        v, simulator, partitions[static_cast<size_t>(v)], coordinator, vopt));
  }
  for (auto& vw : vws) {
    vw->Start();
  }
  simulator.Run();

  report.feasible = true;
  report.nm = common_nm;
  report.s_local = wsp::LocalStaleness(common_nm);
  report.s_global = (config_.sync.mode == wsp::SyncMode::kWsp)
                        ? wsp::GlobalStaleness(common_nm, config_.sync.d)
                        : -1;

  const int64_t warmup = config_.warmup_waves * common_nm;
  const sim::SimTime end = simulator.now();
  double total_idle = 0.0;
  for (int v = 0; v < alloc.num_vws(); ++v) {
    const auto& vw = *vws[static_cast<size_t>(v)];
    VwReport vr;
    vr.gpu_ids = alloc.vw_gpus[static_cast<size_t>(v)];
    vr.partition = partitions[static_cast<size_t>(v)];
    vr.max_nm = max_nms[static_cast<size_t>(v)];
    vr.throughput_img_s = MeasureThroughput(vw, warmup, config_.batch_size);
    const sim::SimTime warm_time =
        vw.completion_times().size() > static_cast<size_t>(warmup)
            ? vw.completion_times()[static_cast<size_t>(warmup)]
            : 0.0;
    vr.max_stage_utilization = vw.MaxStageUtilization(warm_time, end);
    vr.wait_s = vw.total_wait_s();
    vr.idle_during_wait_s = vw.IdleDuringWait();
    report.throughput_img_s += vr.throughput_img_s;
    report.total_wait_s += vr.wait_s;
    total_idle += vr.idle_during_wait_s;
    report.vws.push_back(std::move(vr));
  }
  report.idle_fraction_of_wait =
      report.total_wait_s > 0.0 ? total_idle / report.total_wait_s : 0.0;
  report.avg_clock_distance = coordinator.clock_distance().mean();
  report.avg_global_lag_waves = coordinator.observed_lag_waves().mean();
  return report;
}

HetPipeReport HetPipe::RunSingleVirtualWorker(const hw::Cluster& cluster,
                                              const model::ModelGraph& graph,
                                              const std::vector<int>& gpu_ids, int nm,
                                              const HetPipeConfig& config) {
  HetPipeReport report;
  const model::ModelProfile profile(graph, config.batch_size);
  const partition::Partitioner partitioner(profile, cluster);

  partition::PartitionOptions popt;
  popt.nm = nm;
  popt.mem_params = config.mem_params;
  popt.pool = config.pool;
  const partition::Partition partition =
      config.partition_cache != nullptr ? config.partition_cache->Solve(partitioner, gpu_ids, popt)
                                        : partitioner.Solve(gpu_ids, popt);
  if (!partition.feasible) {
    report.infeasible_reason = "partition infeasible at Nm=" + std::to_string(nm);
    return report;
  }

  sim::Simulator simulator;
  pipeline::OpenGate gate;
  pipeline::VirtualWorkerOptions vopt;
  vopt.nm = nm;
  vopt.jitter_cv = config.jitter_cv;
  vopt.seed = config.seed;
  vopt.max_minibatches = config.waves * nm;
  pipeline::VirtualWorkerSim vw(0, simulator, partition, gate, vopt);
  vw.Start();
  simulator.Run();

  report.feasible = true;
  report.nm = nm;
  report.s_local = wsp::LocalStaleness(nm);
  report.s_global = -1;

  const int64_t warmup = config.warmup_waves * nm;
  VwReport vr;
  vr.gpu_ids = gpu_ids;
  vr.partition = partition;
  vr.max_nm = nm;
  vr.throughput_img_s = MeasureThroughput(vw, warmup, config.batch_size);
  const sim::SimTime warm_time = vw.completion_times().size() > static_cast<size_t>(warmup)
                                     ? vw.completion_times()[static_cast<size_t>(warmup)]
                                     : 0.0;
  vr.max_stage_utilization = vw.MaxStageUtilization(warm_time, simulator.now());
  report.throughput_img_s = vr.throughput_img_s;
  report.vws.push_back(std::move(vr));
  return report;
}

}  // namespace hetpipe::core
