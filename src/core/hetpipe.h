#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "hw/cluster.h"
#include "model/model_graph.h"
#include "model/profiler.h"
#include "partition/partitioner.h"
#include "pipeline/virtual_worker.h"
#include "wsp/param_server.h"

namespace hetpipe::core {

// Steady-state throughput (images/s) of a minibatch completion-time series,
// excluding the first `warmup` completions while the pipeline fills. The one
// measurement convention shared by HetPipe's report and the partition-only
// simulations.
double SteadyStateThroughput(const std::vector<sim::SimTime>& completion_times, int64_t warmup,
                             int batch_size);

// Per-virtual-worker results of a run.
struct VwReport {
  std::vector<int> gpu_ids;
  partition::Partition partition;
  int max_nm = 0;                 // Maxm: memory-feasibility bound (§4)
  double throughput_img_s = 0.0;  // steady state, warmup excluded
  double max_stage_utilization = 0.0;
  double wait_s = 0.0;            // blocked on the global staleness gate
  double idle_during_wait_s = 0.0;
};

// Results of a full HetPipe run.
struct HetPipeReport {
  bool feasible = false;
  std::string infeasible_reason;

  int nm = 0;             // common Nm used by every virtual worker
  int64_t s_local = 0;    // Nm - 1
  int64_t s_global = 0;   // (D+1)(s_local+1) + s_local - 1

  double throughput_img_s = 0.0;  // aggregate over virtual workers
  std::vector<VwReport> vws;

  // Synchronization behaviour (§8.4).
  double total_wait_s = 0.0;
  double idle_fraction_of_wait = 0.0;  // "actual idle is only 18% of waiting"
  double avg_clock_distance = 0.0;
  double avg_global_lag_waves = 0.0;  // observed staleness, feeds convergence

  // Average missing updates (in minibatches) seen by an injected minibatch:
  // s_local locally + observed cross-VW lag. Input to the convergence model.
  double AvgMissingUpdates() const;

  std::string Summary() const;
};

// HetPipe: allocates GPUs to virtual workers, partitions the model for each,
// and runs the integrated PMP+DP discrete-event simulation under WSP.
class HetPipe {
 public:
  HetPipe(const hw::Cluster& cluster, const model::ModelGraph& graph, HetPipeConfig config);

  // End-to-end run (Fig. 4 / Table 4 style experiments).
  HetPipeReport Run() const;

  // Runs a single virtual worker made of `gpu_ids` with a fixed nm and no
  // global gating — the Fig. 3 experiment.
  static HetPipeReport RunSingleVirtualWorker(const hw::Cluster& cluster,
                                              const model::ModelGraph& graph,
                                              const std::vector<int>& gpu_ids, int nm,
                                              const HetPipeConfig& config);

  const HetPipeConfig& config() const { return config_; }

 private:
  const hw::Cluster* cluster_;
  const model::ModelGraph* graph_;
  HetPipeConfig config_;
};

}  // namespace hetpipe::core
