#include "core/config.h"

#include <sstream>

namespace hetpipe::core {

std::string HetPipeConfig::ToString() const {
  std::ostringstream os;
  os << cluster::PolicyName(allocation) << "/"
     << (placement == wsp::PlacementPolicy::kLocal ? "local" : "default") << "/"
     << sync.ToString() << " batch=" << batch_size << " Nm=" << (nm == 0 ? -1 : nm);
  return os.str();
}

}  // namespace hetpipe::core
