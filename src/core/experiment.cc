#include "core/experiment.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "hw/cluster_spec.h"
#include "model/resnet.h"
#include "model/vgg.h"
#include "pipeline/virtual_worker.h"
#include "runner/partition_cache.h"
#include "runner/sweep_runner.h"
#include "sim/simulator.h"

namespace hetpipe::core {
namespace {

// Strict non-negative integer parse: the whole token must be digits, so
// malformed selector suffixes ("2junk", "0*2") fail loudly instead of
// silently truncating at the first non-digit, and overflow reports a clear
// error instead of escaping as a raw std::out_of_range.
int ParseSelectorInt(const std::string& token, const std::string& what) {
  int value = 0;
  const char* begin = token.c_str();
  const auto [ptr, ec] = std::from_chars(begin, begin + token.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw std::invalid_argument("selector: number out of range for " + what + ": \"" + token +
                                "\"");
  }
  if (ec != std::errc() || ptr != begin + token.size() || token.empty() || value < 0) {
    throw std::invalid_argument("selector: expected a number for " + what + ", got \"" +
                                token + "\"");
  }
  return value;
}

// Picks `count` unused GPUs of `type` (on `node` unless -1), in id order.
void PickByType(const hw::Cluster& cluster, hw::GpuType type, int count, int node,
                const std::string& what, std::vector<bool>& used, std::vector<int>& picked) {
  for (int c = 0; c < count; ++c) {
    bool found = false;
    for (const hw::Gpu& gpu : cluster.gpus()) {
      if (gpu.type == type && (node < 0 || gpu.node == node) &&
          !used[static_cast<size_t>(gpu.id)]) {
        used[static_cast<size_t>(gpu.id)] = true;
        picked.push_back(gpu.id);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("cluster has no free GPU matching " + what);
    }
  }
}

}  // namespace

std::vector<int> PickGpusByCode(const hw::Cluster& cluster, const std::string& codes) {
  std::vector<int> picked;
  std::vector<bool> used(static_cast<size_t>(cluster.num_gpus()), false);
  for (char code : codes) {
    PickByType(cluster, hw::TypeFromCode(code), 1, /*node=*/-1,
               "type " + std::string(1, code), used, picked);
  }
  return picked;
}

std::vector<int> PickGpus(const hw::Cluster& cluster, const std::string& selector) {
  const bool term_form = selector.find_first_of(",*@") != std::string::npos;
  if (!term_form && hw::FindGpuTypeByName(selector) == nullptr) {
    // A code string ("VVQQ") when every character is a known code letter and
    // the selector is not itself a class name (names win, so a class called
    // "GQ" is never shadowed by the G/Q code letters).
    const bool all_codes = !selector.empty() &&
                           std::all_of(selector.begin(), selector.end(), [](char c) {
                             try {
                               hw::TypeFromCode(c);
                               return true;
                             } catch (const std::invalid_argument&) {
                               return false;
                             }
                           });
    if (all_codes) {
      return PickGpusByCode(cluster, selector);
    }
  }

  std::vector<int> picked;
  std::vector<bool> used(static_cast<size_t>(cluster.num_gpus()), false);
  size_t start = 0;
  while (start <= selector.size()) {
    const size_t comma = std::min(selector.find(',', start), selector.size());
    std::string term = selector.substr(start, comma - start);
    start = comma + 1;
    if (term.empty()) {
      continue;
    }
    int node = -1;
    const size_t at = term.find('@');
    if (at != std::string::npos) {
      node = ParseSelectorInt(term.substr(at + 1), "node in \"" + term + "\"");
      term.resize(at);
    }
    int count = 1;
    const size_t star = term.find('*');
    if (star != std::string::npos) {
      count = ParseSelectorInt(term.substr(star + 1), "count in \"" + term + "\"");
      term.resize(star);
    }
    const hw::GpuSpec* spec = hw::FindGpuTypeByName(term);
    const hw::GpuType type = spec != nullptr
                                 ? spec->type
                                 : (term.size() == 1 ? hw::TypeFromCode(term[0])
                                                     : throw std::invalid_argument(
                                                           "unknown GPU class \"" + term + "\""));
    if (count <= 0) {
      throw std::invalid_argument("selector term " + term + " needs a positive count");
    }
    PickByType(cluster, type, count, node, "\"" + term + "\"", used, picked);
  }
  if (picked.empty()) {
    throw std::invalid_argument("empty GPU selector");
  }
  return picked;
}

const char* ModelName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet152:
      return "resnet152";
    case ModelKind::kVgg19:
      return "vgg19";
  }
  return "unknown";
}

model::ModelGraph BuildModel(ModelKind kind) {
  switch (kind) {
    case ModelKind::kResNet152:
      return model::BuildResNet152();
    case ModelKind::kVgg19:
      return model::BuildVgg19();
  }
  throw std::invalid_argument("unknown model kind");
}

ModelKind ModelKindOf(const model::ModelGraph& graph) {
  switch (graph.family()) {
    case model::ModelFamily::kResNet152:
      return ModelKind::kResNet152;
    case model::ModelFamily::kVgg19:
      return ModelKind::kVgg19;
    case model::ModelFamily::kGeneric:
      break;
  }
  throw std::invalid_argument("no ModelKind for graph " + graph.name());
}

const char* StrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kMinMaxDp:
      return "min_max_dp";
    case PartitionStrategy::kEqualLayers:
      return "equal_layers";
    case PartitionStrategy::kParamBalanced:
      return "param_balanced";
  }
  return "unknown";
}

const char* KindName(ExperimentKind kind) {
  switch (kind) {
    case ExperimentKind::kFullCluster:
      return "full_cluster";
    case ExperimentKind::kSingleVirtualWorker:
      return "single_vw";
    case ExperimentKind::kPartitionOnly:
      return "partition";
    case ExperimentKind::kHorovod:
      return "horovod";
    case ExperimentKind::kPsDataParallel:
      return "ps_dp";
    case ExperimentKind::kAdPsgd:
      return "ad_psgd";
  }
  return "unknown";
}

std::string NodeCodesOf(const hw::Cluster& cluster) {
  std::string codes;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    codes.push_back(hw::CodeOf(cluster.NodeType(n)));
  }
  return codes;
}

Experiment& Experiment::UseGraph(const model::ModelGraph& model_graph) {
  graph = &model_graph;
  model_name = model_graph.name();
  switch (model_graph.family()) {
    case model::ModelFamily::kResNet152:
      model = ModelKind::kResNet152;
      break;
    case model::ModelFamily::kVgg19:
      model = ModelKind::kVgg19;
      break;
    case model::ModelFamily::kGeneric:
      break;  // only the pointer + name describe it
  }
  return *this;
}

Experiment& Experiment::UseCluster(const hw::Cluster& cluster) {
  if (!cluster.spec_text().empty()) {
    cluster_spec = cluster.spec_text();
    cluster_label = cluster.name().empty() ? "spec" : cluster.name();
    return *this;
  }
  // Without spec text the cluster can only be carried as paper node codes,
  // which RunExperiment rebuilds via PaperSubset (4 homogeneous GPUs per
  // node, default links). Refuse anything that reduction would silently
  // misrepresent — mixed-class nodes, and non-default link models, which two
  // transfer-time probes per link fully detect (the models are affine in the
  // byte count, so probes at two distinct non-zero sizes pin down both the
  // latency/intercept and the slope; a 0-byte probe would miss latency
  // because TransferTime(0) is 0 by definition).
  const hw::PcieLink default_pcie;
  const hw::InfinibandLink default_ib;
  const bool default_links =
      cluster.pcie().TransferTime(1) == default_pcie.TransferTime(1) &&
      cluster.pcie().TransferTime(1ULL << 20) == default_pcie.TransferTime(1ULL << 20) &&
      cluster.infiniband().TransferTime(1) == default_ib.TransferTime(1) &&
      cluster.infiniband().TransferTime(1ULL << 20) == default_ib.TransferTime(1ULL << 20);
  bool paper_nodes = true;
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    paper_nodes = paper_nodes && static_cast<int>(cluster.NodeType(n)) < hw::kNumGpuTypes &&
                  cluster.NodeGpuCount(n) == 4 && cluster.NodeHomogeneous(n);
  }
  // A rack topology or per-pair override cannot be expressed as node codes
  // either; PaperSubset always rebuilds a uniform, rack-free fabric. Racks
  // matter even with uniform links: the traffic accounting reads them.
  if (!paper_nodes || !default_links || !cluster.UniformFabric() ||
      cluster.NodeRack(0) >= 0) {
    throw std::invalid_argument(
        "UseCluster: non-paper clusters must be built from a hw::ClusterSpec "
        "(spec_text is empty, so this cluster cannot be rebuilt faithfully)");
  }
  cluster_nodes = NodeCodesOf(cluster);
  cluster_label.clear();
  return *this;
}

std::string Experiment::ModelLabel() const {
  return model_name.empty() ? ModelName(model) : model_name;
}

std::string Experiment::ClusterLabel() const {
  if (!cluster_label.empty()) {
    return cluster_label;
  }
  return cluster_spec.empty() ? cluster_nodes : "spec";
}

std::string Experiment::Describe() const {
  std::ostringstream os;
  os << KindName(kind) << " " << ModelLabel() << " " << ClusterLabel();
  if (!vw_codes.empty()) {
    os << " vw=" << vw_codes;
  }
  if (kind == ExperimentKind::kPartitionOnly) {
    os << " " << StrategyName(strategy);
  }
  if (config.nm > 0) {
    os << " nm=" << config.nm;
  }
  if (kind == ExperimentKind::kFullCluster) {
    os << " " << cluster::PolicyName(config.allocation) << " d=" << config.sync.d;
  }
  return os.str();
}

HetPipeConfig EdLocalConfig(int d, double jitter_cv) {
  HetPipeConfig config;
  config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  config.placement = wsp::PlacementPolicy::kLocal;
  config.sync = wsp::SyncPolicy::Wsp(d);
  config.jitter_cv = jitter_cv;
  // Correlated slowdowns accompany the iid jitter in the convergence and
  // wait-time studies: they are what the clock-distance threshold D absorbs.
  config.drift_cv = jitter_cv * 2.0;
  config.speed_bias_cv = jitter_cv > 0.0 ? 0.05 : 0.0;
  config.waves = 60;
  return config;
}

namespace {

ExperimentResult RunPartitionOnly(const Experiment& experiment, const hw::Cluster& cluster,
                                  const model::ModelGraph& graph) {
  ExperimentResult result;
  const model::ModelProfile profile(graph, experiment.config.batch_size);
  const partition::Partitioner partitioner(profile, cluster);
  const std::vector<int> gpu_ids = PickGpus(cluster, experiment.vw_codes);
  const int nm = std::max(1, experiment.config.nm);

  if (experiment.strategy == PartitionStrategy::kMinMaxDp) {
    partition::PartitionOptions options;
    options.nm = nm;
    options.mem_params = experiment.config.mem_params;
    options.pool = experiment.config.pool;
    result.partition = experiment.config.partition_cache != nullptr
                           ? experiment.config.partition_cache->Solve(partitioner, gpu_ids, options)
                           : partitioner.Solve(gpu_ids, options);
  } else {
    const partition::NaiveSplit kind = experiment.strategy == PartitionStrategy::kEqualLayers
                                           ? partition::NaiveSplit::kEqualLayers
                                           : partition::NaiveSplit::kParamBalanced;
    result.partition = partition::BuildFixedPartition(
        profile, cluster, gpu_ids,
        partition::NaiveStageLasts(graph, static_cast<int>(gpu_ids.size()), kind), nm,
        experiment.config.mem_params);
  }
  result.feasible = !result.partition.stages.empty();

  // The ablations simulate naive splits even when they blow the memory cap;
  // `partition.feasible` still records whether every stage fits.
  if (experiment.simulate && result.feasible) {
    sim::Simulator simulator;
    pipeline::OpenGate gate;
    pipeline::VirtualWorkerOptions options;
    options.nm = nm;
    options.jitter_cv = experiment.config.jitter_cv;
    options.seed = experiment.config.seed;
    options.max_minibatches = experiment.config.waves * nm;
    pipeline::VirtualWorkerSim vw(0, simulator, result.partition, gate, options);
    vw.Start();
    simulator.Run();
    result.throughput_img_s =
        SteadyStateThroughput(vw.completion_times(), experiment.config.warmup_waves * nm,
                              experiment.config.batch_size);
  }
  return result;
}

}  // namespace

ExperimentResult RunExperiment(const Experiment& experiment) {
  const hw::Cluster cluster = experiment.cluster_spec.empty()
                                  ? hw::Cluster::PaperSubset(experiment.cluster_nodes)
                                  : hw::ClusterSpec::Parse(experiment.cluster_spec).Build();
  std::optional<model::ModelGraph> built_model;
  if (experiment.graph == nullptr) {
    built_model.emplace(BuildModel(experiment.model));
  }
  const model::ModelGraph& graph =
      experiment.graph != nullptr ? *experiment.graph : *built_model;

  ExperimentResult result;
  switch (experiment.kind) {
    case ExperimentKind::kFullCluster: {
      result.report = HetPipe(cluster, graph, experiment.config).Run();
      result.feasible = result.report.feasible;
      result.throughput_img_s = result.report.throughput_img_s;
      break;
    }
    case ExperimentKind::kSingleVirtualWorker: {
      const std::vector<int> gpu_ids = PickGpus(cluster, experiment.vw_codes);
      const int nm = std::max(1, experiment.config.nm);
      result.report =
          HetPipe::RunSingleVirtualWorker(cluster, graph, gpu_ids, nm, experiment.config);
      result.feasible = result.report.feasible;
      result.throughput_img_s = result.report.throughput_img_s;
      if (result.feasible && !result.report.vws.empty()) {
        result.partition = result.report.vws.front().partition;
      }
      break;
    }
    case ExperimentKind::kPartitionOnly: {
      result = RunPartitionOnly(experiment, cluster, graph);
      break;
    }
    case ExperimentKind::kHorovod: {
      const model::ModelProfile profile(graph, experiment.config.batch_size);
      result.horovod = dp::SimulateHorovod(cluster, profile);
      result.feasible = result.horovod.feasible;
      result.throughput_img_s = result.horovod.throughput_img_s;
      break;
    }
    case ExperimentKind::kPsDataParallel: {
      const model::ModelProfile profile(graph, experiment.config.batch_size);
      result.ps = dp::SimulatePsDataParallel(cluster, profile, experiment.ps);
      result.feasible = result.ps.feasible;
      result.throughput_img_s = result.ps.throughput_img_s;
      break;
    }
    case ExperimentKind::kAdPsgd: {
      const model::ModelProfile profile(graph, experiment.config.batch_size);
      result.adpsgd = dp::SimulateAdPsgd(cluster, profile);
      result.feasible = result.adpsgd.feasible;
      result.throughput_img_s = result.adpsgd.throughput_img_s;
      break;
    }
  }
  result.name = experiment.name.empty() ? experiment.Describe() : experiment.name;
  return result;
}

namespace {

// Runs on the caller's runner when given, else on a transient local one.
std::vector<ExperimentResult> RunOn(runner::SweepRunner* runner,
                                    const std::vector<Experiment>& experiments) {
  if (runner != nullptr) {
    return runner->Run(experiments);
  }
  runner::SweepRunner local;
  return local.Run(experiments);
}

}  // namespace

std::vector<Fig3Point> RunFig3Config(const hw::Cluster& cluster, const model::ModelGraph& graph,
                                     const std::string& codes, int nm_max,
                                     runner::SweepRunner* runner) {
  std::vector<Experiment> experiments;
  for (int nm = 1; nm <= nm_max; ++nm) {
    Experiment e;
    e.kind = ExperimentKind::kSingleVirtualWorker;
    e.UseGraph(graph).UseCluster(cluster);
    e.vw_codes = codes;
    e.config.nm = nm;
    e.config.waves = 40;
    e.config.warmup_waves = 5;
    e.config.jitter_cv = 0.0;  // Fig. 3 is a deterministic single-VW sweep
    experiments.push_back(std::move(e));
  }
  const std::vector<ExperimentResult> results = RunOn(runner, experiments);

  std::vector<Fig3Point> points;
  double base = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    Fig3Point point;
    point.nm = experiments[i].config.nm;
    point.feasible = r.feasible;
    if (r.feasible) {
      point.throughput_img_s = r.throughput_img_s;
      point.max_utilization = r.report.vws.front().max_stage_utilization;
      if (point.nm == 1) {
        base = r.throughput_img_s;
      }
      point.normalized = base > 0.0 ? r.throughput_img_s / base : 0.0;
    }
    points.push_back(point);
  }
  return points;
}

std::vector<Fig4Row> RunFig4(const hw::Cluster& cluster, const model::ModelGraph& graph,
                             double jitter_cv, runner::SweepRunner* runner) {
  struct PolicyRow {
    const char* label;
    cluster::AllocationPolicy allocation;
    wsp::PlacementPolicy placement;
  };
  const PolicyRow kPolicies[] = {
      {"NP", cluster::AllocationPolicy::kNodePartition, wsp::PlacementPolicy::kRoundRobin},
      {"ED", cluster::AllocationPolicy::kEqualDistribution, wsp::PlacementPolicy::kRoundRobin},
      {"ED-local", cluster::AllocationPolicy::kEqualDistribution, wsp::PlacementPolicy::kLocal},
      {"HD", cluster::AllocationPolicy::kHybridDistribution, wsp::PlacementPolicy::kRoundRobin},
  };

  std::vector<Experiment> experiments;
  {
    Experiment e;
    e.name = "Horovod";
    e.kind = ExperimentKind::kHorovod;
    e.UseGraph(graph).UseCluster(cluster);
    experiments.push_back(std::move(e));
  }
  for (const PolicyRow& policy : kPolicies) {
    Experiment e;
    e.name = policy.label;
    e.kind = ExperimentKind::kFullCluster;
    e.UseGraph(graph).UseCluster(cluster);
    e.config.allocation = policy.allocation;
    e.config.placement = policy.placement;
    e.config.sync = wsp::SyncPolicy::Wsp(0);
    e.config.jitter_cv = jitter_cv;
    e.config.waves = 40;
    experiments.push_back(std::move(e));
  }
  const std::vector<ExperimentResult> results = RunOn(runner, experiments);

  std::vector<Fig4Row> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    Fig4Row row;
    row.label = experiments[i].name;
    row.feasible = r.feasible;
    if (experiments[i].kind == ExperimentKind::kHorovod) {
      row.gpus_used = static_cast<int>(r.horovod.worker_gpus.size());
      row.throughput_img_s = r.horovod.throughput_img_s;
    } else if (r.feasible) {
      row.nm = r.report.nm;
      row.throughput_img_s = r.throughput_img_s;
      row.gpus_used = cluster.num_gpus();
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<Table4Cell> RunTable4(const model::ModelGraph& graph, double jitter_cv,
                                  runner::SweepRunner* runner) {
  const struct {
    const char* nodes;
    const char* label;
  } kSubsets[] = {
      {"V", "4 GPUs 4[V]"},
      {"VR", "8 GPUs 4[VR]"},
      {"VRQ", "12 GPUs 4[VRQ]"},
      {"VRQG", "16 GPUs 4[VRQG]"},
  };

  std::vector<Experiment> experiments;
  for (const auto& subset : kSubsets) {
    Experiment horovod;
    horovod.kind = ExperimentKind::kHorovod;
    horovod.UseGraph(graph);
    horovod.cluster_nodes = subset.nodes;
    experiments.push_back(std::move(horovod));

    Experiment hetpipe;
    hetpipe.kind = ExperimentKind::kFullCluster;
    hetpipe.UseGraph(graph);
    hetpipe.cluster_nodes = subset.nodes;
    // A single node forms one virtual worker (the paper's V4 case); multiple
    // nodes use ED with local parameter placement.
    hetpipe.config.allocation = std::string(subset.nodes).size() == 1
                                    ? cluster::AllocationPolicy::kNodePartition
                                    : cluster::AllocationPolicy::kEqualDistribution;
    hetpipe.config.placement = wsp::PlacementPolicy::kLocal;
    hetpipe.config.sync = wsp::SyncPolicy::Wsp(0);
    hetpipe.config.jitter_cv = jitter_cv;
    hetpipe.config.waves = 40;
    experiments.push_back(std::move(hetpipe));
  }
  const std::vector<ExperimentResult> results = RunOn(runner, experiments);

  std::vector<Table4Cell> cells;
  for (size_t s = 0; s < std::size(kSubsets); ++s) {
    const ExperimentResult& horovod = results[2 * s];
    const ExperimentResult& hetpipe = results[2 * s + 1];
    Table4Cell cell;
    cell.cluster_label = kSubsets[s].label;
    cell.num_gpus = hw::Cluster::PaperSubset(kSubsets[s].nodes).num_gpus();
    cell.horovod_feasible =
        horovod.horovod.feasible &&
        horovod.horovod.num_excluded == 0;  // the paper reports X otherwise
    cell.horovod_img_s = horovod.horovod.feasible ? horovod.horovod.throughput_img_s : 0.0;
    if (hetpipe.feasible) {
      cell.hetpipe_img_s = hetpipe.throughput_img_s;
      cell.total_concurrent_minibatches =
          hetpipe.report.nm * static_cast<int>(hetpipe.report.vws.size());
    }
    cells.push_back(cell);
  }
  return cells;
}

namespace {

ConvergenceSeries MakeSeries(const std::string& label, const ConvergenceModel& model,
                             double throughput, double missing_updates, double target,
                             double max_hours) {
  ConvergenceSeries series;
  series.label = label;
  series.throughput_img_s = throughput;
  series.avg_missing_updates = missing_updates;
  ConvergenceInput input;
  input.throughput_img_s = throughput;
  input.avg_missing_updates = missing_updates;
  series.hours_to_target = model.HoursToAccuracy(input, target);
  series.curve = model.Curve(input, max_hours, max_hours / 144.0);
  return series;
}

Experiment EdLocalExperiment(const std::string& name, ModelKind model,
                             const std::string& cluster_nodes, int d, double jitter_cv) {
  Experiment e;
  e.name = name;
  e.kind = ExperimentKind::kFullCluster;
  e.model = model;
  e.cluster_nodes = cluster_nodes;
  e.config = EdLocalConfig(d, jitter_cv);
  return e;
}

}  // namespace

std::vector<ConvergenceSeries> RunFig5(double jitter_cv, double target_accuracy,
                                       runner::SweepRunner* runner) {
  const ConvergenceModel model = ConvergenceModel::For(model::ModelFamily::kResNet152);
  constexpr double kMaxHours = 72.0;

  // Horovod cannot use the G GPUs (ResNet-152 exceeds their 6 GiB), so its
  // best configuration is the 12-GPU V/R/Q subset.
  std::vector<Experiment> experiments;
  {
    Experiment horovod;
    horovod.name = "Horovod (12 GPUs)";
    horovod.kind = ExperimentKind::kHorovod;
    horovod.model = ModelKind::kResNet152;
    horovod.cluster_nodes = "VRQ";
    experiments.push_back(std::move(horovod));
  }
  experiments.push_back(
      EdLocalExperiment("HetPipe (12 GPUs)", ModelKind::kResNet152, "VRQ", 0, jitter_cv));
  experiments.push_back(
      EdLocalExperiment("HetPipe (16 GPUs)", ModelKind::kResNet152, "VRGQ", 0, jitter_cv));
  const std::vector<ExperimentResult> results = RunOn(runner, experiments);

  std::vector<ConvergenceSeries> out;
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const double staleness = experiments[i].kind == ExperimentKind::kHorovod
                                 ? 0.0
                                 : r.report.AvgMissingUpdates();
    out.push_back(MakeSeries(r.name, model, r.throughput_img_s, staleness, target_accuracy,
                             kMaxHours));
  }
  return out;
}

std::vector<ConvergenceSeries> RunFig6(double jitter_cv, double target_accuracy,
                                       runner::SweepRunner* runner) {
  const ConvergenceModel model = ConvergenceModel::For(model::ModelFamily::kVgg19);
  constexpr double kMaxHours = 144.0;

  std::vector<Experiment> experiments;
  {
    Experiment horovod;
    horovod.name = "Horovod";
    horovod.kind = ExperimentKind::kHorovod;
    horovod.model = ModelKind::kVgg19;
    experiments.push_back(std::move(horovod));
  }
  for (int d : {0, 4, 32}) {
    experiments.push_back(EdLocalExperiment("HetPipe D=" + std::to_string(d), ModelKind::kVgg19,
                                            "VRGQ", d, jitter_cv));
  }
  const std::vector<ExperimentResult> results = RunOn(runner, experiments);

  std::vector<ConvergenceSeries> out;
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    const double staleness = experiments[i].kind == ExperimentKind::kHorovod
                                 ? 0.0
                                 : r.report.AvgMissingUpdates();
    out.push_back(MakeSeries(r.name, model, r.throughput_img_s, staleness, target_accuracy,
                             kMaxHours));
  }
  return out;
}

std::vector<StalenessWaitRow> RunStalenessWaitStudy(const model::ModelGraph& graph,
                                                    const std::vector<int>& d_values,
                                                    double jitter_cv,
                                                    runner::SweepRunner* runner) {
  std::vector<Experiment> experiments;
  for (int d : d_values) {
    Experiment e = EdLocalExperiment("D=" + std::to_string(d), ModelKind::kResNet152, "VRGQ",
                                     d, jitter_cv);
    e.UseGraph(graph);
    experiments.push_back(std::move(e));
  }
  const std::vector<ExperimentResult> results = RunOn(runner, experiments);

  std::vector<StalenessWaitRow> rows;
  for (size_t i = 0; i < results.size(); ++i) {
    const HetPipeReport& report = results[i].report;
    StalenessWaitRow row;
    row.d = d_values[i];
    row.throughput_img_s = report.throughput_img_s;
    row.total_wait_s = report.total_wait_s;
    row.idle_fraction_of_wait = report.idle_fraction_of_wait;
    row.avg_clock_distance = report.avg_clock_distance;
    row.avg_global_lag_waves = report.avg_global_lag_waves;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace hetpipe::core
