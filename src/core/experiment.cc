#include "core/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "model/resnet.h"
#include "model/vgg.h"

namespace hetpipe::core {

std::vector<int> PickGpusByCode(const hw::Cluster& cluster, const std::string& codes) {
  std::vector<int> picked;
  std::vector<bool> used(static_cast<size_t>(cluster.num_gpus()), false);
  for (char code : codes) {
    const hw::GpuType type = hw::TypeFromCode(code);
    bool found = false;
    for (const hw::Gpu& gpu : cluster.gpus()) {
      if (gpu.type == type && !used[static_cast<size_t>(gpu.id)]) {
        used[static_cast<size_t>(gpu.id)] = true;
        picked.push_back(gpu.id);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("cluster has no free GPU of type " + std::string(1, code));
    }
  }
  return picked;
}

std::vector<Fig3Point> RunFig3Config(const hw::Cluster& cluster, const model::ModelGraph& graph,
                                     const std::string& codes, int nm_max) {
  const std::vector<int> gpus = PickGpusByCode(cluster, codes);
  HetPipeConfig config;
  config.waves = 40;
  config.warmup_waves = 5;
  config.jitter_cv = 0.0;  // Fig. 3 is a deterministic single-VW sweep

  std::vector<Fig3Point> points;
  double base = 0.0;
  for (int nm = 1; nm <= nm_max; ++nm) {
    Fig3Point point;
    point.nm = nm;
    const HetPipeReport report =
        HetPipe::RunSingleVirtualWorker(cluster, graph, gpus, nm, config);
    point.feasible = report.feasible;
    if (report.feasible) {
      point.throughput_img_s = report.throughput_img_s;
      point.max_utilization = report.vws.front().max_stage_utilization;
      if (nm == 1) {
        base = report.throughput_img_s;
      }
      point.normalized = base > 0.0 ? report.throughput_img_s / base : 0.0;
    }
    points.push_back(point);
  }
  return points;
}

namespace {

Fig4Row RunPolicyRow(const hw::Cluster& cluster, const model::ModelGraph& graph,
                     const std::string& label, cluster::AllocationPolicy allocation,
                     wsp::PlacementPolicy placement, double jitter_cv) {
  HetPipeConfig config;
  config.allocation = allocation;
  config.placement = placement;
  config.sync = wsp::SyncPolicy::Wsp(0);
  config.jitter_cv = jitter_cv;
  config.waves = 40;

  Fig4Row row;
  row.label = label;
  const HetPipeReport report = HetPipe(cluster, graph, config).Run();
  row.feasible = report.feasible;
  if (report.feasible) {
    row.nm = report.nm;
    row.throughput_img_s = report.throughput_img_s;
    row.gpus_used = cluster.num_gpus();
  }
  return row;
}

}  // namespace

std::vector<Fig4Row> RunFig4(const hw::Cluster& cluster, const model::ModelGraph& graph,
                             double jitter_cv) {
  std::vector<Fig4Row> rows;

  const model::ModelProfile profile(graph, 32);
  const dp::HorovodResult horovod = dp::SimulateHorovod(cluster, profile);
  Fig4Row hrow;
  hrow.label = "Horovod";
  hrow.feasible = horovod.feasible;
  hrow.gpus_used = static_cast<int>(horovod.worker_gpus.size());
  hrow.throughput_img_s = horovod.throughput_img_s;
  rows.push_back(hrow);

  rows.push_back(RunPolicyRow(cluster, graph, "NP", cluster::AllocationPolicy::kNodePartition,
                              wsp::PlacementPolicy::kRoundRobin, jitter_cv));
  rows.push_back(RunPolicyRow(cluster, graph, "ED", cluster::AllocationPolicy::kEqualDistribution,
                              wsp::PlacementPolicy::kRoundRobin, jitter_cv));
  rows.push_back(RunPolicyRow(cluster, graph, "ED-local",
                              cluster::AllocationPolicy::kEqualDistribution,
                              wsp::PlacementPolicy::kLocal, jitter_cv));
  rows.push_back(RunPolicyRow(cluster, graph, "HD", cluster::AllocationPolicy::kHybridDistribution,
                              wsp::PlacementPolicy::kRoundRobin, jitter_cv));
  return rows;
}

std::vector<Table4Cell> RunTable4(const model::ModelGraph& graph, double jitter_cv) {
  const struct {
    const char* nodes;
    const char* label;
  } kSubsets[] = {
      {"V", "4 GPUs 4[V]"},
      {"VR", "8 GPUs 4[VR]"},
      {"VRQ", "12 GPUs 4[VRQ]"},
      {"VRQG", "16 GPUs 4[VRQG]"},
  };

  std::vector<Table4Cell> cells;
  for (const auto& subset : kSubsets) {
    const hw::Cluster cluster = hw::Cluster::PaperSubset(subset.nodes);
    Table4Cell cell;
    cell.cluster_label = subset.label;
    cell.num_gpus = cluster.num_gpus();

    const model::ModelProfile profile(graph, 32);
    const dp::HorovodResult horovod = dp::SimulateHorovod(cluster, profile);
    cell.horovod_feasible =
        horovod.feasible && horovod.num_excluded == 0;  // the paper reports X otherwise
    cell.horovod_img_s = horovod.feasible ? horovod.throughput_img_s : 0.0;

    HetPipeConfig config;
    // A single node forms one virtual worker (the paper's V4 case); multiple
    // nodes use ED with local parameter placement.
    config.allocation = cluster.num_nodes() == 1 ? cluster::AllocationPolicy::kNodePartition
                                                 : cluster::AllocationPolicy::kEqualDistribution;
    config.placement = wsp::PlacementPolicy::kLocal;
    config.sync = wsp::SyncPolicy::Wsp(0);
    config.jitter_cv = jitter_cv;
    config.waves = 40;
    const HetPipeReport report = HetPipe(cluster, graph, config).Run();
    if (report.feasible) {
      cell.hetpipe_img_s = report.throughput_img_s;
      cell.total_concurrent_minibatches = report.nm * static_cast<int>(report.vws.size());
    }
    cells.push_back(cell);
  }
  return cells;
}

namespace {

ConvergenceSeries MakeSeries(const std::string& label, const ConvergenceModel& model,
                             double throughput, double missing_updates, double target,
                             double max_hours) {
  ConvergenceSeries series;
  series.label = label;
  series.throughput_img_s = throughput;
  series.avg_missing_updates = missing_updates;
  ConvergenceInput input;
  input.throughput_img_s = throughput;
  input.avg_missing_updates = missing_updates;
  series.hours_to_target = model.HoursToAccuracy(input, target);
  series.curve = model.Curve(input, max_hours, max_hours / 144.0);
  return series;
}

HetPipeReport RunEdLocal(const hw::Cluster& cluster, const model::ModelGraph& graph, int d,
                         double jitter_cv) {
  HetPipeConfig config;
  config.allocation = cluster::AllocationPolicy::kEqualDistribution;
  config.placement = wsp::PlacementPolicy::kLocal;
  config.sync = wsp::SyncPolicy::Wsp(d);
  config.jitter_cv = jitter_cv;
  // Correlated slowdowns accompany the iid jitter in the convergence and
  // wait-time studies: they are what the clock-distance threshold D absorbs.
  config.drift_cv = jitter_cv * 2.0;
  config.speed_bias_cv = jitter_cv > 0.0 ? 0.05 : 0.0;
  config.waves = 60;
  return HetPipe(cluster, graph, config).Run();
}

}  // namespace

std::vector<ConvergenceSeries> RunFig5(double jitter_cv, double target_accuracy) {
  const model::ModelGraph graph = model::BuildResNet152();
  const ConvergenceModel model = ConvergenceModel::For(graph.family());
  constexpr double kMaxHours = 72.0;

  std::vector<ConvergenceSeries> out;

  // Horovod cannot use the G GPUs (ResNet-152 exceeds their 6 GiB), so its
  // best configuration is the 12-GPU V/R/Q subset.
  const hw::Cluster cluster12 = hw::Cluster::PaperSubset("VRQ");
  const model::ModelProfile profile(graph, 32);
  const dp::HorovodResult horovod = dp::SimulateHorovod(cluster12, profile);
  out.push_back(MakeSeries("Horovod (12 GPUs)", model, horovod.throughput_img_s, 0.0,
                           target_accuracy, kMaxHours));

  const HetPipeReport r12 = RunEdLocal(cluster12, graph, /*d=*/0, jitter_cv);
  out.push_back(MakeSeries("HetPipe (12 GPUs)", model, r12.throughput_img_s,
                           r12.AvgMissingUpdates(), target_accuracy, kMaxHours));

  const hw::Cluster cluster16 = hw::Cluster::Paper();
  const HetPipeReport r16 = RunEdLocal(cluster16, graph, /*d=*/0, jitter_cv);
  out.push_back(MakeSeries("HetPipe (16 GPUs)", model, r16.throughput_img_s,
                           r16.AvgMissingUpdates(), target_accuracy, kMaxHours));
  return out;
}

std::vector<ConvergenceSeries> RunFig6(double jitter_cv, double target_accuracy) {
  const model::ModelGraph graph = model::BuildVgg19();
  const ConvergenceModel model = ConvergenceModel::For(graph.family());
  constexpr double kMaxHours = 144.0;

  std::vector<ConvergenceSeries> out;
  const hw::Cluster cluster = hw::Cluster::Paper();
  const model::ModelProfile profile(graph, 32);
  const dp::HorovodResult horovod = dp::SimulateHorovod(cluster, profile);
  out.push_back(MakeSeries("Horovod", model, horovod.throughput_img_s, 0.0, target_accuracy,
                           kMaxHours));

  for (int d : {0, 4, 32}) {
    const HetPipeReport report = RunEdLocal(cluster, graph, d, jitter_cv);
    out.push_back(MakeSeries("HetPipe D=" + std::to_string(d), model, report.throughput_img_s,
                             report.AvgMissingUpdates(), target_accuracy, kMaxHours));
  }
  return out;
}

std::vector<StalenessWaitRow> RunStalenessWaitStudy(const model::ModelGraph& graph,
                                                    const std::vector<int>& d_values,
                                                    double jitter_cv) {
  const hw::Cluster cluster = hw::Cluster::Paper();
  std::vector<StalenessWaitRow> rows;
  for (int d : d_values) {
    const HetPipeReport report = RunEdLocal(cluster, graph, d, jitter_cv);
    StalenessWaitRow row;
    row.d = d;
    row.throughput_img_s = report.throughput_img_s;
    row.total_wait_s = report.total_wait_s;
    row.idle_fraction_of_wait = report.idle_fraction_of_wait;
    row.avg_clock_distance = report.avg_clock_distance;
    row.avg_global_lag_waves = report.avg_global_lag_waves;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace hetpipe::core
