#pragma once

#include <cstdint>

namespace hetpipe::hw {

// Analytic model of a communication link: time to move `bytes` across it.
//
// The paper (§7) models intra-node transfers as PCIe peak bandwidth scaled by
// a constant measured with a synthetic benchmark (as in Paleo), and
// inter-node Infiniband transfers with a linear regression fit to 27 samples.
// We reproduce both functional forms with constants in those ranges.
class LinkModel {
 public:
  virtual ~LinkModel() = default;
  // Seconds to transfer `bytes`.
  virtual double TransferTime(uint64_t bytes) const = 0;
  // Effective bandwidth in bytes/second for large transfers.
  virtual double EffectiveBandwidth() const = 0;
};

// PCIe 3.0 x16: 15.75 GB/s peak, scaled down because the peak is never
// achievable in practice.
class PcieLink final : public LinkModel {
 public:
  explicit PcieLink(double peak_gbps = kDefaultPeakGBps,
                    double scaling = kDefaultScaling,
                    double latency_s = kDefaultLatency);

  double TransferTime(uint64_t bytes) const override;
  double EffectiveBandwidth() const override { return effective_bps_; }
  double latency_s() const { return latency_s_; }

  static constexpr double kDefaultPeakGBps = 15.75;  // PCIe 3.0 x16
  static constexpr double kDefaultScaling = 0.66;    // measured scale-down constant
  static constexpr double kDefaultLatency = 10e-6;   // per-transfer setup cost

 private:
  double effective_bps_;
  double latency_s_;
};

// Infiniband FDR (56 Gbps): linear model time = intercept + bytes / bandwidth,
// the same functional form the paper fits by regression. The default
// efficiency reflects what the TensorFlow runtime actually achieves moving
// large tensors between processes (gRPC serialization over IPoIB sustains
// well under 1 GB/s), not the NIC line rate — this is the regression the
// paper fits from 27 samples of real DNN-partition transfers (§7). The
// Horovod baseline, which uses NCCL-style collectives instead of the TF
// runtime, models its own (much higher) effective bandwidth in dp/horovod.h.
class InfinibandLink final : public LinkModel {
 public:
  explicit InfinibandLink(double raw_gbits = kDefaultRawGbits,
                          double efficiency = kDefaultEfficiency,
                          double intercept_s = kDefaultIntercept);

  double TransferTime(uint64_t bytes) const override;
  double EffectiveBandwidth() const override { return effective_bps_; }
  double intercept_s() const { return intercept_s_; }

  static constexpr double kDefaultRawGbits = 56.0;    // FDR Infiniband
  static constexpr double kDefaultEfficiency = 0.11;  // TF gRPC regression slope
  static constexpr double kDefaultIntercept = 100e-6; // regression intercept

 private:
  double effective_bps_;
  double intercept_s_;
};

}  // namespace hetpipe::hw
