#include "hw/cluster_spec.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace hetpipe::hw {
namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& context) {
  throw std::invalid_argument("cluster spec: " + what +
                              (context.empty() ? "" : " in \"" + context + "\""));
}

// Shortest round-trip decimal form, so ToString() -> Parse() is lossless.
std::string FormatDouble(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    return std::to_string(v);
  }
  return std::string(buf, ptr);
}

double ParseDouble(const std::string& token, const std::string& context) {
  double v = 0.0;
  const char* begin = token.c_str();
  const auto [ptr, ec] = std::from_chars(begin, begin + token.size(), v);
  if (ec != std::errc() || ptr != begin + token.size()) {
    Fail("expected a number, got \"" + token + "\"", context);
  }
  return v;
}

// Strict positive-integer parse: the whole token must be digits and the value
// must fit an int. Overflow and junk fail with a clear message instead of a
// raw exception or silent truncation (std::stoi throws, std::atoi returns 0).
int ParseCount(const std::string& token, const std::string& what, const std::string& context) {
  int v = 0;
  const char* begin = token.c_str();
  const auto [ptr, ec] = std::from_chars(begin, begin + token.size(), v);
  if (ec == std::errc::result_out_of_range) {
    Fail(what + " out of range: \"" + token + "\"", context);
  }
  if (ec != std::errc() || ptr != begin + token.size() || token.empty()) {
    Fail("expected a count for " + what + ", got \"" + token + "\"", context);
  }
  if (v <= 0) {
    Fail(what + " must be positive, got \"" + token + "\"", context);
  }
  return v;
}

// Parses a "node<index>" reference (0-based) as used by rack and link
// statements. Range checking against the declared node list happens in
// Validate, so references may precede the node declarations.
int ParseNodeRef(const std::string& token, const std::string& context) {
  if (token.rfind("node", 0) != 0 || token.size() == 4) {
    Fail("expected node<index>, got \"" + token + "\"", context);
  }
  const std::string digits = token.substr(4);
  int v = 0;
  const char* begin = digits.c_str();
  const auto [ptr, ec] = std::from_chars(begin, begin + digits.size(), v);
  if (ec != std::errc() || ptr != begin + digits.size() || v < 0) {
    Fail("expected node<index>, got \"" + token + "\"", context);
  }
  return v;
}

std::vector<std::string> Tokenize(const std::string& statement) {
  std::vector<std::string> tokens;
  std::istringstream in(statement);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

// Splits "key=value"; returns false when `token` has no '='.
bool SplitKeyValue(const std::string& token, std::string* key, std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

// True for the paper classes' single code letters (V/R/G/Q). Node
// declarations deliberately accept only built-in letters — registered
// classes are referenced by name, since their display codes are
// auto-assigned and thus unstable across processes.
bool IsBuiltinCodeLetter(const std::string& type) {
  return type.size() == 1 &&
         (type == "V" || type == "R" || type == "G" || type == "Q");
}

// Resolves a node's type string against the spec's declared classes, then the
// global registry by name, then the built-in code letters.
GpuType ResolveType(const ClusterSpec& spec, const std::string& type) {
  for (const GpuClassDecl& decl : spec.gpu_classes) {
    if (decl.name == type) {
      return RegisterGpuType(decl.name, decl.tflops, decl.memory_gib, decl.code);
    }
  }
  if (const GpuSpec* known = FindGpuTypeByName(type)) {
    return known->type;
  }
  if (IsBuiltinCodeLetter(type)) {
    return TypeFromCode(type[0]);
  }
  Fail("unknown GPU type \"" + type + "\"", "");
}

// Parses the brace form "{<type>[*<count>],...}" of a mixed-class node.
NodeDecl ParseMixedNode(const std::string& braced, const std::string& context) {
  if (braced.size() < 2 || braced.front() != '{' || braced.back() != '}') {
    Fail("expected node{<type>[*<count>],...}, got \"" + braced + "\"", context);
  }
  const std::string list = braced.substr(1, braced.size() - 2);
  NodeDecl decl;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = std::min(list.find(',', start), list.size());
    std::string term = list.substr(start, comma - start);
    const bool last = comma >= list.size();
    start = comma + 1;
    if (term.empty()) {
      if (last && !decl.groups.empty()) {
        break;  // tolerate a trailing comma
      }
      Fail("empty group in node list", context);
    }
    NodeGroup group;
    const size_t star = term.find('*');
    if (star != std::string::npos) {
      group.count = ParseCount(term.substr(star + 1), "GPU count", context);
      term.resize(star);
    }
    if (term.empty()) {
      Fail("missing GPU type before '*'", context);
    }
    group.type = std::move(term);
    decl.groups.push_back(std::move(group));
    if (last) {
      break;
    }
  }
  if (decl.groups.empty()) {
    Fail("node needs at least one GPU group", context);
  }
  return decl;
}

// Parses the classic "<count>x<type>" / bare-type node argument.
NodeDecl ParseHomogeneousNode(const std::string& arg, const std::string& context) {
  size_t digits = 0;
  while (digits < arg.size() && std::isdigit(static_cast<unsigned char>(arg[digits])) != 0) {
    ++digits;
  }
  if (digits == 0) {
    return NodeDecl(arg, 1);  // bare type name: one GPU
  }
  if (digits + 1 >= arg.size() || arg[digits] != 'x') {
    Fail("expected <count>x<type>, got \"" + arg + "\"", context);
  }
  const int count = ParseCount(arg.substr(0, digits), "node count", context);
  return NodeDecl(arg.substr(digits + 1), count);
}

// The scalar link-knob statements, shared by Parse and ToString. A knob is
// emitted only when it differs from its default, so specs that never mention
// one stay bit-identical across versions.
struct LinkKnob {
  const char* statement;
  double ClusterSpec::*field;
  double default_value;
};

constexpr LinkKnob kLinkKnobs[] = {
    {"intra_gbps", &ClusterSpec::intra_gbps, PcieLink::kDefaultPeakGBps},
    {"intra_scaling", &ClusterSpec::intra_scaling, PcieLink::kDefaultScaling},
    {"intra_latency_s", &ClusterSpec::intra_latency_s, PcieLink::kDefaultLatency},
    {"inter_gbits", &ClusterSpec::inter_gbits, InfinibandLink::kDefaultRawGbits},
    {"inter_efficiency", &ClusterSpec::inter_efficiency, InfinibandLink::kDefaultEfficiency},
    {"inter_intercept_s", &ClusterSpec::inter_intercept_s, InfinibandLink::kDefaultIntercept},
};

// The optional cross-rack knobs: unset inherits the matching inter_* value,
// so there is no default to compare against — emitted whenever set.
struct CrossRackKnob {
  const char* statement;
  std::optional<double> ClusterSpec::*field;
};

constexpr CrossRackKnob kCrossRackKnobs[] = {
    {"cross_rack_gbits", &ClusterSpec::cross_rack_gbits},
    {"cross_rack_efficiency", &ClusterSpec::cross_rack_efficiency},
    {"cross_rack_intercept_s", &ClusterSpec::cross_rack_intercept_s},
};

// Parses "rack <name> { node0 node1 ... }"; the braces may be glued to their
// neighbors ("rack r0 {node0 node1}"), so the statement is re-joined and
// split on the braces before the member list is tokenized.
RackDecl ParseRack(const std::vector<std::string>& tokens, const std::string& context) {
  std::string joined;
  for (size_t t = 1; t < tokens.size(); ++t) {
    if (t > 1) {
      joined.push_back(' ');
    }
    joined += tokens[t];
  }
  const size_t open = joined.find('{');
  const size_t close = joined.rfind('}');
  if (open == std::string::npos || close == std::string::npos || close < open ||
      close + 1 != joined.size() || joined.find('{', open + 1) != std::string::npos ||
      joined.find('}') != close) {
    Fail("expected rack <name> { node<i> ... }", context);
  }
  RackDecl rack;
  for (const std::string& token : Tokenize(joined.substr(0, open))) {
    if (!rack.name.empty()) {
      Fail("rack takes exactly one name", context);
    }
    rack.name = token;
  }
  if (rack.name.empty()) {
    Fail("rack needs a name", context);
  }
  for (const std::string& token : Tokenize(joined.substr(open + 1, close - open - 1))) {
    rack.nodes.push_back(ParseNodeRef(token, context));
  }
  if (rack.nodes.empty()) {
    Fail("rack " + rack.name + " needs at least one node", context);
  }
  return rack;
}

// Parses "link node<a><->node<b> <key> <value> ..." with keys gbits /
// efficiency / intercept_s; the pair is canonicalized to node_a < node_b.
LinkOverrideDecl ParseLinkOverride(const std::vector<std::string>& tokens,
                                   const std::string& context) {
  if (tokens.size() < 4 || tokens.size() % 2 != 0) {
    Fail("expected link node<a><->node<b> <key> <value> ...", context);
  }
  const std::string& pair = tokens[1];
  const size_t arrow = pair.find("<->");
  if (arrow == std::string::npos) {
    Fail("expected node<a><->node<b>, got \"" + pair + "\"", context);
  }
  LinkOverrideDecl decl;
  decl.node_a = ParseNodeRef(pair.substr(0, arrow), context);
  decl.node_b = ParseNodeRef(pair.substr(arrow + 3), context);
  if (decl.node_a > decl.node_b) {
    std::swap(decl.node_a, decl.node_b);
  }
  for (size_t t = 2; t + 1 < tokens.size(); t += 2) {
    const std::string& key = tokens[t];
    const double value = ParseDouble(tokens[t + 1], context);
    std::optional<double>* field = nullptr;
    if (key == "gbits") {
      field = &decl.gbits;
    } else if (key == "efficiency") {
      field = &decl.efficiency;
    } else if (key == "intercept_s") {
      field = &decl.intercept_s;
    } else {
      Fail("unknown link attribute \"" + key + "\"", context);
    }
    if (field->has_value()) {
      Fail("duplicate link attribute \"" + key + "\"", context);
    }
    *field = value;
  }
  return decl;
}

// Declared rack index of `node`, or -1 when the node is not named by any
// rack (an implicit single-node rack of its own).
int DeclaredRackOf(const ClusterSpec& spec, int node) {
  for (size_t r = 0; r < spec.racks.size(); ++r) {
    for (int member : spec.racks[r].nodes) {
      if (member == node) {
        return static_cast<int>(r);
      }
    }
  }
  return -1;
}

}  // namespace

int NodeDecl::TotalCount() const {
  int total = 0;
  for (const NodeGroup& group : groups) {
    total += group.count;
  }
  return total;
}

bool operator==(const GpuClassDecl& a, const GpuClassDecl& b) {
  return a.name == b.name && a.tflops == b.tflops && a.memory_gib == b.memory_gib &&
         a.code == b.code;
}

bool operator==(const NodeGroup& a, const NodeGroup& b) {
  return a.type == b.type && a.count == b.count;
}

bool operator==(const NodeDecl& a, const NodeDecl& b) { return a.groups == b.groups; }

bool operator==(const RackDecl& a, const RackDecl& b) {
  return a.name == b.name && a.nodes == b.nodes;
}

bool operator==(const LinkOverrideDecl& a, const LinkOverrideDecl& b) {
  return a.node_a == b.node_a && a.node_b == b.node_b && a.gbits == b.gbits &&
         a.efficiency == b.efficiency && a.intercept_s == b.intercept_s;
}

bool operator==(const ClusterSpec& a, const ClusterSpec& b) {
  if (a.name != b.name || a.gpu_classes != b.gpu_classes || a.nodes != b.nodes ||
      a.racks != b.racks || a.link_overrides != b.link_overrides) {
    return false;
  }
  for (const LinkKnob& knob : kLinkKnobs) {
    if (a.*(knob.field) != b.*(knob.field)) {
      return false;
    }
  }
  for (const CrossRackKnob& knob : kCrossRackKnobs) {
    if (a.*(knob.field) != b.*(knob.field)) {
      return false;
    }
  }
  return true;
}

ClusterSpec& ClusterSpec::Named(std::string label) {
  name = std::move(label);
  return *this;
}

ClusterSpec& ClusterSpec::AddGpuClass(std::string class_name, double tflops, double memory_gib,
                                      char code) {
  gpu_classes.push_back(GpuClassDecl{std::move(class_name), tflops, memory_gib, code});
  return *this;
}

ClusterSpec& ClusterSpec::AddNode(std::string type, int count) {
  nodes.push_back(NodeDecl(std::move(type), count));
  return *this;
}

ClusterSpec& ClusterSpec::AddMixedNode(std::vector<NodeGroup> groups) {
  nodes.push_back(NodeDecl(std::move(groups)));
  return *this;
}

ClusterSpec& ClusterSpec::IntraGbps(double gbps) {
  intra_gbps = gbps;
  return *this;
}

ClusterSpec& ClusterSpec::IntraScaling(double scaling) {
  intra_scaling = scaling;
  return *this;
}

ClusterSpec& ClusterSpec::IntraLatencyS(double latency_s) {
  intra_latency_s = latency_s;
  return *this;
}

ClusterSpec& ClusterSpec::InterGbits(double gbits) {
  inter_gbits = gbits;
  return *this;
}

ClusterSpec& ClusterSpec::InterEfficiency(double efficiency) {
  inter_efficiency = efficiency;
  return *this;
}

ClusterSpec& ClusterSpec::InterInterceptS(double intercept_s) {
  inter_intercept_s = intercept_s;
  return *this;
}

ClusterSpec& ClusterSpec::AddRack(std::string rack_name, std::vector<int> node_indices) {
  racks.push_back(RackDecl{std::move(rack_name), std::move(node_indices)});
  return *this;
}

ClusterSpec& ClusterSpec::CrossRackGbits(double gbits) {
  cross_rack_gbits = gbits;
  return *this;
}

ClusterSpec& ClusterSpec::CrossRackEfficiency(double efficiency) {
  cross_rack_efficiency = efficiency;
  return *this;
}

ClusterSpec& ClusterSpec::CrossRackInterceptS(double intercept_s) {
  cross_rack_intercept_s = intercept_s;
  return *this;
}

ClusterSpec& ClusterSpec::OverrideLink(int node_a, int node_b, std::optional<double> gbits,
                                       std::optional<double> efficiency,
                                       std::optional<double> intercept_s) {
  LinkOverrideDecl decl;
  decl.node_a = std::min(node_a, node_b);
  decl.node_b = std::max(node_a, node_b);
  decl.gbits = gbits;
  decl.efficiency = efficiency;
  decl.intercept_s = intercept_s;
  link_overrides.push_back(std::move(decl));
  return *this;
}

ClusterSpec ClusterSpec::Parse(const std::string& text) {
  ClusterSpec spec;
  std::string statement;
  std::vector<std::string> statements;
  for (size_t i = 0; i <= text.size(); ++i) {
    const char c = i < text.size() ? text[i] : '\n';
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') {
        ++i;
      }
      statements.push_back(statement);
      statement.clear();
    } else if (c == '\n' || c == ';') {
      statements.push_back(statement);
      statement.clear();
    } else {
      statement.push_back(c);
    }
  }

  for (const std::string& raw : statements) {
    std::vector<std::string> tokens = Tokenize(raw);
    if (tokens.empty()) {
      continue;
    }
    // "node{...}" binds the brace list to the verb without whitespace; split
    // it so both spellings ("node{A*2,B}" and "node {A*2, B}") parse alike.
    if (tokens[0].size() > 4 && tokens[0].rfind("node{", 0) == 0) {
      const std::string braced = tokens[0].substr(4);
      tokens[0] = "node";
      tokens.insert(tokens.begin() + 1, braced);
    }
    const std::string& verb = tokens[0];
    if (verb == "name") {
      if (tokens.size() != 2) {
        Fail("name takes exactly one label", raw);
      }
      spec.name = tokens[1];
    } else if (verb == "gpu") {
      if (tokens.size() < 2) {
        Fail("gpu needs a class name", raw);
      }
      GpuClassDecl decl;
      decl.name = tokens[1];
      for (size_t t = 2; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          Fail("expected key=value, got \"" + tokens[t] + "\"", raw);
        }
        if (key == "tflops") {
          decl.tflops = ParseDouble(value, raw);
        } else if (key == "mem") {
          decl.memory_gib = ParseDouble(value, raw);
        } else if (key == "code") {
          if (value.size() != 1) {
            Fail("code must be a single character", raw);
          }
          decl.code = value[0];
        } else {
          Fail("unknown gpu attribute \"" + key + "\"", raw);
        }
      }
      spec.gpu_classes.push_back(std::move(decl));
    } else if (verb == "node") {
      if (tokens.size() < 2) {
        Fail("node takes a <count>x<type> or {<type>[*<count>],...} argument", raw);
      }
      if (tokens[1].front() == '{') {
        // A brace list may have been split over several whitespace-separated
        // tokens ("{A*2, B}"); rejoin them before parsing.
        std::string braced;
        for (size_t t = 1; t < tokens.size(); ++t) {
          braced += tokens[t];
        }
        spec.nodes.push_back(ParseMixedNode(braced, raw));
      } else {
        if (tokens.size() != 2) {
          Fail("node takes exactly one <count>x<type> argument", raw);
        }
        spec.nodes.push_back(ParseHomogeneousNode(tokens[1], raw));
      }
    } else if (verb == "rack") {
      spec.racks.push_back(ParseRack(tokens, raw));
    } else if (verb == "link") {
      spec.link_overrides.push_back(ParseLinkOverride(tokens, raw));
    } else {
      bool known = false;
      for (const LinkKnob& knob : kLinkKnobs) {
        if (verb == knob.statement) {
          if (tokens.size() != 2) {
            Fail(std::string(knob.statement) + " takes exactly one number", raw);
          }
          spec.*(knob.field) = ParseDouble(tokens[1], raw);
          known = true;
          break;
        }
      }
      for (const CrossRackKnob& knob : kCrossRackKnobs) {
        if (verb == knob.statement) {
          if (tokens.size() != 2) {
            Fail(std::string(knob.statement) + " takes exactly one number", raw);
          }
          spec.*(knob.field) = ParseDouble(tokens[1], raw);
          known = true;
          break;
        }
      }
      if (!known) {
        Fail("unknown statement \"" + verb + "\"", raw);
      }
    }
  }
  spec.Validate();
  return spec;
}

ClusterSpec ClusterSpec::PaperTestbed() {
  ClusterSpec spec;
  spec.Named("paper-testbed");
  for (const char* code : {"V", "R", "G", "Q"}) {
    spec.AddNode(code, 4);
  }
  return spec;
}

std::string ClusterSpec::ToString() const {
  std::ostringstream os;
  bool first = true;
  const auto statement = [&]() -> std::ostream& {
    if (!first) {
      os << "; ";
    }
    first = false;
    return os;
  };
  if (!name.empty()) {
    statement() << "name " << name;
  }
  for (const GpuClassDecl& decl : gpu_classes) {
    statement() << "gpu " << decl.name << " tflops=" << FormatDouble(decl.tflops)
                << " mem=" << FormatDouble(decl.memory_gib);
    if (decl.code != '\0') {
      os << " code=" << decl.code;
    }
  }
  for (const NodeDecl& node : nodes) {
    if (node.mixed()) {
      statement() << "node{";
      for (size_t g = 0; g < node.groups.size(); ++g) {
        if (g > 0) {
          os << ',';
        }
        os << node.groups[g].type;
        if (node.groups[g].count != 1) {
          os << '*' << node.groups[g].count;
        }
      }
      os << '}';
    } else {
      statement() << "node " << node.groups.front().count << 'x' << node.groups.front().type;
    }
  }
  for (const RackDecl& rack : racks) {
    statement() << "rack " << rack.name << " {";
    for (int node : rack.nodes) {
      os << " node" << node;
    }
    os << " }";
  }
  for (const LinkKnob& knob : kLinkKnobs) {
    if (this->*(knob.field) != knob.default_value) {
      statement() << knob.statement << ' ' << FormatDouble(this->*(knob.field));
    }
  }
  for (const CrossRackKnob& knob : kCrossRackKnobs) {
    if ((this->*(knob.field)).has_value()) {
      statement() << knob.statement << ' ' << FormatDouble(*(this->*(knob.field)));
    }
  }
  for (const LinkOverrideDecl& decl : link_overrides) {
    statement() << "link node" << decl.node_a << "<->node" << decl.node_b;
    if (decl.gbits.has_value()) {
      os << " gbits " << FormatDouble(*decl.gbits);
    }
    if (decl.efficiency.has_value()) {
      os << " efficiency " << FormatDouble(*decl.efficiency);
    }
    if (decl.intercept_s.has_value()) {
      os << " intercept_s " << FormatDouble(*decl.intercept_s);
    }
  }
  return os.str();
}

void ClusterSpec::Validate() const {
  // The name is re-emitted as a bare ToString() token, so it must survive the
  // round trip: no whitespace, statement separators, or comment markers.
  if (name.find_first_of(" \t\n;#") != std::string::npos) {
    Fail("name \"" + name + "\" must not contain whitespace, ';', or '#'", "");
  }
  for (size_t i = 0; i < gpu_classes.size(); ++i) {
    const GpuClassDecl& decl = gpu_classes[i];
    // NaN passes a naive `<= 0` check and would silently poison every
    // simulated number (and break the Parse(ToString()) round trip, since
    // NaN != NaN), so the numbers must be finite too.
    if (!std::isfinite(decl.tflops) || decl.tflops <= 0.0) {
      Fail("GPU class " + decl.name + " needs finite tflops > 0", "");
    }
    if (!std::isfinite(decl.memory_gib) || decl.memory_gib <= 0.0) {
      Fail("GPU class " + decl.name + " needs finite mem > 0", "");
    }
    // The code is re-emitted as a "code=<c>" token, so like the name it must
    // survive the text round trip.
    if (decl.code != '\0' && std::isgraph(static_cast<unsigned char>(decl.code)) == 0) {
      Fail("GPU class " + decl.name + " has an unprintable or whitespace code", "");
    }
    if (decl.code == ';' || decl.code == '#' || decl.code == '=') {
      Fail("GPU class " + decl.name + " code must not be ';', '#', or '='", "");
    }
    for (size_t j = 0; j < i; ++j) {
      if (gpu_classes[j].name == decl.name) {
        Fail("duplicate GPU class \"" + decl.name + "\"", "");
      }
    }
  }
  if (nodes.empty()) {
    Fail("at least one node is required", "");
  }
  for (const NodeDecl& node : nodes) {
    if (node.groups.empty()) {
      Fail("a node needs at least one GPU group", "");
    }
    for (const NodeGroup& group : node.groups) {
      if (group.count <= 0) {
        Fail("node group of type " + group.type + " must hold at least one GPU", "");
      }
      // Group types are re-emitted inside "node{...}" tokens, so they must
      // survive the round trip unambiguously.
      if (group.type.empty() ||
          group.type.find_first_of(" \t\n;#{},*") != std::string::npos) {
        Fail("GPU type \"" + group.type + "\" must not contain whitespace or ';#{},*'", "");
      }
      bool declared = false;
      for (const GpuClassDecl& decl : gpu_classes) {
        declared = declared || decl.name == group.type;
      }
      if (!declared && FindGpuTypeByName(group.type) == nullptr &&
          !IsBuiltinCodeLetter(group.type)) {
        Fail("unknown GPU type \"" + group.type + "\"", "");
      }
    }
  }
  const int num_nodes = static_cast<int>(nodes.size());
  std::vector<int> racked(nodes.size(), 0);
  for (size_t r = 0; r < racks.size(); ++r) {
    const RackDecl& rack = racks[r];
    // Rack names are re-emitted as bare tokens inside "rack <name> { ... }",
    // so like cluster names they must survive the text round trip.
    if (rack.name.empty() || rack.name.find_first_of(" \t\n;#{}") != std::string::npos) {
      Fail("rack name \"" + rack.name + "\" must not be empty or contain whitespace or ';#{}'",
           "");
    }
    for (size_t j = 0; j < r; ++j) {
      if (racks[j].name == rack.name) {
        Fail("duplicate rack \"" + rack.name + "\"", "");
      }
    }
    if (rack.nodes.empty()) {
      Fail("rack " + rack.name + " needs at least one node", "");
    }
    for (int node : rack.nodes) {
      if (node < 0 || node >= num_nodes) {
        Fail("rack " + rack.name + " names node" + std::to_string(node) +
                 ", but the spec declares " + std::to_string(num_nodes) + " nodes",
             "");
      }
      if (racked[static_cast<size_t>(node)]++ != 0) {
        Fail("node" + std::to_string(node) + " belongs to more than one rack", "");
      }
    }
  }
  for (const CrossRackKnob& knob : kCrossRackKnobs) {
    if ((this->*(knob.field)).has_value() && racks.empty()) {
      Fail(std::string(knob.statement) + " needs at least one rack declaration", "");
    }
  }
  if (cross_rack_gbits.has_value() &&
      (!std::isfinite(*cross_rack_gbits) || *cross_rack_gbits <= 0.0)) {
    Fail("cross_rack_gbits must be finite and positive", "");
  }
  if (cross_rack_efficiency.has_value() &&
      (!std::isfinite(*cross_rack_efficiency) || *cross_rack_efficiency <= 0.0 ||
       *cross_rack_efficiency > 1.0)) {
    Fail("cross_rack_efficiency must be in (0, 1]", "");
  }
  if (cross_rack_intercept_s.has_value() &&
      (!std::isfinite(*cross_rack_intercept_s) || *cross_rack_intercept_s < 0.0)) {
    Fail("cross_rack_intercept_s must be finite and non-negative", "");
  }
  for (size_t i = 0; i < link_overrides.size(); ++i) {
    const LinkOverrideDecl& decl = link_overrides[i];
    if (decl.node_a < 0 || decl.node_b >= num_nodes || decl.node_a >= decl.node_b) {
      Fail("link override needs two distinct in-range nodes, got node" +
               std::to_string(decl.node_a) + "<->node" + std::to_string(decl.node_b),
           "");
    }
    if (!decl.gbits.has_value() && !decl.efficiency.has_value() &&
        !decl.intercept_s.has_value()) {
      Fail("link override node" + std::to_string(decl.node_a) + "<->node" +
               std::to_string(decl.node_b) + " sets no attribute",
           "");
    }
    if (decl.gbits.has_value() && (!std::isfinite(*decl.gbits) || *decl.gbits <= 0.0)) {
      Fail("link override gbits must be finite and positive", "");
    }
    if (decl.efficiency.has_value() &&
        (!std::isfinite(*decl.efficiency) || *decl.efficiency <= 0.0 ||
         *decl.efficiency > 1.0)) {
      Fail("link override efficiency must be in (0, 1]", "");
    }
    if (decl.intercept_s.has_value() &&
        (!std::isfinite(*decl.intercept_s) || *decl.intercept_s < 0.0)) {
      Fail("link override intercept_s must be finite and non-negative", "");
    }
    for (size_t j = 0; j < i; ++j) {
      if (link_overrides[j].node_a == decl.node_a && link_overrides[j].node_b == decl.node_b) {
        Fail("duplicate link override for node" + std::to_string(decl.node_a) + "<->node" +
                 std::to_string(decl.node_b),
             "");
      }
    }
  }
  // Like the class numbers, every link knob must be finite: NaN slips past
  // one-sided comparisons and infinities turn into inf transfer times.
  for (const LinkKnob& knob : kLinkKnobs) {
    if (!std::isfinite(this->*(knob.field))) {
      Fail(std::string(knob.statement) + " must be finite", "");
    }
  }
  if (intra_gbps <= 0.0) {
    Fail("intra_gbps must be positive", "");
  }
  if (intra_scaling <= 0.0 || intra_scaling > 1.0) {
    Fail("intra_scaling must be in (0, 1]", "");
  }
  if (intra_latency_s < 0.0) {
    Fail("intra_latency_s must be non-negative", "");
  }
  if (inter_gbits <= 0.0) {
    Fail("inter_gbits must be positive", "");
  }
  if (inter_efficiency <= 0.0 || inter_efficiency > 1.0) {
    Fail("inter_efficiency must be in (0, 1]", "");
  }
  if (inter_intercept_s < 0.0) {
    Fail("inter_intercept_s must be non-negative", "");
  }
}

InfinibandLink ClusterSpec::InterLinkBetween(int node_a, int node_b) const {
  const int num_nodes = static_cast<int>(nodes.size());
  if (node_a < 0 || node_a >= num_nodes || node_b < 0 || node_b >= num_nodes) {
    throw std::invalid_argument("cluster spec: InterLinkBetween node index out of range");
  }
  double gbits = inter_gbits;
  double efficiency = inter_efficiency;
  double intercept_s = inter_intercept_s;
  if (!racks.empty() && node_a != node_b) {
    // An un-racked node is its own implicit rack, so any pair not sharing a
    // declared rack crosses racks.
    const int rack_a = DeclaredRackOf(*this, node_a);
    const int rack_b = DeclaredRackOf(*this, node_b);
    if (rack_a < 0 || rack_b < 0 || rack_a != rack_b) {
      gbits = cross_rack_gbits.value_or(gbits);
      efficiency = cross_rack_efficiency.value_or(efficiency);
      intercept_s = cross_rack_intercept_s.value_or(intercept_s);
    }
  }
  const int lo = std::min(node_a, node_b);
  const int hi = std::max(node_a, node_b);
  for (const LinkOverrideDecl& decl : link_overrides) {
    if (decl.node_a == lo && decl.node_b == hi) {
      gbits = decl.gbits.value_or(gbits);
      efficiency = decl.efficiency.value_or(efficiency);
      intercept_s = decl.intercept_s.value_or(intercept_s);
      break;
    }
  }
  return InfinibandLink(gbits, efficiency, intercept_s);
}

Cluster ClusterSpec::Build() const {
  Validate();
  std::vector<std::vector<GpuType>> node_gpus;
  node_gpus.reserve(nodes.size());
  for (const NodeDecl& node : nodes) {
    std::vector<GpuType> types;
    types.reserve(static_cast<size_t>(node.TotalCount()));
    for (const NodeGroup& group : node.groups) {
      const GpuType type = ResolveType(*this, group.type);
      types.insert(types.end(), static_cast<size_t>(group.count), type);
    }
    node_gpus.push_back(std::move(types));
  }
  Cluster cluster(node_gpus, IntraLink(), InterLink(), name);
  cluster.set_spec_text(ToString());

  if (!racks.empty() || !link_overrides.empty()) {
    const int h = static_cast<int>(nodes.size());
    std::vector<int> rack_of;
    if (!racks.empty()) {
      rack_of.assign(static_cast<size_t>(h), -1);
      for (size_t r = 0; r < racks.size(); ++r) {
        for (int node : racks[r].nodes) {
          rack_of[static_cast<size_t>(node)] = static_cast<int>(r);
        }
      }
      // Un-racked nodes form implicit single-node racks after the declared
      // ones, in node order.
      int next_rack = static_cast<int>(racks.size());
      for (int& rack : rack_of) {
        if (rack < 0) {
          rack = next_rack++;
        }
      }
    }
    // Resolve every pair; pairs identical to the shared inter link keep the
    // -1 default, so a spec whose racks/overrides change nothing stays a
    // uniform fabric (bit-identical links, partitions, and cache keys).
    const InfinibandLink base = InterLink();
    std::vector<InfinibandLink> pair_links;
    std::vector<int> pair_index(static_cast<size_t>(h) * static_cast<size_t>(h), -1);
    bool any_custom = false;
    for (int i = 0; i < h; ++i) {
      for (int j = i + 1; j < h; ++j) {
        const InfinibandLink link = InterLinkBetween(i, j);
        if (link.EffectiveBandwidth() == base.EffectiveBandwidth() &&
            link.intercept_s() == base.intercept_s()) {
          continue;
        }
        int index = -1;
        for (size_t k = 0; k < pair_links.size(); ++k) {
          if (pair_links[k].EffectiveBandwidth() == link.EffectiveBandwidth() &&
              pair_links[k].intercept_s() == link.intercept_s()) {
            index = static_cast<int>(k);
            break;
          }
        }
        if (index < 0) {
          index = static_cast<int>(pair_links.size());
          pair_links.push_back(link);
        }
        pair_index[static_cast<size_t>(i) * static_cast<size_t>(h) + static_cast<size_t>(j)] =
            index;
        pair_index[static_cast<size_t>(j) * static_cast<size_t>(h) + static_cast<size_t>(i)] =
            index;
        any_custom = true;
      }
    }
    if (!any_custom) {
      pair_links.clear();
      pair_index.clear();
    }
    cluster.SetLinkTopology(std::move(rack_of), std::move(pair_links), std::move(pair_index));
  }
  return cluster;
}

}  // namespace hetpipe::hw
