#include "hw/cluster_spec.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace hetpipe::hw {
namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& context) {
  throw std::invalid_argument("cluster spec: " + what +
                              (context.empty() ? "" : " in \"" + context + "\""));
}

// Shortest round-trip decimal form, so ToString() -> Parse() is lossless.
std::string FormatDouble(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    return std::to_string(v);
  }
  return std::string(buf, ptr);
}

double ParseDouble(const std::string& token, const std::string& context) {
  double v = 0.0;
  const char* begin = token.c_str();
  const auto [ptr, ec] = std::from_chars(begin, begin + token.size(), v);
  if (ec != std::errc() || ptr != begin + token.size()) {
    Fail("expected a number, got \"" + token + "\"", context);
  }
  return v;
}

// Strict positive-integer parse: the whole token must be digits and the value
// must fit an int. Overflow and junk fail with a clear message instead of a
// raw exception or silent truncation (std::stoi throws, std::atoi returns 0).
int ParseCount(const std::string& token, const std::string& what, const std::string& context) {
  int v = 0;
  const char* begin = token.c_str();
  const auto [ptr, ec] = std::from_chars(begin, begin + token.size(), v);
  if (ec == std::errc::result_out_of_range) {
    Fail(what + " out of range: \"" + token + "\"", context);
  }
  if (ec != std::errc() || ptr != begin + token.size() || token.empty()) {
    Fail("expected a count for " + what + ", got \"" + token + "\"", context);
  }
  if (v <= 0) {
    Fail(what + " must be positive, got \"" + token + "\"", context);
  }
  return v;
}

std::vector<std::string> Tokenize(const std::string& statement) {
  std::vector<std::string> tokens;
  std::istringstream in(statement);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

// Splits "key=value"; returns false when `token` has no '='.
bool SplitKeyValue(const std::string& token, std::string* key, std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

// True for the paper classes' single code letters (V/R/G/Q). Node
// declarations deliberately accept only built-in letters — registered
// classes are referenced by name, since their display codes are
// auto-assigned and thus unstable across processes.
bool IsBuiltinCodeLetter(const std::string& type) {
  return type.size() == 1 &&
         (type == "V" || type == "R" || type == "G" || type == "Q");
}

// Resolves a node's type string against the spec's declared classes, then the
// global registry by name, then the built-in code letters.
GpuType ResolveType(const ClusterSpec& spec, const std::string& type) {
  for (const GpuClassDecl& decl : spec.gpu_classes) {
    if (decl.name == type) {
      return RegisterGpuType(decl.name, decl.tflops, decl.memory_gib, decl.code);
    }
  }
  if (const GpuSpec* known = FindGpuTypeByName(type)) {
    return known->type;
  }
  if (IsBuiltinCodeLetter(type)) {
    return TypeFromCode(type[0]);
  }
  Fail("unknown GPU type \"" + type + "\"", "");
}

// Parses the brace form "{<type>[*<count>],...}" of a mixed-class node.
NodeDecl ParseMixedNode(const std::string& braced, const std::string& context) {
  if (braced.size() < 2 || braced.front() != '{' || braced.back() != '}') {
    Fail("expected node{<type>[*<count>],...}, got \"" + braced + "\"", context);
  }
  const std::string list = braced.substr(1, braced.size() - 2);
  NodeDecl decl;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = std::min(list.find(',', start), list.size());
    std::string term = list.substr(start, comma - start);
    const bool last = comma >= list.size();
    start = comma + 1;
    if (term.empty()) {
      if (last && !decl.groups.empty()) {
        break;  // tolerate a trailing comma
      }
      Fail("empty group in node list", context);
    }
    NodeGroup group;
    const size_t star = term.find('*');
    if (star != std::string::npos) {
      group.count = ParseCount(term.substr(star + 1), "GPU count", context);
      term.resize(star);
    }
    if (term.empty()) {
      Fail("missing GPU type before '*'", context);
    }
    group.type = std::move(term);
    decl.groups.push_back(std::move(group));
    if (last) {
      break;
    }
  }
  if (decl.groups.empty()) {
    Fail("node needs at least one GPU group", context);
  }
  return decl;
}

// Parses the classic "<count>x<type>" / bare-type node argument.
NodeDecl ParseHomogeneousNode(const std::string& arg, const std::string& context) {
  size_t digits = 0;
  while (digits < arg.size() && std::isdigit(static_cast<unsigned char>(arg[digits])) != 0) {
    ++digits;
  }
  if (digits == 0) {
    return NodeDecl(arg, 1);  // bare type name: one GPU
  }
  if (digits + 1 >= arg.size() || arg[digits] != 'x') {
    Fail("expected <count>x<type>, got \"" + arg + "\"", context);
  }
  const int count = ParseCount(arg.substr(0, digits), "node count", context);
  return NodeDecl(arg.substr(digits + 1), count);
}

// The scalar link-knob statements, shared by Parse and ToString. A knob is
// emitted only when it differs from its default, so specs that never mention
// one stay bit-identical across versions.
struct LinkKnob {
  const char* statement;
  double ClusterSpec::*field;
  double default_value;
};

constexpr LinkKnob kLinkKnobs[] = {
    {"intra_gbps", &ClusterSpec::intra_gbps, PcieLink::kDefaultPeakGBps},
    {"intra_scaling", &ClusterSpec::intra_scaling, PcieLink::kDefaultScaling},
    {"intra_latency_s", &ClusterSpec::intra_latency_s, PcieLink::kDefaultLatency},
    {"inter_gbits", &ClusterSpec::inter_gbits, InfinibandLink::kDefaultRawGbits},
    {"inter_efficiency", &ClusterSpec::inter_efficiency, InfinibandLink::kDefaultEfficiency},
    {"inter_intercept_s", &ClusterSpec::inter_intercept_s, InfinibandLink::kDefaultIntercept},
};

}  // namespace

int NodeDecl::TotalCount() const {
  int total = 0;
  for (const NodeGroup& group : groups) {
    total += group.count;
  }
  return total;
}

bool operator==(const GpuClassDecl& a, const GpuClassDecl& b) {
  return a.name == b.name && a.tflops == b.tflops && a.memory_gib == b.memory_gib &&
         a.code == b.code;
}

bool operator==(const NodeGroup& a, const NodeGroup& b) {
  return a.type == b.type && a.count == b.count;
}

bool operator==(const NodeDecl& a, const NodeDecl& b) { return a.groups == b.groups; }

bool operator==(const ClusterSpec& a, const ClusterSpec& b) {
  if (a.name != b.name || a.gpu_classes != b.gpu_classes || a.nodes != b.nodes) {
    return false;
  }
  for (const LinkKnob& knob : kLinkKnobs) {
    if (a.*(knob.field) != b.*(knob.field)) {
      return false;
    }
  }
  return true;
}

ClusterSpec& ClusterSpec::Named(std::string label) {
  name = std::move(label);
  return *this;
}

ClusterSpec& ClusterSpec::AddGpuClass(std::string class_name, double tflops, double memory_gib,
                                      char code) {
  gpu_classes.push_back(GpuClassDecl{std::move(class_name), tflops, memory_gib, code});
  return *this;
}

ClusterSpec& ClusterSpec::AddNode(std::string type, int count) {
  nodes.push_back(NodeDecl(std::move(type), count));
  return *this;
}

ClusterSpec& ClusterSpec::AddMixedNode(std::vector<NodeGroup> groups) {
  nodes.push_back(NodeDecl(std::move(groups)));
  return *this;
}

ClusterSpec& ClusterSpec::IntraGbps(double gbps) {
  intra_gbps = gbps;
  return *this;
}

ClusterSpec& ClusterSpec::IntraScaling(double scaling) {
  intra_scaling = scaling;
  return *this;
}

ClusterSpec& ClusterSpec::IntraLatencyS(double latency_s) {
  intra_latency_s = latency_s;
  return *this;
}

ClusterSpec& ClusterSpec::InterGbits(double gbits) {
  inter_gbits = gbits;
  return *this;
}

ClusterSpec& ClusterSpec::InterEfficiency(double efficiency) {
  inter_efficiency = efficiency;
  return *this;
}

ClusterSpec& ClusterSpec::InterInterceptS(double intercept_s) {
  inter_intercept_s = intercept_s;
  return *this;
}

ClusterSpec ClusterSpec::Parse(const std::string& text) {
  ClusterSpec spec;
  std::string statement;
  std::vector<std::string> statements;
  for (size_t i = 0; i <= text.size(); ++i) {
    const char c = i < text.size() ? text[i] : '\n';
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') {
        ++i;
      }
      statements.push_back(statement);
      statement.clear();
    } else if (c == '\n' || c == ';') {
      statements.push_back(statement);
      statement.clear();
    } else {
      statement.push_back(c);
    }
  }

  for (const std::string& raw : statements) {
    std::vector<std::string> tokens = Tokenize(raw);
    if (tokens.empty()) {
      continue;
    }
    // "node{...}" binds the brace list to the verb without whitespace; split
    // it so both spellings ("node{A*2,B}" and "node {A*2, B}") parse alike.
    if (tokens[0].size() > 4 && tokens[0].rfind("node{", 0) == 0) {
      const std::string braced = tokens[0].substr(4);
      tokens[0] = "node";
      tokens.insert(tokens.begin() + 1, braced);
    }
    const std::string& verb = tokens[0];
    if (verb == "name") {
      if (tokens.size() != 2) {
        Fail("name takes exactly one label", raw);
      }
      spec.name = tokens[1];
    } else if (verb == "gpu") {
      if (tokens.size() < 2) {
        Fail("gpu needs a class name", raw);
      }
      GpuClassDecl decl;
      decl.name = tokens[1];
      for (size_t t = 2; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          Fail("expected key=value, got \"" + tokens[t] + "\"", raw);
        }
        if (key == "tflops") {
          decl.tflops = ParseDouble(value, raw);
        } else if (key == "mem") {
          decl.memory_gib = ParseDouble(value, raw);
        } else if (key == "code") {
          if (value.size() != 1) {
            Fail("code must be a single character", raw);
          }
          decl.code = value[0];
        } else {
          Fail("unknown gpu attribute \"" + key + "\"", raw);
        }
      }
      spec.gpu_classes.push_back(std::move(decl));
    } else if (verb == "node") {
      if (tokens.size() < 2) {
        Fail("node takes a <count>x<type> or {<type>[*<count>],...} argument", raw);
      }
      if (tokens[1].front() == '{') {
        // A brace list may have been split over several whitespace-separated
        // tokens ("{A*2, B}"); rejoin them before parsing.
        std::string braced;
        for (size_t t = 1; t < tokens.size(); ++t) {
          braced += tokens[t];
        }
        spec.nodes.push_back(ParseMixedNode(braced, raw));
      } else {
        if (tokens.size() != 2) {
          Fail("node takes exactly one <count>x<type> argument", raw);
        }
        spec.nodes.push_back(ParseHomogeneousNode(tokens[1], raw));
      }
    } else {
      bool known = false;
      for (const LinkKnob& knob : kLinkKnobs) {
        if (verb == knob.statement) {
          if (tokens.size() != 2) {
            Fail(std::string(knob.statement) + " takes exactly one number", raw);
          }
          spec.*(knob.field) = ParseDouble(tokens[1], raw);
          known = true;
          break;
        }
      }
      if (!known) {
        Fail("unknown statement \"" + verb + "\"", raw);
      }
    }
  }
  spec.Validate();
  return spec;
}

ClusterSpec ClusterSpec::PaperTestbed() {
  ClusterSpec spec;
  spec.Named("paper-testbed");
  for (const char* code : {"V", "R", "G", "Q"}) {
    spec.AddNode(code, 4);
  }
  return spec;
}

std::string ClusterSpec::ToString() const {
  std::ostringstream os;
  bool first = true;
  const auto statement = [&]() -> std::ostream& {
    if (!first) {
      os << "; ";
    }
    first = false;
    return os;
  };
  if (!name.empty()) {
    statement() << "name " << name;
  }
  for (const GpuClassDecl& decl : gpu_classes) {
    statement() << "gpu " << decl.name << " tflops=" << FormatDouble(decl.tflops)
                << " mem=" << FormatDouble(decl.memory_gib);
    if (decl.code != '\0') {
      os << " code=" << decl.code;
    }
  }
  for (const NodeDecl& node : nodes) {
    if (node.mixed()) {
      statement() << "node{";
      for (size_t g = 0; g < node.groups.size(); ++g) {
        if (g > 0) {
          os << ',';
        }
        os << node.groups[g].type;
        if (node.groups[g].count != 1) {
          os << '*' << node.groups[g].count;
        }
      }
      os << '}';
    } else {
      statement() << "node " << node.groups.front().count << 'x' << node.groups.front().type;
    }
  }
  for (const LinkKnob& knob : kLinkKnobs) {
    if (this->*(knob.field) != knob.default_value) {
      statement() << knob.statement << ' ' << FormatDouble(this->*(knob.field));
    }
  }
  return os.str();
}

void ClusterSpec::Validate() const {
  // The name is re-emitted as a bare ToString() token, so it must survive the
  // round trip: no whitespace, statement separators, or comment markers.
  if (name.find_first_of(" \t\n;#") != std::string::npos) {
    Fail("name \"" + name + "\" must not contain whitespace, ';', or '#'", "");
  }
  for (size_t i = 0; i < gpu_classes.size(); ++i) {
    const GpuClassDecl& decl = gpu_classes[i];
    // NaN passes a naive `<= 0` check and would silently poison every
    // simulated number (and break the Parse(ToString()) round trip, since
    // NaN != NaN), so the numbers must be finite too.
    if (!std::isfinite(decl.tflops) || decl.tflops <= 0.0) {
      Fail("GPU class " + decl.name + " needs finite tflops > 0", "");
    }
    if (!std::isfinite(decl.memory_gib) || decl.memory_gib <= 0.0) {
      Fail("GPU class " + decl.name + " needs finite mem > 0", "");
    }
    // The code is re-emitted as a "code=<c>" token, so like the name it must
    // survive the text round trip.
    if (decl.code != '\0' && std::isgraph(static_cast<unsigned char>(decl.code)) == 0) {
      Fail("GPU class " + decl.name + " has an unprintable or whitespace code", "");
    }
    if (decl.code == ';' || decl.code == '#' || decl.code == '=') {
      Fail("GPU class " + decl.name + " code must not be ';', '#', or '='", "");
    }
    for (size_t j = 0; j < i; ++j) {
      if (gpu_classes[j].name == decl.name) {
        Fail("duplicate GPU class \"" + decl.name + "\"", "");
      }
    }
  }
  if (nodes.empty()) {
    Fail("at least one node is required", "");
  }
  for (const NodeDecl& node : nodes) {
    if (node.groups.empty()) {
      Fail("a node needs at least one GPU group", "");
    }
    for (const NodeGroup& group : node.groups) {
      if (group.count <= 0) {
        Fail("node group of type " + group.type + " must hold at least one GPU", "");
      }
      // Group types are re-emitted inside "node{...}" tokens, so they must
      // survive the round trip unambiguously.
      if (group.type.empty() ||
          group.type.find_first_of(" \t\n;#{},*") != std::string::npos) {
        Fail("GPU type \"" + group.type + "\" must not contain whitespace or ';#{},*'", "");
      }
      bool declared = false;
      for (const GpuClassDecl& decl : gpu_classes) {
        declared = declared || decl.name == group.type;
      }
      if (!declared && FindGpuTypeByName(group.type) == nullptr &&
          !IsBuiltinCodeLetter(group.type)) {
        Fail("unknown GPU type \"" + group.type + "\"", "");
      }
    }
  }
  // Like the class numbers, every link knob must be finite: NaN slips past
  // one-sided comparisons and infinities turn into inf transfer times.
  for (const LinkKnob& knob : kLinkKnobs) {
    if (!std::isfinite(this->*(knob.field))) {
      Fail(std::string(knob.statement) + " must be finite", "");
    }
  }
  if (intra_gbps <= 0.0) {
    Fail("intra_gbps must be positive", "");
  }
  if (intra_scaling <= 0.0 || intra_scaling > 1.0) {
    Fail("intra_scaling must be in (0, 1]", "");
  }
  if (intra_latency_s < 0.0) {
    Fail("intra_latency_s must be non-negative", "");
  }
  if (inter_gbits <= 0.0) {
    Fail("inter_gbits must be positive", "");
  }
  if (inter_efficiency <= 0.0 || inter_efficiency > 1.0) {
    Fail("inter_efficiency must be in (0, 1]", "");
  }
  if (inter_intercept_s < 0.0) {
    Fail("inter_intercept_s must be non-negative", "");
  }
}

Cluster ClusterSpec::Build() const {
  Validate();
  std::vector<std::vector<GpuType>> node_gpus;
  node_gpus.reserve(nodes.size());
  for (const NodeDecl& node : nodes) {
    std::vector<GpuType> types;
    types.reserve(static_cast<size_t>(node.TotalCount()));
    for (const NodeGroup& group : node.groups) {
      const GpuType type = ResolveType(*this, group.type);
      types.insert(types.end(), static_cast<size_t>(group.count), type);
    }
    node_gpus.push_back(std::move(types));
  }
  Cluster cluster(node_gpus, IntraLink(), InterLink(), name);
  cluster.set_spec_text(ToString());
  return cluster;
}

}  // namespace hetpipe::hw
