#include "hw/cluster_spec.h"

#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace hetpipe::hw {
namespace {

[[noreturn]] void Fail(const std::string& what, const std::string& context) {
  throw std::invalid_argument("cluster spec: " + what +
                              (context.empty() ? "" : " in \"" + context + "\""));
}

// Shortest round-trip decimal form, so ToString() -> Parse() is lossless.
std::string FormatDouble(double v) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    return std::to_string(v);
  }
  return std::string(buf, ptr);
}

double ParseDouble(const std::string& token, const std::string& context) {
  double v = 0.0;
  const char* begin = token.c_str();
  const auto [ptr, ec] = std::from_chars(begin, begin + token.size(), v);
  if (ec != std::errc() || ptr != begin + token.size()) {
    Fail("expected a number, got \"" + token + "\"", context);
  }
  return v;
}

std::vector<std::string> Tokenize(const std::string& statement) {
  std::vector<std::string> tokens;
  std::istringstream in(statement);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

// Splits "key=value"; returns false when `token` has no '='.
bool SplitKeyValue(const std::string& token, std::string* key, std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

// True for the paper classes' single code letters (V/R/G/Q). Node
// declarations deliberately accept only built-in letters — registered
// classes are referenced by name, since their display codes are
// auto-assigned and thus unstable across processes.
bool IsBuiltinCodeLetter(const std::string& type) {
  return type.size() == 1 &&
         (type == "V" || type == "R" || type == "G" || type == "Q");
}

// Resolves a node's type string against the spec's declared classes, then the
// global registry by name, then the built-in code letters.
GpuType ResolveType(const ClusterSpec& spec, const std::string& type) {
  for (const GpuClassDecl& decl : spec.gpu_classes) {
    if (decl.name == type) {
      return RegisterGpuType(decl.name, decl.tflops, decl.memory_gib, decl.code);
    }
  }
  if (const GpuSpec* known = FindGpuTypeByName(type)) {
    return known->type;
  }
  if (IsBuiltinCodeLetter(type)) {
    return TypeFromCode(type[0]);
  }
  Fail("unknown GPU type \"" + type + "\"", "");
}

}  // namespace

bool operator==(const GpuClassDecl& a, const GpuClassDecl& b) {
  return a.name == b.name && a.tflops == b.tflops && a.memory_gib == b.memory_gib &&
         a.code == b.code;
}

bool operator==(const NodeDecl& a, const NodeDecl& b) {
  return a.type == b.type && a.count == b.count;
}

bool operator==(const ClusterSpec& a, const ClusterSpec& b) {
  return a.name == b.name && a.gpu_classes == b.gpu_classes && a.nodes == b.nodes &&
         a.intra_gbps == b.intra_gbps && a.inter_gbits == b.inter_gbits;
}

ClusterSpec& ClusterSpec::Named(std::string label) {
  name = std::move(label);
  return *this;
}

ClusterSpec& ClusterSpec::AddGpuClass(std::string class_name, double tflops, double memory_gib,
                                      char code) {
  gpu_classes.push_back(GpuClassDecl{std::move(class_name), tflops, memory_gib, code});
  return *this;
}

ClusterSpec& ClusterSpec::AddNode(std::string type, int count) {
  nodes.push_back(NodeDecl{std::move(type), count});
  return *this;
}

ClusterSpec& ClusterSpec::IntraGbps(double gbps) {
  intra_gbps = gbps;
  return *this;
}

ClusterSpec& ClusterSpec::InterGbits(double gbits) {
  inter_gbits = gbits;
  return *this;
}

ClusterSpec ClusterSpec::Parse(const std::string& text) {
  ClusterSpec spec;
  std::string statement;
  std::vector<std::string> statements;
  for (size_t i = 0; i <= text.size(); ++i) {
    const char c = i < text.size() ? text[i] : '\n';
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') {
        ++i;
      }
      statements.push_back(statement);
      statement.clear();
    } else if (c == '\n' || c == ';') {
      statements.push_back(statement);
      statement.clear();
    } else {
      statement.push_back(c);
    }
  }

  for (const std::string& raw : statements) {
    const std::vector<std::string> tokens = Tokenize(raw);
    if (tokens.empty()) {
      continue;
    }
    const std::string& verb = tokens[0];
    if (verb == "name") {
      if (tokens.size() != 2) {
        Fail("name takes exactly one label", raw);
      }
      spec.name = tokens[1];
    } else if (verb == "gpu") {
      if (tokens.size() < 2) {
        Fail("gpu needs a class name", raw);
      }
      GpuClassDecl decl;
      decl.name = tokens[1];
      for (size_t t = 2; t < tokens.size(); ++t) {
        std::string key;
        std::string value;
        if (!SplitKeyValue(tokens[t], &key, &value)) {
          Fail("expected key=value, got \"" + tokens[t] + "\"", raw);
        }
        if (key == "tflops") {
          decl.tflops = ParseDouble(value, raw);
        } else if (key == "mem") {
          decl.memory_gib = ParseDouble(value, raw);
        } else if (key == "code") {
          if (value.size() != 1) {
            Fail("code must be a single character", raw);
          }
          decl.code = value[0];
        } else {
          Fail("unknown gpu attribute \"" + key + "\"", raw);
        }
      }
      spec.gpu_classes.push_back(std::move(decl));
    } else if (verb == "node") {
      if (tokens.size() != 2) {
        Fail("node takes exactly one <count>x<type> argument", raw);
      }
      NodeDecl decl;
      const std::string& arg = tokens[1];
      size_t digits = 0;
      while (digits < arg.size() && std::isdigit(static_cast<unsigned char>(arg[digits])) != 0) {
        ++digits;
      }
      if (digits == 0) {
        decl.count = 1;  // bare type name: one GPU
        decl.type = arg;
      } else {
        if (digits + 1 >= arg.size() || arg[digits] != 'x') {
          Fail("expected <count>x<type>, got \"" + arg + "\"", raw);
        }
        try {
          decl.count = std::stoi(arg.substr(0, digits));
        } catch (const std::out_of_range&) {
          Fail("node count out of range in \"" + arg + "\"", raw);
        }
        decl.type = arg.substr(digits + 1);
      }
      spec.nodes.push_back(std::move(decl));
    } else if (verb == "intra_gbps") {
      if (tokens.size() != 2) {
        Fail("intra_gbps takes exactly one number", raw);
      }
      spec.intra_gbps = ParseDouble(tokens[1], raw);
    } else if (verb == "inter_gbits") {
      if (tokens.size() != 2) {
        Fail("inter_gbits takes exactly one number", raw);
      }
      spec.inter_gbits = ParseDouble(tokens[1], raw);
    } else {
      Fail("unknown statement \"" + verb + "\"", raw);
    }
  }
  spec.Validate();
  return spec;
}

ClusterSpec ClusterSpec::PaperTestbed() {
  ClusterSpec spec;
  spec.Named("paper-testbed");
  for (const char* code : {"V", "R", "G", "Q"}) {
    spec.AddNode(code, 4);
  }
  return spec;
}

std::string ClusterSpec::ToString() const {
  std::ostringstream os;
  bool first = true;
  const auto statement = [&]() -> std::ostream& {
    if (!first) {
      os << "; ";
    }
    first = false;
    return os;
  };
  if (!name.empty()) {
    statement() << "name " << name;
  }
  for (const GpuClassDecl& decl : gpu_classes) {
    statement() << "gpu " << decl.name << " tflops=" << FormatDouble(decl.tflops)
                << " mem=" << FormatDouble(decl.memory_gib);
    if (decl.code != '\0') {
      os << " code=" << decl.code;
    }
  }
  for (const NodeDecl& node : nodes) {
    statement() << "node " << node.count << 'x' << node.type;
  }
  if (intra_gbps != PcieLink::kDefaultPeakGBps) {
    statement() << "intra_gbps " << FormatDouble(intra_gbps);
  }
  if (inter_gbits != InfinibandLink::kDefaultRawGbits) {
    statement() << "inter_gbits " << FormatDouble(inter_gbits);
  }
  return os.str();
}

void ClusterSpec::Validate() const {
  // The name is re-emitted as a bare ToString() token, so it must survive the
  // round trip: no whitespace, statement separators, or comment markers.
  if (name.find_first_of(" \t\n;#") != std::string::npos) {
    Fail("name \"" + name + "\" must not contain whitespace, ';', or '#'", "");
  }
  for (size_t i = 0; i < gpu_classes.size(); ++i) {
    const GpuClassDecl& decl = gpu_classes[i];
    if (decl.tflops <= 0.0) {
      Fail("GPU class " + decl.name + " needs tflops > 0", "");
    }
    if (decl.memory_gib <= 0.0) {
      Fail("GPU class " + decl.name + " needs mem > 0", "");
    }
    // The code is re-emitted as a "code=<c>" token, so like the name it must
    // survive the text round trip.
    if (decl.code != '\0' && std::isgraph(static_cast<unsigned char>(decl.code)) == 0) {
      Fail("GPU class " + decl.name + " has an unprintable or whitespace code", "");
    }
    if (decl.code == ';' || decl.code == '#' || decl.code == '=') {
      Fail("GPU class " + decl.name + " code must not be ';', '#', or '='", "");
    }
    for (size_t j = 0; j < i; ++j) {
      if (gpu_classes[j].name == decl.name) {
        Fail("duplicate GPU class \"" + decl.name + "\"", "");
      }
    }
  }
  if (nodes.empty()) {
    Fail("at least one node is required", "");
  }
  for (const NodeDecl& node : nodes) {
    if (node.count <= 0) {
      Fail("node of type " + node.type + " must hold at least one GPU", "");
    }
    bool declared = false;
    for (const GpuClassDecl& decl : gpu_classes) {
      declared = declared || decl.name == node.type;
    }
    if (!declared && FindGpuTypeByName(node.type) == nullptr &&
        !IsBuiltinCodeLetter(node.type)) {
      Fail("unknown GPU type \"" + node.type + "\"", "");
    }
  }
  if (intra_gbps <= 0.0) {
    Fail("intra_gbps must be positive", "");
  }
  if (inter_gbits <= 0.0) {
    Fail("inter_gbits must be positive", "");
  }
}

Cluster ClusterSpec::Build() const {
  Validate();
  std::vector<NodeGpus> node_gpus;
  node_gpus.reserve(nodes.size());
  for (const NodeDecl& node : nodes) {
    node_gpus.push_back(NodeGpus{ResolveType(*this, node.type), node.count});
  }
  Cluster cluster(node_gpus, PcieLink(intra_gbps), InfinibandLink(inter_gbits), name);
  cluster.set_spec_text(ToString());
  return cluster;
}

}  // namespace hetpipe::hw
