#include "hw/gpu_spec.h"

#include <stdexcept>

namespace hetpipe::hw {
namespace {

// Table 1 of the paper.
const std::vector<GpuSpec> kSpecs = {
    {GpuType::kTitanV, "TITAN V", 'V', 5120, 1455, 12.0, 653.0},
    {GpuType::kTitanRtx, "TITAN RTX", 'R', 4608, 1770, 24.0, 672.0},
    {GpuType::kRtx2060, "GeForce RTX 2060", 'G', 1920, 1680, 6.0, 336.0},
    {GpuType::kQuadroP4000, "Quadro P4000", 'Q', 1792, 1480, 8.0, 243.0},
};

}  // namespace

const GpuSpec& SpecOf(GpuType type) { return kSpecs[static_cast<size_t>(type)]; }

const std::vector<GpuSpec>& AllGpuSpecs() { return kSpecs; }

char CodeOf(GpuType type) { return SpecOf(type).code; }

GpuType TypeFromCode(char code) {
  for (const GpuSpec& spec : kSpecs) {
    if (spec.code == code) {
      return spec.type;
    }
  }
  throw std::invalid_argument(std::string("unknown GPU code: ") + code);
}

std::vector<GpuType> ParseGpuCodes(std::string_view codes) {
  std::vector<GpuType> types;
  types.reserve(codes.size());
  for (char c : codes) {
    types.push_back(TypeFromCode(c));
  }
  return types;
}

std::string GpuCodes(const std::vector<GpuType>& types) {
  std::string out;
  out.reserve(types.size());
  for (GpuType t : types) {
    out.push_back(CodeOf(t));
  }
  return out;
}

uint64_t MemoryBytes(GpuType type) {
  return static_cast<uint64_t>(SpecOf(type).memory_gib * (1ULL << 30));
}

}  // namespace hetpipe::hw
