#include "hw/gpu_spec.h"

#include <cctype>
#include <deque>
#include <mutex>
#include <stdexcept>

namespace hetpipe::hw {
namespace {

// Table 1 of the paper. The effective TFLOP/s column is the Fig. 3
// calibration also used by model/profiler.cc — it doubles as the compute-
// power ordering of §8.1 (V > R > G > Q).
const GpuSpec kBuiltinSpecs[kNumGpuTypes] = {
    {GpuType::kTitanV, "TITAN V", 'V', 5120, 1455, 12.0, 653.0, 6.60},
    {GpuType::kTitanRtx, "TITAN RTX", 'R', 4608, 1770, 24.0, 672.0, 5.98},
    {GpuType::kRtx2060, "GeForce RTX 2060", 'G', 1920, 1680, 6.0, 336.0, 3.99},
    {GpuType::kQuadroP4000, "Quadro P4000", 'Q', 1792, 1480, 8.0, 243.0, 2.95},
};

// Registered (non-Table-1) GPU classes. Deques keep addresses stable so
// SpecOf can hand out references and GpuSpec::name can point into `names`.
struct Registry {
  std::mutex mu;
  std::deque<GpuSpec> specs;
  std::deque<std::string> names;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: specs outlive static teardown
  return *r;
}

bool ValidTypeName(std::string_view name) {
  if (name.empty()) {
    return false;
  }
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' && c != '.' && c != '-') {
      return false;
    }
  }
  if (name.size() == 1) {
    for (const GpuSpec& spec : kBuiltinSpecs) {
      if (name[0] == spec.code) {
        return false;  // would shadow a built-in code letter
      }
    }
  }
  return true;
}

// Callers hold registry().mu.
char AutoCode(const Registry& r, char requested) {
  const auto taken = [&](char c) {
    for (const GpuSpec& spec : kBuiltinSpecs) {
      if (spec.code == c) {
        return true;
      }
    }
    for (const GpuSpec& spec : r.specs) {
      if (spec.code == c) {
        return true;
      }
    }
    return false;
  };
  if (requested != '\0' && !taken(requested)) {
    return requested;
  }
  for (const char* pool = "abcdefghijklmnopqrstuvwxyz0123456789"; *pool != '\0'; ++pool) {
    if (!taken(*pool)) {
      return *pool;
    }
  }
  return '?';  // display only; identity is the name
}

}  // namespace

const GpuSpec& SpecOf(GpuType type) {
  const int index = static_cast<int>(type);
  if (index >= 0 && index < kNumGpuTypes) {
    return kBuiltinSpecs[index];
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const size_t custom = static_cast<size_t>(index - kNumGpuTypes);
  if (index < kNumGpuTypes || custom >= r.specs.size()) {
    throw std::invalid_argument("unknown GpuType handle " + std::to_string(index));
  }
  return r.specs[custom];
}

std::vector<GpuSpec> AllGpuSpecs() {
  std::vector<GpuSpec> all(kBuiltinSpecs, kBuiltinSpecs + kNumGpuTypes);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  all.insert(all.end(), r.specs.begin(), r.specs.end());
  return all;
}

int NumGpuTypes() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return kNumGpuTypes + static_cast<int>(r.specs.size());
}

GpuType RegisterGpuType(const std::string& name, double effective_tflops, double memory_gib,
                        char code) {
  // Built-in names first: "TITAN V" etc. contain spaces ValidTypeName would
  // reject, but re-registering a Table 1 class with its own numbers is the
  // documented idempotent case.
  for (const GpuSpec& spec : kBuiltinSpecs) {
    if (name == spec.name) {
      if (effective_tflops != spec.effective_tflops || memory_gib != spec.memory_gib) {
        throw std::invalid_argument("GPU type " + name +
                                    " conflicts with the built-in spec of that name");
      }
      return spec.type;
    }
  }
  if (!ValidTypeName(name)) {
    throw std::invalid_argument("invalid GPU type name: \"" + name + "\"");
  }
  if (effective_tflops <= 0.0 || memory_gib <= 0.0) {
    throw std::invalid_argument("GPU type " + name +
                                " needs positive tflops and memory_gib");
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const GpuSpec& spec : r.specs) {
    if (name == spec.name) {
      if (effective_tflops != spec.effective_tflops || memory_gib != spec.memory_gib) {
        throw std::invalid_argument("GPU type " + name +
                                    " already registered with different numbers");
      }
      return spec.type;
    }
  }
  r.names.push_back(name);
  GpuSpec spec{};
  spec.type = static_cast<GpuType>(kNumGpuTypes + static_cast<int>(r.specs.size()));
  spec.name = r.names.back().c_str();
  spec.code = AutoCode(r, code);
  spec.memory_gib = memory_gib;
  spec.effective_tflops = effective_tflops;
  r.specs.push_back(spec);
  return spec.type;
}

const GpuSpec* FindGpuTypeByName(std::string_view name) {
  for (const GpuSpec& spec : kBuiltinSpecs) {
    if (name == spec.name) {
      return &spec;
    }
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const GpuSpec& spec : r.specs) {
    if (name == spec.name) {
      return &spec;
    }
  }
  return nullptr;
}

char CodeOf(GpuType type) { return SpecOf(type).code; }

GpuType TypeFromCode(char code) {
  for (const GpuSpec& spec : kBuiltinSpecs) {
    if (spec.code == code) {
      return spec.type;
    }
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const GpuSpec& spec : r.specs) {
    if (spec.code == code) {
      return spec.type;
    }
  }
  throw std::invalid_argument(std::string("unknown GPU code: ") + code);
}

std::vector<GpuType> ParseGpuCodes(std::string_view codes) {
  std::vector<GpuType> types;
  types.reserve(codes.size());
  for (char c : codes) {
    types.push_back(TypeFromCode(c));
  }
  return types;
}

std::string GpuCodes(const std::vector<GpuType>& types) {
  std::string out;
  out.reserve(types.size());
  for (GpuType t : types) {
    out.push_back(CodeOf(t));
  }
  return out;
}

uint64_t MemoryBytes(GpuType type) {
  return static_cast<uint64_t>(SpecOf(type).memory_gib * (1ULL << 30));
}

}  // namespace hetpipe::hw
